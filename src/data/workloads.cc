#include "data/workloads.h"

#include "util/check.h"
#include "util/random.h"

namespace wavebatch {

namespace {

PartitionWorkload MakeWorkloadOverBox(const Schema& schema, const Range& box,
                                      std::span<const size_t> parts,
                                      CellAggregate aggregate,
                                      size_t measure_dim, uint64_t seed,
                                      bool random_cuts, uint32_t min_width,
                                      double measure_offset) {
  Rng rng(seed);
  GridPartition partition =
      random_cuts
          ? GridPartition::Random(schema, box, parts, rng, min_width)
          : GridPartition::Uniform(schema, box, parts);
  QueryBatch batch(schema);
  for (size_t c = 0; c < partition.num_cells(); ++c) {
    const Range& cell = partition.cell(c);
    switch (aggregate) {
      case CellAggregate::kCount:
        batch.Add(RangeSumQuery::Count(cell, "count:" + cell.ToString()));
        break;
      case CellAggregate::kSum: {
        WB_CHECK_LT(measure_dim, schema.num_dims());
        Polynomial measure =
            Polynomial::Attribute(schema.num_dims(), measure_dim) +
            Polynomial::Constant(schema.num_dims(), measure_offset);
        batch.Add(RangeSumQuery(cell, std::move(measure),
                                "sum:" + cell.ToString()));
        break;
      }
    }
  }
  return PartitionWorkload{schema, std::move(partition), std::move(batch)};
}

}  // namespace

PartitionWorkload MakePartitionWorkload(const Schema& schema,
                                        std::span<const size_t> parts,
                                        CellAggregate aggregate,
                                        size_t measure_dim, uint64_t seed,
                                        bool random_cuts, uint32_t min_width,
                                        double measure_offset) {
  return MakeWorkloadOverBox(schema, Range::All(schema), parts, aggregate,
                             measure_dim, seed, random_cuts, min_width,
                             measure_offset);
}

PartitionWorkload MakeDrillDownWorkload(const Schema& schema,
                                        const Range& box,
                                        std::span<const size_t> parts,
                                        CellAggregate aggregate,
                                        size_t measure_dim, uint64_t seed,
                                        bool random_cuts, uint32_t min_width,
                                        double measure_offset) {
  return MakeWorkloadOverBox(schema, box, parts, aggregate, measure_dim, seed,
                             random_cuts, min_width, measure_offset);
}

}  // namespace wavebatch
