// The fault matrix: every store backend × every fault shape, driven
// through the engine. A failed fetch must surface as a Status (never an
// abort), charge nothing, and leave the session resumable — after the
// fault heals, resuming produces finals bit-identical to a clean run.
// Degraded mode (FaultPolicy::kSkip) instead consumes the failing
// coefficient without data and widens the Theorem-1 bound by exactly the
// skipped importance mass.

#include "storage/fault_injection_store.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "data/generators.h"
#include "engine/eval_plan.h"
#include "engine/eval_session.h"
#include "gtest/gtest.h"
#include "penalty/sse.h"
#include "storage/block_store.h"
#include "storage/dense_store.h"
#include "storage/file_store.h"
#include "storage/key_router.h"
#include "storage/memory_store.h"
#include "storage/sharded_store.h"
#include "strategy/wavelet_strategy.h"
#include "telemetry/metrics.h"
#include "util/random.h"

namespace wavebatch {
namespace {

// ---------------------------------------------------------------------------
// FaultInjectionStore unit behavior.

TEST(FaultInjectionStoreTest, PassesThroughWhenNoFaultsConfigured) {
  auto inner = std::make_unique<HashStore>();
  inner->Add(3, 1.5);
  inner->Add(7, -2.0);
  FaultInjectionStore store(std::move(inner));
  EXPECT_EQ(store.name(), "faulty(hash)");
  EXPECT_EQ(store.NumNonZero(), 2u);
  EXPECT_DOUBLE_EQ(store.SumAbs(), 3.5);

  IoStats io;
  EXPECT_DOUBLE_EQ(store.Fetch(3, &io).value(), 1.5);
  EXPECT_DOUBLE_EQ(store.Fetch(0, &io).value(), 0.0);
  std::vector<uint64_t> keys = {3, 7};
  std::vector<double> out(keys.size());
  ASSERT_TRUE(store.FetchBatch(keys, out, &io).ok());
  EXPECT_DOUBLE_EQ(out[0], 1.5);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
  EXPECT_EQ(io.retrievals, 4u);
  EXPECT_EQ(store.fetch_count(), 4u);
  EXPECT_EQ(store.injected_failures(), 0u);
}

TEST(FaultInjectionStoreTest, FailKeyIsPermanentUntilHeal) {
  auto inner = std::make_unique<HashStore>();
  inner->Add(5, 9.0);
  FaultInjectionStore store(std::move(inner));
  store.FailKey(5);

  IoStats io;
  for (int attempt = 0; attempt < 3; ++attempt) {
    Result<double> r = store.Fetch(5, &io);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  }
  // Other keys are unaffected, and failed fetches charged nothing.
  EXPECT_DOUBLE_EQ(store.Fetch(4, &io).value(), 0.0);
  EXPECT_EQ(io.retrievals, 1u);
  EXPECT_EQ(store.injected_failures(), 3u);

  store.Heal();
  EXPECT_DOUBLE_EQ(store.Fetch(5, &io).value(), 9.0);
  EXPECT_EQ(io.retrievals, 2u);
}

TEST(FaultInjectionStoreTest, FailAtFetchIsOneShot) {
  auto inner = std::make_unique<HashStore>();
  inner->Add(0, 1.0);
  FaultInjectionOptions options;
  options.fail_at_fetch = 2;
  FaultInjectionStore store(std::move(inner), options);

  IoStats io;
  EXPECT_TRUE(store.Fetch(0, &io).ok());   // ordinal 1
  EXPECT_FALSE(store.Fetch(0, &io).ok());  // ordinal 2: fires
  EXPECT_TRUE(store.Fetch(0, &io).ok());   // self-healed
  EXPECT_TRUE(store.Fetch(0, &io).ok());
  EXPECT_EQ(store.injected_failures(), 1u);
  EXPECT_EQ(io.retrievals, 3u);
}

TEST(FaultInjectionStoreTest, FailEveryNthAdvancesSoRetrySucceeds) {
  auto inner = std::make_unique<HashStore>();
  FaultInjectionOptions options;
  options.fail_every_n = 3;
  FaultInjectionStore store(std::move(inner), options);

  IoStats io;
  EXPECT_TRUE(store.Fetch(0, &io).ok());   // 1
  EXPECT_TRUE(store.Fetch(0, &io).ok());   // 2
  EXPECT_FALSE(store.Fetch(0, &io).ok());  // 3: fires
  // The counter advanced on the fault, so an immediate retry is ordinal 4.
  EXPECT_TRUE(store.Fetch(0, &io).ok());
  EXPECT_TRUE(store.Fetch(0, &io).ok());   // 5
  EXPECT_FALSE(store.Fetch(0, &io).ok());  // 6: fires
  EXPECT_EQ(store.injected_failures(), 2u);
  EXPECT_EQ(store.fetch_count(), 6u);
}

TEST(FaultInjectionStoreTest, BatchConsumesOrdinalsUpToTheFault) {
  // Keys are counted in batch order; the first fault fails the whole batch
  // but its ordinal is consumed, so the retried batch replays against a
  // fresh schedule and passes.
  auto inner = std::make_unique<HashStore>();
  inner->Add(0, 1.0);
  inner->Add(1, 2.0);
  inner->Add(2, 3.0);
  FaultInjectionOptions options;
  options.fail_every_n = 3;
  FaultInjectionStore store(std::move(inner), options);

  std::vector<uint64_t> keys = {0, 1, 2};
  std::vector<double> out(keys.size());
  IoStats io;
  Status status = store.FetchBatch(keys, out, &io);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  // Ordinals 1..3 consumed (the third fired); nothing charged.
  EXPECT_EQ(store.fetch_count(), 3u);
  EXPECT_EQ(io.retrievals, 0u);

  // Retry: ordinals 4, 5, 6 — 6 fires again. One more retry (7, 8, 9 — 9
  // fires)... a batch of 3 against fail_every_n=3 always hits the rule, so
  // heal and confirm the data was never corrupted.
  store.Heal();
  ASSERT_TRUE(store.FetchBatch(keys, out, &io).ok());
  EXPECT_EQ(out, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(io.retrievals, 3u);
}

TEST(FaultInjectionStoreTest, HealClearsScheduleRules) {
  auto inner = std::make_unique<HashStore>();
  FaultInjectionOptions options;
  options.fail_every_n = 1;  // every fetch fails
  options.fail_at_fetch = 1;
  FaultInjectionStore store(std::move(inner), options);
  EXPECT_FALSE(store.Fetch(0).ok());
  store.Heal();
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(store.Fetch(0).ok());
  EXPECT_EQ(store.injected_failures(), 1u);
}

TEST(FaultInjectionStoreTest, NonOwningWrapSharesInnerState) {
  HashStore inner;
  inner.Add(2, 4.0);
  FaultInjectionStore store(&inner);
  EXPECT_DOUBLE_EQ(store.Fetch(2).value(), 4.0);
  store.Add(2, 1.0);
  EXPECT_DOUBLE_EQ(inner.Peek(2), 5.0);
}

// ---------------------------------------------------------------------------
// The fault matrix: engine sessions over every backend × every fault shape.

struct MatrixFixture {
  Schema schema = Schema::Uniform(2, 16);
  Relation rel;
  QueryBatch batch;
  std::shared_ptr<const MasterList> list;
  std::unique_ptr<CoefficientStore> source;
  std::shared_ptr<const EvalPlan> plan;

  MatrixFixture() : rel(MakeUniformRelation(schema, 500, 3)), batch(schema) {
    WaveletStrategy strategy(schema, WaveletKind::kHaar);
    Rng rng(9);
    for (int i = 0; i < 12; ++i) {
      uint32_t lo0 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi0 = lo0 + static_cast<uint32_t>(rng.UniformInt(16 - lo0));
      uint32_t lo1 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi1 = lo1 + static_cast<uint32_t>(rng.UniformInt(16 - lo1));
      batch.Add(RangeSumQuery::Count(
          Range::Create(schema, {{lo0, hi0}, {lo1, hi1}}).value()));
    }
    list = std::make_shared<const MasterList>(
        MasterList::Build(batch, strategy).value());
    source = strategy.BuildStore(rel.FrequencyDistribution());
    plan = EvalPlan::FromMasterList(list, std::make_shared<SsePenalty>());
  }
};

/// Builds every backend flavor from one source store, each wrapped in a
/// FaultInjectionStore the test can drive.
struct FaultyBackends {
  struct Entry {
    std::string name;
    std::shared_ptr<FaultInjectionStore> store;
  };
  std::vector<Entry> stores;
  std::string file_path;

  explicit FaultyBackends(const CoefficientStore& source) {
    uint64_t max_key = 0;
    auto hash = std::make_unique<HashStore>();
    auto block_inner = std::make_unique<HashStore>();
    source.ForEachNonZero([&](uint64_t key, double value) {
      max_key = std::max(max_key, key);
      hash->Add(key, value);
      block_inner->Add(key, value);
    });
    std::vector<double> values(max_key + 1, 0.0);
    source.ForEachNonZero(
        [&](uint64_t key, double value) { values[key] = value; });

    file_path = ::testing::TempDir() + "/wavebatch_fault_matrix_" +
                std::to_string(reinterpret_cast<uintptr_t>(this)) + ".bin";
    auto file = FileStore::Create(file_path, values);
    EXPECT_TRUE(file.ok()) << file.status();

    auto wrap = [this](std::string name,
                       std::unique_ptr<CoefficientStore> inner) {
      stores.push_back(
          {std::move(name),
           std::make_shared<FaultInjectionStore>(std::move(inner))});
    };
    wrap("hash", std::move(hash));
    wrap("dense", std::make_unique<DenseStore>(values));
    wrap("file", std::move(file).value());
    wrap("block", std::make_unique<BlockStore>(std::move(block_inner),
                                               /*block_size=*/8,
                                               /*cache_blocks=*/0));
  }

  ~FaultyBackends() { std::remove(file_path.c_str()); }
};

/// A clean (fault-free) reference run: finals plus per-step history.
std::vector<double> CleanFinals(const std::shared_ptr<const EvalPlan>& plan,
                                std::shared_ptr<const CoefficientStore> store,
                                EvalSession::Options opts) {
  EvalSession session(std::move(plan), std::move(store), opts);
  EXPECT_TRUE(session.RunToExact().ok());
  return session.Estimates();
}

TEST(FaultMatrixTest, FailAtStepKLeavesSessionResumable) {
  MatrixFixture f;
  FaultyBackends backends(*f.source);
  for (const auto& b : backends.stores) {
    SCOPED_TRACE(b.name);
    const std::vector<double> clean = CleanFinals(
        f.plan, b.store, EvalSession::Options());

    // Fresh schedule: fault on the 10th counted fetch.
    b.store->Heal();
    FaultInjectionStore faulty(b.store.get());
    faulty.FailKey(f.list->entry(f.plan->Permutation(
        ProgressionOrder::kBiggestB)[9]).key);
    EvalSession session(f.plan, UnownedStore(faulty), EvalSession::Options());

    // March scalar steps up to the fault.
    Status first_failure = Status::OK();
    while (!session.Done()) {
      const uint64_t before_steps = session.StepsTaken();
      const IoStats before_io = session.io();
      const std::vector<double> before_est = session.Estimates();
      Result<size_t> r = session.Step();
      if (r.ok()) continue;
      first_failure = r.status();
      // The failed call left the session untouched.
      EXPECT_EQ(session.StepsTaken(), before_steps);
      EXPECT_EQ(session.io(), before_io);
      EXPECT_EQ(session.Estimates(), before_est);
      break;
    }
    ASSERT_FALSE(first_failure.ok());
    EXPECT_EQ(first_failure.code(), StatusCode::kUnavailable);
    EXPECT_EQ(session.StepsTaken(), 9u);

    // Retrying without healing fails identically; the session stays put.
    EXPECT_FALSE(session.Step().ok());
    EXPECT_EQ(session.StepsTaken(), 9u);

    // Heal, resume, and the finals are bit-identical to the clean run.
    faulty.Heal();
    ASSERT_TRUE(session.RunToExact().ok());
    EXPECT_TRUE(session.Done());
    EXPECT_EQ(session.io().retrievals, f.list->size());
    EXPECT_EQ(session.Estimates(), clean);
  }
}

TEST(FaultMatrixTest, FailEveryNthSurvivesWithRetries) {
  MatrixFixture f;
  FaultyBackends backends(*f.source);
  for (const auto& b : backends.stores) {
    SCOPED_TRACE(b.name);
    b.store->Heal();
    const std::vector<double> clean = CleanFinals(
        f.plan, b.store, EvalSession::Options());

    FaultInjectionOptions options;
    options.fail_every_n = 7;
    FaultInjectionStore faulty(b.store.get(), options);
    EvalSession session(f.plan, UnownedStore(faulty), EvalSession::Options());

    // Scalar steps with naive retry: each fault is transient (the ordinal
    // advances), so a single retry always clears it.
    while (!session.Done()) {
      Result<size_t> r = session.Step();
      if (!r.ok()) {
        EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
        ASSERT_TRUE(session.Step().ok());
      }
    }
    EXPECT_GT(faulty.injected_failures(), 0u);
    EXPECT_EQ(session.io().retrievals, f.list->size());
    EXPECT_EQ(session.Estimates(), clean);
  }
}

TEST(FaultMatrixTest, FailOnceThenHealAcrossBatchedSteps) {
  MatrixFixture f;
  FaultyBackends backends(*f.source);
  for (const auto& b : backends.stores) {
    SCOPED_TRACE(b.name);
    b.store->Heal();
    const std::vector<double> clean = CleanFinals(
        f.plan, b.store, EvalSession::Options());

    FaultInjectionOptions options;
    options.fail_at_fetch = 5;  // lands inside the first StepBatch(16)
    FaultInjectionStore faulty(b.store.get(), options);
    EvalSession session(f.plan, UnownedStore(faulty), EvalSession::Options());

    Result<size_t> first = session.StepBatch(16);
    ASSERT_FALSE(first.ok());
    EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);
    // All-or-nothing: the failed batch left no trace.
    EXPECT_EQ(session.StepsTaken(), 0u);
    EXPECT_EQ(session.io().retrievals, 0u);

    // fail_at_fetch self-heals, so the retried batch goes through whole.
    EXPECT_EQ(session.StepBatch(16).value(), 16u);
    EXPECT_EQ(session.io().retrievals, 16u);
    ASSERT_TRUE(session.RunToExact().ok());
    EXPECT_EQ(session.Estimates(), clean);
    EXPECT_EQ(session.io().retrievals, f.list->size());
  }
}

TEST(FaultMatrixTest, BlockGranularityFaultIsResumable) {
  MatrixFixture f;
  FaultyBackends backends(*f.source);
  auto block_of = [](uint64_t key) { return key / 8; };
  for (const auto& b : backends.stores) {
    SCOPED_TRACE(b.name);
    b.store->Heal();
    EvalSession::Options opts;
    opts.block_of = block_of;
    const std::vector<double> clean = CleanFinals(f.plan, b.store, opts);

    FaultInjectionOptions options;
    options.fail_at_fetch = 2;  // inside the first block's batch
    FaultInjectionStore faulty(b.store.get(), options);
    EvalSession session(f.plan, UnownedStore(faulty), opts);

    // March block by block; the one-shot fault fires in exactly one block's
    // batch, leaves that call without a trace, and the immediate retry goes
    // through (fail_at_fetch self-heals).
    bool saw_fault = false;
    while (!session.Done()) {
      const uint64_t before_blocks = session.BlocksFetched();
      const uint64_t before_coeffs = session.CoefficientsFetched();
      const IoStats before_io = session.io();
      Result<size_t> r = session.StepBlock();
      if (r.ok()) continue;
      saw_fault = true;
      EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
      EXPECT_EQ(session.BlocksFetched(), before_blocks);
      EXPECT_EQ(session.CoefficientsFetched(), before_coeffs);
      EXPECT_EQ(session.io(), before_io);
      ASSERT_TRUE(session.StepBlock().ok());
    }
    EXPECT_TRUE(saw_fault);
    EXPECT_EQ(session.BlocksFetched(), session.TotalBlocks());
    EXPECT_EQ(session.Estimates(), clean);
  }
}

TEST(FaultMatrixTest, DegradedModeSkipsAndWidensTheBound) {
  MatrixFixture f;
  FaultyBackends backends(*f.source);
  for (const auto& b : backends.stores) {
    SCOPED_TRACE(b.name);
    b.store->Heal();
    const double k = b.store->SumAbs();

    // Permanently fail the keys of two master-list entries.
    const std::span<const size_t> order =
        f.plan->Permutation(ProgressionOrder::kBiggestB);
    const size_t skip_a = order[3];
    const size_t skip_b = order[11];
    const uint64_t key_a = f.list->entry(skip_a).key;
    const uint64_t key_b = f.list->entry(skip_b).key;
    ASSERT_NE(key_a, key_b);
    FaultInjectionStore faulty(b.store.get());
    faulty.FailKey(key_a);
    faulty.FailKey(key_b);

    // Clean reference on a store where the failed coefficients read as 0 —
    // that is exactly what a degraded session should compute.
    auto zeroed = std::make_unique<HashStore>();
    b.store->ForEachNonZero([&](uint64_t key, double value) {
      if (key != key_a && key != key_b) zeroed->Add(key, value);
    });
    const std::vector<double> reference = CleanFinals(
        f.plan, UnownedStore(*zeroed), EvalSession::Options());

    // Fault-free bound trajectory for comparison.
    EvalSession witness(f.plan, b.store, EvalSession::Options());

    EvalSession::Options opts;
    opts.fault_policy = FaultPolicy::kSkip;
    EvalSession session(f.plan, UnownedStore(faulty), opts);
    ASSERT_TRUE(session.RunToExact().ok());
    EXPECT_TRUE(session.Done());
    ASSERT_TRUE(witness.RunToExact().ok());

    EXPECT_EQ(session.SkippedCoefficients(), 2u);
    const double skipped = f.plan->importance(skip_a) +
                           f.plan->importance(skip_b);
    EXPECT_DOUBLE_EQ(session.SkippedImportance(), skipped);
    // Only the available coefficients were charged.
    EXPECT_EQ(session.io().retrievals, f.list->size() - 2);
    // Theorem 1 widens additively by K^α · ι_skipped over the fault-free
    // bound (0 at Done): the skipped coefficients never leave the unknown
    // set.
    const double alpha = f.plan->penalty()->HomogeneityDegree();
    EXPECT_DOUBLE_EQ(session.WorstCaseBound(k),
                     witness.WorstCaseBound(k) +
                         std::pow(k, alpha) * skipped);
    // Theorem 2: skipped coefficients stay in the unused mass.
    EXPECT_NEAR(session.ExpectedPenalty(f.schema.cell_count()),
                skipped / static_cast<double>(f.schema.cell_count()),
                1e-9 * (1.0 + skipped));
    // Estimates equal the zeroed-store clean run bit for bit.
    EXPECT_EQ(session.Estimates(), reference);
  }
}

TEST(FaultMatrixTest, DegradedModeBatchFallsBackToScalar) {
  // A batched step under kSkip must skip only the genuinely failed keys —
  // the rest of the batch contributes normally.
  MatrixFixture f;
  FaultyBackends backends(*f.source);
  for (const auto& b : backends.stores) {
    SCOPED_TRACE(b.name);
    b.store->Heal();

    const std::span<const size_t> order =
        f.plan->Permutation(ProgressionOrder::kBiggestB);
    const size_t skip_idx = order[2];  // inside the first StepBatch(8)
    FaultInjectionStore faulty(b.store.get());
    faulty.FailKey(f.list->entry(skip_idx).key);

    EvalSession::Options opts;
    opts.fault_policy = FaultPolicy::kSkip;
    EvalSession session(f.plan, UnownedStore(faulty), opts);
    EXPECT_EQ(session.StepBatch(8).value(), 8u);
    EXPECT_EQ(session.StepsTaken(), 8u);
    EXPECT_EQ(session.SkippedCoefficients(), 1u);
    EXPECT_EQ(session.io().retrievals, 7u);
    ASSERT_TRUE(session.RunToExact().ok());
    EXPECT_EQ(session.SkippedCoefficients(), 1u);
    EXPECT_EQ(session.io().retrievals, f.list->size() - 1);
  }
}

// ---------------------------------------------------------------------------
// The sharded axis of the matrix: S ∈ {1, 4} with exactly one faulty shard.
// Faults compose per shard — a dead shard fails exactly the fetches of the
// keys it owns, which kFail turns into resumable sessions and kSkip into
// degradation by exactly that shard's importance mass.

/// A sharded plane over `source` with shard `faulty_shard` wrapped in a
/// FaultInjectionStore (kept accessible for FailKey/Heal).
struct ShardedFaultyPlane {
  KeyRouter router;
  std::unique_ptr<ShardedStore> store;
  FaultInjectionStore* faulty = nullptr;

  ShardedFaultyPlane(const CoefficientStore& source, size_t num_shards,
                     size_t faulty_shard) {
    uint64_t max_key = 0;
    source.ForEachNonZero(
        [&](uint64_t key, double) { max_key = std::max(max_key, key); });
    router = KeyRouter::Uniform(max_key + 1, num_shards);
    std::vector<std::unique_ptr<HashStore>> backends;
    for (size_t s = 0; s < num_shards; ++s) {
      backends.push_back(std::make_unique<HashStore>());
    }
    source.ForEachNonZero([&](uint64_t key, double value) {
      backends[router.ShardOf(key)]->Add(key, value);
    });
    std::vector<std::unique_ptr<CoefficientStore>> shards;
    for (size_t s = 0; s < num_shards; ++s) {
      if (s == faulty_shard) {
        auto wrapped =
            std::make_unique<FaultInjectionStore>(std::move(backends[s]));
        faulty = wrapped.get();
        shards.push_back(std::move(wrapped));
      } else {
        shards.push_back(std::move(backends[s]));
      }
    }
    store = std::make_unique<ShardedStore>(std::move(shards), router);
  }

  /// Master-list entry indices whose keys the faulty shard owns.
  std::vector<size_t> OwnedEntries(const MasterList& list,
                                   size_t faulty_shard) const {
    std::vector<size_t> owned;
    for (size_t i = 0; i < list.size(); ++i) {
      if (router.ShardOf(list.entry(i).key) == faulty_shard) owned.push_back(i);
    }
    return owned;
  }
};

class ShardedFaultMatrixTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShardedFaultMatrixTest, KFailSessionResumesAfterHeal) {
  const size_t num_shards = GetParam();
  const size_t faulty_shard = num_shards - 1;
  MatrixFixture f;
  ShardedFaultyPlane plane(*f.source, num_shards, faulty_shard);
  const std::vector<size_t> owned =
      plane.OwnedEntries(*f.list, faulty_shard);
  ASSERT_FALSE(owned.empty()) << "pick a shard that owns plan keys";
  const std::vector<double> clean = CleanFinals(
      f.plan, UnownedStore(*f.source), EvalSession::Options());

  // Kill the shard: every key it owns fails until Heal().
  for (size_t entry : owned) plane.faulty->FailKey(f.list->entry(entry).key);

  EvalSession session(f.plan, UnownedStore(*plane.store),
                      EvalSession::Options());
  Status run = session.RunToExact();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(session.Done());
  // All-or-nothing batches: whatever completed before the failing batch is
  // kept, the failing batch left no trace, and every charged retrieval is
  // a real one.
  EXPECT_EQ(session.io().retrievals, session.StepsTaken());

  // The degraded plane keeps serving the healthy shards' keys.
  IoStats probe_io;
  for (size_t i = 0; i < f.list->size(); ++i) {
    if (plane.router.ShardOf(f.list->entry(i).key) != faulty_shard) {
      EXPECT_TRUE(plane.store->Fetch(f.list->entry(i).key, &probe_io).ok());
      break;
    }
  }

  plane.faulty->Heal();
  ASSERT_TRUE(session.RunToExact().ok());
  EXPECT_TRUE(session.Done());
  EXPECT_EQ(session.io().retrievals, f.list->size());
  EXPECT_EQ(session.Estimates(), clean);
}

TEST_P(ShardedFaultMatrixTest, KSkipDegradesOnlyTheFaultyShardsMass) {
  const size_t num_shards = GetParam();
  const size_t faulty_shard = num_shards - 1;
  MatrixFixture f;
  ShardedFaultyPlane plane(*f.source, num_shards, faulty_shard);
  const std::vector<size_t> owned =
      plane.OwnedEntries(*f.list, faulty_shard);
  ASSERT_FALSE(owned.empty());
  const double k = f.source->SumAbs();

  for (size_t entry : owned) plane.faulty->FailKey(f.list->entry(entry).key);

  // Reference: a clean run over the plane with the faulty shard's
  // coefficients zeroed — exactly what degradation should compute.
  auto zeroed = std::make_unique<HashStore>();
  f.source->ForEachNonZero([&](uint64_t key, double value) {
    if (plane.router.ShardOf(key) != faulty_shard) zeroed->Add(key, value);
  });
  const std::vector<double> reference = CleanFinals(
      f.plan, UnownedStore(*zeroed), EvalSession::Options());
  // Fault-free witness for the bound trajectory.
  EvalSession witness(f.plan, UnownedStore(*f.source), EvalSession::Options());
  ASSERT_TRUE(witness.RunToExact().ok());

  EvalSession::Options opts;
  opts.fault_policy = FaultPolicy::kSkip;
  EvalSession session(f.plan, UnownedStore(*plane.store), opts);
  ASSERT_TRUE(session.RunToExact().ok());
  EXPECT_TRUE(session.Done());

  // Degradation is exactly the faulty shard's entries — no more, no less.
  EXPECT_EQ(session.SkippedCoefficients(), owned.size());
  double skipped = 0.0;
  for (size_t entry : owned) skipped += f.plan->importance(entry);
  EXPECT_DOUBLE_EQ(session.SkippedImportance(), skipped);
  EXPECT_EQ(session.io().retrievals, f.list->size() - owned.size());
  // Theorem 1 widens by exactly the skipped mass (times K^α).
  const double alpha = f.plan->penalty()->HomogeneityDegree();
  EXPECT_DOUBLE_EQ(session.WorstCaseBound(k),
                   witness.WorstCaseBound(k) + std::pow(k, alpha) * skipped);
  EXPECT_EQ(session.Estimates(), reference);

  // Per-shard accounting: healthy shards served all their keys, the faulty
  // shard served none.
  EXPECT_EQ(plane.store->shard_keys_fetched(faulty_shard), 0u);
  uint64_t healthy = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    if (s != faulty_shard) healthy += plane.store->shard_keys_fetched(s);
  }
  EXPECT_EQ(healthy, f.list->size() - owned.size());
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardedFaultMatrixTest,
                         ::testing::Values(size_t{1}, size_t{4}));

// ---------------------------------------------------------------------------
// Telemetry: injected faults and latency are visible end to end.

TEST(FaultInjectionTelemetryTest, InjectedLatencyShowsInHistogramAndSpans) {
  auto& registry = telemetry::MetricsRegistry::Default();
  telemetry::MetricsRegistry::Enable();
  registry.ResetValues();

  auto inner = std::make_unique<HashStore>();
  inner->Add(1, 2.0);
  inner->Add(2, -3.0);
  FaultInjectionOptions options;
  options.latency = std::chrono::microseconds(2000);
  FaultInjectionStore store(std::move(inner), options);

  const size_t spans_before = registry.Spans().size();
  std::vector<uint64_t> keys = {1, 2};
  std::vector<double> out(keys.size());
  ASSERT_TRUE(store.FetchBatch(keys, out).ok());

  // The batch-latency histogram for this store saw one observation of at
  // least the injected 2 ms (in nanoseconds).
  telemetry::Histogram* hist = registry.GetHistogram(
      "wavebatch_store_fetch_batch_latency_ns", {{"store", store.name()}});
  EXPECT_EQ(hist->Count(), 1u);
  EXPECT_GE(hist->Sum(), 2'000'000u);
  // The observation landed at or above the bucket containing 2 ms.
  const size_t min_bucket = telemetry::Histogram::BucketIndex(2'000'000);
  uint64_t below = 0;
  for (size_t i = 0; i < min_bucket; ++i) below += hist->BucketCount(i);
  EXPECT_EQ(below, 0u);

  // And the wrapper emitted a store_fetch_batch span covering the latency.
  const std::vector<telemetry::SpanEvent> spans = registry.Spans();
  ASSERT_GT(spans.size(), spans_before);
  bool found = false;
  for (size_t i = spans_before; i < spans.size(); ++i) {
    if (std::string_view(spans[i].name) == "store_fetch_batch" &&
        spans[i].dur_us >= 2000.0) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "no store_fetch_batch span >= 2ms recorded";
}

TEST(FaultInjectionTelemetryTest, InjectedFaultsAreCounted) {
  auto& registry = telemetry::MetricsRegistry::Default();
  telemetry::MetricsRegistry::Enable();
  registry.ResetValues();

  auto inner = std::make_unique<HashStore>();
  inner->Add(5, 1.0);
  FaultInjectionStore store(std::move(inner));
  telemetry::Counter* faults = registry.GetCounter(
      "wavebatch_injected_faults_total", {{"store", store.name()}});
  EXPECT_EQ(faults->Value(), 0u);

  store.FailKey(5);
  EXPECT_FALSE(store.Fetch(5).ok());
  EXPECT_FALSE(store.Fetch(5).ok());
  EXPECT_EQ(faults->Value(), 2u);
  EXPECT_EQ(store.injected_failures(), 2u);

  // Error-by-code accounting on the wrapper side matches.
  telemetry::Counter* unavailable = registry.GetCounter(
      "wavebatch_store_fetch_errors_total",
      {{"store", store.name()}, {"code", "unavailable"}});
  EXPECT_EQ(unavailable->Value(), 2u);
}

}  // namespace
}  // namespace wavebatch
