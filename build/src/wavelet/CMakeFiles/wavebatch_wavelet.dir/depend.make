# Empty dependencies file for wavebatch_wavelet.
# This may be replaced when dependencies are built.
