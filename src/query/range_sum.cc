#include "query/range_sum.h"

#include "util/check.h"

namespace wavebatch {

namespace {

// Calls fn(coords) for every cell of `range` (odometer iteration).
template <typename Fn>
void ForEachCell(const Range& range, Fn&& fn) {
  const size_t d = range.num_dims();
  Tuple coords(d);
  for (size_t i = 0; i < d; ++i) coords[i] = range.interval(i).lo;
  for (;;) {
    fn(coords);
    size_t dim = d;
    while (dim-- > 0) {
      if (coords[dim] < range.interval(dim).hi) {
        ++coords[dim];
        break;
      }
      coords[dim] = range.interval(dim).lo;
      if (dim == 0) return;
    }
    if (dim == static_cast<size_t>(-1)) return;
  }
}

}  // namespace

RangeSumQuery::RangeSumQuery(Range range, Polynomial poly, std::string label)
    : range_(std::move(range)),
      poly_(std::move(poly)),
      label_(std::move(label)) {
  WB_CHECK_EQ(range_.num_dims(), poly_.num_dims())
      << "range and polynomial dimensionality mismatch";
}

RangeSumQuery RangeSumQuery::Count(const Range& range, std::string label) {
  return RangeSumQuery(range, Polynomial::Constant(range.num_dims(), 1.0),
                       std::move(label));
}

RangeSumQuery RangeSumQuery::Sum(const Range& range, size_t dim,
                                 std::string label) {
  return RangeSumQuery(range, Polynomial::Attribute(range.num_dims(), dim),
                       std::move(label));
}

RangeSumQuery RangeSumQuery::SumProduct(const Range& range, size_t dim_i,
                                        size_t dim_j, std::string label) {
  Polynomial p = Polynomial::Attribute(range.num_dims(), dim_i) *
                 Polynomial::Attribute(range.num_dims(), dim_j);
  return RangeSumQuery(range, std::move(p), std::move(label));
}

RangeSumQuery RangeSumQuery::SumPower(const Range& range, size_t dim,
                                      uint32_t power, std::string label) {
  return RangeSumQuery(range,
                       Polynomial::AttributePower(range.num_dims(), dim,
                                                  power),
                       std::move(label));
}

double RangeSumQuery::BruteForce(const Relation& relation) const {
  double acc = 0.0;
  for (const Tuple& t : relation.tuples()) {
    if (range_.Contains(t)) acc += poly_.Evaluate(t);
  }
  return acc;
}

double RangeSumQuery::BruteForce(const DenseCube& delta) const {
  double acc = 0.0;
  const Schema& schema = delta.schema();
  ForEachCell(range_, [&](const Tuple& coords) {
    const double mass = delta[schema.Pack(coords)];
    if (mass != 0.0) acc += poly_.Evaluate(coords) * mass;
  });
  return acc;
}

DenseCube RangeSumQuery::ToDenseVector(const Schema& schema) const {
  WB_CHECK_EQ(schema.num_dims(), range_.num_dims());
  DenseCube q(schema);
  ForEachCell(range_, [&](const Tuple& coords) {
    q[schema.Pack(coords)] = poly_.Evaluate(coords);
  });
  return q;
}

}  // namespace wavebatch
