file(REMOVE_RECURSE
  "../bench/bench_ablation_wavelets"
  "../bench/bench_ablation_wavelets.pdb"
  "CMakeFiles/bench_ablation_wavelets.dir/bench_ablation_wavelets.cc.o"
  "CMakeFiles/bench_ablation_wavelets.dir/bench_ablation_wavelets.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wavelets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
