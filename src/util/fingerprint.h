#ifndef WAVEBATCH_UTIL_FINGERPRINT_H_
#define WAVEBATCH_UTIL_FINGERPRINT_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace wavebatch {
namespace fingerprint {

/// Byte-exact fingerprint building blocks shared by PlanCache and
/// PenaltyFunction::Fingerprint(). Values are appended as raw little-endian
/// bytes; the resulting strings are compared for equality only (they are
/// cache keys, not hashes).

inline void AppendU64(std::string& s, uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  s.append(buf, sizeof(v));
}

/// Appends the bit pattern of `v`, normalizing -0.0 to +0.0 first: the two
/// zeros compare equal everywhere a coefficient is used, so they must
/// fingerprint identically or equal batches would miss the cache.
inline void AppendF64(std::string& s, double v) {
  if (v == 0.0) v = 0.0;  // collapses -0.0 onto +0.0
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(s, bits);
}

/// Appends a length-prefixed string, so adjacent variable-length fields can
/// never alias each other's bytes.
inline void AppendString(std::string& s, const std::string& v) {
  AppendU64(s, v.size());
  s += v;
}

}  // namespace fingerprint
}  // namespace wavebatch

#endif  // WAVEBATCH_UTIL_FINGERPRINT_H_
