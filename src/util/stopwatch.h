#ifndef WAVEBATCH_UTIL_STOPWATCH_H_
#define WAVEBATCH_UTIL_STOPWATCH_H_

#include <chrono>

namespace wavebatch {

/// Wall-clock stopwatch for coarse harness timings (benches use
/// google-benchmark for precise numbers; this is for progress reporting).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_UTIL_STOPWATCH_H_
