#include "wavelet/lazy_query_transform.h"

#include <cmath>
#include <map>

#include "gtest/gtest.h"
#include "util/random.h"
#include "wavelet/query_transform.h"

namespace wavebatch {
namespace {

class LazyTransformTest
    : public ::testing::TestWithParam<std::tuple<WaveletKind, size_t>> {
 protected:
  const WaveletFilter& filter() const {
    return WaveletFilter::Get(std::get<0>(GetParam()));
  }
  size_t n() const { return std::get<1>(GetParam()); }
};

void ExpectSameTransform(const std::vector<SparseEntry>& lazy,
                         const std::vector<SparseEntry>& dense,
                         const std::string& context) {
  // Entries agree up to the shared relative threshold: compare as dense
  // maps with a tolerance scaled to the largest coefficient.
  double max_abs = 0.0;
  for (const SparseEntry& e : dense) {
    max_abs = std::max(max_abs, std::abs(e.value));
  }
  const double tol = max_abs * 1e-9 + 1e-12;
  std::map<uint64_t, double> lhs, rhs;
  for (const SparseEntry& e : lazy) lhs[e.key] = e.value;
  for (const SparseEntry& e : dense) rhs[e.key] = e.value;
  for (const auto& [key, value] : rhs) {
    auto it = lhs.find(key);
    const double got = it == lhs.end() ? 0.0 : it->second;
    EXPECT_NEAR(got, value, tol) << context << " key " << key;
  }
  for (const auto& [key, value] : lhs) {
    if (!rhs.count(key)) {
      EXPECT_NEAR(value, 0.0, tol) << context << " extra key " << key;
    }
  }
}

TEST_P(LazyTransformTest, MatchesDenseTransformOnRandomRanges) {
  Rng rng(42 + n());
  for (int trial = 0; trial < 25; ++trial) {
    const uint32_t lo = static_cast<uint32_t>(rng.UniformInt(n()));
    const uint32_t hi = lo + static_cast<uint32_t>(rng.UniformInt(n() - lo));
    const uint32_t degree =
        static_cast<uint32_t>(rng.UniformInt(filter().max_degree() + 1));
    LazyTransformStats stats;
    auto lazy = LazyRangeMonomialDwt1D(n(), lo, hi, degree, filter(), &stats);
    auto dense = SparseRangeMonomialDwt1D(n(), lo, hi, degree, filter());
    EXPECT_FALSE(stats.dense_fallback);
    ExpectSameTransform(
        lazy, dense,
        "n=" + std::to_string(n()) + " [" + std::to_string(lo) + "," +
            std::to_string(hi) + "] deg " + std::to_string(degree));
  }
}

TEST_P(LazyTransformTest, EdgeRanges) {
  for (uint32_t degree = 0; degree <= filter().max_degree(); ++degree) {
    struct Case {
      uint32_t lo, hi;
    };
    const uint32_t last = static_cast<uint32_t>(n() - 1);
    for (const Case& c : {Case{0, last},          // full domain
                          Case{0, 0},             // first cell
                          Case{last, last},       // last cell
                          Case{0, last / 2},      // prefix
                          Case{last / 2, last}}) {  // suffix
      auto lazy = LazyRangeMonomialDwt1D(n(), c.lo, c.hi, degree, filter());
      auto dense = SparseRangeMonomialDwt1D(n(), c.lo, c.hi, degree,
                                            filter());
      ExpectSameTransform(lazy, dense,
                          "edge [" + std::to_string(c.lo) + "," +
                              std::to_string(c.hi) + "] deg " +
                              std::to_string(degree));
    }
  }
}

TEST_P(LazyTransformTest, WorkIsLogarithmicNotLinear) {
  // The point of the exercise: explicit work O(L² log n), independent of
  // the range length.
  if (n() < 64) return;
  LazyTransformStats stats;
  LazyRangeMonomialDwt1D(n(), 1, static_cast<uint32_t>(n() - 2),
                         filter().max_degree(), filter(), &stats);
  const double log_n = std::log2(static_cast<double>(n()));
  const double bound =
      16.0 * filter().length() * filter().length() * log_n + 64;
  EXPECT_LT(static_cast<double>(stats.explicit_evals), bound);
  // In particular: far below the dense transform's ~2n coefficient
  // computations.
  if (n() >= 4096) {
    EXPECT_LT(stats.explicit_evals, n() / 4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FiltersAndSizes, LazyTransformTest,
    ::testing::Combine(::testing::Values(WaveletKind::kHaar, WaveletKind::kDb4,
                                         WaveletKind::kDb6, WaveletKind::kDb8),
                       ::testing::Values<size_t>(8, 32, 256, 4096, 65536)));

TEST(LazyTransformFallback, HighDegreeFallsBackToDense) {
  LazyTransformStats stats;
  auto lazy = LazyRangeMonomialDwt1D(
      64, 3, 40, /*degree=*/2, WaveletFilter::Get(WaveletKind::kDb4), &stats);
  EXPECT_TRUE(stats.dense_fallback);
  auto dense = SparseRangeMonomialDwt1D(
      64, 3, 40, 2, WaveletFilter::Get(WaveletKind::kDb4));
  ASSERT_EQ(lazy.size(), dense.size());
  for (size_t i = 0; i < lazy.size(); ++i) {
    EXPECT_EQ(lazy[i].key, dense[i].key);
    EXPECT_EQ(lazy[i].value, dense[i].value);
  }
}

TEST(LazyTransformScaling, HugeDomainStaysCheap) {
  // n = 2^24: the dense path would touch 16M cells; the lazy path touches
  // a few thousand.
  const uint64_t n = uint64_t{1} << 24;
  LazyTransformStats stats;
  auto coeffs = LazyRangeMonomialDwt1D(
      n, 12345, 9876543, 1, WaveletFilter::Get(WaveletKind::kDb4), &stats);
  EXPECT_FALSE(stats.dense_fallback);
  EXPECT_LT(stats.explicit_evals, 20000u);
  EXPECT_GT(coeffs.size(), 0u);
  EXPECT_LT(coeffs.size(), 2000u);
  // Spot-check correctness against the analytic value of the full sum:
  // <v, 1-normalized scaling> relates to Σ_{x in range} x, checked via the
  // scaling coefficient: v̂[0] = Σ v[x] / sqrt(n).
  double expected_sum = 0.0;
  for (uint64_t x = 12345; x <= 9876543; ++x) {
    expected_sum += static_cast<double>(x);
  }
  double got = 0.0;
  for (const SparseEntry& e : coeffs) {
    if (e.key == 0) got = e.value;
  }
  EXPECT_NEAR(got, expected_sum / std::sqrt(static_cast<double>(n)),
              std::abs(expected_sum) * 1e-9);
}

}  // namespace
}  // namespace wavebatch
