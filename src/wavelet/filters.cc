#include "wavelet/filters.h"

#include <algorithm>
#include <cctype>

#include "util/check.h"

namespace wavebatch {

namespace {

// Orthonormal Daubechies lowpass coefficients (sum = sqrt(2)).
constexpr double kHaarH[2] = {
    0.70710678118654752440,
    0.70710678118654752440,
};

// (1±sqrt(3))/(4 sqrt(2)) and (3±sqrt(3))/(4 sqrt(2)).
constexpr double kDb4H[4] = {
    0.48296291314453414337487159986,
    0.83651630373780790557529378092,
    0.22414386804201338102597276224,
    -0.12940952255126038117444941881,
};

constexpr double kDb6H[6] = {
    0.33267055295008261599851158914,
    0.80689150931109257649449360409,
    0.45987750211849157009515194215,
    -0.13501102001025458869638990670,
    -0.08544127388202666169281916918,
    0.03522629188570953660274066472,
};

constexpr double kDb8H[8] = {
    0.23037781330889650086329118304,
    0.71484657055291564708992195527,
    0.63088076792985890788171633830,
    -0.02798376941685985421141374718,
    -0.18703481171909308407957067279,
    0.03084138183556076362721936253,
    0.03288301166688519973540751355,
    -0.01059740178506903210488320852,
};

}  // namespace

WaveletFilter::WaveletFilter(WaveletKind kind, const char* name,
                             uint32_t length, const double* h)
    : kind_(kind), name_(name), length_(length), h_(h) {
  WB_CHECK_LE(length_, 8u);
  // Quadrature mirror: g[n] = (-1)^n h[L-1-n].
  for (uint32_t n = 0; n < length_; ++n) {
    g_[n] = ((n & 1) ? -1.0 : 1.0) * h_[length_ - 1 - n];
  }
}

const WaveletFilter& WaveletFilter::Get(WaveletKind kind) {
  static const WaveletFilter* const kHaarFilter =
      new WaveletFilter(WaveletKind::kHaar, "haar", 2, kHaarH);
  static const WaveletFilter* const kDb4Filter =
      new WaveletFilter(WaveletKind::kDb4, "db4", 4, kDb4H);
  static const WaveletFilter* const kDb6Filter =
      new WaveletFilter(WaveletKind::kDb6, "db6", 6, kDb6H);
  static const WaveletFilter* const kDb8Filter =
      new WaveletFilter(WaveletKind::kDb8, "db8", 8, kDb8H);
  switch (kind) {
    case WaveletKind::kHaar:
      return *kHaarFilter;
    case WaveletKind::kDb4:
      return *kDb4Filter;
    case WaveletKind::kDb6:
      return *kDb6Filter;
    case WaveletKind::kDb8:
      return *kDb8Filter;
  }
  WB_CHECK(false) << "unknown WaveletKind";
  return *kHaarFilter;
}

const WaveletFilter& WaveletFilter::ForDegree(uint32_t degree) {
  switch (degree) {
    case 0:
      return Get(WaveletKind::kHaar);
    case 1:
      return Get(WaveletKind::kDb4);
    case 2:
      return Get(WaveletKind::kDb6);
    case 3:
      return Get(WaveletKind::kDb8);
    default:
      WB_CHECK(false) << "no built-in filter for polynomial degree " << degree
                      << " (max 3)";
  }
  return Get(WaveletKind::kHaar);
}

bool ParseWaveletKind(const std::string& text, WaveletKind* out) {
  std::string t = text;
  std::transform(t.begin(), t.end(), t.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (t == "haar" || t == "db2") {
    *out = WaveletKind::kHaar;
  } else if (t == "db4") {
    *out = WaveletKind::kDb4;
  } else if (t == "db6") {
    *out = WaveletKind::kDb6;
  } else if (t == "db8") {
    *out = WaveletKind::kDb8;
  } else {
    return false;
  }
  return true;
}

}  // namespace wavebatch
