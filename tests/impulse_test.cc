#include "wavelet/impulse.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "wavelet/dwt1d.h"

namespace wavebatch {
namespace {

class ImpulseTest
    : public ::testing::TestWithParam<std::tuple<WaveletKind, size_t>> {
 protected:
  const WaveletFilter& filter() const {
    return WaveletFilter::Get(std::get<0>(GetParam()));
  }
  size_t n() const { return std::get<1>(GetParam()); }
};

TEST_P(ImpulseTest, MatchesDenseTransformAtEveryPosition) {
  for (uint32_t x = 0; x < n(); ++x) {
    std::vector<double> dense(n(), 0.0);
    dense[x] = 1.0;
    ForwardDwt1D(dense, filter());
    std::vector<SparseEntry> sparse = SparseImpulseDwt1D(n(), x, 1.0, filter());
    // Every sparse entry matches the dense value; every dense nonzero is
    // covered by the sparse result.
    std::vector<double> reconstructed(n(), 0.0);
    for (const SparseEntry& e : sparse) {
      ASSERT_LT(e.key, n());
      reconstructed[e.key] = e.value;
    }
    for (size_t i = 0; i < n(); ++i) {
      EXPECT_NEAR(reconstructed[i], dense[i], 1e-10)
          << "x=" << x << " coefficient " << i;
    }
  }
}

TEST_P(ImpulseTest, SortedByKey) {
  std::vector<SparseEntry> sparse =
      SparseImpulseDwt1D(n(), static_cast<uint32_t>(n() / 2), 1.0, filter());
  for (size_t i = 1; i < sparse.size(); ++i) {
    EXPECT_LT(sparse[i - 1].key, sparse[i].key);
  }
}

TEST_P(ImpulseTest, WeightScalesLinearly) {
  std::vector<SparseEntry> unit = SparseImpulseDwt1D(n(), 1, 1.0, filter());
  std::vector<SparseEntry> scaled = SparseImpulseDwt1D(n(), 1, -2.5, filter());
  ASSERT_EQ(unit.size(), scaled.size());
  for (size_t i = 0; i < unit.size(); ++i) {
    EXPECT_EQ(unit[i].key, scaled[i].key);
    EXPECT_NEAR(scaled[i].value, -2.5 * unit[i].value, 1e-12);
  }
}

TEST_P(ImpulseTest, SupportIsLogarithmic) {
  // The paper's update-cost claim: O(L log n) nonzeros per dimension.
  if (n() < 4) return;
  const size_t log_n = static_cast<size_t>(std::log2(n()));
  const size_t bound = filter().length() * log_n + 1;
  for (uint32_t x = 0; x < n(); x += 3) {
    std::vector<SparseEntry> sparse = SparseImpulseDwt1D(n(), x, 1.0, filter());
    EXPECT_LE(sparse.size(), bound) << "x=" << x;
  }
}

TEST_P(ImpulseTest, EnergyPreserved) {
  // ||e_x||² = 1, and the transform is orthonormal.
  std::vector<SparseEntry> sparse = SparseImpulseDwt1D(
      n(), static_cast<uint32_t>(n() - 1), 1.0, filter());
  double energy = 0.0;
  for (const SparseEntry& e : sparse) energy += e.value * e.value;
  EXPECT_NEAR(energy, 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    FiltersAndSizes, ImpulseTest,
    ::testing::Combine(::testing::Values(WaveletKind::kHaar, WaveletKind::kDb4,
                                         WaveletKind::kDb6, WaveletKind::kDb8),
                       ::testing::Values<size_t>(2, 4, 16, 64, 256)));

TEST(ImpulseBasics, LengthOneDomain) {
  std::vector<SparseEntry> sparse =
      SparseImpulseDwt1D(1, 0, 3.0, WaveletFilter::Get(WaveletKind::kHaar));
  ASSERT_EQ(sparse.size(), 1u);
  EXPECT_EQ(sparse[0].key, 0u);
  EXPECT_EQ(sparse[0].value, 3.0);
}

TEST(ImpulseBasics, ZeroWeightYieldsNothingOrZeros) {
  std::vector<SparseEntry> sparse =
      SparseImpulseDwt1D(8, 3, 0.0, WaveletFilter::Get(WaveletKind::kDb4));
  for (const SparseEntry& e : sparse) EXPECT_EQ(e.value, 0.0);
  EXPECT_TRUE(sparse.empty());
}

}  // namespace
}  // namespace wavebatch
