#ifndef WAVEBATCH_UTIL_BITS_H_
#define WAVEBATCH_UTIL_BITS_H_

#include <cstdint>

namespace wavebatch {

/// True iff `n` is a (positive) power of two.
constexpr bool IsPowerOfTwo(uint64_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Floor of log2(n); `n` must be nonzero.
constexpr uint32_t FloorLog2(uint64_t n) {
  uint32_t r = 0;
  while (n >>= 1) ++r;
  return r;
}

/// Exact log2 of a power of two.
constexpr uint32_t ExactLog2(uint64_t n) { return FloorLog2(n); }

/// Smallest power of two >= n (n >= 1).
constexpr uint64_t NextPowerOfTwo(uint64_t n) {
  uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Euclidean (always non-negative) modulo for signed operands; `m > 0`.
constexpr int64_t EuclidMod(int64_t a, int64_t m) {
  int64_t r = a % m;
  return r < 0 ? r + m : r;
}

}  // namespace wavebatch

#endif  // WAVEBATCH_UTIL_BITS_H_
