#ifndef WAVEBATCH_QUERY_RANGE_SUM_H_
#define WAVEBATCH_QUERY_RANGE_SUM_H_

#include <string>

#include "cube/dense_cube.h"
#include "cube/relation.h"
#include "query/polynomial.h"
#include "query/range.h"

namespace wavebatch {

/// A polynomial range-sum (Definition 1): the vector query
///     q[x] = p(x) · χ_R(x),   result  ⟨q, Δ⟩ = Σ_{tuples t ∈ R} p(t).
/// COUNT, SUM, and SUM-OF-PRODUCTS are the p ≡ 1, p = x_i, p = x_i·x_j
/// instances; AVERAGE / VARIANCE / COVARIANCE are derived from these
/// (see query/derived.h).
class RangeSumQuery {
 public:
  RangeSumQuery(Range range, Polynomial poly, std::string label = "");

  /// COUNT(R): number of tuples in R.
  static RangeSumQuery Count(const Range& range, std::string label = "");
  /// SUM(R, x_dim): sum of attribute `dim` over tuples in R.
  static RangeSumQuery Sum(const Range& range, size_t dim,
                           std::string label = "");
  /// SUM(R, x_i·x_j): sum of the product of two attributes over R.
  static RangeSumQuery SumProduct(const Range& range, size_t dim_i,
                                  size_t dim_j, std::string label = "");
  /// SUM(R, x_dim^power).
  static RangeSumQuery SumPower(const Range& range, size_t dim,
                                uint32_t power, std::string label = "");

  const Range& range() const { return range_; }
  const Polynomial& poly() const { return poly_; }
  const std::string& label() const { return label_; }

  /// The δ of Definition 1: maximum per-variable degree of p. Determines
  /// the shortest Daubechies filter (length 2δ+2) with the paper's sparsity
  /// guarantee.
  uint32_t MaxVarDegree() const { return poly_.MaxVarDegree(); }

  /// Reference evaluation by scanning the relation: Σ_{t ∈ D, t ∈ R} p(t).
  double BruteForce(const Relation& relation) const;

  /// Reference evaluation against a materialized frequency distribution:
  /// Σ_{x ∈ R} p(x)·Δ[x].
  double BruteForce(const DenseCube& delta) const;

  /// Materializes the query vector q[x] = p(x)·χ_R(x) as a dense cube
  /// (tests and the Figure 2–4 harness; exponential in d, keep domains
  /// small).
  DenseCube ToDenseVector(const Schema& schema) const;

 private:
  Range range_;
  Polynomial poly_;
  std::string label_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_QUERY_RANGE_SUM_H_
