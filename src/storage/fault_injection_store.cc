#include "storage/fault_injection_store.h"

#include <string>
#include <thread>

#include "util/check.h"

namespace wavebatch {

namespace {

telemetry::Counter* InjectedFaultsCounter(const std::string& store) {
  return telemetry::MetricsRegistry::Default().GetCounter(
      "wavebatch_injected_faults_total", {{"store", store}},
      "Faults fired by a FaultInjectionStore schedule.");
}

}  // namespace

FaultInjectionStore::FaultInjectionStore(
    std::unique_ptr<CoefficientStore> inner, FaultInjectionOptions options)
    : owned_(std::move(inner)), inner_(owned_.get()), options_(options) {
  WB_CHECK(inner_ != nullptr);
  injected_faults_metric_ = InjectedFaultsCounter(name());
}

FaultInjectionStore::FaultInjectionStore(CoefficientStore* inner,
                                         FaultInjectionOptions options)
    : inner_(inner), options_(options) {
  WB_CHECK(inner_ != nullptr);
  injected_faults_metric_ = InjectedFaultsCounter(name());
}

void FaultInjectionStore::FailKey(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  failed_keys_.insert(key);
}

void FaultInjectionStore::Heal() {
  std::lock_guard<std::mutex> lock(mu_);
  failed_keys_.clear();
  options_.fail_every_n = 0;
  options_.fail_at_fetch = 0;
}

uint64_t FaultInjectionStore::fetch_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fetch_count_;
}

uint64_t FaultInjectionStore::injected_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_failures_;
}

Status FaultInjectionStore::CheckOneLocked(uint64_t key) const {
  const uint64_t ordinal = ++fetch_count_;
  if (failed_keys_.count(key) != 0) {
    ++injected_failures_;
    injected_faults_metric_->Add();
    return Status::Unavailable("injected fault: key " + std::to_string(key) +
                               " is failed until Heal()");
  }
  if (options_.fail_at_fetch != 0 && ordinal == options_.fail_at_fetch) {
    options_.fail_at_fetch = 0;  // one-shot: self-heals after firing
    ++injected_failures_;
    injected_faults_metric_->Add();
    return Status::Unavailable("injected fault: one-shot fault at fetch " +
                               std::to_string(ordinal));
  }
  if (options_.fail_every_n != 0 && ordinal % options_.fail_every_n == 0) {
    ++injected_failures_;
    injected_faults_metric_->Add();
    return Status::Unavailable("injected fault: fetch " +
                               std::to_string(ordinal) + " (every " +
                               std::to_string(options_.fail_every_n) + "th)");
  }
  return Status::OK();
}

void FaultInjectionStore::InjectLatency() const {
  if (options_.latency.count() > 0) {
    std::this_thread::sleep_for(options_.latency);
  }
}

Result<double> FaultInjectionStore::DoFetch(uint64_t key, IoStats* io) const {
  InjectLatency();
  {
    std::lock_guard<std::mutex> lock(mu_);
    Status status = CheckOneLocked(key);
    if (!status.ok()) return status;
  }
  return DelegateFetch(*inner_, key, io);
}

Status FaultInjectionStore::DoFetchBatch(std::span<const uint64_t> keys,
                                         std::span<double> out,
                                         IoStats* io) const {
  InjectLatency();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t key : keys) {
      Status status = CheckOneLocked(key);
      if (!status.ok()) return status;
    }
  }
  return DelegateFetchBatch(*inner_, keys, out, io);
}

Status FaultInjectionStore::DoFetchBatchRouted(std::span<const uint64_t> keys,
                                               std::span<const uint32_t> shards,
                                               std::span<double> out,
                                               IoStats* io) const {
  InjectLatency();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t key : keys) {
      Status status = CheckOneLocked(key);
      if (!status.ok()) return status;
    }
  }
  return DelegateFetchBatchRouted(*inner_, keys, shards, out, io);
}

}  // namespace wavebatch
