#include "core/block_progressive.h"

#include <unordered_map>

#include "util/check.h"

namespace wavebatch {

BlockProgressiveEvaluator::BlockProgressiveEvaluator(
    const MasterList* list, const PenaltyFunction* penalty,
    const CoefficientStore* store,
    const std::function<uint64_t(uint64_t)>& block_of)
    : list_(list), store_(store) {
  WB_CHECK(list_ != nullptr);
  WB_CHECK(penalty != nullptr);
  WB_CHECK(store_ != nullptr);
  estimates_.assign(list_->num_queries(), 0.0);

  std::unordered_map<uint64_t, size_t> block_index;
  std::vector<double> column(list_->num_queries(), 0.0);
  for (size_t i = 0; i < list_->size(); ++i) {
    const MasterEntry& e = list_->entry(i);
    for (const auto& [q, c] : e.uses) column[q] = c;
    const double importance = penalty->Apply(column);
    for (const auto& [q, c] : e.uses) column[q] = 0.0;

    const uint64_t block_id = block_of(e.key);
    auto [it, inserted] = block_index.try_emplace(block_id, blocks_.size());
    if (inserted) blocks_.push_back({block_id, 0.0, {}});
    Block& block = blocks_[it->second];
    block.importance += importance;
    block.entries.push_back(i);
  }
  for (size_t b = 0; b < blocks_.size(); ++b) {
    heap_.emplace(blocks_[b].importance, b);
  }
}

size_t BlockProgressiveEvaluator::StepBlock() {
  WB_CHECK(!Done()) << "StepBlock() after completion";
  const size_t b = heap_.top().second;
  heap_.pop();
  ++blocks_fetched_;
  const Block& block = blocks_[b];
  // One batched fetch per block — on a BlockStore backend this touches the
  // underlying block exactly once, matching the simulated cost model.
  std::vector<uint64_t> keys;
  keys.reserve(block.entries.size());
  for (size_t entry_idx : block.entries) {
    keys.push_back(list_->entry(entry_idx).key);
  }
  std::vector<double> values(keys.size());
  // Legacy evaluator: crash-on-error golden reference (see engine for the
  // fault-tolerant path).
  WB_CHECK_OK(store_->FetchBatch(keys, values, &io_));
  coefficients_fetched_ += block.entries.size();
  for (size_t i = 0; i < block.entries.size(); ++i) {
    if (values[i] == 0.0) continue;
    for (const auto& [q, c] : list_->entry(block.entries[i]).uses) {
      estimates_[q] += c * values[i];
    }
  }
  return block.entries.size();
}

void BlockProgressiveEvaluator::StepToBlocks(uint64_t n) {
  while (!Done() && blocks_fetched_ < n) StepBlock();
}

double BlockProgressiveEvaluator::NextBlockImportance() const {
  if (Done()) return 0.0;
  return heap_.top().first;
}

}  // namespace wavebatch
