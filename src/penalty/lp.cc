#include "penalty/lp.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/fingerprint.h"
#include "util/table.h"

namespace wavebatch {

LpPenalty::LpPenalty(double p) : p_(p) {
  WB_CHECK_GE(p, 1.0) << "Lp penalties require p >= 1 (convexity)";
}

LpPenalty LpPenalty::Infinity() { return LpPenalty(); }

double LpPenalty::Apply(std::span<const double> e) const {
  if (is_infinity_) {
    double max_abs = 0.0;
    for (double v : e) max_abs = std::max(max_abs, std::abs(v));
    return max_abs;
  }
  if (p_ == 1.0) {
    double acc = 0.0;
    for (double v : e) acc += std::abs(v);
    return acc;
  }
  if (p_ == 2.0) {
    double acc = 0.0;
    for (double v : e) acc += v * v;
    return std::sqrt(acc);
  }
  double acc = 0.0;
  for (double v : e) acc += std::pow(std::abs(v), p_);
  return std::pow(acc, 1.0 / p_);
}

std::string LpPenalty::name() const {
  if (is_infinity_) return "linf";
  return "l" + FormatDouble(p_, 3);
}

std::string LpPenalty::Fingerprint() const {
  std::string fp;
  // The type tag is the family ("lp"), not name(): name() rounds p for
  // display, and two different exponents must never fingerprint equal.
  fingerprint::AppendString(fp, "lp");
  fingerprint::AppendU64(fp, is_infinity_ ? 1 : 0);
  fingerprint::AppendF64(fp, p_);
  return fp;
}

}  // namespace wavebatch
