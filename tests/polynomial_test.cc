#include "query/polynomial.h"

#include "gtest/gtest.h"

namespace wavebatch {
namespace {

TEST(PolynomialTest, ZeroByDefault) {
  Polynomial p(3);
  EXPECT_TRUE(p.IsZero());
  EXPECT_EQ(p.MaxVarDegree(), 0u);
  EXPECT_DOUBLE_EQ(p.Evaluate({1, 2, 3}), 0.0);
  EXPECT_EQ(p.ToString(), "0");
}

TEST(PolynomialTest, Constant) {
  Polynomial p = Polynomial::Constant(2, 5.0);
  EXPECT_DOUBLE_EQ(p.Evaluate({7, 9}), 5.0);
  EXPECT_EQ(p.MaxVarDegree(), 0u);
}

TEST(PolynomialTest, ZeroConstantIsZero) {
  EXPECT_TRUE(Polynomial::Constant(2, 0.0).IsZero());
}

TEST(PolynomialTest, Attribute) {
  Polynomial p = Polynomial::Attribute(3, 1);
  EXPECT_DOUBLE_EQ(p.Evaluate({7, 9, 2}), 9.0);
  EXPECT_EQ(p.DegreeIn(1), 1u);
  EXPECT_EQ(p.DegreeIn(0), 0u);
}

TEST(PolynomialTest, AttributePower) {
  Polynomial p = Polynomial::AttributePower(2, 0, 3);
  EXPECT_DOUBLE_EQ(p.Evaluate({2, 5}), 8.0);
  EXPECT_EQ(p.MaxVarDegree(), 3u);
}

TEST(PolynomialTest, CanonicalizationMergesTerms) {
  Polynomial p(2, {{1.0, {1, 0}}, {2.0, {1, 0}}, {0.5, {0, 1}}});
  EXPECT_EQ(p.terms().size(), 2u);
  EXPECT_DOUBLE_EQ(p.Evaluate({2, 4}), 3.0 * 2 + 0.5 * 4);
}

TEST(PolynomialTest, CanonicalizationDropsZeroCoefficients) {
  Polynomial p(2, {{1.0, {1, 0}}, {-1.0, {1, 0}}});
  EXPECT_TRUE(p.IsZero());
}

TEST(PolynomialTest, Addition) {
  Polynomial p = Polynomial::Attribute(2, 0) + Polynomial::Constant(2, 1.0);
  EXPECT_DOUBLE_EQ(p.Evaluate({3, 0}), 4.0);
  EXPECT_EQ(p.terms().size(), 2u);
}

TEST(PolynomialTest, Multiplication) {
  // (x0 + 1)(x1 + 2) = x0·x1 + 2·x0 + x1 + 2.
  Polynomial a = Polynomial::Attribute(2, 0) + Polynomial::Constant(2, 1.0);
  Polynomial b = Polynomial::Attribute(2, 1) + Polynomial::Constant(2, 2.0);
  Polynomial p = a * b;
  EXPECT_EQ(p.terms().size(), 4u);
  for (uint32_t x = 0; x < 4; ++x) {
    for (uint32_t y = 0; y < 4; ++y) {
      EXPECT_DOUBLE_EQ(p.Evaluate({x, y}), (x + 1.0) * (y + 2.0));
    }
  }
}

TEST(PolynomialTest, MultiplicationDegreesAdd) {
  Polynomial p = Polynomial::AttributePower(2, 0, 2) *
                 Polynomial::AttributePower(2, 0, 1);
  EXPECT_EQ(p.DegreeIn(0), 3u);
}

TEST(PolynomialTest, ScalarMultiply) {
  Polynomial p = Polynomial::Attribute(1, 0) * 3.0;
  EXPECT_DOUBLE_EQ(p.Evaluate({4}), 12.0);
  EXPECT_TRUE((p * 0.0).IsZero());
}

TEST(PolynomialTest, MaxVarDegreeOverTerms) {
  Polynomial p(3, {{1.0, {2, 0, 0}}, {1.0, {0, 3, 1}}});
  EXPECT_EQ(p.MaxVarDegree(), 3u);
  EXPECT_EQ(p.DegreeIn(2), 1u);
}

TEST(PolynomialTest, ToString) {
  Polynomial p(2, {{2.0, {2, 1}}, {1.0, {0, 0}}});
  EXPECT_EQ(p.ToString(), "1.000000 + 2.000000*x0^2*x1");
}

}  // namespace
}  // namespace wavebatch
