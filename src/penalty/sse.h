#ifndef WAVEBATCH_PENALTY_SSE_H_
#define WAVEBATCH_PENALTY_SSE_H_

#include <vector>

#include "penalty/penalty.h"

namespace wavebatch {

/// P1: the sum of square errors p(e) = Σ|e_i|² — the penalty minimized by
/// the plain biggest-B progression of Section 2.
class SsePenalty : public PenaltyFunction {
 public:
  double Apply(std::span<const double> e) const override;
  double HomogeneityDegree() const override { return 2.0; }
  bool IsQuadratic() const override { return true; }
  std::string name() const override { return "sse"; }
  std::string Fingerprint() const override;
};

/// Diagonal quadratic penalty p(e) = Σ w_i·|e_i|² with w_i >= 0. Zero
/// weights declare errors irrelevant (the semi-definite flexibility
/// Definition 2 calls out).
class WeightedSsePenalty : public PenaltyFunction {
 public:
  /// One non-negative weight per batch query.
  explicit WeightedSsePenalty(std::vector<double> weights);

  double Apply(std::span<const double> e) const override;
  double HomogeneityDegree() const override { return 2.0; }
  bool IsQuadratic() const override { return true; }
  std::string name() const override { return "weighted-sse"; }
  std::string Fingerprint() const override;

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
};

/// P2: the cursored SSE — high-priority queries (the set "near the cursor",
/// e.g. currently rendered on screen) weigh `priority_weight` times more
/// than the rest:  p(e) = w·Σ_{i∈H}|e_i|² + Σ_{i∉H}|e_i|².
WeightedSsePenalty CursoredSsePenalty(size_t num_queries,
                                      std::span<const size_t> high_priority,
                                      double priority_weight = 10.0);

}  // namespace wavebatch

#endif  // WAVEBATCH_PENALTY_SSE_H_
