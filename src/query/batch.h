#ifndef WAVEBATCH_QUERY_BATCH_H_
#define WAVEBATCH_QUERY_BATCH_H_

#include <vector>

#include "query/range_sum.h"

namespace wavebatch {

/// An ordered batch of polynomial range-sums submitted together — the unit
/// of evaluation for Batch-Biggest-B. The index of a query in the batch is
/// its coordinate in error vectors and penalty functions (a cursored
/// penalty's "high-priority set" is a set of these indices).
class QueryBatch {
 public:
  explicit QueryBatch(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t size() const { return queries_.size(); }
  const RangeSumQuery& query(size_t i) const { return queries_[i]; }
  const std::vector<RangeSumQuery>& queries() const { return queries_; }

  /// Appends a query (dimensionality checked).
  void Add(RangeSumQuery query);

  /// The largest per-variable degree across the batch — the δ that picks
  /// the wavelet filter for the whole batch.
  uint32_t MaxVarDegree() const;

  /// Reference results by scanning the relation (one pass over all tuples).
  std::vector<double> BruteForce(const Relation& relation) const;

  /// Reference results against a materialized frequency distribution.
  std::vector<double> BruteForce(const DenseCube& delta) const;

 private:
  Schema schema_;
  std::vector<RangeSumQuery> queries_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_QUERY_BATCH_H_
