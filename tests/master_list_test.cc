#include "core/master_list.h"

#include "data/generators.h"
#include "gtest/gtest.h"
#include "strategy/wavelet_strategy.h"

namespace wavebatch {
namespace {

TEST(MasterListTest, FromQueryVectorsMergesByKey) {
  std::vector<SparseVec> qs = {
      SparseVec::FromUnsorted({{1, 1.0}, {5, 2.0}}),
      SparseVec::FromUnsorted({{5, 3.0}, {9, -1.0}}),
      SparseVec::FromUnsorted({{1, 0.5}, {5, 0.5}, {9, 0.5}}),
  };
  MasterList list = MasterList::FromQueryVectors(qs);
  EXPECT_EQ(list.num_queries(), 3u);
  EXPECT_EQ(list.size(), 3u);  // keys 1, 5, 9
  EXPECT_EQ(list.TotalQueryCoefficients(), 7u);
  EXPECT_EQ(list.MaxSharing(), 3u);

  EXPECT_EQ(list.entry(0).key, 1u);
  ASSERT_EQ(list.entry(0).uses.size(), 2u);
  EXPECT_EQ(list.entry(0).uses[0].first, 0u);
  EXPECT_DOUBLE_EQ(list.entry(0).uses[0].second, 1.0);
  EXPECT_EQ(list.entry(0).uses[1].first, 2u);

  EXPECT_EQ(list.entry(1).key, 5u);
  EXPECT_EQ(list.entry(1).uses.size(), 3u);
}

TEST(MasterListTest, EntriesSortedAndUsesAscending) {
  std::vector<SparseVec> qs = {
      SparseVec::FromUnsorted({{100, 1.0}, {2, 1.0}, {50, 1.0}}),
      SparseVec::FromUnsorted({{50, 1.0}, {2, 1.0}}),
  };
  MasterList list = MasterList::FromQueryVectors(qs);
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_LT(list.entry(i - 1).key, list.entry(i).key);
  }
  for (size_t i = 0; i < list.size(); ++i) {
    const auto& uses = list.entry(i).uses;
    for (size_t j = 1; j < uses.size(); ++j) {
      EXPECT_LT(uses[j - 1].first, uses[j].first);
    }
  }
}

TEST(MasterListTest, PerQueryCoefficients) {
  std::vector<SparseVec> qs = {
      SparseVec::FromUnsorted({{1, 1.0}}),
      SparseVec::FromUnsorted({{1, 1.0}, {2, 1.0}, {3, 1.0}}),
  };
  MasterList list = MasterList::FromQueryVectors(qs);
  ASSERT_EQ(list.PerQueryCoefficients().size(), 2u);
  EXPECT_EQ(list.PerQueryCoefficients()[0], 1u);
  EXPECT_EQ(list.PerQueryCoefficients()[1], 3u);
}

TEST(MasterListTest, EmptyBatch) {
  MasterList list = MasterList::FromQueryVectors({});
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.num_queries(), 0u);
  EXPECT_EQ(list.MaxSharing(), 0u);
}

TEST(MasterListTest, BuildFromBatchSharesAcrossAdjacentRanges) {
  // Two adjacent ranges share boundary wavelets: the master list must be
  // strictly smaller than the sum of the parts.
  Schema schema = Schema::Uniform(2, 32);
  WaveletStrategy strategy(schema, WaveletKind::kHaar);
  QueryBatch batch(schema);
  batch.Add(RangeSumQuery::Count(Range::All(schema).Restrict(0, 0, 15)));
  batch.Add(RangeSumQuery::Count(Range::All(schema).Restrict(0, 16, 31)));
  Result<MasterList> list = MasterList::Build(batch, strategy);
  ASSERT_TRUE(list.ok()) << list.status();
  EXPECT_LT(list->size(), list->TotalQueryCoefficients());
  EXPECT_GE(list->MaxSharing(), 2u);
}

TEST(MasterListTest, BuildPropagatesRewriteErrors) {
  // A prefix-sum strategy that does not support SUM monomials.
  Schema schema = Schema::Uniform(2, 8);
  QueryBatch batch(schema);
  batch.Add(RangeSumQuery::Sum(Range::All(schema), 0));
  // Use wavelet strategy with mismatched dims to trigger an error instead:
  WaveletStrategy other(Schema::Uniform(3, 8), WaveletKind::kHaar);
  Result<MasterList> list = MasterList::Build(batch, other);
  EXPECT_FALSE(list.ok());
}

}  // namespace
}  // namespace wavebatch
