// Regression gate over two google-benchmark JSON reports:
//
//   ./build/tools/bench_compare bench/baselines/BENCH_micro.json \
//       build/bench/BENCH_micro.json [--threshold=0.15] \
//       [--counter=block_reads]... [--enforce-time]
//
// Prints a per-benchmark delta table (cpu time plus every shared counter)
// and exits nonzero iff a *named* counter regressed by more than the
// threshold. Counters like block_reads count work (I/O round-trips), so
// "regressed" means "grew"; they are machine-independent, which is what
// makes them enforceable against a snapshot committed from a different
// machine. Wall/CPU times are reported for eyeballs only unless
// --enforce-time is passed (useful when baseline and candidate ran on the
// same box), in which case cpu_time joins the gated set with the same
// threshold.
//
// Exit codes: 0 ok, 1 regression, 2 usage / malformed / debug-built input
// (reports whose context says the project was compiled in debug are
// rejected on either side — their numbers gate nothing meaningfully).
// Reports also carry a "wavebatch_kernel_tier" context stamp; when the two
// sides ran different SIMD tiers, --enforce-time is refused (exit 2) and
// only counters gate — cpu times measured on different kernels are not
// comparable, exactly like debug vs release.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace {

// --- Minimal JSON reader -----------------------------------------------
// google-benchmark's writer emits a small, regular subset of JSON; this
// parser accepts full JSON anyway (objects, arrays, strings with escapes,
// numbers, true/false/null) so format drift cannot silently truncate the
// report. No dependency: the toolchain has no vendored JSON library and
// the CI image must build this with the base compiler alone.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    pos_ = 0;
    if (!ParseValue(out, error)) return false;
    SkipWs();
    if (pos_ != text_.size()) {
      *error = "trailing characters at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(std::string* error, const std::string& what) {
    *error = what + " at offset " + std::to_string(pos_);
    return false;
  }

  bool Consume(char c, std::string* error) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(error, std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out, std::string* error) {
    SkipWs();
    if (pos_ >= text_.size()) return Fail(error, "unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, error);
    if (c == '[') return ParseArray(out, error);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string, error);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return ParseNumber(out, error);
  }

  bool ParseObject(JsonValue* out, std::string* error) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{', error)) return false;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key, error)) return false;
      if (!Consume(':', error)) return false;
      JsonValue value;
      if (!ParseValue(&value, error)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume('}', error);
    }
  }

  bool ParseArray(JsonValue* out, std::string* error) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[', error)) return false;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value, error)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume(']', error);
    }
  }

  bool ParseString(std::string* out, std::string* error) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail(error, "expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u':
          // Benchmark names are ASCII; keep the escape verbatim rather
          // than transcoding.
          if (pos_ + 4 > text_.size()) return Fail(error, "bad \\u escape");
          out->append("\\u").append(text_, pos_, 4);
          pos_ += 4;
          break;
        default:
          return Fail(error, "bad escape");
      }
    }
    return Fail(error, "unterminated string");
  }

  bool ParseNumber(JsonValue* out, std::string* error) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail(error, "expected value");
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                              nullptr);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- Report model -------------------------------------------------------

struct BenchRun {
  double cpu_time = 0.0;
  std::string time_unit;
  // User counters, normalized per iteration: google-benchmark accumulates
  // plain counters across however many iterations the timer chose, and the
  // iteration count differs run to run — the per-iteration value is the
  // machine-independent quantity.
  std::map<std::string, double> counters;
};

/// The report's effective build type, lower-cased: the project-stamped
/// "wavebatch_build_type" context key when present, else google-benchmark's
/// stock "library_build_type" (which describes the benchmark *library*;
/// only trustworthy when the library was built alongside the project).
/// Empty when the report has no context section at all (tests and
/// hand-rolled fixtures) — absence is not evidence of a debug build.
std::string EffectiveBuildType(const JsonValue& root) {
  const JsonValue* context = root.Find("context");
  if (context == nullptr || context->kind != JsonValue::Kind::kObject) {
    return "";
  }
  const JsonValue* type = context->Find("wavebatch_build_type");
  if (type == nullptr) type = context->Find("library_build_type");
  if (type == nullptr || type->kind != JsonValue::Kind::kString) return "";
  std::string value = type->string;
  for (char& c : value) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return value;
}

/// A project-stamped context string ("wavebatch_kernel_tier",
/// "wavebatch_cpu_features"), or "" when the report predates the stamp.
std::string ContextString(const JsonValue& root, const std::string& key) {
  const JsonValue* context = root.Find("context");
  if (context == nullptr || context->kind != JsonValue::Kind::kObject) {
    return "";
  }
  const JsonValue* value = context->Find(key);
  if (value == nullptr || value->kind != JsonValue::Kind::kString) return "";
  return value->string;
}

/// Report-level metadata the gate's comparability checks read.
struct ReportMeta {
  /// "scalar" / "avx2" / "avx512", or "" on pre-stamp reports.
  std::string kernel_tier;
  std::string cpu_features;
};

bool LoadReport(const std::string& path, std::map<std::string, BenchRun>* out,
                ReportMeta* meta) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    return false;
  }
  std::string text;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) text.append(chunk, n);
  std::fclose(f);

  JsonValue root;
  std::string error;
  if (!JsonParser(text).Parse(&root, &error) ||
      root.kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 error.empty() ? "not a JSON object" : error.c_str());
    return false;
  }
  // Debug-built numbers are not comparable to (or usable as) baselines:
  // refuse them outright rather than letting the gate pass or fail on
  // noise. This catches both sides — a debug baseline snuck into the repo
  // and a debug candidate run in CI.
  const std::string build_type = EffectiveBuildType(root);
  if (build_type == "debug") {
    std::fprintf(stderr,
                 "bench_compare: %s was recorded from a debug build (context "
                 "build type \"%s\"); debug timings/counters are not "
                 "comparable. Regenerate the report from a Release build "
                 "(cmake -DCMAKE_BUILD_TYPE=Release) so the JSON context "
                 "carries wavebatch_build_type=\"release\".\n",
                 path.c_str(), build_type.c_str());
    return false;
  }
  meta->kernel_tier = ContextString(root, "wavebatch_kernel_tier");
  meta->cpu_features = ContextString(root, "wavebatch_cpu_features");
  const JsonValue* benchmarks = root.Find("benchmarks");
  if (benchmarks == nullptr || benchmarks->kind != JsonValue::Kind::kArray) {
    std::fprintf(stderr, "bench_compare: %s: no \"benchmarks\" array\n",
                 path.c_str());
    return false;
  }
  // Everything numeric that is not a known time/throughput field is a user
  // counter (google-benchmark flattens counters into the benchmark object).
  const std::vector<std::string> builtin = {
      "real_time", "cpu_time", "iterations", "threads", "repetitions",
      "repetition_index", "family_index", "per_family_instance_index",
      "items_per_second", "bytes_per_second"};
  for (const JsonValue& b : benchmarks->array) {
    if (b.kind != JsonValue::Kind::kObject) continue;
    const JsonValue* run_type = b.Find("run_type");
    if (run_type != nullptr && run_type->string != "iteration") continue;
    const JsonValue* name = b.Find("name");
    if (name == nullptr) continue;
    BenchRun run;
    if (const JsonValue* t = b.Find("cpu_time")) run.cpu_time = t->number;
    if (const JsonValue* u = b.Find("time_unit")) run.time_unit = u->string;
    double iterations = 1.0;
    if (const JsonValue* it = b.Find("iterations")) {
      if (it->number > 0.0) iterations = it->number;
    }
    for (const auto& [key, value] : b.object) {
      if (value.kind != JsonValue::Kind::kNumber) continue;
      bool is_builtin = false;
      for (const std::string& known : builtin) {
        if (key == known) {
          is_builtin = true;
          break;
        }
      }
      if (!is_builtin) run.counters[key] = value.number / iterations;
    }
    (*out)[name->string] = run;
  }
  return true;
}

double DeltaPct(double base, double cur) {
  if (base == 0.0) return cur == 0.0 ? 0.0 : 100.0;
  return (cur - base) / base * 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  // Default gated counters: exactly reproducible functions of the workload
  // (master-list / plan sizes). block_reads is reported but not gated by
  // default — tiny-batch cache warmup makes its per-iteration value noisy;
  // opt in with --counter=block_reads when comparing long same-machine runs.
  std::vector<std::string> enforced = {"master_entries", "plan_entries"};
  bool counters_overridden = false;
  bool enforce_time = false;
  double threshold = 0.15;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--counter=", 0) == 0) {
      if (!counters_overridden) enforced.clear();
      counters_overridden = true;
      enforced.push_back(arg.substr(10));
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::strtod(arg.substr(12).c_str(), nullptr);
    } else if (arg == "--enforce-time") {
      enforce_time = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_compare: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare BASELINE.json CURRENT.json"
                 " [--threshold=0.15] [--counter=NAME]... [--enforce-time]\n");
    return 2;
  }

  std::map<std::string, BenchRun> baseline;
  std::map<std::string, BenchRun> current;
  ReportMeta baseline_meta;
  ReportMeta current_meta;
  if (!LoadReport(paths[0], &baseline, &baseline_meta) ||
      !LoadReport(paths[1], &current, &current_meta)) {
    return 2;
  }

  // Kernel-tier comparability: timings taken on different SIMD tiers (or on
  // a pre-stamp report vs a stamped one when the current tier isn't scalar)
  // measure different code, so gating cpu_time across them is meaningless —
  // refuse it, mirroring the debug-build rejection. Counters stay gated:
  // they count work (retrievals, blocks, bytes, plan sizes), which every
  // tier performs identically by the bit-identity contract.
  const bool tier_mismatch =
      baseline_meta.kernel_tier != current_meta.kernel_tier;
  if (tier_mismatch) {
    std::fprintf(stderr,
                 "bench_compare: kernel tier mismatch: baseline \"%s\" "
                 "(cpu: %s) vs current \"%s\" (cpu: %s); cpu times are not "
                 "comparable across tiers.\n",
                 baseline_meta.kernel_tier.c_str(),
                 baseline_meta.cpu_features.c_str(),
                 current_meta.kernel_tier.c_str(),
                 current_meta.cpu_features.c_str());
    if (enforce_time) {
      std::fprintf(stderr,
                   "bench_compare: --enforce-time refused across mismatched "
                   "kernel tiers. Re-record the baseline on this tier, or "
                   "pin both runs with WAVEBATCH_FORCE_SCALAR=1.\n");
      return 2;
    }
    std::fprintf(stderr,
                 "bench_compare: continuing with counter gating only.\n");
  }

  int regressions = 0;
  size_t compared = 0;
  std::printf("%-55s %12s %12s\n", "benchmark", "cpu Δ%", "counters");
  for (const auto& [name, base] : baseline) {
    auto it = current.find(name);
    if (it == current.end()) {
      std::printf("%-55s %12s   MISSING from current report\n", name.c_str(),
                  "-");
      continue;
    }
    const BenchRun& cur = it->second;
    ++compared;
    const double cpu_delta = DeltaPct(base.cpu_time, cur.cpu_time);
    std::string counter_report;
    for (const auto& [counter, base_value] : base.counters) {
      auto cit = cur.counters.find(counter);
      if (cit == cur.counters.end()) continue;
      const double delta = DeltaPct(base_value, cit->second);
      char buf[128];
      std::snprintf(buf, sizeof(buf), " %s%+.1f%%(%s)",
                    counter_report.empty() ? "" : ",", delta, counter.c_str());
      counter_report += buf;
      for (const std::string& gated : enforced) {
        if (counter == gated && delta > threshold * 100.0) {
          std::fprintf(stderr,
                       "REGRESSION %s: counter %s %.6g -> %.6g (%+.1f%% > "
                       "%.0f%%)\n",
                       name.c_str(), counter.c_str(), base_value, cit->second,
                       delta, threshold * 100.0);
          ++regressions;
        }
      }
    }
    if (enforce_time && cpu_delta > threshold * 100.0) {
      std::fprintf(stderr, "REGRESSION %s: cpu_time %.6g -> %.6g %s (%+.1f%%)\n",
                   name.c_str(), base.cpu_time, cur.cpu_time,
                   cur.time_unit.c_str(), cpu_delta);
      ++regressions;
    }
    std::printf("%-55s %+11.1f%% %s\n", name.c_str(), cpu_delta,
                counter_report.empty() ? " -" : counter_report.c_str());
  }
  for (const auto& [name, run] : current) {
    if (baseline.find(name) == baseline.end()) {
      std::printf("%-55s %12s   NEW (no baseline)\n", name.c_str(), "-");
    }
  }
  if (compared == 0) {
    std::fprintf(stderr, "bench_compare: no overlapping benchmarks\n");
    return 2;
  }
  if (regressions > 0) {
    std::fprintf(stderr, "bench_compare: %d regression(s) beyond %.0f%%\n",
                 regressions, threshold * 100.0);
    return 1;
  }
  std::printf("OK: %zu benchmark(s) compared, no enforced regressions\n",
              compared);
  return 0;
}
