file(REMOVE_RECURSE
  "CMakeFiles/query_transform_test.dir/query_transform_test.cc.o"
  "CMakeFiles/query_transform_test.dir/query_transform_test.cc.o.d"
  "query_transform_test"
  "query_transform_test.pdb"
  "query_transform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
