# Empty dependencies file for dwt1d_test.
# This may be replaced when dependencies are built.
