file(REMOVE_RECURSE
  "libwavebatch_cube.a"
)
