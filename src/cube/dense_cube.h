#ifndef WAVEBATCH_CUBE_DENSE_CUBE_H_
#define WAVEBATCH_CUBE_DENSE_CUBE_H_

#include <span>
#include <vector>

#include "cube/schema.h"
#include "util/check.h"

namespace wavebatch {

/// A dense multidimensional array of doubles indexed by a Schema's domain —
/// the concrete representation of data frequency distributions, measure-
/// weighted distributions, and (in tests) query vectors. Storage is
/// row-major with dimension 0 slowest, matching Schema::Pack, so the packed
/// cell id is also the linear storage index.
class DenseCube {
 public:
  /// Zero-filled cube over `schema`.
  explicit DenseCube(Schema schema)
      : schema_(std::move(schema)), values_(schema_.cell_count(), 0.0) {}

  const Schema& schema() const { return schema_; }
  uint64_t size() const { return values_.size(); }

  double at(std::span<const uint32_t> coords) const {
    return values_[schema_.Pack(coords)];
  }
  double& at(std::span<const uint32_t> coords) {
    return values_[schema_.Pack(coords)];
  }

  double operator[](uint64_t cell) const {
    WB_DCHECK(cell < values_.size());
    return values_[cell];
  }
  double& operator[](uint64_t cell) {
    WB_DCHECK(cell < values_.size());
    return values_[cell];
  }

  std::span<double> values() { return values_; }
  std::span<const double> values() const { return values_; }

  /// Sum of all cell values.
  double Total() const;

  /// Sum of squared cell values (squared L2 norm).
  double SumSquares() const;

  /// Sum of absolute cell values (L1 norm); Theorem 1's constant K when
  /// applied to the transformed data vector.
  double SumAbs() const;

  /// Inner product with another cube over the same schema.
  double Dot(const DenseCube& other) const;

  /// Number of nonzero cells (|v| > eps).
  uint64_t CountNonZero(double eps = 0.0) const;

 private:
  Schema schema_;
  std::vector<double> values_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_CUBE_DENSE_CUBE_H_
