#include "strategy/identity_strategy.h"

#include "storage/memory_store.h"
#include "util/check.h"

namespace wavebatch {

Result<SparseVec> IdentityStrategy::TransformQuery(
    const RangeSumQuery& query) const {
  if (query.range().num_dims() != schema_.num_dims()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  const size_t d = schema_.num_dims();
  std::vector<SparseEntry> entries;
  entries.reserve(query.range().Volume());
  Tuple coords(d);
  for (size_t i = 0; i < d; ++i) coords[i] = query.range().interval(i).lo;
  for (;;) {
    const double v = query.poly().Evaluate(coords);
    if (v != 0.0) entries.push_back({schema_.Pack(coords), v});
    size_t dim = d;
    bool done = true;
    while (dim-- > 0) {
      if (coords[dim] < query.range().interval(dim).hi) {
        ++coords[dim];
        done = false;
        break;
      }
      coords[dim] = query.range().interval(dim).lo;
    }
    if (done) break;
  }
  return SparseVec::FromUnsorted(std::move(entries));
}

std::unique_ptr<CoefficientStore> IdentityStrategy::BuildStore(
    const DenseCube& delta) const {
  WB_CHECK(delta.schema() == schema_);
  auto store = std::make_unique<HashStore>();
  for (uint64_t cell = 0; cell < delta.size(); ++cell) {
    if (delta[cell] != 0.0) store->Add(cell, delta[cell]);
  }
  return store;
}

Result<SparseVec> IdentityStrategy::TransformUpdate(const Tuple& tuple,
                                                    double count) const {
  if (!schema_.Contains(tuple)) {
    return Status::OutOfRange("tuple outside schema domain");
  }
  if (count == 0.0) return SparseVec();
  return SparseVec::FromSorted({{schema_.Pack(tuple), count}});
}

std::unique_ptr<CoefficientStore> IdentityStrategy::MakeEmptyStore() const {
  return std::make_unique<HashStore>();
}

}  // namespace wavebatch
