file(REMOVE_RECURSE
  "CMakeFiles/bounded_workspace_test.dir/bounded_workspace_test.cc.o"
  "CMakeFiles/bounded_workspace_test.dir/bounded_workspace_test.cc.o.d"
  "bounded_workspace_test"
  "bounded_workspace_test.pdb"
  "bounded_workspace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_workspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
