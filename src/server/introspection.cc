#include "server/introspection.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "telemetry/export.h"

namespace wavebatch::server {

namespace {

/// JSON has no NaN/Inf literals; nonfinite values render as null so the
/// output always parses (a bound can be +inf before the first sample).
void AppendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void AppendU64(std::string& out, uint64_t v) { out += std::to_string(v); }

void AppendBool(std::string& out, bool v) { out += v ? "true" : "false"; }

/// Span names and attr keys are static-storage C strings from our own call
/// sites, but escape anyway — one stray quote must not break the endpoint.
void AppendString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendSpan(std::string& out, const telemetry::SpanEvent& span) {
  out += "{\"name\":";
  AppendString(out, span.name);
  out += ",\"span_id\":";
  AppendU64(out, span.span_id);
  out += ",\"parent_span_id\":";
  AppendU64(out, span.parent_span_id);
  out += ",\"tid\":";
  AppendU64(out, span.tid);
  out += ",\"ts_us\":";
  AppendNumber(out, span.ts_us);
  out += ",\"dur_us\":";
  AppendNumber(out, span.dur_us);
  out += ",\"attrs\":{";
  for (uint32_t a = 0; a < span.num_attrs; ++a) {
    if (a > 0) out += ',';
    AppendString(out, span.attrs[a].key);
    out += ':';
    AppendNumber(out, span.attrs[a].value);
  }
  out += "}}";
}

void AppendTimelineRecord(std::string& out,
                          const QueryService::TimelineRecord& record) {
  out += "{\"request_id\":";
  AppendU64(out, record.request_id);
  out += ",\"trace_id\":";
  AppendU64(out, record.trace_id);
  out += ",\"generation\":";
  AppendU64(out, record.generation);
  out += ",\"ok\":";
  AppendBool(out, record.ok);
  out += ",\"exact\":";
  AppendBool(out, record.exact);
  out += ",\"deadline_expired\":";
  AppendBool(out, record.deadline_expired);
  out += ",\"points\":[";
  for (size_t i = 0; i < record.points.size(); ++i) {
    const telemetry::TimelinePoint& p = record.points[i];
    if (i > 0) out += ',';
    out += "{\"steps\":";
    AppendU64(out, p.steps);
    out += ",\"retrievals\":";
    AppendU64(out, p.retrievals);
    out += ",\"estimate\":";
    AppendNumber(out, p.estimate);
    out += ",\"bound\":";
    AppendNumber(out, p.bound);
    out += ",\"skipped_importance\":";
    AppendNumber(out, p.skipped_importance);
    out += ",\"elapsed_us\":";
    AppendNumber(out, p.elapsed_us);
    out += '}';
  }
  out += "]}";
}

}  // namespace

std::string StatuszJson(const QueryService& service) {
  std::string out;
  out.reserve(1024);
  out += "{\"queue_depth\":";
  AppendU64(out, service.queue_depth());
  out += ",\"live_sessions\":";
  AppendU64(out, service.live_sessions());
  out += ",\"generation\":";
  AppendU64(out, service.generation());
  out += ",\"epoch\":";
  AppendU64(out, service.epoch());
  out += ",\"sheds\":";
  AppendU64(out, service.sheds());
  out += ",\"completed\":";
  AppendU64(out, service.completed());
  out += ",\"shared_fetch\":{\"hits\":";
  AppendU64(out, service.shared_hits());
  out += ",\"misses\":";
  AppendU64(out, service.shared_misses());
  out += "},\"groups\":[";
  const std::vector<QueryService::GroupStatus> groups =
      service.GroupStatuses();
  for (size_t i = 0; i < groups.size(); ++i) {
    const QueryService::GroupStatus& g = groups[i];
    if (i > 0) out += ',';
    out += "{\"generation\":";
    AppendU64(out, g.generation);
    out += ",\"epoch\":";
    AppendU64(out, g.epoch);
    out += ",\"members\":";
    AppendU64(out, g.members);
    out += ",\"cache_entries\":";
    AppendU64(out, g.cache_entries);
    out += ",\"cache_hits\":";
    AppendU64(out, g.cache_hits);
    out += ",\"cache_misses\":";
    AppendU64(out, g.cache_misses);
    out += ",\"k_sum_abs\":";
    AppendNumber(out, g.k_sum_abs);
    out += '}';
  }
  out += "],\"plan_cache\":{\"size\":";
  const PlanCache& cache = service.plan_cache();
  AppendU64(out, cache.size());
  out += ",\"hits\":";
  AppendU64(out, cache.hits());
  out += ",\"misses\":";
  AppendU64(out, cache.misses());
  out += ",\"evictions\":";
  AppendU64(out, cache.evictions());
  out += ",\"entries\":[";
  const std::vector<PlanCache::EntryInfo> entries = cache.Entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    const PlanCache::EntryInfo& e = entries[i];
    if (i > 0) out += ',';
    out += "{\"fingerprint\":";
    AppendString(out, e.fingerprint_prefix);
    out += ",\"data_epoch\":";
    AppendU64(out, e.data_epoch);
    out += ",\"plan_entries\":";
    AppendU64(out, e.plan_entries);
    out += ",\"num_queries\":";
    AppendU64(out, e.num_queries);
    out += '}';
  }
  out += "]}}";
  return out;
}

std::string TimelinesJson(
    const std::vector<QueryService::TimelineRecord>& records) {
  std::string out;
  out.reserve(256);
  out += '[';
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out += ',';
    AppendTimelineRecord(out, records[i]);
  }
  out += ']';
  return out;
}

std::string TracezJson(const QueryService* service,
                       const telemetry::MetricsRegistry& registry,
                       size_t max_spans) {
  const std::vector<telemetry::SpanEvent> spans = registry.Spans();
  const size_t begin = spans.size() > max_spans ? spans.size() - max_spans : 0;

  // Group by trace, keeping span recording order inside each trace; order
  // traces by their latest span so the most recent request comes first.
  struct TraceGroup {
    uint64_t request_id = 0;
    double last_ts = 0.0;
    std::vector<const telemetry::SpanEvent*> spans;
  };
  std::map<uint64_t, TraceGroup> by_trace;
  size_t untraced = 0;
  for (size_t i = begin; i < spans.size(); ++i) {
    const telemetry::SpanEvent& span = spans[i];
    if (span.trace_id == 0) {
      ++untraced;
      continue;
    }
    TraceGroup& group = by_trace[span.trace_id];
    if (span.request_id != 0) group.request_id = span.request_id;
    group.last_ts = std::max(group.last_ts, span.ts_us + span.dur_us);
    group.spans.push_back(&span);
  }
  std::vector<std::pair<uint64_t, const TraceGroup*>> ordered;
  ordered.reserve(by_trace.size());
  for (const auto& [trace_id, group] : by_trace) {
    ordered.emplace_back(trace_id, &group);
  }
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    return a.second->last_ts > b.second->last_ts;
  });

  std::string out;
  out.reserve(4096);
  out += "{\"dropped_spans\":";
  AppendU64(out, registry.dropped_spans());
  out += ",\"untraced_spans\":";
  AppendU64(out, untraced);
  out += ",\"traces\":[";
  for (size_t t = 0; t < ordered.size(); ++t) {
    if (t > 0) out += ',';
    out += "{\"trace_id\":";
    AppendU64(out, ordered[t].first);
    out += ",\"request_id\":";
    AppendU64(out, ordered[t].second->request_id);
    out += ",\"spans\":[";
    const auto& trace_spans = ordered[t].second->spans;
    for (size_t s = 0; s < trace_spans.size(); ++s) {
      if (s > 0) out += ',';
      AppendSpan(out, *trace_spans[s]);
    }
    out += "]}";
  }
  out += "],\"timelines\":";
  if (service != nullptr) {
    out += TimelinesJson(service->RecentTimelines());
  } else {
    out += "[]";
  }
  out += '}';
  return out;
}

void RegisterIntrospection(DebugHttpServer* http, const QueryService* service,
                           const telemetry::MetricsRegistry* registry) {
  http->Handle("/metrics", "text/plain; version=0.0.4", [registry] {
    return telemetry::ExportPrometheus(*registry);
  });
  http->Handle("/statusz", "application/json", [service] {
    return service != nullptr ? StatuszJson(*service)
                              : std::string("{\"error\":\"no service\"}");
  });
  http->Handle("/tracez", "application/json", [service, registry] {
    return TracezJson(service, *registry);
  });
  http->Handle("/", "text/plain", [] {
    return std::string(
        "wavebatch debug endpoints:\n"
        "  /metrics  Prometheus text exposition\n"
        "  /statusz  serving-stack status (JSON)\n"
        "  /tracez   recent traces + convergence timelines (JSON)\n");
  });
}

}  // namespace wavebatch::server
