#include "server/debug_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace wavebatch::server {

namespace {

/// Writes the whole buffer, retrying on short writes and EINTR. Best
/// effort: a peer that hangs up mid-response just loses the tail.
void WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
}

void WriteAll(int fd, const std::string& s) { WriteAll(fd, s.data(), s.size()); }

std::string StatusLine(int code, const char* reason) {
  std::string line = "HTTP/1.0 ";
  line += std::to_string(code);
  line += ' ';
  line += reason;
  line += "\r\n";
  return line;
}

}  // namespace

DebugHttpServer::~DebugHttpServer() { Stop(); }

void DebugHttpServer::Handle(std::string path, std::string content_type,
                             Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  routes_[std::move(path)] = Route{std::move(content_type), std::move(handler)};
}

Status DebugHttpServer::Start(uint16_t port) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return Status::InvalidArgument("already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never a public interface
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind 127.0.0.1:" + std::to_string(port) + ": " +
                            err);
  }
  if (::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen: " + err);
  }
  // Recover the kernel-assigned port when the caller asked for 0.
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname: " + err);
  }

  std::lock_guard<std::mutex> lock(mu_);
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void DebugHttpServer::Stop() {
  int fd = -1;
  std::thread joiner;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    fd = listen_fd_;
    listen_fd_ = -1;
    joiner = std::move(accept_thread_);
  }
  // shutdown() wakes the blocked accept(); close() releases the port.
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  if (joiner.joinable()) joiner.join();
  std::lock_guard<std::mutex> lock(mu_);
  port_ = 0;
}

uint16_t DebugHttpServer::port() const {
  std::lock_guard<std::mutex> lock(mu_);
  return port_;
}

bool DebugHttpServer::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void DebugHttpServer::AcceptLoop() {
  for (;;) {
    int fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!running_) return;
      fd = listen_fd_;
    }
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the listener down (or it failed fatally); either way
      // the loop is done.
      return;
    }
    ServeConnection(conn);
    ::close(conn);
  }
}

void DebugHttpServer::ServeConnection(int fd) {
  // Read until the request line is complete. Debug clients (curl, the
  // Prometheus scraper) send tiny requests; 4 KiB bounds a misbehaving one.
  std::string request;
  char buf[1024];
  while (request.find("\r\n") == std::string::npos && request.size() < 4096) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;  // malformed; just hang up

  // "GET <path> HTTP/x.y" — method and path are all we dispatch on.
  const std::string line = request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    WriteAll(fd, StatusLine(400, "Bad Request") + "\r\n");
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET") {
    WriteAll(fd, StatusLine(405, "Method Not Allowed") + "\r\n");
    return;
  }

  Route route;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = routes_.find(path);
    if (it != routes_.end()) {
      route = it->second;
      found = true;
    }
  }
  if (!found) {
    const std::string body = "not found: " + path + "\n";
    WriteAll(fd, StatusLine(404, "Not Found") +
                     "Content-Type: text/plain\r\nContent-Length: " +
                     std::to_string(body.size()) + "\r\n\r\n" + body);
    return;
  }

  const std::string body = route.handler();
  WriteAll(fd, StatusLine(200, "OK") + "Content-Type: " + route.content_type +
                   "\r\nContent-Length: " + std::to_string(body.size()) +
                   "\r\n\r\n" + body);
}

}  // namespace wavebatch::server
