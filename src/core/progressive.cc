#include "core/progressive.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace wavebatch {

ProgressiveEvaluator::ProgressiveEvaluator(const MasterList* list,
                                           const PenaltyFunction* penalty,
                                           const CoefficientStore* store,
                                           ProgressionOrder order,
                                           uint64_t seed)
    : list_(list), penalty_(penalty), store_(store), order_(order) {
  WB_CHECK(list_ != nullptr);
  WB_CHECK(penalty_ != nullptr);
  WB_CHECK(store_ != nullptr);
  estimates_.assign(list_->num_queries(), 0.0);
  fetched_.assign(list_->size(), false);

  // Step 4 of Batch-Biggest-B: compute ι_p(ξ) for every master-list entry
  // by applying the penalty to the column of query coefficients at ξ.
  importance_.resize(list_->size());
  std::vector<double> column(list_->num_queries(), 0.0);
  for (size_t i = 0; i < list_->size(); ++i) {
    const MasterEntry& e = list_->entry(i);
    for (const auto& [query, coeff] : e.uses) column[query] = coeff;
    importance_[i] = penalty_->Apply(column);
    remaining_importance_ += importance_[i];
    for (const auto& [query, coeff] : e.uses) column[query] = 0.0;
  }

  BuildOrder(order, seed);
}

void ProgressiveEvaluator::BuildOrder(ProgressionOrder order, uint64_t seed) {
  switch (order) {
    case ProgressionOrder::kBiggestB: {
      std::vector<HeapItem> items;
      items.reserve(list_->size());
      for (size_t i = 0; i < list_->size(); ++i) {
        items.emplace_back(importance_[i], i);
      }
      heap_ = std::priority_queue<HeapItem>(std::less<HeapItem>(),
                                            std::move(items));
      return;
    }
    case ProgressionOrder::kRoundRobin: {
      // Per query: its entries ordered by decreasing |own coefficient|.
      std::vector<std::vector<std::pair<double, size_t>>> per_query(
          list_->num_queries());
      for (size_t i = 0; i < list_->size(); ++i) {
        for (const auto& [query, coeff] : list_->entry(i).uses) {
          per_query[query].emplace_back(std::abs(coeff), i);
        }
      }
      for (auto& v : per_query) {
        std::sort(v.begin(), v.end(),
                  [](const auto& a, const auto& b) { return a.first > b.first; });
      }
      sequence_.reserve(list_->TotalQueryCoefficients());
      for (size_t round = 0;; ++round) {
        bool any = false;
        for (const auto& v : per_query) {
          if (round < v.size()) {
            sequence_.push_back(v[round].second);
            any = true;
          }
        }
        if (!any) break;
      }
      return;
    }
    case ProgressionOrder::kRandom: {
      sequence_.resize(list_->size());
      for (size_t i = 0; i < list_->size(); ++i) sequence_[i] = i;
      Rng rng(seed);
      rng.Shuffle(sequence_);
      return;
    }
    case ProgressionOrder::kKeyOrder: {
      sequence_.resize(list_->size());
      for (size_t i = 0; i < list_->size(); ++i) sequence_[i] = i;
      return;
    }
  }
  WB_CHECK(false) << "unknown ProgressionOrder";
}

size_t ProgressiveEvaluator::NextEntry() const {
  if (order_ == ProgressionOrder::kBiggestB) {
    WB_CHECK(!heap_.empty());
    return heap_.top().second;
  }
  while (cursor_ < sequence_.size() && fetched_[sequence_[cursor_]]) {
    ++cursor_;
  }
  WB_CHECK_LT(cursor_, sequence_.size());
  return sequence_[cursor_];
}

size_t ProgressiveEvaluator::PopNext() {
  size_t entry_idx;
  if (order_ == ProgressionOrder::kBiggestB) {
    entry_idx = heap_.top().second;
    heap_.pop();
  } else {
    entry_idx = NextEntry();
    ++cursor_;
  }
  WB_CHECK(!fetched_[entry_idx]);
  fetched_[entry_idx] = true;
  ++steps_taken_;
  remaining_importance_ -= importance_[entry_idx];
  return entry_idx;
}

size_t ProgressiveEvaluator::Step() {
  WB_CHECK(!Done()) << "Step() after completion";
  const size_t entry_idx = PopNext();
  const MasterEntry& e = list_->entry(entry_idx);
  // Legacy evaluator: crash-on-error golden reference (see engine for the
  // fault-tolerant path).
  const double data = store_->Fetch(e.key, &io_).value();
  if (data != 0.0) {
    for (const auto& [query, coeff] : e.uses) {
      estimates_[query] += coeff * data;
    }
  }
  return entry_idx;
}

void ProgressiveEvaluator::StepMany(size_t n) {
  for (size_t i = 0; i < n && !Done(); ++i) Step();
}

size_t ProgressiveEvaluator::StepBatch(size_t n) {
  n = std::min<size_t>(n, TotalSteps() - StepsTaken());
  if (n == 0) return 0;
  std::vector<size_t> popped;
  popped.reserve(n);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t entry_idx = PopNext();
    popped.push_back(entry_idx);
    keys.push_back(list_->entry(entry_idx).key);
  }
  std::vector<double> values(keys.size());
  WB_CHECK_OK(store_->FetchBatch(keys, values, &io_));
  // Apply in pop order: the identical floating-point accumulation sequence
  // a scalar Step() loop would produce.
  for (size_t i = 0; i < popped.size(); ++i) {
    if (values[i] == 0.0) continue;
    for (const auto& [query, coeff] : list_->entry(popped[i]).uses) {
      estimates_[query] += coeff * values[i];
    }
  }
  return n;
}

double ProgressiveEvaluator::NextImportance() const {
  if (Done()) return 0.0;
  if (order_ == ProgressionOrder::kBiggestB) return heap_.top().first;
  return importance_[NextEntry()];
}

double ProgressiveEvaluator::WorstCaseBound(double k_sum_abs) const {
  return std::pow(k_sum_abs, penalty_->HomogeneityDegree()) *
         NextImportance();
}

double ProgressiveEvaluator::ExpectedPenalty(uint64_t domain_cells) const {
  WB_CHECK_GT(domain_cells, 0u);
  // Clamp tiny negative drift from repeated subtraction.
  const double remaining = std::max(remaining_importance_, 0.0);
  return remaining / static_cast<double>(domain_cells);
}

}  // namespace wavebatch
