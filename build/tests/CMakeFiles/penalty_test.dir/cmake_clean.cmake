file(REMOVE_RECURSE
  "CMakeFiles/penalty_test.dir/penalty_test.cc.o"
  "CMakeFiles/penalty_test.dir/penalty_test.cc.o.d"
  "penalty_test"
  "penalty_test.pdb"
  "penalty_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/penalty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
