file(REMOVE_RECURSE
  "libwavebatch_util.a"
)
