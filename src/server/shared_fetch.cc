#include "server/shared_fetch.h"

#include <unordered_set>
#include <utility>

#include "util/check.h"

namespace wavebatch::server {

SharedFetchStore::SharedFetchStore(
    std::shared_ptr<const CoefficientStore> inner,
    std::shared_ptr<SharedFetchCache> cache)
    : inner_(std::move(inner)), cache_(std::move(cache)) {
  WB_CHECK(inner_ != nullptr);
  WB_CHECK(cache_ != nullptr);
}

void SharedFetchStore::Add(uint64_t key, double delta) {
  (void)key;
  (void)delta;
  WB_CHECK(false) << "Add() on a read-only SharedFetchStore";
}

std::shared_ptr<const CoefficientStore> SharedFetchStore::PinVersion() const {
  std::shared_ptr<const CoefficientStore> pinned = inner_->PinVersion();
  if (pinned == nullptr) return nullptr;  // inner stable -> so are we
  return std::make_shared<SharedFetchStore>(std::move(pinned), cache_);
}

Result<double> SharedFetchStore::DoFetch(uint64_t key, IoStats* io) const {
  double value = 0.0;
  if (cache_->Lookup(key, &value)) return value;
  Result<double> fetched = DelegateFetch(*inner_, key, io);
  if (fetched.ok()) cache_->Insert(key, fetched.value());
  return fetched;
}

Status SharedFetchStore::FillMisses(std::span<const uint64_t> keys,
                                    std::span<const uint32_t> shards,
                                    std::span<double> out,
                                    const std::vector<size_t>& missing_index,
                                    IoStats* io) const {
  std::vector<uint64_t> miss_keys;
  miss_keys.reserve(missing_index.size());
  for (size_t i : missing_index) miss_keys.push_back(keys[i]);
  std::vector<double> miss_values(miss_keys.size());
  Status status;
  if (shards.empty()) {
    status = DelegateFetchBatch(*inner_, miss_keys, miss_values, io);
  } else {
    std::vector<uint32_t> miss_shards;
    miss_shards.reserve(missing_index.size());
    for (size_t i : missing_index) miss_shards.push_back(shards[i]);
    status = DelegateFetchBatchRouted(*inner_, miss_keys, miss_shards,
                                      miss_values, io);
  }
  if (!status.ok()) return status;
  for (size_t j = 0; j < missing_index.size(); ++j) {
    out[missing_index[j]] = miss_values[j];
  }
  cache_->InsertBatch(miss_keys, miss_values);
  return Status::OK();
}

Status SharedFetchStore::DoFetchBatch(std::span<const uint64_t> keys,
                                      std::span<double> out,
                                      IoStats* io) const {
  std::vector<size_t> missing;
  cache_->Partition(keys, out, &missing);
  if (missing.empty()) return Status::OK();
  return FillMisses(keys, {}, out, missing, io);
}

Status SharedFetchStore::DoFetchBatchRouted(std::span<const uint64_t> keys,
                                            std::span<const uint32_t> shards,
                                            std::span<double> out,
                                            IoStats* io) const {
  std::vector<size_t> missing;
  cache_->Partition(keys, out, &missing);
  if (missing.empty()) return Status::OK();
  return FillMisses(keys, shards, out, missing, io);
}

Status SharedFetchStore::Prefetch(std::span<const uint64_t> keys,
                                  IoStats* io) const {
  // Dedup and drop warm keys first: the union of several sessions' upcoming
  // quanta overlaps heavily (that is the point), and the backend should see
  // each cold key exactly once.
  std::unordered_set<uint64_t> seen;
  std::vector<uint64_t> cold;
  seen.reserve(keys.size());
  double ignored = 0.0;
  for (uint64_t key : keys) {
    if (!seen.insert(key).second) continue;
    if (cache_->Lookup(key, &ignored)) continue;
    cold.push_back(key);
  }
  if (cold.empty()) return Status::OK();
  std::vector<double> values(cold.size());
  Status status = DelegateFetchBatch(*inner_, cold, values, io);
  if (status.ok()) {
    cache_->InsertBatch(cold, values);
    return status;
  }
  // Faulted batch: salvage per key so one bad coefficient does not defeat
  // sharing for the whole group. Sessions will meet the bad keys themselves
  // and apply their own FaultPolicy.
  Status first = status;
  for (size_t i = 0; i < cold.size(); ++i) {
    Result<double> value = DelegateFetch(*inner_, cold[i], io);
    if (value.ok()) cache_->Insert(cold[i], value.value());
  }
  return first;
}

}  // namespace wavebatch::server
