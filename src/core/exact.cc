#include "core/exact.h"

namespace wavebatch {

ExactBatchResult EvaluateNaive(
    const std::vector<SparseVec>& query_coefficients,
    CoefficientStore& store) {
  ExactBatchResult out;
  out.results.resize(query_coefficients.size(), 0.0);
  const uint64_t before = store.stats().retrievals;
  for (size_t qi = 0; qi < query_coefficients.size(); ++qi) {
    double acc = 0.0;
    for (const SparseEntry& e : query_coefficients[qi]) {
      acc += e.value * store.Fetch(e.key);
    }
    out.results[qi] = acc;
  }
  out.retrievals = store.stats().retrievals - before;
  return out;
}

ExactBatchResult EvaluateShared(const MasterList& list,
                                CoefficientStore& store) {
  ExactBatchResult out;
  out.results.resize(list.num_queries(), 0.0);
  const uint64_t before = store.stats().retrievals;
  for (const MasterEntry& entry : list.entries()) {
    const double data = store.Fetch(entry.key);
    if (data == 0.0) continue;
    for (const auto& [query, coeff] : entry.uses) {
      out.results[query] += coeff * data;
    }
  }
  out.retrievals = store.stats().retrievals - before;
  return out;
}

}  // namespace wavebatch
