#include "core/trace.h"

namespace wavebatch {

Table ProgressionTrace::ToTable() const {
  std::vector<std::string> headers = {"retrieved"};
  for (const std::string& name : measure_names_) headers.push_back(name);
  headers.push_back("mean_rel_err");
  headers.push_back("max_rel_err");
  if (has_bounds_) headers.push_back("worst_case_bound");
  if (has_expected_) headers.push_back("expected_penalty");
  if (has_skipped_) headers.push_back("skipped_importance");
  Table table(std::move(headers));
  for (const Point& pt : points_) {
    std::vector<std::string> row = {std::to_string(pt.retrieved)};
    for (double p : pt.penalties) row.push_back(FormatDouble(p));
    row.push_back(FormatDouble(pt.mean_relative_error));
    row.push_back(FormatDouble(pt.max_relative_error));
    if (has_bounds_) row.push_back(FormatDouble(pt.worst_case_bound));
    if (has_expected_) row.push_back(FormatDouble(pt.expected_penalty));
    if (has_skipped_) row.push_back(FormatDouble(pt.skipped_importance));
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace wavebatch
