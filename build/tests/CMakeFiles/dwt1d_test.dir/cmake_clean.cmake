file(REMOVE_RECURSE
  "CMakeFiles/dwt1d_test.dir/dwt1d_test.cc.o"
  "CMakeFiles/dwt1d_test.dir/dwt1d_test.cc.o.d"
  "dwt1d_test"
  "dwt1d_test.pdb"
  "dwt1d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwt1d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
