#include "core/trace.h"

#include <atomic>
#include <chrono>
#include <sstream>
#include <string_view>
#include <thread>

#include "core/exact.h"
#include "data/generators.h"
#include "engine/eval_plan.h"
#include "engine/eval_session.h"
#include "gtest/gtest.h"
#include "penalty/sse.h"
#include "storage/fault_injection_store.h"
#include "strategy/wavelet_strategy.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "telemetry/trace.h"
#include "util/thread_pool.h"

namespace wavebatch {
namespace {

struct TraceFixture {
  Schema schema = Schema::Uniform(2, 16);
  Relation rel;
  QueryBatch batch;
  MasterList list;
  std::unique_ptr<CoefficientStore> store;
  std::vector<double> exact;

  TraceFixture() : rel(MakeUniformRelation(schema, 400, 3)), batch(schema) {
    WaveletStrategy strategy(schema, WaveletKind::kHaar);
    for (uint32_t i = 0; i < 8; ++i) {
      batch.Add(RangeSumQuery::Count(
          Range::All(schema).Restrict(0, i * 2, i * 2 + 1)));
    }
    list = MasterList::Build(batch, strategy).value();
    store = strategy.BuildStore(rel.FrequencyDistribution());
    exact = batch.BruteForce(rel);
  }
};

TEST(TraceTest, StartsAtZeroAndEndsExact) {
  TraceFixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  ProgressionTrace trace =
      ProgressionTrace::Run(ev, f.exact, {{"sse", &sse, 1.0}});
  ASSERT_GE(trace.points().size(), 2u);
  EXPECT_EQ(trace.points().front().retrieved, 0u);
  EXPECT_EQ(trace.points().back().retrieved, f.list.size());
  // Final estimates are exact (modulo rewrite threshold).
  EXPECT_NEAR(trace.points().back().penalties[0], 0.0, 1e-6);
  EXPECT_NEAR(trace.points().back().mean_relative_error, 0.0, 1e-9);
}

TEST(TraceTest, RetrievedStrictlyIncreases) {
  TraceFixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  ProgressionTrace trace =
      ProgressionTrace::Run(ev, f.exact, {{"sse", &sse, 1.0}});
  for (size_t i = 1; i < trace.points().size(); ++i) {
    EXPECT_GT(trace.points()[i].retrieved, trace.points()[i - 1].retrieved);
  }
}

TEST(TraceTest, DensePrefixThenGeometric) {
  TraceFixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  ProgressionTrace trace = ProgressionTrace::Run(
      ev, f.exact, {{"sse", &sse, 1.0}}, /*dense_until=*/8, /*growth=*/1.5);
  // The first checkpoints are consecutive.
  for (size_t i = 1; i < 8 && i < trace.points().size(); ++i) {
    EXPECT_EQ(trace.points()[i].retrieved, trace.points()[i - 1].retrieved + 1);
  }
}

TEST(TraceTest, MultipleMeasuresAndNormalizers) {
  TraceFixture f;
  SsePenalty sse;
  WeightedSsePenalty cursored =
      CursoredSsePenalty(f.batch.size(), std::vector<size_t>{0, 1}, 10.0);
  double norm = 0.0;
  for (double e : f.exact) norm += e * e;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  ProgressionTrace trace = ProgressionTrace::Run(
      ev, f.exact,
      {{"nsse", &sse, norm}, {"cursored", &cursored, 1.0}});
  ASSERT_EQ(trace.measure_names().size(), 2u);
  // Normalized SSE at step 0 with zero estimates = Σexact²/norm = 1.
  EXPECT_NEAR(trace.points().front().penalties[0], 1.0, 1e-9);
}

TEST(TraceTest, BoundsColumnsFilled) {
  TraceFixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  const double k = f.store->SumAbs();
  ProgressionTrace trace = ProgressionTrace::Run(
      ev, f.exact, {{"sse", &sse, 1.0}}, 16, 1.3, k, f.schema.cell_count());
  // Bound dominates measured penalty at every checkpoint.
  for (const auto& pt : trace.points()) {
    EXPECT_LE(pt.penalties[0], pt.worst_case_bound + 1e-5 * (1 + k * k));
  }
  // Expected-penalty column decreases to zero.
  EXPECT_NEAR(trace.points().back().expected_penalty, 0.0, 1e-9);
}

TEST(TraceTest, TableShape) {
  TraceFixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  ProgressionTrace trace =
      ProgressionTrace::Run(ev, f.exact, {{"sse", &sse, 1.0}});
  Table table = trace.ToTable();
  EXPECT_EQ(table.num_rows(), trace.points().size());
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_NE(os.str().find("retrieved,sse,mean_rel_err,max_rel_err"),
            std::string::npos);
}

TEST(TraceTest, SsePenaltyDecreasesOverall) {
  // Not necessarily monotone step-to-step on one dataset, but the curve
  // must collapse by orders of magnitude from start to finish.
  TraceFixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  ProgressionTrace trace =
      ProgressionTrace::Run(ev, f.exact, {{"sse", &sse, 1.0}});
  const double start = trace.points().front().penalties[0];
  const double end = trace.points().back().penalties[0];
  EXPECT_GT(start, 0.0);
  EXPECT_LT(end, start * 1e-6);
}

TEST(TraceTest, SkippedImportanceColumnForDegradedSessions) {
  // An EvalSession in kSkip mode gets the extra skipped_importance column;
  // it starts at 0, jumps when a fault is absorbed, and never decreases.
  TraceFixture f;
  auto shared_sse = std::make_shared<SsePenalty>();
  auto plan = EvalPlan::FromMasterList(
      std::make_shared<const MasterList>(f.list), shared_sse);

  FaultInjectionStore faulty(f.store.get());
  const std::span<const size_t> order =
      plan->Permutation(ProgressionOrder::kBiggestB);
  const size_t failed_entry = order[3];
  faulty.FailKey(f.list.entry(failed_entry).key);
  const double failed_importance = plan->importance(failed_entry);

  EvalSession::Options opts;
  opts.fault_policy = FaultPolicy::kSkip;
  EvalSession session(plan, UnownedStore(faulty), opts);
  ProgressionTrace trace = ProgressionTrace::Run(
      session, f.exact, {{"sse", shared_sse.get(), 1.0}});

  EXPECT_DOUBLE_EQ(trace.points().front().skipped_importance, 0.0);
  for (size_t i = 1; i < trace.points().size(); ++i) {
    EXPECT_GE(trace.points()[i].skipped_importance,
              trace.points()[i - 1].skipped_importance);
  }
  EXPECT_DOUBLE_EQ(trace.points().back().skipped_importance,
                   failed_importance);

  // The column shows up in the table under kSkip…
  std::ostringstream os;
  trace.ToTable().PrintCsv(os);
  EXPECT_NE(os.str().find("skipped_importance"), std::string::npos);

  // …and is absent for a kFail session (and for the legacy evaluator, per
  // TableShape above).
  EvalSession clean(plan, UnownedStore(*f.store));
  ProgressionTrace clean_trace = ProgressionTrace::Run(
      clean, f.exact, {{"sse", shared_sse.get(), 1.0}});
  std::ostringstream clean_os;
  clean_trace.ToTable().PrintCsv(clean_os);
  EXPECT_EQ(clean_os.str().find("skipped_importance"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Request-scoped telemetry tracing: cross-thread parent links through the
// ThreadPool hand-off, TraceContext propagation, and the Chrome exporter's
// flow events. These are the regression tests for worker spans that used to
// parent under whatever happened to be live on the worker thread instead of
// the submitting thread's span.

/// Finds the single span with `name` in the buffer snapshot; fails the test
/// if it is absent or duplicated.
const telemetry::SpanEvent* FindSpan(
    const std::vector<telemetry::SpanEvent>& spans, std::string_view name) {
  const telemetry::SpanEvent* found = nullptr;
  for (const telemetry::SpanEvent& span : spans) {
    if (std::string_view(span.name) != name) continue;
    EXPECT_EQ(found, nullptr) << "duplicate span " << name;
    found = &span;
  }
  EXPECT_NE(found, nullptr) << "missing span " << name;
  return found;
}

/// Spins until `done` flips (the pool's Submit is fire-and-forget).
void AwaitFlag(const std::atomic<bool>& done) {
  while (!done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(TelemetryHandoffTest, PoolTaskParentsUnderSubmittingSpan) {
  telemetry::MetricsRegistry::Enable();
  auto& registry = telemetry::MetricsRegistry::Default();
  registry.ResetValues();

  std::atomic<bool> done{false};
  {
    ThreadPool pool(1);
    {
      telemetry::ScopedSpan parent("tt_handoff_parent");
      pool.Submit([&done] {
        telemetry::ScopedSpan child("tt_handoff_child");
        done.store(true, std::memory_order_release);
      });
    }
    AwaitFlag(done);
  }

  const std::vector<telemetry::SpanEvent> spans = registry.Spans();
  const telemetry::SpanEvent* parent = FindSpan(spans, "tt_handoff_parent");
  const telemetry::SpanEvent* child = FindSpan(spans, "tt_handoff_child");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  // The regression: the worker span must link to the *submitting* thread's
  // span, across threads, even though no span was live on the worker.
  EXPECT_NE(parent->span_id, 0u);
  EXPECT_EQ(child->parent_span_id, parent->span_id);
  EXPECT_NE(child->tid, parent->tid);
}

TEST(TelemetryHandoffTest, WorkerDoesNotLeakContextIntoLaterTasks) {
  telemetry::MetricsRegistry::Enable();
  auto& registry = telemetry::MetricsRegistry::Default();
  registry.ResetValues();

  std::atomic<bool> first_done{false};
  std::atomic<bool> second_done{false};
  {
    ThreadPool pool(1);
    {
      telemetry::ScopedSpan parent("tt_leak_parent");
      pool.Submit([&first_done] {
        telemetry::ScopedSpan child("tt_leak_first");
        first_done.store(true, std::memory_order_release);
      });
    }
    AwaitFlag(first_done);
    // Submitted with no live span and no installed context: the worker's
    // state from the first task must not bleed into this one.
    pool.Submit([&second_done] {
      telemetry::ScopedSpan child("tt_leak_second");
      second_done.store(true, std::memory_order_release);
    });
    AwaitFlag(second_done);
  }

  const std::vector<telemetry::SpanEvent> spans = registry.Spans();
  const telemetry::SpanEvent* second = FindSpan(spans, "tt_leak_second");
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->parent_span_id, 0u);
  EXPECT_EQ(second->trace_id, 0u);
  EXPECT_EQ(second->request_id, 0u);
}

TEST(TelemetryHandoffTest, TraceIdsPropagateAcrossThePool) {
  telemetry::MetricsRegistry::Enable();
  auto& registry = telemetry::MetricsRegistry::Default();
  registry.ResetValues();

  telemetry::TraceContext ctx;
  ctx.trace_id = telemetry::NewTraceId();
  ctx.request_id = ctx.trace_id;

  std::atomic<bool> done{false};
  {
    ThreadPool pool(1);
    telemetry::ScopedTraceContext guard(ctx);
    telemetry::ScopedSpan parent("tt_prop_parent");
    pool.Submit([&done] {
      telemetry::ScopedSpan child("tt_prop_child");
      done.store(true, std::memory_order_release);
    });
    AwaitFlag(done);
  }
  // The guard restored this thread's state on destruction.
  EXPECT_EQ(telemetry::CurrentTraceContext().trace_id, 0u);

  const std::vector<telemetry::SpanEvent> spans = registry.Spans();
  for (const char* name : {"tt_prop_parent", "tt_prop_child"}) {
    const telemetry::SpanEvent* span = FindSpan(spans, name);
    ASSERT_NE(span, nullptr);
    EXPECT_EQ(span->trace_id, ctx.trace_id) << name;
    EXPECT_EQ(span->request_id, ctx.request_id) << name;
  }
}

TEST(TelemetryHandoffTest, ChromeExportEmitsFlowEventsForCrossThreadLinks) {
  telemetry::MetricsRegistry::Enable();
  auto& registry = telemetry::MetricsRegistry::Default();
  registry.ResetValues();

  std::atomic<bool> done{false};
  {
    ThreadPool pool(1);
    {
      telemetry::ScopedSpan parent("tt_flow_parent");
      pool.Submit([&done] {
        telemetry::ScopedSpan child("tt_flow_child");
        done.store(true, std::memory_order_release);
      });
    }
    AwaitFlag(done);
  }

  const std::string json = telemetry::ExportChromeTrace(registry);
  // The cross-thread parent link renders as a flow pair: an "s" on the
  // parent's thread and a binding-point "f" on the child's, sharing the
  // child's span id. Same-thread nesting (every other span here) must not
  // produce flow events.
  EXPECT_NE(json.find("\"name\":\"handoff\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);

  const std::vector<telemetry::SpanEvent> spans = registry.Spans();
  const telemetry::SpanEvent* child = FindSpan(spans, "tt_flow_child");
  ASSERT_NE(child, nullptr);
  const std::string flow_id = "\"id\":" + std::to_string(child->span_id);
  EXPECT_NE(json.find(flow_id), std::string::npos);
}

}  // namespace
}  // namespace wavebatch
