#ifndef WAVEBATCH_STORAGE_COMPRESSED_BLOCK_H_
#define WAVEBATCH_STORAGE_COMPRESSED_BLOCK_H_

#include <cstdint>
#include <span>
#include <vector>

namespace wavebatch {

/// Encoding knobs for one compressed page (BlockStore builds one page per
/// simulated disk block; see BlockStoreOptions::compress_pages).
struct CompressedPageOptions {
  /// Lossless by default: coefficient values are stored as raw IEEE-754
  /// bits. When true, values are uniform-quantized to `quant_bits` levels
  /// between the page's min and max; the page records the exact maximum
  /// absolute error its decoder can commit, which the engine folds into the
  /// Theorem-1 bound (EvalSession::WorstCaseBound) so every reported bound
  /// stays sound.
  bool quantize = false;
  /// Bits per quantized value, clamped to [1, 32]. 16 bits keeps the
  /// relative error around 2^-16 of the page's value range.
  uint32_t quant_bits = 16;
};

/// One immutable compressed disk page: the nonzero coefficients of one
/// block, keys delta-coded against the page's base key and bit-packed to
/// the minimal fixed width, values either raw IEEE bits (lossless) or
/// bit-packed uniform-quantized levels with a per-page scale/offset.
///
///   header (32 B): base_key, count, key_bits, value_bits, offset, scale
///   key stream:    count × key_bits   (key[i] - base_key, ascending)
///   value stream:  count × value_bits (raw bits, or quantization levels)
///
/// Lookups binary-search the key stream (fixed-width packing gives O(1)
/// random access to the i-th offset), so a point read is O(log count) with
/// no scratch decode buffer. Keys absent from the page decode to an exact
/// 0.0 — the page only stores nonzeros, and "not stored" was exactly zero
/// in the source store — so only present keys can carry quantization error.
///
/// Determinism contract: Decode(i) is a pure function of the encoded bits
/// (offset + level * scale, one multiply + one add), so every read of a key
/// returns the identical double on every host and every tier.
class CompressedPage {
 public:
  CompressedPage() = default;

  /// Encodes one page. `keys` must be strictly ascending with `values`
  /// parallel (values need not be nonzero — exact zeros round-trip).
  /// Aborts (WB_CHECK) on unordered keys or empty input.
  static CompressedPage Encode(std::span<const uint64_t> keys,
                               std::span<const double> values,
                               const CompressedPageOptions& options);

  uint32_t entry_count() const { return count_; }

  /// Serialized page size in bytes: 32-byte header + the two bit-packed
  /// streams at byte granularity. This is what one simulated block read of
  /// this page costs (IoStats::bytes_fetched).
  uint64_t size_bytes() const;

  /// Exact max |decoded - original| over the page's entries, measured at
  /// encode time. 0.0 for lossless pages (raw value bits) and for constant
  /// pages (the offset stores the value exactly).
  double max_abs_error() const { return max_abs_error_; }

  bool lossy() const { return max_abs_error_ != 0.0; }

  /// True when `key` is stored on this page.
  bool Contains(uint64_t key) const;

  /// Decoded value at `key`, or `absent` when the page does not store it.
  double ValueOr(uint64_t key, double absent) const;

  /// Appends every (key, decoded value) pair in ascending key order —
  /// round-trip testing and page-level scans.
  void AppendEntries(std::vector<uint64_t>* keys,
                     std::vector<double>* values) const;

 private:
  /// Index of `key` in the packed key stream, or -1 when absent.
  int64_t FindIndex(uint64_t key) const;
  /// Decoded value of the i-th entry.
  double Decode(size_t index) const;

  uint64_t base_key_ = 0;
  uint32_t count_ = 0;
  /// Bit width of the packed key offsets (key - base_key).
  uint32_t key_bits_ = 0;
  /// 64 = raw IEEE bits; < 64 = quantization level width; 0 = constant page
  /// (every value equals offset_, no value stream at all).
  uint32_t value_bits_ = 64;
  /// Quantized decode: value = offset_ + level * scale_.
  double offset_ = 0.0;
  double scale_ = 0.0;
  double max_abs_error_ = 0.0;
  std::vector<uint64_t> key_words_;
  std::vector<uint64_t> value_words_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STORAGE_COMPRESSED_BLOCK_H_
