// CI gate for --metrics_out dumps: reads a Prometheus text exposition from
// a file (or stdin with no argument / "-") and exits 0 iff it parses clean
// under telemetry::ValidatePrometheus — name/label grammar, escaping,
// HELP/TYPE placement, and histogram invariants (cumulative monotone
// buckets, le="+Inf" == _count).
//
//   ./build/tools/validate_prometheus metrics.prom
//   some_bench --metrics_out=/dev/stdout | ./build/tools/validate_prometheus

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "telemetry/export.h"

int main(int argc, char** argv) {
  if (argc > 2) {
    std::fprintf(stderr, "usage: %s [exposition.prom]\n", argv[0]);
    return 2;
  }
  std::string text;
  const std::string path = argc == 2 ? argv[1] : "-";
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    char chunk[1 << 16];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      text.append(chunk, n);
    }
    std::fclose(f);
  }

  std::string error;
  if (!wavebatch::telemetry::ValidatePrometheus(text, &error)) {
    std::fprintf(stderr, "INVALID %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  std::fprintf(stderr, "OK %s (%zu bytes)\n", path.c_str(), text.size());
  return 0;
}
