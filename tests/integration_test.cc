// End-to-end reproduction of the paper's evaluation pipeline at test scale:
// synthetic temperature data → wavelet view → 64-range partition batch →
// exact shared evaluation, progressive Batch-Biggest-B, and the
// penalty-choice effect (Observations 1–3 in miniature).

#include <cmath>
#include <memory>

#include "core/exact.h"
#include "core/progressive.h"
#include "core/trace.h"
#include "data/generators.h"
#include "data/workloads.h"
#include "query/derived.h"
#include "gtest/gtest.h"
#include "penalty/laplacian.h"
#include "penalty/sse.h"
#include "strategy/prefix_sum_strategy.h"
#include "strategy/wavelet_strategy.h"

namespace wavebatch {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TemperatureDatasetOptions options;
    options.lat_size = 16;
    options.lon_size = 16;
    options.alt_size = 4;
    options.time_size = 8;
    options.temp_size = 16;
    options.num_records = 30000;
    rel_ = new Relation(MakeTemperatureDataset(options));

    const std::vector<size_t> parts = {8, 8, 1, 1, 1};
    workload_ = new PartitionWorkload(MakePartitionWorkload(
        rel_->schema(), parts, CellAggregate::kSum, kTemp, 1234));

    strategy_ = new WaveletStrategy(rel_->schema(), WaveletKind::kDb4);
    store_ = strategy_->BuildStore(rel_->FrequencyDistribution()).release();
    list_ = new MasterList(
        MasterList::Build(workload_->batch, *strategy_).value());
    exact_ = new std::vector<double>(workload_->batch.BruteForce(*rel_));
  }

  static void TearDownTestSuite() {
    delete exact_;
    delete list_;
    delete store_;
    delete strategy_;
    delete workload_;
    delete rel_;
  }

  static Relation* rel_;
  static PartitionWorkload* workload_;
  static WaveletStrategy* strategy_;
  static CoefficientStore* store_;
  static MasterList* list_;
  static std::vector<double>* exact_;
};

Relation* IntegrationTest::rel_ = nullptr;
PartitionWorkload* IntegrationTest::workload_ = nullptr;
WaveletStrategy* IntegrationTest::strategy_ = nullptr;
CoefficientStore* IntegrationTest::store_ = nullptr;
MasterList* IntegrationTest::list_ = nullptr;
std::vector<double>* IntegrationTest::exact_ = nullptr;

TEST_F(IntegrationTest, SharedExactMatchesBruteForce) {
  ExactBatchResult shared = EvaluateShared(*list_, *store_);
  ASSERT_EQ(shared.results.size(), exact_->size());
  for (size_t i = 0; i < exact_->size(); ++i) {
    EXPECT_NEAR(shared.results[i], (*exact_)[i],
                1e-6 * (1.0 + std::abs((*exact_)[i])));
  }
}

TEST_F(IntegrationTest, IoSharingIsSubstantial) {
  // Observation 1's shape: the shared cost (master-list size) is several
  // times smaller than the naive per-query cost.
  const double sharing = static_cast<double>(list_->TotalQueryCoefficients()) /
                         static_cast<double>(list_->size());
  EXPECT_GT(sharing, 2.0);
  EXPECT_GE(list_->MaxSharing(), 4u);
}

TEST_F(IntegrationTest, ProgressiveMreDecaysByOrdersOfMagnitude) {
  // Observation 2's shape at test scale: the mean relative error collapses
  // well before the master list is exhausted. (The paper's "<1% after one
  // coefficient per query" headline depends on the paper-scale domain and
  // data density; bench_fig5_mre reproduces it at full scale.)
  SsePenalty sse;
  ProgressiveEvaluator ev(list_, &sse, store_);
  auto mre = [&] {
    double sum_rel = 0.0;
    size_t counted = 0;
    for (size_t i = 0; i < exact_->size(); ++i) {
      if ((*exact_)[i] == 0.0) continue;
      sum_rel += std::abs(ev.Estimates()[i] - (*exact_)[i]) /
                 std::abs((*exact_)[i]);
      ++counted;
    }
    return counted ? sum_rel / counted : 0.0;
  };
  ev.StepMany(16);
  const double early = mre();
  ev.StepMany(list_->size() / 2 - ev.StepsTaken());
  const double mid = mre();
  ev.RunToCompletion();
  const double final = mre();
  EXPECT_LT(mid, early / 3.0);
  EXPECT_LT(final, 1e-9);
}

TEST_F(IntegrationTest, CursoredPenaltySteersPrecisionToCursor) {
  // Observation 3 (Figures 6–7): each progression minimizes its own
  // penalty's *guaranteed* risk (remaining importance, Theorems 1–2) at
  // every budget. The realized per-dataset penalty follows the same
  // pattern at late budgets (asserted here with slack); at early budgets
  // it can transiently invert because importance is data-independent —
  // bench_fig6_7_penalties traces the full curves.
  SsePenalty sse;
  std::vector<size_t> cursor;
  for (size_t i = 0; i < 8; ++i) cursor.push_back(i);  // 8 neighboring cells
  WeightedSsePenalty cursored =
      CursoredSsePenalty(workload_->batch.size(), cursor, 10.0);

  ProgressiveEvaluator ev_sse(list_, &sse, store_);
  ProgressiveEvaluator ev_cur(list_, &cursored, store_);
  std::vector<bool> used_sse(list_->size(), false);
  std::vector<bool> used_cur(list_->size(), false);
  auto remaining = [&](const PenaltyFunction& p,
                       const std::vector<bool>& used) {
    std::vector<double> column(workload_->batch.size(), 0.0);
    double total = 0.0;
    for (size_t i = 0; i < list_->size(); ++i) {
      if (used[i]) continue;
      for (const auto& [q, c] : list_->entry(i).uses) column[q] = c;
      total += p.Apply(column);
      for (const auto& [q, c] : list_->entry(i).uses) column[q] = 0.0;
    }
    return total;
  };
  for (double frac : {0.125, 0.5}) {
    const size_t budget = static_cast<size_t>(frac * list_->size());
    while (ev_sse.StepsTaken() < budget) used_sse[ev_sse.Step()] = true;
    while (ev_cur.StepsTaken() < budget) used_cur[ev_cur.Step()] = true;
    // Guaranteed-risk dominance under each progression's own penalty.
    EXPECT_LE(remaining(cursored, used_cur),
              remaining(cursored, used_sse) + 1e-9);
    EXPECT_LE(remaining(sse, used_sse), remaining(sse, used_cur) + 1e-9);
  }
  // Both progressions land on the exact results.
  ev_sse.RunToCompletion();
  ev_cur.RunToCompletion();
  for (size_t i = 0; i < exact_->size(); ++i) {
    EXPECT_NEAR(ev_cur.Estimates()[i], (*exact_)[i],
                1e-6 * (1.0 + std::abs((*exact_)[i])));
  }
}

TEST_F(IntegrationTest, PrefixSumStrategyAgreesAndIsCheapPerQuery) {
  PrefixSumStrategy ps(rel_->schema(),
                       PrefixSumStrategy::CollectMonomials(workload_->batch));
  auto ps_store = ps.BuildStore(rel_->FrequencyDistribution());
  Result<MasterList> ps_list = MasterList::Build(workload_->batch, ps);
  ASSERT_TRUE(ps_list.ok()) << ps_list.status();
  ExactBatchResult shared = EvaluateShared(*ps_list, *ps_store);
  for (size_t i = 0; i < exact_->size(); ++i) {
    EXPECT_NEAR(shared.results[i], (*exact_)[i],
                1e-6 * (1.0 + std::abs((*exact_)[i])));
  }
  // Prefix sums: ≤ 2^d corners per query, and grid sharing compresses the
  // union well below the naive total.
  EXPECT_LE(ps_list->TotalQueryCoefficients(),
            (uint64_t{1} << rel_->schema().num_dims()) *
                workload_->batch.size());
  EXPECT_LT(ps_list->size(), ps_list->TotalQueryCoefficients());
}

TEST_F(IntegrationTest, LaplacianOrderOptimizesGuaranteedLaplacianRisk) {
  // P3: the Laplacian-weighted biggest-B progression minimizes the
  // *guaranteed* Laplacian risk — both the Theorem 2 expected penalty
  // (sum of unused importances) and the Theorem 1 worst-case bound — at
  // every matched budget, compared with the SSE-ordered progression.
  // (On a single smooth dataset the realized Laplacian error need not be
  // smaller — the theorems are worst-case/average statements — which
  // bench_ablation_orders quantifies empirically.)
  SsePenalty sse;
  LaplacianPenalty lap = LaplacianPenalty::ForGrid(workload_->partition);
  ProgressiveEvaluator ev_sse(list_, &sse, store_);
  ProgressiveEvaluator ev_lap(list_, &lap, store_);
  // Remaining Laplacian importance for an evaluator's fetched set.
  auto remaining_lap = [&](ProgressiveEvaluator& ev,
                           std::vector<bool>& fetched) {
    double total = 0.0;
    std::vector<double> column(workload_->batch.size(), 0.0);
    for (size_t i = 0; i < list_->size(); ++i) {
      if (fetched[i]) continue;
      for (const auto& [q, c] : list_->entry(i).uses) column[q] = c;
      total += lap.Apply(column);
      for (const auto& [q, c] : list_->entry(i).uses) column[q] = 0.0;
    }
    (void)ev;
    return total;
  };
  std::vector<bool> fetched_sse(list_->size(), false);
  std::vector<bool> fetched_lap(list_->size(), false);
  const size_t budget = list_->size() / 8;
  for (size_t b = 0; b < budget; ++b) {
    fetched_sse[ev_sse.Step()] = true;
    fetched_lap[ev_lap.Step()] = true;
  }
  EXPECT_LE(remaining_lap(ev_lap, fetched_lap),
            remaining_lap(ev_sse, fetched_sse) + 1e-9);
  // Worst-case bound comparison (Theorem 1 with the Laplacian penalty).
  double max_unused_sse = 0.0, max_unused_lap = 0.0;
  {
    std::vector<double> column(workload_->batch.size(), 0.0);
    for (size_t i = 0; i < list_->size(); ++i) {
      for (const auto& [q, c] : list_->entry(i).uses) column[q] = c;
      const double imp = lap.Apply(column);
      for (const auto& [q, c] : list_->entry(i).uses) column[q] = 0.0;
      if (!fetched_sse[i]) max_unused_sse = std::max(max_unused_sse, imp);
      if (!fetched_lap[i]) max_unused_lap = std::max(max_unused_lap, imp);
    }
  }
  EXPECT_LE(max_unused_lap, max_unused_sse + 1e-9);
}

TEST_F(IntegrationTest, DerivedAveragePerCellFromSharedBatch) {
  // AVERAGE temperature per cell via planned COUNT+SUM queries sharing one
  // master list.
  QueryBatch stats_batch(rel_->schema());
  std::vector<AverageHandle> handles;
  for (size_t c = 0; c < 8; ++c) {
    handles.push_back(
        PlanAverage(stats_batch, workload_->partition.cell(c), kTemp));
  }
  Result<MasterList> stats_list = MasterList::Build(stats_batch, *strategy_);
  ASSERT_TRUE(stats_list.ok());
  ExactBatchResult res = EvaluateShared(*stats_list, *store_);
  std::vector<double> brute = stats_batch.BruteForce(*rel_);
  for (const AverageHandle& h : handles) {
    const double got = FinishAverage(h, res.results);
    const double want = FinishAverage(h, brute);
    EXPECT_NEAR(got, want, 1e-5 * (1.0 + std::abs(want)));
  }
}

TEST_F(IntegrationTest, StreamingBuildAnswersSameAsDense) {
  // Smaller relation: the streaming (per-tuple insert) store answers the
  // same batch identically.
  TemperatureDatasetOptions options;
  options.lat_size = 8;
  options.lon_size = 8;
  options.alt_size = 2;
  options.time_size = 4;
  options.temp_size = 8;
  options.num_records = 500;
  Relation small = MakeTemperatureDataset(options);
  WaveletStrategy strategy(small.schema(), WaveletKind::kDb4);
  auto streaming = strategy.BuildStoreFromRelation(small);
  const std::vector<size_t> parts = {4, 4, 1, 1, 1};
  PartitionWorkload w = MakePartitionWorkload(
      small.schema(), parts, CellAggregate::kSum, kTemp, 5);
  MasterList list = MasterList::Build(w.batch, strategy).value();
  ExactBatchResult res = EvaluateShared(list, *streaming);
  std::vector<double> brute = w.batch.BruteForce(small);
  for (size_t i = 0; i < brute.size(); ++i) {
    EXPECT_NEAR(res.results[i], brute[i], 1e-5 * (1.0 + std::abs(brute[i])));
  }
}

}  // namespace
}  // namespace wavebatch
