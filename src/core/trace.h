#ifndef WAVEBATCH_CORE_TRACE_H_
#define WAVEBATCH_CORE_TRACE_H_

#include <algorithm>
#include <cmath>
#include <concepts>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "core/progressive.h"
#include "util/check.h"
#include "util/table.h"

namespace wavebatch {

/// Records the quality of progressive estimates as coefficients are
/// retrieved — the raw material for every error-decay figure in the paper
/// (Figures 5–7). At each checkpoint the recorder measures the error
/// vector (estimates − exact) under a set of penalty functions, plus mean
/// and max relative error (Fig. 5's metric).
class ProgressionTrace {
 public:
  struct Point {
    uint64_t retrieved;
    /// One value per measure, in registration order.
    std::vector<double> penalties;
    double mean_relative_error;
    double max_relative_error;
    /// Theorem 1 worst-case bound at this step (filled when a K is given).
    double worst_case_bound;
    /// Theorem 2 expected penalty at this step (evaluator's own penalty).
    double expected_penalty;
    /// Σ ι_p over coefficients consumed without data — filled only when the
    /// evaluator is a degraded-mode session (FaultPolicy::kSkip); shows how
    /// much of the error decay is lost to faults rather than progression.
    double skipped_importance = 0.0;
  };

  /// A named penalty under which the error vector is measured; `penalty`
  /// must outlive the trace run. `normalizer` divides the measured value
  /// (e.g. Σ exact² to plot the paper's *normalized* SSE); pass 1.0 for
  /// raw values.
  struct Measure {
    std::string name;
    const PenaltyFunction* penalty;
    double normalizer = 1.0;
  };

  /// Runs `evaluator` to completion, recording at geometrically spaced
  /// checkpoints: every step up to `dense_until`, then steps spaced by
  /// factor `growth`, plus the final step. `exact` are reference results
  /// (from EvaluateShared or brute force). Queries with exact == 0 are
  /// skipped by the relative-error metrics. If `k_sum_abs` > 0 the
  /// Theorem 1 bound column is filled; if `domain_cells` > 0 the Theorem 2
  /// column is filled.
  ///
  /// `Evaluator` is anything with the progressive-cursor shape —
  /// StepsTaken/Done/Estimates/Step/WorstCaseBound/ExpectedPenalty — i.e.
  /// the legacy ProgressiveEvaluator or an engine EvalSession.
  template <typename Evaluator>
  static ProgressionTrace Run(Evaluator& evaluator,
                              std::span<const double> exact,
                              std::vector<Measure> measures,
                              uint64_t dense_until = 64,
                              double growth = 1.15, double k_sum_abs = 0.0,
                              uint64_t domain_cells = 0) {
    WB_CHECK_GT(growth, 1.0);
    ProgressionTrace trace;
    trace.has_bounds_ = k_sum_abs > 0.0;
    trace.has_expected_ = domain_cells > 0;
    // Structural detection instead of naming EvalSession: core/ cannot see
    // engine/ headers, but any evaluator exposing SkippedImportance() and a
    // fault policy in its options (i.e. an engine session) gets the column
    // when it actually runs degraded.
    if constexpr (HasSkippedImportance<Evaluator>) {
      using Policy = std::decay_t<decltype(evaluator.options().fault_policy)>;
      trace.has_skipped_ = evaluator.options().fault_policy == Policy::kSkip;
    }
    for (const Measure& m : measures) {
      WB_CHECK(m.penalty != nullptr);
      WB_CHECK_NE(m.normalizer, 0.0);
      trace.measure_names_.push_back(m.name);
    }

    uint64_t next_checkpoint = 0;  // record the zero-retrievals point too
    while (true) {
      if (evaluator.StepsTaken() >= next_checkpoint || evaluator.Done()) {
        trace.points_.push_back(MeasurePoint(evaluator, exact, measures,
                                             k_sum_abs, domain_cells));
        if (evaluator.Done()) break;
        const uint64_t taken = evaluator.StepsTaken();
        if (taken < dense_until) {
          next_checkpoint = taken + 1;
        } else {
          next_checkpoint = std::max<uint64_t>(
              taken + 1, static_cast<uint64_t>(
                             std::ceil(static_cast<double>(taken) * growth)));
        }
      }
      evaluator.Step();
    }
    return trace;
  }

  const std::vector<Point>& points() const { return points_; }
  const std::vector<std::string>& measure_names() const {
    return measure_names_;
  }

  /// Columns: retrieved, <one per measure>, mre, max_rel_err
  /// [, worst_case_bound][, expected_penalty].
  Table ToTable() const;

 private:
  /// Matches evaluators with degraded-mode accounting (engine EvalSession):
  /// a SkippedImportance() reading and a fault policy in their options.
  template <typename Evaluator>
  static constexpr bool HasSkippedImportance = requires(const Evaluator& e) {
    { e.SkippedImportance() } -> std::convertible_to<double>;
    e.options().fault_policy;
  };

  template <typename Evaluator>
  static Point MeasurePoint(const Evaluator& evaluator,
                            std::span<const double> exact,
                            const std::vector<Measure>& measures,
                            double k_sum_abs, uint64_t domain_cells) {
    Point pt;
    pt.retrieved = evaluator.StepsTaken();
    const std::vector<double>& est = evaluator.Estimates();
    WB_CHECK_EQ(est.size(), exact.size());
    std::vector<double> error(est.size());
    for (size_t i = 0; i < est.size(); ++i) error[i] = est[i] - exact[i];

    pt.penalties.reserve(measures.size());
    for (const Measure& m : measures) {
      pt.penalties.push_back(m.penalty->Apply(error) / m.normalizer);
    }

    double sum_rel = 0.0, max_rel = 0.0;
    size_t counted = 0;
    for (size_t i = 0; i < est.size(); ++i) {
      if (exact[i] == 0.0) continue;
      const double rel = std::abs(error[i]) / std::abs(exact[i]);
      sum_rel += rel;
      max_rel = std::max(max_rel, rel);
      ++counted;
    }
    pt.mean_relative_error = counted ? sum_rel / counted : 0.0;
    pt.max_relative_error = max_rel;
    pt.worst_case_bound =
        k_sum_abs > 0.0 ? evaluator.WorstCaseBound(k_sum_abs) : 0.0;
    pt.expected_penalty =
        domain_cells > 0 ? evaluator.ExpectedPenalty(domain_cells) : 0.0;
    if constexpr (HasSkippedImportance<Evaluator>) {
      pt.skipped_importance = evaluator.SkippedImportance();
    }
    return pt;
  }

  std::vector<std::string> measure_names_;
  std::vector<Point> points_;
  bool has_bounds_ = false;
  bool has_expected_ = false;
  bool has_skipped_ = false;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_CORE_TRACE_H_
