# Empty compiler generated dependencies file for sparse_vec_test.
# This may be replaced when dependencies are built.
