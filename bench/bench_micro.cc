// Micro-benchmarks for the paper's complexity claims (google-benchmark):
//   - tuple insertion into the wavelet view: O((2δ+2)^d log^d N)
//   - query-vector rewrite: O((4δ+2)^d log^d N)
//   - prefix-sum update: O(N^d) worst case (the inverse trade-off)
//   - 1-D and d-dim DWT throughput
//   - progressive step cost (heap pop + fetch + estimate updates)

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/master_list.h"
#include "core/progressive.h"
#include "data/generators.h"
#include "engine/eval_plan.h"
#include "engine/eval_session.h"
#include "engine/plan_cache.h"
#include "data/workloads.h"
#include "penalty/sse.h"
#include "storage/block_store.h"
#include "storage/dense_store.h"
#include "storage/file_store.h"
#include "storage/key_router.h"
#include "storage/memory_store.h"
#include "storage/sharded_store.h"
#include "storage/versioned_store.h"
#include "strategy/prefix_sum_strategy.h"
#include "strategy/wavelet_strategy.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "util/cpu_features.h"
#include "util/random.h"
#include "wavelet/dwt1d.h"
#include "wavelet/lazy_query_transform.h"
#include "wavelet/query_transform.h"
#include "wavelet/dwt_nd.h"

namespace wavebatch {
namespace {

WaveletKind KindForIndex(int64_t i) {
  switch (i) {
    case 0:
      return WaveletKind::kHaar;
    case 1:
      return WaveletKind::kDb4;
    case 2:
      return WaveletKind::kDb6;
    default:
      return WaveletKind::kDb8;
  }
}

void BM_Dwt1D(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const WaveletFilter& filter = WaveletFilter::Get(KindForIndex(state.range(1)));
  Rng rng(7);
  std::vector<double> data(n);
  for (double& v : data) v = rng.Gaussian();
  for (auto _ : state) {
    std::vector<double> copy = data;
    ForwardDwt1D(copy, filter);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Dwt1D)
    ->ArgsProduct({{1024, 65536}, {0, 1, 3}})
    ->Unit(benchmark::kMicrosecond);

void BM_DwtNd(benchmark::State& state) {
  Schema schema = Schema::Uniform(static_cast<size_t>(state.range(0)), 32);
  const WaveletFilter& filter = WaveletFilter::Get(WaveletKind::kDb4);
  Rng rng(9);
  DenseCube cube(schema);
  for (uint64_t i = 0; i < cube.size(); ++i) cube[i] = rng.Gaussian();
  for (auto _ : state) {
    DenseCube copy = cube;
    ForwardDwtNd(copy, filter);
    benchmark::DoNotOptimize(copy.values().data());
  }
  state.SetItemsProcessed(state.iterations() * cube.size());
}
BENCHMARK(BM_DwtNd)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_TupleInsert(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const uint32_t n = static_cast<uint32_t>(state.range(1));
  const WaveletFilter& filter = WaveletFilter::Get(KindForIndex(state.range(2)));
  Schema schema = Schema::Uniform(d, n);
  WaveletStrategy strategy(schema, filter.kind());
  HashStore store;
  Rng rng(11);
  Tuple t(d);
  for (auto _ : state) {
    for (size_t i = 0; i < d; ++i) {
      t[i] = static_cast<uint32_t>(rng.UniformInt(n));
    }
    benchmark::DoNotOptimize(strategy.InsertTuple(store, t, 1.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TupleInsert)
    ->ArgsProduct({{2, 3}, {64, 1024}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_PrefixSumInsert(benchmark::State& state) {
  // The O(N^d) update that motivates wavelets for dynamic data.
  const size_t d = static_cast<size_t>(state.range(0));
  const uint32_t n = static_cast<uint32_t>(state.range(1));
  Schema schema = Schema::Uniform(d, n);
  PrefixSumStrategy strategy(schema,
                             {std::vector<uint32_t>(d, 0)});
  DenseStore store(schema.cell_count());
  Rng rng(13);
  Tuple t(d);
  for (auto _ : state) {
    for (size_t i = 0; i < d; ++i) {
      t[i] = static_cast<uint32_t>(rng.UniformInt(n));
    }
    benchmark::DoNotOptimize(strategy.InsertTuple(store, t, 1.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefixSumInsert)
    ->ArgsProduct({{2, 3}, {64}})
    ->Unit(benchmark::kMicrosecond);

void BM_QueryTransform(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const uint32_t n = static_cast<uint32_t>(state.range(1));
  const uint32_t degree = static_cast<uint32_t>(state.range(2));
  Schema schema = Schema::Uniform(d, n);
  WaveletStrategy strategy(schema, WaveletFilter::ForDegree(degree).kind());
  Rng rng(17);
  std::vector<RangeSumQuery> queries;
  for (int i = 0; i < 16; ++i) {
    std::vector<Interval> ivs;
    for (size_t dim = 0; dim < d; ++dim) {
      uint32_t lo = static_cast<uint32_t>(rng.UniformInt(n));
      uint32_t hi = lo + static_cast<uint32_t>(rng.UniformInt(n - lo));
      ivs.push_back({lo, hi});
    }
    Range range = Range::Create(schema, ivs).value();
    queries.push_back(degree == 0 ? RangeSumQuery::Count(range)
                                  : RangeSumQuery::Sum(range, 0));
  }
  size_t qi = 0;
  for (auto _ : state) {
    Result<SparseVec> coeffs =
        strategy.TransformQuery(queries[qi++ % queries.size()]);
    benchmark::DoNotOptimize(coeffs.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryTransform)
    ->ArgsProduct({{2, 3}, {64, 1024}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_LazyVsDense1DTransform(benchmark::State& state) {
  // The lazy pruned cascade vs the O(n) dense transform, per dimension.
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const bool lazy = state.range(1) != 0;
  const WaveletFilter& filter = WaveletFilter::Get(WaveletKind::kDb4);
  const uint32_t lo = static_cast<uint32_t>(n / 7);
  const uint32_t hi = static_cast<uint32_t>(n - n / 5);
  for (auto _ : state) {
    if (lazy) {
      benchmark::DoNotOptimize(
          LazyRangeMonomialDwt1D(n, lo, hi, 1, filter));
    } else {
      benchmark::DoNotOptimize(
          SparseRangeMonomialDwt1D(n, lo, hi, 1, filter));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LazyVsDense1DTransform)
    ->ArgsProduct({{1024, 65536, 1 << 20}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_ProgressiveStep(benchmark::State& state) {
  // Cost of one Batch-Biggest-B step on the standard workload shape.
  TemperatureDatasetOptions options;
  options.lat_size = 32;
  options.lon_size = 32;
  options.alt_size = 4;
  options.time_size = 8;
  options.temp_size = 16;
  options.num_records = 200000;
  DenseCube cube = MakeTemperatureCube(options);
  const std::vector<size_t> parts = {8, 8, 1, 1, 1};
  PartitionWorkload w = MakePartitionWorkload(
      cube.schema(), parts, CellAggregate::kSum, kTemp, 5);
  WaveletStrategy strategy(cube.schema(), WaveletKind::kDb4);
  auto store = strategy.BuildStore(cube);
  MasterList list = MasterList::Build(w.batch, strategy).value();
  SsePenalty sse;
  ProgressiveEvaluator ev(&list, &sse, store.get());
  for (auto _ : state) {
    if (ev.Done()) {
      state.PauseTiming();
      ev = ProgressiveEvaluator(&list, &sse, store.get());
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(ev.Step());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProgressiveStep)->Unit(benchmark::kNanosecond);

void BM_EngineSessionStep(benchmark::State& state) {
  // Same workload through the engine layer: the plan is built once and the
  // per-step cost is just cursor advance + fetch + estimate updates (no
  // heap pop — the progression order is a precomputed permutation).
  TemperatureDatasetOptions options;
  options.lat_size = 32;
  options.lon_size = 32;
  options.alt_size = 4;
  options.time_size = 8;
  options.temp_size = 16;
  options.num_records = 200000;
  DenseCube cube = MakeTemperatureCube(options);
  const std::vector<size_t> parts = {8, 8, 1, 1, 1};
  PartitionWorkload w = MakePartitionWorkload(
      cube.schema(), parts, CellAggregate::kSum, kTemp, 5);
  WaveletStrategy strategy(cube.schema(), WaveletKind::kDb4);
  std::shared_ptr<const CoefficientStore> store = strategy.BuildStore(cube);
  auto sse = std::make_shared<SsePenalty>();
  std::shared_ptr<const EvalPlan> plan =
      EvalPlan::Build(w.batch, strategy, sse).value();
  EvalSession session(plan, store);
  for (auto _ : state) {
    if (session.Done()) {
      state.PauseTiming();
      session = EvalSession(plan, store);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(session.Step().value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineSessionStep)->Unit(benchmark::kNanosecond);

void BM_EngineSessionStepBatch(benchmark::State& state) {
  // The instrumented hot loop: StepBatch(n) with the telemetry registry
  // enabled vs disabled. The telemetry subsystem's acceptance bar is <2%
  // regression on this benchmark with the registry enabled (counters +
  // one latency histogram + one span per batch, amortized over n steps).
  // The simd axis pins the whole execution tier process-wide: 0 forces
  // scalar everywhere (apply kernel AND the dense-store batch gather), 1
  // restores best-tier detection. The two produce bit-identical estimates,
  // so the ratio is the pure vectorization speedup of the step path.
  const size_t batch = static_cast<size_t>(state.range(0));
  const bool enabled = state.range(1) != 0;
  const bool simd = state.range(2) != 0;
  TemperatureDatasetOptions options;
  options.lat_size = 32;
  options.lon_size = 32;
  options.alt_size = 4;
  options.time_size = 8;
  options.temp_size = 16;
  options.num_records = 200000;
  DenseCube cube = MakeTemperatureCube(options);
  const std::vector<size_t> parts = {8, 8, 1, 1, 1};
  PartitionWorkload w = MakePartitionWorkload(
      cube.schema(), parts, CellAggregate::kSum, kTemp, 5);
  WaveletStrategy strategy(cube.schema(), WaveletKind::kDb4);
  std::shared_ptr<const CoefficientStore> store = strategy.BuildStore(cube);
  auto sse = std::make_shared<SsePenalty>();
  std::shared_ptr<const EvalPlan> plan =
      EvalPlan::Build(w.batch, strategy, sse).value();
  if (enabled) {
    telemetry::MetricsRegistry::Enable();
  } else {
    telemetry::MetricsRegistry::Disable();
  }
  SetKernelTierOverride(simd ? std::optional<KernelTier>()
                             : KernelTier::kScalar);
  EvalSession::Options opts;
  EvalSession session(plan, store, opts);
  for (auto _ : state) {
    if (session.Done()) {
      state.PauseTiming();
      session = EvalSession(plan, store, opts);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(session.StepBatch(batch).value());
  }
  state.SetItemsProcessed(state.iterations() * batch);
  state.SetLabel(KernelTierName(session.kernel_tier()));
  SetKernelTierOverride(std::nullopt);
  telemetry::MetricsRegistry::Enable();
}
BENCHMARK(BM_EngineSessionStepBatch)
    ->ArgsProduct({{64, 256, 1024}, {0, 1}, {0, 1}})
    ->ArgNames({"batch", "telemetry", "simd"})
    ->Unit(benchmark::kMicrosecond);

void BM_PlanBuild(benchmark::State& state) {
  // Replanning from scratch: master list + importances + permutations.
  // The parallel:0/1 axis toggles BuildParallelism — both settings produce
  // bit-identical plans, so the ratio is pure construction speedup (1 on a
  // single-core machine; the win shows on multi-core CI runners).
  TemperatureDatasetOptions options;
  options.lat_size = 32;
  options.lon_size = 32;
  options.alt_size = 4;
  options.time_size = 8;
  options.temp_size = 16;
  options.num_records = 100000;
  DenseCube cube = MakeTemperatureCube(options);
  const size_t grid = static_cast<size_t>(state.range(0));
  const BuildParallelism parallelism = state.range(1) != 0
                                           ? BuildParallelism::kParallel
                                           : BuildParallelism::kSerial;
  const std::vector<size_t> parts = {grid, grid, 1, 1, 1};
  PartitionWorkload w = MakePartitionWorkload(
      cube.schema(), parts, CellAggregate::kSum, kTemp, 5);
  WaveletStrategy strategy(cube.schema(), WaveletKind::kDb4);
  auto sse = std::make_shared<SsePenalty>();
  size_t plan_entries = 0;
  for (auto _ : state) {
    Result<std::shared_ptr<const EvalPlan>> plan =
        EvalPlan::Build(w.batch, strategy, sse, parallelism);
    benchmark::DoNotOptimize(plan.ok());
    plan_entries = (*plan)->size();
  }
  state.SetItemsProcessed(state.iterations() * w.batch.size());
  // Deterministic function of the workload — the machine-independent
  // counter tools/bench_compare gates on.
  state.counters["plan_entries"] =
      static_cast<double>(plan_entries * state.iterations());
}
BENCHMARK(BM_PlanBuild)
    ->ArgsProduct({{4, 8, 16}, {0, 1}})
    ->ArgNames({"grid", "parallel"})
    ->Unit(benchmark::kMillisecond);

void BM_PlanRandomPermutation(benchmark::State& state) {
  // kRandom session startup cost. memoized:1 re-requests one seed (the
  // many-sessions-one-seed pattern — served from the plan's cache, one copy
  // and no shuffle); memoized:0 alternates seeds so every call re-shuffles.
  TemperatureDatasetOptions options;
  options.lat_size = 32;
  options.lon_size = 32;
  options.alt_size = 4;
  options.time_size = 8;
  options.temp_size = 16;
  options.num_records = 100000;
  DenseCube cube = MakeTemperatureCube(options);
  const std::vector<size_t> parts = {8, 8, 1, 1, 1};
  PartitionWorkload w = MakePartitionWorkload(
      cube.schema(), parts, CellAggregate::kSum, kTemp, 5);
  WaveletStrategy strategy(cube.schema(), WaveletKind::kDb4);
  auto sse = std::make_shared<SsePenalty>();
  std::shared_ptr<const EvalPlan> plan =
      EvalPlan::Build(w.batch, strategy, sse).value();
  const bool memoized = state.range(0) != 0;
  uint64_t seed = 0;
  for (auto _ : state) {
    if (!memoized) ++seed;
    std::vector<size_t> perm = plan->RandomPermutation(seed);
    benchmark::DoNotOptimize(perm.data());
  }
  state.SetItemsProcessed(state.iterations() * plan->size());
}
BENCHMARK(BM_PlanRandomPermutation)
    ->Arg(0)->Arg(1)
    ->ArgNames({"memoized"})
    ->Unit(benchmark::kMicrosecond);

void BM_PlanCacheHit(benchmark::State& state) {
  // The repeated-dashboard case: an identical batch arrives again and the
  // cache hands back the shared plan. Compare against BM_PlanBuild at the
  // same grid size for the hit-vs-replan ratio.
  TemperatureDatasetOptions options;
  options.lat_size = 32;
  options.lon_size = 32;
  options.alt_size = 4;
  options.time_size = 8;
  options.temp_size = 16;
  options.num_records = 100000;
  DenseCube cube = MakeTemperatureCube(options);
  const size_t grid = static_cast<size_t>(state.range(0));
  const std::vector<size_t> parts = {grid, grid, 1, 1, 1};
  PartitionWorkload w = MakePartitionWorkload(
      cube.schema(), parts, CellAggregate::kSum, kTemp, 5);
  WaveletStrategy strategy(cube.schema(), WaveletKind::kDb4);
  auto sse = std::make_shared<SsePenalty>();
  PlanCache cache(8);
  benchmark::DoNotOptimize(cache.GetOrBuild(w.batch, strategy, sse).ok());
  for (auto _ : state) {
    Result<std::shared_ptr<const EvalPlan>> plan =
        cache.GetOrBuild(w.batch, strategy, sse);
    benchmark::DoNotOptimize(plan.ok());
  }
  state.SetItemsProcessed(state.iterations() * w.batch.size());
}
BENCHMARK(BM_PlanCacheHit)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_MasterListBuild(benchmark::State& state) {
  TemperatureDatasetOptions options;
  options.lat_size = 32;
  options.lon_size = 32;
  options.alt_size = 4;
  options.time_size = 8;
  options.temp_size = 16;
  options.num_records = 100000;
  DenseCube cube = MakeTemperatureCube(options);
  const size_t grid = static_cast<size_t>(state.range(0));
  const std::vector<size_t> parts = {grid, grid, 1, 1, 1};
  PartitionWorkload w = MakePartitionWorkload(
      cube.schema(), parts, CellAggregate::kSum, kTemp, 5);
  WaveletStrategy strategy(cube.schema(), WaveletKind::kDb4);
  const BuildParallelism parallelism = state.range(1) != 0
                                           ? BuildParallelism::kParallel
                                           : BuildParallelism::kSerial;
  size_t master_entries = 0;
  for (auto _ : state) {
    Result<MasterList> list =
        MasterList::Build(w.batch, strategy, parallelism);
    benchmark::DoNotOptimize(list.ok());
    master_entries = list->size();
  }
  state.SetItemsProcessed(state.iterations() * w.batch.size());
  // Deterministic function of the workload — the machine-independent
  // counter tools/bench_compare gates on.
  state.counters["master_entries"] =
      static_cast<double>(master_entries * state.iterations());
}
BENCHMARK(BM_MasterListBuild)
    ->ArgsProduct({{4, 8, 16}, {0, 1}})
    ->ArgNames({"grid", "parallel"})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Scalar Fetch loop vs FetchBatch — the batched retrieval plane's payoff.
// Keys are a scattered-but-clustered pattern (golden-ratio stride) so the
// FileStore coalescer sees a realistic mix of runs and singletons.

constexpr uint64_t kFetchBenchCapacity = 1 << 16;

// Clustered-run key pattern: runs of 8 near-consecutive keys scattered
// across the file. This is the shape a master list produces — coarse-level
// wavelet coefficients for overlapping ranges land in the same
// neighborhood — and is what the FileStore coalescer targets.
std::vector<uint64_t> MakeFetchKeys(size_t batch_size) {
  std::vector<uint64_t> keys(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    const uint64_t cluster = i / 8;
    const uint64_t base = (cluster * 2654435761u) % (kFetchBenchCapacity - 8);
    keys[i] = base + (i % 8);
  }
  return keys;
}

void BM_FileStoreFetch(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  const bool batched = state.range(1) != 0;
  const std::string path = "/tmp/wavebatch_bench_store.bin";
  Rng rng(41);
  std::vector<double> values(kFetchBenchCapacity);
  for (double& v : values) v = rng.Gaussian();
  Result<std::unique_ptr<FileStore>> store = FileStore::Create(path, values);
  if (!store.ok()) {
    state.SkipWithError(store.status().ToString().c_str());
    return;
  }
  const std::vector<uint64_t> keys = MakeFetchKeys(batch_size);
  std::vector<double> out(batch_size);
  for (auto _ : state) {
    if (batched) {
      WB_CHECK_OK((*store)->FetchBatch(keys, out));
    } else {
      for (size_t i = 0; i < batch_size; ++i) {
        out[i] = (*store)->Fetch(keys[i]).value();
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
  (*store).reset();
  std::remove(path.c_str());
}
BENCHMARK(BM_FileStoreFetch)
    ->ArgsProduct({{1, 16, 256, 4096}, {0, 1}})
    ->ArgNames({"batch", "batched"})
    ->Unit(benchmark::kMicrosecond);

void BM_BlockStoreFetch(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  const bool batched = state.range(1) != 0;
  Rng rng(43);
  auto dense = std::make_unique<DenseStore>(kFetchBenchCapacity);
  for (uint64_t k = 0; k < kFetchBenchCapacity; ++k) {
    dense->Add(k, rng.Gaussian());
  }
  BlockStore store(std::move(dense), /*block_size=*/64, /*cache_blocks=*/32);
  const std::vector<uint64_t> keys = MakeFetchKeys(batch_size);
  std::vector<double> out(batch_size);
  IoStats io;
  for (auto _ : state) {
    if (batched) {
      WB_CHECK_OK(store.FetchBatch(keys, out, &io));
    } else {
      for (size_t i = 0; i < batch_size; ++i) {
        out[i] = store.Fetch(keys[i], &io).value();
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
  state.counters["block_reads"] = static_cast<double>(io.block_reads);
}
BENCHMARK(BM_BlockStoreFetch)
    ->ArgsProduct({{1, 16, 256, 4096}, {0, 1}})
    ->ArgNames({"batch", "batched"})
    ->Unit(benchmark::kMicrosecond);

// Zipf(s=1.1) ranks scrambled with a Knuth-style multiplier so the popular
// head spreads across the key range instead of piling onto one corner.
// Shared by the compressed-page and sharded scatter-gather benchmarks.
std::vector<uint64_t> MakeZipfKeys(size_t batch_size) {
  Rng rng(53);
  std::vector<uint64_t> keys(batch_size);
  for (uint64_t& key : keys) {
    const uint64_t rank = rng.Zipf(kFetchBenchCapacity, /*s=*/1.1);
    key = (rank * 2654435761u) % kFetchBenchCapacity;
  }
  return keys;
}

void BM_BlockStoreFetchZipf(benchmark::State& state) {
  // Backend bytes per fetch under a skewed (Zipf) key workload — the
  // compressed-page payoff. mode 0: plain blocks (a read transfers the
  // full-width block, block_size × 8 bytes); mode 1: lossless compressed
  // pages (delta+bit-packed keys, raw IEEE values); mode 2: 16-bit
  // quantized pages (lossy — PeekErrorBound/Lossy report the decode error
  // the engine folds into its bounds). block_reads is identical across
  // modes (the block model does not change); bytes_fetched is what shrinks,
  // and bench_compare gates it.
  const int64_t mode = state.range(0);
  Rng rng(43);
  auto dense = std::make_unique<DenseStore>(kFetchBenchCapacity);
  for (uint64_t k = 0; k < kFetchBenchCapacity; ++k) {
    dense->Add(k, rng.Gaussian());
  }
  BlockStoreOptions options;
  options.block_size = 64;
  options.cache_blocks = 32;
  options.compress_pages = mode != 0;
  options.page.quantize = mode == 2;
  options.page.quant_bits = 16;
  BlockStore store(std::move(dense), options);
  const std::vector<uint64_t> keys = MakeZipfKeys(256);
  std::vector<double> out(keys.size());
  IoStats io;
  for (auto _ : state) {
    WB_CHECK_OK(store.FetchBatch(keys, out, &io));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
  state.counters["block_reads"] = static_cast<double>(io.block_reads);
  state.counters["bytes_fetched"] = static_cast<double>(io.bytes_fetched);
}
BENCHMARK(BM_BlockStoreFetchZipf)
    ->Arg(0)->Arg(1)->Arg(2)
    ->ArgNames({"mode"})
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Sharded scatter-gather over FileStore-backed shards under a Zipf key
// workload. Each shard is a FileStore with a simulated per-seek device
// latency (one independent "disk" per shard) and its own single-thread
// pool, so the S>1 payoff is overlapped seek latency across devices — the
// effect sharding buys on real hardware — rather than extra CPU cores.
// Zipf ranks are scrambled (see MakeZipfKeys above) so the popular head
// spreads across the range-partitioned shards instead of piling onto
// shard 0. Batch size stays below the FileStore parallel-fetch threshold
// so the unsharded baseline is not quietly parallelized from inside.

void BM_ShardedFetchBatch(benchmark::State& state) {
  const size_t num_shards = static_cast<size_t>(state.range(0));
  constexpr size_t kBatch = 224;  // < FileStore's parallel threshold (256)
  Rng rng(47);
  std::vector<double> values(kFetchBenchCapacity);
  for (double& v : values) v = rng.Gaussian();

  FileStoreOptions file_options;
  file_options.simulated_seek_latency = std::chrono::microseconds(20);
  std::vector<std::unique_ptr<CoefficientStore>> backends;
  std::vector<std::string> paths;
  for (size_t s = 0; s < num_shards; ++s) {
    std::string path =
        "/tmp/wavebatch_bench_shard" + std::to_string(s) + ".bin";
    Result<std::unique_ptr<FileStore>> shard =
        FileStore::Create(path, values, file_options);
    if (!shard.ok()) {
      state.SkipWithError(shard.status().ToString().c_str());
      return;
    }
    backends.push_back(std::move(*shard));
    paths.push_back(std::move(path));
  }
  ShardedStoreOptions options;
  options.threads_per_shard = 1;
  options.promote_min_fetches = 0;  // measure the cold scatter-gather path
  ShardedStore store(std::move(backends),
                     KeyRouter::Uniform(kFetchBenchCapacity, num_shards),
                     options);

  const std::vector<uint64_t> keys = MakeZipfKeys(kBatch);
  std::vector<double> out(kBatch);
  for (auto _ : state) {
    WB_CHECK_OK(store.FetchBatch(keys, out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  // Deterministic function of the key set and the router: non-empty shard
  // sub-batches per iteration. bench_compare gates on it.
  state.counters["shard_subbatches"] =
      static_cast<double>(store.subbatches_issued());
  for (const std::string& path : paths) std::remove(path.c_str());
}
BENCHMARK(BM_ShardedFetchBatch)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgNames({"shards"})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_IngestThroughput(benchmark::State& state) {
  // The full streaming write path: tuple -> TransformUpdate delta ->
  // versioned-plane apply. One iteration ingests a fixed 64-tuple pool and
  // publishes an epoch; update_entries counts coefficient entries applied,
  // an exact function of the schema, filter, and tuple pool (the paper's
  // O((2δ+2)^d log^d N) per-tuple update cost), so bench_compare gates it.
  const size_t d = static_cast<size_t>(state.range(0));
  const WaveletKind kind =
      state.range(1) == 0 ? WaveletKind::kHaar : WaveletKind::kDb4;
  Schema schema = Schema::Uniform(d, d == 3 ? 16 : 64);
  WaveletStrategy strategy(schema, kind);
  Relation seed_rel = MakeUniformRelation(schema, 400, 3);
  VersionedStore store(strategy.BuildStore(seed_rel.FrequencyDistribution()));
  const Relation pool = MakeUniformRelation(schema, 64, 29);
  uint64_t entries = 0;
  for (auto _ : state) {
    for (const Tuple& t : pool.tuples()) {
      Result<SparseVec> delta = strategy.TransformUpdate(t, 1.0);
      entries += delta.value().size();
      store.Ingest(*delta);
    }
    store.Publish();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pool.tuples().size()));
  state.counters["update_entries"] = static_cast<double>(entries);
}
BENCHMARK(BM_IngestThroughput)
    ->ArgsProduct({{2, 3}, {0, 1}})
    ->ArgNames({"d", "db4"})
    ->Unit(benchmark::kMicrosecond);

void BM_FetchUnderIngest(benchmark::State& state) {
  // Read latency with a live writer: a background thread ingests,
  // publishes every 32 tuples, and folds every 1024 while the timed loop
  // runs batched reads through the epoch-pinned snapshot path. Real time —
  // the quantity under test is wall-clock interference, not CPU work.
  // writer:0 is the control (same store, no concurrent writes).
  const bool writer_on = state.range(0) != 0;
  Schema schema = Schema::Uniform(2, 64);
  WaveletStrategy strategy(schema, WaveletKind::kHaar);
  Relation rel = MakeUniformRelation(schema, 2000, 3);
  VersionedStore store(strategy.BuildStore(rel.FrequencyDistribution()));

  std::vector<uint64_t> keys;
  store.ForEachNonZero([&](uint64_t key, double) {
    if (keys.size() < 256) keys.push_back(key);
  });
  std::vector<double> out(keys.size());

  const Relation stream = MakeUniformRelation(schema, 256, 31);
  std::vector<SparseVec> deltas;
  for (const Tuple& t : stream.tuples()) {
    deltas.push_back(strategy.TransformUpdate(t, 1.0).value());
  }
  std::atomic<bool> stop{false};
  std::thread writer;
  if (writer_on) {
    writer = std::thread([&] {
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        store.Ingest(deltas[i % deltas.size()]);
        if (++i % 32 == 0) store.Publish();
        if (i % 1024 == 0) store.Merge();
      }
    });
  }
  for (auto _ : state) {
    IoStats io;
    WB_CHECK_OK(store.FetchBatch(keys, out, &io));
    benchmark::DoNotOptimize(out.data());
  }
  stop.store(true);
  if (writer.joinable()) writer.join();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_FetchUnderIngest)
    ->Arg(0)->Arg(1)
    ->ArgNames({"writer"})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace wavebatch

// BENCHMARK_MAIN plus a default machine-readable report: unless the caller
// passes their own --benchmark_out, results land in BENCH_micro.json
// (google-benchmark's JSON schema: per-benchmark name, args, real/cpu time,
// and counters such as block_reads). --metrics_out=path additionally dumps
// the telemetry registry as Prometheus text after the run (the flag is
// consumed here; google-benchmark never sees it).
int main(int argc, char** argv) {
  std::string metrics_out;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics_out=", 0) == 0) {
      metrics_out = arg.substr(std::string("--metrics_out=").size());
    } else {
      args.push_back(argv[i]);
    }
  }
  bool has_out = false;
  for (size_t i = 1; i < args.size(); ++i) {
    if (std::string(args[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  // Stamp the report with how THIS project was compiled. The stock
  // "library_build_type" context key reflects the installed benchmark
  // library's NDEBUG, not ours — on distro packages it reads "debug"
  // forever, which is useless for rejecting debug-built baselines.
  // bench_compare prefers this key and refuses reports where it says
  // "debug".
#ifdef NDEBUG
  benchmark::AddCustomContext("wavebatch_build_type", "release");
#else
  benchmark::AddCustomContext("wavebatch_build_type", "debug");
#endif
  // Stamp the kernel tier this process will dispatch to and the CPU
  // features behind that choice: timings taken on different tiers are not
  // comparable, and bench_compare refuses to gate *time* across a tier
  // mismatch (machine-independent counters still gate).
  benchmark::AddCustomContext(
      "wavebatch_kernel_tier",
      wavebatch::KernelTierName(wavebatch::BestKernelTier()));
  benchmark::AddCustomContext("wavebatch_cpu_features",
                              wavebatch::CpuFeatureString());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_out.empty()) {
    const std::string text = wavebatch::telemetry::ExportPrometheus();
    FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "failed to open --metrics_out=%s\n",
                   metrics_out.c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", metrics_out.c_str());
  }
  return 0;
}
