#ifndef WAVEBATCH_CORE_TRACE_H_
#define WAVEBATCH_CORE_TRACE_H_

#include <span>
#include <string>
#include <vector>

#include "core/progressive.h"
#include "util/table.h"

namespace wavebatch {

/// Records the quality of progressive estimates as coefficients are
/// retrieved — the raw material for every error-decay figure in the paper
/// (Figures 5–7). At each checkpoint the recorder measures the error
/// vector (estimates − exact) under a set of penalty functions, plus mean
/// and max relative error (Fig. 5's metric).
class ProgressionTrace {
 public:
  struct Point {
    uint64_t retrieved;
    /// One value per measure, in registration order.
    std::vector<double> penalties;
    double mean_relative_error;
    double max_relative_error;
    /// Theorem 1 worst-case bound at this step (filled when a K is given).
    double worst_case_bound;
    /// Theorem 2 expected penalty at this step (evaluator's own penalty).
    double expected_penalty;
  };

  /// A named penalty under which the error vector is measured; `penalty`
  /// must outlive the trace run. `normalizer` divides the measured value
  /// (e.g. Σ exact² to plot the paper's *normalized* SSE); pass 1.0 for
  /// raw values.
  struct Measure {
    std::string name;
    const PenaltyFunction* penalty;
    double normalizer = 1.0;
  };

  /// Runs `evaluator` to completion, recording at geometrically spaced
  /// checkpoints: every step up to `dense_until`, then steps spaced by
  /// factor `growth`, plus the final step. `exact` are reference results
  /// (from EvaluateShared or brute force). Queries with exact == 0 are
  /// skipped by the relative-error metrics. If `k_sum_abs` > 0 the
  /// Theorem 1 bound column is filled; if `domain_cells` > 0 the Theorem 2
  /// column is filled.
  static ProgressionTrace Run(ProgressiveEvaluator& evaluator,
                              std::span<const double> exact,
                              std::vector<Measure> measures,
                              uint64_t dense_until = 64,
                              double growth = 1.15, double k_sum_abs = 0.0,
                              uint64_t domain_cells = 0);

  const std::vector<Point>& points() const { return points_; }
  const std::vector<std::string>& measure_names() const {
    return measure_names_;
  }

  /// Columns: retrieved, <one per measure>, mre, max_rel_err
  /// [, worst_case_bound][, expected_penalty].
  Table ToTable() const;

 private:
  std::vector<std::string> measure_names_;
  std::vector<Point> points_;
  bool has_bounds_ = false;
  bool has_expected_ = false;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_CORE_TRACE_H_
