file(REMOVE_RECURSE
  "CMakeFiles/wavebatch_baselines.dir/compressed_view.cc.o"
  "CMakeFiles/wavebatch_baselines.dir/compressed_view.cc.o.d"
  "CMakeFiles/wavebatch_baselines.dir/online_aggregation.cc.o"
  "CMakeFiles/wavebatch_baselines.dir/online_aggregation.cc.o.d"
  "libwavebatch_baselines.a"
  "libwavebatch_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavebatch_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
