#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "storage/block_store.h"
#include "storage/coefficient_store.h"
#include "storage/dense_store.h"
#include "storage/memory_store.h"

namespace wavebatch {
namespace {

TEST(HashStoreTest, PeekAbsentIsZero) {
  HashStore store;
  EXPECT_EQ(store.Peek(42), 0.0);
  EXPECT_EQ(store.NumNonZero(), 0u);
}

TEST(HashStoreTest, AddAndPeek) {
  HashStore store;
  store.Add(1, 2.0);
  store.Add(1, 3.0);
  store.Add(2, -1.0);
  EXPECT_DOUBLE_EQ(store.Peek(1), 5.0);
  EXPECT_DOUBLE_EQ(store.Peek(2), -1.0);
  EXPECT_EQ(store.NumNonZero(), 2u);
}

TEST(HashStoreTest, AddToZeroErases) {
  HashStore store;
  store.Add(1, 2.0);
  store.Add(1, -2.0);
  EXPECT_EQ(store.NumNonZero(), 0u);
}

TEST(HashStoreTest, BulkLoadFromSparseVec) {
  SparseVec v = SparseVec::FromUnsorted({{1, 1.0}, {9, 2.0}});
  HashStore store(v);
  EXPECT_EQ(store.NumNonZero(), 2u);
  EXPECT_DOUBLE_EQ(store.Peek(9), 2.0);
}

TEST(HashStoreTest, FetchCountsRetrievals) {
  HashStore store;
  store.Add(1, 2.0);
  EXPECT_EQ(store.stats().retrievals, 0u);
  EXPECT_DOUBLE_EQ(store.Fetch(1), 2.0);
  EXPECT_DOUBLE_EQ(store.Fetch(5), 0.0);  // absent fetches still cost
  EXPECT_EQ(store.stats().retrievals, 2u);
  store.ResetStats();
  EXPECT_EQ(store.stats().retrievals, 0u);
}

TEST(HashStoreTest, PeekDoesNotCount) {
  HashStore store;
  store.Add(1, 2.0);
  store.Peek(1);
  EXPECT_EQ(store.stats().retrievals, 0u);
}

TEST(HashStoreTest, SumAbs) {
  HashStore store;
  store.Add(1, 3.0);
  store.Add(2, -4.0);
  EXPECT_DOUBLE_EQ(store.SumAbs(), 7.0);
}

TEST(DenseStoreTest, ZeroInitialized) {
  DenseStore store(16);
  EXPECT_EQ(store.capacity(), 16u);
  EXPECT_EQ(store.Peek(7), 0.0);
  EXPECT_EQ(store.NumNonZero(), 0u);
}

TEST(DenseStoreTest, AddPeekFetch) {
  DenseStore store(8);
  store.Add(3, 1.5);
  store.Add(3, 1.5);
  EXPECT_DOUBLE_EQ(store.Peek(3), 3.0);
  EXPECT_DOUBLE_EQ(store.Fetch(3), 3.0);
  EXPECT_EQ(store.stats().retrievals, 1u);
  EXPECT_EQ(store.NumNonZero(), 1u);
  EXPECT_DOUBLE_EQ(store.SumAbs(), 3.0);
}

TEST(DenseStoreTest, BulkLoadValues) {
  DenseStore store(std::vector<double>{0.0, 1.0, -2.0});
  EXPECT_EQ(store.capacity(), 3u);
  EXPECT_EQ(store.NumNonZero(), 2u);
  EXPECT_DOUBLE_EQ(store.SumAbs(), 3.0);
}

std::unique_ptr<CoefficientStore> MakeInner() {
  auto inner = std::make_unique<HashStore>();
  for (uint64_t k = 0; k < 64; ++k) inner->Add(k, static_cast<double>(k + 1));
  return inner;
}

TEST(BlockStoreTest, FirstTouchIsBlockRead) {
  BlockStore store(MakeInner(), /*block_size=*/8, /*cache_blocks=*/4);
  store.Fetch(0);
  EXPECT_EQ(store.stats().retrievals, 1u);
  EXPECT_EQ(store.stats().block_reads, 1u);
  EXPECT_EQ(store.stats().block_hits, 0u);
}

TEST(BlockStoreTest, SameBlockHits) {
  BlockStore store(MakeInner(), 8, 4);
  store.Fetch(0);
  store.Fetch(7);  // same block [0,8)
  store.Fetch(3);
  EXPECT_EQ(store.stats().block_reads, 1u);
  EXPECT_EQ(store.stats().block_hits, 2u);
}

TEST(BlockStoreTest, LruEviction) {
  BlockStore store(MakeInner(), 8, 2);
  store.Fetch(0);   // block 0 (miss)
  store.Fetch(8);   // block 1 (miss)
  store.Fetch(16);  // block 2 (miss, evicts block 0)
  store.Fetch(0);   // block 0 again (miss)
  EXPECT_EQ(store.stats().block_reads, 4u);
  EXPECT_EQ(store.stats().block_hits, 0u);
}

TEST(BlockStoreTest, LruTouchRefreshes) {
  BlockStore store(MakeInner(), 8, 2);
  store.Fetch(0);   // block 0 (miss)            cache: {0}
  store.Fetch(8);   // block 1 (miss)            cache: {1,0}
  store.Fetch(1);   // block 0 (hit, refreshed)  cache: {0,1}
  store.Fetch(16);  // block 2 (miss, evicts 1)  cache: {2,0}
  store.Fetch(2);   // block 0 (hit)
  EXPECT_EQ(store.stats().block_reads, 3u);
  EXPECT_EQ(store.stats().block_hits, 2u);
}

TEST(BlockStoreTest, UnbufferedEveryBlockAccessReads) {
  BlockStore store(MakeInner(), 8, 0);
  store.Fetch(0);
  store.Fetch(1);
  store.Fetch(2);
  EXPECT_EQ(store.stats().block_reads, 3u);
  EXPECT_EQ(store.stats().block_hits, 0u);
}

TEST(BlockStoreTest, DelegatesValuesAndUpdates) {
  BlockStore store(MakeInner(), 8, 2);
  EXPECT_DOUBLE_EQ(store.Peek(5), 6.0);
  EXPECT_DOUBLE_EQ(store.Fetch(5), 6.0);
  store.Add(5, 1.0);
  EXPECT_DOUBLE_EQ(store.Peek(5), 7.0);
  EXPECT_EQ(store.NumNonZero(), 64u);
  EXPECT_EQ(store.name(), "blocked(hash)");
}

// ---------------------------------------------------------------------------
// FetchBatch: behaviorally equivalent to a scalar Fetch loop on every store
// (same values, same retrieval count); BlockStore additionally reads each
// distinct block at most once per call.

/// Runs the same key sequence through `batch_store` (one FetchBatch) and
/// `scalar_store` (a Fetch loop) — the two stores must hold identical data.
void ExpectBatchMatchesScalar(CoefficientStore& batch_store,
                              CoefficientStore& scalar_store,
                              const std::vector<uint64_t>& keys) {
  batch_store.ResetStats();
  scalar_store.ResetStats();
  std::vector<double> batched(keys.size());
  batch_store.FetchBatch(keys, batched);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(batched[i], scalar_store.Fetch(keys[i])) << "key " << keys[i];
  }
  EXPECT_EQ(batch_store.stats().retrievals, scalar_store.stats().retrievals);
  EXPECT_EQ(batch_store.stats().retrievals, keys.size());
}

TEST(FetchBatchTest, HashStoreMatchesScalarLoop) {
  HashStore a, b;
  for (uint64_t k = 0; k < 32; k += 2) {
    a.Add(k, static_cast<double>(k) * 0.5);
    b.Add(k, static_cast<double>(k) * 0.5);
  }
  // Unsorted, with duplicates and absent keys.
  ExpectBatchMatchesScalar(a, b, {9, 2, 2, 31, 0, 30, 2});
}

TEST(FetchBatchTest, DenseStoreMatchesScalarLoop) {
  std::vector<double> values(64);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = (i % 3 == 0) ? 0.0 : static_cast<double>(i);
  }
  DenseStore a(values), b(values);
  ExpectBatchMatchesScalar(a, b, {63, 0, 17, 17, 5, 44});
}

TEST(FetchBatchTest, BlockStoreMatchesScalarValuesAndRetrievals) {
  BlockStore a(MakeInner(), 8, 4), b(MakeInner(), 8, 4);
  ExpectBatchMatchesScalar(a, b, {0, 7, 63, 8, 9, 1, 1});
}

TEST(FetchBatchTest, EmptyBatchIsFree) {
  HashStore store;
  store.FetchBatch({}, {});
  EXPECT_EQ(store.stats().retrievals, 0u);
}

TEST(FetchBatchTest, BlockStoreReadsEachDistinctBlockOnce) {
  // 16 coefficients spanning 2 blocks, unbuffered: a scalar loop would
  // charge 16 block reads; one batched call charges exactly 2.
  BlockStore store(MakeInner(), /*block_size=*/8, /*cache_blocks=*/0);
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 16; ++k) keys.push_back(k);
  std::vector<double> out(keys.size());
  store.FetchBatch(keys, out);
  EXPECT_EQ(store.stats().retrievals, 16u);
  EXPECT_EQ(store.stats().block_reads, 2u);
  EXPECT_EQ(store.stats().block_hits, 0u);
}

TEST(FetchBatchTest, BlockStoreBatchStillHitsWarmCache) {
  BlockStore store(MakeInner(), 8, 4);
  store.Fetch(0);  // warms block 0
  std::vector<uint64_t> keys = {1, 2, 3, 8};
  std::vector<double> out(keys.size());
  store.FetchBatch(keys, out);
  // Block 0 is a (single) hit, block 1 a (single) read.
  EXPECT_EQ(store.stats().block_reads, 2u);  // initial Fetch + block 1
  EXPECT_EQ(store.stats().block_hits, 1u);
}

TEST(FetchBatchTest, DuplicateKeysEachCountAsRetrieval) {
  // Duplicates cost one retrieval each — identical to the scalar loop, so
  // batching can never *undercount* the paper's metric.
  HashStore store;
  store.Add(3, 1.5);
  std::vector<uint64_t> keys = {3, 3, 3};
  std::vector<double> out(keys.size());
  store.FetchBatch(keys, out);
  EXPECT_EQ(store.stats().retrievals, 3u);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 1.5);
}

}  // namespace
}  // namespace wavebatch
