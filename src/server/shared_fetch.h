#ifndef WAVEBATCH_SERVER_SHARED_FETCH_H_
#define WAVEBATCH_SERVER_SHARED_FETCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/coefficient_store.h"

namespace wavebatch::server {

/// The cross-session I/O pool behind one serving group: coefficient values
/// already retrieved from the backing store this epoch, shared by every
/// live session pinned to that epoch. Observation 1 ("I/O sharing is
/// considerable") applied *across* query batches: two concurrent batches
/// over the same view overlap heavily in their important coefficients, so
/// the second session's fetches are mostly warm.
///
/// Thread-safe: lookups take a shared lock, inserts an exclusive one.
/// Values never change once inserted (the group is pinned to one immutable
/// epoch snapshot), so the cache never invalidates — it is dropped whole
/// when its group retires. hits/misses are the backend-I/O ledger: every
/// key served from the cache is a backend fetch somebody else already paid
/// for.
class SharedFetchCache {
 public:
  /// True (and *value set) when `key` is cached. Counts one hit or miss.
  bool Lookup(uint64_t key, double* value) const {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = values_.find(key);
      if (it != values_.end()) {
        *value = it->second;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Splits `keys` into cached and missing: out[i] is filled for every
  /// cached keys[i] and `missing_index` receives the positions of the
  /// uncached ones (in order, duplicates preserved). One hit/miss is
  /// counted per key — the ledger stays per-coefficient.
  void Partition(std::span<const uint64_t> keys, std::span<double> out,
                 std::vector<size_t>* missing_index) const {
    size_t hits = 0;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      for (size_t i = 0; i < keys.size(); ++i) {
        auto it = values_.find(keys[i]);
        if (it != values_.end()) {
          out[i] = it->second;
          ++hits;
        } else {
          missing_index->push_back(i);
        }
      }
    }
    hits_.fetch_add(hits, std::memory_order_relaxed);
    misses_.fetch_add(keys.size() - hits, std::memory_order_relaxed);
  }

  void Insert(uint64_t key, double value) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    values_.emplace(key, value);
  }

  /// Inserts values[i] under keys[i] for every i. Re-inserting an existing
  /// key is a no-op (values are immutable within an epoch).
  void InsertBatch(std::span<const uint64_t> keys,
                   std::span<const double> values) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    for (size_t i = 0; i < keys.size(); ++i) {
      values_.emplace(keys[i], values[i]);
    }
  }

  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return values_.size();
  }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<uint64_t, double> values_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

/// Read-only decorator a serving group hands its sessions: fetches are
/// served from the group's SharedFetchCache when warm and delegated to the
/// pinned inner snapshot (then cached) when cold. The paper's per-session
/// cost model is untouched — the public Fetch/FetchBatch wrappers charge
/// one retrieval per coefficient whether it came from the cache or the
/// backend, so a session's io() is bit-identical to an isolated run; what
/// the cache changes is how many of those retrievals reach the *backend*
/// (the shared hits/misses ledger measures exactly that split).
///
/// `inner` must be stable for this store's lifetime — its own snapshot
/// (PinVersion() returned it, or the store is immutable). Mixing epochs in
/// one cache would serve stale values; QueryService guarantees this by
/// rotating to a fresh cache+store pair on every epoch refresh.
class SharedFetchStore : public CoefficientStore {
 public:
  SharedFetchStore(std::shared_ptr<const CoefficientStore> inner,
                   std::shared_ptr<SharedFetchCache> cache);

  double Peek(uint64_t key) const override { return inner_->Peek(key); }
  /// Read-only view: aborts.
  void Add(uint64_t key, double delta) override;
  uint64_t NumNonZero() const override { return inner_->NumNonZero(); }
  double SumAbs() const override { return inner_->SumAbs(); }
  void ForEachNonZero(
      const std::function<void(uint64_t, double)>& fn) const override {
    inner_->ForEachNonZero(fn);
  }
  std::string name() const override { return "shared(" + inner_->name() + ")"; }
  const KeyRouter* router() const override { return inner_->router(); }
  /// Cached values are exactly what the inner store decoded, so the inner
  /// bound covers cache hits too.
  double PeekErrorBound(uint64_t key) const override {
    return inner_->PeekErrorBound(key);
  }
  bool Lossy() const override { return inner_->Lossy(); }
  std::shared_ptr<const CoefficientStore> PinVersion() const override;

  const SharedFetchCache& cache() const { return *cache_; }

  /// Group prefetch: retrieves the keys of `keys` not yet cached from the
  /// inner store with one batched fetch and caches them, so later session
  /// fetches are warm. Duplicates and already-cached keys cost nothing.
  /// Nothing is charged to any session (`io` collects only the inner
  /// backend's sub-model counters, e.g. block reads; pass nullptr to skip).
  /// Best-effort under faults: when the batch fails it falls back to
  /// per-key fetches, caching what succeeds — unavailable keys are left for
  /// sessions to observe under their own FaultPolicy. Returns the first
  /// non-OK Status seen (the prefetch itself still completed).
  Status Prefetch(std::span<const uint64_t> keys, IoStats* io = nullptr) const;

 protected:
  Result<double> DoFetch(uint64_t key, IoStats* io) const override;
  Status DoFetchBatch(std::span<const uint64_t> keys, std::span<double> out,
                      IoStats* io) const override;
  Status DoFetchBatchRouted(std::span<const uint64_t> keys,
                            std::span<const uint32_t> shards,
                            std::span<double> out, IoStats* io) const override;

 private:
  /// Fetches the missing subset `missing_index` of `keys` from the inner
  /// store (routed when `shards` is non-empty), scatters the values into
  /// `out`, and caches them. All-or-nothing like every batch hook.
  Status FillMisses(std::span<const uint64_t> keys,
                    std::span<const uint32_t> shards, std::span<double> out,
                    const std::vector<size_t>& missing_index, IoStats* io) const;

  std::shared_ptr<const CoefficientStore> inner_;
  std::shared_ptr<SharedFetchCache> cache_;
};

}  // namespace wavebatch::server

#endif  // WAVEBATCH_SERVER_SHARED_FETCH_H_
