file(REMOVE_RECURSE
  "CMakeFiles/temperature_drilldown.dir/temperature_drilldown.cpp.o"
  "CMakeFiles/temperature_drilldown.dir/temperature_drilldown.cpp.o.d"
  "temperature_drilldown"
  "temperature_drilldown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temperature_drilldown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
