#include "storage/delta_store.h"

namespace wavebatch {

void DeltaStore::Apply(const SparseVec& delta) {
  ++ingests_;
  entries_applied_ += delta.size();
  for (const SparseEntry& e : delta) adds_[e.key] += e.value;
}

void DeltaStore::ApplyOne(uint64_t key, double value) {
  ++ingests_;
  ++entries_applied_;
  adds_[key] += value;
}

std::shared_ptr<const DeltaOverlay> DeltaStore::Seal(
    const DeltaOverlay* under) const {
  if (adds_.empty() && (under == nullptr || under->empty())) return nullptr;
  auto overlay = std::make_shared<DeltaOverlay>();
  if (under != nullptr) {
    overlay->adds = under->adds;
    overlay->ingests = under->ingests;
  }
  // Same per-key consolidation an uninterrupted DeltaStore would have
  // produced: `under`'s summed add first, then this store's summed add.
  for (const auto& [key, value] : adds_) overlay->adds[key] += value;
  overlay->ingests += ingests_;
  return overlay;
}

void DeltaStore::Clear() { adds_.clear(); }

}  // namespace wavebatch
