file(REMOVE_RECURSE
  "../bench/bench_fig5_mre"
  "../bench/bench_fig5_mre.pdb"
  "CMakeFiles/bench_fig5_mre.dir/bench_fig5_mre.cc.o"
  "CMakeFiles/bench_fig5_mre.dir/bench_fig5_mre.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_mre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
