#ifndef WAVEBATCH_STORAGE_MEMORY_STORE_H_
#define WAVEBATCH_STORAGE_MEMORY_STORE_H_

#include <unordered_map>

#include "storage/coefficient_store.h"
#include "wavelet/sparse_vec.h"

namespace wavebatch {

/// Hash-based coefficient store — the paper's "hash-based storage that
/// allows constant-time access to any single value". Holds only nonzero
/// coefficients, so it is the right backend for sparse transformed data
/// over large domains and for incrementally maintained views.
class HashStore : public CoefficientStore {
 public:
  HashStore() = default;

  /// Bulk-loads from a sparse vector.
  explicit HashStore(const SparseVec& coefficients);

  double Peek(uint64_t key) const override;
  void Add(uint64_t key, double delta) override;
  uint64_t NumNonZero() const override;
  double SumAbs() const override;
  void ForEachNonZero(
      const std::function<void(uint64_t, double)>& fn) const override;
  std::string name() const override { return "hash"; }

  const std::unordered_map<uint64_t, double>& map() const { return map_; }

 protected:
  /// Single-probe loop straight on the hash map (skips per-key virtual
  /// dispatch; constant-time probes don't benefit from reordering).
  /// Infallible: absent keys read as 0.
  Status DoFetchBatch(std::span<const uint64_t> keys, std::span<double> out,
                      IoStats* io) const override;

 private:
  std::unordered_map<uint64_t, double> map_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STORAGE_MEMORY_STORE_H_
