#include "engine/eval_plan.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "telemetry/span.h"
#include "util/check.h"
#include "util/random.h"

namespace wavebatch {

Result<std::shared_ptr<const EvalPlan>> EvalPlan::Build(
    const QueryBatch& batch, const LinearStrategy& strategy,
    std::shared_ptr<const PenaltyFunction> penalty) {
  telemetry::ScopedSpan span("plan_build");
  Result<MasterList> list = MasterList::Build(batch, strategy);
  if (!list.ok()) return list.status();
  return FromMasterList(
      std::make_shared<const MasterList>(std::move(list).value()),
      std::move(penalty));
}

std::shared_ptr<const EvalPlan> EvalPlan::FromMasterList(
    std::shared_ptr<const MasterList> list,
    std::shared_ptr<const PenaltyFunction> penalty) {
  WB_CHECK(list != nullptr);
  return std::shared_ptr<const EvalPlan>(
      new EvalPlan(std::move(list), std::move(penalty)));
}

EvalPlan::EvalPlan(std::shared_ptr<const MasterList> list,
                   std::shared_ptr<const PenaltyFunction> penalty)
    : list_(std::move(list)), penalty_(std::move(penalty)) {
  const size_t n = list_->size();

  // Importances: the penalty applied to the column of query coefficients at
  // each entry, accumulated in entry order — the same values and the same
  // floating-point summation sequence as the legacy evaluator, so sessions
  // reproduce its bounds bit for bit.
  if (penalty_ != nullptr) {
    importance_.resize(n);
    std::vector<double> column(list_->num_queries(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      const MasterEntry& e = list_->entry(i);
      for (const auto& [query, coeff] : e.uses) column[query] = coeff;
      importance_[i] = penalty_->Apply(column);
      total_importance_ += importance_[i];
      for (const auto& [query, coeff] : e.uses) column[query] = 0.0;
    }
  }

  // kKeyOrder: master lists are ascending by key, so identity.
  key_order_.resize(n);
  for (size_t i = 0; i < n; ++i) key_order_[i] = i;

  // kBiggestB: a max-heap of (importance, index) pairs pops them in
  // descending pair order — all pairs are distinct (indices are unique), so
  // the pop sequence IS the descending sort, ties on importance breaking
  // toward the larger index.
  if (penalty_ != nullptr) {
    biggest_b_ = key_order_;
    std::sort(biggest_b_.begin(), biggest_b_.end(),
              [this](size_t a, size_t b) {
                return std::make_pair(importance_[a], a) >
                       std::make_pair(importance_[b], b);
              });
  }

  // kRoundRobin: each query walks its own coefficients in decreasing
  // magnitude, one per round; an entry already consumed by an earlier query
  // is skipped, i.e. the raw round-robin sequence collapses onto first
  // appearances.
  {
    std::vector<std::vector<std::pair<double, size_t>>> per_query(
        list_->num_queries());
    for (size_t i = 0; i < n; ++i) {
      for (const auto& [query, coeff] : list_->entry(i).uses) {
        per_query[query].emplace_back(std::abs(coeff), i);
      }
    }
    for (auto& v : per_query) {
      std::sort(v.begin(), v.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
    }
    std::vector<bool> taken(n, false);
    round_robin_.reserve(n);
    for (size_t round = 0;; ++round) {
      bool any = false;
      for (const auto& v : per_query) {
        if (round >= v.size()) continue;
        any = true;
        const size_t entry = v[round].second;
        if (!taken[entry]) {
          taken[entry] = true;
          round_robin_.push_back(entry);
        }
      }
      if (!any) break;
    }
    WB_CHECK_EQ(round_robin_.size(), n);
  }
}

std::span<const size_t> EvalPlan::Permutation(ProgressionOrder order) const {
  switch (order) {
    case ProgressionOrder::kBiggestB:
      WB_CHECK(penalty_ != nullptr)
          << "kBiggestB needs a penalty (plan was built without one)";
      return biggest_b_;
    case ProgressionOrder::kRoundRobin:
      return round_robin_;
    case ProgressionOrder::kKeyOrder:
      return key_order_;
    case ProgressionOrder::kRandom:
      break;
  }
  WB_CHECK(false) << "kRandom is seed-dependent: use RandomPermutation(seed)";
  return {};
}

std::vector<size_t> EvalPlan::RandomPermutation(uint64_t seed) const {
  std::vector<size_t> perm = key_order_;
  Rng rng(seed);
  rng.Shuffle(perm);
  return perm;
}

}  // namespace wavebatch
