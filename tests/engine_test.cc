// The engine layer's contract: EvalPlan + EvalSession reproduce every
// legacy evaluation mode bit for bit — estimates, Theorem 1/2 bound
// trackers, and retrieval counts — across all four progression orders and
// all four store backends, while fixing the lifetime and accounting
// problems (shared ownership, per-session IoStats).

#include "engine/eval_plan.h"
#include "engine/eval_session.h"

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/block_progressive.h"
#include "core/bounded_workspace.h"
#include "core/exact.h"
#include "core/progressive.h"
#include "data/generators.h"
#include "engine/bounded.h"
#include "engine/plan_cache.h"
#include "gtest/gtest.h"
#include "penalty/sse.h"
#include "storage/block_store.h"
#include "storage/dense_store.h"
#include "storage/fault_injection_store.h"
#include "storage/file_store.h"
#include "storage/memory_store.h"
#include "strategy/wavelet_strategy.h"
#include "util/random.h"

namespace wavebatch {
namespace {

struct Fixture {
  Schema schema = Schema::Uniform(2, 16);
  Relation rel;
  QueryBatch batch;
  std::shared_ptr<const MasterList> list;
  std::unique_ptr<CoefficientStore> store;
  std::shared_ptr<const SsePenalty> sse = std::make_shared<SsePenalty>();
  std::shared_ptr<const EvalPlan> plan;
  std::vector<double> exact;

  Fixture() : rel(MakeUniformRelation(schema, 500, 3)), batch(schema) {
    WaveletStrategy strategy(schema, WaveletKind::kHaar);
    Rng rng(9);
    for (int i = 0; i < 12; ++i) {
      uint32_t lo0 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi0 = lo0 + static_cast<uint32_t>(rng.UniformInt(16 - lo0));
      uint32_t lo1 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi1 = lo1 + static_cast<uint32_t>(rng.UniformInt(16 - lo1));
      batch.Add(RangeSumQuery::Count(
          Range::Create(schema, {{lo0, hi0}, {lo1, hi1}}).value()));
    }
    list = std::make_shared<const MasterList>(
        MasterList::Build(batch, strategy).value());
    store = strategy.BuildStore(rel.FrequencyDistribution());
    plan = EvalPlan::FromMasterList(list, sse);
    exact = batch.BruteForce(rel);
  }
};

/// Copies a store's contents into every backend flavor (BlockStore is
/// unbuffered so its per-call block counters are history-independent).
struct Backends {
  std::vector<std::pair<std::string, std::unique_ptr<CoefficientStore>>>
      stores;
  std::string file_path;

  explicit Backends(const CoefficientStore& source) {
    uint64_t max_key = 0;
    auto hash = std::make_unique<HashStore>();
    auto block_inner = std::make_unique<HashStore>();
    source.ForEachNonZero([&](uint64_t key, double value) {
      max_key = std::max(max_key, key);
      hash->Add(key, value);
      block_inner->Add(key, value);
    });
    std::vector<double> values(max_key + 1, 0.0);
    source.ForEachNonZero(
        [&](uint64_t key, double value) { values[key] = value; });

    file_path = ::testing::TempDir() + "/wavebatch_engine_test_" +
                std::to_string(reinterpret_cast<uintptr_t>(this)) + ".bin";
    auto file = FileStore::Create(file_path, values);
    EXPECT_TRUE(file.ok()) << file.status();

    stores.emplace_back("hash", std::move(hash));
    stores.emplace_back("dense", std::make_unique<DenseStore>(values));
    stores.emplace_back("file", std::move(file).value());
    stores.emplace_back("block",
                        std::make_unique<BlockStore>(std::move(block_inner),
                                                     /*block_size=*/8,
                                                     /*cache_blocks=*/0));
  }

  ~Backends() { std::remove(file_path.c_str()); }
};

class EngineOrderTest : public ::testing::TestWithParam<ProgressionOrder> {};

TEST_P(EngineOrderTest, GoldenAgainstLegacyEvaluatorOnEveryBackend) {
  // Lockstep: after every batch of steps the session and the legacy
  // evaluator must agree exactly — estimates, both bound trackers, next
  // importance, steps, and I/O.
  Fixture f;
  Backends backends(*f.store);
  for (auto& [name, store] : backends.stores) {
    ProgressiveEvaluator legacy(f.list.get(), f.sse.get(), store.get(),
                                GetParam(), 17);
    EvalSession::Options opts;
    opts.order = GetParam();
    opts.seed = 17;
    EvalSession session(f.plan, UnownedStore(*store), opts);
    ASSERT_EQ(session.TotalSteps(), legacy.TotalSteps());
    const double k = store->SumAbs();
    const size_t batch_sizes[] = {1, 3, 7, 16, 64};
    size_t bi = 0;
    while (!session.Done()) {
      EXPECT_EQ(session.NextImportance(), legacy.NextImportance()) << name;
      const size_t n = batch_sizes[bi++ % std::size(batch_sizes)];
      const size_t taken = session.StepBatch(n).value();
      EXPECT_EQ(taken, legacy.StepBatch(n)) << name;
      ASSERT_EQ(session.StepsTaken(), legacy.StepsTaken()) << name;
      for (size_t q = 0; q < f.batch.size(); ++q) {
        EXPECT_EQ(session.Estimates()[q], legacy.Estimates()[q])
            << name << " query " << q << " after " << session.StepsTaken();
      }
      EXPECT_EQ(session.WorstCaseBound(k), legacy.WorstCaseBound(k)) << name;
      EXPECT_EQ(session.ExpectedPenalty(f.schema.cell_count()),
                legacy.ExpectedPenalty(f.schema.cell_count()))
          << name;
      // Invariant: the remaining importance mass is clamped, so the
      // Theorem-2 tracker can never report a negative expected penalty.
      EXPECT_GE(session.ExpectedPenalty(f.schema.cell_count()), 0.0) << name;
      EXPECT_EQ(session.io(), legacy.io()) << name;
    }
    EXPECT_TRUE(legacy.Done());
    EXPECT_EQ(session.io().retrievals, f.list->size());
    for (size_t i = 0; i < f.exact.size(); ++i) {
      EXPECT_NEAR(session.Estimates()[i], f.exact[i],
                  1e-6 * (1.0 + std::abs(f.exact[i])));
    }
  }
}

TEST_P(EngineOrderTest, ScalarStepsMatchLegacyEntryForEntry) {
  Fixture f;
  ProgressiveEvaluator legacy(f.list.get(), f.sse.get(), f.store.get(),
                              GetParam(), 17);
  EvalSession::Options opts;
  opts.order = GetParam();
  opts.seed = 17;
  EvalSession session(f.plan, UnownedStore(*f.store), opts);
  while (!session.Done()) {
    EXPECT_EQ(session.Step().value(), legacy.Step());
  }
  EXPECT_TRUE(legacy.Done());
  EXPECT_EQ(session.io(), legacy.io());
}

TEST_P(EngineOrderTest, SkipModeBatchAndScalarPathsAgree) {
  // Under FaultPolicy::kSkip a failed FetchBatch falls back to per-key
  // scalar fetches. That fallback and a pure scalar Step() loop must be
  // indistinguishable: same estimates, same bound trackers, same skipped
  // mass — entry for entry, under every progression order.
  Fixture f;
  auto make_faulty = [&] {
    auto inner = std::make_unique<HashStore>();
    f.store->ForEachNonZero(
        [&](uint64_t key, double value) { inner->Add(key, value); });
    auto faulty = std::make_unique<FaultInjectionStore>(std::move(inner));
    for (size_t i = 0; i < f.list->size(); i += 3) {
      faulty->FailKey(f.list->keys()[i]);
    }
    return faulty;
  };
  auto batch_store = make_faulty();
  auto scalar_store = make_faulty();
  EvalSession::Options opts;
  opts.order = GetParam();
  opts.seed = 17;
  opts.fault_policy = FaultPolicy::kSkip;
  EvalSession batched(f.plan, UnownedStore(*batch_store), opts);
  EvalSession scalar(f.plan, UnownedStore(*scalar_store), opts);
  const double k = f.store->SumAbs();
  const size_t batch_sizes[] = {1, 3, 7, 16, 64};
  size_t bi = 0;
  while (!batched.Done()) {
    const size_t n = batch_sizes[bi++ % std::size(batch_sizes)];
    const size_t taken = batched.StepBatch(n).value();
    ASSERT_TRUE(scalar.StepMany(taken).ok());
    ASSERT_EQ(batched.StepsTaken(), scalar.StepsTaken());
    EXPECT_EQ(batched.SkippedCoefficients(), scalar.SkippedCoefficients());
    EXPECT_EQ(batched.SkippedImportance(), scalar.SkippedImportance());
    for (size_t q = 0; q < f.batch.size(); ++q) {
      EXPECT_EQ(batched.Estimates()[q], scalar.Estimates()[q])
          << "query " << q << " after " << batched.StepsTaken();
    }
    EXPECT_EQ(batched.WorstCaseBound(k), scalar.WorstCaseBound(k));
    EXPECT_EQ(batched.ExpectedPenalty(f.schema.cell_count()),
              scalar.ExpectedPenalty(f.schema.cell_count()));
  }
  EXPECT_TRUE(scalar.Done());
  EXPECT_GT(batched.SkippedCoefficients(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, EngineOrderTest,
                         ::testing::Values(ProgressionOrder::kBiggestB,
                                           ProgressionOrder::kRoundRobin,
                                           ProgressionOrder::kRandom,
                                           ProgressionOrder::kKeyOrder));

TEST(EngineSessionTest, StepBatchZeroAndOverrunClamp) {
  Fixture f;
  EvalSession session(f.plan, UnownedStore(*f.store));
  // n == 0 is a complete no-op: no cursor movement, no I/O.
  EXPECT_EQ(session.StepBatch(0).value(), 0u);
  EXPECT_EQ(session.StepsTaken(), 0u);
  EXPECT_EQ(session.io().retrievals, 0u);
  // n far beyond the remaining tail clamps to the tail.
  const size_t total = session.TotalSteps();
  ASSERT_GT(total, 3u);
  EXPECT_EQ(session.StepBatch(total - 3).value(), total - 3);
  EXPECT_EQ(session.StepBatch(total).value(), 3u);
  EXPECT_TRUE(session.Done());
  // A completed session accepts further batch calls as no-ops.
  EXPECT_EQ(session.StepBatch(64).value(), 0u);
  EXPECT_EQ(session.io().retrievals, total);
  for (size_t i = 0; i < f.exact.size(); ++i) {
    EXPECT_NEAR(session.Estimates()[i], f.exact[i],
                1e-6 * (1.0 + std::abs(f.exact[i])));
  }
}

TEST(EnginePlanTest, SerialAndParallelPlansBitIdentical) {
  // BuildParallelism must be unobservable in the artifact: importances,
  // their total, and every permutation identical bit for bit.
  Fixture f;
  auto serial =
      EvalPlan::FromMasterList(f.list, f.sse, BuildParallelism::kSerial);
  auto parallel =
      EvalPlan::FromMasterList(f.list, f.sse, BuildParallelism::kParallel);
  ASSERT_EQ(serial->size(), parallel->size());
  EXPECT_EQ(serial->total_importance(), parallel->total_importance());
  for (size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ(serial->importance(i), parallel->importance(i)) << i;
  }
  for (ProgressionOrder order :
       {ProgressionOrder::kBiggestB, ProgressionOrder::kRoundRobin,
        ProgressionOrder::kKeyOrder}) {
    std::span<const size_t> a = serial->Permutation(order);
    std::span<const size_t> b = parallel->Permutation(order);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << static_cast<int>(order) << " at " << i;
    }
  }
  EXPECT_EQ(serial->RandomPermutation(17), parallel->RandomPermutation(17));
}

TEST(EnginePlanTest, RandomPermutationMemoIsTransparent) {
  // The plan memoizes the last (seed, permutation) pair; eviction and
  // re-request must be invisible to callers.
  Fixture f;
  const std::vector<size_t> p42 = f.plan->RandomPermutation(42);
  const std::vector<size_t> p7 = f.plan->RandomPermutation(7);
  EXPECT_NE(p42, p7);
  EXPECT_EQ(f.plan->RandomPermutation(7), p7);    // served from the memo
  EXPECT_EQ(f.plan->RandomPermutation(42), p42);  // recomputed after evict
}

TEST(EnginePlanTest, PermutationsAreTruePermutations) {
  Fixture f;
  for (ProgressionOrder order :
       {ProgressionOrder::kBiggestB, ProgressionOrder::kRoundRobin,
        ProgressionOrder::kKeyOrder}) {
    std::span<const size_t> perm = f.plan->Permutation(order);
    ASSERT_EQ(perm.size(), f.list->size());
    std::vector<bool> seen(perm.size(), false);
    for (size_t idx : perm) {
      ASSERT_LT(idx, seen.size());
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
  std::vector<size_t> random = f.plan->RandomPermutation(99);
  EXPECT_EQ(random.size(), f.list->size());
  EXPECT_EQ(random, f.plan->RandomPermutation(99));
  EXPECT_NE(random, f.plan->RandomPermutation(100));
}

TEST(EnginePlanTest, BiggestBPermutationIsDecreasingImportance) {
  Fixture f;
  std::span<const size_t> perm =
      f.plan->Permutation(ProgressionOrder::kBiggestB);
  for (size_t i = 1; i < perm.size(); ++i) {
    EXPECT_GE(f.plan->importance(perm[i - 1]), f.plan->importance(perm[i]));
  }
}

TEST(EngineSessionTest, KeyOrderRunToExactMatchesEvaluateShared) {
  Fixture f;
  ExactBatchResult shared = EvaluateShared(*f.list, *f.store);
  EvalSession::Options opts;
  opts.order = ProgressionOrder::kKeyOrder;
  EvalSession session(f.plan, UnownedStore(*f.store), opts);
  ASSERT_TRUE(session.RunToExact().ok());
  ASSERT_EQ(session.Estimates().size(), shared.results.size());
  for (size_t q = 0; q < shared.results.size(); ++q) {
    EXPECT_EQ(session.Estimates()[q], shared.results[q]);
  }
  EXPECT_EQ(session.io().retrievals, shared.retrievals);
}

TEST(EngineSessionTest, PenaltyFreePlanRunsExactOnly) {
  // Exact-shared evaluation needs no penalty; importance-based APIs are
  // unavailable but kKeyOrder runs fine.
  Fixture f;
  auto plan = EvalPlan::FromMasterList(f.list, /*penalty=*/nullptr);
  EXPECT_FALSE(plan->HasImportance());
  EvalSession::Options opts;
  opts.order = ProgressionOrder::kKeyOrder;
  EvalSession session(plan, UnownedStore(*f.store), opts);
  ASSERT_TRUE(session.RunToExact().ok());
  for (size_t i = 0; i < f.exact.size(); ++i) {
    EXPECT_NEAR(session.Estimates()[i], f.exact[i],
                1e-6 * (1.0 + std::abs(f.exact[i])));
  }
}

TEST(EngineSessionTest, BlockModeGoldenAgainstLegacyBlockEvaluator) {
  Fixture f;
  Backends backends(*f.store);
  auto block_of = [](uint64_t key) { return key / 8; };
  for (auto& [name, store] : backends.stores) {
    BlockProgressiveEvaluator legacy(f.list.get(), f.sse.get(), store.get(),
                                     block_of);
    EvalSession::Options opts;
    opts.block_of = block_of;
    EvalSession session(f.plan, UnownedStore(*store), opts);
    ASSERT_EQ(session.TotalBlocks(), legacy.TotalBlocks()) << name;
    while (!session.Done()) {
      EXPECT_EQ(session.NextBlockImportance(), legacy.NextBlockImportance())
          << name;
      EXPECT_EQ(session.StepBlock().value(), legacy.StepBlock()) << name;
      EXPECT_GE(session.ExpectedPenalty(f.schema.cell_count()), 0.0) << name;
      EXPECT_EQ(session.BlocksFetched(), legacy.BlocksFetched()) << name;
      EXPECT_EQ(session.CoefficientsFetched(), legacy.CoefficientsFetched())
          << name;
      for (size_t q = 0; q < f.batch.size(); ++q) {
        EXPECT_EQ(session.Estimates()[q], legacy.Estimates()[q])
            << name << " query " << q;
      }
    }
    EXPECT_TRUE(legacy.Done());
    EXPECT_EQ(session.io(), legacy.io()) << name;
    for (size_t i = 0; i < f.exact.size(); ++i) {
      EXPECT_NEAR(session.Estimates()[i], f.exact[i],
                  1e-6 * (1.0 + std::abs(f.exact[i])));
    }
  }
}

TEST(EngineBoundedTest, GoldenAgainstLegacyBoundedWorkspace) {
  Fixture f;
  WaveletStrategy strategy(f.schema, WaveletKind::kHaar);
  for (uint64_t budget : {uint64_t{1}, uint64_t{64}, uint64_t{256},
                          uint64_t{1} << 40}) {
    BoundedWorkspaceResult legacy =
        EvaluateWithBoundedWorkspace(f.batch, strategy, *f.store, budget);
    BoundedRunResult engine =
        RunWithBoundedWorkspace(f.batch, strategy, *f.store, budget).value();
    ASSERT_EQ(engine.results.size(), legacy.results.size());
    for (size_t q = 0; q < legacy.results.size(); ++q) {
      EXPECT_EQ(engine.results[q], legacy.results[q]) << "budget " << budget;
    }
    EXPECT_EQ(engine.io.retrievals, legacy.retrievals) << "budget " << budget;
    EXPECT_EQ(engine.peak_workspace, legacy.peak_workspace);
    EXPECT_EQ(engine.num_groups, legacy.num_groups);
  }
}

TEST(EngineSessionTest, SessionOutlivesCreatingScope) {
  // The lifetime regression the shared_ptr ownership fixes: everything a
  // session needs — master list, penalty, store, plan — was created in a
  // scope that is gone by the time the session steps.
  Fixture f;
  std::vector<double> exact = f.exact;
  const size_t num_queries = f.batch.size();
  std::unique_ptr<EvalSession> session;
  {
    WaveletStrategy strategy(f.schema, WaveletKind::kHaar);
    auto penalty = std::make_shared<SsePenalty>();
    Result<std::shared_ptr<const EvalPlan>> plan =
        EvalPlan::Build(f.batch, strategy, penalty);
    ASSERT_TRUE(plan.ok()) << plan.status();
    std::shared_ptr<CoefficientStore> store =
        strategy.BuildStore(f.rel.FrequencyDistribution());
    session = std::make_unique<EvalSession>(*plan, store);
    // penalty, plan, store, strategy all go out of scope here; the session
    // holds what it needs alive.
  }
  ASSERT_TRUE(session->RunToExact().ok());
  ASSERT_EQ(session->Estimates().size(), num_queries);
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(session->Estimates()[i], exact[i],
                1e-6 * (1.0 + std::abs(exact[i])));
  }
}

TEST(EngineSessionTest, ConcurrentSessionsShareOnePlan) {
  // Two sessions over one plan progress independently.
  Fixture f;
  EvalSession a(f.plan, UnownedStore(*f.store));
  EvalSession b(f.plan, UnownedStore(*f.store));
  ASSERT_TRUE(a.StepMany(5).ok());
  EXPECT_EQ(a.StepsTaken(), 5u);
  EXPECT_EQ(b.StepsTaken(), 0u);
  ASSERT_TRUE(b.RunToExact().ok());
  EXPECT_FALSE(a.Done());
  EXPECT_TRUE(b.Done());
  EXPECT_EQ(a.io().retrievals, 5u);
  EXPECT_EQ(b.io().retrievals, f.list->size());
}

TEST(EnginePlanCacheTest, HitsReturnTheSamePlan) {
  Fixture f;
  WaveletStrategy strategy(f.schema, WaveletKind::kHaar);
  PlanCache cache(8);
  Result<std::shared_ptr<const EvalPlan>> first =
      cache.GetOrBuild(f.batch, strategy, f.sse);
  ASSERT_TRUE(first.ok());
  Result<std::shared_ptr<const EvalPlan>> second =
      cache.GetOrBuild(f.batch, strategy, f.sse);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(EnginePlanCacheTest, PenaltyContentDeterminesTheKey) {
  // The key encodes the penalty's *content*: a second penalty object with
  // identical parameters ranks coefficients identically, so it shares the
  // cached plan; a penalty with different parameters (even the same type
  // and name) must miss.
  Fixture f;
  WaveletStrategy strategy(f.schema, WaveletKind::kHaar);
  PlanCache cache(8);
  auto same_content = std::make_shared<SsePenalty>();
  auto a = cache.GetOrBuild(f.batch, strategy, f.sse);
  auto b = cache.GetOrBuild(f.batch, strategy, same_content);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().get(), b.value().get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  const size_t s = f.batch.size();
  auto uniform =
      std::make_shared<WeightedSsePenalty>(std::vector<double>(s, 1.0));
  std::vector<double> skewed(s, 1.0);
  skewed[0] = 2.0;
  auto reweighted = std::make_shared<WeightedSsePenalty>(std::move(skewed));
  auto c = cache.GetOrBuild(f.batch, strategy, uniform);
  auto d = cache.GetOrBuild(f.batch, strategy, reweighted);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(d.ok());
  EXPECT_NE(c.value().get(), d.value().get());
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(EnginePlanCacheTest, BatchShapeChangesTheKey) {
  Fixture f;
  WaveletStrategy strategy(f.schema, WaveletKind::kHaar);
  PlanCache cache(8);
  QueryBatch other(f.schema);
  other.Add(RangeSumQuery::Count(Range::All(f.schema)));
  auto a = cache.GetOrBuild(f.batch, strategy, f.sse);
  auto b = cache.GetOrBuild(other, strategy, f.sse);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().get(), b.value().get());
}

TEST(EnginePlanCacheTest, EvictsLeastRecentlyUsed) {
  Fixture f;
  WaveletStrategy strategy(f.schema, WaveletKind::kHaar);
  PlanCache cache(2);
  QueryBatch b1(f.schema), b2(f.schema), b3(f.schema);
  b1.Add(RangeSumQuery::Count(Range::All(f.schema)));
  b2.Add(RangeSumQuery::Count(
      Range::Create(f.schema, {{0, 3}, {0, 3}}).value()));
  b3.Add(RangeSumQuery::Count(
      Range::Create(f.schema, {{4, 7}, {4, 7}}).value()));
  ASSERT_TRUE(cache.GetOrBuild(b1, strategy, f.sse).ok());
  ASSERT_TRUE(cache.GetOrBuild(b2, strategy, f.sse).ok());
  ASSERT_TRUE(cache.GetOrBuild(b3, strategy, f.sse).ok());  // evicts b1
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_TRUE(cache.GetOrBuild(b1, strategy, f.sse).ok());  // rebuild
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(EngineSessionTest, CachedPlanAnswersSameAsFreshPlan) {
  Fixture f;
  WaveletStrategy strategy(f.schema, WaveletKind::kHaar);
  Result<std::shared_ptr<const EvalPlan>> cached =
      PlanCache::Shared().GetOrBuild(f.batch, strategy, f.sse);
  ASSERT_TRUE(cached.ok());
  EvalSession from_cache(*cached, UnownedStore(*f.store));
  EvalSession fresh(f.plan, UnownedStore(*f.store));
  ASSERT_TRUE(from_cache.RunToExact().ok());
  ASSERT_TRUE(fresh.RunToExact().ok());
  for (size_t q = 0; q < f.batch.size(); ++q) {
    EXPECT_EQ(from_cache.Estimates()[q], fresh.Estimates()[q]);
  }
  EXPECT_EQ(from_cache.io(), fresh.io());
}

}  // namespace
}  // namespace wavebatch
