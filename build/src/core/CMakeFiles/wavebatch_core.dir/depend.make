# Empty dependencies file for wavebatch_core.
# This may be replaced when dependencies are built.
