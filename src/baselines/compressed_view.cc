#include "baselines/compressed_view.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

namespace wavebatch {

std::unique_ptr<HashStore> CompressTopCoefficients(
    const CoefficientStore& store, uint64_t keep) {
  // Min-heap of the `keep` largest |value| seen so far: O(total·log keep)
  // without materializing all coefficients sorted.
  using Item = std::pair<double, std::pair<uint64_t, double>>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  store.ForEachNonZero([&](uint64_t key, double value) {
    const double magnitude = std::abs(value);
    if (heap.size() < keep) {
      heap.push({magnitude, {key, value}});
    } else if (keep > 0 && magnitude > heap.top().first) {
      heap.pop();
      heap.push({magnitude, {key, value}});
    }
  });
  auto out = std::make_unique<HashStore>();
  while (!heap.empty()) {
    out->Add(heap.top().second.first, heap.top().second.second);
    heap.pop();
  }
  return out;
}

}  // namespace wavebatch
