// The paper's Q2 scenario: a dashboard renders 512 range-sums but only a
// "cursor" of 24 neighboring cells is on screen. A cursored SSE penalty
// (on-screen errors weigh 10x) steers the progressive retrieval so the
// visible cells sharpen first while the rest stay reasonable — compare the
// on-screen vs off-screen mean relative error at increasing I/O budgets
// for both the cursored and the plain-SSE progressions.
//
//   ./build/examples/cursored_dashboard

#include <cmath>
#include <cstdio>

#include <memory>

#include "engine/eval_plan.h"
#include "engine/eval_session.h"
#include "data/generators.h"
#include "data/workloads.h"
#include "penalty/sse.h"
#include "strategy/wavelet_strategy.h"

using namespace wavebatch;

namespace {

struct SplitMre {
  double on_screen;
  double off_screen;
};

SplitMre Measure(const EvalSession& ev,
                 const std::vector<double>& exact,
                 const std::vector<bool>& on_screen) {
  double on = 0.0, off = 0.0;
  size_t n_on = 0, n_off = 0;
  for (size_t i = 0; i < exact.size(); ++i) {
    if (exact[i] == 0.0) continue;
    const double rel =
        std::abs(ev.Estimates()[i] - exact[i]) / std::abs(exact[i]);
    if (on_screen[i]) {
      on += rel;
      ++n_on;
    } else {
      off += rel;
      ++n_off;
    }
  }
  return {n_on ? on / n_on : 0.0, n_off ? off / n_off : 0.0};
}

}  // namespace

int main() {
  TemperatureDatasetOptions options;
  options.lat_size = 64;
  options.lon_size = 64;
  options.alt_size = 8;
  options.time_size = 16;
  options.temp_size = 32;
  options.num_records = 2000000;
  std::printf("building dashboard workload (512 cells, 24 on screen)...\n");
  DenseCube cube = MakeTemperatureCube(options);
  const std::vector<size_t> parts = {32, 16, 1, 1, 1};
  PartitionWorkload w = MakePartitionWorkload(
      cube.schema(), parts, CellAggregate::kSum, kTemp, /*seed=*/9,
      /*random_cuts=*/true, /*min_width=*/2, /*measure_offset=*/53.33);

  WaveletStrategy strategy(cube.schema(), WaveletKind::kDb4);
  std::shared_ptr<const CoefficientStore> store = strategy.BuildStore(cube);
  auto list = std::make_shared<const MasterList>(
      MasterList::Build(w.batch, strategy).value());

  // Exact reference: one key-ordered session over a penalty-free plan.
  std::vector<double> exact;
  {
    EvalSession::Options opts;
    opts.order = ProgressionOrder::kKeyOrder;
    EvalSession session(EvalPlan::FromMasterList(list, nullptr), store, opts);
    session.RunToExact();
    exact = session.Estimates();
  }

  // The on-screen cursor: 24 consecutive cells (a grid-row block).
  std::vector<size_t> cursor;
  std::vector<bool> on_screen(w.batch.size(), false);
  for (size_t i = 0; i < 24; ++i) {
    cursor.push_back(200 + i);
    on_screen[200 + i] = true;
  }
  // One master list, two plans: the penalty decides the progression
  // order, so each penalty gets its own (cheap) plan over the shared list.
  auto sse = std::make_shared<SsePenalty>();
  auto cursored = std::make_shared<WeightedSsePenalty>(
      CursoredSsePenalty(w.batch.size(), cursor, /*priority_weight=*/10.0));

  EvalSession ev_cursored(EvalPlan::FromMasterList(list, cursored), store);
  EvalSession ev_plain(EvalPlan::FromMasterList(list, sse), store);

  std::printf("\n%-10s | %-23s | %-23s\n", "", "cursored progression",
              "plain-SSE progression");
  std::printf("%-10s | %-11s %-11s | %-11s %-11s\n", "retrieved",
              "on-screen", "off-screen", "on-screen", "off-screen");
  for (size_t budget : {64, 256, 1024, 4096, 16384}) {
    if (budget > list->size()) break;
    ev_cursored.StepMany(budget - ev_cursored.StepsTaken());
    ev_plain.StepMany(budget - ev_plain.StepsTaken());
    SplitMre c = Measure(ev_cursored, exact, on_screen);
    SplitMre p = Measure(ev_plain, exact, on_screen);
    std::printf("%-10zu | %-11.4g %-11.4g | %-11.4g %-11.4g\n", budget,
                c.on_screen, c.off_screen, p.on_screen, p.off_screen);
  }
  std::printf("\nthe cursored progression drives the on-screen error down "
              "faster, at a modest off-screen cost (paper, Observation "
              "3).\n");
  return 0;
}
