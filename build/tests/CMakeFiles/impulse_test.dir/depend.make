# Empty dependencies file for impulse_test.
# This may be replaced when dependencies are built.
