#ifndef WAVEBATCH_CORE_BLOCK_PROGRESSIVE_H_
#define WAVEBATCH_CORE_BLOCK_PROGRESSIVE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/master_list.h"
#include "penalty/penalty.h"
#include "storage/coefficient_store.h"

namespace wavebatch {

/// Block-granularity Batch-Biggest-B — the generalization the paper's
/// conclusion calls for ("generalize importance functions to disk blocks
/// rather than individual tuples"). Master-list entries are grouped by a
/// caller-supplied key→block mapping; a block's importance is the *sum* of
/// its member importances (additive in Theorem 2's expected-penalty sum,
/// so greedy-by-total-importance minimizes the expected penalty among all
/// progressions that fetch whole blocks); each step fetches one block —
/// every needed coefficient on it — and advances all affected estimates.
class BlockProgressiveEvaluator {
 public:
  /// `list`, `penalty`, `store` must outlive the evaluator. `block_of`
  /// maps coefficient keys to block ids (e.g. rank/block_size for a packed
  /// layout, or key/block_size for an array layout).
  BlockProgressiveEvaluator(const MasterList* list,
                            const PenaltyFunction* penalty,
                            const CoefficientStore* store,
                            const std::function<uint64_t(uint64_t)>& block_of);

  size_t TotalBlocks() const { return blocks_.size(); }
  uint64_t BlocksFetched() const { return blocks_fetched_; }
  uint64_t CoefficientsFetched() const { return coefficients_fetched_; }
  bool Done() const { return blocks_fetched_ == blocks_.size(); }

  /// Fetches the most important unfetched block; returns the number of
  /// coefficients it contributed. Requires !Done().
  size_t StepBlock();

  /// Fetches blocks until `n` blocks have been consumed in total (stops at
  /// completion).
  void StepToBlocks(uint64_t n);

  const std::vector<double>& Estimates() const { return estimates_; }

  /// Total importance of the next block to be fetched (0 when done).
  double NextBlockImportance() const;

  /// I/O charged by this evaluator's own fetches (includes block_reads /
  /// block_hits when the store is a BlockStore).
  const IoStats& io() const { return io_; }

 private:
  struct Block {
    uint64_t id;
    double importance = 0.0;
    std::vector<size_t> entries;  // master-list entry indices
  };

  const MasterList* list_;
  const CoefficientStore* store_;
  IoStats io_;
  std::vector<Block> blocks_;
  std::vector<double> estimates_;
  uint64_t blocks_fetched_ = 0;
  uint64_t coefficients_fetched_ = 0;
  // Max-heap of (importance, block index).
  std::priority_queue<std::pair<double, size_t>> heap_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_CORE_BLOCK_PROGRESSIVE_H_
