#include "strategy/wavelet_strategy.h"

#include <vector>

#include "storage/dense_store.h"
#include "storage/memory_store.h"
#include "util/bits.h"
#include "util/check.h"
#include "wavelet/dwt_nd.h"
#include "wavelet/impulse.h"
#include "wavelet/lazy_query_transform.h"
#include "wavelet/query_transform.h"

namespace wavebatch {

namespace {

// Expands the tensor product of per-dimension sparse 1-D coefficient lists
// into `acc`, scaling every product by `coeff`. Keys are packed with the
// schema's per-dimension bit widths (dimension 0 most significant).
void ExpandTensorProduct(const Schema& schema,
                         const std::vector<std::vector<SparseEntry>>& factors,
                         double coeff, SparseAccumulator& acc) {
  const size_t d = factors.size();
  // Iterative odometer over factor indices; running partial keys/values per
  // dimension avoid recomputing prefixes.
  std::vector<size_t> idx(d, 0);
  std::vector<uint64_t> key_prefix(d + 1, 0);
  std::vector<double> val_prefix(d + 1, 0.0);
  val_prefix[0] = coeff;
  for (const auto& f : factors) {
    if (f.empty()) return;  // a zero factor annihilates the product
  }
  size_t dim = 0;
  for (;;) {
    // Fill prefixes from `dim` to the end.
    for (size_t i = dim; i < d; ++i) {
      const SparseEntry& e = factors[i][idx[i]];
      key_prefix[i + 1] = (key_prefix[i] << schema.bits(i)) | e.key;
      val_prefix[i + 1] = val_prefix[i] * e.value;
    }
    acc.Add(key_prefix[d], val_prefix[d]);
    // Advance the odometer (last dimension fastest).
    size_t i = d;
    while (i-- > 0) {
      if (++idx[i] < factors[i].size()) break;
      idx[i] = 0;
      if (i == 0) return;
    }
    dim = i;
  }
}

}  // namespace

WaveletStrategy::WaveletStrategy(Schema schema, WaveletKind kind)
    : LinearStrategy(std::move(schema)), filter_(WaveletFilter::Get(kind)) {}

Result<SparseVec> WaveletStrategy::TransformQuery(
    const RangeSumQuery& query) const {
  if (!(query.range().num_dims() == schema_.num_dims())) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  SparseAccumulator acc;
  for (const Monomial& term : query.poly().terms()) {
    std::vector<std::vector<SparseEntry>> factors(schema_.num_dims());
    for (size_t i = 0; i < schema_.num_dims(); ++i) {
      const Interval& iv = query.range().interval(i);
      // O(L² log N) pruned cascade; falls back to the dense transform for
      // degrees beyond the filter's vanishing moments.
      factors[i] = LazyRangeMonomialDwt1D(schema_.dim(i).size, iv.lo, iv.hi,
                                          term.exponents[i], filter_);
    }
    ExpandTensorProduct(schema_, factors, term.coeff, acc);
  }
  // Cross-term cancellation can produce numerically-zero entries; sweep
  // them with the same relative threshold the 1-D transforms use.
  double max_abs = 0.0;
  for (const auto& [key, value] : acc.map()) {
    max_abs = std::max(max_abs, std::abs(value));
  }
  return acc.ToVec(max_abs * kQueryCoefficientRelEps);
}

std::unique_ptr<CoefficientStore> WaveletStrategy::BuildStore(
    const DenseCube& delta) const {
  WB_CHECK(delta.schema() == schema_);
  DenseCube transformed = delta;
  ForwardDwtNd(transformed, filter_);
  std::vector<double> values(transformed.values().begin(),
                             transformed.values().end());
  return std::make_unique<DenseStore>(std::move(values));
}

Result<SparseVec> WaveletStrategy::TransformUpdate(const Tuple& tuple,
                                                   double count) const {
  if (!schema_.Contains(tuple)) {
    return Status::OutOfRange("tuple outside schema domain");
  }
  std::vector<std::vector<SparseEntry>> factors(schema_.num_dims());
  double bound = 1.0;
  for (size_t i = 0; i < schema_.num_dims(); ++i) {
    const uint64_t n = schema_.dim(i).size;
    factors[i] = SparseImpulseDwt1D(n, tuple[i], 1.0, filter_);
    // Per-dimension sparsity of the impulse cascade: the level-ℓ scaling
    // support of a point is at most L-1 positions wide, each level emits at
    // most that many details, and one approximation coefficient survives.
    bound *= static_cast<double>(filter_.length()) *
                 static_cast<double>(FloorLog2(n)) +
             1.0;
  }
  SparseAccumulator acc;
  ExpandTensorProduct(schema_, factors, count, acc);
  // The paper's maintenance claim, enforced: an insertion touches
  // O((2δ+2)^d log^d N) stored coefficients.
  WB_CHECK_LE(static_cast<double>(acc.size()), bound)
      << "wavelet update delta exceeds the (2δ+2)^d log^d N bound";
  return acc.ToVec();
}

std::string WaveletStrategy::name() const {
  return std::string("wavelet-") + filter_.name();
}

std::unique_ptr<CoefficientStore> WaveletStrategy::MakeEmptyStore() const {
  return std::make_unique<HashStore>();
}

}  // namespace wavebatch
