file(REMOVE_RECURSE
  "libwavebatch_wavelet.a"
)
