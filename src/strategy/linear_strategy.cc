#include "strategy/linear_strategy.h"

#include "util/check.h"

namespace wavebatch {

std::unique_ptr<CoefficientStore> LinearStrategy::BuildStoreFromRelation(
    const Relation& relation) const {
  WB_CHECK(relation.schema() == schema_);
  std::unique_ptr<CoefficientStore> store = MakeEmptyStore();
  for (const Tuple& t : relation.tuples()) {
    Status s = InsertTuple(*store, t, 1.0);
    WB_CHECK(s.ok()) << s;
  }
  return store;
}

}  // namespace wavebatch
