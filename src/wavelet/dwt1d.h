#ifndef WAVEBATCH_WAVELET_DWT1D_H_
#define WAVEBATCH_WAVELET_DWT1D_H_

#include <cstdint>
#include <span>

#include "wavelet/filters.h"

namespace wavebatch {

/// In-place full periodic orthonormal DWT of `data` (length a power of two).
///
/// Layout after the call (the "dyadic" layout used throughout wavebatch):
///   data[0]                 — the single coarsest scaling coefficient
///   data[2^l .. 2^(l+1))    — detail coefficients at depth l, where l = 0
///                             is the coarsest band and l = log2(n)-1 the
///                             finest.
/// The transform is orthonormal at every level (periodized filters), so it
/// preserves inner products — the property Equation (1)/(2) of the paper
/// relies on.
void ForwardDwt1D(std::span<double> data, const WaveletFilter& filter);

/// Inverse of ForwardDwt1D (exact up to floating-point roundoff).
void InverseDwt1D(std::span<double> data, const WaveletFilter& filter);

/// Identifies what a flat index in the dyadic layout refers to.
struct WaveletIndex1D {
  bool is_scaling;  // true only for flat index 0
  uint32_t depth;   // 0 = coarsest detail band; meaningless for scaling
  uint32_t pos;     // translate within the band
};

/// Decodes `flat` (in [0, 2^log2n)) into band/position form.
WaveletIndex1D DecodeWaveletIndex(uint64_t flat);

/// Inverse of DecodeWaveletIndex.
uint64_t EncodeWaveletIndex(const WaveletIndex1D& idx);

}  // namespace wavebatch

#endif  // WAVEBATCH_WAVELET_DWT1D_H_
