#ifndef WAVEBATCH_UTIL_PARALLEL_SORT_H_
#define WAVEBATCH_UTIL_PARALLEL_SORT_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

namespace wavebatch {

/// Deterministic parallel sorting for plan construction: fixed chunk
/// boundaries, fixed merge pairing, and std::inplace_merge (stable), so the
/// output never depends on thread count or interleaving. Two entry points:
///
///   ParallelSort       — comparator must be a strict *total* order (no two
///                        elements equivalent), which makes the sorted
///                        sequence unique and therefore identical to the
///                        serial std::sort, bit for bit.
///   MergeSortedRuns    — input is a concatenation of pre-sorted runs; the
///                        comparator may have ties. Adjacent runs are merged
///                        pairwise with stable merges, so ties resolve
///                        toward the earlier run — exactly a stable sort of
///                        the concatenation.
///
/// Both run serially (same code path, same result) when `pool` is null.

namespace internal {

/// Merges adjacent pre-sorted runs pairwise until one run remains.
/// `bounds` holds run boundaries: run r is [bounds[r], bounds[r+1]).
template <typename Iter, typename Comp>
void MergeRunTree(Iter first, std::vector<size_t> bounds, const Comp& comp,
                  ThreadPool* pool) {
  while (bounds.size() > 2) {
    const size_t pairs = (bounds.size() - 1) / 2;
    auto merge_pair = [&](size_t begin, size_t end) {
      for (size_t p = begin; p < end; ++p) {
        std::inplace_merge(first + bounds[2 * p], first + bounds[2 * p + 1],
                           first + bounds[2 * p + 2], comp);
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(pairs, /*grain=*/1, merge_pair);
    } else {
      merge_pair(0, pairs);
    }
    // Keep every other boundary (plus the tail boundary when the run count
    // was odd — that run passes through unmerged this round).
    std::vector<size_t> next;
    next.reserve(pairs + 2);
    for (size_t i = 0; i < bounds.size(); i += 2) next.push_back(bounds[i]);
    if ((bounds.size() - 1) % 2 == 1) next.push_back(bounds.back());
    bounds = std::move(next);
  }
}

}  // namespace internal

/// Stable k-way merge of pre-sorted runs laid out back to back in
/// [first, first + bounds.back()). Equivalent to a stable sort of the whole
/// range; ties under `comp` keep earlier-run elements first.
template <typename Iter, typename Comp>
void MergeSortedRuns(Iter first, const std::vector<size_t>& bounds,
                     const Comp& comp, ThreadPool* pool) {
  if (bounds.size() <= 2) return;  // zero or one run: already sorted
  internal::MergeRunTree(first, bounds, comp, pool);
}

/// Sorts [first, first + n) under `comp`, which MUST be a strict total
/// order (document at the call site why no two elements compare equivalent)
/// so that the result is the unique sorted sequence — identical to serial
/// std::sort. Chunks of `grain` are sorted concurrently and merged with a
/// fixed pairing.
template <typename Iter, typename Comp>
void ParallelSort(Iter first, size_t n, const Comp& comp, ThreadPool* pool,
                  size_t grain = size_t{1} << 14) {
  WB_CHECK_GT(grain, 0u);
  if (n <= grain || pool == nullptr) {
    std::sort(first, first + n, comp);
    return;
  }
  const size_t num_chunks = (n + grain - 1) / grain;
  std::vector<size_t> bounds(num_chunks + 1);
  for (size_t c = 0; c <= num_chunks; ++c) bounds[c] = std::min(n, c * grain);
  pool->ParallelFor(num_chunks, /*grain=*/1, [&](size_t begin, size_t end) {
    for (size_t c = begin; c < end; ++c) {
      std::sort(first + bounds[c], first + bounds[c + 1], comp);
    }
  });
  internal::MergeRunTree(first, std::move(bounds), comp, pool);
}

}  // namespace wavebatch

#endif  // WAVEBATCH_UTIL_PARALLEL_SORT_H_
