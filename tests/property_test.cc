// Property-style sweeps over the full pipeline: for every (filter, schema
// shape, polynomial degree) combination, the wavelet strategy must answer
// random range-sums exactly, with query-vector sparsity respecting the
// paper's O((4δ+2)^d log^d N) bound, and progressive evaluation must obey
// the Theorem 1 bound on arbitrary random data.

#include <cmath>
#include <memory>

#include "core/exact.h"
#include "core/progressive.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "penalty/lp.h"
#include "penalty/sse.h"
#include "strategy/wavelet_strategy.h"
#include "util/random.h"

namespace wavebatch {
namespace {

struct PipelineParam {
  WaveletKind kind;
  size_t num_dims;
  uint32_t dim_size;
  uint32_t degree;  // per-variable degree of the query polynomial

  friend std::ostream& operator<<(std::ostream& os, const PipelineParam& p) {
    return os << WaveletFilter::Get(p.kind).name() << "_d" << p.num_dims
              << "_n" << p.dim_size << "_deg" << p.degree;
  }
};

class PipelinePropertyTest : public ::testing::TestWithParam<PipelineParam> {
 protected:
  static RangeSumQuery RandomQuery(const Schema& schema, uint32_t degree,
                                   Rng& rng) {
    std::vector<Interval> ivs;
    for (size_t i = 0; i < schema.num_dims(); ++i) {
      const uint32_t n = schema.dim(i).size;
      const uint32_t lo = static_cast<uint32_t>(rng.UniformInt(n));
      const uint32_t hi = lo + static_cast<uint32_t>(rng.UniformInt(n - lo));
      ivs.push_back({lo, hi});
    }
    Range range = Range::Create(schema, ivs).value();
    if (degree == 0) return RangeSumQuery::Count(range);
    const size_t dim = rng.UniformInt(schema.num_dims());
    return RangeSumQuery::SumPower(range, dim, degree);
  }
};

TEST_P(PipelinePropertyTest, ExactOnRandomData) {
  const PipelineParam& p = GetParam();
  Schema schema = Schema::Uniform(p.num_dims, p.dim_size);
  Relation rel = MakeUniformRelation(
      schema, std::min<uint64_t>(400, schema.cell_count() * 4), 97);
  WaveletStrategy strategy(schema, p.kind);
  auto store = strategy.BuildStore(rel.FrequencyDistribution());
  Rng rng(1000 + p.num_dims);
  for (int t = 0; t < 10; ++t) {
    RangeSumQuery q = RandomQuery(schema, p.degree, rng);
    Result<SparseVec> qc = strategy.TransformQuery(q);
    ASSERT_TRUE(qc.ok());
    double acc = 0.0;
    for (const SparseEntry& e : *qc) acc += e.value * store->Peek(e.key);
    const double expected = q.BruteForce(rel);
    EXPECT_NEAR(acc, expected, 1e-6 * (1.0 + std::abs(expected)))
        << q.range().ToString() << " " << q.poly().ToString();
  }
}

TEST_P(PipelinePropertyTest, SparsityBoundWhenFilterSufficient) {
  const PipelineParam& p = GetParam();
  const WaveletFilter& filter = WaveletFilter::Get(p.kind);
  if (filter.max_degree() < p.degree) return;  // bound only claimed here
  Schema schema = Schema::Uniform(p.num_dims, p.dim_size);
  WaveletStrategy strategy(schema, p.kind);
  Rng rng(2000 + p.num_dims);
  const double log_n = std::log2(static_cast<double>(p.dim_size));
  // Per-dimension bound: 2 edges × L wavelets per level, plus slack for the
  // coarse levels (≤ 2L).
  const double per_dim = 2.0 * filter.length() * log_n + 2.0 * filter.length();
  const double bound = std::pow(per_dim, static_cast<double>(p.num_dims));
  for (int t = 0; t < 10; ++t) {
    RangeSumQuery q = RandomQuery(schema, p.degree, rng);
    Result<SparseVec> qc = strategy.TransformQuery(q);
    ASSERT_TRUE(qc.ok());
    EXPECT_LE(static_cast<double>(qc->size()), bound)
        << q.range().ToString();
  }
}

TEST_P(PipelinePropertyTest, Theorem1BoundHoldsOnArbitraryData) {
  const PipelineParam& p = GetParam();
  Schema schema = Schema::Uniform(p.num_dims, p.dim_size);
  // Skewed data stresses the bound more than uniform.
  Relation rel = MakeZipfRelation(
      schema, std::min<uint64_t>(300, schema.cell_count() * 4), 1.1,
      3000 + p.num_dims);
  WaveletStrategy strategy(schema, p.kind);
  auto store = strategy.BuildStore(rel.FrequencyDistribution());
  QueryBatch batch(schema);
  Rng rng(4000 + p.num_dims);
  for (int i = 0; i < 6; ++i) {
    batch.Add(RandomQuery(schema, p.degree, rng));
  }
  Result<MasterList> list = MasterList::Build(batch, strategy);
  ASSERT_TRUE(list.ok());
  std::vector<double> exact = batch.BruteForce(rel);
  SsePenalty sse;
  const double k = store->SumAbs();
  ProgressiveEvaluator ev(&*list, &sse, store.get());
  while (!ev.Done()) {
    std::vector<double> err(exact.size());
    for (size_t i = 0; i < err.size(); ++i) {
      err[i] = ev.Estimates()[i] - exact[i];
    }
    EXPECT_LE(sse.Apply(err), ev.WorstCaseBound(k) * (1.0 + 1e-6) + 1e-4);
    ev.StepMany(list->size() / 7 + 1);
  }
}

TEST_P(PipelinePropertyTest, LinfWorstCaseBoundAlsoHolds) {
  // Corollary 1 with the max norm (homogeneity degree 1).
  const PipelineParam& p = GetParam();
  if (p.degree > 0) return;  // one norm sweep is enough; keep runtime down
  Schema schema = Schema::Uniform(p.num_dims, p.dim_size);
  Relation rel = MakeUniformRelation(
      schema, std::min<uint64_t>(200, schema.cell_count() * 2), 53);
  WaveletStrategy strategy(schema, p.kind);
  auto store = strategy.BuildStore(rel.FrequencyDistribution());
  QueryBatch batch(schema);
  Rng rng(5000);
  for (int i = 0; i < 5; ++i) batch.Add(RandomQuery(schema, 0, rng));
  Result<MasterList> list = MasterList::Build(batch, strategy);
  ASSERT_TRUE(list.ok());
  std::vector<double> exact = batch.BruteForce(rel);
  LpPenalty linf = LpPenalty::Infinity();
  const double k = store->SumAbs();
  ProgressiveEvaluator ev(&*list, &linf, store.get());
  while (!ev.Done()) {
    std::vector<double> err(exact.size());
    for (size_t i = 0; i < err.size(); ++i) {
      err[i] = ev.Estimates()[i] - exact[i];
    }
    EXPECT_LE(linf.Apply(err), ev.WorstCaseBound(k) * (1.0 + 1e-6) + 1e-6);
    ev.StepMany(list->size() / 5 + 1);
  }
}

std::vector<PipelineParam> MakeParams() {
  std::vector<PipelineParam> params;
  for (WaveletKind kind : {WaveletKind::kHaar, WaveletKind::kDb4,
                           WaveletKind::kDb6, WaveletKind::kDb8}) {
    const uint32_t max_deg = WaveletFilter::Get(kind).max_degree();
    for (size_t d : {size_t{1}, size_t{2}, size_t{3}}) {
      const uint32_t size = d == 3 ? 8 : 16;
      for (uint32_t degree = 0; degree <= std::min(max_deg, 2u); ++degree) {
        params.push_back({kind, d, size, degree});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelinePropertyTest,
                         ::testing::ValuesIn(MakeParams()),
                         [](const auto& info) {
                           std::ostringstream os;
                           os << info.param;
                           return os.str();
                         });

}  // namespace
}  // namespace wavebatch
