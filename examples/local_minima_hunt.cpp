// The paper's Q3 scenario: find partition cells that are local minima
// (average temperature below every grid neighbor) from *approximate*
// results. A plain-SSE progression can fabricate or hide extrema; the
// discrete-Laplacian penalty (P3) targets exactly the error structure that
// flips extrema. This example runs both progressions at matched budgets
// and scores the detected minima against the exact answer.
//
//   ./build/examples/local_minima_hunt

#include <cmath>
#include <cstdio>
#include <set>

#include <memory>

#include "engine/eval_plan.h"
#include "engine/eval_session.h"
#include "data/generators.h"
#include "data/workloads.h"
#include "penalty/laplacian.h"
#include "penalty/quadratic.h"
#include "penalty/sse.h"
#include "strategy/wavelet_strategy.h"

using namespace wavebatch;

namespace {

// Cells whose value is strictly below every axis neighbor in the grid.
std::set<size_t> LocalMinima(const GridPartition& grid,
                             const std::vector<double>& values) {
  std::set<size_t> minima;
  for (size_t c = 0; c < grid.num_cells(); ++c) {
    std::vector<size_t> coords = grid.GridCoords(c);
    bool is_min = true;
    for (size_t d = 0; d < coords.size() && is_min; ++d) {
      for (int step : {-1, 1}) {
        if (step < 0 && coords[d] == 0) continue;
        if (step > 0 && coords[d] + 1 >= grid.cells_per_dim()[d]) continue;
        std::vector<size_t> n = coords;
        n[d] += step;
        if (values[grid.CellIndex(n)] <= values[c]) {
          is_min = false;
          break;
        }
      }
    }
    if (is_min) minima.insert(c);
  }
  return minima;
}

void Score(const char* name, const std::set<size_t>& detected,
           const std::set<size_t>& truth) {
  size_t hits = 0;
  for (size_t c : detected) hits += truth.count(c);
  const double precision =
      detected.empty() ? 1.0 : static_cast<double>(hits) / detected.size();
  const double recall =
      truth.empty() ? 1.0 : static_cast<double>(hits) / truth.size();
  std::printf("  %-22s detected %2zu | precision %.2f recall %.2f\n", name,
              detected.size(), precision, recall);
}

}  // namespace

int main() {
  TemperatureDatasetOptions options;
  options.lat_size = 64;
  options.lon_size = 64;
  options.alt_size = 8;
  options.time_size = 16;
  options.temp_size = 32;
  options.num_records = 2000000;
  std::printf("hunting local temperature minima over a 16x16 grid...\n");
  DenseCube cube = MakeTemperatureCube(options);
  const std::vector<size_t> parts = {16, 16, 1, 1, 1};
  PartitionWorkload w = MakePartitionWorkload(
      cube.schema(), parts, CellAggregate::kSum, kTemp, /*seed=*/21,
      /*random_cuts=*/true, /*min_width=*/2, /*measure_offset=*/53.33);

  WaveletStrategy strategy(cube.schema(), WaveletKind::kDb4);
  std::shared_ptr<const CoefficientStore> store = strategy.BuildStore(cube);
  auto list_ptr = std::make_shared<const MasterList>(
      MasterList::Build(w.batch, strategy).value());
  const MasterList& list = *list_ptr;
  std::vector<double> exact;
  {
    EvalSession::Options opts;
    opts.order = ProgressionOrder::kKeyOrder;
    EvalSession session(EvalPlan::FromMasterList(list_ptr, nullptr), store,
                        opts);
    WB_CHECK_OK(session.RunToExact());
    exact = session.Estimates();
  }
  const std::set<size_t> truth = LocalMinima(w.partition, exact);
  std::printf("exact local minima: %zu of %zu cells\n\n", truth.size(),
              w.batch.size());

  auto sse = std::make_shared<SsePenalty>();
  LaplacianPenalty laplacian = LaplacianPenalty::ForGrid(w.partition);
  // The paper suggests mixing penalties; anchoring the Laplacian with a
  // little SSE keeps absolute magnitudes honest while still prioritizing
  // extremum structure.
  auto mixed = std::make_shared<CompositeQuadraticPenalty>();
  mixed->AddTerm(1.0, &laplacian);
  mixed->AddTerm(1.0, sse.get());

  // One shared master list, one plan per penalty (the penalty decides the
  // progression order), one session per plan.
  EvalSession ev_sse(EvalPlan::FromMasterList(list_ptr, sse), store);
  EvalSession ev_mix(EvalPlan::FromMasterList(list_ptr, mixed), store);
  // Remaining guaranteed Laplacian risk (Theorem 2's expected penalty, up
  // to the 1/N^d factor) of each progression's unused coefficient set.
  std::vector<bool> used_sse(list.size(), false);
  std::vector<bool> used_mix(list.size(), false);
  auto remaining_risk = [&](const std::vector<bool>& used) {
    std::vector<double> column(w.batch.size(), 0.0);
    double total = 0.0;
    for (size_t i = 0; i < list.size(); ++i) {
      if (used[i]) continue;
      for (const auto& [q, c] : list.entry(i).uses) column[q] = c;
      total += laplacian.Apply(column);
      for (const auto& [q, c] : list.entry(i).uses) column[q] = 0.0;
    }
    return total;
  };
  for (size_t budget : {64, 256, 1024, 4096}) {
    if (budget > list.size()) break;
    while (ev_sse.StepsTaken() < budget) {
      used_sse[ev_sse.Step().value()] = true;
    }
    while (ev_mix.StepsTaken() < budget) {
      used_mix[ev_mix.Step().value()] = true;
    }
    std::printf("budget %zu retrievals (%.1f%% of master list):\n", budget,
                100.0 * budget / list.size());
    Score("SSE progression:", LocalMinima(w.partition, ev_sse.Estimates()),
          truth);
    Score("Laplacian+SSE mix:",
          LocalMinima(w.partition, ev_mix.Estimates()), truth);
    std::printf("  guaranteed Laplacian risk remaining: SSE %.3g, mix "
                "%.3g\n",
                remaining_risk(used_sse), remaining_risk(used_mix));
  }
  std::printf(
      "\nnote: the mixed ordering always minimizes the *guaranteed*\n"
      "(worst-case / sphere-average) Laplacian risk — Theorems 1 and 2 —\n"
      "while on one particular smooth dataset the realized detection can\n"
      "favor plain SSE, because importance is data-independent. This is\n"
      "the trade the paper's framework makes explicit.\n");
  return 0;
}
