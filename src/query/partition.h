#ifndef WAVEBATCH_QUERY_PARTITION_H_
#define WAVEBATCH_QUERY_PARTITION_H_

#include <span>
#include <vector>

#include "query/range.h"
#include "util/random.h"

namespace wavebatch {

/// A grid partition of a hyper-rectangle into disjoint covering cells —
/// the paper's workload shape ("the queries executed partitioned the entire
/// data domain into 512 randomly sized ranges"). Cells are stored row-major
/// over the grid (dimension 0 slowest), which makes grid adjacency easy to
/// recover for structural penalties (e.g. the discrete Laplacian of P3).
class GridPartition {
 public:
  size_t num_cells() const { return cells_.size(); }
  const Range& cell(size_t i) const { return cells_[i]; }
  const std::vector<Range>& cells() const { return cells_; }

  /// Number of grid cells along each dimension.
  const std::vector<size_t>& cells_per_dim() const { return cells_per_dim_; }

  /// Linear index of the cell at the given grid coordinates.
  size_t CellIndex(std::span<const size_t> grid_coords) const;

  /// Grid coordinates of cell `index` (inverse of CellIndex).
  std::vector<size_t> GridCoords(size_t index) const;

  /// Pairs (i, j), i < j, of cells adjacent along some axis — the edge set
  /// used by graph-Laplacian penalties.
  std::vector<std::pair<size_t, size_t>> AdjacentCellPairs() const;

  /// Splits `box` into a grid with `parts[i]` cells along dimension i at
  /// uniformly random distinct boundaries. Requires
  /// 1 <= parts[i] <= interval length / min_width. With min_width > 1 every
  /// cell is at least that wide — "randomly sized" without degenerate
  /// slivers (a sliver's query vector lives entirely at the finest wavelet
  /// scale and poisons relative-error metrics).
  static GridPartition Random(const Schema& schema, const Range& box,
                              std::span<const size_t> parts, Rng& rng,
                              uint32_t min_width = 1);

  /// Equal-width (up to rounding) grid split of `box`.
  static GridPartition Uniform(const Schema& schema, const Range& box,
                               std::span<const size_t> parts);

 private:
  GridPartition(std::vector<std::vector<Interval>> dim_intervals,
                const Schema& schema);

  std::vector<Range> cells_;
  std::vector<size_t> cells_per_dim_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_QUERY_PARTITION_H_
