#include "storage/file_store.h"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/exact.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "strategy/wavelet_strategy.h"
#include "wavelet/dwt_nd.h"

namespace wavebatch {
namespace {

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/wavebatch_file_store_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(FileStoreTest, CreatePeekRoundTrip) {
  std::vector<double> values = {0.0, 1.5, -2.25, 0.0, 42.0};
  Result<std::unique_ptr<FileStore>> store = FileStore::Create(path_, values);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ((*store)->capacity(), 5u);
  for (uint64_t k = 0; k < values.size(); ++k) {
    EXPECT_DOUBLE_EQ((*store)->Peek(k), values[k]);
  }
  EXPECT_EQ((*store)->NumNonZero(), 3u);
  EXPECT_DOUBLE_EQ((*store)->SumAbs(), 1.5 + 2.25 + 42.0);
}

TEST_F(FileStoreTest, ReopenSeesPersistedData) {
  {
    Result<std::unique_ptr<FileStore>> store =
        FileStore::Create(path_, {3.0, 4.0});
    ASSERT_TRUE(store.ok());
    (*store)->Add(0, 1.0);
  }
  Result<std::unique_ptr<FileStore>> reopened = FileStore::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->capacity(), 2u);
  EXPECT_DOUBLE_EQ((*reopened)->Peek(0), 4.0);
  EXPECT_DOUBLE_EQ((*reopened)->Peek(1), 4.0);
}

TEST_F(FileStoreTest, OpenMissingFileFails) {
  Result<std::unique_ptr<FileStore>> store =
      FileStore::Open(path_ + ".does-not-exist");
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kNotFound);
}

TEST_F(FileStoreTest, FetchCountsIo) {
  Result<std::unique_ptr<FileStore>> store =
      FileStore::Create(path_, {1.0, 2.0});
  ASSERT_TRUE(store.ok());
  IoStats io;
  EXPECT_TRUE((*store)->Fetch(0, &io).ok());
  EXPECT_TRUE((*store)->Fetch(1, &io).ok());
  EXPECT_EQ(io.retrievals, 2u);
}

TEST_F(FileStoreTest, FetchOutOfCapacityIsStatusNotAbort) {
  Result<std::unique_ptr<FileStore>> store =
      FileStore::Create(path_, {1.0, 2.0});
  ASSERT_TRUE(store.ok());
  IoStats io;
  Result<double> value = (*store)->Fetch(2, &io);
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(io.retrievals, 0u);

  std::vector<uint64_t> keys = {0, 2};
  std::vector<double> out(keys.size());
  Status status = (*store)->FetchBatch(keys, out, &io);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(io.retrievals, 0u);
}

TEST_F(FileStoreTest, TruncatedFileReportsUnexpectedEofNotShortRead) {
  // A file shorter than the store's capacity claims: pread returns 0 at the
  // hole. That is not a retryable read error — the fetch must come back as
  // a Status naming the EOF, not spin on retries or abort.
  Result<std::unique_ptr<FileStore>> store =
      FileStore::Create(path_, std::vector<double>(16, 1.0));
  ASSERT_TRUE(store.ok());
  ASSERT_EQ(::truncate(path_.c_str(), 8 * sizeof(double)), 0);

  Result<double> value = (*store)->Fetch(12);
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(value.status().message().find("unexpected EOF"),
            std::string::npos)
      << value.status();

  // Batched reads hit the same hole through the coalesced-run path.
  std::vector<uint64_t> keys = {0, 12};
  std::vector<double> out(keys.size());
  Status status = (*store)->FetchBatch(keys, out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(FileStoreTest, ForEachNonZeroScansEverything) {
  std::vector<double> values(10000, 0.0);
  values[7] = 1.0;
  values[4096] = -1.0;  // crosses the internal scan-buffer boundary
  values[9999] = 2.0;
  Result<std::unique_ptr<FileStore>> store = FileStore::Create(path_, values);
  ASSERT_TRUE(store.ok());
  std::vector<std::pair<uint64_t, double>> seen;
  (*store)->ForEachNonZero(
      [&](uint64_t key, double value) { seen.emplace_back(key, value); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<uint64_t, double>{7, 1.0}));
  EXPECT_EQ(seen[1], (std::pair<uint64_t, double>{4096, -1.0}));
  EXPECT_EQ(seen[2], (std::pair<uint64_t, double>{9999, 2.0}));
}

TEST_F(FileStoreTest, FetchBatchMatchesScalarLoop) {
  // Values/retrievals identical to a Fetch loop, across batch shapes that
  // exercise every coalescing path: unsorted, duplicates, contiguous runs,
  // gap-merged runs, far-apart singletons, and a batch large enough to
  // cross the parallel-fetch threshold.
  std::vector<double> values(8192);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(static_cast<double>(i));
  }
  Result<std::unique_ptr<FileStore>> store = FileStore::Create(path_, values);
  ASSERT_TRUE(store.ok());

  std::vector<std::vector<uint64_t>> batches = {
      {},
      {5},
      {5, 5, 5},
      {9, 2, 0, 8191, 4096, 3, 2},
      {100, 101, 102, 103, 110, 200, 8000, 8001},
  };
  std::vector<uint64_t> big;
  for (uint64_t i = 0; i < 2048; ++i) big.push_back((i * 2654435761u) % 8192);
  batches.push_back(big);

  for (const std::vector<uint64_t>& keys : batches) {
    IoStats io;
    std::vector<double> out(keys.size(), -1.0);
    ASSERT_TRUE((*store)->FetchBatch(keys, out, &io).ok());
    EXPECT_EQ(io.retrievals, keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(out[i], values[keys[i]]) << "key " << keys[i];
    }
  }
}

TEST_F(FileStoreTest, AnswersBatchQueriesLikeInMemoryStore) {
  // End to end: a wavelet view persisted to disk answers identically to
  // the in-memory view.
  Schema schema = Schema::Uniform(2, 16);
  Relation rel = MakeUniformRelation(schema, 300, 13);
  WaveletStrategy strategy(schema, WaveletKind::kDb4);
  DenseCube transformed = rel.FrequencyDistribution();
  ForwardDwtNd(transformed, strategy.filter());
  std::vector<double> view(transformed.values().begin(),
                           transformed.values().end());
  Result<std::unique_ptr<FileStore>> file_store =
      FileStore::Create(path_, view);
  ASSERT_TRUE(file_store.ok());
  auto memory_store = strategy.BuildStore(rel.FrequencyDistribution());

  QueryBatch batch(schema);
  batch.Add(RangeSumQuery::Count(Range::All(schema).Restrict(0, 3, 12)));
  batch.Add(RangeSumQuery::Sum(Range::All(schema), 1));
  MasterList list = MasterList::Build(batch, strategy).value();
  ExactBatchResult from_file = EvaluateShared(list, **file_store);
  ExactBatchResult from_memory = EvaluateShared(list, *memory_store);
  ASSERT_EQ(from_file.results.size(), from_memory.results.size());
  for (size_t i = 0; i < from_file.results.size(); ++i) {
    EXPECT_NEAR(from_file.results[i], from_memory.results[i], 1e-9);
  }
  EXPECT_EQ(from_file.retrievals, from_memory.retrievals);
}

}  // namespace
}  // namespace wavebatch
