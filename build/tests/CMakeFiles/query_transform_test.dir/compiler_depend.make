# Empty compiler generated dependencies file for query_transform_test.
# This may be replaced when dependencies are built.
