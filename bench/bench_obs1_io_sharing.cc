// Observation 1 (Section 6): "I/O sharing is considerable."
//
// Paper numbers (JPL dataset, 15.7M records, 512-range batch):
//   per-query ProPolyne:      923,076 wavelet retrievals (~1800/query)
//   Batch-Biggest-B (shared):  57,456 wavelet retrievals (~112/query)
//   prefix-sums, per query:      8,192 retrievals
//   prefix-sums, shared:           512 retrievals
//
// This harness reports the same table on the synthetic temperature cube:
// naive vs shared retrieval counts for the wavelet view, the prefix-sum
// view, and the no-precomputation (identity) baseline, plus the sharing
// factor and workspace (master-list) size. Absolute counts depend on the
// domain scale; the *structure* — shared ≪ naive ≪ scanning the relation —
// is the reproduced result.

#include "bench_common.h"
#include "strategy/prefix_sum_strategy.h"
#include "util/table.h"

namespace wavebatch::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              "bench_obs1_io_sharing: reproduce Observation 1\n" +
                  kCommonFlagsHelp);
  TemperatureDatasetOptions options = DataOptionsFromFlags(flags);
  const std::vector<size_t> parts = PartsFromFlags(flags);
  size_t num_ranges = 1;
  for (size_t p : parts) num_ranges *= p;

  Stopwatch total;
  std::cout << "building experiment (domain "
            << TemperatureSchema(options).ToString() << ", "
            << options.num_records << " records, " << num_ranges
            << " ranges)..." << std::endl;
  Experiment exp(options, parts, /*workload_seed=*/1234, WaveletKind::kDb4);
  const size_t s = exp.workload.batch.size();

  Table table({"view", "method", "retrievals", "per query", "notes"});

  // Wavelet view (the paper's primary rows).
  table.AddRow({"wavelet-db4", "per-query (naive)",
                std::to_string(exp.list.TotalQueryCoefficients()),
                FormatDouble(static_cast<double>(
                                 exp.list.TotalQueryCoefficients()) /
                                 s,
                             4),
                "s independent ProPolyne instances"});
  table.AddRow({"wavelet-db4", "Batch-Biggest-B (shared)",
                std::to_string(exp.list.size()),
                FormatDouble(static_cast<double>(exp.list.size()) / s, 4),
                "master-list size"});
  const double sharing =
      static_cast<double>(exp.list.TotalQueryCoefficients()) /
      static_cast<double>(exp.list.size());
  table.AddRow({"wavelet-db4", "sharing factor", FormatDouble(sharing, 4),
                "", "naive / shared"});
  table.AddRow({"wavelet-db4", "max sharing",
                std::to_string(exp.list.MaxSharing()), "",
                "queries on one coefficient"});

  // Prefix-sum view.
  PrefixSumStrategy prefix(exp.cube.schema(),
                           PrefixSumStrategy::CollectMonomials(
                               exp.workload.batch));
  Result<MasterList> prefix_list =
      MasterList::Build(exp.workload.batch, prefix);
  if (!prefix_list.ok()) {
    std::cerr << prefix_list.status() << std::endl;
    return 1;
  }
  table.AddRow({"prefix-sum", "per-query (naive)",
                std::to_string(prefix_list->TotalQueryCoefficients()),
                FormatDouble(static_cast<double>(
                                 prefix_list->TotalQueryCoefficients()) /
                                 s,
                             4),
                "<= 2^d corners per range"});
  table.AddRow({"prefix-sum", "Batch-Biggest-B (shared)",
                std::to_string(prefix_list->size()),
                FormatDouble(static_cast<double>(prefix_list->size()) / s, 4),
                "grid corners dedup"});

  // No precomputation: one retrieval per cell of each range (computed
  // analytically — the batch partitions the domain, so the naive count is
  // exactly the domain size; materializing that master list would be
  // pointless work).
  uint64_t identity_cost = 0;
  for (const RangeSumQuery& q : exp.workload.batch.queries()) {
    identity_cost += q.range().Volume();
  }
  table.AddRow({"identity", "per-query (naive)",
                std::to_string(identity_cost),
                FormatDouble(static_cast<double>(identity_cost) / s, 4),
                "= Σ range volumes"});
  table.AddRow({"relation scan", "baseline",
                std::to_string(options.num_records), "",
                "records scanned by a table scan"});

  std::cout << "\nObservation 1: I/O sharing across the batch\n";
  table.Print(std::cout);
  std::cout << "elapsed: " << FormatDouble(total.ElapsedSeconds(), 3)
            << "s\n";

  const std::string csv = flags.Str("csv", "");
  if (!csv.empty() && !table.WriteCsv(csv)) {
    std::cerr << "failed to write " << csv << std::endl;
    return 1;
  }

  // Machine-readable companion: one record per retrieval-count row. These
  // are I/O counts, not timings, so median_ns carries the whole-experiment
  // wall time (same for every row).
  const double elapsed_ns = total.ElapsedSeconds() * 1e9;
  const std::map<std::string, std::string> common = {
      {"queries", std::to_string(s)},
      {"records", std::to_string(options.num_records)}};
  BenchJson json;
  auto add = [&](const std::string& view, const std::string& method,
                 uint64_t retrievals) {
    std::map<std::string, std::string> params = common;
    params["view"] = view;
    params["method"] = method;
    json.Add("obs1_io_sharing", params, elapsed_ns, retrievals);
  };
  add("wavelet-db4", "per_query_naive", exp.list.TotalQueryCoefficients());
  add("wavelet-db4", "batch_biggest_b_shared", exp.list.size());
  add("prefix-sum", "per_query_naive", prefix_list->TotalQueryCoefficients());
  add("prefix-sum", "batch_biggest_b_shared", prefix_list->size());
  add("identity", "per_query_naive", identity_cost);
  add("relation-scan", "baseline", options.num_records);
  if (!json.Write(flags.Str("json", "BENCH_obs1_io_sharing.json"))) {
    std::cerr << "failed to write json report" << std::endl;
    return 1;
  }
  if (!WriteMetricsOut(flags)) return 1;
  return 0;
}

}  // namespace
}  // namespace wavebatch::bench

int main(int argc, char** argv) { return wavebatch::bench::Main(argc, argv); }
