#ifndef WAVEBATCH_STORAGE_BLOCK_STORE_H_
#define WAVEBATCH_STORAGE_BLOCK_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "storage/coefficient_store.h"
#include "storage/compressed_block.h"

namespace wavebatch {

/// Configuration for a BlockStore (see class comment).
struct BlockStoreOptions {
  /// Coefficients per simulated disk block (power of two recommended).
  uint64_t block_size = 64;
  /// LRU buffer capacity in blocks (0 = unbuffered: every fetch from a new
  /// block is a read).
  uint64_t cache_blocks = 0;
  /// Compressed-page mode: at construction the inner store's nonzero
  /// coefficients are sealed into one CompressedPage per block (delta +
  /// bit-packed keys; optionally quantized values per `page`), and every
  /// read is served from the pages — the inner backend is never touched
  /// again. The store becomes read-only (Add aborts) and is its own epoch
  /// snapshot. Block reads charge the encoded page size to
  /// IoStats::bytes_fetched instead of the full-width block.
  bool compress_pages = false;
  /// Value codec for compressed pages. With `page.quantize` set the store
  /// is lossy: reads return decoded values, PeekErrorBound(key) reports the
  /// owning page's exact max decode error, and Lossy() is true so the
  /// engine widens Theorem-1 bounds accordingly.
  CompressedPageOptions page;
};

/// Block-granularity I/O simulation on top of any coefficient store — the
/// extension the paper's conclusion calls for ("generalize importance
/// functions to disk blocks rather than individual tuples"). Coefficients
/// with the same `key / block_size` live on one simulated disk block; a
/// fetch whose block is not in the LRU buffer costs one block read of
/// block_size × sizeof(double) bytes — or, in compressed-page mode, of the
/// block's encoded page size.
///
/// Per-call IoStats sinks receive the coefficient retrievals, the
/// block-level counters (block_reads / block_hits), and the simulated bytes
/// (bytes_fetched), which bench_ablation_blocks sweeps against block size
/// and key layout and tools/bench_compare gates. The LRU buffer is shared
/// store state (like a real buffer pool) guarded by a mutex, so concurrent
/// readers are safe; with multiple concurrent sessions the hit/miss split
/// of an individual session depends on interleaving — run with
/// cache_blocks = 0 (unbuffered) when per-session block counts must be
/// deterministic.
///
/// Compressed-page mode (BlockStoreOptions::compress_pages) seals the inner
/// store's contents at construction: pages serve every read, keys absent
/// from a page decode to an exact 0.0, and block_reads/block_hits count
/// exactly as in plain mode (the block model is unchanged; only the bytes
/// per read shrink). The logical *scan* surface — SumAbs, NumNonZero,
/// ForEachNonZero — still reflects the exact inner coefficients: SumAbs is
/// Theorem 1's K over the true Δ̂, and quantization error is accounted
/// separately through PeekErrorBound, never double-counted into K.
///
/// PinVersion() forwards: over a versioned inner store it returns a new
/// BlockStore wrapping the pinned inner snapshot, *sharing this store's
/// buffer pool* — a real buffer pool caches blocks of the medium, not of
/// one epoch view, so reads through any pinned view warm the same LRU.
/// Pinned views are read-only: Add() on one aborts. A compressed store is
/// its own snapshot (contents sealed at construction) and returns null.
class BlockStore : public CoefficientStore {
 public:
  BlockStore(std::unique_ptr<CoefficientStore> inner,
             BlockStoreOptions options);

  /// Legacy plain-mode constructor.
  BlockStore(std::unique_ptr<CoefficientStore> inner, uint64_t block_size,
             uint64_t cache_blocks);

  double Peek(uint64_t key) const override;
  void Add(uint64_t key, double delta) override;
  uint64_t NumNonZero() const override;
  double SumAbs() const override;
  void ForEachNonZero(
      const std::function<void(uint64_t, double)>& fn) const override;
  std::string name() const override;

  /// Forwards the inner store's partition so routing hints survive the
  /// block-granularity wrapper (a sharded plane is often block-simulated
  /// per shard or wrapped whole).
  const KeyRouter* router() const override { return inner_->router(); }

  /// Compressed mode: the owning page's exact max decode error when `key`
  /// is stored (absent keys are exact zeros). Plain mode: forwards inner.
  double PeekErrorBound(uint64_t key) const override;
  bool Lossy() const override;

  /// Pins the inner store's current epoch and returns a BlockStore over
  /// that snapshot, sharing this store's LRU buffer pool (see class
  /// comment). Null when the inner store is its own snapshot — then this
  /// wrapper is stable too and callers use it directly.
  std::shared_ptr<const CoefficientStore> PinVersion() const override;

  uint64_t block_size() const { return block_size_; }
  bool compressed() const { return compress_; }
  /// Total encoded bytes across all pages (0 in plain mode) — the numerator
  /// of the compression-ratio tables in EXPERIMENTS.md.
  uint64_t total_page_bytes() const;
  /// Max page decode error across all pages (0 unless quantized).
  double max_quantization_error() const { return max_quantization_error_; }

 protected:
  /// Reads through the inner backend first and touches the LRU only on
  /// success, so a failed fetch neither warms the buffer nor counts a
  /// block read — errors (e.g. from a file-backed inner store) propagate.
  /// Compressed mode serves the page directly and cannot fail.
  Result<double> DoFetch(uint64_t key, IoStats* io) const override;

  /// Groups the batch by block id and touches each distinct block exactly
  /// once (in first-appearance order): one batched call reads a block at
  /// most once no matter how many of its coefficients the batch wants —
  /// the whole point of block-granularity batching. Values are identical
  /// to a scalar Fetch loop; block_reads can only be lower.
  Status DoFetchBatch(std::span<const uint64_t> keys, std::span<double> out,
                      IoStats* io) const override;

  /// Same distinct-block-once batching, with the routing hints forwarded to
  /// the inner backend (the block model is orthogonal to routing; the hints
  /// are moot in compressed mode, which never reaches the inner store).
  Status DoFetchBatchRouted(std::span<const uint64_t> keys,
                            std::span<const uint32_t> shards,
                            std::span<double> out, IoStats* io) const override;

 private:
  /// The simulated buffer pool, shared between a store and every pinned
  /// view it hands out (one medium, one pool). The LRU is logically cache
  /// state, not data: reads mutate it under `mu` so the counted read path
  /// stays const and thread-safe.
  struct BufferPool {
    mutable std::mutex mu;
    // LRU: most recent at front.
    std::list<uint64_t> lru;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> in_cache;
  };

  /// Pinned-view constructor: wraps the pinned inner snapshot and shares
  /// the parent's buffer pool and metrics. Read-only (mutable_inner_ stays
  /// null).
  BlockStore(std::shared_ptr<const CoefficientStore> pinned,
             const BlockStore& parent);

  /// Shared constructor tail: telemetry binding.
  void BindMetrics();

  /// Compressed mode: encode one page per block from the sealed inner view.
  void BuildPages();

  /// Records the block access; returns true on cache hit. Caller must hold
  /// pool_->mu.
  bool TouchLocked(uint64_t block) const;

  /// Simulated bytes one read of `block` transfers.
  uint64_t BytesOfBlock(uint64_t block) const;

  /// Post-success block accounting shared by both batch hooks: touches each
  /// distinct block of `keys` once, in first-appearance order.
  void TouchBatch(std::span<const uint64_t> keys, IoStats* io) const;

  /// Compressed-mode value lookup (uncounted).
  double PageValue(uint64_t key) const;

  std::unique_ptr<CoefficientStore> owned_;
  /// Keeps a pinned inner snapshot alive for a pinned view.
  std::shared_ptr<const CoefficientStore> pinned_inner_;
  /// The store every read path delegates to; never null.
  const CoefficientStore* inner_;
  /// Non-const alias of inner_ for Add(); null for a pinned (read-only)
  /// view and in compressed mode (contents sealed).
  CoefficientStore* mutable_inner_ = nullptr;

  uint64_t block_size_;
  uint64_t cache_blocks_;
  bool compress_ = false;
  CompressedPageOptions page_options_;
  /// Compressed mode only: block id -> encoded page. Immutable once built,
  /// so the counted read path shares it lock-free.
  std::unordered_map<uint64_t, CompressedPage> pages_;
  double max_quantization_error_ = 0.0;
  std::shared_ptr<BufferPool> pool_;

  /// Process-wide twins of the per-session block counters, labeled by store
  /// name; bound in the constructor body (name() is virtual). Pinned views
  /// share the parent's handles — one pool, one metric stream.
  telemetry::Counter* block_reads_metric_;
  telemetry::Counter* block_hits_metric_;
  /// Cache-pressure gauge pair: blocks currently buffered vs. the buffer's
  /// capacity. Operators (and the hot-tier rebalancer) read the ratio to
  /// see how full the simulated buffer pool runs.
  telemetry::Gauge* lru_occupancy_gauge_;
  telemetry::Gauge* lru_capacity_gauge_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STORAGE_BLOCK_STORE_H_
