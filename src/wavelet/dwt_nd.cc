#include "wavelet/dwt_nd.h"

#include <vector>

namespace wavebatch {

namespace {

// Applies `transform` to every axis-aligned line of `cube` along dimension
// `dim`. The cube is viewed as [pre][n][post] with `n` the dimension's size.
template <typename Fn>
void ForEachLine(DenseCube& cube, size_t dim, Fn&& transform) {
  const Schema& schema = cube.schema();
  const size_t n = schema.dim(dim).size;
  uint64_t pre = 1, post = 1;
  for (size_t i = 0; i < dim; ++i) pre *= schema.dim(i).size;
  for (size_t i = dim + 1; i < schema.num_dims(); ++i) {
    post *= schema.dim(i).size;
  }
  std::span<double> values = cube.values();
  std::vector<double> line(n);
  for (uint64_t p = 0; p < pre; ++p) {
    for (uint64_t q = 0; q < post; ++q) {
      const uint64_t base = p * n * post + q;
      for (size_t j = 0; j < n; ++j) line[j] = values[base + j * post];
      transform(std::span<double>(line));
      for (size_t j = 0; j < n; ++j) values[base + j * post] = line[j];
    }
  }
}

}  // namespace

void ForwardDwtNd(DenseCube& cube, const WaveletFilter& filter) {
  for (size_t dim = 0; dim < cube.schema().num_dims(); ++dim) {
    ForEachLine(cube, dim, [&filter](std::span<double> line) {
      ForwardDwt1D(line, filter);
    });
  }
}

void InverseDwtNd(DenseCube& cube, const WaveletFilter& filter) {
  for (size_t dim = 0; dim < cube.schema().num_dims(); ++dim) {
    ForEachLine(cube, dim, [&filter](std::span<double> line) {
      InverseDwt1D(line, filter);
    });
  }
}

}  // namespace wavebatch
