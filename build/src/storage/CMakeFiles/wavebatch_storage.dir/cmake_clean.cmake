file(REMOVE_RECURSE
  "CMakeFiles/wavebatch_storage.dir/block_store.cc.o"
  "CMakeFiles/wavebatch_storage.dir/block_store.cc.o.d"
  "CMakeFiles/wavebatch_storage.dir/dense_store.cc.o"
  "CMakeFiles/wavebatch_storage.dir/dense_store.cc.o.d"
  "CMakeFiles/wavebatch_storage.dir/file_store.cc.o"
  "CMakeFiles/wavebatch_storage.dir/file_store.cc.o.d"
  "CMakeFiles/wavebatch_storage.dir/memory_store.cc.o"
  "CMakeFiles/wavebatch_storage.dir/memory_store.cc.o.d"
  "libwavebatch_storage.a"
  "libwavebatch_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavebatch_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
