#include "storage/block_store.h"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/check.h"

namespace wavebatch {

BlockStore::BlockStore(std::unique_ptr<CoefficientStore> inner,
                       BlockStoreOptions options)
    : owned_(std::move(inner)),
      inner_(owned_.get()),
      mutable_inner_(owned_.get()),
      block_size_(options.block_size),
      cache_blocks_(options.cache_blocks),
      compress_(options.compress_pages),
      page_options_(options.page),
      pool_(std::make_shared<BufferPool>()) {
  WB_CHECK(inner_ != nullptr);
  WB_CHECK_GT(block_size_, 0u);
  if (compress_) {
    // Seal the contents. Over a versioned inner store, pin the current epoch
    // so later ingests cannot drift away from the encoded pages; either way
    // the store becomes read-only from here on.
    mutable_inner_ = nullptr;
    pinned_inner_ = owned_->PinVersion();
    if (pinned_inner_ != nullptr) inner_ = pinned_inner_.get();
    BuildPages();
  }
  BindMetrics();
}

BlockStore::BlockStore(std::unique_ptr<CoefficientStore> inner,
                       uint64_t block_size, uint64_t cache_blocks)
    : BlockStore(std::move(inner),
                 BlockStoreOptions{.block_size = block_size,
                                   .cache_blocks = cache_blocks}) {}

BlockStore::BlockStore(std::shared_ptr<const CoefficientStore> pinned,
                       const BlockStore& parent)
    : pinned_inner_(std::move(pinned)),
      inner_(pinned_inner_.get()),
      block_size_(parent.block_size_),
      cache_blocks_(parent.cache_blocks_),
      pool_(parent.pool_),
      block_reads_metric_(parent.block_reads_metric_),
      block_hits_metric_(parent.block_hits_metric_),
      lru_occupancy_gauge_(parent.lru_occupancy_gauge_),
      lru_capacity_gauge_(parent.lru_capacity_gauge_) {
  // Only plain-mode stores hand out pinned views (a compressed store is its
  // own snapshot), so pages never need copying here.
  WB_CHECK(inner_ != nullptr);
  WB_CHECK(!parent.compress_);
}

void BlockStore::BindMetrics() {
  auto& registry = telemetry::MetricsRegistry::Default();
  block_reads_metric_ = registry.GetCounter(
      "wavebatch_block_store_block_reads_total", {{"store", name()}},
      "Simulated disk-block reads (LRU misses).");
  block_hits_metric_ = registry.GetCounter(
      "wavebatch_block_store_block_hits_total", {{"store", name()}},
      "Block-cache hits in the LRU buffer.");
  lru_occupancy_gauge_ = registry.GetGauge(
      "wavebatch_block_store_lru_occupancy_blocks", {{"store", name()}},
      "Blocks currently resident in the LRU buffer.");
  lru_capacity_gauge_ = registry.GetGauge(
      "wavebatch_block_store_lru_capacity_blocks", {{"store", name()}},
      "LRU buffer capacity in blocks (0 = unbuffered).");
  lru_capacity_gauge_->Set(static_cast<double>(cache_blocks_));
}

void BlockStore::BuildPages() {
  std::vector<std::pair<uint64_t, double>> entries;
  entries.reserve(inner_->NumNonZero());
  inner_->ForEachNonZero([&entries](uint64_t key, double value) {
    entries.emplace_back(key, value);
  });
  std::sort(entries.begin(), entries.end());
  std::vector<uint64_t> keys;
  std::vector<double> values;
  size_t i = 0;
  while (i < entries.size()) {
    const uint64_t block = entries[i].first / block_size_;
    keys.clear();
    values.clear();
    while (i < entries.size() && entries[i].first / block_size_ == block) {
      keys.push_back(entries[i].first);
      values.push_back(entries[i].second);
      ++i;
    }
    CompressedPage page = CompressedPage::Encode(keys, values, page_options_);
    max_quantization_error_ =
        std::max(max_quantization_error_, page.max_abs_error());
    pages_.emplace(block, std::move(page));
  }
}

std::shared_ptr<const CoefficientStore> BlockStore::PinVersion() const {
  // A compressed store sealed its contents at construction: it is its own
  // snapshot, like the base-class default.
  if (compress_) return nullptr;
  std::shared_ptr<const CoefficientStore> pinned = inner_->PinVersion();
  if (pinned == nullptr) return nullptr;  // inner is its own snapshot
  return std::shared_ptr<const CoefficientStore>(
      new BlockStore(std::move(pinned), *this));
}

double BlockStore::PageValue(uint64_t key) const {
  auto it = pages_.find(key / block_size_);
  if (it == pages_.end()) return 0.0;
  return it->second.ValueOr(key, 0.0);
}

double BlockStore::Peek(uint64_t key) const {
  // Compressed reads always see the decoded page value — Peek and Fetch must
  // agree, or uncounted plumbing (bounds, tests) would diverge from what
  // sessions actually retrieve.
  if (compress_) return PageValue(key);
  return inner_->Peek(key);
}

double BlockStore::PeekErrorBound(uint64_t key) const {
  if (!compress_) return inner_->PeekErrorBound(key);
  auto it = pages_.find(key / block_size_);
  if (it == pages_.end()) return 0.0;
  return it->second.Contains(key) ? it->second.max_abs_error() : 0.0;
}

bool BlockStore::Lossy() const {
  if (!compress_) return inner_->Lossy();
  return max_quantization_error_ > 0.0;
}

uint64_t BlockStore::total_page_bytes() const {
  uint64_t bytes = 0;
  for (const auto& [block, page] : pages_) bytes += page.size_bytes();
  return bytes;
}

uint64_t BlockStore::BytesOfBlock(uint64_t block) const {
  if (!compress_) return block_size_ * sizeof(double);
  auto it = pages_.find(block);
  // A block with no page stores nothing: reading it transfers nothing.
  return it == pages_.end() ? 0 : it->second.size_bytes();
}

bool BlockStore::TouchLocked(uint64_t block) const {
  auto it = pool_->in_cache.find(block);
  if (it != pool_->in_cache.end()) {
    pool_->lru.splice(pool_->lru.begin(), pool_->lru, it->second);
    return true;
  }
  if (cache_blocks_ > 0) {
    pool_->lru.push_front(block);
    pool_->in_cache[block] = pool_->lru.begin();
    if (pool_->lru.size() > cache_blocks_) {
      pool_->in_cache.erase(pool_->lru.back());
      pool_->lru.pop_back();
    }
  }
  return false;
}

Result<double> BlockStore::DoFetch(uint64_t key, IoStats* io) const {
  double result;
  if (compress_) {
    result = PageValue(key);
  } else {
    Result<double> value = DelegateFetch(*inner_, key, io);
    if (!value.ok()) return value;
    result = value.value();
  }
  {
    std::lock_guard<std::mutex> lock(pool_->mu);
    const uint64_t block = key / block_size_;
    if (TouchLocked(block)) {
      if (io != nullptr) ++io->block_hits;
      block_hits_metric_->Add();
    } else {
      if (io != nullptr) {
        ++io->block_reads;
        io->bytes_fetched += BytesOfBlock(block);
      }
      block_reads_metric_->Add();
    }
    lru_occupancy_gauge_->Set(static_cast<double>(pool_->lru.size()));
  }
  return result;
}

void BlockStore::TouchBatch(std::span<const uint64_t> keys,
                            IoStats* io) const {
  // Touch each distinct block once, in first-appearance order (so the LRU
  // state after the call matches a scalar loop's up to refresh order). One
  // lock acquisition per batch, not per key.
  std::unordered_set<uint64_t> seen;
  seen.reserve(keys.size());
  std::lock_guard<std::mutex> lock(pool_->mu);
  for (uint64_t key : keys) {
    const uint64_t block = key / block_size_;
    if (!seen.insert(block).second) continue;
    if (TouchLocked(block)) {
      if (io != nullptr) ++io->block_hits;
      block_hits_metric_->Add();
    } else {
      if (io != nullptr) {
        ++io->block_reads;
        io->bytes_fetched += BytesOfBlock(block);
      }
      block_reads_metric_->Add();
    }
  }
  lru_occupancy_gauge_->Set(static_cast<double>(pool_->lru.size()));
}

Status BlockStore::DoFetchBatch(std::span<const uint64_t> keys,
                                std::span<double> out, IoStats* io) const {
  if (compress_) {
    for (size_t i = 0; i < keys.size(); ++i) out[i] = PageValue(keys[i]);
    TouchBatch(keys, io);
    return Status::OK();
  }
  // Read through the inner backend first: a failed batch must leave both
  // counters and the LRU untouched (all-or-nothing, like the scalar path).
  Status status = DelegateFetchBatch(*inner_, keys, out, io);
  if (!status.ok()) return status;
  TouchBatch(keys, io);
  return Status::OK();
}

Status BlockStore::DoFetchBatchRouted(std::span<const uint64_t> keys,
                                      std::span<const uint32_t> shards,
                                      std::span<double> out,
                                      IoStats* io) const {
  if (compress_) {
    // The pages are the backend here — routing hints have nowhere to go.
    return DoFetchBatch(keys, out, io);
  }
  Status status = DelegateFetchBatchRouted(*inner_, keys, shards, out, io);
  if (!status.ok()) return status;
  TouchBatch(keys, io);
  return Status::OK();
}

void BlockStore::Add(uint64_t key, double delta) {
  WB_CHECK(mutable_inner_ != nullptr)
      << "Add() on a read-only BlockStore (pinned epoch view, or compressed "
         "pages sealed at construction)";
  mutable_inner_->Add(key, delta);
}

uint64_t BlockStore::NumNonZero() const { return inner_->NumNonZero(); }

double BlockStore::SumAbs() const { return inner_->SumAbs(); }

void BlockStore::ForEachNonZero(
    const std::function<void(uint64_t, double)>& fn) const {
  inner_->ForEachNonZero(fn);
}

std::string BlockStore::name() const {
  return (compress_ ? "blocked-compressed(" : "blocked(") + inner_->name() +
         ")";
}

}  // namespace wavebatch
