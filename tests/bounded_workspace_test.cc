#include "core/bounded_workspace.h"

#include "core/exact.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "strategy/wavelet_strategy.h"
#include "util/random.h"

namespace wavebatch {
namespace {

struct WorkspaceFixture {
  Schema schema = Schema::Uniform(2, 16);
  Relation rel;
  QueryBatch batch;
  WaveletStrategy strategy{schema, WaveletKind::kHaar};
  std::unique_ptr<CoefficientStore> store;
  MasterList list;
  std::vector<double> expected;

  WorkspaceFixture() : rel(MakeUniformRelation(schema, 400, 3)),
                       batch(schema) {
    Rng rng(5);
    for (int i = 0; i < 16; ++i) {
      uint32_t lo0 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi0 = lo0 + static_cast<uint32_t>(rng.UniformInt(16 - lo0));
      uint32_t lo1 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi1 = lo1 + static_cast<uint32_t>(rng.UniformInt(16 - lo1));
      batch.Add(RangeSumQuery::Count(
          Range::Create(schema, {{lo0, hi0}, {lo1, hi1}}).value()));
    }
    store = strategy.BuildStore(rel.FrequencyDistribution());
    list = MasterList::Build(batch, strategy).value();
    expected = batch.BruteForce(rel);
  }
};

TEST(BoundedWorkspaceTest, ExactAtEveryBudget) {
  WorkspaceFixture f;
  for (uint64_t budget : {uint64_t{1}, uint64_t{50}, uint64_t{200},
                          uint64_t{100000}}) {
    BoundedWorkspaceResult res = EvaluateWithBoundedWorkspace(
        f.batch, f.strategy, *f.store, budget);
    ASSERT_EQ(res.results.size(), f.expected.size());
    for (size_t i = 0; i < f.expected.size(); ++i) {
      EXPECT_NEAR(res.results[i], f.expected[i],
                  1e-6 * (1.0 + std::abs(f.expected[i])))
          << "budget " << budget;
    }
  }
}

TEST(BoundedWorkspaceTest, UnboundedBudgetMatchesSharedCost) {
  WorkspaceFixture f;
  BoundedWorkspaceResult res = EvaluateWithBoundedWorkspace(
      f.batch, f.strategy, *f.store, uint64_t{1} << 40);
  EXPECT_EQ(res.num_groups, 1u);
  EXPECT_EQ(res.retrievals, f.list.size());
  EXPECT_EQ(res.peak_workspace, f.list.TotalQueryCoefficients());
}

TEST(BoundedWorkspaceTest, MinimalBudgetMatchesNaiveCost) {
  WorkspaceFixture f;
  // Budget 1: every query exceeds it, so each gets its own group.
  BoundedWorkspaceResult res =
      EvaluateWithBoundedWorkspace(f.batch, f.strategy, *f.store, 1);
  EXPECT_EQ(res.num_groups, f.batch.size());
  EXPECT_EQ(res.retrievals, f.list.TotalQueryCoefficients());
}

TEST(BoundedWorkspaceTest, IntermediateBudgetsInterpolate) {
  WorkspaceFixture f;
  const uint64_t mid_budget = f.list.TotalQueryCoefficients() / 4;
  BoundedWorkspaceResult res = EvaluateWithBoundedWorkspace(
      f.batch, f.strategy, *f.store, mid_budget);
  EXPECT_GT(res.num_groups, 1u);
  EXPECT_LT(res.num_groups, f.batch.size());
  EXPECT_GE(res.retrievals, f.list.size());
  EXPECT_LE(res.retrievals, f.list.TotalQueryCoefficients());
  EXPECT_LE(res.peak_workspace, mid_budget);
}

TEST(BoundedWorkspaceTest, PeakWorkspaceRespectsBudgetWhenQueriesFit) {
  WorkspaceFixture f;
  uint64_t max_single = 0;
  for (const auto& nnz : f.list.PerQueryCoefficients()) {
    max_single = std::max(max_single, nnz);
  }
  const uint64_t budget = max_single * 2;
  BoundedWorkspaceResult res = EvaluateWithBoundedWorkspace(
      f.batch, f.strategy, *f.store, budget);
  EXPECT_LE(res.peak_workspace, budget);
}

}  // namespace
}  // namespace wavebatch
