#ifndef WAVEBATCH_STORAGE_BLOCK_STORE_H_
#define WAVEBATCH_STORAGE_BLOCK_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "storage/coefficient_store.h"

namespace wavebatch {

/// Block-granularity I/O simulation on top of any coefficient store — the
/// extension the paper's conclusion calls for ("generalize importance
/// functions to disk blocks rather than individual tuples"). Coefficients
/// with the same `key / block_size` live on one simulated disk block; a
/// fetch whose block is not in the LRU buffer costs one block read.
///
/// Per-call IoStats sinks receive both the coefficient retrievals and the
/// block-level counters (block_reads / block_hits), which
/// bench_ablation_blocks sweeps against block size and key layout. The LRU
/// buffer is shared store state (like a real buffer pool) guarded by a
/// mutex, so concurrent readers are safe; with multiple concurrent sessions
/// the hit/miss split of an individual session depends on interleaving —
/// run with cache_blocks = 0 (unbuffered) when per-session block counts
/// must be deterministic.
///
/// PinVersion() forwards: over a versioned inner store it returns a new
/// BlockStore wrapping the pinned inner snapshot, *sharing this store's
/// buffer pool* — a real buffer pool caches blocks of the medium, not of
/// one epoch view, so reads through any pinned view warm the same LRU.
/// Pinned views are read-only: Add() on one aborts.
class BlockStore : public CoefficientStore {
 public:
  /// Wraps `inner`. `block_size` is coefficients per block (power of two
  /// recommended); `cache_blocks` is the LRU buffer capacity in blocks
  /// (0 = unbuffered: every fetch from a new block is a read).
  BlockStore(std::unique_ptr<CoefficientStore> inner, uint64_t block_size,
             uint64_t cache_blocks);

  double Peek(uint64_t key) const override;
  void Add(uint64_t key, double delta) override;
  uint64_t NumNonZero() const override;
  double SumAbs() const override;
  void ForEachNonZero(
      const std::function<void(uint64_t, double)>& fn) const override;
  std::string name() const override;

  /// Forwards the inner store's partition so routing hints survive the
  /// block-granularity wrapper (a sharded plane is often block-simulated
  /// per shard or wrapped whole).
  const KeyRouter* router() const override { return inner_->router(); }

  /// Pins the inner store's current epoch and returns a BlockStore over
  /// that snapshot, sharing this store's LRU buffer pool (see class
  /// comment). Null when the inner store is its own snapshot — then this
  /// wrapper is stable too and callers use it directly.
  std::shared_ptr<const CoefficientStore> PinVersion() const override;

  uint64_t block_size() const { return block_size_; }

 protected:
  /// Reads through the inner backend first and touches the LRU only on
  /// success, so a failed fetch neither warms the buffer nor counts a
  /// block read — errors (e.g. from a file-backed inner store) propagate.
  Result<double> DoFetch(uint64_t key, IoStats* io) const override;

  /// Groups the batch by block id and touches each distinct block exactly
  /// once (in first-appearance order): one batched call reads a block at
  /// most once no matter how many of its coefficients the batch wants —
  /// the whole point of block-granularity batching. Values are identical
  /// to a scalar Fetch loop; block_reads can only be lower.
  Status DoFetchBatch(std::span<const uint64_t> keys, std::span<double> out,
                      IoStats* io) const override;

  /// Same distinct-block-once batching, with the routing hints forwarded to
  /// the inner backend (the block model is orthogonal to routing).
  Status DoFetchBatchRouted(std::span<const uint64_t> keys,
                            std::span<const uint32_t> shards,
                            std::span<double> out, IoStats* io) const override;

 private:
  /// The simulated buffer pool, shared between a store and every pinned
  /// view it hands out (one medium, one pool). The LRU is logically cache
  /// state, not data: reads mutate it under `mu` so the counted read path
  /// stays const and thread-safe.
  struct BufferPool {
    mutable std::mutex mu;
    // LRU: most recent at front.
    std::list<uint64_t> lru;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> in_cache;
  };

  /// Pinned-view constructor: wraps the pinned inner snapshot and shares
  /// the parent's buffer pool and metrics. Read-only (mutable_inner_ stays
  /// null).
  BlockStore(std::shared_ptr<const CoefficientStore> pinned,
             const BlockStore& parent);

  /// Records the block access; returns true on cache hit. Caller must hold
  /// pool_->mu.
  bool TouchLocked(uint64_t block) const;

  /// Post-success block accounting shared by both batch hooks: touches each
  /// distinct block of `keys` once, in first-appearance order.
  void TouchBatch(std::span<const uint64_t> keys, IoStats* io) const;

  std::unique_ptr<CoefficientStore> owned_;
  /// Keeps a pinned inner snapshot alive for a pinned view.
  std::shared_ptr<const CoefficientStore> pinned_inner_;
  /// The store every read path delegates to; never null.
  const CoefficientStore* inner_;
  /// Non-const alias of inner_ for Add(); null for a pinned (read-only)
  /// view.
  CoefficientStore* mutable_inner_ = nullptr;

  uint64_t block_size_;
  uint64_t cache_blocks_;
  std::shared_ptr<BufferPool> pool_;

  /// Process-wide twins of the per-session block counters, labeled by store
  /// name; bound in the constructor body (name() is virtual). Pinned views
  /// share the parent's handles — one pool, one metric stream.
  telemetry::Counter* block_reads_metric_;
  telemetry::Counter* block_hits_metric_;
  /// Cache-pressure gauge pair: blocks currently buffered vs. the buffer's
  /// capacity. Operators (and the hot-tier rebalancer) read the ratio to
  /// see how full the simulated buffer pool runs.
  telemetry::Gauge* lru_occupancy_gauge_;
  telemetry::Gauge* lru_capacity_gauge_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STORAGE_BLOCK_STORE_H_
