#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "telemetry/metrics.h"
#include "util/check.h"

namespace wavebatch {

namespace {

/// Aggregated over every pool in the process (normally only
/// ThreadPool::Shared()).
telemetry::Gauge& QueueDepth() {
  static telemetry::Gauge* gauge =
      telemetry::MetricsRegistry::Default().GetGauge(
          "wavebatch_thread_pool_queue_depth", {},
          "Tasks submitted but not yet picked up by a worker.");
  return *gauge;
}

telemetry::Counter& TasksExecuted() {
  static telemetry::Counter* counter =
      telemetry::MetricsRegistry::Default().GetCounter(
          "wavebatch_thread_pool_tasks_total", {},
          "Tasks dequeued and executed by pool workers.");
  return *counter;
}

telemetry::Counter& TaskExceptions() {
  static telemetry::Counter* counter =
      telemetry::MetricsRegistry::Default().GetCounter(
          "wavebatch_thread_pool_task_exceptions_total", {},
          "Tasks that terminated by throwing (caught by the worker).");
  return *counter;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  WB_CHECK(task != nullptr);
  Task queued;
  queued.fn = std::move(task);
  if (telemetry::Enabled()) {
    queued.ctx = telemetry::CurrentTraceContext();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    WB_CHECK(!stopping_) << "Submit() on a stopping ThreadPool";
    queue_.push_back(std::move(queued));
  }
  QueueDepth().Add(1.0);
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // The gauge/counter accounting pairs with Submit()'s increment and must
    // balance exactly once per dequeued task, whether the task returns or
    // throws — otherwise the queue-depth gauge drifts and anything reading
    // it for load decisions (server backpressure) sees phantom load.
    QueueDepth().Add(-1.0);
    TasksExecuted().Add();
    // A throwing task must not take the worker thread down with it (an
    // uncaught exception on a thread is std::terminate): the pool is shared
    // process-wide infrastructure, and one bad task would silently shrink
    // it for every later caller. The exception is counted and dropped;
    // tasks that need their error observed return it through their own
    // channel (ParallelFor rethrows on the calling thread).
    try {
      if (task.ctx.active()) {
        // Run under the submitter's trace identity so spans recorded by
        // the task parent under the submitting thread's span — NOT under
        // whatever was live on this worker before.
        telemetry::ScopedTraceContext guard(task.ctx);
        task.fn();
      } else {
        task.fn();
      }
    } catch (...) {
      TaskExceptions().Add();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<size_t>(1, grain);
  // Inline fast path: a range that fits one chunk never touches the queue
  // (an enqueue + wake costs ~µs — more than the whole range is worth).
  if (n <= grain) {
    fn(0, n);
    return;
  }
  const size_t num_chunks = (n + grain - 1) / grain;

  // Work-sharing: helpers and the caller all pull chunk indices from one
  // atomic counter; the caller then waits for the last chunk to finish.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;  // first chunk exception; guarded by mu
  };
  auto state = std::make_shared<State>();
  auto run_chunks = [state, n, grain, num_chunks, &fn] {
    for (;;) {
      const size_t chunk = state->next.fetch_add(1);
      if (chunk >= num_chunks) return;
      const size_t begin = chunk * grain;
      // A throwing fn must still count its chunk as done: the caller blocks
      // on done == num_chunks, and a lost increment would deadlock it (and
      // leave `fn`, captured by reference in the helpers, dangling). The
      // first exception is kept and rethrown on the calling thread once
      // every chunk has finished; later chunks still run.
      try {
        fn(begin, std::min(n, begin + grain));
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (state->error == nullptr) state->error = std::current_exception();
      }
      if (state->done.fetch_add(1) + 1 == num_chunks) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  const size_t helpers = std::min(workers_.size(), num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    // The lambda copies the shared state but captures `fn` by reference:
    // safe because the caller blocks below until all chunks are done.
    Submit([run_chunks] { run_chunks(); });
  }
  run_chunks();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock,
                 [&] { return state->done.load() == num_chunks; });
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace wavebatch
