#include "core/progressive.h"

#include <iterator>
#include <memory>

#include "core/exact.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "penalty/sse.h"
#include "strategy/wavelet_strategy.h"
#include "util/random.h"

namespace wavebatch {
namespace {

struct Fixture {
  Schema schema = Schema::Uniform(2, 16);
  Relation rel;
  QueryBatch batch;
  MasterList list;
  std::unique_ptr<CoefficientStore> store;
  std::vector<double> exact;

  Fixture() : rel(MakeUniformRelation(schema, 500, 3)), batch(schema) {
    WaveletStrategy strategy(schema, WaveletKind::kHaar);
    Rng rng(9);
    for (int i = 0; i < 12; ++i) {
      uint32_t lo0 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi0 = lo0 + static_cast<uint32_t>(rng.UniformInt(16 - lo0));
      uint32_t lo1 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi1 = lo1 + static_cast<uint32_t>(rng.UniformInt(16 - lo1));
      batch.Add(RangeSumQuery::Count(
          Range::Create(schema, {{lo0, hi0}, {lo1, hi1}}).value()));
    }
    list = MasterList::Build(batch, strategy).value();
    store = strategy.BuildStore(rel.FrequencyDistribution());
    exact = batch.BruteForce(rel);
  }
};

class ProgressiveOrderTest : public ::testing::TestWithParam<ProgressionOrder> {
};

TEST_P(ProgressiveOrderTest, CompletesToExactResults) {
  Fixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get(), GetParam(), 17);
  EXPECT_EQ(ev.StepsTaken(), 0u);
  ev.RunToCompletion();
  EXPECT_TRUE(ev.Done());
  EXPECT_EQ(ev.StepsTaken(), f.list.size());
  for (size_t i = 0; i < f.exact.size(); ++i) {
    EXPECT_NEAR(ev.Estimates()[i], f.exact[i],
                1e-6 * (1.0 + std::abs(f.exact[i])));
  }
}

TEST_P(ProgressiveOrderTest, EveryCoefficientFetchedExactlyOnce) {
  Fixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get(), GetParam(), 17);
  ev.RunToCompletion();
  EXPECT_EQ(ev.io().retrievals, f.list.size());
}

TEST_P(ProgressiveOrderTest, NextImportanceZeroWhenDone) {
  Fixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get(), GetParam(), 17);
  ev.RunToCompletion();
  EXPECT_EQ(ev.NextImportance(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, ProgressiveOrderTest,
                         ::testing::Values(ProgressionOrder::kBiggestB,
                                           ProgressionOrder::kRoundRobin,
                                           ProgressionOrder::kRandom,
                                           ProgressionOrder::kKeyOrder));

TEST(ProgressiveTest, BiggestBRetrievesInDecreasingImportance) {
  Fixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  double prev = ev.NextImportance();
  while (!ev.Done()) {
    const double next = ev.NextImportance();
    EXPECT_LE(next, prev + 1e-12);
    prev = next;
    ev.Step();
  }
}

TEST(ProgressiveTest, StepReturnsConsumedEntry) {
  Fixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  const double top = ev.NextImportance();
  const size_t idx = ev.Step();
  EXPECT_DOUBLE_EQ(ev.ImportanceOf(idx), top);
}

TEST(ProgressiveTest, StepManyStopsAtCompletion) {
  Fixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  ev.StepMany(f.list.size() * 10);
  EXPECT_TRUE(ev.Done());
}

TEST_P(ProgressiveOrderTest, StepManyOvershootMidRunStopsAtCompletion) {
  // n > TotalSteps() - StepsTaken() must finish cleanly, not over-step.
  Fixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get(), GetParam(), 17);
  ev.StepMany(f.list.size() / 2);
  const uint64_t taken = ev.StepsTaken();
  ev.StepMany((f.list.size() - taken) + 1000);
  EXPECT_TRUE(ev.Done());
  EXPECT_EQ(ev.StepsTaken(), f.list.size());
  EXPECT_EQ(ev.io().retrievals, f.list.size());
}

TEST_P(ProgressiveOrderTest, StepBatchOvershootStopsAtCompletion) {
  Fixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get(), GetParam(), 17);
  EXPECT_EQ(ev.StepBatch(f.list.size() + 999), f.list.size());
  EXPECT_TRUE(ev.Done());
  EXPECT_EQ(ev.StepBatch(4), 0u);  // no-op once done
}

TEST_P(ProgressiveOrderTest, StepBatchGoldenMatchesScalarSteps) {
  // StepBatch(n) must reproduce n scalar Step() calls exactly: estimates,
  // steps taken, retrieval counts, and both penalty trackers, at every
  // batch boundary, under every progression order.
  Fixture f;
  SsePenalty sse;
  const double k = f.store->SumAbs();
  ProgressiveEvaluator scalar(&f.list, &sse, f.store.get(), GetParam(), 17);
  ProgressiveEvaluator batched(&f.list, &sse, f.store.get(), GetParam(), 17);
  const size_t batch_sizes[] = {1, 3, 7, 16, 64};
  size_t bi = 0;
  while (!batched.Done()) {
    const size_t n = batch_sizes[bi++ % std::size(batch_sizes)];
    const size_t taken = batched.StepBatch(n);
    for (size_t i = 0; i < taken; ++i) scalar.Step();
    ASSERT_EQ(batched.StepsTaken(), scalar.StepsTaken());
    for (size_t q = 0; q < f.batch.size(); ++q) {
      EXPECT_EQ(batched.Estimates()[q], scalar.Estimates()[q])
          << "query " << q << " after " << batched.StepsTaken() << " steps";
    }
    EXPECT_EQ(batched.WorstCaseBound(k), scalar.WorstCaseBound(k));
    EXPECT_EQ(batched.ExpectedPenalty(f.schema.cell_count()),
              scalar.ExpectedPenalty(f.schema.cell_count()));
  }
  EXPECT_TRUE(scalar.Done());
  // Batched and scalar twins cost the same retrievals.
  EXPECT_EQ(scalar.io().retrievals, f.list.size());
  EXPECT_EQ(batched.io(), scalar.io());
}

TEST(ProgressiveTest, PartialEstimatesAreBTermApproximations) {
  // After B steps the estimate equals the inner product of the B-term
  // truncated query with the data (cross-check against manual truncation).
  Fixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  const size_t b = f.list.size() / 3;
  std::vector<size_t> used;
  for (size_t i = 0; i < b; ++i) used.push_back(ev.Step());
  std::vector<double> manual(f.batch.size(), 0.0);
  for (size_t idx : used) {
    const MasterEntry& e = f.list.entry(idx);
    const double data = f.store->Peek(e.key);
    for (const auto& [q, c] : e.uses) manual[q] += c * data;
  }
  for (size_t q = 0; q < manual.size(); ++q) {
    EXPECT_NEAR(ev.Estimates()[q], manual[q], 1e-9);
  }
}

TEST(ProgressiveTest, WorstCaseBoundDominatesActualPenalty) {
  // Theorem 1: for the biggest-B progression, the SSE of the current
  // estimate never exceeds K²·ι(ξ′) where K = Σ|Δ̂|.
  Fixture f;
  SsePenalty sse;
  const double k = f.store->SumAbs();
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  while (!ev.Done()) {
    std::vector<double> err(f.exact.size());
    for (size_t i = 0; i < err.size(); ++i) {
      err[i] = ev.Estimates()[i] - f.exact[i];
    }
    // Allow for the tiny coefficients the rewrite thresholds away.
    EXPECT_LE(sse.Apply(err), ev.WorstCaseBound(k) + 1e-5 * (1.0 + k * k));
    ev.StepMany(7);
  }
}

TEST(ProgressiveTest, ExpectedPenaltyDecreasesMonotonically) {
  Fixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  double prev = ev.ExpectedPenalty(f.schema.cell_count());
  while (!ev.Done()) {
    ev.Step();
    const double cur = ev.ExpectedPenalty(f.schema.cell_count());
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
  EXPECT_NEAR(prev, 0.0, 1e-9);
}

TEST(ProgressiveTest, RandomOrderIsSeedDeterministic) {
  // Same seed: the full progression (entry sequence and estimates) is
  // reproducible; a different seed permutes the list differently.
  Fixture f;
  SsePenalty sse;
  ProgressiveEvaluator a(&f.list, &sse, f.store.get(),
                         ProgressionOrder::kRandom, 99);
  ProgressiveEvaluator b(&f.list, &sse, f.store.get(),
                         ProgressionOrder::kRandom, 99);
  ProgressiveEvaluator other(&f.list, &sse, f.store.get(),
                             ProgressionOrder::kRandom, 100);
  bool any_differs = false;
  while (!a.Done()) {
    const size_t entry = a.Step();
    EXPECT_EQ(entry, b.Step());
    any_differs |= entry != other.Step();
    for (size_t q = 0; q < f.batch.size(); ++q) {
      EXPECT_EQ(a.Estimates()[q], b.Estimates()[q]);
    }
  }
  EXPECT_TRUE(any_differs) << "seed should change the random order";
}

TEST(ProgressiveTest, ImportanceMatchesPenaltyOfCoefficientColumn) {
  // Definition 3: ι_p(ξ) = p(q̂₀[ξ], …, q̂_{s−1}[ξ]).
  Fixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  for (size_t i = 0; i < f.list.size(); ++i) {
    double expected = 0.0;
    for (const auto& [q, c] : f.list.entry(i).uses) expected += c * c;
    EXPECT_NEAR(ev.ImportanceOf(i), expected, 1e-12);
  }
}

}  // namespace
}  // namespace wavebatch
