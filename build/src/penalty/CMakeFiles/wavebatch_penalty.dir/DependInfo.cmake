
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/penalty/laplacian.cc" "src/penalty/CMakeFiles/wavebatch_penalty.dir/laplacian.cc.o" "gcc" "src/penalty/CMakeFiles/wavebatch_penalty.dir/laplacian.cc.o.d"
  "/root/repo/src/penalty/lp.cc" "src/penalty/CMakeFiles/wavebatch_penalty.dir/lp.cc.o" "gcc" "src/penalty/CMakeFiles/wavebatch_penalty.dir/lp.cc.o.d"
  "/root/repo/src/penalty/quadratic.cc" "src/penalty/CMakeFiles/wavebatch_penalty.dir/quadratic.cc.o" "gcc" "src/penalty/CMakeFiles/wavebatch_penalty.dir/quadratic.cc.o.d"
  "/root/repo/src/penalty/sse.cc" "src/penalty/CMakeFiles/wavebatch_penalty.dir/sse.cc.o" "gcc" "src/penalty/CMakeFiles/wavebatch_penalty.dir/sse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/wavebatch_query.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wavebatch_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/wavebatch_cube.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
