#include "engine/eval_session.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "util/check.h"

namespace wavebatch {

std::shared_ptr<const CoefficientStore> UnownedStore(
    const CoefficientStore& store) {
  return std::shared_ptr<const CoefficientStore>(
      &store, [](const CoefficientStore*) {});
}

EvalSession::EvalSession(std::shared_ptr<const EvalPlan> plan,
                         std::shared_ptr<const CoefficientStore> store,
                         Options options)
    : plan_(std::move(plan)),
      store_(std::move(store)),
      options_(std::move(options)) {
  WB_CHECK(plan_ != nullptr);
  WB_CHECK(store_ != nullptr);
  estimates_.assign(plan_->num_queries(), 0.0);
  if (plan_->HasImportance()) {
    remaining_importance_ = plan_->total_importance();
  }

  if (options_.block_of) {
    // Group entries by block in first-appearance order; a block's
    // importance is the sum of its members' (additive in Theorem 2's
    // expected-penalty sum), accumulated in entry order.
    WB_CHECK(plan_->HasImportance())
        << "block granularity needs a penalty to rank blocks";
    const MasterList& list = plan_->list();
    std::unordered_map<uint64_t, size_t> block_index;
    for (size_t i = 0; i < list.size(); ++i) {
      const uint64_t block_id = options_.block_of(list.entry(i).key);
      auto [it, inserted] = block_index.try_emplace(block_id, blocks_.size());
      if (inserted) blocks_.push_back({block_id, 0.0, {}});
      Block& block = blocks_[it->second];
      block.importance += plan_->importance(i);
      block.entries.push_back(i);
    }
    // A max-heap of (importance, index) pops in descending pair order;
    // sorting the distinct pairs descending reproduces that sequence.
    block_order_.resize(blocks_.size());
    for (size_t b = 0; b < blocks_.size(); ++b) block_order_[b] = b;
    std::sort(block_order_.begin(), block_order_.end(),
              [this](size_t a, size_t b) {
                return std::make_pair(blocks_[a].importance, a) >
                       std::make_pair(blocks_[b].importance, b);
              });
    return;
  }

  if (options_.order == ProgressionOrder::kRandom) {
    owned_permutation_ = plan_->RandomPermutation(options_.seed);
    permutation_ = owned_permutation_;
  } else {
    permutation_ = plan_->Permutation(options_.order);
  }
}

bool EvalSession::Done() const {
  if (options_.block_of) return blocks_fetched_ == blocks_.size();
  return steps_taken_ == TotalSteps();
}

void EvalSession::ApplyEntry(size_t entry_idx, double data) {
  if (data == 0.0) return;
  for (const auto& [query, coeff] : plan_->list().entry(entry_idx).uses) {
    estimates_[query] += coeff * data;
  }
}

size_t EvalSession::Step() {
  WB_CHECK(!options_.block_of) << "Step() on a block-granularity session";
  WB_CHECK(!Done()) << "Step() after completion";
  const size_t entry_idx = permutation_[steps_taken_];
  ++steps_taken_;
  if (plan_->HasImportance()) {
    remaining_importance_ -= plan_->importance(entry_idx);
  }
  const double data = store_->Fetch(plan_->list().entry(entry_idx).key, &io_);
  ApplyEntry(entry_idx, data);
  return entry_idx;
}

void EvalSession::StepMany(size_t n) {
  for (size_t i = 0; i < n && !Done(); ++i) Step();
}

size_t EvalSession::StepBatch(size_t n) {
  WB_CHECK(!options_.block_of) << "StepBatch() on a block-granularity session";
  n = std::min<size_t>(n, TotalSteps() - StepsTaken());
  if (n == 0) return 0;
  const MasterList& list = plan_->list();
  std::vector<uint64_t> keys;
  keys.reserve(n);
  const size_t first = steps_taken_;
  for (size_t i = 0; i < n; ++i) {
    const size_t entry_idx = permutation_[first + i];
    keys.push_back(list.entry(entry_idx).key);
    if (plan_->HasImportance()) {
      remaining_importance_ -= plan_->importance(entry_idx);
    }
  }
  steps_taken_ += n;
  std::vector<double> values(keys.size());
  store_->FetchBatch(keys, values, &io_);
  // Apply in consumption order: the identical floating-point accumulation
  // sequence a scalar Step() loop would produce.
  for (size_t i = 0; i < n; ++i) {
    ApplyEntry(permutation_[first + i], values[i]);
  }
  return n;
}

void EvalSession::RunToExact() {
  if (options_.block_of) {
    while (!Done()) StepBlock();
    return;
  }
  while (!Done()) StepBatch(options_.run_chunk);
}

size_t EvalSession::StepBlock() {
  WB_CHECK(options_.block_of) << "StepBlock() on a coefficient session";
  WB_CHECK(!Done()) << "StepBlock() after completion";
  const Block& block = blocks_[block_order_[blocks_fetched_]];
  ++blocks_fetched_;
  const MasterList& list = plan_->list();
  // One batched fetch per block — on a BlockStore backend this touches the
  // underlying block exactly once, matching the simulated cost model.
  std::vector<uint64_t> keys;
  keys.reserve(block.entries.size());
  for (size_t entry_idx : block.entries) {
    keys.push_back(list.entry(entry_idx).key);
    remaining_importance_ -= plan_->importance(entry_idx);
  }
  std::vector<double> values(keys.size());
  store_->FetchBatch(keys, values, &io_);
  coefficients_fetched_ += block.entries.size();
  steps_taken_ += block.entries.size();
  for (size_t i = 0; i < block.entries.size(); ++i) {
    ApplyEntry(block.entries[i], values[i]);
  }
  return block.entries.size();
}

void EvalSession::StepToBlocks(uint64_t n) {
  while (!Done() && blocks_fetched_ < n) StepBlock();
}

double EvalSession::NextBlockImportance() const {
  if (Done()) return 0.0;
  return blocks_[block_order_[blocks_fetched_]].importance;
}

double EvalSession::NextImportance() const {
  if (Done()) return 0.0;
  if (options_.block_of) return NextBlockImportance();
  return plan_->importance(permutation_[steps_taken_]);
}

double EvalSession::WorstCaseBound(double k_sum_abs) const {
  WB_CHECK(plan_->HasImportance());
  return std::pow(k_sum_abs, plan_->penalty()->HomogeneityDegree()) *
         NextImportance();
}

double EvalSession::ExpectedPenalty(uint64_t domain_cells) const {
  WB_CHECK_GT(domain_cells, 0u);
  // Clamp tiny negative drift from repeated subtraction.
  const double remaining = std::max(remaining_importance_, 0.0);
  return remaining / static_cast<double>(domain_cells);
}

}  // namespace wavebatch
