#include "data/generators.h"

#include <cmath>

#include "gtest/gtest.h"

namespace wavebatch {
namespace {

TEST(TemperatureDatasetTest, SchemaShape) {
  TemperatureDatasetOptions options;
  options.num_records = 1000;
  Relation rel = MakeTemperatureDataset(options);
  ASSERT_EQ(rel.schema().num_dims(), 5u);
  EXPECT_EQ(rel.schema().dim(kLat).name, "lat");
  EXPECT_EQ(rel.schema().dim(kTemp).name, "temp");
  EXPECT_EQ(rel.schema().dim(kLat).size, options.lat_size);
  EXPECT_EQ(rel.num_tuples(), 1000u);
}

TEST(TemperatureDatasetTest, AllTuplesInDomain) {
  TemperatureDatasetOptions options;
  options.num_records = 2000;
  Relation rel = MakeTemperatureDataset(options);
  for (const Tuple& t : rel.tuples()) {
    EXPECT_TRUE(rel.schema().Contains(t));
  }
}

TEST(TemperatureDatasetTest, Deterministic) {
  TemperatureDatasetOptions options;
  options.num_records = 500;
  Relation a = MakeTemperatureDataset(options);
  Relation b = MakeTemperatureDataset(options);
  ASSERT_EQ(a.num_tuples(), b.num_tuples());
  for (uint64_t i = 0; i < a.num_tuples(); ++i) {
    EXPECT_EQ(a.tuple(i), b.tuple(i));
  }
}

TEST(TemperatureDatasetTest, SeedChangesData) {
  TemperatureDatasetOptions a_opt, b_opt;
  a_opt.num_records = b_opt.num_records = 500;
  b_opt.seed = a_opt.seed + 1;
  Relation a = MakeTemperatureDataset(a_opt);
  Relation b = MakeTemperatureDataset(b_opt);
  bool any_diff = false;
  for (uint64_t i = 0; i < a.num_tuples(); ++i) {
    any_diff |= (a.tuple(i) != b.tuple(i));
  }
  EXPECT_TRUE(any_diff);
}

TEST(TemperatureDatasetTest, EquatorWarmerThanPoles) {
  TemperatureDatasetOptions options;
  options.num_records = 20000;
  Relation rel = MakeTemperatureDataset(options);
  const uint32_t n_lat = options.lat_size;
  double polar_sum = 0, polar_n = 0, equator_sum = 0, equator_n = 0;
  for (const Tuple& t : rel.tuples()) {
    if (t[kLat] < n_lat / 8 || t[kLat] >= n_lat - n_lat / 8) {
      polar_sum += t[kTemp];
      polar_n += 1;
    } else if (t[kLat] >= 3 * n_lat / 8 && t[kLat] < 5 * n_lat / 8) {
      equator_sum += t[kTemp];
      equator_n += 1;
    }
  }
  ASSERT_GT(polar_n, 0);
  ASSERT_GT(equator_n, 0);
  EXPECT_GT(equator_sum / equator_n, polar_sum / polar_n + 2.0);
}

TEST(TemperatureDatasetTest, HighAltitudeColder) {
  TemperatureDatasetOptions options;
  options.num_records = 20000;
  Relation rel = MakeTemperatureDataset(options);
  double low_sum = 0, low_n = 0, high_sum = 0, high_n = 0;
  for (const Tuple& t : rel.tuples()) {
    if (t[kAlt] == 0) {
      low_sum += t[kTemp];
      low_n += 1;
    } else if (t[kAlt] >= options.alt_size / 2) {
      high_sum += t[kTemp];
      high_n += 1;
    }
  }
  ASSERT_GT(low_n, 0);
  ASSERT_GT(high_n, 0);
  EXPECT_GT(low_sum / low_n, high_sum / high_n);
}

TEST(UniformRelationTest, CoversDomainRoughlyEvenly) {
  Schema schema = Schema::Uniform(1, 8);
  Relation rel = MakeUniformRelation(schema, 8000, 7);
  DenseCube delta = rel.FrequencyDistribution();
  for (uint64_t c = 0; c < 8; ++c) {
    EXPECT_NEAR(delta[c], 1000.0, 250.0);
  }
}

TEST(ZipfRelationTest, SkewsTowardOrigin) {
  Schema schema = Schema::Uniform(1, 16);
  Relation rel = MakeZipfRelation(schema, 5000, 1.2, 9);
  DenseCube delta = rel.FrequencyDistribution();
  EXPECT_GT(delta[0], delta[8] * 3);
}

TEST(GaussianClustersTest, MassConcentratesNearCenters) {
  Schema schema = Schema::Uniform(2, 32);
  Relation rel = MakeGaussianClustersRelation(schema, 5000, 2, 0.05, 11);
  EXPECT_EQ(rel.num_tuples(), 5000u);
  // With sigma 5% of the domain and 2 clusters, the occupied support is a
  // small fraction of all cells.
  DenseCube delta = rel.FrequencyDistribution();
  EXPECT_LT(delta.CountNonZero(), delta.size() / 3);
  for (const Tuple& t : rel.tuples()) {
    EXPECT_TRUE(schema.Contains(t));
  }
}


TEST(TemperatureCubeTest, MatchesRelationFrequencyDistribution) {
  TemperatureDatasetOptions options;
  options.num_records = 3000;
  Relation rel = MakeTemperatureDataset(options);
  DenseCube from_rel = rel.FrequencyDistribution();
  DenseCube streamed = MakeTemperatureCube(options);
  ASSERT_TRUE(from_rel.schema() == streamed.schema());
  for (uint64_t c = 0; c < from_rel.size(); ++c) {
    EXPECT_EQ(streamed[c], from_rel[c]) << "cell " << c;
  }
}

TEST(TemperatureCubeTest, TotalEqualsRecordCount) {
  TemperatureDatasetOptions options;
  options.num_records = 12345;
  DenseCube cube = MakeTemperatureCube(options);
  EXPECT_DOUBLE_EQ(cube.Total(), 12345.0);
}

}  // namespace
}  // namespace wavebatch
