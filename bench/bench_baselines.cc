// The paper's central argument (Section 1.1): approximate the *query*,
// not the *data*. This harness pits Batch-Biggest-B against the two
// baseline families the related-work section discusses, at matched
// "information read" budgets on the standard 512-range workload:
//
//   data approximation  — a precomputed synopsis of the C largest data
//                         wavelet coefficients [1, 17]; answers are fixed
//                         once the synopsis is built and cannot adapt to a
//                         query-time penalty function;
//   online aggregation  — random-order tuple scans with scaled running
//                         estimates [7]; exact only after the full scan.
//
// For each budget the table reports the mean relative error of:
//   progressive Batch-Biggest-B after B coefficient retrievals,
//   the C=B-coefficient synopsis answering the whole batch,
//   online aggregation after scanning B·(records/master-list) tuples
//   (scaling tuple budgets so the final rows are full-scan / full-list).

#include <cmath>
#include <span>

#include "baselines/compressed_view.h"
#include "baselines/online_aggregation.h"
#include "bench_common.h"
#include "core/progressive.h"
#include "penalty/sse.h"
#include "util/table.h"

namespace wavebatch::bench {
namespace {

double Mre(const std::vector<double>& estimates,
           const std::vector<double>& exact) {
  double acc = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < exact.size(); ++i) {
    if (exact[i] == 0.0) continue;
    acc += std::abs(estimates[i] - exact[i]) / std::abs(exact[i]);
    ++counted;
  }
  return counted ? acc / counted : 0.0;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              "bench_baselines: Batch-Biggest-B vs data-approximation and "
              "online aggregation\n" +
                  kCommonFlagsHelp);
  TemperatureDatasetOptions options = DataOptionsFromFlags(flags);
  // Keep the domain moderate: the synopsis baseline rebuilds a compressed
  // view per budget.
  options.lat_size = static_cast<uint32_t>(flags.Int("lat", 64));
  options.lon_size = static_cast<uint32_t>(flags.Int("lon", 64));
  options.num_records = static_cast<uint64_t>(flags.Int("records", 4000000));
  const std::vector<size_t> parts = PartsFromFlags(flags);

  Stopwatch total;
  std::cout << "building experiment (domain "
            << TemperatureSchema(options).ToString() << ", "
            << options.num_records << " records)..." << std::endl;
  Experiment exp(options, parts, 1234, WaveletKind::kDb4);

  SsePenalty sse;
  ProgressiveEvaluator progressive(&exp.list, &sse, exp.store.get());

  // Online aggregation re-streams the (i.i.d.) generator as the random
  // tuple order; budgets scale so both methods end "complete" together.
  OnlineAggregator online(&exp.workload.batch, options.num_records);
  const double tuples_per_coefficient =
      static_cast<double>(options.num_records) /
      static_cast<double>(exp.list.size());
  uint64_t tuples_consumed = 0;
  std::vector<Tuple> buffered;  // consumed lazily from the stream below
  buffered.reserve(1 << 16);
  uint64_t stream_pos = 0;
  StreamTemperatureRecords(options, [&](const Tuple& t) {
    buffered.push_back(t);
  });

  Table table({"budget B", "biggest-B MRE", "synopsis(C=B) MRE",
               "online agg MRE", "tuples scanned"});
  for (double frac : {0.001, 0.004, 0.016, 0.0625, 0.25, 1.0}) {
    const uint64_t budget = std::max<uint64_t>(
        1, static_cast<uint64_t>(frac * static_cast<double>(exp.list.size())));
    // 1. Progressive query approximation.
    progressive.StepMany(budget - progressive.StepsTaken());
    const double mre_progressive = Mre(progressive.Estimates(), exp.exact);
    // 2. Data approximation: a fresh C-coefficient synopsis of Δ̂.
    auto synopsis = CompressTopCoefficients(*exp.store, budget);
    ExactBatchResult against_synopsis = EvaluateShared(exp.list, *synopsis);
    const double mre_synopsis = Mre(against_synopsis.results, exp.exact);
    // 3. Online aggregation at the scaled tuple budget.
    const uint64_t tuple_budget = std::min<uint64_t>(
        options.num_records,
        static_cast<uint64_t>(tuples_per_coefficient *
                              static_cast<double>(budget)));
    if (tuples_consumed < tuple_budget && stream_pos < buffered.size()) {
      const size_t take = std::min<size_t>(tuple_budget - tuples_consumed,
                                           buffered.size() - stream_pos);
      online.ObserveMany(
          std::span<const Tuple>(buffered).subspan(stream_pos, take));
      stream_pos += take;
      tuples_consumed += take;
    }
    const double mre_online = Mre(online.Estimates(), exp.exact);

    table.AddRow({std::to_string(budget), FormatDouble(mre_progressive, 4),
                  FormatDouble(mre_synopsis, 4),
                  FormatDouble(mre_online, 4),
                  std::to_string(tuples_consumed)});
  }

  std::cout << "\nQuery approximation (Batch-Biggest-B) vs data "
               "approximation vs online aggregation:\n";
  table.Print(std::cout);
  std::cout << "expected shape: biggest-B reaches exactness at the full "
               "master list; the synopsis needs C ≫ the master list for "
               "comparable accuracy on data without sparse wavelet decay; "
               "online aggregation improves as 1/sqrt(scanned) and is "
               "exact only at the full scan.\n";
  std::cout << "elapsed: " << FormatDouble(total.ElapsedSeconds(), 3)
            << "s\n";

  const std::string csv = flags.Str("csv", "");
  if (!csv.empty() && !table.WriteCsv(csv)) return 1;
  if (!WriteMetricsOut(flags)) return 1;
  return 0;
}

}  // namespace
}  // namespace wavebatch::bench

int main(int argc, char** argv) { return wavebatch::bench::Main(argc, argv); }
