# Empty dependencies file for bench_obs1_io_sharing.
# This may be replaced when dependencies are built.
