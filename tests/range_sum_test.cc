#include "query/range_sum.h"

#include "gtest/gtest.h"
#include "util/random.h"

namespace wavebatch {
namespace {

Relation SmallRelation() {
  Relation r(Schema::Uniform(2, 8));
  r.Add({1, 2});
  r.Add({1, 2});
  r.Add({3, 5});
  r.Add({7, 0});
  return r;
}

Range MakeRange(const Schema& schema, std::vector<Interval> ivs) {
  Result<Range> r = Range::Create(schema, std::move(ivs));
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(RangeSumTest, CountQuery) {
  Relation rel = SmallRelation();
  Range range = MakeRange(rel.schema(), {{0, 3}, {0, 7}});
  RangeSumQuery q = RangeSumQuery::Count(range);
  EXPECT_DOUBLE_EQ(q.BruteForce(rel), 3.0);  // (1,2)x2 and (3,5)
  EXPECT_EQ(q.MaxVarDegree(), 0u);
}

TEST(RangeSumTest, SumQuery) {
  Relation rel = SmallRelation();
  Range range = MakeRange(rel.schema(), {{0, 3}, {0, 7}});
  RangeSumQuery q = RangeSumQuery::Sum(range, 1);
  EXPECT_DOUBLE_EQ(q.BruteForce(rel), 2.0 + 2.0 + 5.0);
  EXPECT_EQ(q.MaxVarDegree(), 1u);
}

TEST(RangeSumTest, SumProductQuery) {
  Relation rel = SmallRelation();
  Range range = Range::All(rel.schema());
  RangeSumQuery q = RangeSumQuery::SumProduct(range, 0, 1);
  EXPECT_DOUBLE_EQ(q.BruteForce(rel), 1 * 2 + 1 * 2 + 3 * 5 + 7 * 0);
  EXPECT_EQ(q.MaxVarDegree(), 1u);
}

TEST(RangeSumTest, SumPowerQuery) {
  Relation rel = SmallRelation();
  Range range = Range::All(rel.schema());
  RangeSumQuery q = RangeSumQuery::SumPower(range, 0, 2);
  EXPECT_DOUBLE_EQ(q.BruteForce(rel), 1 + 1 + 9 + 49);
  EXPECT_EQ(q.MaxVarDegree(), 2u);
}

TEST(RangeSumTest, SelfProductHasDegreeTwo) {
  Range range = Range::All(Schema::Uniform(2, 8));
  RangeSumQuery q = RangeSumQuery::SumProduct(range, 0, 0);
  EXPECT_EQ(q.MaxVarDegree(), 2u);
}

TEST(RangeSumTest, BruteForceAgainstCubeMatchesRelation) {
  Relation rel = SmallRelation();
  DenseCube delta = rel.FrequencyDistribution();
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t lo0 = static_cast<uint32_t>(rng.UniformInt(8));
    const uint32_t hi0 = lo0 + static_cast<uint32_t>(rng.UniformInt(8 - lo0));
    const uint32_t lo1 = static_cast<uint32_t>(rng.UniformInt(8));
    const uint32_t hi1 = lo1 + static_cast<uint32_t>(rng.UniformInt(8 - lo1));
    Range range = MakeRange(rel.schema(), {{lo0, hi0}, {lo1, hi1}});
    for (const RangeSumQuery& q :
         {RangeSumQuery::Count(range), RangeSumQuery::Sum(range, 0),
          RangeSumQuery::SumProduct(range, 0, 1)}) {
      EXPECT_DOUBLE_EQ(q.BruteForce(rel), q.BruteForce(delta));
    }
  }
}

TEST(RangeSumTest, ToDenseVectorIsIndicatorTimesPolynomial) {
  Schema schema = Schema::Uniform(2, 4);
  Range range = MakeRange(schema, {{1, 2}, {0, 1}});
  RangeSumQuery q = RangeSumQuery::Sum(range, 0);
  DenseCube v = q.ToDenseVector(schema);
  for (uint32_t x = 0; x < 4; ++x) {
    for (uint32_t y = 0; y < 4; ++y) {
      const double expected = (x >= 1 && x <= 2 && y <= 1) ? x : 0.0;
      EXPECT_DOUBLE_EQ(v.at(std::vector<uint32_t>{x, y}), expected);
    }
  }
}

TEST(RangeSumTest, QueryVectorInnerProductEqualsBruteForce) {
  // ⟨q, Δ⟩ in the *untransformed* domain — sanity for the vector-query
  // formulation itself.
  Relation rel = SmallRelation();
  DenseCube delta = rel.FrequencyDistribution();
  Range range = MakeRange(rel.schema(), {{0, 3}, {1, 6}});
  RangeSumQuery q = RangeSumQuery::Sum(range, 1);
  DenseCube qvec = q.ToDenseVector(rel.schema());
  EXPECT_DOUBLE_EQ(qvec.Dot(delta), q.BruteForce(rel));
}

TEST(RangeSumTest, LabelPreserved) {
  Range range = Range::All(Schema::Uniform(1, 4));
  RangeSumQuery q = RangeSumQuery::Count(range, "my-label");
  EXPECT_EQ(q.label(), "my-label");
}

TEST(RangeSumTest, EmptyRelationGivesZero) {
  Relation rel(Schema::Uniform(2, 4));
  RangeSumQuery q = RangeSumQuery::Count(Range::All(rel.schema()));
  EXPECT_DOUBLE_EQ(q.BruteForce(rel), 0.0);
}

}  // namespace
}  // namespace wavebatch
