#ifndef WAVEBATCH_TELEMETRY_TRACE_H_
#define WAVEBATCH_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>

namespace wavebatch::telemetry {

/// Request-scoped trace identity, minted once per served request (at
/// QueryService::Submit) and propagated explicitly across every asynchrony
/// seam a request crosses: scheduler quanta, thread-pool task hand-offs,
/// shard sub-batches. A span recorded while a context is installed carries
/// the context's ids, so one request renders as a connected lane across
/// threads even though its work interleaves with every other tenant's.
///
/// Ids are process-unique monotonic counters, never 0 (0 everywhere means
/// "no context" — the zero-initialized default). trace_id and request_id
/// are distinct fields on purpose: today one request is one trace, but a
/// future multi-request trace (a dashboard refresh fanning out N batches)
/// only has to mint one trace id across several request ids.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t request_id = 0;
  /// Span on the *originating* thread to parent the receiver's spans under
  /// — the cross-thread link. 0 = receiver's spans are roots.
  uint64_t parent_span_id = 0;

  /// True when installing this context would change any attribution: either
  /// a request identity or a cross-thread parent link.
  bool active() const { return trace_id != 0 || parent_span_id != 0; }
};

namespace internal {

/// Per-thread trace slots read by RecordSpan on every enabled span. Plain
/// thread-locals (no atomics): only the owning thread reads or writes them.
struct ThreadTraceState {
  uint64_t trace_id = 0;
  uint64_t request_id = 0;
  /// Innermost live ScopedSpan on this thread (or the installed context's
  /// parent link when no span is open) — the parent for new spans.
  uint64_t current_span_id = 0;
};
inline thread_local ThreadTraceState t_trace;

inline std::atomic<uint64_t> g_next_span_id{1};
inline std::atomic<uint64_t> g_next_trace_id{1};

}  // namespace internal

/// Allocates a process-unique span id (relaxed counter; ids only need to be
/// distinct, not ordered).
inline uint64_t NewSpanId() {
  return internal::g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

/// Allocates a process-unique trace/request id.
inline uint64_t NewTraceId() {
  return internal::g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

/// Snapshot of this thread's trace identity for handing work to another
/// thread: the receiver installs it (ScopedTraceContext) and its spans
/// carry this thread's trace/request ids with the currently-open span as
/// their cross-thread parent. This is what ThreadPool::Submit captures.
inline TraceContext CurrentTraceContext() {
  return TraceContext{internal::t_trace.trace_id,
                      internal::t_trace.request_id,
                      internal::t_trace.current_span_id};
}

/// Innermost live span id on this thread (0 = none). Exposed for tests.
inline uint64_t CurrentSpanId() { return internal::t_trace.current_span_id; }

/// RAII installer: spans recorded on this thread within the scope carry
/// `ctx`'s trace/request ids and parent under ctx.parent_span_id (until a
/// nested ScopedSpan deepens the chain). Restores the previous thread state
/// on destruction, so installs nest — a worker that installs a task's
/// context and then hands off again composes naturally.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx)
      : saved_(internal::t_trace) {
    internal::t_trace.trace_id = ctx.trace_id;
    internal::t_trace.request_id = ctx.request_id;
    internal::t_trace.current_span_id = ctx.parent_span_id;
  }
  ~ScopedTraceContext() { internal::t_trace = saved_; }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  internal::ThreadTraceState saved_;
};

}  // namespace wavebatch::telemetry

#endif  // WAVEBATCH_TELEMETRY_TRACE_H_
