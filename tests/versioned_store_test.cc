// The versioned coefficient plane's contract: ingests are invisible until
// published, published epochs are immutable (a pinned snapshot is immune to
// every later ingest and merge), a merge is bitwise invisible to quiescent
// readers and never blocks them, and an interleaved insert/query schedule
// is bit-identical — estimates, bounds, I/O, and skip accounting — to a
// plane rebuilt by replaying the same event log to the pinned epoch, across
// all progression orders, both fault policies, and sharded bases.

#include "storage/versioned_store.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "data/generators.h"
#include "engine/eval_plan.h"
#include "engine/eval_session.h"
#include "engine/plan_cache.h"
#include "gtest/gtest.h"
#include "penalty/sse.h"
#include "storage/delta_store.h"
#include "storage/fault_injection_store.h"
#include "storage/key_router.h"
#include "storage/memory_store.h"
#include "storage/sharded_store.h"
#include "strategy/wavelet_strategy.h"
#include "util/random.h"

namespace wavebatch {
namespace {

TEST(DeltaStoreTest, ConsolidatesPerKeyAndSealsImmutably) {
  DeltaStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.Seal(), nullptr);

  store.Apply(SparseVec::FromSorted({{1, 0.5}, {2, 1.0}}));
  store.Apply(SparseVec::FromSorted({{2, 0.25}, {7, -3.0}}));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.ingests(), 2u);
  EXPECT_EQ(store.entries_applied(), 4u);

  auto sealed = store.Seal();
  ASSERT_NE(sealed, nullptr);
  EXPECT_EQ(sealed->size(), 3u);
  EXPECT_EQ(sealed->ValueAt(1), 0.5);
  EXPECT_EQ(sealed->ValueAt(2), 1.25);
  EXPECT_EQ(sealed->ValueAt(7), -3.0);
  EXPECT_EQ(sealed->ValueAt(99), 0.0);

  // The seal is a snapshot: later writes don't leak into it.
  store.ApplyOne(1, 10.0);
  EXPECT_EQ(sealed->ValueAt(1), 0.5);

  store.Clear();
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.Seal(), nullptr);
  EXPECT_EQ(store.ingests(), 3u) << "counters survive Clear()";
}

TEST(DeltaStoreTest, SealComposesOnTopOfAMergingOverlay) {
  DeltaStore first;
  first.Apply(SparseVec::FromSorted({{1, 1.0}, {2, 2.0}}));
  auto under = first.Seal();
  ASSERT_NE(under, nullptr);

  DeltaStore second;
  second.Apply(SparseVec::FromSorted({{2, 0.5}, {3, 3.0}}));
  auto composed = second.Seal(under.get());
  ASSERT_NE(composed, nullptr);
  EXPECT_EQ(composed->ValueAt(1), 1.0);
  EXPECT_EQ(composed->ValueAt(2), 2.5);
  EXPECT_EQ(composed->ValueAt(3), 3.0);
  EXPECT_EQ(composed->ingests, 2u);

  // An empty store over a non-empty `under` still seals (the merging
  // overlay is part of every published view until the base swap).
  DeltaStore empty;
  auto carried = empty.Seal(under.get());
  ASSERT_NE(carried, nullptr);
  EXPECT_EQ(carried->ValueAt(2), 2.0);
}

TEST(DeltaStoreTest, CancelledKeysStaySealedAsExplicitZeros) {
  DeltaStore store;
  store.ApplyOne(5, 1.5);
  store.ApplyOne(5, -1.5);
  EXPECT_EQ(store.size(), 1u);
  auto sealed = store.Seal();
  ASSERT_NE(sealed, nullptr);
  EXPECT_EQ(sealed->size(), 1u);
  EXPECT_EQ(sealed->ValueAt(5), 0.0);
}

/// The shared evaluation fixture (same shape as sharded_store_test): a
/// 2×16 Haar cube loaded from 500 tuples, 12 Count queries, an SSE-ranked
/// plan — plus a 120-tuple ingest stream with its per-tuple sparse deltas
/// precomputed through the strategy.
struct StreamFixture {
  Schema schema = Schema::Uniform(2, 16);
  WaveletStrategy strategy{schema, WaveletKind::kHaar};
  Relation rel;
  Relation stream_rel;
  QueryBatch batch;
  std::shared_ptr<const MasterList> list;
  std::shared_ptr<const SsePenalty> sse = std::make_shared<SsePenalty>();
  std::shared_ptr<const EvalPlan> plan;
  std::vector<SparseVec> deltas;  // TransformUpdate of each stream tuple

  StreamFixture()
      : rel(MakeUniformRelation(schema, 500, 3)),
        stream_rel(MakeUniformRelation(schema, 120, 77)),
        batch(schema) {
    Rng rng(9);
    for (int i = 0; i < 12; ++i) {
      uint32_t lo0 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi0 = lo0 + static_cast<uint32_t>(rng.UniformInt(16 - lo0));
      uint32_t lo1 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi1 = lo1 + static_cast<uint32_t>(rng.UniformInt(16 - lo1));
      batch.Add(RangeSumQuery::Count(
          Range::Create(schema, {{lo0, hi0}, {lo1, hi1}}).value()));
    }
    list = std::make_shared<const MasterList>(
        MasterList::Build(batch, strategy).value());
    plan = EvalPlan::FromMasterList(list, sse);
    for (const Tuple& t : stream_rel.tuples()) {
      deltas.push_back(strategy.TransformUpdate(t, 1.0).value());
    }
  }

  std::unique_ptr<CoefficientStore> BuildBase() const {
    return strategy.BuildStore(rel.FrequencyDistribution());
  }

  uint64_t MaxKey() const {
    auto base = BuildBase();
    uint64_t max_key = 0;
    base->ForEachNonZero(
        [&](uint64_t key, double) { max_key = std::max(max_key, key); });
    return max_key;
  }
};

/// Splits `source` into hash shards owned per `router` (copied from
/// sharded_store_test's idiom).
std::vector<std::unique_ptr<CoefficientStore>> MakeHashShards(
    const CoefficientStore& source, const KeyRouter& router) {
  std::vector<std::unique_ptr<HashStore>> shards;
  for (size_t s = 0; s < router.num_shards(); ++s) {
    shards.push_back(std::make_unique<HashStore>());
  }
  source.ForEachNonZero([&](uint64_t key, double value) {
    shards[router.ShardOf(key)]->Add(key, value);
  });
  std::vector<std::unique_ptr<CoefficientStore>> out;
  for (auto& shard : shards) out.push_back(std::move(shard));
  return out;
}

/// A merge_fn that rebuilds a ShardedStore around the same router — the
/// sharded plane's way of keeping FetchBatchRouted hints valid across
/// merges (each snapshot keeps its own base alive, so hints pin per
/// snapshot; the router itself is shared and immutable).
VersionedStoreOptions ShardedMergeOptions(const KeyRouter& router) {
  VersionedStoreOptions options;
  options.merge_fn = [router](const CoefficientStore& base,
                              const DeltaOverlay& overlay) {
    std::vector<std::unique_ptr<HashStore>> shards;
    for (size_t s = 0; s < router.num_shards(); ++s) {
      shards.push_back(std::make_unique<HashStore>());
    }
    base.ForEachNonZero([&](uint64_t key, double value) {
      shards[router.ShardOf(key)]->Add(key, value);
    });
    for (const auto& [key, value] : overlay.adds) {
      shards[router.ShardOf(key)]->Add(key, value);
    }
    std::vector<std::unique_ptr<CoefficientStore>> out;
    for (auto& shard : shards) out.push_back(std::move(shard));
    return std::make_unique<ShardedStore>(std::move(out), router,
                                          ShardedStoreOptions{});
  };
  return options;
}

TEST(VersionedStoreTest, IngestsAreInvisibleUntilPublished) {
  StreamFixture f;
  VersionedStore store(f.BuildBase());
  EXPECT_EQ(store.epoch(), 0u);

  auto pristine = store.Snapshot();
  ASSERT_NE(pristine, nullptr);
  EXPECT_EQ(pristine->epoch(), 0u);
  EXPECT_EQ(pristine->overlay(), nullptr) << "epoch 0 is the naked base";

  store.Ingest(f.deltas[0]);
  // Counted reads and aggregates still serve epoch 0.
  const uint64_t key = f.deltas[0].entries().front().key;
  const double base_value = pristine->Peek(key);
  IoStats io;
  EXPECT_EQ(store.Fetch(key, &io).value(), base_value);
  EXPECT_EQ(store.epoch(), 0u);
  // ...but the authoritative Peek sees the unpublished ingest.
  EXPECT_EQ(store.Peek(key),
            base_value + f.deltas[0].entries().front().value);

  EXPECT_EQ(store.Publish(), 1u);
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_EQ(store.Fetch(key, &io).value(),
            base_value + f.deltas[0].entries().front().value);
  // The pre-publish pin is immune.
  EXPECT_EQ(pristine->Peek(key), base_value);
}

TEST(VersionedStoreTest, OnPublishFiresOnEveryPublishPath) {
  // Every way an epoch can be published — explicit Publish(), the
  // publish_every auto-publish, a synchronous Merge(), and a background
  // merge — must fire the on_publish callback exactly once, in epoch
  // order, off the writer lock.
  StreamFixture f;
  std::vector<uint64_t> published;
  std::mutex mu;
  VersionedStoreOptions options;
  options.publish_every = 3;
  options.on_publish = [&](uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu);
    published.push_back(epoch);
  };
  VersionedStore store(f.BuildBase(), options);

  EXPECT_EQ(store.Publish(), 1u);                          // explicit
  for (int i = 0; i < 3; ++i) store.Ingest(f.deltas[i]);   // auto at the 3rd
  store.Ingest(f.deltas[3]);
  EXPECT_EQ(store.Merge(), 3u);                            // merge republish
  store.Ingest(f.deltas[4]);
  ASSERT_TRUE(store.StartBackgroundMerge());               // background merge
  store.WaitForMerge();

  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(published, (std::vector<uint64_t>{1, 2, 3, 4}));
}

TEST(VersionedStoreTest, PublishCallbackKeepsPlanCacheBounded) {
  // The dead-epoch leak this wiring fixes: every publish cycle used to
  // strand the previous epoch's plan in the cache until LRU pressure
  // happened to evict it. With on_publish → InvalidateStale, the cache is
  // empty immediately after every publish/merge, no matter how many
  // cycles run (asserted at size() == 0, which the GetOrBuild watermark
  // alone cannot produce — only the callback drops the newest entry).
  StreamFixture f;
  PlanCache cache(64);
  VersionedStoreOptions options;
  options.on_publish = [&cache](uint64_t epoch) {
    cache.InvalidateStale(epoch);
  };
  VersionedStore store(f.BuildBase(), options);

  for (size_t cycle = 0; cycle < 30; ++cycle) {
    ASSERT_TRUE(
        cache.GetOrBuild(f.batch, f.strategy, f.sse, store.epoch()).ok());
    EXPECT_EQ(cache.size(), 1u);
    store.Ingest(f.deltas[cycle % f.deltas.size()]);
    if (cycle % 5 == 4) {
      store.Merge();
    } else {
      store.Publish();
    }
    EXPECT_EQ(cache.size(), 0u)
        << "cycle " << cycle << ": superseded plan must be dropped";
  }
}

TEST(VersionedStoreTest, PinnedEpochIsImmuneToLaterIngestsAndMerges) {
  StreamFixture f;
  VersionedStore store(f.BuildBase());
  for (size_t i = 0; i < 10; ++i) store.Ingest(f.deltas[i]);
  store.Publish();

  auto pinned = store.Snapshot();
  std::vector<std::pair<uint64_t, double>> frozen;
  pinned->ForEachNonZero([&](uint64_t key, double value) {
    frozen.push_back({key, value});
  });
  ASSERT_FALSE(frozen.empty());

  for (size_t i = 10; i < f.deltas.size(); ++i) store.Ingest(f.deltas[i]);
  store.Publish();
  store.Merge();
  for (size_t i = 0; i < 10; ++i) store.Ingest(f.deltas[i]);
  store.Merge();

  IoStats io;
  for (const auto& [key, value] : frozen) {
    EXPECT_EQ(pinned->Peek(key), value);
    EXPECT_EQ(pinned->Fetch(key, &io).value(), value);
  }
}

TEST(VersionedStoreTest, MergeIsBitwiseInvisibleToQuiescentReaders) {
  // Db4 coefficients are irrational, so any associativity slip in the
  // merge would show up as a last-bit difference here.
  Schema schema = Schema::Uniform(2, 16);
  WaveletStrategy strategy(schema, WaveletKind::kDb4);
  Relation rel = MakeUniformRelation(schema, 300, 5);
  Relation extra = MakeUniformRelation(schema, 50, 21);
  VersionedStore store(strategy.BuildStore(rel.FrequencyDistribution()));
  for (const Tuple& t : extra.tuples()) {
    store.Ingest(strategy.TransformUpdate(t, 1.0).value());
  }
  store.Publish();

  std::vector<uint64_t> keys;
  std::vector<double> before;
  store.ForEachNonZero([&](uint64_t key, double value) {
    keys.push_back(key);
    before.push_back(value);
  });
  const uint64_t nnz_before = store.NumNonZero();
  const double sum_abs_before = store.SumAbs();

  const uint64_t pre_merge_epoch = store.epoch();
  EXPECT_GT(store.Merge(), pre_merge_epoch);
  auto merged = store.Snapshot();
  EXPECT_EQ(merged->overlay(), nullptr) << "everything folded into the base";

  std::vector<double> after(keys.size());
  IoStats io;
  ASSERT_TRUE(store.FetchBatch(keys, after, &io).ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(before[i], after[i]) << "key " << keys[i];
  }
  EXPECT_EQ(store.NumNonZero(), nnz_before);
  // SumAbs re-accumulates in the *new* base's iteration order, so only the
  // per-key reads above are bitwise-stable across a merge; the aggregate is
  // equal up to summation-order rounding.
  EXPECT_NEAR(store.SumAbs(), sum_abs_before, 1e-9 * (1.0 + sum_abs_before));
}

TEST(VersionedStoreTest, AutoPublishBoundsSnapshotStaleness) {
  StreamFixture f;
  VersionedStoreOptions options;
  options.publish_every = 4;
  VersionedStore store(f.BuildBase(), options);
  for (size_t i = 0; i < 8; ++i) store.Ingest(f.deltas[i]);
  EXPECT_EQ(store.epoch(), 2u);
  store.Ingest(f.deltas[8]);
  EXPECT_EQ(store.epoch(), 2u) << "partial window stays unpublished";
}

TEST(VersionedStoreTest, SnapshotAnswersMatchBruteForceOverAllIngested) {
  StreamFixture f;
  VersionedStore store(f.BuildBase());
  for (const SparseVec& delta : f.deltas) store.Ingest(delta);
  store.Publish();

  Relation all(f.schema);
  for (const Tuple& t : f.rel.tuples()) all.Add(t);
  for (const Tuple& t : f.stream_rel.tuples()) all.Add(t);

  EvalSession session(f.plan, store.PinVersion());
  ASSERT_TRUE(session.RunToExact().ok());
  for (size_t q = 0; q < f.batch.size(); ++q) {
    const double expected = f.batch.queries()[q].BruteForce(all);
    EXPECT_NEAR(session.Estimates()[q], expected,
                1e-6 * (1.0 + std::abs(expected)))
        << "query " << q;
  }
}

TEST(VersionedStoreTest, SessionPinsItsEpochAtConstruction) {
  StreamFixture f;
  auto store = std::make_shared<VersionedStore>(f.BuildBase());
  for (size_t i = 0; i < 30; ++i) store->Ingest(f.deltas[i]);
  store->Publish();

  // Reference: a full run over the pinned epoch, untouched by writes.
  EvalSession reference(f.plan, store->PinVersion());
  ASSERT_TRUE(reference.RunToExact().ok());

  // Probe: starts at the same epoch, then ingests + merges land mid-run.
  EvalSession probe(f.plan, store);
  ASSERT_GT(probe.TotalSteps(), 20u);
  ASSERT_TRUE(probe.StepBatch(probe.TotalSteps() / 2).ok());
  for (size_t i = 30; i < f.deltas.size(); ++i) store->Ingest(f.deltas[i]);
  store->Publish();
  store->Merge();
  ASSERT_TRUE(probe.RunToExact().ok());

  for (size_t q = 0; q < f.batch.size(); ++q) {
    EXPECT_EQ(probe.Estimates()[q], reference.Estimates()[q])
        << "mid-session writes leaked into query " << q;
  }
  EXPECT_EQ(probe.io(), reference.io());
}

// ---------------------------------------------------------------------------
// Golden interleaved schedules: the plane is a deterministic function of
// its event log. Sessions pinned mid-stream — and then run AFTER the rest
// of the log (more ingests, publishes, merges) has landed — must be
// bit-identical to sessions over a plane rebuilt by replaying the log
// prefix up to the pin. With fault injection on both sides, the identity
// extends to retries (kFail) and skip accounting (kSkip).

enum class EventKind { kIngest, kPublish, kMerge };
struct Event {
  EventKind kind;
  size_t tuple = 0;
};

std::vector<Event> MakeEventLog(size_t num_tuples) {
  std::vector<Event> log;
  for (size_t i = 0; i < num_tuples; ++i) {
    log.push_back({EventKind::kIngest, i});
    if ((i + 1) % 5 == 0) log.push_back({EventKind::kPublish});
    if (i == 40 || i == 90) log.push_back({EventKind::kMerge});
  }
  log.push_back({EventKind::kPublish});
  return log;
}

void ApplyEvent(VersionedStore& store, const StreamFixture& f,
                const Event& event) {
  switch (event.kind) {
    case EventKind::kIngest:
      store.Ingest(f.deltas[event.tuple]);
      break;
    case EventKind::kPublish:
      store.Publish();
      break;
    case EventKind::kMerge:
      store.Merge();
      break;
  }
}

class GoldenScheduleTest
    : public ::testing::TestWithParam<
          std::tuple<ProgressionOrder, FaultPolicy, bool>> {};

TEST_P(GoldenScheduleTest, PinnedSessionsMatchEventLogReplay) {
  const auto [order, policy, sharded] = GetParam();
  StreamFixture f;

  KeyRouter router = KeyRouter::Uniform(f.MaxKey() + 1, sharded ? 4 : 1);
  auto make_plane = [&]() -> std::unique_ptr<VersionedStore> {
    if (!sharded) return std::make_unique<VersionedStore>(f.BuildBase());
    auto base = f.BuildBase();
    return std::make_unique<VersionedStore>(
        std::make_unique<ShardedStore>(MakeHashShards(*base, router), router,
                                       ShardedStoreOptions{}),
        ShardedMergeOptions(router));
  };

  const std::vector<Event> log = MakeEventLog(f.deltas.size());
  const std::vector<size_t> checkpoints = {log.size() / 3, 2 * log.size() / 3,
                                           log.size()};

  // Live pass: pin a snapshot at each checkpoint, keep streaming.
  auto live = make_plane();
  std::vector<std::shared_ptr<const SnapshotStore>> pins;
  size_t next_checkpoint = 0;
  for (size_t i = 0; i <= log.size(); ++i) {
    if (next_checkpoint < checkpoints.size() &&
        i == checkpoints[next_checkpoint]) {
      pins.push_back(live->Snapshot());
      ++next_checkpoint;
    }
    if (i < log.size()) ApplyEvent(*live, f, log[i]);
  }
  ASSERT_EQ(pins.size(), checkpoints.size());

  for (size_t c = 0; c < checkpoints.size(); ++c) {
    // Rebuild: replay the log prefix on a fresh plane.
    auto rebuilt = make_plane();
    for (size_t i = 0; i < checkpoints[c]; ++i) {
      ApplyEvent(*rebuilt, f, log[i]);
    }
    auto rebuilt_pin = rebuilt->Snapshot();
    ASSERT_EQ(pins[c]->epoch(), rebuilt_pin->epoch()) << "checkpoint " << c;

    // Identical deterministic fault schedules on both sides. The pinned
    // snapshots are immutable, so the const_cast never enables a write —
    // the decorator's pass-through Add is simply never called. The fault
    // period interacts with the 9-key lockstep batch in opposite ways per
    // policy. Under kFail the period must exceed the batch size: a faulted
    // batch is retried over the next 9 ordinals, and with period <= 9 every
    // window of 9 consecutive ordinals contains a fault, so the session
    // could never progress. Under kSkip the period must be <= the batch
    // size: a faulted batch at ordinal k (k % period == 0) falls back to 9
    // scalar fetches at ordinals k+1..k+9, and with period 13 that window
    // never reaches the next fault — the fallback would always succeed and
    // degraded mode would go unexercised. Progress is not a concern for
    // kSkip because the scalar fallback always advances.
    FaultInjectionOptions fault_options;
    fault_options.fail_every_n = policy == FaultPolicy::kSkip ? 7 : 13;
    FaultInjectionStore live_faulty(
        const_cast<CoefficientStore*>(
            static_cast<const CoefficientStore*>(pins[c].get())),
        fault_options);
    FaultInjectionStore rebuilt_faulty(
        const_cast<CoefficientStore*>(
            static_cast<const CoefficientStore*>(rebuilt_pin.get())),
        fault_options);

    EvalSession::Options options;
    options.order = order;
    options.seed = 17;
    options.fault_policy = policy;
    EvalSession live_session(f.plan, UnownedStore(live_faulty), options);
    EvalSession rebuilt_session(f.plan, UnownedStore(rebuilt_faulty), options);

    // Lockstep batches; under kFail a faulted batch leaves both sessions
    // unchanged and both fault ordinals advanced, so retries stay aligned.
    while (!live_session.Done()) {
      Result<size_t> a = live_session.StepBatch(9);
      Result<size_t> b = rebuilt_session.StepBatch(9);
      ASSERT_EQ(a.ok(), b.ok()) << "checkpoint " << c;
      if (a.ok()) {
        ASSERT_EQ(*a, *b);
      }
    }
    ASSERT_TRUE(rebuilt_session.Done());

    const double k = pins[c]->SumAbs();
    EXPECT_EQ(k, rebuilt_pin->SumAbs());
    for (size_t q = 0; q < f.batch.size(); ++q) {
      EXPECT_EQ(live_session.Estimates()[q], rebuilt_session.Estimates()[q])
          << "checkpoint " << c << " query " << q;
    }
    EXPECT_EQ(live_session.WorstCaseBound(k),
              rebuilt_session.WorstCaseBound(k));
    EXPECT_EQ(live_session.ExpectedPenalty(f.schema.cell_count()),
              rebuilt_session.ExpectedPenalty(f.schema.cell_count()));
    EXPECT_EQ(live_session.io(), rebuilt_session.io());
    EXPECT_EQ(live_session.SkippedCoefficients(),
              rebuilt_session.SkippedCoefficients());
    EXPECT_EQ(live_session.SkippedImportance(),
              rebuilt_session.SkippedImportance());
    if (policy == FaultPolicy::kSkip) {
      EXPECT_GT(live_session.SkippedCoefficients(), 0u)
          << "the fault schedule must actually exercise degraded mode";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrdersPoliciesSharding, GoldenScheduleTest,
    ::testing::Combine(::testing::Values(ProgressionOrder::kBiggestB,
                                         ProgressionOrder::kRoundRobin,
                                         ProgressionOrder::kKeyOrder,
                                         ProgressionOrder::kRandom),
                       ::testing::Values(FaultPolicy::kFail,
                                         FaultPolicy::kSkip),
                       ::testing::Values(false, true)));

// ---------------------------------------------------------------------------
// Concurrency

TEST(VersionedStoreConcurrencyTest, BackgroundMergeNeverBlocksReadersOrWrites) {
  StreamFixture f;
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool release = false;
  std::atomic<bool> folding{false};

  VersionedStoreOptions options;
  options.merge_fn = [&](const CoefficientStore& base,
                         const DeltaOverlay& overlay) {
    folding.store(true);
    {
      std::unique_lock<std::mutex> lock(gate_mu);
      gate_cv.wait(lock, [&] { return release; });
    }
    auto merged = std::make_unique<HashStore>();
    base.ForEachNonZero(
        [&](uint64_t key, double value) { merged->Add(key, value); });
    for (const auto& [key, value] : overlay.adds) merged->Add(key, value);
    return merged;
  };
  VersionedStore store(f.BuildBase(), options);

  for (size_t i = 0; i < 20; ++i) store.Ingest(f.deltas[i]);
  const uint64_t published = store.Publish();
  auto pre_merge = store.Snapshot();

  ThreadPool pool(1);
  ASSERT_TRUE(store.StartBackgroundMerge(&pool));
  while (!folding.load()) std::this_thread::yield();
  EXPECT_FALSE(store.StartBackgroundMerge(&pool))
      << "one merge in flight at a time";

  // With the fold gated wide open, every reader and writer path must
  // still complete: counted reads, aggregate scans, ingests, publishes.
  IoStats io;
  std::vector<uint64_t> keys;
  pre_merge->ForEachNonZero([&](uint64_t key, double) {
    if (keys.size() < 16) keys.push_back(key);
  });
  std::vector<double> out(keys.size());
  ASSERT_TRUE(store.FetchBatch(keys, out, &io).ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(out[i], pre_merge->Peek(keys[i]));
  }
  for (size_t i = 20; i < 40; ++i) store.Ingest(f.deltas[i]);
  const uint64_t mid_merge_epoch = store.Publish();
  EXPECT_GT(mid_merge_epoch, published);
  // The mid-merge publish still carries the merging overlay, and with the
  // active delta just drained into it, the authoritative view and the
  // published snapshot agree on every key.
  auto mid = store.Snapshot();
  ASSERT_NE(mid->overlay(), nullptr);
  for (uint64_t key : keys) {
    EXPECT_EQ(store.Peek(key), mid->Peek(key)) << "key " << key;
  }

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    release = true;
  }
  gate_cv.notify_all();
  store.WaitForMerge();
  EXPECT_GT(store.epoch(), mid_merge_epoch);

  // Ingests that landed during the fold survived into the post-merge view.
  Relation all(f.schema);
  for (const Tuple& t : f.rel.tuples()) all.Add(t);
  for (size_t i = 0; i < 40; ++i) all.Add(f.stream_rel.tuples()[i]);
  EvalSession session(f.plan, store.PinVersion());
  ASSERT_TRUE(session.RunToExact().ok());
  for (size_t q = 0; q < f.batch.size(); ++q) {
    const double expected = f.batch.queries()[q].BruteForce(all);
    EXPECT_NEAR(session.Estimates()[q], expected,
                1e-6 * (1.0 + std::abs(expected)));
  }
}

TEST(VersionedStoreConcurrencyTest, OneWriterManyPinnedReadersUnderTsan) {
  // The TSan race surface: one writer ingesting, publishing, and
  // background-merging while ≥4 readers pin epochs and run full
  // progressive sessions. Each reader's estimates must match a serial
  // re-run over the very snapshot it pinned — pinned epochs are stable
  // under every interleaving.
  StreamFixture f;
  auto store = std::make_shared<VersionedStore>(f.BuildBase());
  ThreadPool merge_pool(1);

  struct PinnedRun {
    std::shared_ptr<const SnapshotStore> snap;
    std::vector<double> estimates;
    IoStats io;
  };
  std::atomic<bool> stop{false};
  std::mutex runs_mu;
  std::vector<PinnedRun> runs;

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = store->Snapshot();
        EvalSession session(f.plan, snap);
        if (!session.RunToExact().ok()) continue;
        std::lock_guard<std::mutex> lock(runs_mu);
        if (runs.size() < 64) {
          runs.push_back({snap, session.Estimates(), session.io()});
        }
      }
    });
  }

  for (size_t i = 0; i < f.deltas.size(); ++i) {
    store->Ingest(f.deltas[i]);
    if ((i + 1) % 10 == 0) store->Publish();
    if ((i + 1) % 25 == 0) store->StartBackgroundMerge(&merge_pool);
  }
  store->Publish();
  store->WaitForMerge();
  stop.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();

  ASSERT_FALSE(runs.empty());
  for (const PinnedRun& run : runs) {
    EvalSession replay(f.plan, run.snap);
    ASSERT_TRUE(replay.RunToExact().ok());
    for (size_t q = 0; q < f.batch.size(); ++q) {
      EXPECT_EQ(run.estimates[q], replay.Estimates()[q])
          << "epoch " << run.snap->epoch() << " query " << q;
    }
    EXPECT_EQ(run.io, replay.io());
  }
}

}  // namespace
}  // namespace wavebatch
