
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wavelet/dwt1d.cc" "src/wavelet/CMakeFiles/wavebatch_wavelet.dir/dwt1d.cc.o" "gcc" "src/wavelet/CMakeFiles/wavebatch_wavelet.dir/dwt1d.cc.o.d"
  "/root/repo/src/wavelet/dwt_nd.cc" "src/wavelet/CMakeFiles/wavebatch_wavelet.dir/dwt_nd.cc.o" "gcc" "src/wavelet/CMakeFiles/wavebatch_wavelet.dir/dwt_nd.cc.o.d"
  "/root/repo/src/wavelet/filters.cc" "src/wavelet/CMakeFiles/wavebatch_wavelet.dir/filters.cc.o" "gcc" "src/wavelet/CMakeFiles/wavebatch_wavelet.dir/filters.cc.o.d"
  "/root/repo/src/wavelet/impulse.cc" "src/wavelet/CMakeFiles/wavebatch_wavelet.dir/impulse.cc.o" "gcc" "src/wavelet/CMakeFiles/wavebatch_wavelet.dir/impulse.cc.o.d"
  "/root/repo/src/wavelet/lazy_query_transform.cc" "src/wavelet/CMakeFiles/wavebatch_wavelet.dir/lazy_query_transform.cc.o" "gcc" "src/wavelet/CMakeFiles/wavebatch_wavelet.dir/lazy_query_transform.cc.o.d"
  "/root/repo/src/wavelet/query_transform.cc" "src/wavelet/CMakeFiles/wavebatch_wavelet.dir/query_transform.cc.o" "gcc" "src/wavelet/CMakeFiles/wavebatch_wavelet.dir/query_transform.cc.o.d"
  "/root/repo/src/wavelet/sparse_vec.cc" "src/wavelet/CMakeFiles/wavebatch_wavelet.dir/sparse_vec.cc.o" "gcc" "src/wavelet/CMakeFiles/wavebatch_wavelet.dir/sparse_vec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cube/CMakeFiles/wavebatch_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wavebatch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
