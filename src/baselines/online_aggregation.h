#ifndef WAVEBATCH_BASELINES_ONLINE_AGGREGATION_H_
#define WAVEBATCH_BASELINES_ONLINE_AGGREGATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "query/batch.h"

namespace wavebatch {

/// The online-aggregation baseline (Hellerstein, Haas & Wang [7],
/// discussed in the paper's related work): scan tuples in random order and
/// maintain scaled running estimates for every query in the batch. The
/// estimates are unbiased and shareable across the batch, but — the
/// paper's point — "the entire relation must be viewed before results
/// become exact", whereas the wavelet view is exact after the (much
/// smaller) master list.
class OnlineAggregator {
 public:
  /// `total_tuples` is the known relation cardinality used for scaling.
  OnlineAggregator(const QueryBatch* batch, uint64_t total_tuples);

  /// Accounts one scanned tuple (tuples must arrive in random order for
  /// the estimates to be unbiased; i.i.d. generated data qualifies).
  void Observe(const Tuple& tuple);

  /// Accounts a chunk of scanned tuples at once, parallelizing the
  /// per-query containment tests across the shared ThreadPool (each query's
  /// partial sum is accumulated by exactly one worker, in tuple order, so
  /// results are identical to calling Observe per tuple).
  void ObserveMany(std::span<const Tuple> tuples);

  uint64_t tuples_seen() const { return tuples_seen_; }

  /// Current estimates: (total/seen) × partial sums; zeros before any
  /// observation.
  std::vector<double> Estimates() const;

 private:
  const QueryBatch* batch_;
  uint64_t total_tuples_;
  uint64_t tuples_seen_ = 0;
  std::vector<double> partial_sums_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_BASELINES_ONLINE_AGGREGATION_H_
