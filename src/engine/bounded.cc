#include "engine/bounded.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/check.h"

namespace wavebatch {

Result<BoundedRunResult> RunWithBoundedWorkspace(
    const QueryBatch& batch, const LinearStrategy& strategy,
    const CoefficientStore& store, uint64_t max_workspace_coefficients,
    BuildParallelism parallelism) {
  WB_CHECK_GT(max_workspace_coefficients, 0u);
  BoundedRunResult out;
  out.results.resize(batch.size(), 0.0);
  out.error_bounds.resize(batch.size(), 0.0);

  const std::shared_ptr<const CoefficientStore> shared_store =
      UnownedStore(store);
  // Lossy stores (quantized compressed pages) can't deliver bit-exact
  // results; per-query enclosures below keep the run honest. The gate keeps
  // exact stores free of per-key error lookups.
  const bool lossy = store.Lossy();

  std::vector<SparseVec> group;       // materialized coefficient lists
  std::vector<size_t> group_members;  // their batch indices
  uint64_t group_coefficients = 0;

  auto flush = [&]() -> Status {
    if (group.empty()) return Status::OK();
    auto plan = EvalPlan::FromMasterList(
        std::make_shared<const MasterList>(
            MasterList::FromQueryVectors(group, parallelism)),
        /*penalty=*/nullptr, parallelism);
    EvalSession::Options opts;
    opts.order = ProgressionOrder::kKeyOrder;
    EvalSession session(plan, shared_store, opts);
    Status run = session.RunToExact();
    if (!run.ok()) return run;
    const std::vector<double>& estimates = session.Estimates();
    for (size_t g = 0; g < group_members.size(); ++g) {
      out.results[group_members[g]] = estimates[g];
      if (lossy) {
        // Each coefficient the query uses may be off by up to the store's
        // decode bound; the result being linear in the coefficients, the
        // query's error is at most Σ |weight| · ε(key).
        double err = 0.0;
        for (const SparseEntry& entry : group[g].entries()) {
          err += std::abs(entry.value) * store.PeekErrorBound(entry.key);
        }
        out.error_bounds[group_members[g]] = err;
      }
    }
    out.io += session.io();
    out.peak_workspace = std::max(out.peak_workspace, group_coefficients);
    ++out.num_groups;
    group.clear();
    group_members.clear();
    group_coefficients = 0;
    return Status::OK();
  };

  for (size_t qi = 0; qi < batch.size(); ++qi) {
    Result<SparseVec> coeffs = strategy.TransformQuery(batch.query(qi));
    if (!coeffs.ok()) return coeffs.status();
    const uint64_t nnz = coeffs->size();
    if (!group.empty() &&
        group_coefficients + nnz > max_workspace_coefficients) {
      Status flushed = flush();
      if (!flushed.ok()) return flushed;
    }
    group_coefficients += nnz;
    group.push_back(std::move(coeffs).value());
    group_members.push_back(qi);
  }
  Status flushed = flush();
  if (!flushed.ok()) return flushed;
  return out;
}

}  // namespace wavebatch
