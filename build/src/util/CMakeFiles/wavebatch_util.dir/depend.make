# Empty dependencies file for wavebatch_util.
# This may be replaced when dependencies are built.
