// The query-serving front end in one page. Several "dashboard clients"
// submit overlapping range-sum batches to a QueryService; the service
// groups their sessions over one pinned snapshot and merges their per-step
// coefficient needs into cross-session fetch batches, so a coefficient any
// client needs is read from the backend once. Each client still sees the
// paper's per-session I/O accounting — sharing changes backend traffic,
// never the cost model — and each response carries the Theorem-1
// progressive bound it completed with.
//
//   ./build/examples/serving_quickstart

#include <cstdio>
#include <memory>
#include <vector>

#include "data/generators.h"
#include "penalty/sse.h"
#include "server/query_service.h"
#include "strategy/wavelet_strategy.h"

using namespace wavebatch;

int main() {
  // A 64x64 two-attribute cube under a Haar wavelet synopsis.
  Schema schema = Schema::Uniform(2, 64);
  auto strategy = std::make_shared<WaveletStrategy>(schema, WaveletKind::kHaar);
  Relation relation = MakeUniformRelation(schema, 5000, 17);
  std::shared_ptr<const CoefficientStore> store =
      strategy->BuildStore(relation.FrequencyDistribution());
  auto sse = std::make_shared<SsePenalty>();

  // Three clients watching overlapping slices of the same cube — the
  // dashboard-fan-out shape where cross-session sharing pays off.
  std::vector<QueryBatch> clients;
  for (int c = 0; c < 3; ++c) {
    QueryBatch batch(schema);
    const uint32_t lo = static_cast<uint32_t>(8 * c);
    batch.Add(RangeSumQuery::Count(
        Range::Create(schema, {{lo, lo + 31}, {0, 31}}).value()));
    batch.Add(RangeSumQuery::Count(
        Range::Create(schema, {{lo, lo + 31}, {32, 63}}).value()));
    batch.Add(RangeSumQuery::Count(Range::All(schema)));
    clients.push_back(std::move(batch));
  }

  server::QueryServiceOptions options;
  options.max_live_sessions = 8;
  options.default_quantum = 64;
  server::QueryService service(store, strategy, options);

  std::vector<server::QueryResponse> responses(clients.size());
  for (size_t c = 0; c < clients.size(); ++c) {
    server::QueryRequest request(clients[c]);
    request.penalty = sse;
    // Client 2 is a preview pane: it stops as soon as the worst-case
    // penalty bound falls under its target instead of running to exact.
    if (c == 2) request.target_bound = 1e-3;
    Status admitted = service.Submit(
        request, [&responses, c](server::QueryResponse r) {
          responses[c] = std::move(r);
        });
    if (!admitted.ok()) {
      std::printf("client %zu shed: %s\n", c, admitted.ToString().c_str());
      return 1;
    }
  }

  // Deterministic single-threaded drain; Start(n)/Stop() is the threaded
  // equivalent for real deployments.
  service.RunUntilIdle();

  std::printf("%-7s %-6s %12s %12s %10s %12s\n", "client", "exact", "steps",
              "session_io", "bound", "total");
  for (size_t c = 0; c < responses.size(); ++c) {
    const server::QueryResponse& r = responses[c];
    if (!r.status.ok()) return 1;
    std::printf("%-7zu %-6s %8llu/%-3llu %12llu %10.2e %12.1f\n", c,
                r.exact ? "yes" : "no",
                static_cast<unsigned long long>(r.steps_taken),
                static_cast<unsigned long long>(r.total_steps),
                static_cast<unsigned long long>(r.io.retrievals),
                r.worst_case_bound, r.estimates.back());
  }
  std::printf("\nbackend fetches %llu, served warm %llu "
              "(coefficients other clients already paid for)\n",
              static_cast<unsigned long long>(service.shared_misses()),
              static_cast<unsigned long long>(service.shared_hits()));
  return 0;
}
