#include "strategy/linear_strategy.h"

#include <vector>

#include "util/check.h"

namespace wavebatch {

Result<double> LinearStrategy::AnswerQuery(const RangeSumQuery& query,
                                           const CoefficientStore& store,
                                           IoStats* io) const {
  Result<SparseVec> coeffs = TransformQuery(query);
  if (!coeffs.ok()) return coeffs.status();
  std::vector<uint64_t> keys;
  keys.reserve(coeffs->size());
  for (const SparseEntry& e : *coeffs) keys.push_back(e.key);
  std::vector<double> values(keys.size());
  Status status = store.FetchBatch(keys, values, io);
  if (!status.ok()) return status;
  double acc = 0.0;
  for (size_t i = 0; i < coeffs->size(); ++i) {
    acc += (*coeffs)[i].value * values[i];
  }
  return acc;
}

Status LinearStrategy::InsertTuple(CoefficientStore& store, const Tuple& tuple,
                                   double count) const {
  Result<SparseVec> delta = TransformUpdate(tuple, count);
  if (!delta.ok()) return delta.status();
  for (const SparseEntry& e : *delta) store.Add(e.key, e.value);
  return Status::OK();
}

std::unique_ptr<CoefficientStore> LinearStrategy::BuildStoreFromRelation(
    const Relation& relation) const {
  WB_CHECK(relation.schema() == schema_);
  std::unique_ptr<CoefficientStore> store = MakeEmptyStore();
  for (const Tuple& t : relation.tuples()) {
    Status s = InsertTuple(*store, t, 1.0);
    WB_CHECK(s.ok()) << s;
  }
  return store;
}

}  // namespace wavebatch
