#include "query/derived.h"

#include <cmath>

#include "util/check.h"

namespace wavebatch {

AverageHandle PlanAverage(QueryBatch& batch, const Range& range, size_t dim) {
  AverageHandle h;
  h.count_idx = batch.size();
  batch.Add(RangeSumQuery::Count(range));
  h.sum_idx = batch.size();
  batch.Add(RangeSumQuery::Sum(range, dim));
  return h;
}

double FinishAverage(const AverageHandle& h,
                     std::span<const double> results) {
  WB_CHECK_LT(h.count_idx, results.size());
  WB_CHECK_LT(h.sum_idx, results.size());
  const double count = results[h.count_idx];
  if (count == 0.0) return 0.0;
  return results[h.sum_idx] / count;
}

VarianceHandle PlanVariance(QueryBatch& batch, const Range& range,
                            size_t dim) {
  VarianceHandle h;
  h.count_idx = batch.size();
  batch.Add(RangeSumQuery::Count(range));
  h.sum_idx = batch.size();
  batch.Add(RangeSumQuery::Sum(range, dim));
  h.sum_sq_idx = batch.size();
  batch.Add(RangeSumQuery::SumPower(range, dim, 2));
  return h;
}

double FinishVariance(const VarianceHandle& h,
                      std::span<const double> results) {
  WB_CHECK_LT(h.sum_sq_idx, results.size());
  const double count = results[h.count_idx];
  if (count == 0.0) return 0.0;
  const double mean = results[h.sum_idx] / count;
  return results[h.sum_sq_idx] / count - mean * mean;
}

CovarianceHandle PlanCovariance(QueryBatch& batch, const Range& range,
                                size_t dim_i, size_t dim_j) {
  CovarianceHandle h;
  h.count_idx = batch.size();
  batch.Add(RangeSumQuery::Count(range));
  h.sum_i_idx = batch.size();
  batch.Add(RangeSumQuery::Sum(range, dim_i));
  h.sum_j_idx = batch.size();
  batch.Add(RangeSumQuery::Sum(range, dim_j));
  h.sum_ij_idx = batch.size();
  batch.Add(RangeSumQuery::SumProduct(range, dim_i, dim_j));
  return h;
}

double FinishCovariance(const CovarianceHandle& h,
                        std::span<const double> results) {
  WB_CHECK_LT(h.sum_ij_idx, results.size());
  const double count = results[h.count_idx];
  if (count == 0.0) return 0.0;
  const double mean_i = results[h.sum_i_idx] / count;
  const double mean_j = results[h.sum_j_idx] / count;
  return results[h.sum_ij_idx] / count - mean_i * mean_j;
}

CorrelationHandle PlanCorrelation(QueryBatch& batch, const Range& range,
                                  size_t dim_i, size_t dim_j) {
  CorrelationHandle h;
  h.count_idx = batch.size();
  batch.Add(RangeSumQuery::Count(range));
  h.sum_i_idx = batch.size();
  batch.Add(RangeSumQuery::Sum(range, dim_i));
  h.sum_j_idx = batch.size();
  batch.Add(RangeSumQuery::Sum(range, dim_j));
  h.sum_ii_idx = batch.size();
  batch.Add(RangeSumQuery::SumPower(range, dim_i, 2));
  h.sum_jj_idx = batch.size();
  batch.Add(RangeSumQuery::SumPower(range, dim_j, 2));
  h.sum_ij_idx = batch.size();
  batch.Add(RangeSumQuery::SumProduct(range, dim_i, dim_j));
  return h;
}

double FinishCorrelation(const CorrelationHandle& h,
                         std::span<const double> results) {
  WB_CHECK_LT(h.sum_ij_idx, results.size());
  const double count = results[h.count_idx];
  if (count == 0.0) return 0.0;
  const double mean_i = results[h.sum_i_idx] / count;
  const double mean_j = results[h.sum_j_idx] / count;
  const double var_i = results[h.sum_ii_idx] / count - mean_i * mean_i;
  const double var_j = results[h.sum_jj_idx] / count - mean_j * mean_j;
  if (var_i <= 0.0 || var_j <= 0.0) return 0.0;
  const double cov = results[h.sum_ij_idx] / count - mean_i * mean_j;
  return cov / std::sqrt(var_i * var_j);
}

RegressionHandle PlanRegression(QueryBatch& batch, const Range& range,
                                size_t dim_i, size_t dim_j) {
  RegressionHandle h;
  h.count_idx = batch.size();
  batch.Add(RangeSumQuery::Count(range));
  h.sum_i_idx = batch.size();
  batch.Add(RangeSumQuery::Sum(range, dim_i));
  h.sum_j_idx = batch.size();
  batch.Add(RangeSumQuery::Sum(range, dim_j));
  h.sum_ii_idx = batch.size();
  batch.Add(RangeSumQuery::SumPower(range, dim_i, 2));
  h.sum_ij_idx = batch.size();
  batch.Add(RangeSumQuery::SumProduct(range, dim_i, dim_j));
  return h;
}

RegressionResult FinishRegression(const RegressionHandle& h,
                                  std::span<const double> results) {
  WB_CHECK_LT(h.sum_ij_idx, results.size());
  RegressionResult out;
  const double count = results[h.count_idx];
  if (count == 0.0) return out;
  const double mean_i = results[h.sum_i_idx] / count;
  const double mean_j = results[h.sum_j_idx] / count;
  const double var_i = results[h.sum_ii_idx] / count - mean_i * mean_i;
  if (var_i <= 0.0) {
    out.intercept = mean_j;
    return out;
  }
  const double cov = results[h.sum_ij_idx] / count - mean_i * mean_j;
  out.slope = cov / var_i;
  out.intercept = mean_j - out.slope * mean_i;
  return out;
}

}  // namespace wavebatch
