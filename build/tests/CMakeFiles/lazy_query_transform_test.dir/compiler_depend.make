# Empty compiler generated dependencies file for lazy_query_transform_test.
# This may be replaced when dependencies are built.
