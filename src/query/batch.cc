#include "query/batch.h"

#include <algorithm>

#include "util/check.h"

namespace wavebatch {

void QueryBatch::Add(RangeSumQuery query) {
  WB_CHECK_EQ(query.range().num_dims(), schema_.num_dims());
  queries_.push_back(std::move(query));
}

uint32_t QueryBatch::MaxVarDegree() const {
  uint32_t deg = 0;
  for (const RangeSumQuery& q : queries_) {
    deg = std::max(deg, q.MaxVarDegree());
  }
  return deg;
}

std::vector<double> QueryBatch::BruteForce(const Relation& relation) const {
  std::vector<double> results(queries_.size(), 0.0);
  for (const Tuple& t : relation.tuples()) {
    for (size_t i = 0; i < queries_.size(); ++i) {
      if (queries_[i].range().Contains(t)) {
        results[i] += queries_[i].poly().Evaluate(t);
      }
    }
  }
  return results;
}

std::vector<double> QueryBatch::BruteForce(const DenseCube& delta) const {
  std::vector<double> results(queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    results[i] = queries_[i].BruteForce(delta);
  }
  return results;
}

}  // namespace wavebatch
