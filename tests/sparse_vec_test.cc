#include "wavelet/sparse_vec.h"

#include "gtest/gtest.h"

namespace wavebatch {
namespace {

TEST(SparseVecTest, FromUnsortedSortsAndMerges) {
  SparseVec v = SparseVec::FromUnsorted({{5, 1.0}, {2, 2.0}, {5, 3.0}});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].key, 2u);
  EXPECT_DOUBLE_EQ(v[0].value, 2.0);
  EXPECT_EQ(v[1].key, 5u);
  EXPECT_DOUBLE_EQ(v[1].value, 4.0);
}

TEST(SparseVecTest, FromUnsortedDropsCancellations) {
  SparseVec v = SparseVec::FromUnsorted({{3, 1.0}, {3, -1.0}, {1, 0.5}});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].key, 1u);
}

TEST(SparseVecTest, EpsilonThreshold) {
  SparseVec v =
      SparseVec::FromUnsorted({{1, 1e-15}, {2, 1.0}, {3, -1e-15}}, 1e-12);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].key, 2u);
}

TEST(SparseVecTest, FromSorted) {
  SparseVec v = SparseVec::FromSorted({{1, 1.0}, {4, 2.0}});
  EXPECT_EQ(v.size(), 2u);
}

TEST(SparseVecTest, DotMergeJoin) {
  SparseVec a = SparseVec::FromUnsorted({{1, 2.0}, {3, 1.0}, {7, -1.0}});
  SparseVec b = SparseVec::FromUnsorted({{2, 5.0}, {3, 4.0}, {7, 2.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 1.0 * 4.0 + (-1.0) * 2.0);
  EXPECT_DOUBLE_EQ(b.Dot(a), a.Dot(b));
}

TEST(SparseVecTest, DotWithEmpty) {
  SparseVec a = SparseVec::FromUnsorted({{1, 2.0}});
  SparseVec empty;
  EXPECT_DOUBLE_EQ(a.Dot(empty), 0.0);
  EXPECT_TRUE(empty.empty());
}

TEST(SparseVecTest, ValueAt) {
  SparseVec v = SparseVec::FromUnsorted({{10, 3.0}, {20, -1.0}});
  EXPECT_DOUBLE_EQ(v.ValueAt(10), 3.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(20), -1.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(15), 0.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(0), 0.0);
  EXPECT_DOUBLE_EQ(v.ValueAt(100), 0.0);
}

TEST(SparseVecTest, Norms) {
  SparseVec v = SparseVec::FromUnsorted({{1, 3.0}, {2, -4.0}});
  EXPECT_DOUBLE_EQ(v.SumAbs(), 7.0);
  EXPECT_DOUBLE_EQ(v.SumSquares(), 25.0);
}

TEST(SparseVecTest, Scale) {
  SparseVec v = SparseVec::FromUnsorted({{1, 3.0}});
  v.Scale(-2.0);
  EXPECT_DOUBLE_EQ(v[0].value, -6.0);
}

TEST(SparseVecTest, RangeForIteration) {
  SparseVec v = SparseVec::FromUnsorted({{1, 1.0}, {2, 2.0}});
  double sum = 0.0;
  for (const SparseEntry& e : v) sum += e.value;
  EXPECT_DOUBLE_EQ(sum, 3.0);
}

TEST(SparseAccumulatorTest, AccumulatesByKey) {
  SparseAccumulator acc;
  acc.Add(7, 1.0);
  acc.Add(7, 2.5);
  acc.Add(3, -1.0);
  EXPECT_EQ(acc.size(), 2u);
  SparseVec v = acc.ToVec();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v.ValueAt(7), 3.5);
  EXPECT_DOUBLE_EQ(v.ValueAt(3), -1.0);
}

TEST(SparseAccumulatorTest, ToVecThreshold) {
  SparseAccumulator acc;
  acc.Add(1, 1.0);
  acc.Add(1, -1.0 + 1e-16);
  acc.Add(2, 1.0);
  SparseVec v = acc.ToVec(1e-12);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].key, 2u);
}

}  // namespace
}  // namespace wavebatch
