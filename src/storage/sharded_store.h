#ifndef WAVEBATCH_STORAGE_SHARDED_STORE_H_
#define WAVEBATCH_STORAGE_SHARDED_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/coefficient_store.h"
#include "storage/key_router.h"
#include "util/epoch_ptr.h"
#include "util/thread_pool.h"

namespace wavebatch {

/// Knobs for the sharded coefficient plane.
struct ShardedStoreOptions {
  /// Dedicated worker threads per shard. With N >= 1 every shard owns a
  /// private ThreadPool and scatter-gather fans sub-batches out to those
  /// pools (thread affinity: shard s's I/O always runs on shard s's
  /// workers, modeling one device queue per shard). 0 disables the fan-out:
  /// sub-batches run serially on the calling thread, in shard order — the
  /// deterministic mode for accounting tests.
  size_t threads_per_shard = 1;

  /// Hot/cold tiering granularity: keys are grouped into ranges of
  /// 2^hot_range_bits consecutive keys and promotion happens per range
  /// (range id = key >> hot_range_bits).
  uint32_t hot_range_bits = 6;

  /// A range is promotion-eligible at the next Rebalance() once it has
  /// absorbed at least this many counted fetches since the previous
  /// Rebalance(). 0 disables promotion entirely (Rebalance() still bumps
  /// the epoch but installs an empty tier).
  uint64_t promote_min_fetches = 64;

  /// Upper bound on simultaneously hot ranges; the hottest win (ties break
  /// toward the lower range id). 0 means unlimited.
  size_t max_hot_ranges = 1024;
};

/// Result of one Rebalance(): which epoch the new tier belongs to and how
/// much of the key space it replicated.
struct RebalanceReport {
  uint64_t epoch = 0;
  size_t hot_ranges = 0;
  size_t hot_keys = 0;
};

/// The sharded coefficient plane: a CoefficientStore that range-partitions
/// the wavelet-key space across S independent backend stores (KeyRouter
/// decides ownership) and serves batches by scatter-gather — partition the
/// key batch per shard, fan the sub-batches out to per-shard thread pools,
/// merge the results. Identical contract to any other store: same values a
/// scalar Fetch loop would produce, all-or-nothing batches, per-call
/// IoStats sinks (a merged sink receives the *sum* of the per-shard
/// sub-model counters, so sharding never changes the cost model — enforced
/// by sharded_store_test against the unsharded plane).
///
/// Every shard is a full store over the global key space; the router alone
/// decides which shard serves a key. That keeps shard backends oblivious
/// to sharding (no key rebasing) and lets any backend mix serve as a
/// shard, including decorator-wrapped ones: wrapping one shard in a
/// FaultInjectionStore composes per-shard — a failed shard fails exactly
/// the batches that touch its keys, which the engine's FaultPolicy::kSkip
/// then degrades to scalar fetches, skipping only that shard's mass.
///
/// Hot/cold tiering: the store counts fetches per key range; an explicit
/// Rebalance() call promotes the hottest ranges into a replicated
/// in-memory tier (a snapshot of the owning shards' values) and retires
/// the previous tier. Reads pin the tier once per call, so a concurrent
/// Rebalance() never tears a batch — every key in one batch is served
/// from one epoch's placement. Until the first Rebalance() no hot tier
/// exists and the plane is bit-identical to its backends (including
/// sub-model counters like block_reads); after promotion, hot keys are
/// served from memory (no backend I/O, no block reads) while cold keys
/// still go to their shard.
///
/// Writes: Add routes to the owning shard (the authoritative copy). The
/// hot tier is a snapshot — a hot key written after promotion serves the
/// snapshot value until the next Rebalance() refreshes it. Load or
/// maintain the plane first, then share it read-only, exactly like every
/// other store.
class ShardedStore : public CoefficientStore {
 public:
  /// Takes ownership of `shards`; requires shards.size() ==
  /// router.num_shards() >= 1.
  ShardedStore(std::vector<std::unique_ptr<CoefficientStore>> shards,
               KeyRouter router,
               ShardedStoreOptions options = ShardedStoreOptions());
  ~ShardedStore() override;

  double Peek(uint64_t key) const override;
  void Add(uint64_t key, double delta) override;
  uint64_t NumNonZero() const override;
  double SumAbs() const override;
  void ForEachNonZero(
      const std::function<void(uint64_t, double)>& fn) const override;
  std::string name() const override;
  const KeyRouter* router() const override { return &router_; }

  /// Routes to the owning shard. The bound also covers hot-tier hits: the
  /// tier snapshots the owning shard's (possibly decoded) values, so the
  /// shard's error bound still bounds what any read of `key` returns.
  double PeekErrorBound(uint64_t key) const override {
    return shards_[router_.ShardOf(key)]->PeekErrorBound(key);
  }
  /// True when ANY shard's read path can be lossy.
  bool Lossy() const override {
    for (const auto& shard : shards_) {
      if (shard->Lossy()) return true;
    }
    return false;
  }

  size_t num_shards() const { return shards_.size(); }
  const CoefficientStore& shard(size_t s) const { return *shards_[s]; }
  const ShardedStoreOptions& options() const { return options_; }

  /// Recomputes hot-tier placement from the fetch counts observed since the
  /// last Rebalance(): ranges with >= promote_min_fetches hits are ranked
  /// (hits descending, range id ascending), the top max_hot_ranges are
  /// snapshotted from their owning shards into a fresh in-memory tier, the
  /// tier is swapped in atomically, and the epoch advances. In-flight
  /// batches keep the tier they pinned; new ones see the new placement.
  /// Safe to call concurrently with reads (the race surface exercised by
  /// the TSan job).
  RebalanceReport Rebalance();

  /// Tiering epoch: 0 before the first Rebalance(), +1 per Rebalance().
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  /// Counted keys served from the in-memory hot tier.
  uint64_t hot_hits() const {
    return hot_hits_.load(std::memory_order_relaxed);
  }
  /// Counted keys served by shard s's backend (cold path).
  uint64_t shard_keys_fetched(size_t s) const;
  /// Per-shard sub-batches issued by batch scatter-gather. Deterministic
  /// for a fixed workload and shard count — the machine-independent
  /// routing counter the bench baseline gates on.
  uint64_t subbatches_issued() const {
    return subbatches_.load(std::memory_order_relaxed);
  }

 protected:
  Result<double> DoFetch(uint64_t key, IoStats* io) const override;
  Status DoFetchBatch(std::span<const uint64_t> keys, std::span<double> out,
                      IoStats* io) const override;
  Status DoFetchBatchRouted(std::span<const uint64_t> keys,
                            std::span<const uint32_t> shards,
                            std::span<double> out, IoStats* io) const override;

 private:
  /// One immutable tier placement. Readers pin it once per call through the
  /// EpochPtr slot, so Rebalance() swapping in a successor can never tear a
  /// read.
  struct HotTier {
    uint64_t epoch = 0;
    std::unordered_set<uint64_t> ranges;
    std::unordered_map<uint64_t, double> values;  // nonzero snapshot
  };

  struct alignas(64) ShardCounters {
    std::atomic<uint64_t> keys_fetched{0};
  };

  std::shared_ptr<const HotTier> PinTier() const { return hot_.Pin(); }

  uint64_t RangeOf(uint64_t key) const {
    return key >> options_.hot_range_bits;
  }

  /// The scatter-gather core shared by both batch hooks. `shards_of` has
  /// one shard id per key (precomputed hints or this call's routing pass).
  Status FetchScatterGather(std::span<const uint64_t> keys,
                            std::span<const uint32_t> shards_of,
                            std::span<double> out, IoStats* io) const;

  /// Merges a batch's per-range hit counts into the promotion stats.
  void RecordRangeHits(
      const std::unordered_map<uint64_t, uint64_t>& batch_hits) const;

  KeyRouter router_;
  std::vector<std::unique_ptr<CoefficientStore>> shards_;
  ShardedStoreOptions options_;

  /// Declared after shards_ so pools join (and drop their last references
  /// to shard backends) before any shard is destroyed.
  std::vector<std::unique_ptr<ThreadPool>> pools_;

  EpochPtr<HotTier> hot_;  // pins null until the first promotion
  std::atomic<uint64_t> epoch_{0};

  mutable std::mutex hits_mu_;
  mutable std::unordered_map<uint64_t, uint64_t> range_hits_;

  std::unique_ptr<ShardCounters[]> shard_counters_;
  mutable std::atomic<uint64_t> hot_hits_{0};
  mutable std::atomic<uint64_t> subbatches_{0};

  /// Process-wide shard/tier telemetry, labeled by store name (and shard
  /// ordinal where applicable); bound in the constructor body.
  std::vector<telemetry::Counter*> shard_keys_metric_;
  telemetry::Counter* hot_keys_metric_;
  telemetry::Counter* cold_keys_metric_;
  telemetry::Counter* subbatches_metric_;
  telemetry::Gauge* hot_ranges_gauge_;
  telemetry::Gauge* hot_keys_gauge_;
  telemetry::Gauge* epoch_gauge_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STORAGE_SHARDED_STORE_H_
