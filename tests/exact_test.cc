#include "core/exact.h"

#include "data/generators.h"
#include "gtest/gtest.h"
#include "strategy/prefix_sum_strategy.h"
#include "strategy/wavelet_strategy.h"
#include "util/random.h"

namespace wavebatch {
namespace {

struct Harness {
  Schema schema = Schema::Uniform(2, 16);
  Relation rel;
  QueryBatch batch;
  std::vector<SparseVec> query_coeffs;
  MasterList list;

  explicit Harness(const LinearStrategy& strategy, size_t num_queries = 8)
      : rel(MakeUniformRelation(schema, 400, 3)), batch(schema) {
    Rng rng(5);
    for (size_t i = 0; i < num_queries; ++i) {
      std::vector<Interval> ivs;
      for (size_t d = 0; d < 2; ++d) {
        uint32_t lo = static_cast<uint32_t>(rng.UniformInt(16));
        uint32_t hi = lo + static_cast<uint32_t>(rng.UniformInt(16 - lo));
        ivs.push_back({lo, hi});
      }
      batch.Add(RangeSumQuery::Count(
          Range::Create(schema, ivs).value()));
    }
    for (const RangeSumQuery& q : batch.queries()) {
      query_coeffs.push_back(strategy.TransformQuery(q).value());
    }
    list = MasterList::FromQueryVectors(query_coeffs);
  }
};

TEST(ExactTest, NaiveAndSharedAgreeWithBruteForce) {
  Schema schema = Schema::Uniform(2, 16);
  WaveletStrategy strategy(schema, WaveletKind::kHaar);
  Harness setup(strategy);
  auto store = strategy.BuildStore(setup.rel.FrequencyDistribution());

  std::vector<double> expected = setup.batch.BruteForce(setup.rel);
  ExactBatchResult naive = EvaluateNaive(setup.query_coeffs, *store);
  ExactBatchResult shared = EvaluateShared(setup.list, *store);
  ASSERT_EQ(naive.results.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(naive.results[i], expected[i], 1e-6 * (1 + expected[i]));
    EXPECT_NEAR(shared.results[i], expected[i], 1e-6 * (1 + expected[i]));
  }
}

TEST(ExactTest, SharedRetrievalCountIsMasterListSize) {
  Schema schema = Schema::Uniform(2, 16);
  WaveletStrategy strategy(schema, WaveletKind::kHaar);
  Harness setup(strategy);
  auto store = strategy.BuildStore(setup.rel.FrequencyDistribution());
  ExactBatchResult shared = EvaluateShared(setup.list, *store);
  EXPECT_EQ(shared.retrievals, setup.list.size());
}

TEST(ExactTest, NaiveRetrievalCountIsSumOfQuerySizes) {
  Schema schema = Schema::Uniform(2, 16);
  WaveletStrategy strategy(schema, WaveletKind::kHaar);
  Harness setup(strategy);
  auto store = strategy.BuildStore(setup.rel.FrequencyDistribution());
  ExactBatchResult naive = EvaluateNaive(setup.query_coeffs, *store);
  EXPECT_EQ(naive.retrievals, setup.list.TotalQueryCoefficients());
}

TEST(ExactTest, SharingNeverIncreasesIo) {
  Schema schema = Schema::Uniform(2, 16);
  WaveletStrategy strategy(schema, WaveletKind::kDb4);
  Harness setup(strategy, 16);
  auto store = strategy.BuildStore(setup.rel.FrequencyDistribution());
  ExactBatchResult naive = EvaluateNaive(setup.query_coeffs, *store);
  ExactBatchResult shared = EvaluateShared(setup.list, *store);
  EXPECT_LE(shared.retrievals, naive.retrievals);
  EXPECT_LT(shared.retrievals, naive.retrievals);  // overlap guaranteed here
}

TEST(ExactTest, WorksWithPrefixSums) {
  Schema schema = Schema::Uniform(2, 16);
  PrefixSumStrategy strategy(schema, {{0, 0}});
  Harness setup(strategy);
  auto store = strategy.BuildStore(setup.rel.FrequencyDistribution());
  std::vector<double> expected = setup.batch.BruteForce(setup.rel);
  ExactBatchResult shared = EvaluateShared(setup.list, *store);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(shared.results[i], expected[i], 1e-9);
  }
  // At most 4 corners per 2-D query.
  EXPECT_LE(shared.retrievals, 4u * setup.batch.size());
}

TEST(ExactTest, EmptyBatch) {
  Schema schema = Schema::Uniform(2, 16);
  WaveletStrategy strategy(schema, WaveletKind::kHaar);
  auto store = strategy.BuildStore(DenseCube(schema));
  MasterList list = MasterList::FromQueryVectors({});
  ExactBatchResult r = EvaluateShared(list, *store);
  EXPECT_TRUE(r.results.empty());
  EXPECT_EQ(r.retrievals, 0u);
}

}  // namespace
}  // namespace wavebatch
