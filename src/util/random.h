#ifndef WAVEBATCH_UTIL_RANDOM_H_
#define WAVEBATCH_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wavebatch {

/// Deterministic pseudo-random generator (xoshiro256** core) with the
/// distributions the library's generators and tests need. All wavebatch
/// randomness flows through explicitly seeded Rng instances so that every
/// experiment is reproducible run-to-run.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Standard normal variate (Box–Muller).
  double Gaussian();

  /// Zipf-distributed integer in [0, n) with exponent `s` (s >= 0; s = 0 is
  /// uniform). Uses inverse-CDF over precomputable weights for small n and
  /// rejection-inversion for large n.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct values from [0, n) in increasing order.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

 private:
  uint64_t s_[4];
  bool have_gauss_ = false;
  double cached_gauss_ = 0.0;
  // Cached Zipf CDF for the most recent (n, s) pair.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_UTIL_RANDOM_H_
