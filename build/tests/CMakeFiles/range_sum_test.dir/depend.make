# Empty dependencies file for range_sum_test.
# This may be replaced when dependencies are built.
