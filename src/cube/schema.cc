#include "cube/schema.h"

#include <set>

#include "util/bits.h"
#include "util/check.h"

namespace wavebatch {

Result<Schema> Schema::Create(std::vector<Dimension> dims) {
  if (dims.empty()) {
    return Status::InvalidArgument("schema needs at least one dimension");
  }
  std::set<std::string> names;
  uint32_t total_bits = 0;
  std::vector<uint32_t> bits;
  bits.reserve(dims.size());
  for (const Dimension& d : dims) {
    if (d.name.empty()) {
      return Status::InvalidArgument("dimension name must be non-empty");
    }
    if (!names.insert(d.name).second) {
      return Status::InvalidArgument("duplicate dimension name: " + d.name);
    }
    if (d.size < 2 || !IsPowerOfTwo(d.size)) {
      return Status::InvalidArgument("dimension '" + d.name +
                                     "' size must be a power of two >= 2");
    }
    bits.push_back(ExactLog2(d.size));
    total_bits += bits.back();
  }
  if (total_bits > 62) {
    return Status::InvalidArgument(
        "domain too large: cell ids must fit in 62 bits");
  }
  Schema s;
  s.dims_ = std::move(dims);
  s.bits_ = std::move(bits);
  s.total_bits_ = total_bits;
  return s;
}

Schema Schema::Uniform(size_t num_dims, uint32_t size) {
  std::vector<Dimension> dims;
  dims.reserve(num_dims);
  for (size_t i = 0; i < num_dims; ++i) {
    dims.push_back({"d" + std::to_string(i), size});
  }
  Result<Schema> r = Create(std::move(dims));
  WB_CHECK(r.ok()) << r.status();
  return std::move(r).value();
}

Result<size_t> Schema::DimIndex(const std::string& name) const {
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i].name == name) return i;
  }
  return Status::NotFound("no dimension named '" + name + "'");
}

bool Schema::Contains(std::span<const uint32_t> coords) const {
  if (coords.size() != dims_.size()) return false;
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (coords[i] >= dims_[i].size) return false;
  }
  return true;
}

uint64_t Schema::Pack(std::span<const uint32_t> coords) const {
  WB_CHECK(Contains(coords)) << "coords out of domain for " << ToString();
  uint64_t cell = 0;
  for (size_t i = 0; i < dims_.size(); ++i) {
    cell = (cell << bits_[i]) | coords[i];
  }
  return cell;
}

std::vector<uint32_t> Schema::Unpack(uint64_t cell) const {
  WB_CHECK_LT(cell, cell_count());
  std::vector<uint32_t> coords(dims_.size());
  for (size_t i = dims_.size(); i-- > 0;) {
    coords[i] = static_cast<uint32_t>(cell & ((uint64_t{1} << bits_[i]) - 1));
    cell >>= bits_[i];
  }
  return coords;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i) out += " x ";
    out += dims_[i].name + ":" + std::to_string(dims_[i].size);
  }
  return out;
}

}  // namespace wavebatch
