
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block_store.cc" "src/storage/CMakeFiles/wavebatch_storage.dir/block_store.cc.o" "gcc" "src/storage/CMakeFiles/wavebatch_storage.dir/block_store.cc.o.d"
  "/root/repo/src/storage/dense_store.cc" "src/storage/CMakeFiles/wavebatch_storage.dir/dense_store.cc.o" "gcc" "src/storage/CMakeFiles/wavebatch_storage.dir/dense_store.cc.o.d"
  "/root/repo/src/storage/file_store.cc" "src/storage/CMakeFiles/wavebatch_storage.dir/file_store.cc.o" "gcc" "src/storage/CMakeFiles/wavebatch_storage.dir/file_store.cc.o.d"
  "/root/repo/src/storage/memory_store.cc" "src/storage/CMakeFiles/wavebatch_storage.dir/memory_store.cc.o" "gcc" "src/storage/CMakeFiles/wavebatch_storage.dir/memory_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wavelet/CMakeFiles/wavebatch_wavelet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wavebatch_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/wavebatch_cube.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
