#include <cmath>

#include "baselines/compressed_view.h"
#include "baselines/online_aggregation.h"
#include "core/exact.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "strategy/wavelet_strategy.h"
#include "util/random.h"

namespace wavebatch {
namespace {

TEST(CompressedViewTest, KeepsExactlyTheLargestCoefficients) {
  HashStore store;
  store.Add(1, 5.0);
  store.Add(2, -10.0);
  store.Add(3, 1.0);
  store.Add(4, 7.0);
  auto compressed = CompressTopCoefficients(store, 2);
  EXPECT_EQ(compressed->NumNonZero(), 2u);
  EXPECT_DOUBLE_EQ(compressed->Peek(2), -10.0);
  EXPECT_DOUBLE_EQ(compressed->Peek(4), 7.0);
  EXPECT_DOUBLE_EQ(compressed->Peek(1), 0.0);
}

TEST(CompressedViewTest, KeepAllIsLossless) {
  HashStore store;
  for (uint64_t k = 0; k < 20; ++k) store.Add(k, static_cast<double>(k) - 10);
  auto compressed = CompressTopCoefficients(store, 100);
  EXPECT_EQ(compressed->NumNonZero(), store.NumNonZero());
  for (uint64_t k = 0; k < 20; ++k) {
    EXPECT_DOUBLE_EQ(compressed->Peek(k), store.Peek(k));
  }
}

TEST(CompressedViewTest, KeepZeroIsEmpty) {
  HashStore store;
  store.Add(1, 1.0);
  auto compressed = CompressTopCoefficients(store, 0);
  EXPECT_EQ(compressed->NumNonZero(), 0u);
}

TEST(CompressedViewTest, QueryErrorShrinksWithBudget) {
  // Larger synopses answer more accurately (on data with wavelet decay).
  Schema schema = Schema::Uniform(2, 32);
  Relation rel = MakeGaussianClustersRelation(schema, 3000, 3, 0.1, 5);
  WaveletStrategy strategy(schema, WaveletKind::kHaar);
  auto full = strategy.BuildStore(rel.FrequencyDistribution());
  QueryBatch batch(schema);
  Rng rng(7);
  for (int i = 0; i < 12; ++i) {
    uint32_t lo = static_cast<uint32_t>(rng.UniformInt(32));
    uint32_t hi = lo + static_cast<uint32_t>(rng.UniformInt(32 - lo));
    batch.Add(RangeSumQuery::Count(Range::All(schema).Restrict(0, lo, hi)));
  }
  MasterList list = MasterList::Build(batch, strategy).value();
  std::vector<double> exact = EvaluateShared(list, *full).results;
  auto sse_of = [&](CoefficientStore& store) {
    ExactBatchResult res = EvaluateShared(list, store);
    double acc = 0.0;
    for (size_t i = 0; i < exact.size(); ++i) {
      const double e = res.results[i] - exact[i];
      acc += e * e;
    }
    return acc;
  };
  auto tiny = CompressTopCoefficients(*full, 16);
  auto medium = CompressTopCoefficients(*full, 256);
  auto huge = CompressTopCoefficients(*full, full->NumNonZero());
  EXPECT_GE(sse_of(*tiny), sse_of(*medium));
  EXPECT_NEAR(sse_of(*huge), 0.0, 1e-6);
}

TEST(OnlineAggregationTest, ExactAfterFullScan) {
  Schema schema = Schema::Uniform(2, 16);
  Relation rel = MakeUniformRelation(schema, 500, 3);
  QueryBatch batch(schema);
  batch.Add(RangeSumQuery::Count(Range::All(schema).Restrict(0, 2, 9)));
  batch.Add(RangeSumQuery::Sum(Range::All(schema), 1));
  OnlineAggregator agg(&batch, rel.num_tuples());
  for (const Tuple& t : rel.tuples()) agg.Observe(t);
  std::vector<double> expected = batch.BruteForce(rel);
  std::vector<double> got = agg.Estimates();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-9);
  }
  EXPECT_EQ(agg.tuples_seen(), rel.num_tuples());
}

TEST(OnlineAggregationTest, ZeroBeforeAnyObservation) {
  Schema schema = Schema::Uniform(1, 8);
  QueryBatch batch(schema);
  batch.Add(RangeSumQuery::Count(Range::All(schema)));
  OnlineAggregator agg(&batch, 100);
  EXPECT_EQ(agg.Estimates()[0], 0.0);
}

TEST(OnlineAggregationTest, PrefixEstimateIsApproximatelyUnbiased) {
  // Over many random datasets, the half-scan COUNT estimate averages to
  // the true count.
  Schema schema = Schema::Uniform(1, 16);
  Range half = Range::All(schema).Restrict(0, 0, 7);
  double mean_estimate = 0.0;
  const int kTrials = 60;
  const uint64_t kTuples = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    Relation rel = MakeUniformRelation(schema, kTuples, 100 + trial);
    QueryBatch batch(schema);
    batch.Add(RangeSumQuery::Count(half));
    OnlineAggregator agg(&batch, kTuples);
    for (uint64_t i = 0; i < kTuples / 2; ++i) agg.Observe(rel.tuple(i));
    mean_estimate += agg.Estimates()[0];
  }
  mean_estimate /= kTrials;
  // True expected count: half the domain => ~200.
  EXPECT_NEAR(mean_estimate, 200.0, 10.0);
}

TEST(OnlineAggregationTest, ScalingUsesTotalCardinality) {
  Schema schema = Schema::Uniform(1, 4);
  QueryBatch batch(schema);
  batch.Add(RangeSumQuery::Count(Range::All(schema)));
  OnlineAggregator agg(&batch, 1000);
  agg.Observe({0});
  agg.Observe({1});
  // 2 of 2 observed tuples match; scaled to the full relation.
  EXPECT_DOUBLE_EQ(agg.Estimates()[0], 1000.0);
}

}  // namespace
}  // namespace wavebatch
