#include "query/partition.h"

#include <set>

#include "gtest/gtest.h"

namespace wavebatch {
namespace {

// Verifies the cells tile `box` exactly: total volume matches and no two
// cells overlap (checked per dimension-interval structure).
void ExpectTiles(const GridPartition& partition, const Range& box) {
  uint64_t volume = 0;
  for (const Range& cell : partition.cells()) volume += cell.Volume();
  EXPECT_EQ(volume, box.Volume());
  // Disjointness: for any two distinct cells some dimension's intervals are
  // disjoint.
  for (size_t a = 0; a < partition.num_cells(); ++a) {
    for (size_t b = a + 1; b < partition.num_cells(); ++b) {
      const Range& ra = partition.cell(a);
      const Range& rb = partition.cell(b);
      bool disjoint_somewhere = false;
      for (size_t d = 0; d < ra.num_dims(); ++d) {
        if (ra.interval(d).hi < rb.interval(d).lo ||
            rb.interval(d).hi < ra.interval(d).lo) {
          disjoint_somewhere = true;
          break;
        }
      }
      EXPECT_TRUE(disjoint_somewhere) << "cells " << a << " and " << b;
    }
  }
}

TEST(GridPartitionTest, UniformTilesDomain) {
  Schema schema = Schema::Uniform(2, 16);
  Range all = Range::All(schema);
  const std::vector<size_t> parts = {4, 2};
  GridPartition p = GridPartition::Uniform(schema, all, parts);
  EXPECT_EQ(p.num_cells(), 8u);
  ExpectTiles(p, all);
}

TEST(GridPartitionTest, RandomTilesDomain) {
  Schema schema = Schema::Uniform(3, 16);
  Range all = Range::All(schema);
  const std::vector<size_t> parts = {4, 3, 2};
  Rng rng(7);
  GridPartition p = GridPartition::Random(schema, all, parts, rng);
  EXPECT_EQ(p.num_cells(), 24u);
  ExpectTiles(p, all);
}

TEST(GridPartitionTest, RandomOfSubBox) {
  Schema schema = Schema::Uniform(2, 32);
  Range box = Range::All(schema).Restrict(0, 4, 19).Restrict(1, 8, 15);
  Rng rng(9);
  const std::vector<size_t> parts = {4, 2};
  GridPartition p = GridPartition::Random(schema, box, parts, rng);
  ExpectTiles(p, box);
  for (const Range& cell : p.cells()) {
    EXPECT_GE(cell.interval(0).lo, 4u);
    EXPECT_LE(cell.interval(0).hi, 19u);
    EXPECT_GE(cell.interval(1).lo, 8u);
    EXPECT_LE(cell.interval(1).hi, 15u);
  }
}

TEST(GridPartitionTest, SinglePartIsWholeInterval) {
  Schema schema = Schema::Uniform(2, 8);
  const std::vector<size_t> parts = {1, 4};
  GridPartition p = GridPartition::Uniform(schema, Range::All(schema), parts);
  EXPECT_EQ(p.num_cells(), 4u);
  for (const Range& cell : p.cells()) {
    EXPECT_EQ(cell.interval(0).lo, 0u);
    EXPECT_EQ(cell.interval(0).hi, 7u);
  }
}

TEST(GridPartitionTest, MaxPartsGivesUnitCells) {
  Schema schema = Schema::Uniform(1, 8);
  Rng rng(3);
  const std::vector<size_t> parts = {8};
  GridPartition p = GridPartition::Random(schema, Range::All(schema), parts,
                                          rng);
  EXPECT_EQ(p.num_cells(), 8u);
  for (const Range& cell : p.cells()) EXPECT_EQ(cell.Volume(), 1u);
}

TEST(GridPartitionTest, CellIndexRoundTrip) {
  Schema schema = Schema::Uniform(3, 8);
  const std::vector<size_t> parts = {2, 3, 4};
  GridPartition p = GridPartition::Uniform(schema, Range::All(schema), parts);
  for (size_t i = 0; i < p.num_cells(); ++i) {
    std::vector<size_t> coords = p.GridCoords(i);
    EXPECT_EQ(p.CellIndex(coords), i);
  }
}

TEST(GridPartitionTest, CellsAreRowMajor) {
  Schema schema = Schema::Uniform(2, 8);
  const std::vector<size_t> parts = {2, 2};
  GridPartition p = GridPartition::Uniform(schema, Range::All(schema), parts);
  // Cell 1 should differ from cell 0 in the *last* dimension.
  EXPECT_EQ(p.cell(0).interval(0), p.cell(1).interval(0));
  EXPECT_FALSE(p.cell(0).interval(1) == p.cell(1).interval(1));
}

TEST(GridPartitionTest, AdjacencyOfGrid) {
  Schema schema = Schema::Uniform(2, 8);
  const std::vector<size_t> parts = {3, 4};
  GridPartition p = GridPartition::Uniform(schema, Range::All(schema), parts);
  auto edges = p.AdjacentCellPairs();
  // A 3x4 grid has 2*4 + 3*3 = 17 axis edges.
  EXPECT_EQ(edges.size(), 17u);
  std::set<std::pair<size_t, size_t>> unique(edges.begin(), edges.end());
  EXPECT_EQ(unique.size(), edges.size());
  for (const auto& [a, b] : edges) {
    EXPECT_LT(a, b);
    // Adjacent cells share a boundary in exactly one dimension.
    auto ca = p.GridCoords(a);
    auto cb = p.GridCoords(b);
    int diffs = 0;
    for (size_t d = 0; d < ca.size(); ++d) {
      if (ca[d] != cb[d]) {
        ++diffs;
        EXPECT_EQ(cb[d], ca[d] + 1);
      }
    }
    EXPECT_EQ(diffs, 1);
  }
}

TEST(GridPartitionTest, DeterministicWithSeed) {
  Schema schema = Schema::Uniform(2, 32);
  const std::vector<size_t> parts = {4, 4};
  Rng rng1(42), rng2(42);
  GridPartition p1 = GridPartition::Random(schema, Range::All(schema), parts,
                                           rng1);
  GridPartition p2 = GridPartition::Random(schema, Range::All(schema), parts,
                                           rng2);
  for (size_t i = 0; i < p1.num_cells(); ++i) {
    EXPECT_TRUE(p1.cell(i) == p2.cell(i));
  }
}

}  // namespace
}  // namespace wavebatch
