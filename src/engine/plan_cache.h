#ifndef WAVEBATCH_ENGINE_PLAN_CACHE_H_
#define WAVEBATCH_ENGINE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/eval_plan.h"

namespace wavebatch {

/// An LRU cache of EvalPlans keyed by (batch shape, strategy, penalty).
/// Planning cost — query rewriting, master-list merge, importance pass,
/// permutation sorts — is paid once per distinct batch; a dashboard
/// re-issuing the same batch every refresh gets its plan back in a hash
/// lookup (bench_micro measures the gap).
///
/// The penalty participates in the key by *content*, via
/// PenaltyFunction::Fingerprint(): two penalties that encode the same
/// parameters rank coefficients identically, so they share a plan — even
/// across distinct penalty objects, and (crucially) a freed-then-recycled
/// penalty address can never alias a live cache entry, which pointer-keyed
/// fingerprints were vulnerable to.
///
/// Thread-safe; plans are immutable so a cached hit may be shared across
/// concurrent sessions freely.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 64);

  /// Returns the cached plan for this (batch, strategy, penalty,
  /// data_epoch) or builds, caches, and returns a fresh one. Build failures
  /// are not cached.
  ///
  /// `data_epoch` is the coefficient plane's published epoch the plan is
  /// built against (VersionedStore::epoch(); 0 for static stores — the
  /// default keeps every existing caller and key byte-identical). Today a
  /// plan depends only on the batch, strategy, and penalty, so plans built
  /// at different epochs are equal — but the epoch still participates in
  /// the key and is recorded on the entry, so (a) a caller that derives
  /// plan state from data (future importance refinements) gets distinct
  /// plans per epoch for free, and (b) InvalidateStale() can drop plans
  /// from superseded epochs.
  Result<std::shared_ptr<const EvalPlan>> GetOrBuild(
      const QueryBatch& batch, const LinearStrategy& strategy,
      std::shared_ptr<const PenaltyFunction> penalty, uint64_t data_epoch = 0);

  /// Drops every cached plan built against a data epoch older than
  /// `min_epoch` and returns how many were dropped (counted as evictions).
  /// Ingestion pipelines call this after a merge publishes epoch E with
  /// min_epoch = E to bound the lifetime of plans pinned to superseded
  /// versions; plans at epoch >= min_epoch (and static epoch-0 plans when
  /// min_epoch == 0) survive. The natural wiring is
  /// VersionedStoreOptions::on_publish.
  ///
  /// Invalidation is also automatic: GetOrBuild tracks the highest
  /// data_epoch it has seen (the watermark) and, whenever a lookup
  /// advances it, drops entries from older *nonzero* epochs — so
  /// dead-epoch plans are bounded even without the callback, while static
  /// (epoch-0) plans always survive the watermark. The watermark treats
  /// epochs as one stream: caches shared across several versioned planes
  /// with wildly different epoch counters should prefer the explicit
  /// callback wiring (spurious drops are only a performance effect, never
  /// a correctness one — a dropped plan is rebuilt on the next miss).
  size_t InvalidateStale(uint64_t min_epoch);

  uint64_t hits() const;
  uint64_t misses() const;
  /// Entries dropped off the LRU tail since construction (or last Clear()).
  uint64_t evictions() const;
  size_t size() const;
  void Clear();

  /// One cached plan, for live introspection (/statusz): the fingerprint
  /// prefix identifies the entry (the full key is binary and long),
  /// plan_entries is the master-list size the plan would evaluate.
  struct EntryInfo {
    std::string fingerprint_prefix;  // first 8 key bytes, lowercase hex
    uint64_t data_epoch = 0;
    size_t plan_entries = 0;
    size_t num_queries = 0;
  };
  /// Snapshot of the cached entries, most recently used first.
  std::vector<EntryInfo> Entries() const;

  /// Process-wide cache for callers without their own.
  static PlanCache& Shared();

  /// The cache key: a byte-exact fingerprint of the batch's schema, every
  /// query's intervals and monomials, the strategy name, the penalty's
  /// content fingerprint, and the data epoch (0 reproduces the historical
  /// epoch-free key bytes... plus the appended zero, distinct from every
  /// nonzero epoch). Exposed for tests.
  static std::string Fingerprint(const QueryBatch& batch,
                                 const LinearStrategy& strategy,
                                 const PenaltyFunction* penalty,
                                 uint64_t data_epoch = 0);

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const EvalPlan> plan;
    uint64_t data_epoch;
  };

  /// Drops entries with 0 < data_epoch < min_epoch (watermark semantics:
  /// epoch-0 static plans survive). Caller holds mu_. Returns the count,
  /// already folded into evictions_.
  size_t DropStaleLocked(uint64_t min_epoch, bool drop_epoch_zero);

  const size_t capacity_;
  mutable std::mutex mu_;
  /// Highest data_epoch seen by GetOrBuild; advances drop older entries.
  uint64_t epoch_watermark_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  // LRU: most recent at front.
  std::list<Entry> lru_;
  std::unordered_map<std::string, decltype(lru_)::iterator> by_key_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_ENGINE_PLAN_CACHE_H_
