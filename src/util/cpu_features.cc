#include "util/cpu_features.h"

#include <cstdlib>

namespace wavebatch {

const char* KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

namespace {

bool DetectAvx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool DetectAvx512() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  // The 512-bit kernels use only AVX-512F instructions (gather/scatter,
  // 512-bit mul/add) plus AVX2 loads for the 32-bit index vectors.
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool DetectForceScalarEnv() {
  const char* value = std::getenv("WAVEBATCH_FORCE_SCALAR");
  if (value == nullptr || value[0] == '\0') return false;
  return !(value[0] == '0' && value[1] == '\0');
}

std::optional<KernelTier>& TierOverride() {
  static std::optional<KernelTier> override;
  return override;
}

}  // namespace

bool CpuHasAvx2() {
  static const bool has = DetectAvx2();
  return has;
}

bool CpuHasAvx512() {
  static const bool has = DetectAvx512();
  return has;
}

bool KernelTierCompiled(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return true;
    case KernelTier::kAvx2:
#if defined(WAVEBATCH_HAVE_AVX2_KERNELS)
      return true;
#else
      return false;
#endif
    case KernelTier::kAvx512:
#if defined(WAVEBATCH_HAVE_AVX512_KERNELS)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool ForceScalarRequested() {
#if defined(WAVEBATCH_FORCE_SCALAR)
  return true;
#else
  static const bool forced = DetectForceScalarEnv();
  return forced;
#endif
}

bool KernelTierUsable(KernelTier tier) {
  if (tier == KernelTier::kScalar) return true;
  if (ForceScalarRequested()) return false;
  if (!KernelTierCompiled(tier)) return false;
  return tier == KernelTier::kAvx2 ? CpuHasAvx2() : CpuHasAvx512();
}

KernelTier BestKernelTier() {
  if (const std::optional<KernelTier>& override = TierOverride()) {
    return *override;
  }
  if (KernelTierUsable(KernelTier::kAvx512)) return KernelTier::kAvx512;
  if (KernelTierUsable(KernelTier::kAvx2)) return KernelTier::kAvx2;
  return KernelTier::kScalar;
}

void SetKernelTierOverride(std::optional<KernelTier> tier) {
  TierOverride() = tier;
}

std::string CpuFeatureString() {
  std::string features;
  const auto add = [&features](const char* name) {
    if (!features.empty()) features += "+";
    features += name;
  };
  if (CpuHasAvx2()) add("avx2");
  if (CpuHasAvx512()) add("avx512f");
  if (features.empty()) features = "baseline";
  return features;
}

}  // namespace wavebatch
