#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/check.h"

namespace wavebatch {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  WB_CHECK_GT(bound, 0u);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  WB_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Gaussian() {
  if (have_gauss_) {
    have_gauss_ = false;
    return cached_gauss_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = UniformDouble();
  double u2 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_gauss_ = radius * std::sin(angle);
  have_gauss_ = true;
  return radius * std::cos(angle);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  WB_CHECK_GT(n, 0u);
  WB_CHECK_GE(s, 0.0);
  if (s == 0.0) return UniformInt(n);
  // Inverse-CDF on the generalized harmonic weights. For the data-set sizes
  // wavebatch generates (n <= a few thousand distinct ranks) a binary search
  // over cumulative weights is simple and fast; cache per (n, s) would be an
  // optimization but generators construct one Rng per dataset anyway.
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double acc = 0.0;
    for (uint64_t k = 0; k < n; ++k) {
      acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
      zipf_cdf_[k] = acc;
    }
    for (auto& c : zipf_cdf_) c /= acc;
  }
  double u = UniformDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) return n - 1;
  return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  WB_CHECK_LE(k, n);
  // Floyd's algorithm: k set insertions regardless of n.
  std::set<uint64_t> chosen;
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = UniformInt(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return std::vector<uint64_t>(chosen.begin(), chosen.end());
}

}  // namespace wavebatch
