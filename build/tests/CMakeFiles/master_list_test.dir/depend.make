# Empty dependencies file for master_list_test.
# This may be replaced when dependencies are built.
