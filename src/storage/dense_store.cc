#include "storage/dense_store.h"

#include <cmath>

#include "util/check.h"
#include "util/cpu_features.h"
#include "util/simd_gather.h"

namespace wavebatch {

double DenseStore::Peek(uint64_t key) const {
  WB_CHECK_LT(key, values_.size()) << "key outside dense store capacity";
  return values_[key];
}

void DenseStore::Add(uint64_t key, double delta) {
  WB_CHECK_LT(key, values_.size()) << "key outside dense store capacity";
  values_[key] += delta;
}

namespace {
Status KeyOutOfRange(uint64_t key, size_t capacity) {
  return Status::OutOfRange("key " + std::to_string(key) +
                            " outside dense store capacity " +
                            std::to_string(capacity));
}
}  // namespace

Result<double> DenseStore::DoFetch(uint64_t key, IoStats*) const {
  if (key >= values_.size()) return KeyOutOfRange(key, values_.size());
  return values_[key];
}

Status DenseStore::DoFetchBatch(std::span<const uint64_t> keys,
                                std::span<double> out, IoStats*) const {
  const size_t capacity = values_.size();
  // Vector gather when the host supports it: hardware vgatherdpd over the
  // dense array, with every lane bounds-checked up front. The helper bails
  // out (returns false) the moment any key is out of range, and the scalar
  // loop below then reproduces the exact historical error — OutOfRange at
  // the FIRST offending index — while also covering scalar-only hosts.
  if (simd::GatherDoubles(BestKernelTier(), values_.data(), capacity,
                          keys.data(), keys.size(), out.data())) {
    return Status::OK();
  }
  // Permuted gathers (biggest-B order) defeat the hardware stride
  // prefetcher, so the loop prefetches a few keys ahead. The lookahead key
  // is bounds-checked before its address is formed — an out-of-range key
  // must surface as OutOfRange at its own index, never as a wild prefetch.
  constexpr size_t kAhead = 8;
  for (size_t i = 0; i < keys.size(); ++i) {
#if defined(__GNUC__) || defined(__clang__)
    if (i + kAhead < keys.size() && keys[i + kAhead] < capacity) {
      __builtin_prefetch(&values_[keys[i + kAhead]]);
    }
#endif
    if (keys[i] >= capacity) {
      return KeyOutOfRange(keys[i], capacity);
    }
    out[i] = values_[keys[i]];
  }
  return Status::OK();
}

uint64_t DenseStore::NumNonZero() const {
  uint64_t n = 0;
  for (double v : values_) {
    if (v != 0.0) ++n;
  }
  return n;
}

void DenseStore::ForEachNonZero(
    const std::function<void(uint64_t, double)>& fn) const {
  for (uint64_t key = 0; key < values_.size(); ++key) {
    if (values_[key] != 0.0) fn(key, values_[key]);
  }
}

double DenseStore::SumAbs() const {
  double acc = 0.0;
  for (double v : values_) acc += std::abs(v);
  return acc;
}

}  // namespace wavebatch
