#ifndef WAVEBATCH_ENGINE_PLAN_CACHE_H_
#define WAVEBATCH_ENGINE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "engine/eval_plan.h"

namespace wavebatch {

/// An LRU cache of EvalPlans keyed by (batch shape, strategy, penalty).
/// Planning cost — query rewriting, master-list merge, importance pass,
/// permutation sorts — is paid once per distinct batch; a dashboard
/// re-issuing the same batch every refresh gets its plan back in a hash
/// lookup (bench_micro measures the gap).
///
/// The penalty participates in the key by *content*, via
/// PenaltyFunction::Fingerprint(): two penalties that encode the same
/// parameters rank coefficients identically, so they share a plan — even
/// across distinct penalty objects, and (crucially) a freed-then-recycled
/// penalty address can never alias a live cache entry, which pointer-keyed
/// fingerprints were vulnerable to.
///
/// Thread-safe; plans are immutable so a cached hit may be shared across
/// concurrent sessions freely.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 64);

  /// Returns the cached plan for this (batch, strategy, penalty) or builds,
  /// caches, and returns a fresh one. Build failures are not cached.
  Result<std::shared_ptr<const EvalPlan>> GetOrBuild(
      const QueryBatch& batch, const LinearStrategy& strategy,
      std::shared_ptr<const PenaltyFunction> penalty);

  uint64_t hits() const;
  uint64_t misses() const;
  /// Entries dropped off the LRU tail since construction (or last Clear()).
  uint64_t evictions() const;
  size_t size() const;
  void Clear();

  /// Process-wide cache for callers without their own.
  static PlanCache& Shared();

  /// The cache key: a byte-exact fingerprint of the batch's schema, every
  /// query's intervals and monomials, the strategy name, and the penalty's
  /// content fingerprint. Exposed for tests.
  static std::string Fingerprint(const QueryBatch& batch,
                                 const LinearStrategy& strategy,
                                 const PenaltyFunction* penalty);

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  // LRU: most recent at front.
  std::list<std::pair<std::string, std::shared_ptr<const EvalPlan>>> lru_;
  std::unordered_map<std::string, decltype(lru_)::iterator> by_key_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_ENGINE_PLAN_CACHE_H_
