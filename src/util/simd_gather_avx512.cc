#include "util/simd_gather.h"

#if defined(WAVEBATCH_HAVE_AVX512_KERNELS)

#include <immintrin.h>

namespace wavebatch::simd {

bool GatherDoublesAvx512(const double* values, uint64_t capacity,
                         const uint64_t* keys, size_t n, double* out) {
  // AVX-512 has unsigned 64-bit compares, so the bounds check is direct.
  const __m512i cap = _mm512_set1_epi64(static_cast<int64_t>(capacity));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i k =
        _mm512_loadu_si512(reinterpret_cast<const void*>(keys + i));
    if (_mm512_cmplt_epu64_mask(k, cap) != 0xFF) return false;
    const __m512d v = _mm512_i64gather_pd(k, values, 8);
    _mm512_storeu_pd(out + i, v);
  }
  for (; i < n; ++i) {
    if (keys[i] >= capacity) return false;
    out[i] = values[keys[i]];
  }
  return true;
}

}  // namespace wavebatch::simd

#else  // !WAVEBATCH_HAVE_AVX512_KERNELS

namespace wavebatch::simd {

// Toolchain without AVX-512 support: scalar stand-in, never selected by
// dispatch (KernelTierCompiled(kAvx512) is false). See the AVX2 twin.
bool GatherDoublesAvx512(const double* values, uint64_t capacity,
                         const uint64_t* keys, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    if (keys[i] >= capacity) return false;
    out[i] = values[keys[i]];
  }
  return true;
}

}  // namespace wavebatch::simd

#endif  // WAVEBATCH_HAVE_AVX512_KERNELS
