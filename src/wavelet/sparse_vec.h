#ifndef WAVEBATCH_WAVELET_SPARSE_VEC_H_
#define WAVEBATCH_WAVELET_SPARSE_VEC_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace wavebatch {

/// One nonzero coordinate of a sparse vector in a transform domain. The key
/// identifies a storage-domain coefficient (for the wavelet strategy: the
/// packed per-dimension wavelet indices; for other linear strategies: that
/// strategy's cell id).
struct SparseEntry {
  uint64_t key;
  double value;

  friend bool operator==(const SparseEntry& a, const SparseEntry& b) {
    return a.key == b.key && a.value == b.value;
  }
};

/// An immutable sparse vector: entries sorted by key, keys unique, values
/// nonzero. This is the representation of transformed query vectors (q̂) and
/// of sparse transformed data (Δ̂ built by incremental insertion).
class SparseVec {
 public:
  SparseVec() = default;

  /// Sorts, merges duplicate keys (summing), and drops entries with
  /// |value| <= eps.
  static SparseVec FromUnsorted(std::vector<SparseEntry> entries,
                                double eps = 0.0);

  /// Wraps entries that are already sorted, unique and nonzero (checked in
  /// debug builds).
  static SparseVec FromSorted(std::vector<SparseEntry> entries);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const SparseEntry& operator[](size_t i) const { return entries_[i]; }
  std::vector<SparseEntry>::const_iterator begin() const {
    return entries_.begin();
  }
  std::vector<SparseEntry>::const_iterator end() const {
    return entries_.end();
  }
  const std::vector<SparseEntry>& entries() const { return entries_; }

  /// Inner product with another sparse vector (merge join on keys).
  double Dot(const SparseVec& other) const;

  /// Returns the value at `key`, or 0 if absent (binary search).
  double ValueAt(uint64_t key) const;

  double SumAbs() const;
  double SumSquares() const;

  /// Multiplies all values by c.
  void Scale(double c);

 private:
  std::vector<SparseEntry> entries_;
};

/// Hash-map accumulator for building sparse vectors by scattered additions
/// (tuple insertions, tensor-product expansion of query coefficients).
class SparseAccumulator {
 public:
  void Add(uint64_t key, double value) { map_[key] += value; }
  size_t size() const { return map_.size(); }
  void Reserve(size_t n) { map_.reserve(n); }

  /// Extracts the accumulated vector, dropping |value| <= eps.
  SparseVec ToVec(double eps = 0.0) const;

  const std::unordered_map<uint64_t, double>& map() const { return map_; }

 private:
  std::unordered_map<uint64_t, double> map_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_WAVELET_SPARSE_VEC_H_
