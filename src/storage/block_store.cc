#include "storage/block_store.h"

#include <unordered_set>
#include <utility>

#include "util/check.h"

namespace wavebatch {

BlockStore::BlockStore(std::unique_ptr<CoefficientStore> inner,
                       uint64_t block_size, uint64_t cache_blocks)
    : owned_(std::move(inner)),
      inner_(owned_.get()),
      mutable_inner_(owned_.get()),
      block_size_(block_size),
      cache_blocks_(cache_blocks),
      pool_(std::make_shared<BufferPool>()) {
  WB_CHECK(inner_ != nullptr);
  WB_CHECK_GT(block_size_, 0u);
  auto& registry = telemetry::MetricsRegistry::Default();
  block_reads_metric_ = registry.GetCounter(
      "wavebatch_block_store_block_reads_total", {{"store", name()}},
      "Simulated disk-block reads (LRU misses).");
  block_hits_metric_ = registry.GetCounter(
      "wavebatch_block_store_block_hits_total", {{"store", name()}},
      "Block-cache hits in the LRU buffer.");
  lru_occupancy_gauge_ = registry.GetGauge(
      "wavebatch_block_store_lru_occupancy_blocks", {{"store", name()}},
      "Blocks currently resident in the LRU buffer.");
  lru_capacity_gauge_ = registry.GetGauge(
      "wavebatch_block_store_lru_capacity_blocks", {{"store", name()}},
      "LRU buffer capacity in blocks (0 = unbuffered).");
  lru_capacity_gauge_->Set(static_cast<double>(cache_blocks_));
}

BlockStore::BlockStore(std::shared_ptr<const CoefficientStore> pinned,
                       const BlockStore& parent)
    : pinned_inner_(std::move(pinned)),
      inner_(pinned_inner_.get()),
      block_size_(parent.block_size_),
      cache_blocks_(parent.cache_blocks_),
      pool_(parent.pool_),
      block_reads_metric_(parent.block_reads_metric_),
      block_hits_metric_(parent.block_hits_metric_),
      lru_occupancy_gauge_(parent.lru_occupancy_gauge_),
      lru_capacity_gauge_(parent.lru_capacity_gauge_) {
  WB_CHECK(inner_ != nullptr);
}

std::shared_ptr<const CoefficientStore> BlockStore::PinVersion() const {
  std::shared_ptr<const CoefficientStore> pinned = inner_->PinVersion();
  if (pinned == nullptr) return nullptr;  // inner is its own snapshot
  return std::shared_ptr<const CoefficientStore>(
      new BlockStore(std::move(pinned), *this));
}

double BlockStore::Peek(uint64_t key) const { return inner_->Peek(key); }

bool BlockStore::TouchLocked(uint64_t block) const {
  auto it = pool_->in_cache.find(block);
  if (it != pool_->in_cache.end()) {
    pool_->lru.splice(pool_->lru.begin(), pool_->lru, it->second);
    return true;
  }
  if (cache_blocks_ > 0) {
    pool_->lru.push_front(block);
    pool_->in_cache[block] = pool_->lru.begin();
    if (pool_->lru.size() > cache_blocks_) {
      pool_->in_cache.erase(pool_->lru.back());
      pool_->lru.pop_back();
    }
  }
  return false;
}

Result<double> BlockStore::DoFetch(uint64_t key, IoStats* io) const {
  Result<double> value = DelegateFetch(*inner_, key, io);
  if (!value.ok()) return value;
  {
    std::lock_guard<std::mutex> lock(pool_->mu);
    if (TouchLocked(key / block_size_)) {
      if (io != nullptr) ++io->block_hits;
      block_hits_metric_->Add();
    } else {
      if (io != nullptr) ++io->block_reads;
      block_reads_metric_->Add();
    }
    lru_occupancy_gauge_->Set(static_cast<double>(pool_->lru.size()));
  }
  return value;
}

void BlockStore::TouchBatch(std::span<const uint64_t> keys,
                            IoStats* io) const {
  // Touch each distinct block once, in first-appearance order (so the LRU
  // state after the call matches a scalar loop's up to refresh order). One
  // lock acquisition per batch, not per key.
  std::unordered_set<uint64_t> seen;
  seen.reserve(keys.size());
  std::lock_guard<std::mutex> lock(pool_->mu);
  for (uint64_t key : keys) {
    const uint64_t block = key / block_size_;
    if (!seen.insert(block).second) continue;
    if (TouchLocked(block)) {
      if (io != nullptr) ++io->block_hits;
      block_hits_metric_->Add();
    } else {
      if (io != nullptr) ++io->block_reads;
      block_reads_metric_->Add();
    }
  }
  lru_occupancy_gauge_->Set(static_cast<double>(pool_->lru.size()));
}

Status BlockStore::DoFetchBatch(std::span<const uint64_t> keys,
                                std::span<double> out, IoStats* io) const {
  // Read through the inner backend first: a failed batch must leave both
  // counters and the LRU untouched (all-or-nothing, like the scalar path).
  Status status = DelegateFetchBatch(*inner_, keys, out, io);
  if (!status.ok()) return status;
  TouchBatch(keys, io);
  return Status::OK();
}

Status BlockStore::DoFetchBatchRouted(std::span<const uint64_t> keys,
                                      std::span<const uint32_t> shards,
                                      std::span<double> out,
                                      IoStats* io) const {
  Status status = DelegateFetchBatchRouted(*inner_, keys, shards, out, io);
  if (!status.ok()) return status;
  TouchBatch(keys, io);
  return Status::OK();
}

void BlockStore::Add(uint64_t key, double delta) {
  WB_CHECK(mutable_inner_ != nullptr)
      << "Add() on a pinned BlockStore view (epoch snapshots are read-only)";
  mutable_inner_->Add(key, delta);
}

uint64_t BlockStore::NumNonZero() const { return inner_->NumNonZero(); }

double BlockStore::SumAbs() const { return inner_->SumAbs(); }

void BlockStore::ForEachNonZero(
    const std::function<void(uint64_t, double)>& fn) const {
  inner_->ForEachNonZero(fn);
}

std::string BlockStore::name() const {
  return "blocked(" + inner_->name() + ")";
}

}  // namespace wavebatch
