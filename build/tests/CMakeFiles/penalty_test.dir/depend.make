# Empty dependencies file for penalty_test.
# This may be replaced when dependencies are built.
