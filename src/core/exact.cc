#include "core/exact.h"

#include <algorithm>
#include <vector>

namespace wavebatch {

namespace {
/// Batched fetches are issued in chunks so scratch buffers stay modest even
/// for million-entry master lists; within a chunk the store may coalesce,
/// group, or parallelize however it likes.
constexpr size_t kFetchChunk = 4096;
}  // namespace

ExactBatchResult EvaluateNaive(
    const std::vector<SparseVec>& query_coefficients,
    const CoefficientStore& store) {
  ExactBatchResult out;
  out.results.resize(query_coefficients.size(), 0.0);
  IoStats io;
  std::vector<uint64_t> keys;
  std::vector<double> values;
  for (size_t qi = 0; qi < query_coefficients.size(); ++qi) {
    const SparseVec& coeffs = query_coefficients[qi];
    double acc = 0.0;
    for (size_t begin = 0; begin < coeffs.size(); begin += kFetchChunk) {
      const size_t end = std::min(coeffs.size(), begin + kFetchChunk);
      keys.clear();
      for (size_t i = begin; i < end; ++i) keys.push_back(coeffs[i].key);
      values.assign(keys.size(), 0.0);
      // Legacy evaluators are the crash-on-error golden reference; fault
      // tolerance lives in the engine layer.
      WB_CHECK_OK(store.FetchBatch(keys, values, &io));
      for (size_t i = begin; i < end; ++i) {
        acc += coeffs[i].value * values[i - begin];
      }
    }
    out.results[qi] = acc;
  }
  out.retrievals = io.retrievals;
  return out;
}

ExactBatchResult EvaluateShared(const MasterList& list,
                                const CoefficientStore& store) {
  ExactBatchResult out;
  out.results.resize(list.num_queries(), 0.0);
  IoStats io;
  const std::vector<MasterEntry>& entries = list.entries();
  std::vector<uint64_t> keys;
  std::vector<double> values;
  for (size_t begin = 0; begin < entries.size(); begin += kFetchChunk) {
    const size_t end = std::min(entries.size(), begin + kFetchChunk);
    keys.clear();
    for (size_t i = begin; i < end; ++i) keys.push_back(entries[i].key);
    values.assign(keys.size(), 0.0);
    WB_CHECK_OK(store.FetchBatch(keys, values, &io));
    // Entry order, like the scalar loop: identical accumulation sequence.
    for (size_t i = begin; i < end; ++i) {
      const double data = values[i - begin];
      if (data == 0.0) continue;
      for (const auto& [query, coeff] : entries[i].uses) {
        out.results[query] += coeff * data;
      }
    }
  }
  out.retrievals = io.retrievals;
  return out;
}

}  // namespace wavebatch
