#include "engine/kernel_tiers.h"

#if defined(WAVEBATCH_HAVE_AVX2_KERNELS)

#include <immintrin.h>

#include "util/prefetch.h"

namespace wavebatch::kernels {
namespace {

/// One entry row, vectorized over CONTIGUOUS query-index runs. Query
/// indices within a CSR row are strictly ascending, so a single compare —
/// query[j+3] == query[j]+3 — proves the window j..j+3 addresses four
/// consecutive estimate slots; the window then becomes one unaligned load,
/// one vector multiply, one vector add, one unaligned store. Windows that
/// fail the check fall back to one scalar element and re-test (runs in
/// master lists built from range workloads cover the majority of uses —
/// adjacent partitions' queries share coefficients — so the vector path
/// dominates).
///
/// Bit-identity: each lane's product is the one IEEE-correctly-rounded
/// multiply the scalar loop performs, each slot receives exactly one add of
/// that product, and the four slots of a window are distinct — so grouping
/// them into one vector op cannot change any slot's operation sequence. No
/// FMA, and the tree builds with -ffp-contract=off, so the compiler cannot
/// fuse the two roundings on either path.
///
/// Hardware gathers/scatters over the estimate array measured SLOWER than
/// the scalar loop on this kernel (vgatherdpd latency swamps the short
/// dependency chains); run-detection is what actually pays.
inline void ApplyRowAvx2(const uint32_t* query, const double* coeff,
                         uint64_t lo, uint64_t hi, double data,
                         double* estimates) {
  const __m256d vdata = _mm256_set1_pd(data);
  uint64_t j = lo;
  while (j + 4 <= hi) {
    const uint32_t q0 = query[j];
    if (query[j + 3] == q0 + 3) {
      const __m256d c = _mm256_loadu_pd(coeff + j);
      const __m256d est = _mm256_loadu_pd(estimates + q0);
      _mm256_storeu_pd(estimates + q0,
                       _mm256_add_pd(est, _mm256_mul_pd(c, vdata)));
      j += 4;
    } else {
      // Explicit two-step mul-then-add, exactly the scalar kernel's form.
      const double product = coeff[j] * data;
      estimates[q0] += product;
      ++j;
    }
  }
  for (; j < hi; ++j) {
    const double product = coeff[j] * data;
    estimates[query[j]] += product;
  }
}

}  // namespace

void ApplyOrderedSliceAvx2(const ApplyKernel& kernel, const size_t* order,
                           size_t n, const double* values, double* estimates,
                           double* remaining) {
  if (n == 0) return;
  WB_PREFETCH(&kernel.offsets[order[0]]);
  for (size_t i = 0; i < n; ++i) {
    // Same software-prefetch pipeline as the scalar tier: the permuted row
    // walk defeats the hardware stride prefetcher either way.
    if (i + 2 < n) WB_PREFETCH(&kernel.offsets[order[i + 2]]);
    if (i + 1 < n) {
      const uint64_t next_lo = kernel.offsets[order[i + 1]];
      WB_PREFETCH(&kernel.coeff[next_lo]);
      WB_PREFETCH(&kernel.query[next_lo]);
    }
    const size_t entry = order[i];
    kernel.ConsumeImportance(entry, remaining);
    const double data = values[i];
    if (data == 0.0) continue;  // the legacy zero-data early-out
    ApplyRowAvx2(kernel.query, kernel.coeff, kernel.offsets[entry],
                 kernel.offsets[entry + 1], data, estimates);
  }
}

}  // namespace wavebatch::kernels

#else  // !WAVEBATCH_HAVE_AVX2_KERNELS

namespace wavebatch::kernels {

// Toolchain cannot target AVX2: forward to the scalar kernel. Never
// selected by dispatch (KernelTierCompiled(kAvx2) is false).
void ApplyOrderedSliceAvx2(const ApplyKernel& kernel, const size_t* order,
                           size_t n, const double* values, double* estimates,
                           double* remaining) {
  kernel.ApplyOrderedSlice(order, n, values, estimates, remaining);
}

}  // namespace wavebatch::kernels

#endif  // WAVEBATCH_HAVE_AVX2_KERNELS
