// The paper's motivating OLAP loop (Section 1): request a coarse synopsis
// of a big dataset, identify the interesting region, drill down into it —
// with every batch evaluated through one shared wavelet view, and AVERAGE
// computed from planned COUNT + SUM vector queries.
//
//   ./build/examples/temperature_drilldown

#include <algorithm>
#include <cstdio>
#include <memory>

#include "engine/eval_plan.h"
#include "engine/eval_session.h"
#include "data/generators.h"
#include "data/workloads.h"
#include "query/derived.h"
#include "strategy/wavelet_strategy.h"

using namespace wavebatch;

namespace {

// Evaluates AVERAGE(temp) over each range and returns (index, average) of
// the hottest cell, printing a small report. Each round is one exact
// key-ordered session; the session's own IoStats reports exactly this
// round's retrievals (the shared store keeps no counters).
size_t HottestCell(const std::vector<Range>& cells,
                   const WaveletStrategy& strategy,
                   const std::shared_ptr<const CoefficientStore>& store,
                   const char* title) {
  QueryBatch batch(strategy.schema());
  std::vector<AverageHandle> handles;
  handles.reserve(cells.size());
  for (const Range& cell : cells) {
    handles.push_back(PlanAverage(batch, cell, kTemp));
  }
  std::shared_ptr<const EvalPlan> plan =
      EvalPlan::Build(batch, strategy, /*penalty=*/nullptr).value();
  EvalSession::Options opts;
  opts.order = ProgressionOrder::kKeyOrder;
  EvalSession session(plan, store, opts);
  session.RunToExact();

  size_t best = 0;
  double best_avg = -1.0;
  for (size_t i = 0; i < cells.size(); ++i) {
    const double avg = FinishAverage(handles[i], session.Estimates());
    if (avg > best_avg) {
      best_avg = avg;
      best = i;
    }
  }
  std::printf("%s: %zu cells, %llu retrievals (%llu would be needed "
              "without sharing)\n",
              title, cells.size(),
              static_cast<unsigned long long>(session.io().retrievals),
              static_cast<unsigned long long>(
                  plan->list().TotalQueryCoefficients()));
  std::printf("  hottest cell: %s  avg temp bin %.2f\n",
              cells[best].ToString().c_str(), best_avg);
  return best;
}

}  // namespace

int main() {
  // A modest synthetic globe so the example runs in a couple of seconds.
  TemperatureDatasetOptions options;
  options.lat_size = 64;
  options.lon_size = 64;
  options.alt_size = 8;
  options.time_size = 16;
  options.temp_size = 32;
  options.num_records = 1000000;
  std::printf("generating %llu observations over %s...\n",
              static_cast<unsigned long long>(options.num_records),
              TemperatureSchema(options).ToString().c_str());
  DenseCube cube = MakeTemperatureCube(options);

  WaveletStrategy strategy(cube.schema(), WaveletKind::kDb4);
  std::shared_ptr<const CoefficientStore> store = strategy.BuildStore(cube);

  // Round 1: a coarse 4x4 lat-lon synopsis of the whole globe.
  const std::vector<size_t> coarse_parts = {4, 4, 1, 1, 1};
  GridPartition coarse = GridPartition::Uniform(
      cube.schema(), Range::All(cube.schema()), coarse_parts);
  size_t hot = HottestCell(coarse.cells(), strategy, store,
                           "round 1 (coarse synopsis)");

  // Round 2: drill down into the hottest coarse cell with a finer grid.
  const std::vector<size_t> fine_parts = {4, 4, 1, 1, 1};
  GridPartition fine = GridPartition::Uniform(
      cube.schema(), coarse.cell(hot), fine_parts);
  hot = HottestCell(fine.cells(), strategy, store,
                    "round 2 (drill-down)");

  // Round 3: once more, down to a small box.
  const Range& target = fine.cell(hot);
  std::vector<size_t> final_parts = {2, 2, 2, 2, 1};
  // Clamp the split to the box's actual extent.
  for (size_t d = 0; d < final_parts.size(); ++d) {
    final_parts[d] = std::min<size_t>(final_parts[d],
                                      target.interval(d).length());
  }
  GridPartition leaf =
      GridPartition::Uniform(cube.schema(), target, final_parts);
  HottestCell(leaf.cells(), strategy, store, "round 3 (leaf)");
  return 0;
}
