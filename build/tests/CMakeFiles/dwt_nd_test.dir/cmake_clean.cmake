file(REMOVE_RECURSE
  "CMakeFiles/dwt_nd_test.dir/dwt_nd_test.cc.o"
  "CMakeFiles/dwt_nd_test.dir/dwt_nd_test.cc.o.d"
  "dwt_nd_test"
  "dwt_nd_test.pdb"
  "dwt_nd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwt_nd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
