#include "wavelet/filters.h"

#include <cmath>

#include "gtest/gtest.h"

namespace wavebatch {
namespace {

class FiltersTest : public ::testing::TestWithParam<WaveletKind> {};

TEST_P(FiltersTest, LowpassSumsToSqrt2) {
  const WaveletFilter& f = WaveletFilter::Get(GetParam());
  double sum = 0.0;
  for (double h : f.lowpass()) sum += h;
  EXPECT_NEAR(sum, std::sqrt(2.0), 1e-12);
}

TEST_P(FiltersTest, LowpassUnitNorm) {
  const WaveletFilter& f = WaveletFilter::Get(GetParam());
  double sum_sq = 0.0;
  for (double h : f.lowpass()) sum_sq += h * h;
  EXPECT_NEAR(sum_sq, 1.0, 1e-12);
}

TEST_P(FiltersTest, EvenLagAutocorrelationVanishes) {
  // Orthonormality of translates: Σ_n h[n]·h[n+2t] = δ_{t,0}.
  const WaveletFilter& f = WaveletFilter::Get(GetParam());
  const auto h = f.lowpass();
  for (uint32_t t = 1; t < f.length() / 2; ++t) {
    double acc = 0.0;
    for (uint32_t n = 0; n + 2 * t < f.length(); ++n) {
      acc += h[n] * h[n + 2 * t];
    }
    EXPECT_NEAR(acc, 0.0, 1e-12) << "lag " << 2 * t;
  }
}

TEST_P(FiltersTest, HighpassIsQuadratureMirror) {
  const WaveletFilter& f = WaveletFilter::Get(GetParam());
  const auto h = f.lowpass();
  const auto g = f.highpass();
  for (uint32_t n = 0; n < f.length(); ++n) {
    const double expected = ((n & 1) ? -1.0 : 1.0) * h[f.length() - 1 - n];
    EXPECT_DOUBLE_EQ(g[n], expected);
  }
}

TEST_P(FiltersTest, HighpassOrthogonalToLowpass) {
  // Σ_n h[n]·g[n+2t] = 0 for all t.
  const WaveletFilter& f = WaveletFilter::Get(GetParam());
  const auto h = f.lowpass();
  const auto g = f.highpass();
  for (int t = -static_cast<int>(f.length()); t <= static_cast<int>(f.length());
       ++t) {
    double acc = 0.0;
    for (int n = 0; n < static_cast<int>(f.length()); ++n) {
      const int m = n + 2 * t;
      if (m >= 0 && m < static_cast<int>(f.length())) acc += h[n] * g[m];
    }
    EXPECT_NEAR(acc, 0.0, 1e-12) << "lag " << 2 * t;
  }
}

TEST_P(FiltersTest, VanishingMoments) {
  // Σ_n g[n]·n^p = 0 for p = 0 .. vanishing_moments-1. This is the property
  // that makes interior query coefficients vanish for degree < moments.
  const WaveletFilter& f = WaveletFilter::Get(GetParam());
  const auto g = f.highpass();
  for (uint32_t p = 0; p < f.vanishing_moments(); ++p) {
    double acc = 0.0;
    for (uint32_t n = 0; n < f.length(); ++n) {
      acc += g[n] * std::pow(static_cast<double>(n), static_cast<double>(p));
    }
    EXPECT_NEAR(acc, 0.0, 1e-9) << "moment " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFilters, FiltersTest,
                         ::testing::Values(WaveletKind::kHaar,
                                           WaveletKind::kDb4,
                                           WaveletKind::kDb6,
                                           WaveletKind::kDb8));

TEST(FiltersTest2, LengthsAndMoments) {
  EXPECT_EQ(WaveletFilter::Get(WaveletKind::kHaar).length(), 2u);
  EXPECT_EQ(WaveletFilter::Get(WaveletKind::kDb4).length(), 4u);
  EXPECT_EQ(WaveletFilter::Get(WaveletKind::kDb6).length(), 6u);
  EXPECT_EQ(WaveletFilter::Get(WaveletKind::kDb8).length(), 8u);
  EXPECT_EQ(WaveletFilter::Get(WaveletKind::kDb4).vanishing_moments(), 2u);
  EXPECT_EQ(WaveletFilter::Get(WaveletKind::kDb8).max_degree(), 3u);
}

TEST(FiltersTest2, ForDegreePicksShortestSufficientFilter) {
  EXPECT_EQ(WaveletFilter::ForDegree(0).kind(), WaveletKind::kHaar);
  EXPECT_EQ(WaveletFilter::ForDegree(1).kind(), WaveletKind::kDb4);
  EXPECT_EQ(WaveletFilter::ForDegree(2).kind(), WaveletKind::kDb6);
  EXPECT_EQ(WaveletFilter::ForDegree(3).kind(), WaveletKind::kDb8);
  for (uint32_t d = 0; d <= 3; ++d) {
    EXPECT_GE(WaveletFilter::ForDegree(d).max_degree(), d);
    EXPECT_EQ(WaveletFilter::ForDegree(d).length(), 2 * d + 2);
  }
}

TEST(FiltersTest2, ParseWaveletKind) {
  WaveletKind k;
  EXPECT_TRUE(ParseWaveletKind("haar", &k));
  EXPECT_EQ(k, WaveletKind::kHaar);
  EXPECT_TRUE(ParseWaveletKind("DB4", &k));
  EXPECT_EQ(k, WaveletKind::kDb4);
  EXPECT_TRUE(ParseWaveletKind("db2", &k));
  EXPECT_EQ(k, WaveletKind::kHaar);
  EXPECT_FALSE(ParseWaveletKind("db16", &k));
  EXPECT_FALSE(ParseWaveletKind("", &k));
}

}  // namespace
}  // namespace wavebatch
