#include "wavelet/impulse.h"

#include <algorithm>
#include <unordered_map>

#include "util/bits.h"
#include "util/check.h"

namespace wavebatch {

std::vector<SparseEntry> SparseImpulseDwt1D(uint64_t n, uint32_t x,
                                            double value,
                                            const WaveletFilter& filter) {
  WB_CHECK(IsPowerOfTwo(n));
  WB_CHECK_LT(static_cast<uint64_t>(x), n);
  std::vector<SparseEntry> out;
  if (n == 1) {
    if (value != 0.0) out.push_back({0, value});
    return out;
  }
  const std::span<const double> h = filter.lowpass();
  const std::span<const double> g = filter.highpass();
  const uint32_t len = filter.length();

  // Nonzero scaling coefficients at the current level; starts as the
  // impulse itself.
  std::unordered_map<uint64_t, double> scaling;
  scaling.emplace(x, value);
  std::unordered_map<uint64_t, double> next_s;
  std::unordered_map<uint64_t, double> detail;

  for (uint64_t m = n; m >= 2; m >>= 1) {
    const uint64_t half = m / 2;
    next_s.clear();
    detail.clear();
    // Position p feeds s[k]/d[k] for every filter tap t with
    // (2k + t) mod m == p, i.e. k = ((p - t) mod m) / 2 for taps with
    // t ≡ p (mod 2).
    for (const auto& [p, v] : scaling) {
      for (uint32_t t = 0; t < len; ++t) {
        if (((p ^ t) & 1) != 0) continue;  // parity mismatch: no such k
        const uint64_t k =
            (static_cast<uint64_t>(EuclidMod(static_cast<int64_t>(p) -
                                                 static_cast<int64_t>(t),
                                             static_cast<int64_t>(m)))) /
            2;
        next_s[k] += h[t] * v;
        detail[k] += g[t] * v;
      }
    }
    // Details at this stage land at flat indices [half, m) and are final.
    for (const auto& [k, v] : detail) {
      if (v != 0.0) out.push_back({half + k, v});
    }
    scaling.swap(next_s);
  }
  WB_CHECK_LE(scaling.size(), 1u);
  for (const auto& [k, v] : scaling) {
    WB_CHECK_EQ(k, 0u);
    if (v != 0.0) out.push_back({0, v});
  }
  std::sort(out.begin(), out.end(),
            [](const SparseEntry& a, const SparseEntry& b) {
              return a.key < b.key;
            });
  return out;
}

}  // namespace wavebatch
