#include "storage/compressed_block.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/bitpack.h"
#include "util/check.h"

namespace wavebatch {

CompressedPage CompressedPage::Encode(std::span<const uint64_t> keys,
                                      std::span<const double> values,
                                      const CompressedPageOptions& options) {
  WB_CHECK(!keys.empty()) << "empty page";
  WB_CHECK_EQ(keys.size(), values.size());
  const size_t n = keys.size();

  CompressedPage page;
  page.base_key_ = keys.front();
  page.count_ = static_cast<uint32_t>(n);

  // Key stream: offsets from the base key, bit-packed to the width of the
  // largest offset. Within one disk block offsets are below the block size,
  // so this is typically a byte or less per key versus 8 raw.
  for (size_t i = 1; i < n; ++i) {
    WB_CHECK_LT(keys[i - 1], keys[i]) << "page keys must be ascending";
  }
  page.key_bits_ = BitWidthFor(keys.back() - page.base_key_);
  page.key_words_.assign(BitPackWords(n, page.key_bits_), 0);
  for (size_t i = 0; i < n; ++i) {
    BitPackWrite(page.key_words_, page.key_bits_, i, keys[i] - page.base_key_);
  }

  if (options.quantize) {
    double lo = values[0];
    double hi = values[0];
    for (size_t i = 1; i < n; ++i) {
      lo = std::min(lo, values[i]);
      hi = std::max(hi, values[i]);
    }
    const uint32_t bits = std::clamp<uint32_t>(options.quant_bits, 1, 32);
    const uint64_t levels = (uint64_t{1} << bits) - 1;
    page.offset_ = lo;
    page.scale_ = (hi - lo) / static_cast<double>(levels);
    if (std::isfinite(page.scale_) && page.scale_ > 0.0) {
      page.value_bits_ = bits;
      page.value_words_.assign(BitPackWords(n, bits), 0);
      for (size_t i = 0; i < n; ++i) {
        const double scaled = (values[i] - lo) / page.scale_;
        const uint64_t level = std::min(
            levels, static_cast<uint64_t>(std::llround(std::max(0.0, scaled))));
        BitPackWrite(page.value_words_, bits, i, level);
      }
    } else {
      // Constant page (hi == lo) or a range too small for a finite positive
      // scale: every value decodes to offset_ alone; no value stream.
      page.value_bits_ = 0;
      page.scale_ = 0.0;
    }
    // The soundness contract: measure the exact worst decode error with the
    // very decoder reads will use, never a closed-form estimate.
    double max_err = 0.0;
    for (size_t i = 0; i < n; ++i) {
      max_err = std::max(max_err, std::abs(page.Decode(i) - values[i]));
    }
    page.max_abs_error_ = max_err;
  } else {
    // Lossless: raw IEEE bits — exact zeros, denormals, -0.0, everything
    // round-trips bit for bit.
    page.value_bits_ = 64;
    page.value_words_.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
      page.value_words_[i] = std::bit_cast<uint64_t>(values[i]);
    }
  }
  return page;
}

uint64_t CompressedPage::size_bytes() const {
  constexpr uint64_t kHeaderBytes = 32;
  uint64_t bytes = kHeaderBytes + BitPackBytes(count_, key_bits_);
  if (value_bits_ > 0) bytes += BitPackBytes(count_, value_bits_);
  return bytes;
}

int64_t CompressedPage::FindIndex(uint64_t key) const {
  if (count_ == 0 || key < base_key_) return -1;
  const uint64_t target = key - base_key_;
  // Fixed-width packing gives O(1) access to the i-th offset: plain binary
  // search, no decode scratch.
  size_t lo = 0;
  size_t hi = count_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const uint64_t offset = BitPackRead(key_words_.data(), key_bits_, mid);
    if (offset < target) {
      lo = mid + 1;
    } else if (offset > target) {
      hi = mid;
    } else {
      return static_cast<int64_t>(mid);
    }
  }
  return -1;
}

double CompressedPage::Decode(size_t index) const {
  if (value_bits_ == 64) {
    return std::bit_cast<double>(value_words_[index]);
  }
  if (value_bits_ == 0) return offset_;
  const uint64_t level = BitPackRead(value_words_.data(), value_bits_, index);
  return offset_ + static_cast<double>(level) * scale_;
}

bool CompressedPage::Contains(uint64_t key) const {
  return FindIndex(key) >= 0;
}

double CompressedPage::ValueOr(uint64_t key, double absent) const {
  const int64_t index = FindIndex(key);
  if (index < 0) return absent;
  return Decode(static_cast<size_t>(index));
}

void CompressedPage::AppendEntries(std::vector<uint64_t>* keys,
                                   std::vector<double>* values) const {
  for (size_t i = 0; i < count_; ++i) {
    keys->push_back(base_key_ + BitPackRead(key_words_.data(), key_bits_, i));
    values->push_back(Decode(i));
  }
}

}  // namespace wavebatch
