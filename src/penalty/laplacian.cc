#include "penalty/laplacian.h"

#include "util/check.h"
#include "util/fingerprint.h"

namespace wavebatch {

namespace {
void AppendEdges(std::string& fp,
                 const std::vector<std::pair<size_t, size_t>>& edges) {
  fingerprint::AppendU64(fp, edges.size());
  for (const auto& [i, j] : edges) {
    fingerprint::AppendU64(fp, i);
    fingerprint::AppendU64(fp, j);
  }
}
}  // namespace

DifferencePenalty::DifferencePenalty(
    size_t num_queries, std::vector<std::pair<size_t, size_t>> edges)
    : num_queries_(num_queries), edges_(std::move(edges)) {
  for (const auto& [i, j] : edges_) {
    WB_CHECK_LT(i, num_queries_);
    WB_CHECK_LT(j, num_queries_);
  }
}

DifferencePenalty DifferencePenalty::ForGrid(const GridPartition& grid) {
  return DifferencePenalty(grid.num_cells(), grid.AdjacentCellPairs());
}

double DifferencePenalty::Apply(std::span<const double> e) const {
  WB_CHECK_EQ(e.size(), num_queries_);
  double acc = 0.0;
  for (const auto& [i, j] : edges_) {
    const double d = e[i] - e[j];
    acc += d * d;
  }
  return acc;
}

std::string DifferencePenalty::Fingerprint() const {
  std::string fp;
  fingerprint::AppendString(fp, name());
  fingerprint::AppendU64(fp, num_queries_);
  AppendEdges(fp, edges_);
  return fp;
}

LaplacianPenalty::LaplacianPenalty(
    size_t num_queries, std::vector<std::pair<size_t, size_t>> edges)
    : num_queries_(num_queries), neighbors_(num_queries) {
  for (const auto& [i, j] : edges) {
    WB_CHECK_LT(i, num_queries_);
    WB_CHECK_LT(j, num_queries_);
    neighbors_[i].push_back(j);
    neighbors_[j].push_back(i);
  }
}

LaplacianPenalty LaplacianPenalty::ForGrid(const GridPartition& grid) {
  return LaplacianPenalty(grid.num_cells(), grid.AdjacentCellPairs());
}

double LaplacianPenalty::Apply(std::span<const double> e) const {
  WB_CHECK_EQ(e.size(), num_queries_);
  double acc = 0.0;
  for (size_t i = 0; i < num_queries_; ++i) {
    double lap = 0.0;
    for (size_t j : neighbors_[i]) lap += e[j] - e[i];
    acc += lap * lap;
  }
  return acc;
}

std::string LaplacianPenalty::Fingerprint() const {
  // The adjacency lists are equivalent to the edge list they were built
  // from (same construction order), so they are the content to encode.
  std::string fp;
  fingerprint::AppendString(fp, name());
  fingerprint::AppendU64(fp, num_queries_);
  for (const std::vector<size_t>& list : neighbors_) {
    fingerprint::AppendU64(fp, list.size());
    for (size_t j : list) fingerprint::AppendU64(fp, j);
  }
  return fp;
}

SobolevPenalty::SobolevPenalty(size_t num_queries,
                               std::vector<std::pair<size_t, size_t>> edges,
                               double lambda)
    : num_queries_(num_queries), edges_(std::move(edges)), lambda_(lambda) {
  WB_CHECK_GE(lambda_, 0.0);
  for (const auto& [i, j] : edges_) {
    WB_CHECK_LT(i, num_queries_);
    WB_CHECK_LT(j, num_queries_);
  }
}

SobolevPenalty SobolevPenalty::ForGrid(const GridPartition& grid,
                                       double lambda) {
  return SobolevPenalty(grid.num_cells(), grid.AdjacentCellPairs(), lambda);
}

double SobolevPenalty::Apply(std::span<const double> e) const {
  WB_CHECK_EQ(e.size(), num_queries_);
  double acc = 0.0;
  for (double v : e) acc += v * v;
  for (const auto& [i, j] : edges_) {
    const double d = e[i] - e[j];
    acc += lambda_ * d * d;
  }
  return acc;
}

std::string SobolevPenalty::Fingerprint() const {
  std::string fp;
  fingerprint::AppendString(fp, name());
  fingerprint::AppendU64(fp, num_queries_);
  AppendEdges(fp, edges_);
  fingerprint::AppendF64(fp, lambda_);
  return fp;
}

}  // namespace wavebatch
