#include "engine/eval_plan.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "telemetry/span.h"
#include "util/check.h"
#include "util/parallel_sort.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace wavebatch {

namespace {

/// Runs fn over [0, n): chunked across `pool` when non-null, inline
/// otherwise. Fixed chunk boundaries; every index visited exactly once.
void ForRange(ThreadPool* pool, size_t n, size_t grain,
              const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (pool != nullptr) {
    pool->ParallelFor(n, grain, fn);
  } else {
    fn(0, n);
  }
}

}  // namespace

Result<std::shared_ptr<const EvalPlan>> EvalPlan::Build(
    const QueryBatch& batch, const LinearStrategy& strategy,
    std::shared_ptr<const PenaltyFunction> penalty,
    BuildParallelism parallelism) {
  telemetry::ScopedSpan span("plan_build");
  Result<MasterList> list = MasterList::Build(batch, strategy, parallelism);
  if (!list.ok()) return list.status();
  return FromMasterList(
      std::make_shared<const MasterList>(std::move(list).value()),
      std::move(penalty), parallelism);
}

std::shared_ptr<const EvalPlan> EvalPlan::FromMasterList(
    std::shared_ptr<const MasterList> list,
    std::shared_ptr<const PenaltyFunction> penalty,
    BuildParallelism parallelism) {
  WB_CHECK(list != nullptr);
  return std::shared_ptr<const EvalPlan>(
      new EvalPlan(std::move(list), std::move(penalty), parallelism));
}

EvalPlan::EvalPlan(std::shared_ptr<const MasterList> list,
                   std::shared_ptr<const PenaltyFunction> penalty,
                   BuildParallelism parallelism)
    : list_(std::move(list)), penalty_(std::move(penalty)) {
  const size_t n = list_->size();
  ThreadPool* pool = parallelism == BuildParallelism::kParallel
                         ? &ThreadPool::Shared()
                         : nullptr;
  const std::vector<uint64_t>& offsets = list_->uses_offsets();
  const std::vector<uint32_t>& uses_query = list_->uses_query();
  const std::vector<double>& uses_coeff = list_->uses_coeff();

  // Importances: the penalty applied to the column of query coefficients at
  // each entry. Entries are independent (PenaltyFunction::Apply is a pure
  // const read), so they fan out in fixed chunks, each chunk scribbling in
  // its own column buffer — every importance_[i] is the same value the
  // serial loop computes. The total is then summed serially in entry order:
  // the same floating-point sequence as the legacy evaluator, so sessions
  // reproduce its bounds bit for bit.
  if (penalty_ != nullptr) {
    importance_.resize(n);
    ForRange(pool, n, /*grain=*/256, [&](size_t begin, size_t end) {
      std::vector<double> column(list_->num_queries(), 0.0);
      for (size_t i = begin; i < end; ++i) {
        const uint64_t lo = offsets[i];
        const uint64_t hi = offsets[i + 1];
        for (uint64_t r = lo; r < hi; ++r) column[uses_query[r]] = uses_coeff[r];
        importance_[i] = penalty_->Apply(column);
        for (uint64_t r = lo; r < hi; ++r) column[uses_query[r]] = 0.0;
      }
    });
    for (size_t i = 0; i < n; ++i) total_importance_ += importance_[i];
  }

  // kKeyOrder: master lists are ascending by key, so identity.
  key_order_.resize(n);
  for (size_t i = 0; i < n; ++i) key_order_[i] = i;

  // kBiggestB: a max-heap of (importance, index) pairs pops them in
  // descending pair order — all pairs are distinct (indices are unique), so
  // the pop sequence IS the descending sort, ties on importance breaking
  // toward the larger index. Distinct pairs = strict total order, which is
  // what lets ParallelSort promise the serially-sorted result.
  if (penalty_ != nullptr) {
    biggest_b_ = key_order_;
    ParallelSort(biggest_b_.begin(), n,
                 [this](size_t a, size_t b) {
                   return std::make_pair(importance_[a], a) >
                          std::make_pair(importance_[b], b);
                 },
                 pool);
  }

  // kRoundRobin: each query walks its own coefficients in decreasing
  // magnitude, one per round; an entry already consumed by an earlier query
  // is skipped, i.e. the raw round-robin sequence collapses onto first
  // appearances. The per-query sorts are independent and fan out across
  // queries; each one is the exact std::sort call the legacy evaluator
  // makes (same comparator, same input sequence), so equal-magnitude ties
  // resolve identically. The collapse is inherently sequential and stays
  // serial.
  {
    std::vector<std::vector<std::pair<double, size_t>>> per_query(
        list_->num_queries());
    for (size_t i = 0; i < n; ++i) {
      for (uint64_t r = offsets[i]; r < offsets[i + 1]; ++r) {
        per_query[uses_query[r]].emplace_back(std::abs(uses_coeff[r]), i);
      }
    }
    ForRange(pool, per_query.size(), /*grain=*/8,
             [&](size_t begin, size_t end) {
               for (size_t q = begin; q < end; ++q) {
                 std::sort(per_query[q].begin(), per_query[q].end(),
                           [](const auto& a, const auto& b) {
                             return a.first > b.first;
                           });
               }
             });
    std::vector<bool> taken(n, false);
    round_robin_.reserve(n);
    for (size_t round = 0;; ++round) {
      bool any = false;
      for (const auto& v : per_query) {
        if (round >= v.size()) continue;
        any = true;
        const size_t entry = v[round].second;
        if (!taken[entry]) {
          taken[entry] = true;
          round_robin_.push_back(entry);
        }
      }
      if (!any) break;
    }
    WB_CHECK_EQ(round_robin_.size(), n);
  }
}

std::span<const size_t> EvalPlan::Permutation(ProgressionOrder order) const {
  switch (order) {
    case ProgressionOrder::kBiggestB:
      WB_CHECK(penalty_ != nullptr)
          << "kBiggestB needs a penalty (plan was built without one)";
      return biggest_b_;
    case ProgressionOrder::kRoundRobin:
      return round_robin_;
    case ProgressionOrder::kKeyOrder:
      return key_order_;
    case ProgressionOrder::kRandom:
      break;
  }
  WB_CHECK(false) << "kRandom is seed-dependent: use RandomPermutation(seed)";
  return {};
}

std::vector<size_t> EvalPlan::RandomPermutation(uint64_t seed) const {
  std::lock_guard<std::mutex> lock(random_mu_);
  if (!random_cached_ || random_seed_ != seed) {
    random_perm_ = key_order_;
    Rng rng(seed);
    rng.Shuffle(random_perm_);
    random_seed_ = seed;
    random_cached_ = true;
  }
  return random_perm_;
}

}  // namespace wavebatch
