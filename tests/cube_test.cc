#include <vector>

#include "cube/dense_cube.h"
#include "cube/relation.h"
#include "cube/schema.h"
#include "gtest/gtest.h"

namespace wavebatch {
namespace {

TEST(DenseCubeTest, ZeroInitialized) {
  DenseCube cube(Schema::Uniform(2, 4));
  EXPECT_EQ(cube.size(), 16u);
  for (uint64_t i = 0; i < cube.size(); ++i) EXPECT_EQ(cube[i], 0.0);
}

TEST(DenseCubeTest, CoordinateAndLinearAccessAgree) {
  DenseCube cube(Schema::Uniform(2, 4));
  std::vector<uint32_t> coords = {2, 3};
  cube.at(coords) = 5.5;
  EXPECT_EQ(cube[cube.schema().Pack(coords)], 5.5);
  EXPECT_EQ(cube.at(coords), 5.5);
}

TEST(DenseCubeTest, Total) {
  DenseCube cube(Schema::Uniform(1, 8));
  for (uint64_t i = 0; i < 8; ++i) cube[i] = static_cast<double>(i);
  EXPECT_DOUBLE_EQ(cube.Total(), 28.0);
}

TEST(DenseCubeTest, Norms) {
  DenseCube cube(Schema::Uniform(1, 4));
  cube[0] = 3.0;
  cube[1] = -4.0;
  EXPECT_DOUBLE_EQ(cube.SumSquares(), 25.0);
  EXPECT_DOUBLE_EQ(cube.SumAbs(), 7.0);
  EXPECT_EQ(cube.CountNonZero(), 2u);
}

TEST(DenseCubeTest, Dot) {
  DenseCube a(Schema::Uniform(1, 4));
  DenseCube b(Schema::Uniform(1, 4));
  a[0] = 1.0;
  a[2] = 2.0;
  b[0] = 3.0;
  b[2] = -1.0;
  b[3] = 100.0;
  EXPECT_DOUBLE_EQ(a.Dot(b), 1.0);
}

TEST(DenseCubeTest, CountNonZeroWithEpsilon) {
  DenseCube cube(Schema::Uniform(1, 4));
  cube[0] = 1e-15;
  cube[1] = 1.0;
  EXPECT_EQ(cube.CountNonZero(1e-12), 1u);
  EXPECT_EQ(cube.CountNonZero(0.0), 2u);
}

TEST(RelationTest, AddAndCount) {
  Relation r(Schema::Uniform(2, 4));
  r.Add({1, 2});
  r.Add({1, 2});
  r.Add({3, 0});
  EXPECT_EQ(r.num_tuples(), 3u);
  EXPECT_EQ(r.tuple(2), (Tuple{3, 0}));
}

TEST(RelationTest, FrequencyDistributionCountsMultiplicity) {
  Relation r(Schema::Uniform(2, 4));
  r.Add({1, 2});
  r.Add({1, 2});
  r.Add({3, 0});
  DenseCube delta = r.FrequencyDistribution();
  EXPECT_DOUBLE_EQ(delta.at(std::vector<uint32_t>{1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(delta.at(std::vector<uint32_t>{3, 0}), 1.0);
  EXPECT_DOUBLE_EQ(delta.at(std::vector<uint32_t>{0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(delta.Total(), 3.0);
}

TEST(RelationTest, EmptyFrequencyDistribution) {
  Relation r(Schema::Uniform(1, 8));
  DenseCube delta = r.FrequencyDistribution();
  EXPECT_DOUBLE_EQ(delta.Total(), 0.0);
}

}  // namespace
}  // namespace wavebatch
