#ifndef WAVEBATCH_WAVELET_LAZY_QUERY_TRANSFORM_H_
#define WAVEBATCH_WAVELET_LAZY_QUERY_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "wavelet/filters.h"
#include "wavelet/sparse_vec.h"

namespace wavebatch {

/// Work/result statistics of a lazy transform run (for complexity tests
/// and the micro benchmarks).
struct LazyTransformStats {
  /// Scaling/detail coefficients computed explicitly (boundary work).
  uint64_t explicit_evals = 0;
  /// Cascade levels processed symbolically.
  uint32_t symbolic_levels = 0;
  /// True if the input forced a fallback to the dense transform (degree
  /// too high for the filter's vanishing moments).
  bool dense_fallback = false;
};

/// Sparse DWT of v[x] = x^degree·χ_[lo,hi](x) over a length-n periodic
/// domain, computed in O(filter_length² · (degree+1) · log n) time — the
/// complexity Section 3.1 of the paper actually claims — instead of the
/// O(n) dense transform of SparseRangeMonomialDwt1D.
///
/// The cascade keeps each level's scaling coefficients in *symbolic* form:
/// a polynomial of degree `degree` on the interior of the (shrinking)
/// range, explicit values in an O(filter_length) band around the two range
/// edges, and zero elsewhere. Lowpass filtering maps the interior
/// polynomial to another polynomial of the same degree; highpass
/// filtering annihilates it (vanishing moments), so only the boundary
/// bands produce detail coefficients. Once the level is short the
/// remainder is materialized and transformed densely.
///
/// Requires degree <= filter.max_degree(); otherwise the interior is not
/// annihilated and the routine falls back to the dense transform (stats
/// record the fallback). Output matches SparseRangeMonomialDwt1D up to the
/// shared numeric threshold, sorted by flat index.
std::vector<SparseEntry> LazyRangeMonomialDwt1D(
    uint64_t n, uint32_t lo, uint32_t hi, uint32_t degree,
    const WaveletFilter& filter, LazyTransformStats* stats = nullptr);

}  // namespace wavebatch

#endif  // WAVEBATCH_WAVELET_LAZY_QUERY_TRANSFORM_H_
