file(REMOVE_RECURSE
  "CMakeFiles/block_progressive_test.dir/block_progressive_test.cc.o"
  "CMakeFiles/block_progressive_test.dir/block_progressive_test.cc.o.d"
  "block_progressive_test"
  "block_progressive_test.pdb"
  "block_progressive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_progressive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
