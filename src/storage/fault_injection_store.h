#ifndef WAVEBATCH_STORAGE_FAULT_INJECTION_STORE_H_
#define WAVEBATCH_STORAGE_FAULT_INJECTION_STORE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>

#include "storage/coefficient_store.h"

namespace wavebatch {

/// Deterministic fault schedule for a FaultInjectionStore. All counts are
/// 1-based over *counted* fetches (Fetch and each key of FetchBatch, in
/// batch order); 0 disables a rule.
struct FaultInjectionOptions {
  /// Fail every Nth counted fetch. The counter keeps advancing when a fault
  /// fires, so an immediate retry of the same key succeeds — this models a
  /// transient (retryable) fault.
  uint64_t fail_every_n = 0;
  /// Fail exactly the Nth counted fetch, then self-heal. Models a one-shot
  /// transient fault at a known point in a progression.
  uint64_t fail_at_fetch = 0;
  /// Injected latency per counted call (scalar fetch or batch), applied on
  /// the calling thread before the read. Models slow media; useful for
  /// exercising timeout/retry behavior in benchmarks.
  std::chrono::microseconds latency{0};
};

/// Decorator that injects faults into another store's counted read path —
/// the test double behind the fault matrix (every backend × every fault
/// shape). Peek, Add, and the scan entry points pass through untouched:
/// faults only ever hit the paper's counted retrievals, which is exactly
/// the path the engine must survive.
///
/// Injected failures surface as Status::Unavailable, the code retry logic
/// treats as transient. Rules compose: a key failed via FailKey() stays
/// failed until Heal() (a permanent fault); the schedule-based rules in
/// FaultInjectionOptions are transient by construction. A faulted fetch
/// charges nothing (the wrapper only counts successes) and never reaches
/// the inner backend.
///
/// Thread-safe like any store: the fault state is guarded by a mutex, so
/// concurrent sessions see one global fetch ordinal (the schedule is
/// deterministic only under a single-threaded caller).
///
/// PinVersion() forwards: over a versioned inner store it returns a new
/// FaultInjectionStore wrapping the pinned inner snapshot, *sharing this
/// store's fault state* — the schedule keeps one global ordinal across the
/// original and every pinned view, and FailKey()/Heal() on the original
/// affect pinned views immediately (a fault models the medium, not the
/// epoch). Pinned views are read-only: Add() on one aborts.
class FaultInjectionStore : public CoefficientStore {
 public:
  /// Owning wrap.
  FaultInjectionStore(std::unique_ptr<CoefficientStore> inner,
                      FaultInjectionOptions options = FaultInjectionOptions());

  /// Non-owning wrap: `inner` must outlive this store. Handy for injecting
  /// faults into a store another component still holds.
  FaultInjectionStore(CoefficientStore* inner,
                      FaultInjectionOptions options = FaultInjectionOptions());

  /// Makes every fetch of `key` fail (permanent fault) until Heal().
  /// Visible to every pinned view sharing this store's fault state.
  void FailKey(uint64_t key);

  /// Clears all configured faults: failed keys, fail_every_n, and any
  /// pending fail_at_fetch. Latency is left in place (it is not a fault).
  /// Heals pinned views too (shared fault state).
  void Heal();

  /// Counted fetches seen so far (successful or faulted), across this store
  /// and every pinned view sharing its state.
  uint64_t fetch_count() const;

  /// Faults fired so far (same shared scope as fetch_count()).
  uint64_t injected_failures() const;

  double Peek(uint64_t key) const override { return inner_->Peek(key); }
  void Add(uint64_t key, double delta) override;
  uint64_t NumNonZero() const override { return inner_->NumNonZero(); }
  double SumAbs() const override { return inner_->SumAbs(); }
  void ForEachNonZero(
      const std::function<void(uint64_t, double)>& fn) const override {
    inner_->ForEachNonZero(fn);
  }
  std::string name() const override { return "faulty(" + inner_->name() + ")"; }

  /// Forwards the inner store's partition: a faulty sharded plane routes
  /// exactly like a healthy one (faults hit the counted path, not routing).
  const KeyRouter* router() const override { return inner_->router(); }

  /// Lossiness is the inner store's property; faults don't change decoded
  /// values, only availability.
  double PeekErrorBound(uint64_t key) const override {
    return inner_->PeekErrorBound(key);
  }
  bool Lossy() const override { return inner_->Lossy(); }

  /// Pins the inner store's current epoch and returns a FaultInjectionStore
  /// over that snapshot, sharing this store's fault state (see class
  /// comment). Null when the inner store is its own snapshot — then this
  /// wrapper is stable too and callers use it directly.
  std::shared_ptr<const CoefficientStore> PinVersion() const override;

 protected:
  Result<double> DoFetch(uint64_t key, IoStats* io) const override;

  /// Evaluates the fault schedule per key in batch order; the first faulted
  /// key fails the whole batch (all-or-nothing, `out` unspecified) but the
  /// ordinals of the keys up to and including it are consumed — so a
  /// retried batch replays against fresh ordinals, and fail_every_n lets it
  /// through.
  Status DoFetchBatch(std::span<const uint64_t> keys, std::span<double> out,
                      IoStats* io) const override;

  /// Same schedule, hints forwarded to the inner backend on the clean path.
  Status DoFetchBatchRouted(std::span<const uint64_t> keys,
                            std::span<const uint32_t> shards,
                            std::span<double> out, IoStats* io) const override;

 private:
  /// Fault schedule + ordinal counters, shared between a store and every
  /// pinned view it hands out so the schedule stays globally deterministic
  /// and Heal() reaches all of them.
  struct FaultState {
    mutable std::mutex mu;
    FaultInjectionOptions options;
    std::unordered_set<uint64_t> failed_keys;
    uint64_t fetch_count = 0;
    uint64_t injected_failures = 0;
  };

  /// Pinned-view constructor: wraps the pinned inner snapshot and shares
  /// the parent's fault state. Read-only (mutable_inner_ stays null).
  FaultInjectionStore(std::shared_ptr<const CoefficientStore> pinned,
                      std::shared_ptr<FaultState> state);

  /// Advances the fetch ordinal for `key` and returns the injected fault,
  /// if any fires. Caller must hold state_->mu.
  Status CheckOneLocked(uint64_t key) const;

  void InjectLatency() const;

  std::unique_ptr<CoefficientStore> owned_;
  /// Keeps a pinned inner snapshot alive for a pinned view.
  std::shared_ptr<const CoefficientStore> pinned_inner_;
  /// The store every read path delegates to; never null.
  const CoefficientStore* inner_;
  /// Non-const alias of inner_ for Add(); null for a pinned (read-only)
  /// view.
  CoefficientStore* mutable_inner_ = nullptr;

  std::shared_ptr<FaultState> state_;

  /// Process-wide telemetry twin of injected_failures, labeled by store
  /// name; bound in the constructor body (name() is virtual).
  telemetry::Counter* injected_faults_metric_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STORAGE_FAULT_INJECTION_STORE_H_
