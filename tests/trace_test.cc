#include "core/trace.h"

#include <sstream>

#include "core/exact.h"
#include "data/generators.h"
#include "engine/eval_plan.h"
#include "engine/eval_session.h"
#include "gtest/gtest.h"
#include "penalty/sse.h"
#include "storage/fault_injection_store.h"
#include "strategy/wavelet_strategy.h"

namespace wavebatch {
namespace {

struct TraceFixture {
  Schema schema = Schema::Uniform(2, 16);
  Relation rel;
  QueryBatch batch;
  MasterList list;
  std::unique_ptr<CoefficientStore> store;
  std::vector<double> exact;

  TraceFixture() : rel(MakeUniformRelation(schema, 400, 3)), batch(schema) {
    WaveletStrategy strategy(schema, WaveletKind::kHaar);
    for (uint32_t i = 0; i < 8; ++i) {
      batch.Add(RangeSumQuery::Count(
          Range::All(schema).Restrict(0, i * 2, i * 2 + 1)));
    }
    list = MasterList::Build(batch, strategy).value();
    store = strategy.BuildStore(rel.FrequencyDistribution());
    exact = batch.BruteForce(rel);
  }
};

TEST(TraceTest, StartsAtZeroAndEndsExact) {
  TraceFixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  ProgressionTrace trace =
      ProgressionTrace::Run(ev, f.exact, {{"sse", &sse, 1.0}});
  ASSERT_GE(trace.points().size(), 2u);
  EXPECT_EQ(trace.points().front().retrieved, 0u);
  EXPECT_EQ(trace.points().back().retrieved, f.list.size());
  // Final estimates are exact (modulo rewrite threshold).
  EXPECT_NEAR(trace.points().back().penalties[0], 0.0, 1e-6);
  EXPECT_NEAR(trace.points().back().mean_relative_error, 0.0, 1e-9);
}

TEST(TraceTest, RetrievedStrictlyIncreases) {
  TraceFixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  ProgressionTrace trace =
      ProgressionTrace::Run(ev, f.exact, {{"sse", &sse, 1.0}});
  for (size_t i = 1; i < trace.points().size(); ++i) {
    EXPECT_GT(trace.points()[i].retrieved, trace.points()[i - 1].retrieved);
  }
}

TEST(TraceTest, DensePrefixThenGeometric) {
  TraceFixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  ProgressionTrace trace = ProgressionTrace::Run(
      ev, f.exact, {{"sse", &sse, 1.0}}, /*dense_until=*/8, /*growth=*/1.5);
  // The first checkpoints are consecutive.
  for (size_t i = 1; i < 8 && i < trace.points().size(); ++i) {
    EXPECT_EQ(trace.points()[i].retrieved, trace.points()[i - 1].retrieved + 1);
  }
}

TEST(TraceTest, MultipleMeasuresAndNormalizers) {
  TraceFixture f;
  SsePenalty sse;
  WeightedSsePenalty cursored =
      CursoredSsePenalty(f.batch.size(), std::vector<size_t>{0, 1}, 10.0);
  double norm = 0.0;
  for (double e : f.exact) norm += e * e;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  ProgressionTrace trace = ProgressionTrace::Run(
      ev, f.exact,
      {{"nsse", &sse, norm}, {"cursored", &cursored, 1.0}});
  ASSERT_EQ(trace.measure_names().size(), 2u);
  // Normalized SSE at step 0 with zero estimates = Σexact²/norm = 1.
  EXPECT_NEAR(trace.points().front().penalties[0], 1.0, 1e-9);
}

TEST(TraceTest, BoundsColumnsFilled) {
  TraceFixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  const double k = f.store->SumAbs();
  ProgressionTrace trace = ProgressionTrace::Run(
      ev, f.exact, {{"sse", &sse, 1.0}}, 16, 1.3, k, f.schema.cell_count());
  // Bound dominates measured penalty at every checkpoint.
  for (const auto& pt : trace.points()) {
    EXPECT_LE(pt.penalties[0], pt.worst_case_bound + 1e-5 * (1 + k * k));
  }
  // Expected-penalty column decreases to zero.
  EXPECT_NEAR(trace.points().back().expected_penalty, 0.0, 1e-9);
}

TEST(TraceTest, TableShape) {
  TraceFixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  ProgressionTrace trace =
      ProgressionTrace::Run(ev, f.exact, {{"sse", &sse, 1.0}});
  Table table = trace.ToTable();
  EXPECT_EQ(table.num_rows(), trace.points().size());
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_NE(os.str().find("retrieved,sse,mean_rel_err,max_rel_err"),
            std::string::npos);
}

TEST(TraceTest, SsePenaltyDecreasesOverall) {
  // Not necessarily monotone step-to-step on one dataset, but the curve
  // must collapse by orders of magnitude from start to finish.
  TraceFixture f;
  SsePenalty sse;
  ProgressiveEvaluator ev(&f.list, &sse, f.store.get());
  ProgressionTrace trace =
      ProgressionTrace::Run(ev, f.exact, {{"sse", &sse, 1.0}});
  const double start = trace.points().front().penalties[0];
  const double end = trace.points().back().penalties[0];
  EXPECT_GT(start, 0.0);
  EXPECT_LT(end, start * 1e-6);
}

TEST(TraceTest, SkippedImportanceColumnForDegradedSessions) {
  // An EvalSession in kSkip mode gets the extra skipped_importance column;
  // it starts at 0, jumps when a fault is absorbed, and never decreases.
  TraceFixture f;
  auto shared_sse = std::make_shared<SsePenalty>();
  auto plan = EvalPlan::FromMasterList(
      std::make_shared<const MasterList>(f.list), shared_sse);

  FaultInjectionStore faulty(f.store.get());
  const std::span<const size_t> order =
      plan->Permutation(ProgressionOrder::kBiggestB);
  const size_t failed_entry = order[3];
  faulty.FailKey(f.list.entry(failed_entry).key);
  const double failed_importance = plan->importance(failed_entry);

  EvalSession::Options opts;
  opts.fault_policy = FaultPolicy::kSkip;
  EvalSession session(plan, UnownedStore(faulty), opts);
  ProgressionTrace trace = ProgressionTrace::Run(
      session, f.exact, {{"sse", shared_sse.get(), 1.0}});

  EXPECT_DOUBLE_EQ(trace.points().front().skipped_importance, 0.0);
  for (size_t i = 1; i < trace.points().size(); ++i) {
    EXPECT_GE(trace.points()[i].skipped_importance,
              trace.points()[i - 1].skipped_importance);
  }
  EXPECT_DOUBLE_EQ(trace.points().back().skipped_importance,
                   failed_importance);

  // The column shows up in the table under kSkip…
  std::ostringstream os;
  trace.ToTable().PrintCsv(os);
  EXPECT_NE(os.str().find("skipped_importance"), std::string::npos);

  // …and is absent for a kFail session (and for the legacy evaluator, per
  // TableShape above).
  EvalSession clean(plan, UnownedStore(*f.store));
  ProgressionTrace clean_trace = ProgressionTrace::Run(
      clean, f.exact, {{"sse", shared_sse.get(), 1.0}});
  std::ostringstream clean_os;
  clean_trace.ToTable().PrintCsv(clean_os);
  EXPECT_EQ(clean_os.str().find("skipped_importance"), std::string::npos);
}

}  // namespace
}  // namespace wavebatch
