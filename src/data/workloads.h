#ifndef WAVEBATCH_DATA_WORKLOADS_H_
#define WAVEBATCH_DATA_WORKLOADS_H_

#include <cstdint>
#include <span>

#include "query/batch.h"
#include "query/partition.h"

namespace wavebatch {

/// What each partition cell computes.
enum class CellAggregate {
  kCount,
  /// Sum of one attribute over the cell (the paper's workload: "sum the
  /// temperature in each range"). The summed measure is
  /// `measure_offset + x_dim`: a nonzero offset models physically-coded
  /// attributes (e.g. binned Kelvin temperatures, where bin 0 is ~200 K,
  /// not absolute zero).
  kSum,
};

/// A batch of range-sums laid out over a grid partition — the paper's
/// evaluation workload shape. The grid structure is retained because the
/// cursored (P2) and Laplacian (P3) penalties are defined on cell
/// adjacency.
struct PartitionWorkload {
  Schema schema;
  GridPartition partition;
  QueryBatch batch;
};

/// Partitions the whole domain into Π parts[i] grid cells (random interior
/// cut points drawn with `seed`; pass random_cuts = false for an equal-
/// width grid) and emits one query per cell. `measure_dim` is the summed
/// attribute for kSum (ignored for kCount). Dimensions with parts[i] == 1
/// are left unrestricted.
PartitionWorkload MakePartitionWorkload(const Schema& schema,
                                        std::span<const size_t> parts,
                                        CellAggregate aggregate,
                                        size_t measure_dim, uint64_t seed,
                                        bool random_cuts = true,
                                        uint32_t min_width = 1,
                                        double measure_offset = 0.0);

/// A drill-down refinement: partitions `box` (typically one cell of a
/// coarser workload) into Π parts[i] sub-cells with the same aggregate —
/// the OLAP exploration loop the paper's introduction motivates.
PartitionWorkload MakeDrillDownWorkload(const Schema& schema,
                                        const Range& box,
                                        std::span<const size_t> parts,
                                        CellAggregate aggregate,
                                        size_t measure_dim, uint64_t seed,
                                        bool random_cuts = true,
                                        uint32_t min_width = 1,
                                        double measure_offset = 0.0);

}  // namespace wavebatch

#endif  // WAVEBATCH_DATA_WORKLOADS_H_
