file(REMOVE_RECURSE
  "CMakeFiles/wavebatch_penalty.dir/laplacian.cc.o"
  "CMakeFiles/wavebatch_penalty.dir/laplacian.cc.o.d"
  "CMakeFiles/wavebatch_penalty.dir/lp.cc.o"
  "CMakeFiles/wavebatch_penalty.dir/lp.cc.o.d"
  "CMakeFiles/wavebatch_penalty.dir/quadratic.cc.o"
  "CMakeFiles/wavebatch_penalty.dir/quadratic.cc.o.d"
  "CMakeFiles/wavebatch_penalty.dir/sse.cc.o"
  "CMakeFiles/wavebatch_penalty.dir/sse.cc.o.d"
  "libwavebatch_penalty.a"
  "libwavebatch_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavebatch_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
