#ifndef WAVEBATCH_CORE_BOUNDED_WORKSPACE_H_
#define WAVEBATCH_CORE_BOUNDED_WORKSPACE_H_

#include <cstdint>
#include <vector>

#include "core/master_list.h"
#include "storage/coefficient_store.h"

namespace wavebatch {

/// Result of a workspace-bounded exact batch evaluation.
struct BoundedWorkspaceResult {
  std::vector<double> results;
  /// Total coefficient retrievals (between the fully-shared master-list
  /// size and the naive per-query total).
  uint64_t retrievals = 0;
  /// Largest number of query coefficients materialized at any moment.
  uint64_t peak_workspace = 0;
  /// Number of query groups the batch was split into.
  size_t num_groups = 0;
};

/// Exact batch evaluation under a workspace budget — the paper's Section
/// 2.2 concern: the shared algorithm wants *all* nonzero query
/// coefficients in memory at once, which for huge batches may be
/// undesirable ("it is of practical interest to avoid simultaneous
/// materialization of all of the query coefficients").
///
/// Queries are processed in greedy groups: each group's coefficient lists
/// are materialized, merged, evaluated with full sharing, and discarded
/// before the next group starts. `max_workspace_coefficients` bounds the
/// materialized coefficients per group (a single query whose list exceeds
/// the budget gets a group of its own — exactness is never sacrificed).
/// Smaller budgets trade more repeated retrievals for less memory; an
/// unbounded budget reproduces EvaluateShared exactly, a budget of one
/// query reproduces EvaluateNaive. bench_ablation_workspace maps the
/// trade-off curve.
///
/// Superseded by engine::RunWithBoundedWorkspace; kept as the golden
/// reference implementation.
BoundedWorkspaceResult EvaluateWithBoundedWorkspace(
    const QueryBatch& batch, const LinearStrategy& strategy,
    const CoefficientStore& store, uint64_t max_workspace_coefficients);

}  // namespace wavebatch

#endif  // WAVEBATCH_CORE_BOUNDED_WORKSPACE_H_
