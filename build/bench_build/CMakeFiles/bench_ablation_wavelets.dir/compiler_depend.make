# Empty compiler generated dependencies file for bench_ablation_wavelets.
# This may be replaced when dependencies are built.
