#include "wavelet/sparse_vec.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace wavebatch {

SparseVec SparseVec::FromUnsorted(std::vector<SparseEntry> entries,
                                  double eps) {
  std::sort(entries.begin(), entries.end(),
            [](const SparseEntry& a, const SparseEntry& b) {
              return a.key < b.key;
            });
  std::vector<SparseEntry> merged;
  merged.reserve(entries.size());
  for (const SparseEntry& e : entries) {
    if (!merged.empty() && merged.back().key == e.key) {
      merged.back().value += e.value;
    } else {
      merged.push_back(e);
    }
  }
  std::vector<SparseEntry> kept;
  kept.reserve(merged.size());
  for (const SparseEntry& e : merged) {
    if (std::abs(e.value) > eps) kept.push_back(e);
  }
  SparseVec v;
  v.entries_ = std::move(kept);
  return v;
}

SparseVec SparseVec::FromSorted(std::vector<SparseEntry> entries) {
#ifndef NDEBUG
  for (size_t i = 1; i < entries.size(); ++i) {
    WB_CHECK_LT(entries[i - 1].key, entries[i].key);
  }
  for (const SparseEntry& e : entries) WB_CHECK_NE(e.value, 0.0);
#endif
  SparseVec v;
  v.entries_ = std::move(entries);
  return v;
}

double SparseVec::Dot(const SparseVec& other) const {
  double acc = 0.0;
  size_t i = 0, j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    const uint64_t ka = entries_[i].key;
    const uint64_t kb = other.entries_[j].key;
    if (ka == kb) {
      acc += entries_[i].value * other.entries_[j].value;
      ++i;
      ++j;
    } else if (ka < kb) {
      ++i;
    } else {
      ++j;
    }
  }
  return acc;
}

double SparseVec::ValueAt(uint64_t key) const {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key,
                             [](const SparseEntry& e, uint64_t k) {
                               return e.key < k;
                             });
  if (it != entries_.end() && it->key == key) return it->value;
  return 0.0;
}

double SparseVec::SumAbs() const {
  double acc = 0.0;
  for (const SparseEntry& e : entries_) acc += std::abs(e.value);
  return acc;
}

double SparseVec::SumSquares() const {
  double acc = 0.0;
  for (const SparseEntry& e : entries_) acc += e.value * e.value;
  return acc;
}

void SparseVec::Scale(double c) {
  for (SparseEntry& e : entries_) e.value *= c;
}

SparseVec SparseAccumulator::ToVec(double eps) const {
  std::vector<SparseEntry> entries;
  entries.reserve(map_.size());
  for (const auto& [key, value] : map_) entries.push_back({key, value});
  return SparseVec::FromUnsorted(std::move(entries), eps);
}

}  // namespace wavebatch
