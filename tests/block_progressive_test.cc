#include "core/block_progressive.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/exact.h"
#include "core/progressive.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "penalty/sse.h"
#include "strategy/wavelet_strategy.h"
#include "util/random.h"

namespace wavebatch {
namespace {

struct BlockFixture {
  Schema schema = Schema::Uniform(2, 16);
  Relation rel;
  QueryBatch batch;
  WaveletStrategy strategy{schema, WaveletKind::kHaar};
  std::unique_ptr<CoefficientStore> store;
  MasterList list;
  std::vector<double> expected;
  SsePenalty sse;

  BlockFixture() : rel(MakeUniformRelation(schema, 500, 7)), batch(schema) {
    Rng rng(9);
    for (int i = 0; i < 10; ++i) {
      uint32_t lo = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi = lo + static_cast<uint32_t>(rng.UniformInt(16 - lo));
      batch.Add(RangeSumQuery::Count(Range::All(schema).Restrict(0, lo, hi)));
    }
    store = strategy.BuildStore(rel.FrequencyDistribution());
    list = MasterList::Build(batch, strategy).value();
    expected = batch.BruteForce(rel);
  }
};

uint64_t BlockBy16(uint64_t key) { return key / 16; }

TEST(BlockProgressiveTest, CompletesToExactResults) {
  BlockFixture f;
  BlockProgressiveEvaluator ev(&f.list, &f.sse, f.store.get(), BlockBy16);
  while (!ev.Done()) ev.StepBlock();
  EXPECT_EQ(ev.CoefficientsFetched(), f.list.size());
  for (size_t i = 0; i < f.expected.size(); ++i) {
    EXPECT_NEAR(ev.Estimates()[i], f.expected[i],
                1e-6 * (1.0 + std::abs(f.expected[i])));
  }
}

TEST(BlockProgressiveTest, BlockImportanceIsNonIncreasing) {
  BlockFixture f;
  BlockProgressiveEvaluator ev(&f.list, &f.sse, f.store.get(), BlockBy16);
  double prev = ev.NextBlockImportance();
  while (!ev.Done()) {
    EXPECT_LE(ev.NextBlockImportance(), prev + 1e-12);
    prev = ev.NextBlockImportance();
    ev.StepBlock();
  }
  EXPECT_EQ(ev.NextBlockImportance(), 0.0);
}

TEST(BlockProgressiveTest, BlockCountMatchesDistinctBlocks) {
  BlockFixture f;
  std::set<uint64_t> distinct;
  for (size_t i = 0; i < f.list.size(); ++i) {
    distinct.insert(BlockBy16(f.list.entry(i).key));
  }
  BlockProgressiveEvaluator ev(&f.list, &f.sse, f.store.get(), BlockBy16);
  EXPECT_EQ(ev.TotalBlocks(), distinct.size());
}

TEST(BlockProgressiveTest, StepToBlocksStopsAtBudgetAndCompletion) {
  BlockFixture f;
  BlockProgressiveEvaluator ev(&f.list, &f.sse, f.store.get(), BlockBy16);
  ev.StepToBlocks(3);
  EXPECT_EQ(ev.BlocksFetched(), std::min<uint64_t>(3, ev.TotalBlocks()));
  ev.StepToBlocks(1 << 20);
  EXPECT_TRUE(ev.Done());
}

TEST(BlockProgressiveTest, GreedyMaximizesCapturedImportancePerBlockBudget) {
  // The chosen k blocks always have the maximum total importance of any k
  // blocks — the additive-importance optimality that makes sum-aggregation
  // the right block importance.
  BlockFixture f;
  // Recompute per-block importance independently.
  std::map<uint64_t, double> block_importance;
  std::vector<double> column(f.batch.size(), 0.0);
  for (size_t i = 0; i < f.list.size(); ++i) {
    for (const auto& [q, c] : f.list.entry(i).uses) column[q] = c;
    block_importance[BlockBy16(f.list.entry(i).key)] += f.sse.Apply(column);
    for (const auto& [q, c] : f.list.entry(i).uses) column[q] = 0.0;
  }
  std::vector<double> sorted;
  for (const auto& [id, imp] : block_importance) sorted.push_back(imp);
  std::sort(sorted.rbegin(), sorted.rend());

  BlockProgressiveEvaluator ev(&f.list, &f.sse, f.store.get(), BlockBy16);
  double captured = 0.0;
  size_t k = 0;
  while (!ev.Done()) {
    const double next = ev.NextBlockImportance();
    ev.StepBlock();
    captured += next;
    ++k;
    double best_possible = 0.0;
    for (size_t i = 0; i < k; ++i) best_possible += sorted[i];
    EXPECT_NEAR(captured, best_possible, 1e-9);
  }
}

TEST(BlockProgressiveTest, SingleCoefficientBlocksMatchPlainBiggestB) {
  // With one coefficient per block, the block progression degenerates to
  // the plain biggest-B progression (same estimates at every step count).
  BlockFixture f;
  BlockProgressiveEvaluator by_block(&f.list, &f.sse, f.store.get(),
                                     [](uint64_t key) { return key; });
  ProgressiveEvaluator by_coeff(&f.list, &f.sse, f.store.get());
  while (!by_block.Done()) {
    by_block.StepBlock();
    by_coeff.Step();
    // Importance ties can be ordered differently; compare the penalty of
    // the error vectors rather than raw estimates.
    std::vector<double> err_block(f.expected.size());
    std::vector<double> err_coeff(f.expected.size());
    for (size_t i = 0; i < f.expected.size(); ++i) {
      err_block[i] = by_block.Estimates()[i] - f.expected[i];
      err_coeff[i] = by_coeff.Estimates()[i] - f.expected[i];
    }
    // Equal-importance prefixes: identical guaranteed risk; realized SSE
    // may differ only through tie-order, so compare loosely.
    EXPECT_NEAR(by_block.NextBlockImportance(), by_coeff.NextImportance(),
                1e-9);
  }
}

}  // namespace
}  // namespace wavebatch
