#ifndef WAVEBATCH_UTIL_THREAD_POOL_H_
#define WAVEBATCH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/trace.h"

namespace wavebatch {

/// A fixed-size worker pool with a FIFO task queue. Used for intra-batch
/// I/O parallelism (FileStore::FetchBatch) and per-query transform
/// parallelism (MasterList::Build). Deliberately minimal: no futures, no
/// work stealing — callers that need completion tracking use ParallelFor,
/// which is the only blocking primitive.
///
/// All scheduling here is *deterministic in results*: ParallelFor
/// partitions an index range into fixed chunks and each chunk writes only
/// its own outputs, so parallel execution produces bit-identical results
/// to the serial loop regardless of interleaving.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1). A pool with 1 worker still runs tasks on that worker;
  /// ParallelFor additionally runs chunks on the calling thread.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Default chunk size for the grain-less ParallelFor overload: large
  /// enough that one chunk amortizes an enqueue + worker wake (~µs) for
  /// the cheap-per-index loops in this codebase (gathers, importance
  /// evaluations), small enough to split across a handful of workers.
  static constexpr size_t kDefaultGrain = 1024;

  /// Enqueues `task` for execution on some worker. Fire-and-forget; use
  /// ParallelFor when completion must be observed. A task that throws does
  /// not kill its worker: the exception is counted
  /// (wavebatch_thread_pool_task_exceptions_total) and dropped, and the
  /// queue-depth/tasks accounting stays balanced either way.
  ///
  /// Tracing: while telemetry is enabled, the submitter's TraceContext
  /// (trace/request ids + innermost live span) is captured with the task
  /// and installed on the worker around its execution, so spans the task
  /// records parent under the *submitting* thread's span instead of
  /// whatever happened to be live on the worker. Disabled: one relaxed
  /// load, no thread state touched.
  void Submit(std::function<void()> task);

  /// Runs fn(begin, end) over a partition of [0, n) into chunks of at most
  /// `grain` indices and blocks until every chunk has finished.
  ///
  /// Ranges that fit a single chunk (n <= grain) run inline on the calling
  /// thread as fn(0, n) — no task is enqueued and no worker is woken, so a
  /// tiny range costs exactly one call. Pick `grain` as "enough work to be
  /// worth one wake": it is both the chunk size and the inline threshold.
  ///
  /// For larger ranges the calling thread participates (it never merely
  /// waits while work remains), so ParallelFor cannot deadlock even when
  /// every worker is busy or the pool is tiny. Chunk boundaries depend only
  /// on (n, grain), never on thread count — results must not depend on
  /// which thread ran a chunk.
  ///
  /// If `fn` throws, every chunk still completes (later chunks run; outputs
  /// are then unspecified) and the FIRST exception is rethrown here on the
  /// calling thread — never on a worker, and never leaving the caller
  /// blocked or `fn` dangling.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// ParallelFor with kDefaultGrain.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn) {
    ParallelFor(n, kDefaultGrain, fn);
  }

  /// Process-wide shared pool (sized to the hardware), created on first
  /// use. Library code that wants "parallel if possible" without plumbing
  /// a pool through every signature uses this.
  static ThreadPool& Shared();

 private:
  /// A queued task plus the trace identity of whoever submitted it (the
  /// cross-thread parent link; zero-valued when telemetry was disabled at
  /// submit time).
  struct Task {
    std::function<void()> fn;
    telemetry::TraceContext ctx;
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_UTIL_THREAD_POOL_H_
