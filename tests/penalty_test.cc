#include <cmath>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "penalty/laplacian.h"
#include "penalty/lp.h"
#include "penalty/penalty.h"
#include "penalty/quadratic.h"
#include "penalty/sse.h"
#include "util/random.h"

namespace wavebatch {
namespace {

std::vector<double> RandomError(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> e(n);
  for (double& x : e) x = rng.Gaussian();
  return e;
}

TEST(SsePenaltyTest, Value) {
  SsePenalty p;
  std::vector<double> e = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(p.Apply(e), 25.0);
  EXPECT_DOUBLE_EQ(p.HomogeneityDegree(), 2.0);
  EXPECT_TRUE(p.IsQuadratic());
}

TEST(WeightedSseTest, Value) {
  WeightedSsePenalty p({2.0, 0.0, 1.0});
  std::vector<double> e = {1.0, 100.0, 3.0};
  // Zero weight declares query 1's error irrelevant.
  EXPECT_DOUBLE_EQ(p.Apply(e), 2.0 + 9.0);
}

TEST(CursoredSseTest, PrioritizesHighPrioritySet) {
  std::vector<size_t> high = {1, 3};
  WeightedSsePenalty p = CursoredSsePenalty(4, high, 10.0);
  std::vector<double> e = {1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(p.Apply(e), 10.0 + 1.0 + 10.0 + 1.0);
}

TEST(LpPenaltyTest, Values) {
  std::vector<double> e = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(LpPenalty(1.0).Apply(e), 7.0);
  EXPECT_DOUBLE_EQ(LpPenalty(2.0).Apply(e), 5.0);
  EXPECT_NEAR(LpPenalty(3.0).Apply(e), std::cbrt(27.0 + 64.0), 1e-12);
  EXPECT_DOUBLE_EQ(LpPenalty::Infinity().Apply(e), 4.0);
  EXPECT_DOUBLE_EQ(LpPenalty(1.5).HomogeneityDegree(), 1.0);
}

TEST(LpPenaltyTest, Names) {
  EXPECT_EQ(LpPenalty(2.0).name(), "l2");
  EXPECT_EQ(LpPenalty::Infinity().name(), "linf");
}

// Definition 2 properties, checked across the whole penalty zoo.
class PenaltyAxiomsTest : public ::testing::TestWithParam<int> {
 protected:
  static constexpr size_t kN = 6;

  std::unique_ptr<PenaltyFunction> Make() const {
    switch (GetParam()) {
      case 0:
        return std::make_unique<SsePenalty>();
      case 1:
        return std::make_unique<WeightedSsePenalty>(
            std::vector<double>{1, 2, 0, 4, 0.5, 3});
      case 2:
        return std::make_unique<LpPenalty>(1.0);
      case 3:
        return std::make_unique<LpPenalty>(2.5);
      case 4:
        return std::make_unique<LpPenalty>(LpPenalty::Infinity());
      case 5: {
        std::vector<std::pair<size_t, size_t>> edges = {
            {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};
        return std::make_unique<DifferencePenalty>(kN, edges);
      }
      case 6: {
        std::vector<std::pair<size_t, size_t>> edges = {
            {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};
        return std::make_unique<LaplacianPenalty>(kN, edges);
      }
      case 7: {
        std::vector<std::pair<size_t, size_t>> edges = {
            {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}};
        return std::make_unique<SobolevPenalty>(kN, edges, 1.5);
      }
      default: {
        // Random PSD matrix M·Mᵀ.
        Rng rng(31);
        std::vector<double> m(kN * kN);
        for (double& v : m) v = rng.Gaussian();
        std::vector<double> a(kN * kN, 0.0);
        for (size_t i = 0; i < kN; ++i) {
          for (size_t j = 0; j < kN; ++j) {
            for (size_t k = 0; k < kN; ++k) {
              a[i * kN + j] += m[i * kN + k] * m[j * kN + k];
            }
          }
        }
        Result<DenseQuadraticPenalty> r =
            DenseQuadraticPenalty::Create(kN, std::move(a));
        EXPECT_TRUE(r.ok()) << r.status();
        return std::make_unique<DenseQuadraticPenalty>(std::move(r).value());
      }
    }
  }
};

TEST_P(PenaltyAxiomsTest, NonNegativeAndZeroAtZero) {
  auto p = Make();
  std::vector<double> zero(kN, 0.0);
  EXPECT_DOUBLE_EQ(p->Apply(zero), 0.0);
  for (int t = 0; t < 30; ++t) {
    EXPECT_GE(p->Apply(RandomError(kN, 100 + t)), 0.0);
  }
}

TEST_P(PenaltyAxiomsTest, Symmetric) {
  auto p = Make();
  for (int t = 0; t < 30; ++t) {
    std::vector<double> e = RandomError(kN, 200 + t);
    std::vector<double> neg(kN);
    for (size_t i = 0; i < kN; ++i) neg[i] = -e[i];
    EXPECT_NEAR(p->Apply(e), p->Apply(neg), 1e-12);
  }
}

TEST_P(PenaltyAxiomsTest, Homogeneous) {
  auto p = Make();
  const double alpha = p->HomogeneityDegree();
  for (int t = 0; t < 30; ++t) {
    std::vector<double> e = RandomError(kN, 300 + t);
    const double base = p->Apply(e);
    for (double c : {0.5, 2.0, -3.0}) {
      std::vector<double> scaled(kN);
      for (size_t i = 0; i < kN; ++i) scaled[i] = c * e[i];
      EXPECT_NEAR(p->Apply(scaled), std::pow(std::abs(c), alpha) * base,
                  1e-9 * (1.0 + base));
    }
  }
}

TEST_P(PenaltyAxiomsTest, MidpointConvex) {
  auto p = Make();
  for (int t = 0; t < 30; ++t) {
    std::vector<double> a = RandomError(kN, 400 + t);
    std::vector<double> b = RandomError(kN, 500 + t);
    std::vector<double> mid(kN);
    for (size_t i = 0; i < kN; ++i) mid[i] = 0.5 * (a[i] + b[i]);
    EXPECT_LE(p->Apply(mid), 0.5 * (p->Apply(a) + p->Apply(b)) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPenalties, PenaltyAxiomsTest,
                         ::testing::Range(0, 9));

TEST(DenseQuadraticTest, RejectsNonSquare) {
  EXPECT_FALSE(DenseQuadraticPenalty::Create(2, {1.0, 2.0}).ok());
}

TEST(DenseQuadraticTest, RejectsAsymmetric) {
  EXPECT_FALSE(
      DenseQuadraticPenalty::Create(2, {1.0, 2.0, 3.0, 1.0}).ok());
}

TEST(DenseQuadraticTest, RejectsIndefinite) {
  // Eigenvalues 1 and -1.
  EXPECT_FALSE(
      DenseQuadraticPenalty::Create(2, {0.0, 1.0, 1.0, 0.0}).ok());
  EXPECT_FALSE(
      DenseQuadraticPenalty::Create(1, {-1.0}).ok());
}

TEST(DenseQuadraticTest, AcceptsSemiDefinite) {
  // Rank-1 PSD: [1 1; 1 1].
  Result<DenseQuadraticPenalty> r =
      DenseQuadraticPenalty::Create(2, {1.0, 1.0, 1.0, 1.0});
  ASSERT_TRUE(r.ok()) << r.status();
  std::vector<double> e = {1.0, -1.0};
  EXPECT_NEAR(r->Apply(e), 0.0, 1e-12);  // in the null space
}

TEST(DenseQuadraticTest, MatchesExplicitForm) {
  Result<DenseQuadraticPenalty> r =
      DenseQuadraticPenalty::Create(2, {2.0, 1.0, 1.0, 3.0});
  ASSERT_TRUE(r.ok());
  std::vector<double> e = {1.0, 2.0};
  // eᵀAe = 2 + 2·(1·2) + 3·4 = 18.
  EXPECT_DOUBLE_EQ(r->Apply(e), 18.0);
}

TEST(DifferencePenaltyTest, MatchesGraphLaplacianForm) {
  std::vector<std::pair<size_t, size_t>> edges = {{0, 1}, {1, 2}};
  DifferencePenalty p(3, edges);
  std::vector<double> e = {1.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(p.Apply(e), 9.0 + 4.0);
}

TEST(LaplacianPenaltyTest, MatchesExplicitStencil) {
  std::vector<std::pair<size_t, size_t>> edges = {{0, 1}, {1, 2}};
  LaplacianPenalty p(3, edges);
  std::vector<double> e = {1.0, 4.0, 6.0};
  // (Le)_0 = e1-e0 = 3; (Le)_1 = (e0-e1)+(e2-e1) = -1; (Le)_2 = e1-e2 = -2.
  EXPECT_DOUBLE_EQ(p.Apply(e), 9.0 + 1.0 + 4.0);
}

TEST(LaplacianPenaltyTest, ZeroOnConstantErrors) {
  // Uniform offsets fabricate no local extrema: Laplacian penalty ignores
  // them (semi-definiteness doing useful work).
  std::vector<std::pair<size_t, size_t>> edges = {{0, 1}, {1, 2}, {2, 3}};
  LaplacianPenalty lap(4, edges);
  DifferencePenalty diff(4, edges);
  std::vector<double> constant = {5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(lap.Apply(constant), 0.0);
  EXPECT_DOUBLE_EQ(diff.Apply(constant), 0.0);
}

TEST(SobolevPenaltyTest, InterpolatesSseAndDirichlet) {
  std::vector<std::pair<size_t, size_t>> edges = {{0, 1}, {1, 2}};
  std::vector<double> e = {1.0, 4.0, 6.0};
  SobolevPenalty zero_lambda(3, edges, 0.0);
  EXPECT_DOUBLE_EQ(zero_lambda.Apply(e), 1.0 + 16.0 + 36.0);
  SobolevPenalty mixed(3, edges, 0.5);
  EXPECT_DOUBLE_EQ(mixed.Apply(e), 53.0 + 0.5 * (9.0 + 4.0));
  EXPECT_TRUE(mixed.IsQuadratic());
  EXPECT_DOUBLE_EQ(mixed.HomogeneityDegree(), 2.0);
}

TEST(SobolevPenaltyTest, SatisfiesPenaltyAxioms) {
  std::vector<std::pair<size_t, size_t>> edges = {{0, 1}, {1, 2}, {2, 3}};
  SobolevPenalty p(4, edges, 2.0);
  std::vector<double> zero(4, 0.0);
  EXPECT_DOUBLE_EQ(p.Apply(zero), 0.0);
  Rng rng(91);
  for (int t = 0; t < 20; ++t) {
    std::vector<double> e = RandomError(4, 900 + t);
    EXPECT_GE(p.Apply(e), 0.0);
    std::vector<double> neg(4), twice(4);
    for (size_t i = 0; i < 4; ++i) {
      neg[i] = -e[i];
      twice[i] = 2.0 * e[i];
    }
    EXPECT_NEAR(p.Apply(neg), p.Apply(e), 1e-12);
    EXPECT_NEAR(p.Apply(twice), 4.0 * p.Apply(e), 1e-9 * (1 + p.Apply(e)));
  }
}

TEST(SobolevPenaltyTest, ForGridUsesAdjacency) {
  Schema schema = Schema::Uniform(2, 8);
  const std::vector<size_t> parts = {2, 2};
  GridPartition grid =
      GridPartition::Uniform(schema, Range::All(schema), parts);
  SobolevPenalty p = SobolevPenalty::ForGrid(grid, 1.0);
  std::vector<double> e = {0.0, 1.0, 1.0, 0.0};
  // SSE = 2; 4 grid edges each with difference 1.
  EXPECT_DOUBLE_EQ(p.Apply(e), 2.0 + 4.0);
}

TEST(CompositeQuadraticTest, LinearCombination) {
  SsePenalty sse;
  WeightedSsePenalty w({2.0, 0.0});
  CompositeQuadraticPenalty combo;
  combo.AddTerm(1.0, &sse);
  combo.AddTerm(0.5, &w);
  std::vector<double> e = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(combo.Apply(e), (1.0 + 4.0) + 0.5 * 2.0);
  EXPECT_TRUE(combo.IsQuadratic());
  EXPECT_DOUBLE_EQ(combo.HomogeneityDegree(), 2.0);
}

TEST(GridPenaltyTest, ForGridUsesPartitionAdjacency) {
  Schema schema = Schema::Uniform(2, 8);
  const std::vector<size_t> parts = {2, 2};
  GridPartition grid =
      GridPartition::Uniform(schema, Range::All(schema), parts);
  DifferencePenalty p = DifferencePenalty::ForGrid(grid);
  // 2x2 grid: 4 edges.
  std::vector<double> e = {0.0, 1.0, 1.0, 0.0};
  // Edges: (0,1),(0,2),(1,3),(2,3) each difference 1.
  EXPECT_DOUBLE_EQ(p.Apply(e), 4.0);
}

}  // namespace
}  // namespace wavebatch
