#ifndef WAVEBATCH_ENGINE_APPLY_KERNEL_H_
#define WAVEBATCH_ENGINE_APPLY_KERNEL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "core/master_list.h"
#include "util/prefetch.h"

namespace wavebatch {

/// The engine's fused gather-apply kernel over the master list's flat CSR
/// image (MasterList::keys/uses_offsets/uses_query/uses_coeff). A kernel is
/// a bundle of raw pointers into plan-owned arrays — cheap to copy, valid
/// exactly as long as the EvalPlan that handed it out (sessions hold the
/// plan via shared_ptr, so their kernel never dangles).
///
/// Everything here preserves the legacy evaluators' floating-point behavior
/// bit for bit: uses are applied in CSR row order (= ascending query index,
/// the order the pointer-based MasterEntry loop used), zero data skips the
/// whole entry (exactly the legacy `data == 0` early-out), and importance
/// is consumed with the same clamped subtraction in the same consumption
/// order. The only differences are mechanical: no per-entry heap pointer
/// chase, contiguous spans, and software prefetch of the next entry's use
/// range while the current one is applied.
struct ApplyKernel {
  const uint64_t* keys = nullptr;
  const uint64_t* offsets = nullptr;  // size() + 1 prefix offsets
  const uint32_t* query = nullptr;
  const double* coeff = nullptr;
  /// ι_p per entry; null for penalty-free (exact-only) plans.
  const double* importance = nullptr;

  static ApplyKernel For(const MasterList& list, const double* importance) {
    ApplyKernel k;
    k.keys = list.keys().data();
    k.offsets = list.uses_offsets().data();
    k.query = list.uses_query().data();
    k.coeff = list.uses_coeff().data();
    k.importance = importance;
    return k;
  }

  /// estimates[q] += c_q * data over entry's use row — the unit estimate
  /// update of Batch-Biggest-B step 5.
  void ApplyOne(size_t entry, double data, double* estimates) const {
    if (data == 0.0) return;
    const uint64_t lo = offsets[entry];
    const uint64_t hi = offsets[entry + 1];
    for (uint64_t i = lo; i < hi; ++i) {
      estimates[query[i]] += coeff[i] * data;
    }
  }

  /// Moves `entry`'s importance out of the remaining (unfetched) mass.
  /// Clamped at zero: ι sums are accumulated in a different order than they
  /// are subtracted, so the remainder can drift a few ulps below zero at
  /// the end of a run; remaining importance is a mass and never goes
  /// negative. No-op for penalty-free plans.
  void ConsumeImportance(size_t entry, double* remaining) const {
    if (importance == nullptr) return;
    *remaining = std::max(0.0, *remaining - importance[entry]);
  }

  /// Gathers the storage keys of `order[0..n)` into `out` — the fetch list
  /// for one StepBatch/StepBlock. Contiguous 8-byte loads off the CSR keys
  /// array; the gather runs ahead of itself with prefetch because the
  /// permuted access pattern defeats the hardware stride prefetcher.
  void GatherKeys(const size_t* order, size_t n, uint64_t* out) const {
    constexpr size_t kAhead = 16;
    for (size_t i = 0; i < n; ++i) {
      if (i + kAhead < n) WB_PREFETCH(&keys[order[i + kAhead]]);
      out[i] = keys[order[i]];
    }
  }

  /// Gathers precomputed per-entry shard ids of `order[0..n)` into `out` —
  /// the routing hints accompanying one StepBatch/StepBlock fetch list on a
  /// sharded plane. Same permuted-gather shape (and prefetch distance) as
  /// GatherKeys; `shard_of_entry` is session-owned, computed once per plan
  /// since a key's shard never changes under a live router.
  void GatherShards(const size_t* order, size_t n,
                    const uint32_t* shard_of_entry, uint32_t* out) const {
    constexpr size_t kAhead = 16;
    for (size_t i = 0; i < n; ++i) {
      if (i + kAhead < n) WB_PREFETCH(&shard_of_entry[order[i + kAhead]]);
      out[i] = shard_of_entry[order[i]];
    }
  }

  /// The fused batch apply: for i in [0, n), consume entry order[i]'s
  /// importance into *remaining and apply values[i] to the estimates —
  /// the identical per-entry sequence (and therefore identical
  /// floating-point accumulation) as n scalar Step() calls. While entry i
  /// applies, the next entry's offset row and use range are prefetched, so
  /// the span walk streams instead of stalling on each permuted row.
  /// `remaining` may be null only for penalty-free plans.
  void ApplyOrderedSlice(const size_t* order, size_t n, const double* values,
                         double* estimates, double* remaining) const {
    if (n == 0) return;
    // Prime the pipeline: rows for entry 0 are needed immediately.
    WB_PREFETCH(&offsets[order[0]]);
    for (size_t i = 0; i < n; ++i) {
      if (i + 2 < n) WB_PREFETCH(&offsets[order[i + 2]]);
      if (i + 1 < n) {
        const uint64_t next_lo = offsets[order[i + 1]];
        WB_PREFETCH(&coeff[next_lo]);
        WB_PREFETCH(&query[next_lo]);
      }
      const size_t entry = order[i];
      ConsumeImportance(entry, remaining);
      ApplyOne(entry, values[i], estimates);
    }
  }
};

}  // namespace wavebatch

#endif  // WAVEBATCH_ENGINE_APPLY_KERNEL_H_
