file(REMOVE_RECURSE
  "CMakeFiles/sparse_vec_test.dir/sparse_vec_test.cc.o"
  "CMakeFiles/sparse_vec_test.dir/sparse_vec_test.cc.o.d"
  "sparse_vec_test"
  "sparse_vec_test.pdb"
  "sparse_vec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_vec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
