#ifndef WAVEBATCH_SERVER_DEBUG_HTTP_H_
#define WAVEBATCH_SERVER_DEBUG_HTTP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "util/status.h"

namespace wavebatch::server {

/// A minimal embedded debug/introspection HTTP listener: loopback only,
/// GET only, one request per connection (HTTP/1.0 close semantics), serial
/// accept loop on one background thread. It exists to serve /metrics,
/// /statusz, and /tracez to curl and a Prometheus scraper — it is not a
/// general web server and must never be bound to a public interface (the
/// bind address is hard-wired to 127.0.0.1).
///
/// Handlers run on the accept thread; they should snapshot state and
/// return. A handler's returned body is sent with 200 and its declared
/// content type; unknown paths get 404. Handler registration is only
/// allowed before Start().
class DebugHttpServer {
 public:
  /// A handler returns the response body for one GET of its path.
  using Handler = std::function<std::string()>;

  DebugHttpServer() = default;
  ~DebugHttpServer();

  DebugHttpServer(const DebugHttpServer&) = delete;
  DebugHttpServer& operator=(const DebugHttpServer&) = delete;

  /// Registers `handler` for exact-match GETs of `path` (e.g. "/metrics").
  /// `content_type` is the Content-Type header value. Must be called
  /// before Start().
  void Handle(std::string path, std::string content_type, Handler handler);

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, readable
  /// via port() afterwards) and starts the accept thread.
  Status Start(uint16_t port);
  /// Stops the accept thread and closes the listener. Idempotent.
  void Stop();

  /// The bound port (0 until Start() succeeds).
  uint16_t port() const;
  bool running() const;

 private:
  struct Route {
    std::string content_type;
    Handler handler;
  };

  void AcceptLoop();
  /// Reads one request line, dispatches, writes one response, closes.
  void ServeConnection(int fd);

  mutable std::mutex mu_;
  std::map<std::string, Route> routes_;
  std::thread accept_thread_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool running_ = false;
};

}  // namespace wavebatch::server

#endif  // WAVEBATCH_SERVER_DEBUG_HTTP_H_
