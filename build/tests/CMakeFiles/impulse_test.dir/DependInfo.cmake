
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/impulse_test.cc" "tests/CMakeFiles/impulse_test.dir/impulse_test.cc.o" "gcc" "tests/CMakeFiles/impulse_test.dir/impulse_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wavebatch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/wavebatch_data.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/wavebatch_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/strategy/CMakeFiles/wavebatch_strategy.dir/DependInfo.cmake"
  "/root/repo/build/src/penalty/CMakeFiles/wavebatch_penalty.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/wavebatch_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/wavebatch_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/wavelet/CMakeFiles/wavebatch_wavelet.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/wavebatch_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wavebatch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
