#include "data/workloads.h"

#include "data/generators.h"
#include "gtest/gtest.h"

namespace wavebatch {
namespace {

TEST(WorkloadTest, PartitionWorkloadShape) {
  Schema schema = Schema::Uniform(3, 16);
  const std::vector<size_t> parts = {4, 4, 2};
  PartitionWorkload w =
      MakePartitionWorkload(schema, parts, CellAggregate::kSum, 1, 42);
  EXPECT_EQ(w.batch.size(), 32u);
  EXPECT_EQ(w.partition.num_cells(), 32u);
  EXPECT_EQ(w.batch.MaxVarDegree(), 1u);
  // Cells tile the domain.
  uint64_t volume = 0;
  for (const Range& cell : w.partition.cells()) volume += cell.Volume();
  EXPECT_EQ(volume, schema.cell_count());
}

TEST(WorkloadTest, QueriesAlignWithPartitionCells) {
  Schema schema = Schema::Uniform(2, 16);
  const std::vector<size_t> parts = {2, 3};
  PartitionWorkload w =
      MakePartitionWorkload(schema, parts, CellAggregate::kCount, 0, 7);
  for (size_t i = 0; i < w.batch.size(); ++i) {
    EXPECT_TRUE(w.batch.query(i).range() == w.partition.cell(i));
  }
}

TEST(WorkloadTest, CountAggregateDegreeZero) {
  Schema schema = Schema::Uniform(2, 8);
  const std::vector<size_t> parts = {2, 2};
  PartitionWorkload w =
      MakePartitionWorkload(schema, parts, CellAggregate::kCount, 0, 1);
  EXPECT_EQ(w.batch.MaxVarDegree(), 0u);
}

TEST(WorkloadTest, PartitionResultsSumToWholeDomain) {
  // The defining property of a partition workload: cell results add up to
  // the whole-domain aggregate.
  Schema schema = Schema::Uniform(2, 16);
  Relation rel = MakeUniformRelation(schema, 700, 13);
  const std::vector<size_t> parts = {4, 3};
  PartitionWorkload w =
      MakePartitionWorkload(schema, parts, CellAggregate::kSum, 1, 21);
  std::vector<double> results = w.batch.BruteForce(rel);
  double total = 0.0;
  for (double r : results) total += r;
  RangeSumQuery whole = RangeSumQuery::Sum(Range::All(schema), 1);
  EXPECT_NEAR(total, whole.BruteForce(rel), 1e-9);
}

TEST(WorkloadTest, UniformVsRandomCuts) {
  Schema schema = Schema::Uniform(1, 16);
  const std::vector<size_t> parts = {4};
  PartitionWorkload uniform = MakePartitionWorkload(
      schema, parts, CellAggregate::kCount, 0, 5, /*random_cuts=*/false);
  for (const Range& cell : uniform.partition.cells()) {
    EXPECT_EQ(cell.Volume(), 4u);
  }
  PartitionWorkload random = MakePartitionWorkload(
      schema, parts, CellAggregate::kCount, 0, 5, /*random_cuts=*/true);
  bool any_uneven = false;
  for (const Range& cell : random.partition.cells()) {
    any_uneven |= (cell.Volume() != 4u);
  }
  EXPECT_TRUE(any_uneven);
}

TEST(WorkloadTest, DrillDownStaysInsideBox) {
  Schema schema = Schema::Uniform(2, 32);
  Range box = Range::All(schema).Restrict(0, 8, 23).Restrict(1, 0, 15);
  const std::vector<size_t> parts = {4, 4};
  PartitionWorkload w = MakeDrillDownWorkload(
      schema, box, parts, CellAggregate::kSum, 1, 33);
  EXPECT_EQ(w.batch.size(), 16u);
  uint64_t volume = 0;
  for (const Range& cell : w.partition.cells()) {
    volume += cell.Volume();
    for (size_t d = 0; d < 2; ++d) {
      EXPECT_GE(cell.interval(d).lo, box.interval(d).lo);
      EXPECT_LE(cell.interval(d).hi, box.interval(d).hi);
    }
  }
  EXPECT_EQ(volume, box.Volume());
}

TEST(WorkloadTest, LabelsDescribeCells) {
  Schema schema = Schema::Uniform(1, 8);
  const std::vector<size_t> parts = {2};
  PartitionWorkload w = MakePartitionWorkload(
      schema, parts, CellAggregate::kSum, 0, 3, /*random_cuts=*/false);
  EXPECT_EQ(w.batch.query(0).label(), "sum:[0,3]");
  EXPECT_EQ(w.batch.query(1).label(), "sum:[4,7]");
}

}  // namespace
}  // namespace wavebatch
