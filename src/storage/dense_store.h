#ifndef WAVEBATCH_STORAGE_DENSE_STORE_H_
#define WAVEBATCH_STORAGE_DENSE_STORE_H_

#include <vector>

#include "storage/coefficient_store.h"

namespace wavebatch {

/// Array-based coefficient store — the paper's "array-based storage". Keys
/// must be dense cell ids in [0, capacity). Best for small/medium domains
/// where the transformed view is mostly nonzero anyway (e.g. prefix sums).
class DenseStore : public CoefficientStore {
 public:
  /// Zero-initialized store for keys in [0, capacity).
  explicit DenseStore(uint64_t capacity) : values_(capacity, 0.0) {}

  /// Bulk-loads from a dense value array (e.g. a transformed DenseCube's
  /// backing values, whose packed cell id equals the linear index).
  explicit DenseStore(std::vector<double> values)
      : values_(std::move(values)) {}

  double Peek(uint64_t key) const override;
  void Add(uint64_t key, double delta) override;
  uint64_t NumNonZero() const override;
  double SumAbs() const override;
  void ForEachNonZero(
      const std::function<void(uint64_t, double)>& fn) const override;
  std::string name() const override { return "dense"; }

  uint64_t capacity() const { return values_.size(); }

 protected:
  /// Out-of-capacity keys are a retrieval error, not an abort (Peek keeps
  /// the hard check — it is the trusted uncounted path).
  Result<double> DoFetch(uint64_t key, IoStats* io) const override;

  /// Single-probe gather over the backing array.
  Status DoFetchBatch(std::span<const uint64_t> keys, std::span<double> out,
                      IoStats* io) const override;

 private:
  std::vector<double> values_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STORAGE_DENSE_STORE_H_
