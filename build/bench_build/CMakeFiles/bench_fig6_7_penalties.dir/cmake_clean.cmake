file(REMOVE_RECURSE
  "../bench/bench_fig6_7_penalties"
  "../bench/bench_fig6_7_penalties.pdb"
  "CMakeFiles/bench_fig6_7_penalties.dir/bench_fig6_7_penalties.cc.o"
  "CMakeFiles/bench_fig6_7_penalties.dir/bench_fig6_7_penalties.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_7_penalties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
