#ifndef WAVEBATCH_ENGINE_EVAL_SESSION_H_
#define WAVEBATCH_ENGINE_EVAL_SESSION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "engine/apply_kernel.h"
#include "engine/eval_plan.h"
#include "storage/coefficient_store.h"
#include "util/cpu_features.h"
#include "util/status.h"

namespace wavebatch {

/// Wraps a store the caller owns (and guarantees outlives the session) in a
/// non-owning shared_ptr, for stack-allocated stores in tests and tools.
/// Heap-built stores (LinearStrategy::BuildStore) convert to an owning
/// shared_ptr directly — prefer that.
std::shared_ptr<const CoefficientStore> UnownedStore(
    const CoefficientStore& store);

/// What a session does when a counted fetch reports a non-OK Status.
enum class FaultPolicy {
  /// Propagate the Status to the caller and leave the session exactly as it
  /// was before the call: cursor, estimates, trackers, and I/O counters
  /// untouched. The caller may retry the same call (the session is
  /// resumable) or abandon the run with valid progressive bounds.
  kFail,
  /// Degraded mode: consume the failing coefficient *without its data* —
  /// the cursor advances, estimates are computed as if the coefficient were
  /// zero, and its importance moves to SkippedImportance(), which widens
  /// WorstCaseBound() additively (the skipped coefficient could still be
  /// anything, so Theorem 1's K^α·ι_p cap applies to it forever) and stays
  /// in ExpectedPenalty()'s remaining mass (it is an unused coefficient in
  /// Theorem 2's sense). Batched calls fall back to per-key scalar fetches
  /// when the batch fails, so only genuinely unavailable keys are skipped.
  kSkip,
};

/// The mutable half of a progressive batch evaluation: a cheap cursor over
/// an EvalPlan. One session = one progressive run — estimates, bound
/// trackers, step cursor, and its own I/O accounting. Sessions share
/// nothing mutable, so any number may run concurrently over one plan and
/// one store (store reads are const and thread-safe; see
/// CoefficientStore).
///
/// Every evaluation mode of the library is a session configuration:
///   exact shared       — {kKeyOrder} + RunToExact()
///   progressive        — {kBiggestB} + Step()/StepBatch() to taste
///   ablation orders    — {kRoundRobin / kRandom / kKeyOrder}
///   block-granularity  — Options::block_of set + StepBlock()
///   bounded workspace  — engine/bounded.h groups queries into sessions
/// All of them reproduce the legacy core/ evaluators bit for bit
/// (estimates, bounds, and retrieval counts) — enforced by engine_test.
struct EvalSessionOptions {
  ProgressionOrder order = ProgressionOrder::kBiggestB;
  /// Only read under kRandom.
  uint64_t seed = 0;
  /// When set, the session progresses at block granularity: entries are
  /// grouped by block_of(key), a block's importance is the sum of its
  /// members', and each StepBlock fetches one whole block. `order` is
  /// ignored (blocks always go by decreasing total importance).
  std::function<uint64_t(uint64_t)> block_of;
  /// FetchBatch chunk used by RunToExact.
  size_t run_chunk = 4096;
  /// Fetch-failure handling; see FaultPolicy.
  FaultPolicy fault_policy = FaultPolicy::kFail;
  /// Execution tier for the batched apply kernel. Unset = the best tier the
  /// build and CPU support (BestKernelTier()). An explicit tier must be
  /// usable on this host (WB_CHECK at construction). Every tier produces
  /// bit-identical estimates — this knob exists for tests and A/B
  /// benchmarking, not correctness.
  std::optional<KernelTier> kernel_tier;
};

class EvalSession {
 public:
  using Options = EvalSessionOptions;

  /// The session keeps `plan` and `store` alive; it may safely outlive the
  /// scope that created it. If `store` versions its contents (see
  /// CoefficientStore::PinVersion), the session pins the current epoch's
  /// snapshot here and reads it for its whole lifetime.
  EvalSession(std::shared_ptr<const EvalPlan> plan,
              std::shared_ptr<const CoefficientStore> store,
              Options options = Options());
  ~EvalSession();
  EvalSession(EvalSession&&) noexcept;
  EvalSession& operator=(EvalSession&&) noexcept;

  const EvalPlan& plan() const { return *plan_; }
  /// The store this session actually reads: the one passed in, or — when
  /// that store versions its contents (VersionedStore) — the immutable
  /// epoch snapshot pinned at construction.
  const CoefficientStore& store() const { return *store_; }
  const Options& options() const { return options_; }
  size_t num_queries() const { return plan_->num_queries(); }
  /// Total steps to exactness (= master list size).
  size_t TotalSteps() const { return plan_->size(); }
  uint64_t StepsTaken() const { return steps_taken_; }
  bool Done() const;

  /// One retrieval; requires !Done() and coefficient granularity. Returns
  /// the master-list entry index consumed. A non-OK Status (under kFail)
  /// leaves the session unchanged — call Step() again to retry.
  Result<size_t> Step();

  /// Up to `n` further retrievals, one storage round-trip each. Under
  /// kFail, stops at the first failing fetch (steps before it are kept —
  /// they were individually complete) and returns its Status.
  Status StepMany(size_t n);

  /// Up to `n` further retrievals issued as ONE FetchBatch; estimates,
  /// trackers, and counts identical to `n` scalar Step() calls. Returns
  /// the number of steps taken. A non-OK Status (under kFail) leaves the
  /// session unchanged — the whole batch is retryable.
  Result<size_t> StepBatch(size_t n);

  /// Runs to completion (chunked by Options::run_chunk at coefficient
  /// granularity; block by block at block granularity). Estimates are
  /// exact afterwards (under kSkip: exact up to skipped coefficients).
  /// On a non-OK Status the session stays resumable — a later
  /// RunToExact() picks up where this one stopped.
  Status RunToExact();

  /// Block granularity only: fetches the most important unfetched block,
  /// returns the number of coefficients it contributed. Requires !Done().
  /// A non-OK Status (under kFail) leaves the session unchanged.
  Result<size_t> StepBlock();
  /// Fetches blocks until `n` blocks have been consumed in total.
  Status StepToBlocks(uint64_t n);
  size_t TotalBlocks() const { return blocks_.size(); }
  uint64_t BlocksFetched() const { return blocks_fetched_; }
  uint64_t CoefficientsFetched() const { return coefficients_fetched_; }
  /// Total importance of the next block (0 when done).
  double NextBlockImportance() const;

  /// Current progressive estimates (exact once Done()).
  const std::vector<double>& Estimates() const { return estimates_; }

  /// Appends the storage keys the next up-to-`n` retrievals would fetch, in
  /// consumption order, without advancing the cursor — the shared-fetch
  /// seam: a serving layer merges the upcoming needs of many sessions into
  /// one cross-session prefetch batch (server/QueryService). At block
  /// granularity whole blocks are appended until at least `n` coefficients
  /// are covered (a block is never split). Returns the number of keys
  /// appended; uncounted (nothing is charged to io()).
  size_t PeekUpcomingKeys(size_t n, std::vector<uint64_t>* out) const;

  /// ι_p of the coefficient the next Step() retrieves (0 when done).
  /// Requires a plan with importances.
  double NextImportance() const;

  /// Theorem 1's worst-case penalty bound K^α·ι_p(ξ′) for the current
  /// approximation; `k_sum_abs` is the store's SumAbs. Sharp under
  /// kBiggestB. Under kSkip the bound widens by K^α·Σ ι_p over skipped
  /// coefficients: each one is still worth at most K in absolute value, and
  /// unlike the not-yet-fetched tail it never stops being unknown.
  double WorstCaseBound(double k_sum_abs) const;

  /// Theorem 2's expected penalty Σ_{unused ξ} ι_p(ξ) / `domain_cells`.
  /// Skipped coefficients count as unused.
  double ExpectedPenalty(uint64_t domain_cells) const;

  /// Coefficients consumed without data under FaultPolicy::kSkip.
  uint64_t SkippedCoefficients() const { return skipped_coefficients_; }
  /// Σ ι_p over skipped coefficients (0 unless kSkip absorbed a fault).
  double SkippedImportance() const { return skipped_importance_; }

  /// The apply-kernel tier this session runs (resolved at construction).
  KernelTier kernel_tier() const { return tier_; }

  /// Accumulated quantization-error mass Σ ε_ξ · ι_p(ξ)^(1/α) over the
  /// coefficients retrieved so far from a lossy store (0 on exact stores).
  /// This is the widening term WorstCaseBound() folds in; exposed for
  /// tests and diagnostics.
  double QuantizationErrorMass() const { return quant_error_l1_; }

  /// I/O charged by this session's fetches alone — per-session accounting;
  /// the shared store keeps no counters. Failed fetches charge nothing.
  const IoStats& io() const { return io_; }

 private:
  /// Per-session telemetry gauges (steps taken, remaining importance,
  /// current Theorem-1 bound, skipped mass), labeled by a process-unique
  /// session id. Created only while the registry is enabled; its destructor
  /// unregisters the gauges so finished sessions do not accumulate in the
  /// export. Incomplete here so the header stays free of telemetry types.
  struct Telemetry;

  /// Gathers keys (and, on a sharded plane, routing hints) for
  /// `order[0..n)` into the batch scratch and issues the one batched fetch
  /// of a StepBatch/StepBlock. Leaves batch_keys_/batch_values_ holding the
  /// fetched batch.
  Status BatchFetch(const size_t* order, size_t n);

  void ApplyEntry(size_t entry_idx, double data);
  /// Moves entry_idx's importance out of the remaining (unfetched) mass.
  void ConsumeImportance(size_t entry_idx);
  /// Records entry_idx as consumed-without-data (degraded mode).
  void SkipEntry(size_t entry_idx);
  /// Lossy stores only: folds the decode-error bounds of the just-applied
  /// entries `order[0..n)` into quant_error_l1_ (see WorstCaseBound).
  void AccumulateQuantError(const size_t* order, size_t n);
  /// Pushes the session's progress counters into its gauges (no-op when the
  /// session was created with telemetry disabled).
  void UpdateTelemetry();

  std::shared_ptr<const EvalPlan> plan_;
  std::shared_ptr<const CoefficientStore> store_;
  Options options_;

  // Fused gather-apply kernel over the plan's CSR image (raw pointers into
  // plan-owned arrays, valid while plan_ is held) plus reusable fetch
  // scratch: StepBatch/StepBlock/RunToExact allocate only up to the
  // high-water batch size, then recycle.
  ApplyKernel kernel_;
  std::vector<uint64_t> batch_keys_;
  std::vector<double> batch_values_;

  // Shard-aware batching over a sharded plane: when the store exposes a
  // router with more than one shard, the shard of every master-list entry
  // is resolved once here (routing is immutable for a live router) and
  // each StepBatch/StepBlock hands the gathered hints to FetchBatchRouted
  // — one scatter-gather per batch instead of a per-key routing pass.
  // Empty on unsharded stores, which keep the exact historical call path.
  std::vector<uint32_t> entry_shards_;
  std::vector<uint32_t> batch_shards_;  // per-batch gather scratch

  // Coefficient granularity: consumption order (either a view into the
  // plan's precomputed permutation or this session's seeded random one).
  std::vector<size_t> owned_permutation_;   // kRandom only
  std::span<const size_t> permutation_;

  // Block granularity.
  struct Block {
    uint64_t id;
    double importance = 0.0;
    std::vector<size_t> entries;  // master-list entry indices
  };
  std::vector<Block> blocks_;       // heap-ordered consumption via block_order_
  std::vector<size_t> block_order_;  // block indices, descending importance
  uint64_t blocks_fetched_ = 0;
  uint64_t coefficients_fetched_ = 0;

  std::vector<double> estimates_;
  uint64_t steps_taken_ = 0;
  double remaining_importance_ = 0.0;
  uint64_t skipped_coefficients_ = 0;
  double skipped_importance_ = 0.0;

  /// Resolved apply-kernel tier (see EvalSessionOptions::kernel_tier).
  KernelTier tier_ = KernelTier::kScalar;
  /// True when the (pinned) store's read path can return quantized values;
  /// gates the per-key error lookups so exact stores pay nothing.
  bool lossy_ = false;
  /// 1/α for the penalty's homogeneity degree (0 when no importance).
  double inv_alpha_ = 0.0;
  /// Σ ε_ξ · ι_p(ξ)^(1/α) over retrieved coefficients (lossy stores only).
  double quant_error_l1_ = 0.0;
  IoStats io_;
  std::unique_ptr<Telemetry> telemetry_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_ENGINE_EVAL_SESSION_H_
