#include "query/derived.h"

#include <cmath>

#include "data/generators.h"
#include "util/random.h"
#include "gtest/gtest.h"

namespace wavebatch {
namespace {

// Direct statistics over tuples in a range, for reference.
struct DirectStats {
  double count = 0, mean_i = 0, mean_j = 0, var_i = 0, cov = 0;
};

DirectStats Direct(const Relation& rel, const Range& range, size_t i,
                   size_t j) {
  DirectStats s;
  double sum_i = 0, sum_j = 0, sum_ii = 0, sum_ij = 0;
  for (const Tuple& t : rel.tuples()) {
    if (!range.Contains(t)) continue;
    s.count += 1;
    sum_i += t[i];
    sum_j += t[j];
    sum_ii += static_cast<double>(t[i]) * t[i];
    sum_ij += static_cast<double>(t[i]) * t[j];
  }
  if (s.count > 0) {
    s.mean_i = sum_i / s.count;
    s.mean_j = sum_j / s.count;
    s.var_i = sum_ii / s.count - s.mean_i * s.mean_i;
    s.cov = sum_ij / s.count - s.mean_i * s.mean_j;
  }
  return s;
}

class DerivedTest : public ::testing::Test {
 protected:
  DerivedTest()
      : rel_(MakeUniformRelation(Schema::Uniform(2, 16), 500, 77)),
        range_(Range::All(rel_.schema()).Restrict(0, 2, 13)) {}

  Relation rel_;
  Range range_;
};

TEST_F(DerivedTest, AveragePlanAndFinish) {
  QueryBatch batch(rel_.schema());
  AverageHandle h = PlanAverage(batch, range_, 1);
  EXPECT_EQ(batch.size(), 2u);
  std::vector<double> results = batch.BruteForce(rel_);
  DirectStats expected = Direct(rel_, range_, 1, 0);
  EXPECT_NEAR(FinishAverage(h, results), expected.mean_i, 1e-9);
}

TEST_F(DerivedTest, VariancePlanAndFinish) {
  QueryBatch batch(rel_.schema());
  VarianceHandle h = PlanVariance(batch, range_, 0);
  EXPECT_EQ(batch.size(), 3u);
  std::vector<double> results = batch.BruteForce(rel_);
  DirectStats expected = Direct(rel_, range_, 0, 1);
  EXPECT_NEAR(FinishVariance(h, results), expected.var_i, 1e-9);
}

TEST_F(DerivedTest, CovariancePlanAndFinish) {
  QueryBatch batch(rel_.schema());
  CovarianceHandle h = PlanCovariance(batch, range_, 0, 1);
  EXPECT_EQ(batch.size(), 4u);
  std::vector<double> results = batch.BruteForce(rel_);
  DirectStats expected = Direct(rel_, range_, 0, 1);
  EXPECT_NEAR(FinishCovariance(h, results), expected.cov, 1e-9);
}

TEST_F(DerivedTest, EmptyRangeYieldsZeroNotNan) {
  QueryBatch batch(rel_.schema());
  // A single-cell range that the uniform data may or may not hit; build an
  // empty relation instead for determinism.
  Relation empty(rel_.schema());
  AverageHandle ha = PlanAverage(batch, range_, 1);
  VarianceHandle hv = PlanVariance(batch, range_, 1);
  CovarianceHandle hc = PlanCovariance(batch, range_, 0, 1);
  std::vector<double> results = batch.BruteForce(empty);
  EXPECT_EQ(FinishAverage(ha, results), 0.0);
  EXPECT_EQ(FinishVariance(hv, results), 0.0);
  EXPECT_EQ(FinishCovariance(hc, results), 0.0);
  EXPECT_FALSE(std::isnan(FinishAverage(ha, results)));
}

TEST_F(DerivedTest, PlansComposeInOneBatch) {
  // Multiple derived aggregates share one batch (and hence I/O).
  QueryBatch batch(rel_.schema());
  AverageHandle ha = PlanAverage(batch, range_, 1);
  VarianceHandle hv = PlanVariance(batch, range_, 0);
  EXPECT_EQ(batch.size(), 5u);
  std::vector<double> results = batch.BruteForce(rel_);
  DirectStats expected = Direct(rel_, range_, 0, 1);
  EXPECT_NEAR(FinishAverage(ha, results), expected.mean_j, 1e-9);
  EXPECT_NEAR(FinishVariance(hv, results), expected.var_i, 1e-9);
}

TEST_F(DerivedTest, CorrelationMatchesDirectComputation) {
  // Reference Pearson correlation over tuples in the range.
  auto direct = [&](const Range& range, size_t i, size_t j) {
    double n = 0, si = 0, sj = 0, sii = 0, sjj = 0, sij = 0;
    for (const Tuple& t : rel_.tuples()) {
      if (!range.Contains(t)) continue;
      n += 1;
      si += t[i];
      sj += t[j];
      sii += double(t[i]) * t[i];
      sjj += double(t[j]) * t[j];
      sij += double(t[i]) * t[j];
    }
    const double mi = si / n, mj = sj / n;
    const double vi = sii / n - mi * mi, vj = sjj / n - mj * mj;
    return (sij / n - mi * mj) / std::sqrt(vi * vj);
  };
  QueryBatch batch(rel_.schema());
  CorrelationHandle h = PlanCorrelation(batch, range_, 0, 1);
  EXPECT_EQ(batch.size(), 6u);
  std::vector<double> results = batch.BruteForce(rel_);
  EXPECT_NEAR(FinishCorrelation(h, results), direct(range_, 0, 1), 1e-9);
}

TEST_F(DerivedTest, CorrelationOfAttributeWithItselfIsOne) {
  QueryBatch batch(rel_.schema());
  CorrelationHandle h = PlanCorrelation(batch, range_, 1, 1);
  std::vector<double> results = batch.BruteForce(rel_);
  EXPECT_NEAR(FinishCorrelation(h, results), 1.0, 1e-9);
}

TEST_F(DerivedTest, CorrelationZeroOnConstantAttribute) {
  // Restrict dimension 0 to a single value: zero variance.
  Range thin = Range::All(rel_.schema()).Restrict(0, 5, 5);
  QueryBatch batch(rel_.schema());
  CorrelationHandle h = PlanCorrelation(batch, thin, 0, 1);
  std::vector<double> results = batch.BruteForce(rel_);
  EXPECT_EQ(FinishCorrelation(h, results), 0.0);
}

TEST_F(DerivedTest, RegressionRecoversLinearRelationship) {
  // Data on an exact line x1 = 3·x0 + 2 (within domain bounds).
  Relation line(Schema::Uniform(2, 16));
  for (uint32_t x = 0; x < 4; ++x) {
    line.Add({x, 3 * x + 2});
    line.Add({x, 3 * x + 2});
  }
  QueryBatch batch(line.schema());
  RegressionHandle h =
      PlanRegression(batch, Range::All(line.schema()), 0, 1);
  EXPECT_EQ(batch.size(), 5u);
  std::vector<double> results = batch.BruteForce(line);
  RegressionResult fit = FinishRegression(h, results);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-9);
}

TEST_F(DerivedTest, RegressionOnConstantPredictorIsFlat) {
  Range thin = Range::All(rel_.schema()).Restrict(0, 7, 7);
  QueryBatch batch(rel_.schema());
  RegressionHandle h = PlanRegression(batch, thin, 0, 1);
  std::vector<double> results = batch.BruteForce(rel_);
  RegressionResult fit = FinishRegression(h, results);
  EXPECT_EQ(fit.slope, 0.0);
  // Intercept = mean of the response on the slice.
  DirectStats stats = Direct(rel_, thin, 1, 0);
  EXPECT_NEAR(fit.intercept, stats.mean_i, 1e-9);
}

TEST_F(DerivedTest, VarianceIsNonNegativeOnRandomRanges) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const uint32_t lo = static_cast<uint32_t>(rng.UniformInt(16));
    const uint32_t hi = lo + static_cast<uint32_t>(rng.UniformInt(16 - lo));
    Range range = Range::All(rel_.schema()).Restrict(0, lo, hi);
    QueryBatch batch(rel_.schema());
    VarianceHandle h = PlanVariance(batch, range, 1);
    std::vector<double> results = batch.BruteForce(rel_);
    EXPECT_GE(FinishVariance(h, results), -1e-9);
  }
}

}  // namespace
}  // namespace wavebatch
