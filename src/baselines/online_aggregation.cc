#include "baselines/online_aggregation.h"

#include "util/check.h"
#include "util/thread_pool.h"

namespace wavebatch {

OnlineAggregator::OnlineAggregator(const QueryBatch* batch,
                                   uint64_t total_tuples)
    : batch_(batch),
      total_tuples_(total_tuples),
      partial_sums_(batch->size(), 0.0) {
  WB_CHECK(batch_ != nullptr);
  WB_CHECK_GT(total_tuples_, 0u);
}

void OnlineAggregator::Observe(const Tuple& tuple) {
  ++tuples_seen_;
  for (size_t i = 0; i < batch_->size(); ++i) {
    const RangeSumQuery& q = batch_->query(i);
    if (q.range().Contains(tuple)) {
      partial_sums_[i] += q.poly().Evaluate(tuple);
    }
  }
}

void OnlineAggregator::ObserveMany(std::span<const Tuple> tuples) {
  if (tuples.empty()) return;
  tuples_seen_ += tuples.size();
  // Parallel over queries, serial over tuples within a query: each
  // partial_sums_ slot is owned by one chunk and accumulates in the same
  // order as repeated Observe() calls.
  ThreadPool::Shared().ParallelFor(
      batch_->size(), /*grain=*/4, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const RangeSumQuery& q = batch_->query(i);
          for (const Tuple& t : tuples) {
            if (q.range().Contains(t)) partial_sums_[i] += q.poly().Evaluate(t);
          }
        }
      });
}

std::vector<double> OnlineAggregator::Estimates() const {
  std::vector<double> out(partial_sums_.size(), 0.0);
  if (tuples_seen_ == 0) return out;
  const double scale = static_cast<double>(total_tuples_) /
                       static_cast<double>(tuples_seen_);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = partial_sums_[i] * scale;
  }
  return out;
}

}  // namespace wavebatch
