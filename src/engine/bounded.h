#ifndef WAVEBATCH_ENGINE_BOUNDED_H_
#define WAVEBATCH_ENGINE_BOUNDED_H_

#include <cstdint>
#include <vector>

#include "engine/eval_session.h"
#include "query/batch.h"
#include "strategy/linear_strategy.h"

namespace wavebatch {

/// Result of a workspace-bounded exact run through the engine.
struct BoundedRunResult {
  std::vector<double> results;
  /// I/O across all groups (retrievals between the fully-shared master-list
  /// size and the naive per-query total).
  IoStats io;
  /// Largest number of query coefficients materialized at any moment.
  uint64_t peak_workspace = 0;
  /// Number of query groups the batch was split into.
  size_t num_groups = 0;
  /// Per-query error enclosure, parallel to `results`: |reported − exact|
  /// ≤ error_bounds[q]. All zeros over an exact store ("exact" run in the
  /// usual sense); over a lossy store (quantized compressed pages) each
  /// query accumulates Σ_ξ |c_q(ξ)| · ε(ξ) over its own coefficients, so a
  /// "bounded-workspace exact" run stays honest about what it computed.
  std::vector<double> error_bounds;
};

/// Exact batch evaluation under a workspace budget, expressed in engine
/// terms: queries are greedily packed into groups whose materialized
/// coefficient lists fit `max_workspace_coefficients`; each group becomes a
/// penalty-free EvalPlan evaluated to exactness by a kKeyOrder EvalSession
/// and discarded before the next group starts. A single query over budget
/// gets its own group — exactness is never sacrificed. Results and
/// retrieval counts reproduce the legacy EvaluateWithBoundedWorkspace bit
/// for bit.
///
/// Fallible: a failed fetch (or query transform) surfaces as a non-OK
/// Status. Groups completed before the failure are discarded with the
/// partial result — the workspace-bounded run is all-or-nothing.
///
/// `parallelism` is forwarded to the per-group plan builds. Groups under a
/// tight budget are small and build serially regardless (the master-list
/// merge falls back below its parallel threshold), so the default costs
/// nothing there; generous budgets get the parallel merge.
Result<BoundedRunResult> RunWithBoundedWorkspace(
    const QueryBatch& batch, const LinearStrategy& strategy,
    const CoefficientStore& store, uint64_t max_workspace_coefficients,
    BuildParallelism parallelism = BuildParallelism::kParallel);

}  // namespace wavebatch

#endif  // WAVEBATCH_ENGINE_BOUNDED_H_
