# Empty compiler generated dependencies file for cursored_dashboard.
# This may be replaced when dependencies are built.
