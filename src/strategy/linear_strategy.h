#ifndef WAVEBATCH_STRATEGY_LINEAR_STRATEGY_H_
#define WAVEBATCH_STRATEGY_LINEAR_STRATEGY_H_

#include <memory>
#include <string>

#include "cube/dense_cube.h"
#include "cube/relation.h"
#include "query/range_sum.h"
#include "storage/coefficient_store.h"
#include "util/status.h"
#include "wavelet/sparse_vec.h"

namespace wavebatch {

/// A linear storage/evaluation strategy (Section 1.2 of the paper): the
/// materialized view is T·Δ for some linear transform T with a left
/// inverse, and every vector query q is rewritten to a vector q_T in the
/// transform domain such that
///     ⟨q, Δ⟩ = ⟨q_T, T·Δ⟩.
/// Wavelets, prefix sums, full precomputation and no precomputation are all
/// instances — and Batch-Biggest-B works uniformly on top of any of them,
/// because master lists, importance functions and progressive estimates
/// only ever see the rewritten sparse query vectors and a key-value store.
class LinearStrategy {
 public:
  virtual ~LinearStrategy() = default;

  const Schema& schema() const { return schema_; }

  /// Rewrites `query` to its sparse transform-domain representation q_T.
  /// The entry count is the single-query I/O cost of answering `query`
  /// exactly under this strategy.
  virtual Result<SparseVec> TransformQuery(
      const RangeSumQuery& query) const = 0;

  /// Materializes the view T·Δ from a dense frequency distribution.
  virtual std::unique_ptr<CoefficientStore> BuildStore(
      const DenseCube& delta) const = 0;

  /// Incremental maintenance, as data: the sparse coefficient delta that
  /// `count` new occurrences of `tuple` add to the view (count may be
  /// negative for deletions). The entry count is the strategy's per-tuple
  /// update cost — O((2δ+2)^d log^d N) for wavelets (Section 2.1 of the
  /// paper), O(N^d) worst case for prefix sums, 1 for identity. Returning
  /// the delta instead of mutating a store is what makes the update path
  /// composable: callers apply it to a store (InsertTuple), ingest it into
  /// a VersionedStore's delta overlay, or ship it to a replica.
  virtual Result<SparseVec> TransformUpdate(const Tuple& tuple,
                                            double count = 1.0) const = 0;

  /// Incremental maintenance, applied: adds TransformUpdate(tuple, count)
  /// into `store`. Non-virtual on purpose — every strategy's in-place
  /// update is exactly its update delta applied entry by entry, so the
  /// delta path and the in-place path can never drift apart.
  Status InsertTuple(CoefficientStore& store, const Tuple& tuple,
                     double count = 1.0) const;

  /// Builds an empty store and inserts every tuple of `relation` — the
  /// streaming build path (never materializes the dense cube).
  std::unique_ptr<CoefficientStore> BuildStoreFromRelation(
      const Relation& relation) const;

  /// Answers a single query exactly: rewrites it and retrieves all of its
  /// coefficients with ONE CoefficientStore::FetchBatch — e.g. the
  /// prefix-sum strategy's ≤2^d corner lookups become one batched probe
  /// instead of 2^d round-trips. Costs exactly TransformQuery(query)->size()
  /// retrievals, the strategy's single-query I/O cost, charged to `io` when
  /// the caller provides a sink.
  Result<double> AnswerQuery(const RangeSumQuery& query,
                             const CoefficientStore& store,
                             IoStats* io = nullptr) const;

  virtual std::string name() const = 0;

 protected:
  explicit LinearStrategy(Schema schema) : schema_(std::move(schema)) {}

  /// Empty store of the flavor this strategy prefers; used by
  /// BuildStoreFromRelation.
  virtual std::unique_ptr<CoefficientStore> MakeEmptyStore() const = 0;

  Schema schema_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STRATEGY_LINEAR_STRATEGY_H_
