# Empty compiler generated dependencies file for block_progressive_test.
# This may be replaced when dependencies are built.
