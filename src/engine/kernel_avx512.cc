#include "engine/kernel_tiers.h"

#if defined(WAVEBATCH_HAVE_AVX512_KERNELS)

#include <immintrin.h>

#include "util/prefetch.h"

namespace wavebatch::kernels {
namespace {

/// One entry row, vectorized over contiguous query-index runs with 256-bit
/// windows — the same strategy as the AVX2 tier (see kernel_avx2.cc for
/// the run-detection argument and the bit-identity contract). Measured on
/// AVX-512 hosts, 512-bit windows LOSE here: 8-long contiguous runs are
/// much rarer than 4-long ones, the extra window compare taxes every
/// iteration, and 512-bit µops cost frequency licensing — while the
/// i32gather/scatter formulation this file originally used was slower than
/// the plain scalar loop. The tier stays distinct so benchmarks stamp the
/// host's real capability and a profitable 512-bit formulation can slot in
/// behind the same dispatch without re-plumbing.
inline void ApplyRowAvx512(const uint32_t* query, const double* coeff,
                           uint64_t lo, uint64_t hi, double data,
                           double* estimates) {
  const __m256d vdata = _mm256_set1_pd(data);
  uint64_t j = lo;
  while (j + 4 <= hi) {
    const uint32_t q0 = query[j];
    if (query[j + 3] == q0 + 3) {
      const __m256d c = _mm256_loadu_pd(coeff + j);
      const __m256d est = _mm256_loadu_pd(estimates + q0);
      _mm256_storeu_pd(estimates + q0,
                       _mm256_add_pd(est, _mm256_mul_pd(c, vdata)));
      j += 4;
    } else {
      const double product = coeff[j] * data;
      estimates[q0] += product;
      ++j;
    }
  }
  for (; j < hi; ++j) {
    const double product = coeff[j] * data;
    estimates[query[j]] += product;
  }
}

}  // namespace

void ApplyOrderedSliceAvx512(const ApplyKernel& kernel, const size_t* order,
                             size_t n, const double* values, double* estimates,
                             double* remaining) {
  if (n == 0) return;
  WB_PREFETCH(&kernel.offsets[order[0]]);
  for (size_t i = 0; i < n; ++i) {
    if (i + 2 < n) WB_PREFETCH(&kernel.offsets[order[i + 2]]);
    if (i + 1 < n) {
      const uint64_t next_lo = kernel.offsets[order[i + 1]];
      WB_PREFETCH(&kernel.coeff[next_lo]);
      WB_PREFETCH(&kernel.query[next_lo]);
    }
    const size_t entry = order[i];
    kernel.ConsumeImportance(entry, remaining);
    const double data = values[i];
    if (data == 0.0) continue;  // the legacy zero-data early-out
    ApplyRowAvx512(kernel.query, kernel.coeff, kernel.offsets[entry],
                   kernel.offsets[entry + 1], data, estimates);
  }
}

}  // namespace wavebatch::kernels

#else  // !WAVEBATCH_HAVE_AVX512_KERNELS

namespace wavebatch::kernels {

// Toolchain cannot target AVX-512: forward to the scalar kernel. Never
// selected by dispatch (KernelTierCompiled(kAvx512) is false).
void ApplyOrderedSliceAvx512(const ApplyKernel& kernel, const size_t* order,
                             size_t n, const double* values, double* estimates,
                             double* remaining) {
  kernel.ApplyOrderedSlice(order, n, values, estimates, remaining);
}

}  // namespace wavebatch::kernels

#endif  // WAVEBATCH_HAVE_AVX512_KERNELS
