#ifndef WAVEBATCH_QUERY_DERIVED_H_
#define WAVEBATCH_QUERY_DERIVED_H_

#include <span>

#include "query/batch.h"

namespace wavebatch {

/// Derived aggregates (Section 3 of the paper): AVERAGE, VARIANCE, and
/// COVARIANCE are not vector queries themselves but are computed from the
/// COUNT / SUM / SUM-OF-PRODUCTS vector queries. The Plan* functions append
/// the needed vector queries to a batch (so they participate in I/O sharing
/// and progressive evaluation like any other query); the Finish* functions
/// combine the batch results — exact or progressive — into the statistic.

/// AVERAGE(R, x_dim) = SUM / COUNT.
struct AverageHandle {
  size_t count_idx;
  size_t sum_idx;
};
AverageHandle PlanAverage(QueryBatch& batch, const Range& range, size_t dim);
/// Returns 0 when the range is empty (count == 0).
double FinishAverage(const AverageHandle& h, std::span<const double> results);

/// Population VARIANCE(R, x_dim) = E[x²] − E[x]².
struct VarianceHandle {
  size_t count_idx;
  size_t sum_idx;
  size_t sum_sq_idx;
};
VarianceHandle PlanVariance(QueryBatch& batch, const Range& range, size_t dim);
double FinishVariance(const VarianceHandle& h,
                      std::span<const double> results);

/// Population COVARIANCE(R, x_i, x_j) = E[x_i·x_j] − E[x_i]·E[x_j].
struct CovarianceHandle {
  size_t count_idx;
  size_t sum_i_idx;
  size_t sum_j_idx;
  size_t sum_ij_idx;
};
CovarianceHandle PlanCovariance(QueryBatch& batch, const Range& range,
                                size_t dim_i, size_t dim_j);
double FinishCovariance(const CovarianceHandle& h,
                        std::span<const double> results);

/// Pearson CORRELATION(R, x_i, x_j) = cov / (σ_i·σ_j); 0 when either
/// attribute is constant on the range. Section 3 of the paper points out
/// (citing Shao [16]) that such range-level statistics all reduce to the
/// COUNT / SUM / SUM-OF-PRODUCTS vector queries.
struct CorrelationHandle {
  size_t count_idx;
  size_t sum_i_idx;
  size_t sum_j_idx;
  size_t sum_ii_idx;
  size_t sum_jj_idx;
  size_t sum_ij_idx;
};
CorrelationHandle PlanCorrelation(QueryBatch& batch, const Range& range,
                                  size_t dim_i, size_t dim_j);
double FinishCorrelation(const CorrelationHandle& h,
                         std::span<const double> results);

/// Least-squares REGRESSION of x_j on x_i over the tuples in R:
/// x_j ≈ slope·x_i + intercept. Slope is 0 when x_i is constant.
struct RegressionHandle {
  size_t count_idx;
  size_t sum_i_idx;
  size_t sum_j_idx;
  size_t sum_ii_idx;
  size_t sum_ij_idx;
};
struct RegressionResult {
  double slope = 0.0;
  double intercept = 0.0;
};
RegressionHandle PlanRegression(QueryBatch& batch, const Range& range,
                                size_t dim_i, size_t dim_j);
RegressionResult FinishRegression(const RegressionHandle& h,
                                  std::span<const double> results);

}  // namespace wavebatch

#endif  // WAVEBATCH_QUERY_DERIVED_H_
