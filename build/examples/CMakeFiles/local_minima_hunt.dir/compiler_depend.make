# Empty compiler generated dependencies file for local_minima_hunt.
# This may be replaced when dependencies are built.
