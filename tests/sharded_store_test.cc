// The sharded coefficient plane's contract: routing is a pure partition
// (values and cost identical to the unsharded plane), S=1 is bit-identical
// to the backend it wraps, S>1 is value-identical with per-shard IoStats
// summing to the unsharded totals, batches stay all-or-nothing across
// shard failures, and hot-tier promotion moves traffic off the backends
// without changing a single answer.

#include "storage/sharded_store.h"

#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/progressive.h"
#include "data/generators.h"
#include "engine/eval_plan.h"
#include "engine/eval_session.h"
#include "gtest/gtest.h"
#include "penalty/sse.h"
#include "storage/block_store.h"
#include "storage/fault_injection_store.h"
#include "storage/key_router.h"
#include "storage/memory_store.h"
#include "strategy/wavelet_strategy.h"
#include "util/random.h"

namespace wavebatch {
namespace {

TEST(KeyRouterTest, UniformPartitionCoversTheKeySpace) {
  const KeyRouter router = KeyRouter::Uniform(/*key_space=*/100,
                                              /*num_shards=*/4);
  EXPECT_EQ(router.num_shards(), 4u);
  EXPECT_EQ(router.delims(), (std::vector<uint64_t>{25, 50, 75}));
  EXPECT_EQ(router.ShardOf(0), 0u);
  EXPECT_EQ(router.ShardOf(24), 0u);
  EXPECT_EQ(router.ShardOf(25), 1u);
  EXPECT_EQ(router.ShardOf(74), 2u);
  EXPECT_EQ(router.ShardOf(75), 3u);
  EXPECT_EQ(router.ShardOf(99), 3u);
  // Keys beyond the nominal space still route (to the last shard).
  EXPECT_EQ(router.ShardOf(1'000'000), 3u);
  EXPECT_EQ(router.ShardBegin(0), 0u);
  EXPECT_EQ(router.ShardBegin(3), 75u);
}

TEST(KeyRouterTest, SingleShardOwnsEverything) {
  const KeyRouter router = KeyRouter::Uniform(1 << 20, 1);
  EXPECT_EQ(router.num_shards(), 1u);
  EXPECT_EQ(router.ShardOf(0), 0u);
  EXPECT_EQ(router.ShardOf(~uint64_t{0}), 0u);
}

/// The shared evaluation fixture (same shape as engine_test): a 2×16 Haar
/// cube, 12 Count queries, an SSE-ranked plan, and the Δ̂ store.
struct Fixture {
  Schema schema = Schema::Uniform(2, 16);
  Relation rel;
  QueryBatch batch;
  std::shared_ptr<const MasterList> list;
  std::unique_ptr<CoefficientStore> store;
  std::shared_ptr<const SsePenalty> sse = std::make_shared<SsePenalty>();
  std::shared_ptr<const EvalPlan> plan;

  Fixture() : rel(MakeUniformRelation(schema, 500, 3)), batch(schema) {
    WaveletStrategy strategy(schema, WaveletKind::kHaar);
    Rng rng(9);
    for (int i = 0; i < 12; ++i) {
      uint32_t lo0 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi0 = lo0 + static_cast<uint32_t>(rng.UniformInt(16 - lo0));
      uint32_t lo1 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi1 = lo1 + static_cast<uint32_t>(rng.UniformInt(16 - lo1));
      batch.Add(RangeSumQuery::Count(
          Range::Create(schema, {{lo0, hi0}, {lo1, hi1}}).value()));
    }
    list = std::make_shared<const MasterList>(
        MasterList::Build(batch, strategy).value());
    store = strategy.BuildStore(rel.FrequencyDistribution());
    plan = EvalPlan::FromMasterList(list, sse);
  }

  uint64_t MaxKey() const {
    uint64_t max_key = 0;
    store->ForEachNonZero(
        [&](uint64_t key, double) { max_key = std::max(max_key, key); });
    return max_key;
  }
};

/// Hash-backed shards holding `source`'s coefficients, each shard loaded
/// with exactly the keys it owns under `router`.
std::vector<std::unique_ptr<CoefficientStore>> MakeHashShards(
    const CoefficientStore& source, const KeyRouter& router) {
  std::vector<std::unique_ptr<HashStore>> shards;
  for (size_t s = 0; s < router.num_shards(); ++s) {
    shards.push_back(std::make_unique<HashStore>());
  }
  source.ForEachNonZero([&](uint64_t key, double value) {
    shards[router.ShardOf(key)]->Add(key, value);
  });
  std::vector<std::unique_ptr<CoefficientStore>> out;
  for (auto& shard : shards) out.push_back(std::move(shard));
  return out;
}

TEST(ShardedStoreTest, AggregatesMatchTheUnshardedPlane) {
  Fixture f;
  const KeyRouter router = KeyRouter::Uniform(f.MaxKey() + 1, 4);
  ShardedStore sharded(MakeHashShards(*f.store, router), router,
                       {.threads_per_shard = 0});
  EXPECT_EQ(sharded.num_shards(), 4u);
  EXPECT_EQ(sharded.NumNonZero(), f.store->NumNonZero());
  EXPECT_DOUBLE_EQ(sharded.SumAbs(), f.store->SumAbs());
  f.store->ForEachNonZero([&](uint64_t key, double value) {
    EXPECT_EQ(sharded.Peek(key), value);
  });
  ASSERT_NE(sharded.router(), nullptr);
  EXPECT_EQ(sharded.router()->num_shards(), 4u);
}

class ShardedOrderTest : public ::testing::TestWithParam<ProgressionOrder> {};

TEST_P(ShardedOrderTest, S1GoldenBitIdenticalToLegacyEvaluator) {
  // The single-shard plane wrapping a copy of the store must be
  // indistinguishable from the legacy evaluator on the store itself:
  // estimates, both bound trackers, and IoStats, at every batch boundary.
  Fixture f;
  const KeyRouter router = KeyRouter::Uniform(f.MaxKey() + 1, 1);
  ShardedStore sharded(MakeHashShards(*f.store, router), router);
  ProgressiveEvaluator legacy(f.list.get(), f.sse.get(), f.store.get(),
                              GetParam(), 17);
  EvalSession::Options opts;
  opts.order = GetParam();
  opts.seed = 17;
  EvalSession session(f.plan, UnownedStore(sharded), opts);
  const double k = f.store->SumAbs();
  const size_t batch_sizes[] = {1, 3, 7, 16, 64};
  size_t bi = 0;
  while (!session.Done()) {
    const size_t n = batch_sizes[bi++ % std::size(batch_sizes)];
    const size_t taken = session.StepBatch(n).value();
    EXPECT_EQ(taken, legacy.StepBatch(n));
    ASSERT_EQ(session.StepsTaken(), legacy.StepsTaken());
    for (size_t q = 0; q < f.batch.size(); ++q) {
      EXPECT_EQ(session.Estimates()[q], legacy.Estimates()[q])
          << "query " << q << " after " << session.StepsTaken();
    }
    EXPECT_EQ(session.WorstCaseBound(k), legacy.WorstCaseBound(k));
    EXPECT_EQ(session.ExpectedPenalty(f.schema.cell_count()),
              legacy.ExpectedPenalty(f.schema.cell_count()));
    EXPECT_EQ(session.io(), legacy.io());
  }
  EXPECT_TRUE(legacy.Done());
  EXPECT_EQ(session.io().retrievals, f.list->size());
}

TEST_P(ShardedOrderTest, S4GoldenValueIdenticalToLegacyEvaluator) {
  // Four shards with real fan-out: every estimate, bound, and the
  // retrieval total must still match the legacy evaluator exactly — the
  // scatter-gather reorders I/O, never arithmetic.
  Fixture f;
  const KeyRouter router = KeyRouter::Uniform(f.MaxKey() + 1, 4);
  ShardedStore sharded(MakeHashShards(*f.store, router), router,
                       {.threads_per_shard = 1});
  ProgressiveEvaluator legacy(f.list.get(), f.sse.get(), f.store.get(),
                              GetParam(), 17);
  EvalSession::Options opts;
  opts.order = GetParam();
  opts.seed = 17;
  EvalSession session(f.plan, UnownedStore(sharded), opts);
  const double k = f.store->SumAbs();
  while (!session.Done()) {
    const size_t taken = session.StepBatch(16).value();
    EXPECT_EQ(taken, legacy.StepBatch(16));
    for (size_t q = 0; q < f.batch.size(); ++q) {
      EXPECT_EQ(session.Estimates()[q], legacy.Estimates()[q])
          << "query " << q << " after " << session.StepsTaken();
    }
    EXPECT_EQ(session.WorstCaseBound(k), legacy.WorstCaseBound(k));
    EXPECT_EQ(session.io(), legacy.io());
  }
  EXPECT_TRUE(legacy.Done());
  // Every counted key was served by the shard the router assigned it.
  uint64_t shard_sum = 0;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    shard_sum += sharded.shard_keys_fetched(s);
  }
  EXPECT_EQ(shard_sum, session.io().retrievals);
  EXPECT_GT(sharded.subbatches_issued(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Orders, ShardedOrderTest,
                         ::testing::Values(ProgressionOrder::kBiggestB,
                                           ProgressionOrder::kRoundRobin,
                                           ProgressionOrder::kKeyOrder,
                                           ProgressionOrder::kRandom));

TEST(ShardedStoreTest, PerShardBlockCountersSumToTheUnshardedTotals) {
  // Block-simulated shards: with router delimiters aligned to block
  // boundaries, the merged IoStats (retrievals AND block reads/hits) must
  // equal the unsharded block store's — the sub-model counters survive the
  // scatter-gather merge intact.
  Fixture f;
  constexpr uint64_t kBlockSize = 8;
  // Round the key space up so every Uniform delimiter is block-aligned.
  const uint64_t key_space = (f.MaxKey() / (4 * kBlockSize) + 1) *
                             (4 * kBlockSize);
  const KeyRouter router = KeyRouter::Uniform(key_space, 4);
  for (uint64_t delim : router.delims()) ASSERT_EQ(delim % kBlockSize, 0u);

  auto make_blocked = [&](std::unique_ptr<CoefficientStore> inner) {
    return std::make_unique<BlockStore>(std::move(inner), kBlockSize,
                                        /*cache_blocks=*/0);
  };
  std::vector<std::unique_ptr<CoefficientStore>> shards;
  for (auto& shard : MakeHashShards(*f.store, router)) {
    shards.push_back(make_blocked(std::move(shard)));
  }
  ShardedStore sharded(std::move(shards), router, {.threads_per_shard = 1});

  auto unsharded_inner = std::make_unique<HashStore>();
  f.store->ForEachNonZero(
      [&](uint64_t key, double value) { unsharded_inner->Add(key, value); });
  BlockStore unsharded(std::move(unsharded_inner), kBlockSize,
                       /*cache_blocks=*/0);

  EvalSession::Options opts;
  opts.order = ProgressionOrder::kBiggestB;
  EvalSession sharded_session(f.plan, UnownedStore(sharded), opts);
  EvalSession unsharded_session(f.plan, UnownedStore(unsharded), opts);
  ASSERT_TRUE(sharded_session.RunToExact().ok());
  ASSERT_TRUE(unsharded_session.RunToExact().ok());
  for (size_t q = 0; q < f.batch.size(); ++q) {
    EXPECT_EQ(sharded_session.Estimates()[q], unsharded_session.Estimates()[q]);
  }
  EXPECT_EQ(sharded_session.io(), unsharded_session.io());
}

TEST(ShardedStoreTest, ShardFailureFailsTheWholeBatchAndChargesNothing) {
  Fixture f;
  const KeyRouter router = KeyRouter::Uniform(f.MaxKey() + 1, 4);
  std::vector<std::unique_ptr<CoefficientStore>> shards;
  std::vector<FaultInjectionStore*> faulty(4, nullptr);
  for (auto& shard : MakeHashShards(*f.store, router)) {
    auto wrapped = std::make_unique<FaultInjectionStore>(std::move(shard));
    faulty[shards.size()] = wrapped.get();
    shards.push_back(std::move(wrapped));
  }
  ShardedStore sharded(std::move(shards), router, {.threads_per_shard = 1});

  // A batch spanning all four shards; fail one key owned by shard 2.
  std::vector<uint64_t> keys;
  std::vector<uint32_t> seen_shards(4, 0);
  f.store->ForEachNonZero([&](uint64_t key, double) {
    const uint32_t s = router.ShardOf(key);
    if (seen_shards[s] < 4) {
      ++seen_shards[s];
      keys.push_back(key);
    }
  });
  ASSERT_GE(keys.size(), 4u);
  uint64_t bad_key = 0;
  for (uint64_t key : keys) {
    if (router.ShardOf(key) == 2) {
      bad_key = key;
      break;
    }
  }
  faulty[2]->FailKey(bad_key);

  std::vector<double> out(keys.size(), -1.0);
  IoStats io;
  Status status = sharded.FetchBatch(keys, out, &io);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(io.retrievals, 0u);  // all-or-nothing: nothing charged

  faulty[2]->Heal();
  ASSERT_TRUE(sharded.FetchBatch(keys, out, &io).ok());
  EXPECT_EQ(io.retrievals, keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(out[i], f.store->Peek(keys[i])) << "key " << keys[i];
  }
}

TEST(ShardedStoreTest, RebalancePromotesHotRangesIntoTheMemoryTier) {
  Fixture f;
  const KeyRouter router = KeyRouter::Uniform(f.MaxKey() + 1, 4);
  std::vector<std::unique_ptr<CoefficientStore>> shards;
  std::vector<FaultInjectionStore*> faulty(4, nullptr);
  for (auto& shard : MakeHashShards(*f.store, router)) {
    auto wrapped = std::make_unique<FaultInjectionStore>(std::move(shard));
    faulty[shards.size()] = wrapped.get();
    shards.push_back(std::move(wrapped));
  }
  ShardedStoreOptions opts;
  opts.threads_per_shard = 0;
  opts.hot_range_bits = 3;  // 8-key ranges
  opts.promote_min_fetches = 4;
  opts.max_hot_ranges = 2;
  ShardedStore sharded(std::move(shards), router, opts);
  EXPECT_EQ(sharded.epoch(), 0u);

  // Pick two nonzero "head" keys on different shards and hammer them.
  std::vector<uint64_t> head;
  f.store->ForEachNonZero([&](uint64_t key, double) {
    if (head.empty()) {
      head.push_back(key);
    } else if (head.size() == 1 &&
               router.ShardOf(key) != router.ShardOf(head[0]) &&
               (key >> opts.hot_range_bits) != (head[0] >> opts.hot_range_bits)) {
      head.push_back(key);
    }
  });
  ASSERT_EQ(head.size(), 2u);
  IoStats io;
  for (int round = 0; round < 8; ++round) {
    for (uint64_t key : head) {
      ASSERT_TRUE(sharded.Fetch(key, &io).ok());
    }
  }
  EXPECT_EQ(sharded.hot_hits(), 0u);  // nothing promoted before Rebalance()

  const RebalanceReport report = sharded.Rebalance();
  EXPECT_EQ(report.epoch, 1u);
  EXPECT_EQ(sharded.epoch(), 1u);
  EXPECT_EQ(report.hot_ranges, 2u);
  EXPECT_GE(report.hot_keys, 2u);

  // Proof the hot tier serves from memory: fail the head keys on their
  // backends — fetches must still succeed, with the correct values, and
  // without advancing the backends' fetch ordinals.
  for (uint64_t key : head) faulty[router.ShardOf(key)]->FailKey(key);
  std::vector<uint64_t> backend_fetches;
  for (auto* store : faulty) backend_fetches.push_back(store->fetch_count());
  const uint64_t hot_before = sharded.hot_hits();
  for (uint64_t key : head) {
    Result<double> value = sharded.Fetch(key, &io);
    ASSERT_TRUE(value.ok()) << "hot key must be served from the memory tier";
    EXPECT_EQ(*value, f.store->Peek(key));
  }
  EXPECT_EQ(sharded.hot_hits(), hot_before + head.size());
  for (size_t s = 0; s < faulty.size(); ++s) {
    EXPECT_EQ(faulty[s]->fetch_count(), backend_fetches[s])
        << "shard " << s << " backend touched for a hot key";
  }

  // Batches mix tiers: hot keys from memory, cold keys from shards.
  std::vector<uint64_t> mixed = head;
  f.store->ForEachNonZero([&](uint64_t key, double) {
    if (mixed.size() < 6 && key != head[0] && key != head[1]) {
      mixed.push_back(key);
    }
  });
  std::vector<double> out(mixed.size());
  ASSERT_TRUE(sharded.FetchBatch(mixed, out, &io).ok());
  for (size_t i = 0; i < mixed.size(); ++i) {
    EXPECT_EQ(out[i], f.store->Peek(mixed[i]));
  }

  // Rebalancing against an empty observation window demotes everything:
  // the first call consumes the window accumulated above, the second sees
  // no traffic at all and installs no tier.
  EXPECT_EQ(sharded.Rebalance().epoch, 2u);
  const RebalanceReport demoted = sharded.Rebalance();
  EXPECT_EQ(demoted.epoch, 3u);
  EXPECT_EQ(demoted.hot_ranges, 0u);
  for (uint64_t key : head) {
    EXPECT_FALSE(sharded.Fetch(key, &io).ok())
        << "demoted key must hit the (failed) backend again";
  }
}

TEST(ShardedStoreTest, HotTierTelemetrySplitsTrafficByTier) {
  Fixture f;
  const KeyRouter router = KeyRouter::Uniform(f.MaxKey() + 1, 2);
  ShardedStoreOptions opts;
  opts.threads_per_shard = 0;
  opts.hot_range_bits = 3;
  opts.promote_min_fetches = 2;
  ShardedStore sharded(MakeHashShards(*f.store, router), router, opts);

  auto& registry = telemetry::MetricsRegistry::Default();
  telemetry::Counter* hot = registry.GetCounter(
      "wavebatch_sharded_tier_keys_total",
      {{"store", sharded.name()}, {"tier", "hot"}});
  telemetry::Counter* cold = registry.GetCounter(
      "wavebatch_sharded_tier_keys_total",
      {{"store", sharded.name()}, {"tier", "cold"}});
  telemetry::Gauge* hot_ranges =
      registry.GetGauge("wavebatch_sharded_hot_ranges",
                        {{"store", sharded.name()}});

  uint64_t head_key = ~uint64_t{0};
  f.store->ForEachNonZero(
      [&](uint64_t key, double) { head_key = std::min(head_key, key); });
  ASSERT_NE(head_key, ~uint64_t{0});

  const uint64_t cold_before = cold->Value();
  IoStats io;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(sharded.Fetch(head_key, &io).ok());
  EXPECT_EQ(cold->Value(), cold_before + 4);

  ASSERT_GE(sharded.Rebalance().hot_ranges, 1u);
  EXPECT_GE(hot_ranges->Value(), 1.0);

  const uint64_t hot_before = hot->Value();
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(sharded.Fetch(head_key, &io).ok());
  EXPECT_EQ(hot->Value(), hot_before + 4)
      << "the head of the workload must be absorbed by the hot tier";
}

TEST(ShardedStoreTest, RebalanceConcurrentWithFetchBatchIsSafe) {
  // The TSan race surface: promotion/demotion swapping the tier while
  // sessions batch-fetch through it. Values must stay correct under every
  // interleaving (each batch pins one epoch's placement).
  Fixture f;
  const KeyRouter router = KeyRouter::Uniform(f.MaxKey() + 1, 4);
  ShardedStoreOptions opts;
  opts.threads_per_shard = 1;
  opts.hot_range_bits = 3;
  opts.promote_min_fetches = 2;
  ShardedStore sharded(MakeHashShards(*f.store, router), router, opts);

  std::vector<uint64_t> keys;
  std::vector<double> expected;
  f.store->ForEachNonZero([&](uint64_t key, double value) {
    if (keys.size() < 64) {
      keys.push_back(key);
      expected.push_back(value);
    }
  });
  ASSERT_FALSE(keys.empty());

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::vector<double> out(keys.size());
      IoStats io;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!sharded.FetchBatch(keys, out, &io).ok()) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (size_t i = 0; i < keys.size(); ++i) {
          if (out[i] != expected[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    sharded.Rebalance();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(sharded.epoch(), 50u);
}

}  // namespace
}  // namespace wavebatch
