#include "cube/relation.h"

#include "util/check.h"

namespace wavebatch {

void Relation::Add(Tuple t) {
  WB_CHECK(schema_.Contains(t)) << "tuple outside domain of "
                                << schema_.ToString();
  tuples_.push_back(std::move(t));
}

DenseCube Relation::FrequencyDistribution() const {
  DenseCube delta(schema_);
  for (const Tuple& t : tuples_) {
    delta[schema_.Pack(t)] += 1.0;
  }
  return delta;
}

}  // namespace wavebatch
