#include "wavelet/query_transform.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"
#include "wavelet/dwt1d.h"

namespace wavebatch {
namespace {

std::vector<double> DenseMonomialRange(uint64_t n, uint32_t lo, uint32_t hi,
                                       uint32_t degree) {
  std::vector<double> v(n, 0.0);
  for (uint64_t x = lo; x <= hi; ++x) {
    v[x] = degree == 0 ? 1.0 : std::pow(static_cast<double>(x), degree);
  }
  return v;
}

class QueryTransformTest
    : public ::testing::TestWithParam<std::tuple<WaveletKind, size_t>> {
 protected:
  const WaveletFilter& filter() const {
    return WaveletFilter::Get(std::get<0>(GetParam()));
  }
  size_t n() const { return std::get<1>(GetParam()); }
};

TEST_P(QueryTransformTest, MatchesDenseTransform) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t lo = static_cast<uint32_t>(rng.UniformInt(n()));
    const uint32_t hi =
        lo + static_cast<uint32_t>(rng.UniformInt(n() - lo));
    const uint32_t degree = static_cast<uint32_t>(
        rng.UniformInt(filter().max_degree() + 1));
    std::vector<double> dense = DenseMonomialRange(n(), lo, hi, degree);
    ForwardDwt1D(dense, filter());
    double max_abs = 0.0;
    for (double v : dense) max_abs = std::max(max_abs, std::abs(v));

    std::vector<SparseEntry> sparse =
        SparseRangeMonomialDwt1D(n(), lo, hi, degree, filter());
    std::vector<double> reconstructed(n(), 0.0);
    for (const SparseEntry& e : sparse) {
      ASSERT_LT(e.key, n());
      reconstructed[e.key] = e.value;
    }
    for (size_t i = 0; i < n(); ++i) {
      EXPECT_NEAR(reconstructed[i], dense[i], max_abs * 1e-10)
          << "lo=" << lo << " hi=" << hi << " deg=" << degree << " i=" << i;
    }
  }
}

TEST_P(QueryTransformTest, SupportIsLogarithmicForSupportedDegrees) {
  // The Section 3.1 sparsity claim, per dimension: a degree-δ monomial on a
  // range has O(L·log n) nonzero coefficients when L = filter length
  // >= 2δ+2. (Two range edges, ≤ L wavelets straddling each per level,
  // plus coarse levels.)
  if (n() < 8) return;
  const size_t log_n = static_cast<size_t>(std::log2(n()));
  const size_t bound = 2 * filter().length() * log_n + 2 * filter().length();
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t lo = static_cast<uint32_t>(rng.UniformInt(n()));
    const uint32_t hi = lo + static_cast<uint32_t>(rng.UniformInt(n() - lo));
    for (uint32_t degree = 0; degree <= filter().max_degree(); ++degree) {
      std::vector<SparseEntry> sparse =
          SparseRangeMonomialDwt1D(n(), lo, hi, degree, filter());
      EXPECT_LE(sparse.size(), bound)
          << "lo=" << lo << " hi=" << hi << " deg=" << degree;
    }
  }
}

TEST_P(QueryTransformTest, FullDomainCountIsSingleCoefficient) {
  // χ over the whole (periodic) domain is constant: one scaling coefficient.
  std::vector<SparseEntry> sparse = SparseRangeMonomialDwt1D(
      n(), 0, static_cast<uint32_t>(n() - 1), 0, filter());
  ASSERT_EQ(sparse.size(), 1u);
  EXPECT_EQ(sparse[0].key, 0u);
  EXPECT_NEAR(sparse[0].value, std::sqrt(static_cast<double>(n())), 1e-9);
}

TEST_P(QueryTransformTest, InnerProductWithImpulseEvaluatesQuery) {
  // <q, e_x> = q[x]: the 1-D version of Equation (1).
  if (filter().max_degree() < 1 || n() < 8) return;
  const uint32_t lo = 2, hi = static_cast<uint32_t>(n() - 3);
  std::vector<SparseEntry> q =
      SparseRangeMonomialDwt1D(n(), lo, hi, 1, filter());
  std::vector<double> qdense(n(), 0.0);
  for (const SparseEntry& e : q) qdense[e.key] = e.value;
  for (uint32_t x = 0; x < n(); ++x) {
    std::vector<double> impulse(n(), 0.0);
    impulse[x] = 1.0;
    ForwardDwt1D(impulse, filter());
    double dot = 0.0;
    for (size_t i = 0; i < n(); ++i) dot += qdense[i] * impulse[i];
    const double expected = (x >= lo && x <= hi) ? x : 0.0;
    EXPECT_NEAR(dot, expected, 1e-6) << "x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FiltersAndSizes, QueryTransformTest,
    ::testing::Combine(::testing::Values(WaveletKind::kHaar, WaveletKind::kDb4,
                                         WaveletKind::kDb6, WaveletKind::kDb8),
                       ::testing::Values<size_t>(8, 32, 128, 1024)));

TEST(QueryTransformBasics, InsufficientFilterIsDense) {
  // Haar (1 vanishing moment) cannot annihilate a degree-1 interior: the
  // transform is still exact but no longer sparse. This is the cost the
  // filter-choice ablation quantifies.
  const size_t n = 256;
  std::vector<SparseEntry> haar = SparseRangeMonomialDwt1D(
      n, 10, 200, 1, WaveletFilter::Get(WaveletKind::kHaar));
  std::vector<SparseEntry> db4 = SparseRangeMonomialDwt1D(
      n, 10, 200, 1, WaveletFilter::Get(WaveletKind::kDb4));
  EXPECT_GT(haar.size(), 4 * db4.size());
}

TEST(QueryTransformBasics, SparseDwt1DArbitraryVector) {
  Rng rng(5);
  std::vector<double> v(64);
  for (double& x : v) x = rng.Gaussian();
  std::vector<double> dense = v;
  ForwardDwt1D(dense, WaveletFilter::Get(WaveletKind::kDb6));
  std::vector<SparseEntry> sparse =
      SparseDwt1D(v, WaveletFilter::Get(WaveletKind::kDb6));
  std::vector<double> rec(64, 0.0);
  for (const SparseEntry& e : sparse) rec[e.key] = e.value;
  for (size_t i = 0; i < 64; ++i) EXPECT_NEAR(rec[i], dense[i], 1e-9);
}

TEST(QueryTransformBasics, SingleCellRangeMatchesImpulse) {
  const size_t n = 64;
  std::vector<SparseEntry> q = SparseRangeMonomialDwt1D(
      n, 17, 17, 0, WaveletFilter::Get(WaveletKind::kDb4));
  std::vector<double> dense(n, 0.0);
  dense[17] = 1.0;
  ForwardDwt1D(dense, WaveletFilter::Get(WaveletKind::kDb4));
  for (const SparseEntry& e : q) {
    EXPECT_NEAR(e.value, dense[e.key], 1e-10);
  }
}

}  // namespace
}  // namespace wavebatch
