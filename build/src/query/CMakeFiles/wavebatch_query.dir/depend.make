# Empty dependencies file for wavebatch_query.
# This may be replaced when dependencies are built.
