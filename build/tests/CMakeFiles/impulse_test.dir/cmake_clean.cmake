file(REMOVE_RECURSE
  "CMakeFiles/impulse_test.dir/impulse_test.cc.o"
  "CMakeFiles/impulse_test.dir/impulse_test.cc.o.d"
  "impulse_test"
  "impulse_test.pdb"
  "impulse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impulse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
