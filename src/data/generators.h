#ifndef WAVEBATCH_DATA_GENERATORS_H_
#define WAVEBATCH_DATA_GENERATORS_H_

#include <cstdint>
#include <functional>

#include "cube/relation.h"

namespace wavebatch {

/// Configuration of the synthetic global-temperature dataset that stands in
/// for the paper's proprietary JPL dataset (15.7 M temperature observations
/// over latitude, longitude, altitude, time, temperature; March–April
/// 2001). The synthetic field has the same schema and the same kind of
/// smooth large-scale structure: a latitudinal gradient, an altitude lapse
/// rate, a seasonal-diurnal cycle, longitudinal continental variation, and
/// Gaussian measurement noise. All sizes must be powers of two.
struct TemperatureDatasetOptions {
  uint32_t lat_size = 32;
  uint32_t lon_size = 32;
  uint32_t alt_size = 8;
  uint32_t time_size = 16;
  uint32_t temp_size = 32;
  uint64_t num_records = 200000;
  /// Std-dev of the measurement noise, in temperature bins.
  double noise_bins = 1.5;
  /// Fraction of observations drawn from clustered "station networks"
  /// (Gaussian blobs over land-mass centers) instead of uniformly over the
  /// globe. Real observation density is strongly nonuniform; this puts
  /// genuine signal into the coarse spatial wavelet coefficients.
  double station_clustering = 0.5;
  uint64_t seed = 42;
};

/// Dimension indices of the temperature schema, in order.
enum TemperatureDim : size_t {
  kLat = 0,
  kLon = 1,
  kAlt = 2,
  kTime = 3,
  kTemp = 4,
};

/// The 5-dimensional schema (lat, lon, alt, time, temp) for `options`.
Schema TemperatureSchema(const TemperatureDatasetOptions& options);

/// Builds the synthetic temperature relation. Schema dimensions are named
/// "lat", "lon", "alt", "time", "temp".
Relation MakeTemperatureDataset(const TemperatureDatasetOptions& options);

/// Streams the synthetic observations one tuple at a time into `sink` —
/// the record-at-a-time access path the online-aggregation baseline scans.
/// Same sampling and seed behavior as MakeTemperatureDataset; because
/// records are drawn i.i.d., any prefix of the stream is a uniform random
/// sample of the full dataset.
void StreamTemperatureRecords(const TemperatureDatasetOptions& options,
                              const std::function<void(const Tuple&)>& sink);

/// Streams the same records directly into a frequency-distribution cube —
/// the paper-scale path (millions of records) that never materializes
/// per-tuple storage. Identical sampling and seed behavior to
/// MakeTemperatureDataset: the cube equals that relation's
/// FrequencyDistribution().
DenseCube MakeTemperatureCube(const TemperatureDatasetOptions& options);

/// `n` tuples uniform over the schema's domain.
Relation MakeUniformRelation(const Schema& schema, uint64_t n, uint64_t seed);

/// `n` tuples with independently Zipf-distributed coordinates (exponent
/// `s`), modeling skewed categorical data.
Relation MakeZipfRelation(const Schema& schema, uint64_t n, double s,
                          uint64_t seed);

/// `n` tuples drawn from `clusters` Gaussian blobs with per-dimension
/// std-dev `sigma_frac` × dimension size, centers uniform; coordinates are
/// clamped to the domain. Models multi-modal measure distributions.
Relation MakeGaussianClustersRelation(const Schema& schema, uint64_t n,
                                      size_t clusters, double sigma_frac,
                                      uint64_t seed);

}  // namespace wavebatch

#endif  // WAVEBATCH_DATA_GENERATORS_H_
