#include "wavelet/lazy_query_transform.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <vector>

#include "util/bits.h"
#include "util/check.h"
#include "wavelet/dwt1d.h"
#include "wavelet/query_transform.h"

namespace wavebatch {

namespace {

// Binomial coefficients up to the small degrees we support (degree <= 3,
// so powers up to 3).
constexpr double kBinomial[4][4] = {
    {1, 0, 0, 0},
    {1, 1, 0, 0},
    {1, 2, 1, 0},
    {1, 3, 3, 1},
};

// A polynomial Σ c_i·x^i of degree <= 3 (coeffs_.size() - 1).
class SmallPoly {
 public:
  explicit SmallPoly(std::vector<double> coeffs)
      : coeffs_(std::move(coeffs)) {}

  static SmallPoly Monomial(uint32_t degree) {
    std::vector<double> c(degree + 1, 0.0);
    c[degree] = 1.0;
    return SmallPoly(std::move(c));
  }

  double Eval(double x) const {
    double acc = 0.0;
    for (size_t i = coeffs_.size(); i-- > 0;) acc = acc * x + coeffs_[i];
    return acc;
  }

  size_t degree() const { return coeffs_.size() - 1; }

  /// The polynomial Q(k) = Σ_t f[t]·P(2k + t): the symbolic effect of one
  /// decimated filtering step on an interior polynomial.
  SmallPoly FilterStep(std::span<const double> f) const {
    const size_t deg = degree();
    std::vector<double> q(deg + 1, 0.0);
    // (2k + t)^i = Σ_j C(i,j)·(2k)^j·t^(i-j).
    for (size_t i = 0; i <= deg; ++i) {
      if (coeffs_[i] == 0.0) continue;
      for (size_t j = 0; j <= i; ++j) {
        double t_moment = 0.0;  // Σ_t f[t]·t^(i-j)
        for (size_t t = 0; t < f.size(); ++t) {
          t_moment += f[t] * std::pow(static_cast<double>(t),
                                      static_cast<double>(i - j));
        }
        q[j] += coeffs_[i] * kBinomial[i][j] *
                std::pow(2.0, static_cast<double>(j)) * t_moment;
      }
    }
    return SmallPoly(std::move(q));
  }

 private:
  std::vector<double> coeffs_;
};

// One cascade level's scaling coefficients in symbolic form: `poly` on the
// (non-wrapping) interior [int_lo, int_hi], explicit values in `cells`
// near the range edges, zero elsewhere. `cells` takes precedence where
// both apply (the values agree; precedence just simplifies Evaluate).
struct LevelState {
  uint64_t m = 0;  // current level length
  std::unordered_map<uint64_t, double> cells;
  SmallPoly poly{std::vector<double>{0.0}};
  int64_t int_lo = 0, int_hi = -1;  // empty when int_lo > int_hi

  double Evaluate(uint64_t p) const {
    auto it = cells.find(p);
    if (it != cells.end()) return it->second;
    if (static_cast<int64_t>(p) >= int_lo &&
        static_cast<int64_t>(p) <= int_hi) {
      return poly.Eval(static_cast<double>(p));
    }
    return 0.0;
  }
};

}  // namespace

std::vector<SparseEntry> LazyRangeMonomialDwt1D(
    uint64_t n, uint32_t lo, uint32_t hi, uint32_t degree,
    const WaveletFilter& filter, LazyTransformStats* stats) {
  WB_CHECK(IsPowerOfTwo(n));
  WB_CHECK_LE(lo, hi);
  WB_CHECK_LT(static_cast<uint64_t>(hi), n);
  LazyTransformStats local_stats;
  LazyTransformStats& st = stats ? *stats : local_stats;
  st = LazyTransformStats{};

  if (degree > filter.max_degree()) {
    // The interior is not annihilated: the result is dense and the pruned
    // cascade has no advantage.
    st.dense_fallback = true;
    return SparseRangeMonomialDwt1D(n, lo, hi, degree, filter);
  }

  const std::span<const double> h = filter.lowpass();
  const std::span<const double> g = filter.highpass();
  const uint64_t len = filter.length();
  // Below this length, materializing the level beats the bookkeeping.
  const uint64_t dense_tail = std::min<uint64_t>(n, 4 * len);

  std::vector<SparseEntry> out;
  LevelState state;
  state.m = n;
  state.poly = SmallPoly::Monomial(degree);
  state.int_lo = lo;
  state.int_hi = hi;

  while (state.m > dense_tail) {
    ++st.symbolic_levels;
    const uint64_t m = state.m;
    const uint64_t half = m / 2;
    const int64_t sm = static_cast<int64_t>(m);

    // Positions whose filter windows need explicit treatment: explicit
    // cells plus a band of width `len` around both interior edges.
    std::set<uint64_t> interesting;
    for (const auto& [p, value] : state.cells) interesting.insert(p);
    if (state.int_lo <= state.int_hi) {
      for (int64_t delta = -static_cast<int64_t>(len);
           delta <= static_cast<int64_t>(len); ++delta) {
        interesting.insert(
            static_cast<uint64_t>(EuclidMod(state.int_lo + delta, sm)));
        interesting.insert(
            static_cast<uint64_t>(EuclidMod(state.int_hi + delta, sm)));
      }
    }
    // Candidate output indices: every k whose window covers an interesting
    // position (same index arithmetic as the sparse impulse transform).
    std::set<uint64_t> candidates;
    for (uint64_t p : interesting) {
      for (uint64_t t = 0; t < len; ++t) {
        if (((p ^ t) & 1) != 0) continue;
        candidates.insert(static_cast<uint64_t>(EuclidMod(
                              static_cast<int64_t>(p) -
                                  static_cast<int64_t>(t),
                              sm)) /
                          2);
      }
    }

    LevelState next;
    next.m = half;
    next.poly = state.poly.FilterStep(h);
    // New interior: windows fully inside the old interior (no wrap by
    // construction: 2k + len - 1 <= int_hi < m).
    if (state.int_lo <= state.int_hi) {
      next.int_lo = (state.int_lo + 1) / 2;  // ceil(int_lo / 2)
      next.int_hi = (state.int_hi - static_cast<int64_t>(len) + 1) / 2;
      if (state.int_hi - static_cast<int64_t>(len) + 1 < 0) next.int_hi = -1;
    }

    for (uint64_t k : candidates) {
      double s = 0.0, d = 0.0;
      for (uint64_t t = 0; t < len; ++t) {
        const double a = state.Evaluate((2 * k + t) & (m - 1));
        s += h[t] * a;
        d += g[t] * a;
      }
      st.explicit_evals += 2;
      next.cells[k] = s;
      if (d != 0.0) out.push_back({half + k, d});
    }
    state = std::move(next);
  }

  // Dense tail: materialize the remaining level and transform it directly.
  {
    std::vector<double> tail(state.m);
    for (uint64_t p = 0; p < state.m; ++p) tail[p] = state.Evaluate(p);
    ForwardDwt1D(tail, filter);
    for (uint64_t i = 0; i < state.m; ++i) {
      if (tail[i] != 0.0) out.push_back({i, tail[i]});
    }
  }

  // Shared relative threshold, as in the dense path.
  double max_abs = 0.0;
  for (const SparseEntry& e : out) {
    max_abs = std::max(max_abs, std::abs(e.value));
  }
  const double eps = max_abs * kQueryCoefficientRelEps;
  std::vector<SparseEntry> kept;
  kept.reserve(out.size());
  for (const SparseEntry& e : out) {
    if (std::abs(e.value) > eps) kept.push_back(e);
  }
  std::sort(kept.begin(), kept.end(),
            [](const SparseEntry& a, const SparseEntry& b) {
              return a.key < b.key;
            });
  return kept;
}

}  // namespace wavebatch
