#include "util/simd_gather.h"

#if defined(WAVEBATCH_HAVE_AVX2_KERNELS)

#include <immintrin.h>

namespace wavebatch::simd {

bool GatherDoublesAvx2(const double* values, uint64_t capacity,
                       const uint64_t* keys, size_t n, double* out) {
  // Bounds check per 4-key chunk with signed 64-bit compares. Keys are
  // unsigned, so a key with the sign bit set would compare as negative and
  // sneak past `key <= capacity - 1`; the explicit key < 0 test catches it.
  // Capacities are vector sizes (far below 2^63), so the signed view of
  // capacity - 1 is exact.
  const __m256i cap_minus_1 =
      _mm256_set1_epi64x(static_cast<int64_t>(capacity) - 1);
  const __m256i zero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i too_big = _mm256_cmpgt_epi64(k, cap_minus_1);
    const __m256i negative = _mm256_cmpgt_epi64(zero, k);
    if (_mm256_movemask_epi8(_mm256_or_si256(too_big, negative)) != 0) {
      return false;
    }
    const __m256d v = _mm256_i64gather_pd(values, k, 8);
    _mm256_storeu_pd(out + i, v);
  }
  for (; i < n; ++i) {
    if (keys[i] >= capacity) return false;
    out[i] = values[keys[i]];
  }
  return true;
}

}  // namespace wavebatch::simd

#else  // !WAVEBATCH_HAVE_AVX2_KERNELS

namespace wavebatch::simd {

// Toolchain without AVX2 support: scalar stand-in with the identical
// contract. Dispatch never selects the kAvx2 tier on such a build
// (KernelTierCompiled(kAvx2) is false), so this exists only to keep the
// link uniform.
bool GatherDoublesAvx2(const double* values, uint64_t capacity,
                       const uint64_t* keys, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    if (keys[i] >= capacity) return false;
    out[i] = values[keys[i]];
  }
  return true;
}

}  // namespace wavebatch::simd

#endif  // WAVEBATCH_HAVE_AVX2_KERNELS
