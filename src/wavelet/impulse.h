#ifndef WAVEBATCH_WAVELET_IMPULSE_H_
#define WAVEBATCH_WAVELET_IMPULSE_H_

#include <cstdint>
#include <vector>

#include "wavelet/filters.h"
#include "wavelet/sparse_vec.h"

namespace wavebatch {

/// Sparse full periodic DWT of `value * e_x` (a weighted unit impulse at
/// position x) over a length-n domain, in the dyadic layout of
/// ForwardDwt1D. Only the O(L log n) coefficients whose basis functions
/// cover x are produced — the per-dimension building block of the paper's
/// O((2δ+2)^d log^d N) tuple-insertion path (Section 2.1).
///
/// Entries are returned sorted by flat index.
std::vector<SparseEntry> SparseImpulseDwt1D(uint64_t n, uint32_t x,
                                            double value,
                                            const WaveletFilter& filter);

}  // namespace wavebatch

#endif  // WAVEBATCH_WAVELET_IMPULSE_H_
