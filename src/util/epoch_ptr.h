#ifndef WAVEBATCH_UTIL_EPOCH_PTR_H_
#define WAVEBATCH_UTIL_EPOCH_PTR_H_

#include <memory>
#include <mutex>
#include <utility>

namespace wavebatch {

/// Publication slot for an immutable, epoch-swapped snapshot — the
/// pin-once-per-call idiom shared by the sharded plane's hot tier and the
/// versioned coefficient plane's read snapshot.
///
/// The protocol: a writer builds a fully-formed immutable object off to the
/// side and installs it with Store() (or Exchange()); readers Pin() the
/// current snapshot once per logical operation and use only that pinned
/// object for the operation's duration. Because snapshots are immutable and
/// shared_ptr-owned, a swap can never tear a read — in-flight operations
/// keep the snapshot they pinned alive, new operations see the successor,
/// and the last pin to drop frees the old snapshot.
///
/// The slot itself is a mutex-guarded shared_ptr copy: one uncontended lock
/// per Pin(), no atomics on the hot data, and no reliance on
/// atomic<shared_ptr> support. Pin() may return null when nothing has been
/// published yet (callers treat "no snapshot" as their pre-publication fast
/// path).
template <typename T>
class EpochPtr {
 public:
  EpochPtr() = default;
  explicit EpochPtr(std::shared_ptr<const T> initial)
      : ptr_(std::move(initial)) {}

  EpochPtr(const EpochPtr&) = delete;
  EpochPtr& operator=(const EpochPtr&) = delete;

  /// Pins the current snapshot (null if none published). The returned
  /// pointer stays valid — and its object immutable — for as long as the
  /// caller holds it, regardless of concurrent Store() calls.
  std::shared_ptr<const T> Pin() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ptr_;
  }

  /// Publishes `next` as the new snapshot. Readers that already pinned the
  /// predecessor are unaffected.
  void Store(std::shared_ptr<const T> next) {
    std::lock_guard<std::mutex> lock(mu_);
    ptr_ = std::move(next);
  }

  /// Publishes `next` and returns the snapshot it replaced.
  std::shared_ptr<const T> Exchange(std::shared_ptr<const T> next) {
    std::lock_guard<std::mutex> lock(mu_);
    ptr_.swap(next);
    return next;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const T> ptr_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_UTIL_EPOCH_PTR_H_
