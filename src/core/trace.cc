#include "core/trace.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace wavebatch {

namespace {

// Records one checkpoint.
ProgressionTrace::Point MeasurePoint(
    const ProgressiveEvaluator& evaluator, std::span<const double> exact,
    const std::vector<ProgressionTrace::Measure>& measures, double k_sum_abs,
    uint64_t domain_cells) {
  ProgressionTrace::Point pt;
  pt.retrieved = evaluator.StepsTaken();
  const std::vector<double>& est = evaluator.Estimates();
  WB_CHECK_EQ(est.size(), exact.size());
  std::vector<double> error(est.size());
  for (size_t i = 0; i < est.size(); ++i) error[i] = est[i] - exact[i];

  pt.penalties.reserve(measures.size());
  for (const ProgressionTrace::Measure& m : measures) {
    pt.penalties.push_back(m.penalty->Apply(error) / m.normalizer);
  }

  double sum_rel = 0.0, max_rel = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < est.size(); ++i) {
    if (exact[i] == 0.0) continue;
    const double rel = std::abs(error[i]) / std::abs(exact[i]);
    sum_rel += rel;
    max_rel = std::max(max_rel, rel);
    ++counted;
  }
  pt.mean_relative_error = counted ? sum_rel / counted : 0.0;
  pt.max_relative_error = max_rel;
  pt.worst_case_bound =
      k_sum_abs > 0.0 ? evaluator.WorstCaseBound(k_sum_abs) : 0.0;
  pt.expected_penalty =
      domain_cells > 0 ? evaluator.ExpectedPenalty(domain_cells) : 0.0;
  return pt;
}

}  // namespace

ProgressionTrace ProgressionTrace::Run(ProgressiveEvaluator& evaluator,
                                       std::span<const double> exact,
                                       std::vector<Measure> measures,
                                       uint64_t dense_until, double growth,
                                       double k_sum_abs,
                                       uint64_t domain_cells) {
  WB_CHECK_GT(growth, 1.0);
  ProgressionTrace trace;
  trace.has_bounds_ = k_sum_abs > 0.0;
  trace.has_expected_ = domain_cells > 0;
  for (const Measure& m : measures) {
    WB_CHECK(m.penalty != nullptr);
    WB_CHECK_NE(m.normalizer, 0.0);
    trace.measure_names_.push_back(m.name);
  }

  uint64_t next_checkpoint = 0;  // record the zero-retrievals point too
  while (true) {
    if (evaluator.StepsTaken() >= next_checkpoint || evaluator.Done()) {
      trace.points_.push_back(MeasurePoint(evaluator, exact, measures,
                                           k_sum_abs, domain_cells));
      if (evaluator.Done()) break;
      const uint64_t taken = evaluator.StepsTaken();
      if (taken < dense_until) {
        next_checkpoint = taken + 1;
      } else {
        next_checkpoint = std::max<uint64_t>(
            taken + 1, static_cast<uint64_t>(
                           std::ceil(static_cast<double>(taken) * growth)));
      }
    }
    evaluator.Step();
  }
  return trace;
}

Table ProgressionTrace::ToTable() const {
  std::vector<std::string> headers = {"retrieved"};
  for (const std::string& name : measure_names_) headers.push_back(name);
  headers.push_back("mean_rel_err");
  headers.push_back("max_rel_err");
  if (has_bounds_) headers.push_back("worst_case_bound");
  if (has_expected_) headers.push_back("expected_penalty");
  Table table(std::move(headers));
  for (const Point& pt : points_) {
    std::vector<std::string> row = {std::to_string(pt.retrieved)};
    for (double p : pt.penalties) row.push_back(FormatDouble(p));
    row.push_back(FormatDouble(pt.mean_relative_error));
    row.push_back(FormatDouble(pt.max_relative_error));
    if (has_bounds_) row.push_back(FormatDouble(pt.worst_case_bound));
    if (has_expected_) row.push_back(FormatDouble(pt.expected_penalty));
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace wavebatch
