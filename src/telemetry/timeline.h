#ifndef WAVEBATCH_TELEMETRY_TIMELINE_H_
#define WAVEBATCH_TELEMETRY_TIMELINE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace wavebatch::telemetry {

/// One sample of a progressive session's accuracy/cost state — the raw
/// material of the paper's error-vs-I/O curves: how tight the Theorem-1
/// bound is after how many retrievals. QueryService samples one point per
/// scheduler quantum plus a final point at completion.
struct TimelinePoint {
  uint64_t steps = 0;        // master-list entries consumed
  uint64_t retrievals = 0;   // per-session I/O (the paper's cost axis)
  double estimate = 0.0;     // running estimate of the batch's first query
  double bound = 0.0;        // Theorem-1 worst-case penalty bound
  double skipped_importance = 0.0;  // mass skipped under FaultPolicy::kSkip
  double elapsed_us = 0.0;   // wall time since admission
};

/// A bounded convergence timeline with stride-doubling decimation: when the
/// buffer fills, every other retained point is dropped and the sampling
/// stride doubles, so an arbitrarily long run keeps a shape-preserving,
/// roughly evenly spaced summary in O(capacity) memory — and the decimation
/// is deterministic (a function of the offered-sample count alone, never of
/// timing).
class ConvergenceTimeline {
 public:
  explicit ConvergenceTimeline(size_t capacity = 256)
      : capacity_(std::max<size_t>(4, capacity)) {}

  /// Offers one periodic sample; retained iff the offered-sample index is a
  /// multiple of the current stride.
  void Sample(const TimelinePoint& point) {
    const uint64_t index = offered_++;
    if (index % stride_ != 0) return;
    if (points_.size() >= capacity_) {
      Decimate();
      if (index % stride_ != 0) return;  // stride doubled under this sample
    }
    points_.push_back(point);
  }

  /// Appends unconditionally (the final state of a request matters no
  /// matter where the stride landed).
  void ForceSample(const TimelinePoint& point) {
    if (points_.size() >= capacity_) Decimate();
    points_.push_back(point);
    ++offered_;
  }

  const std::vector<TimelinePoint>& points() const { return points_; }
  std::vector<TimelinePoint> TakePoints() { return std::move(points_); }
  uint64_t offered() const { return offered_; }
  uint64_t stride() const { return stride_; }
  bool empty() const { return points_.empty(); }

 private:
  void Decimate() {
    size_t w = 0;
    for (size_t r = 0; r < points_.size(); r += 2) points_[w++] = points_[r];
    points_.resize(w);
    stride_ *= 2;
  }

  size_t capacity_;
  uint64_t stride_ = 1;
  uint64_t offered_ = 0;
  std::vector<TimelinePoint> points_;
};

}  // namespace wavebatch::telemetry

#endif  // WAVEBATCH_TELEMETRY_TIMELINE_H_
