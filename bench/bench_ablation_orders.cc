// Ablation: how much does the biggest-B *ordering* matter, holding I/O
// sharing fixed? Theorems 1–2 say biggest-B minimizes worst-case and
// expected penalty; this harness measures the realized normalized SSE of
// four progression orders over the same master list on one dataset:
//   biggest-B   — the paper's algorithm
//   round-robin — per-query biggest-first, queries advanced in turn
//                 (the "s single-query ProPolyne instances" order)
//   random      — shuffled
//   key-order   — ascending coefficient key (a sequential scan)

#include "bench_common.h"
#include "util/table.h"
#include "core/progressive.h"
#include "core/trace.h"
#include "penalty/sse.h"

namespace wavebatch::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              "bench_ablation_orders: progression-order ablation\n" +
                  kCommonFlagsHelp);
  TemperatureDatasetOptions options = DataOptionsFromFlags(flags);
  const std::vector<size_t> parts = PartsFromFlags(flags);

  Stopwatch total;
  std::cout << "building experiment (domain "
            << TemperatureSchema(options).ToString() << ", "
            << options.num_records << " records)..." << std::endl;
  Experiment exp(options, parts, 1234, WaveletKind::kDb4);

  SsePenalty sse;
  double norm = 0.0;
  for (double e : exp.exact) norm += e * e;

  struct OrderSpec {
    const char* name;
    ProgressionOrder order;
  };
  const OrderSpec specs[] = {
      {"biggest-B", ProgressionOrder::kBiggestB},
      {"round-robin", ProgressionOrder::kRoundRobin},
      {"random", ProgressionOrder::kRandom},
      {"key-order", ProgressionOrder::kKeyOrder},
  };

  std::vector<ProgressionTrace> traces;
  for (const OrderSpec& spec : specs) {
    std::cout << "running order: " << spec.name << std::endl;
    ProgressiveEvaluator ev(&exp.list, &sse, exp.store.get(), spec.order,
                            /*seed=*/7);
    traces.push_back(ProgressionTrace::Run(
        ev, exp.exact, {{"nsse", &sse, norm}}, /*dense_until=*/16,
        /*growth=*/1.6));
  }

  Table table({"retrieved", "nsse[biggest-B]", "nsse[round-robin]",
               "nsse[random]", "nsse[key-order]"});
  size_t rows = traces[0].points().size();
  for (const auto& t : traces) rows = std::min(rows, t.points().size());
  for (size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row = {
        std::to_string(traces[0].points()[i].retrieved)};
    for (const auto& t : traces) {
      row.push_back(FormatDouble(t.points()[i].penalties[0]));
    }
    table.AddRow(std::move(row));
  }
  std::cout << "\nNormalized SSE by progression order (same master list, "
               "same total I/O):\n";
  table.Print(std::cout);
  std::cout << "expected shape: biggest-B dominates at small budgets; all "
               "orders converge to exact at the full master list.\n";
  std::cout << "elapsed: " << FormatDouble(total.ElapsedSeconds(), 3)
            << "s\n";

  const std::string csv = flags.Str("csv", "");
  if (!csv.empty() && !table.WriteCsv(csv)) return 1;
  if (!WriteMetricsOut(flags)) return 1;
  return 0;
}

}  // namespace
}  // namespace wavebatch::bench

int main(int argc, char** argv) { return wavebatch::bench::Main(argc, argv); }
