// Ablation: block-granularity I/O (the paper's Section 7 future work:
// "generalize importance functions to disk blocks rather than individual
// tuples"). The paper's cost model charges one unit per coefficient; real
// storage reads blocks. We simulate the natural disk layout — needed
// coefficients packed contiguously in key order, `block_size` per block —
// and measure block reads for the biggest-B progression vs a key-ordered
// scan across block sizes and buffer capacities, quantifying how much the
// importance-ordered access pattern sacrifices locality.

#include <set>
#include <unordered_map>

#include "bench_common.h"
#include "engine/eval_plan.h"
#include "engine/eval_session.h"
#include "penalty/sse.h"
#include "storage/block_store.h"
#include "storage/dense_store.h"
#include "util/table.h"

namespace wavebatch::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              "bench_ablation_blocks: block-level I/O ablation\n"
              "  --budget_frac=0.25  fraction of master list to retrieve\n" +
                  kCommonFlagsHelp);
  TemperatureDatasetOptions options = DataOptionsFromFlags(flags);
  options.lat_size = static_cast<uint32_t>(flags.Int("lat", 64));
  options.lon_size = static_cast<uint32_t>(flags.Int("lon", 64));
  options.num_records = static_cast<uint64_t>(flags.Int("records", 4000000));
  const std::vector<size_t> parts = PartsFromFlags(flags);
  const double budget_frac = flags.Double("budget_frac", 0.25);

  Stopwatch total;
  std::cout << "building experiment (domain "
            << TemperatureSchema(options).ToString() << ")..." << std::endl;
  Experiment exp(options, parts, 1234, WaveletKind::kDb4);

  // Disk layout: the batch's coefficients packed contiguously in key order.
  // Master-list entries are already key-sorted, so entry index == disk
  // rank. Rebuild a rank-keyed master list and a rank-indexed store.
  std::unordered_map<uint64_t, uint64_t> rank_of;
  rank_of.reserve(exp.list.size());
  std::vector<double> packed(exp.list.size());
  std::vector<SparseVec> rank_queries(exp.workload.batch.size());
  {
    std::vector<std::vector<SparseEntry>> per_query(
        exp.workload.batch.size());
    for (uint64_t rank = 0; rank < exp.list.size(); ++rank) {
      const MasterEntry& e = exp.list.entry(rank);
      rank_of.emplace(e.key, rank);
      packed[rank] = exp.store->Peek(e.key);
      for (const auto& [query, coeff] : e.uses) {
        per_query[query].push_back({rank, coeff});
      }
    }
    for (size_t q = 0; q < per_query.size(); ++q) {
      rank_queries[q] = SparseVec::FromSorted(std::move(per_query[q]));
    }
  }
  auto rank_list_ptr = std::make_shared<const MasterList>(
      MasterList::FromQueryVectors(rank_queries));
  const MasterList& rank_list = *rank_list_ptr;
  const size_t budget = static_cast<size_t>(
      budget_frac * static_cast<double>(rank_list.size()));

  auto sse = std::make_shared<SsePenalty>();
  std::shared_ptr<const EvalPlan> plan =
      EvalPlan::FromMasterList(rank_list_ptr, sse);
  Table table({"block size", "cache blocks", "order", "coeff fetches",
               "block reads", "hit rate"});
  for (uint64_t block_size : {16, 64, 256}) {
    for (uint64_t cache_blocks : {uint64_t{0}, uint64_t{64}}) {
      for (ProgressionOrder order :
           {ProgressionOrder::kBiggestB, ProgressionOrder::kKeyOrder}) {
        BlockStore store(std::make_unique<DenseStore>(packed), block_size,
                         cache_blocks);
        EvalSession::Options opts;
        opts.order = order;
        EvalSession ev(plan, UnownedStore(store), opts);
        ev.StepMany(budget);
        const IoStats& stats = ev.io();
        const double accesses =
            static_cast<double>(stats.block_hits + stats.block_reads);
        table.AddRow(
            {std::to_string(block_size), std::to_string(cache_blocks),
             order == ProgressionOrder::kBiggestB ? "biggest-B" : "key-order",
             std::to_string(stats.retrievals),
             std::to_string(stats.block_reads),
             FormatDouble(accesses > 0 ? stats.block_hits / accesses : 0.0,
                          3)});
      }
    }
  }

  std::cout << "\nBlock-level cost of retrieving " << budget << " of "
            << rank_list.size()
            << " coefficients (packed key-order layout):\n";
  table.Print(std::cout);

  // Part 2: block-granularity importance (the paper's proposed future
  // work, implemented): error at matched *block-read* budgets for
  // block-importance ordering vs coefficient-importance ordering.
  const uint64_t cmp_block_size = 64;
  auto block_of = [cmp_block_size](uint64_t rank) {
    return rank / cmp_block_size;
  };
  double sse_norm = 0.0;
  for (double e : exp.exact) sse_norm += e * e;
  auto nsse = [&](const std::vector<double>& est) {
    double acc = 0.0;
    for (size_t i = 0; i < est.size(); ++i) {
      const double err = est[i] - exp.exact[i];
      acc += err * err;
    }
    return acc / sse_norm;
  };
  DenseStore block_store(packed);
  DenseStore coeff_store(packed);
  EvalSession::Options block_opts;
  block_opts.block_of = block_of;
  EvalSession by_block(plan, UnownedStore(block_store), block_opts);
  EvalSession by_coeff(plan, UnownedStore(coeff_store));
  std::set<uint64_t> coeff_blocks_touched;
  Table error_table({"block reads", "nsse[block-importance]",
                     "nsse[coeff-importance]", "coeff fetches (block/coeff)"});
  for (uint64_t block_budget : {4, 16, 64, 256, 512}) {
    if (block_budget > by_block.TotalBlocks()) break;
    WB_CHECK_OK(by_block.StepToBlocks(block_budget));
    while (coeff_blocks_touched.size() < block_budget && !by_coeff.Done()) {
      const size_t entry = by_coeff.Step().value();
      coeff_blocks_touched.insert(block_of(rank_list.entry(entry).key));
    }
    error_table.AddRow(
        {std::to_string(block_budget),
         FormatDouble(nsse(by_block.Estimates())),
         FormatDouble(nsse(by_coeff.Estimates())),
         std::to_string(by_block.CoefficientsFetched()) + " / " +
             std::to_string(by_coeff.StepsTaken())});
  }
  std::cout << "\nError at matched block-read budgets (block size "
            << cmp_block_size << "):\n";
  error_table.Print(std::cout);
  std::cout << "expected shape: when I/O is charged per block, aggregating "
               "importance to block granularity reads more useful "
               "coefficients per block and dominates the per-coefficient "
               "ordering.\n";
  std::cout << "expected shape: key-order scans read each block once; "
               "biggest-B jumps across the layout, so with a small buffer "
               "it re-reads blocks and its advantage must be weighed "
               "against per-coefficient savings — the open problem the "
               "paper's conclusion poses.\n";
  std::cout << "elapsed: " << FormatDouble(total.ElapsedSeconds(), 3)
            << "s\n";

  const std::string csv = flags.Str("csv", "");
  if (!csv.empty() && !table.WriteCsv(csv)) return 1;
  if (!WriteMetricsOut(flags)) return 1;
  return 0;
}

}  // namespace
}  // namespace wavebatch::bench

int main(int argc, char** argv) { return wavebatch::bench::Main(argc, argv); }
