#ifndef WAVEBATCH_CORE_PROGRESSIVE_H_
#define WAVEBATCH_CORE_PROGRESSIVE_H_

#include <queue>
#include <vector>

#include "core/master_list.h"
#include "penalty/penalty.h"
#include "storage/coefficient_store.h"

namespace wavebatch {

/// Orders in which a progressive evaluation may walk the master list.
/// kBiggestB is the paper's algorithm; the others are ablation baselines
/// (all of them share I/O — the comparison isolates the *ordering*).
enum class ProgressionOrder {
  /// Decreasing importance ι_p — the Batch-Biggest-B order, optimal for
  /// worst-case (Thm 1) and expected (Thm 2) penalty at every step.
  kBiggestB,
  /// Round-robin over queries, each advancing through its own coefficients
  /// in decreasing |q̂_i| — the natural "s independent single-query
  /// ProPolyne instances" order, with fetches deduplicated.
  kRoundRobin,
  /// Uniformly random order (seeded).
  kRandom,
  /// Ascending key order — what a pure sequential scan would do.
  kKeyOrder,
};

/// Batch-Biggest-B (Figure 1 of the paper): progressive evaluation of a
/// batch of vector queries. Construction performs steps 1–4 (zero
/// estimates, master list given, importance computation, heap build);
/// every Step() performs one iteration of step 5: extract the most
/// important unretrieved coefficient, fetch it, and advance the estimate
/// of every query that uses it. After the final step the estimates hold
/// the exact results.
///
/// Superseded by the engine layer (EvalPlan + EvalSession), which separates
/// the shareable importance/order computation from the per-run cursor and
/// owns its inputs via shared_ptr. Kept as the golden reference
/// implementation the engine is tested bit-identical against.
class ProgressiveEvaluator {
 public:
  /// `list`, `penalty`, and `store` must outlive the evaluator. `seed`
  /// only affects kRandom.
  ProgressiveEvaluator(const MasterList* list, const PenaltyFunction* penalty,
                       const CoefficientStore* store,
                       ProgressionOrder order = ProgressionOrder::kBiggestB,
                       uint64_t seed = 0);

  size_t num_queries() const { return list_->num_queries(); }
  /// Total steps to exactness (= master list size).
  size_t TotalSteps() const { return list_->size(); }
  uint64_t StepsTaken() const { return steps_taken_; }
  bool Done() const { return steps_taken_ == TotalSteps(); }

  /// One retrieval; requires !Done(). Returns the master-list entry index
  /// that was consumed.
  size_t Step();

  /// Up to `n` further retrievals, one storage round-trip each (stops at
  /// completion). Prefer StepBatch on batched backends.
  void StepMany(size_t n);

  /// Up to `n` further retrievals issued as ONE CoefficientStore::FetchBatch:
  /// pops the next `n` entries in progression order, fetches their keys in
  /// a single batched call, then applies the estimate updates in pop order.
  /// Estimates, trackers, and retrieval counts are identical to `n` scalar
  /// Step() calls — the batch changes I/O shape, not results. Returns the
  /// number of steps actually taken.
  size_t StepBatch(size_t n);

  void RunToCompletion() {
    // Chunked so the scratch key/value buffers stay cache-sized even for
    // huge master lists.
    while (!Done()) StepBatch(4096);
  }

  /// Current progressive estimates (exact once Done()).
  const std::vector<double>& Estimates() const { return estimates_; }

  /// ι_p of the coefficient the next Step() will retrieve (0 when done).
  /// Under kBiggestB this is the maximum importance of any unused
  /// coefficient — the ξ′ of Theorem 1.
  double NextImportance() const;

  /// Theorem 1's guaranteed worst-case penalty bound for the current
  /// B-term approximation: K^α · ι_p(ξ′), where `k_sum_abs` is
  /// K = Σ_ξ |Δ̂[ξ]| (CoefficientStore::SumAbs of the data view) and α the
  /// penalty's homogeneity degree. Only sharp under kBiggestB.
  double WorstCaseBound(double k_sum_abs) const;

  /// Theorem 2's expected penalty over data vectors uniform on the unit
  /// sphere: Σ_{unused ξ} ι_p(ξ) / N^d, with `domain_cells` = N^d.
  /// (The paper prints (N^d − 1)⁻¹ — the sphere-dimension off-by-one; the
  /// uniform second moment on the unit sphere in R^n is 1/n, so we divide
  /// by the cell count.) Meaningful for quadratic penalties.
  double ExpectedPenalty(uint64_t domain_cells) const;

  /// Importance of master-list entry `i` under the evaluator's penalty.
  double ImportanceOf(size_t i) const { return importance_[i]; }

  /// I/O charged by this evaluator's own fetches (the store itself keeps
  /// no counters).
  const IoStats& io() const { return io_; }

 private:
  void BuildOrder(ProgressionOrder order, uint64_t seed);
  size_t NextEntry() const;  // entry the next Step() will take
  size_t PopNext();          // consume the next entry (bookkeeping only)

  const MasterList* list_;
  const PenaltyFunction* penalty_;
  const CoefficientStore* store_;
  ProgressionOrder order_;
  IoStats io_;

  std::vector<double> importance_;  // per master-list entry
  std::vector<double> estimates_;
  std::vector<bool> fetched_;
  uint64_t steps_taken_ = 0;
  double remaining_importance_ = 0.0;

  // kBiggestB: max-heap of (importance, entry index).
  using HeapItem = std::pair<double, size_t>;
  std::priority_queue<HeapItem> heap_;
  // Other orders: a precomputed sequence and cursor. The sequence may
  // contain duplicates (round-robin); fetched_ filters them.
  std::vector<size_t> sequence_;
  mutable size_t cursor_ = 0;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_CORE_PROGRESSIVE_H_
