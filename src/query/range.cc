#include "query/range.h"

#include "util/check.h"

namespace wavebatch {

Result<Range> Range::Create(const Schema& schema,
                            std::vector<Interval> intervals) {
  if (intervals.size() != schema.num_dims()) {
    return Status::InvalidArgument(
        "range must have one interval per dimension (" +
        std::to_string(schema.num_dims()) + "), got " +
        std::to_string(intervals.size()));
  }
  for (size_t i = 0; i < intervals.size(); ++i) {
    const Interval& iv = intervals[i];
    if (iv.lo > iv.hi) {
      return Status::InvalidArgument("interval lo > hi in dimension " +
                                     schema.dim(i).name);
    }
    if (iv.hi >= schema.dim(i).size) {
      return Status::OutOfRange("interval exceeds dimension " +
                                schema.dim(i).name + " (size " +
                                std::to_string(schema.dim(i).size) + ")");
    }
  }
  return Range(std::move(intervals));
}

Range Range::All(const Schema& schema) {
  std::vector<Interval> intervals;
  intervals.reserve(schema.num_dims());
  for (size_t i = 0; i < schema.num_dims(); ++i) {
    intervals.push_back({0, schema.dim(i).size - 1});
  }
  return Range(std::move(intervals));
}

uint64_t Range::Volume() const {
  uint64_t v = 1;
  for (const Interval& iv : intervals_) v *= iv.length();
  return v;
}

bool Range::Contains(const Tuple& t) const {
  WB_CHECK_EQ(t.size(), intervals_.size());
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (!intervals_[i].Contains(t[i])) return false;
  }
  return true;
}

Range Range::Restrict(size_t dim, uint32_t lo, uint32_t hi) const {
  WB_CHECK_LT(dim, intervals_.size());
  WB_CHECK_LE(lo, hi);
  WB_CHECK_GE(lo, intervals_[dim].lo);
  WB_CHECK_LE(hi, intervals_[dim].hi);
  std::vector<Interval> intervals = intervals_;
  intervals[dim] = {lo, hi};
  return Range(std::move(intervals));
}

std::string Range::ToString() const {
  std::string out;
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i) out += "x";
    out += "[" + std::to_string(intervals_[i].lo) + "," +
           std::to_string(intervals_[i].hi) + "]";
  }
  return out;
}

}  // namespace wavebatch
