// PlanCache keying and lifetime: the cache key is the *content* of
// (batch, strategy, penalty) — never an object address — so recycled
// penalty allocations cannot revive stale plans, -0.0 parameters cannot
// split cache lines, hits refresh LRU recency, and concurrent GetOrBuild
// calls stay consistent.

#include "engine/plan_cache.h"

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/eval_plan.h"
#include "gtest/gtest.h"
#include "penalty/sse.h"
#include "query/batch.h"
#include "strategy/wavelet_strategy.h"

namespace wavebatch {
namespace {

struct Fixture {
  Schema schema = Schema::Uniform(2, 16);
  QueryBatch batch;
  WaveletStrategy strategy{schema, WaveletKind::kHaar};

  Fixture() : batch(schema) {
    batch.Add(RangeSumQuery::Count(Range::All(schema).Restrict(0, 2, 13)));
    batch.Add(RangeSumQuery::Sum(Range::All(schema), 1));
    batch.Add(RangeSumQuery::Count(
        Range::Create(schema, {{4, 11}, {0, 7}}).value()));
  }
};

TEST(PlanCacheTest, RecycledPenaltyAddressCannotReviveAStalePlan) {
  // The regression this cache key exists for: a caller that heap-allocates
  // a penalty per refresh, plans, and frees it. Allocators aggressively
  // recycle same-size blocks, so a *different* penalty soon lives at the
  // *same* address. A pointer-keyed cache then either misses on every
  // fresh object (no sharing at all) or — worse — hits a stale plan built
  // for whatever content previously occupied the address. Content keying
  // must give: every round a hit, always on the plan matching the round's
  // parameters.
  Fixture f;
  PlanCache cache(8);
  const size_t s = f.batch.size();
  const std::vector<double> uniform(s, 1.0);
  std::vector<double> skewed(s, 1.0);
  skewed[0] = 2.0;

  auto ref_u =
      cache.GetOrBuild(f.batch, f.strategy,
                       std::make_shared<WeightedSsePenalty>(uniform));
  auto ref_s =
      cache.GetOrBuild(f.batch, f.strategy,
                       std::make_shared<WeightedSsePenalty>(skewed));
  ASSERT_TRUE(ref_u.ok());
  ASSERT_TRUE(ref_s.ok());
  ASSERT_NE(ref_u.value().get(), ref_s.value().get());
  ASSERT_EQ(cache.misses(), 2u);

  std::set<const void*> addresses;
  bool address_reused = false;
  for (int round = 0; round < 64; ++round) {
    const bool odd = (round % 2) != 0;
    auto* raw = new WeightedSsePenalty(odd ? skewed : uniform);
    address_reused |= !addresses.insert(raw).second;
    std::shared_ptr<const PenaltyFunction> penalty(raw);
    auto plan = cache.GetOrBuild(f.batch, f.strategy, penalty);
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan.value().get(),
              odd ? ref_s.value().get() : ref_u.value().get())
        << "round " << round;
    // `penalty` dies here; the next round's allocation may land on the
    // freed address (near-certain under glibc, deliberately delayed under
    // sanitizer quarantines — the assertions above hold either way).
  }
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 64u);
  ::testing::Test::RecordProperty("penalty_address_reused",
                                  address_reused ? "yes" : "no");
}

TEST(PlanCacheTest, NegativeZeroWeightSharesTheCacheLine) {
  // -0.0 == 0.0 yet differs bit-wise; a bit-exact fingerprint would split
  // one logical penalty across two cache entries. AppendF64 normalizes the
  // sign of zero, so the fingerprints — and therefore the plans — match.
  Fixture f;
  const size_t s = f.batch.size();
  std::vector<double> pos(s, 1.0);
  std::vector<double> neg(s, 1.0);
  pos[1] = 0.0;
  neg[1] = -0.0;
  WeightedSsePenalty pos_penalty(pos), neg_penalty(neg);
  EXPECT_EQ(PlanCache::Fingerprint(f.batch, f.strategy, &pos_penalty),
            PlanCache::Fingerprint(f.batch, f.strategy, &neg_penalty));

  PlanCache cache(8);
  auto a = cache.GetOrBuild(f.batch, f.strategy,
                            std::make_shared<WeightedSsePenalty>(pos));
  auto b = cache.GetOrBuild(f.batch, f.strategy,
                            std::make_shared<WeightedSsePenalty>(neg));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().get(), b.value().get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCacheTest, HitRefreshesEvictionOrder) {
  // LRU means least-recently *used*, not least-recently inserted: a hit
  // must move its entry to the front, so the untouched entry is the one
  // evicted.
  Fixture f;
  auto sse = std::make_shared<SsePenalty>();
  PlanCache cache(2);
  QueryBatch b1(f.schema), b2(f.schema), b3(f.schema);
  b1.Add(RangeSumQuery::Count(Range::All(f.schema)));
  b2.Add(RangeSumQuery::Count(
      Range::Create(f.schema, {{0, 3}, {0, 3}}).value()));
  b3.Add(RangeSumQuery::Count(
      Range::Create(f.schema, {{4, 7}, {4, 7}}).value()));

  ASSERT_TRUE(cache.GetOrBuild(b1, f.strategy, sse).ok());  // miss: [b1]
  ASSERT_TRUE(cache.GetOrBuild(b2, f.strategy, sse).ok());  // miss: [b2 b1]
  ASSERT_TRUE(cache.GetOrBuild(b1, f.strategy, sse).ok());  // hit:  [b1 b2]
  ASSERT_TRUE(cache.GetOrBuild(b3, f.strategy, sse).ok());  // evicts b2
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_TRUE(cache.GetOrBuild(b1, f.strategy, sse).ok());  // still cached
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 3u);
  ASSERT_TRUE(cache.GetOrBuild(b2, f.strategy, sse).ok());  // was evicted
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(PlanCacheTest, ConcurrentGetOrBuildIsConsistent) {
  // Hammer one small cache from many threads with a working set larger
  // than the capacity (every call is a potential hit, miss, or eviction).
  // Everything must stay consistent: each call returns a plan for the
  // requested batch, accounting adds up, and the cache never exceeds
  // capacity.
  Fixture f;
  auto sse = std::make_shared<SsePenalty>();
  constexpr size_t kBatches = 6;
  constexpr size_t kThreads = 8;
  constexpr size_t kIters = 32;

  std::vector<QueryBatch> batches;
  std::vector<size_t> expected_sizes;
  for (size_t i = 0; i < kBatches; ++i) {
    QueryBatch b(f.schema);
    const uint32_t hi = static_cast<uint32_t>(3 + 2 * i);
    b.Add(RangeSumQuery::Count(Range::All(f.schema).Restrict(0, 0, hi)));
    if (i % 2 == 0) b.Add(RangeSumQuery::Sum(Range::All(f.schema), 1));
    auto reference = EvalPlan::Build(b, f.strategy, sse);
    ASSERT_TRUE(reference.ok());
    expected_sizes.push_back(reference.value()->size());
    batches.push_back(std::move(b));
  }

  PlanCache cache(3);
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kIters; ++i) {
        const size_t pick = (t * 31 + i * 17) % kBatches;
        auto plan = cache.GetOrBuild(batches[pick], f.strategy, sse);
        if (!plan.ok()) {
          failures[t] = plan.status().ToString();
          return;
        }
        const EvalPlan& p = *plan.value();
        if (p.num_queries() != batches[pick].size() ||
            p.size() != expected_sizes[pick]) {
          failures[t] = "plan does not match requested batch";
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], "") << "thread " << t;
  }
  EXPECT_LE(cache.size(), 3u);
  EXPECT_EQ(cache.hits() + cache.misses(), kThreads * kIters);
  EXPECT_GT(cache.hits(), 0u);
  // Misses can exceed the distinct-batch count (evictions rebuild), but
  // every one of them must have come from a real eviction or first touch.
  EXPECT_GE(cache.misses(), kBatches);
}

TEST(PlanCacheTest, DataEpochParticipatesInTheKey) {
  // The epoch-aware seam for streaming planes: plans built against
  // different published epochs are distinct cache entries, the default
  // epoch (0, static stores) reproduces the historical behavior, and the
  // epoch is part of Fingerprint() itself.
  Fixture f;
  auto sse = std::make_shared<SsePenalty>();
  EXPECT_NE(PlanCache::Fingerprint(f.batch, f.strategy, sse.get(), 0),
            PlanCache::Fingerprint(f.batch, f.strategy, sse.get(), 1));
  EXPECT_EQ(PlanCache::Fingerprint(f.batch, f.strategy, sse.get()),
            PlanCache::Fingerprint(f.batch, f.strategy, sse.get(), 0));

  PlanCache cache(8);
  auto at_zero = cache.GetOrBuild(f.batch, f.strategy, sse);  // epoch 0
  auto at_three = cache.GetOrBuild(f.batch, f.strategy, sse, 3);
  auto at_three_again = cache.GetOrBuild(f.batch, f.strategy, sse, 3);
  ASSERT_TRUE(at_zero.ok());
  ASSERT_TRUE(at_three.ok());
  ASSERT_TRUE(at_three_again.ok());
  EXPECT_NE(at_zero.value().get(), at_three.value().get());
  EXPECT_EQ(at_three.value().get(), at_three_again.value().get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PlanCacheTest, InvalidateStaleDropsSupersededEpochsOnly) {
  Fixture f;
  auto sse = std::make_shared<SsePenalty>();
  PlanCache cache(8);
  // Descending order keeps all four resident: only an epoch *advance*
  // triggers the automatic watermark drop.
  for (uint64_t epoch : {5u, 3u, 2u, 1u}) {
    ASSERT_TRUE(cache.GetOrBuild(f.batch, f.strategy, sse, epoch).ok());
  }
  ASSERT_EQ(cache.size(), 4u);
  const uint64_t evictions_before = cache.evictions();

  // A merge published epoch 3: everything older is superseded.
  EXPECT_EQ(cache.InvalidateStale(3), 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), evictions_before + 2);

  // Epochs >= 3 survived — both are hits, not rebuilds.
  const uint64_t hits_before = cache.hits();
  ASSERT_TRUE(cache.GetOrBuild(f.batch, f.strategy, sse, 3).ok());
  ASSERT_TRUE(cache.GetOrBuild(f.batch, f.strategy, sse, 5).ok());
  EXPECT_EQ(cache.hits(), hits_before + 2);

  // min_epoch 0 is a no-op (static epoch-0 plans are never stale).
  ASSERT_TRUE(cache.GetOrBuild(f.batch, f.strategy, sse).ok());
  EXPECT_EQ(cache.InvalidateStale(0), 0u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(PlanCacheTest, WatermarkRetiresDeadEpochsInGetOrBuild) {
  // The automatic half of epoch invalidation: nothing is wired to
  // InvalidateStale, yet advancing the data_epoch seen by GetOrBuild must
  // retire older-epoch plans on its own — dead-epoch entries must not
  // squat in the LRU until capacity pressure reaches them.
  Fixture f;
  auto sse = std::make_shared<SsePenalty>();
  PlanCache cache(64);

  // A static (epoch-0) plan alongside the versioned traffic: the
  // watermark must never touch it.
  ASSERT_TRUE(cache.GetOrBuild(f.batch, f.strategy, sse).ok());

  for (uint64_t epoch = 1; epoch <= 50; ++epoch) {
    ASSERT_TRUE(cache.GetOrBuild(f.batch, f.strategy, sse, epoch).ok());
    EXPECT_LE(cache.size(), 2u) << "epoch " << epoch
                                << ": dead epochs must not accumulate";
  }
  // Exactly the static plan and the newest epoch remain.
  EXPECT_EQ(cache.size(), 2u);
  const uint64_t hits_before = cache.hits();
  ASSERT_TRUE(cache.GetOrBuild(f.batch, f.strategy, sse).ok());
  ASSERT_TRUE(cache.GetOrBuild(f.batch, f.strategy, sse, 50).ok());
  EXPECT_EQ(cache.hits(), hits_before + 2);
}

}  // namespace
}  // namespace wavebatch
