#ifndef WAVEBATCH_SERVER_INTROSPECTION_H_
#define WAVEBATCH_SERVER_INTROSPECTION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "server/debug_http.h"
#include "server/query_service.h"
#include "telemetry/metrics.h"

namespace wavebatch::server {

/// The live-introspection plane: JSON renderers over a QueryService and the
/// telemetry registry, plus the glue that mounts them (and /metrics) on a
/// DebugHttpServer. Every renderer snapshots under the service's own
/// accessors — none holds a service lock while rendering — so they are safe
/// to hit while the service is under load. The same renderers back the
/// `introspect_dump` tool, so environments that cannot open a listener get
/// identical text from a one-shot dump.

/// /statusz: admission queue depth, live sessions, epoch/generation, shed
/// and completion counts, the live session groups (members, cache ledger,
/// pinned epoch), and the plan cache's contents.
std::string StatuszJson(const QueryService& service);

/// The convergence timelines of recently completed requests — each record
/// is one request's error-vs-I/O curve (steps, retrievals, estimate,
/// Theorem-1 bound, skipped importance, elapsed microseconds per point).
std::string TimelinesJson(
    const std::vector<QueryService::TimelineRecord>& records);

/// /tracez: the registry's recent spans grouped by trace_id (most recent
/// trace first, at most `max_spans` spans scanned from the tail of the
/// buffer), plus the service's recent convergence timelines. `service` may
/// be null — then only spans render.
std::string TracezJson(const QueryService* service,
                       const telemetry::MetricsRegistry& registry =
                           telemetry::MetricsRegistry::Default(),
                       size_t max_spans = 4096);

/// Mounts /metrics (Prometheus text), /statusz, /tracez, and a "/" index on
/// `http`. `service` may be null (endpoints render registry-only views).
/// Call before DebugHttpServer::Start(); the handlers hold the raw pointers,
/// so the service must outlive the server.
void RegisterIntrospection(DebugHttpServer* http, const QueryService* service,
                           const telemetry::MetricsRegistry* registry =
                               &telemetry::MetricsRegistry::Default());

}  // namespace wavebatch::server

#endif  // WAVEBATCH_SERVER_INTROSPECTION_H_
