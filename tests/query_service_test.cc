// The serving front end's contract: a request served through QueryService —
// admission queue, cross-session shared fetches, progress-aware scheduling
// — produces results bit-identical to an isolated EvalSession over the same
// plan and store, with identical per-session I/O accounting, across fault
// policies and store shapes (unsharded, sharded S=4, versioned). What the
// shared-fetch layer is allowed to change is backend traffic only: K
// concurrent sessions over one FileStore must each cost the backend a
// fraction of an isolated run. Plus the serving-specific surface: deadline
// and target-bound completion, admission backpressure (queue depth and the
// thread-pool gauge), and a writer publishing epochs under live traffic.

#include "server/query_service.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "data/generators.h"
#include "engine/eval_plan.h"
#include "engine/eval_session.h"
#include "gtest/gtest.h"
#include "penalty/sse.h"
#include "server/shared_fetch.h"
#include "storage/fault_injection_store.h"
#include "storage/file_store.h"
#include "storage/key_router.h"
#include "storage/memory_store.h"
#include "storage/sharded_store.h"
#include "storage/versioned_store.h"
#include "strategy/wavelet_strategy.h"
#include "telemetry/metrics.h"
#include "util/random.h"

namespace wavebatch {
namespace {

using server::QueryRequest;
using server::QueryResponse;
using server::QueryService;
using server::QueryServiceOptions;
using server::SharedFetchCache;
using server::SharedFetchStore;

/// The serving fixture: a 2×16 Haar cube from 600 tuples and a family of
/// small Count batches (distinct ranges per template id), SSE-ranked.
struct ServingFixture {
  Schema schema = Schema::Uniform(2, 16);
  WaveletStrategy strategy{schema, WaveletKind::kHaar};
  Relation rel;
  std::shared_ptr<const SsePenalty> sse = std::make_shared<SsePenalty>();
  std::shared_ptr<const WaveletStrategy> shared_strategy;

  ServingFixture() : rel(MakeUniformRelation(schema, 600, 11)) {
    shared_strategy = std::make_shared<WaveletStrategy>(schema, WaveletKind::kHaar);
  }

  std::shared_ptr<const CoefficientStore> BuildView() const {
    return std::shared_ptr<const CoefficientStore>(
        strategy.BuildStore(rel.FrequencyDistribution()));
  }

  QueryBatch MakeBatch(uint64_t template_id, size_t queries = 6) const {
    QueryBatch batch(schema);
    Rng rng(1000 + template_id);
    for (size_t i = 0; i < queries; ++i) {
      uint32_t lo0 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi0 = lo0 + static_cast<uint32_t>(rng.UniformInt(16 - lo0));
      uint32_t lo1 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi1 = lo1 + static_cast<uint32_t>(rng.UniformInt(16 - lo1));
      batch.Add(RangeSumQuery::Count(
          Range::Create(schema, {{lo0, hi0}, {lo1, hi1}}).value()));
    }
    return batch;
  }
};

/// Submits every request and drains the service on this thread. Responses
/// land at the index of their request.
std::vector<QueryResponse> Serve(QueryService& service,
                                 const std::vector<QueryRequest>& requests) {
  std::vector<QueryResponse> responses(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    Status admitted = service.Submit(
        requests[i],
        [&responses, i](QueryResponse r) { responses[i] = std::move(r); });
    EXPECT_TRUE(admitted.ok()) << admitted;
  }
  service.RunUntilIdle();
  return responses;
}

/// The reference: the same request on a private session over the same
/// store, stepped by the same quantum, run to exactness.
QueryResponse Isolated(const QueryRequest& request,
                       std::shared_ptr<const CoefficientStore> store,
                       const LinearStrategy& strategy, size_t quantum) {
  auto plan =
      EvalPlan::Build(request.batch, strategy, request.penalty).value();
  EvalSession::Options options;
  options.order = request.penalty != nullptr ? ProgressionOrder::kBiggestB
                                             : ProgressionOrder::kKeyOrder;
  options.fault_policy = request.fault_policy;
  EvalSession session(plan, std::move(store), options);
  while (!session.Done()) {
    Result<size_t> stepped = session.StepBatch(quantum);
    if (!stepped.ok()) break;  // kFail on a faulty store: stop like a server
  }
  QueryResponse response;
  response.estimates = session.Estimates();
  response.steps_taken = session.StepsTaken();
  response.total_steps = session.TotalSteps();
  response.skipped_coefficients = session.SkippedCoefficients();
  response.io = session.io();
  return response;
}

void ExpectBitIdentical(const QueryResponse& served,
                        const QueryResponse& isolated, const char* label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(served.estimates.size(), isolated.estimates.size());
  for (size_t q = 0; q < served.estimates.size(); ++q) {
    EXPECT_EQ(served.estimates[q], isolated.estimates[q]) << "query " << q;
  }
  EXPECT_EQ(served.steps_taken, isolated.steps_taken);
  EXPECT_EQ(served.total_steps, isolated.total_steps);
  EXPECT_EQ(served.skipped_coefficients, isolated.skipped_coefficients);
  EXPECT_EQ(served.io, isolated.io)
      << "per-session accounting must not see the shared cache";
}

/// N clients × both fault policies over one healthy store: bit-identical to
/// isolated evaluation, including io() (sharing changes backend traffic,
/// never the paper's per-session cost model).
void GoldenAgainstIsolated(std::shared_ptr<const CoefficientStore> store,
                           const ServingFixture& f, const char* label) {
  SCOPED_TRACE(label);
  constexpr size_t kQuantum = 16;
  QueryServiceOptions options;
  options.max_live_sessions = 16;
  options.default_quantum = kQuantum;
  QueryService service(store, f.shared_strategy, options);

  std::vector<QueryRequest> requests;
  for (uint64_t t = 0; t < 3; ++t) {
    for (FaultPolicy policy : {FaultPolicy::kFail, FaultPolicy::kSkip}) {
      QueryRequest request(f.MakeBatch(t));
      request.penalty = f.sse;
      request.fault_policy = policy;
      requests.push_back(std::move(request));
    }
  }
  std::vector<QueryResponse> responses = Serve(service, requests);

  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_TRUE(responses[i].status.ok()) << responses[i].status;
    EXPECT_TRUE(responses[i].exact);
    QueryResponse reference =
        Isolated(requests[i], store, f.strategy, kQuantum);
    ExpectBitIdentical(responses[i], reference,
                       ("request " + std::to_string(i)).c_str());
  }
  // The whole point: six sessions over three templates share one cache, so
  // somebody's fetches were warm.
  EXPECT_GT(service.shared_hits(), 0u);
}

TEST(QueryServiceGolden, MatchesIsolatedSessionsUnsharded) {
  ServingFixture f;
  GoldenAgainstIsolated(f.BuildView(), f, "unsharded hash view");
}

TEST(QueryServiceGolden, MatchesIsolatedSessionsShardedS4) {
  ServingFixture f;
  auto source = f.BuildView();
  uint64_t max_key = 0;
  source->ForEachNonZero(
      [&](uint64_t key, double) { max_key = std::max(max_key, key); });
  const KeyRouter router = KeyRouter::Uniform(max_key + 1, 4);
  std::vector<std::unique_ptr<CoefficientStore>> shards;
  for (size_t s = 0; s < router.num_shards(); ++s) {
    shards.push_back(std::make_unique<HashStore>());
  }
  source->ForEachNonZero([&](uint64_t key, double value) {
    shards[router.ShardOf(key)]->Add(key, value);
  });
  auto sharded = std::make_shared<ShardedStore>(std::move(shards), router);
  GoldenAgainstIsolated(sharded, f, "sharded S=4 plane");
}

TEST(QueryServiceGolden, MatchesIsolatedSessionsVersioned) {
  ServingFixture f;
  auto versioned = std::make_shared<VersionedStore>(
      f.strategy.BuildStore(f.rel.FrequencyDistribution()));
  // Advance past the base epoch so sessions genuinely pin a snapshot.
  Relation stream = MakeUniformRelation(f.schema, 40, 91);
  for (const Tuple& t : stream.tuples()) {
    versioned->Ingest(f.strategy.TransformUpdate(t, 1.0).value());
  }
  ASSERT_EQ(versioned->Publish(), 1u);
  GoldenAgainstIsolated(versioned, f, "versioned plane at epoch 1");
}

/// The acceptance criterion: K=8 concurrent sessions over one FileStore.
/// Every session's own io() stays the isolated cost, but the backend sees
/// each coefficient once — per-session backend traffic drops by ~K (>= 2x
/// required).
TEST(QueryServiceSharing, BackendIoDropsAtLeastTwofoldOnFileStore) {
  ServingFixture f;
  auto view = f.BuildView();
  std::vector<double> values(16 * 16, 0.0);
  view->ForEachNonZero(
      [&](uint64_t key, double value) { values[key] = value; });
  const std::string path =
      ::testing::TempDir() + "/wavebatch_query_service_store.bin";
  auto file_store = FileStore::Create(path, values);
  ASSERT_TRUE(file_store.ok()) << file_store.status();
  std::shared_ptr<const CoefficientStore> store = std::move(file_store).value();

  constexpr size_t kClients = 8;
  constexpr size_t kQuantum = 16;
  QueryServiceOptions options;
  options.max_live_sessions = kClients;
  options.default_quantum = kQuantum;
  QueryService service(store, f.shared_strategy, options);

  QueryRequest request(f.MakeBatch(7));
  request.penalty = f.sse;
  std::vector<QueryRequest> requests(kClients, request);
  std::vector<QueryResponse> responses = Serve(service, requests);

  QueryResponse reference = Isolated(request, store, f.strategy, kQuantum);
  const uint64_t isolated_cost = reference.io.retrievals;
  ASSERT_GT(isolated_cost, 0u);
  for (size_t i = 0; i < kClients; ++i) {
    EXPECT_TRUE(responses[i].status.ok()) << responses[i].status;
    ExpectBitIdentical(responses[i], reference,
                       ("client " + std::to_string(i)).c_str());
  }
  // Backend keys fetched = shared-cache misses (each cold key reaches the
  // file exactly once). Per-session backend cost must be at most half the
  // isolated cost; with K identical batches it is ~isolated/K.
  const uint64_t backend_keys = service.shared_misses();
  EXPECT_LE(backend_keys, isolated_cost + kQuantum)
      << "the union batch should cover every session's needs once";
  EXPECT_LE(2 * (backend_keys / kClients), isolated_cost)
      << "per-session backend I/O must drop >= 2x vs isolated";
  EXPECT_GT(service.shared_hits(), 0u);
}

TEST(QueryServiceFaults, SkipPolicyMatchesIsolatedOverFaultyStore) {
  ServingFixture f;
  auto faulty = std::make_shared<FaultInjectionStore>(
      f.strategy.BuildStore(f.rel.FrequencyDistribution()));
  // A permanent key fault is deterministic regardless of fetch interleaving
  // — the right fault shape for a golden comparison.
  auto probe_plan = EvalPlan::Build(f.MakeBatch(2), f.strategy, f.sse).value();
  ASSERT_GT(probe_plan->size(), 0u);
  const uint64_t bad_key = probe_plan->list().keys()[0];
  faulty->FailKey(bad_key);

  constexpr size_t kQuantum = 16;
  QueryServiceOptions options;
  options.default_quantum = kQuantum;
  QueryService service(faulty, f.shared_strategy, options);

  QueryRequest request(f.MakeBatch(2));
  request.penalty = f.sse;
  request.fault_policy = FaultPolicy::kSkip;
  std::vector<QueryRequest> requests(4, request);
  std::vector<QueryResponse> responses = Serve(service, requests);

  QueryResponse reference = Isolated(request, faulty, f.strategy, kQuantum);
  EXPECT_GE(reference.skipped_coefficients, 1u);
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_TRUE(responses[i].status.ok()) << responses[i].status;
    EXPECT_FALSE(responses[i].exact);
    ExpectBitIdentical(responses[i], reference,
                       ("client " + std::to_string(i)).c_str());
  }
}

TEST(QueryServiceProgress, TargetBoundCompletesEarlyWithValidBound) {
  ServingFixture f;
  auto store = f.BuildView();
  QueryServiceOptions options;
  options.default_quantum = 4;
  QueryService service(store, f.shared_strategy, options);

  // A target midway between start and zero: reachable, but not at step 0.
  auto plan = EvalPlan::Build(f.MakeBatch(1), f.strategy, f.sse).value();
  EvalSession probe(plan, store);
  const double start_bound = probe.WorstCaseBound(store->SumAbs());
  ASSERT_GT(start_bound, 0.0);

  QueryRequest request(f.MakeBatch(1));
  request.penalty = f.sse;
  request.target_bound = start_bound / 2;
  std::vector<QueryResponse> responses = Serve(service, {request});

  ASSERT_TRUE(responses[0].status.ok()) << responses[0].status;
  EXPECT_FALSE(responses[0].deadline_expired);
  EXPECT_LE(responses[0].worst_case_bound, request.target_bound);
  EXPECT_LT(responses[0].steps_taken, responses[0].total_steps)
      << "the target bound should be reached before exactness";
  EXPECT_GT(responses[0].steps_taken, 0u);
}

TEST(QueryServiceProgress, ExpiredDeadlineReturnsProgressiveAnswer) {
  ServingFixture f;
  QueryServiceOptions options;
  options.default_quantum = 4;
  QueryService service(f.BuildView(), f.shared_strategy, options);

  QueryRequest request(f.MakeBatch(3));
  request.penalty = f.sse;
  request.deadline = std::chrono::microseconds(1);  // expired on admission
  std::vector<QueryResponse> responses = Serve(service, {request});

  ASSERT_TRUE(responses[0].status.ok()) << responses[0].status;
  EXPECT_TRUE(responses[0].deadline_expired);
  EXPECT_FALSE(responses[0].exact);
  EXPECT_LT(responses[0].steps_taken, responses[0].total_steps);
  EXPECT_GT(responses[0].worst_case_bound, 0.0)
      << "an approximate answer still carries its Theorem-1 bound";
  EXPECT_EQ(responses[0].estimates.size(), 6u);
}

TEST(QueryServiceBackpressure, AdmissionQueueShedsBeyondDepth) {
  ServingFixture f;
  QueryServiceOptions options;
  options.max_queue_depth = 2;
  QueryService service(f.BuildView(), f.shared_strategy, options);

  QueryRequest request(f.MakeBatch(0));
  request.penalty = f.sse;
  std::atomic<int> callbacks{0};
  auto count = [&callbacks](QueryResponse) { callbacks.fetch_add(1); };
  EXPECT_TRUE(service.Submit(request, count).ok());
  EXPECT_TRUE(service.Submit(request, count).ok());
  Status shed = service.Submit(request, count);
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.sheds(), 1u);
  EXPECT_EQ(service.queue_depth(), 2u);

  service.RunUntilIdle();
  EXPECT_EQ(callbacks.load(), 2) << "shed requests never get a callback";
  EXPECT_EQ(service.completed(), 2u);
}

TEST(QueryServiceBackpressure, ThreadPoolGaugeShedsAdmissions) {
  ServingFixture f;
  QueryServiceOptions options;
  options.pool_queue_shed_threshold = 0.5;
  QueryService service(f.BuildView(), f.shared_strategy, options);

  telemetry::Gauge* pool_depth =
      telemetry::MetricsRegistry::Default().GetGauge(
          "wavebatch_thread_pool_queue_depth");
  pool_depth->Add(10.0);  // push over threshold
  QueryRequest request(f.MakeBatch(0));
  request.penalty = f.sse;
  Status shed = service.Submit(request, [](QueryResponse) {});
  pool_depth->Add(-10.0);  // restore

  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_GE(service.sheds(), 1u);
}

TEST(QueryServiceLifecycle, DestructorFailsOutstandingRequests) {
  ServingFixture f;
  QueryResponse last;
  int calls = 0;
  {
    QueryService service(f.BuildView(), f.shared_strategy);
    QueryRequest request(f.MakeBatch(4));
    request.penalty = f.sse;
    ASSERT_TRUE(service
                    .Submit(request,
                            [&](QueryResponse r) {
                              last = std::move(r);
                              ++calls;
                            })
                    .ok());
  }
  EXPECT_EQ(calls, 1) << "every admitted request gets exactly one callback";
  EXPECT_EQ(last.status.code(), StatusCode::kUnavailable);
}

TEST(QueryServicePeek, UpcomingKeysMatchConsumptionOrder) {
  ServingFixture f;
  auto store = f.BuildView();
  auto plan = EvalPlan::Build(f.MakeBatch(5), f.strategy, f.sse).value();
  EvalSession session(plan, store);

  std::vector<uint64_t> peeked;
  const size_t n = std::min<size_t>(10, session.TotalSteps());
  ASSERT_EQ(session.PeekUpcomingKeys(n, &peeked), n);
  ASSERT_EQ(session.io().retrievals, 0u) << "peeking is uncounted";

  for (size_t i = 0; i < n; ++i) {
    Result<size_t> entry = session.Step();
    ASSERT_TRUE(entry.ok());
    EXPECT_EQ(plan->list().keys()[entry.value()], peeked[i]) << "step " << i;
  }
  // A later peek starts at the cursor, not the beginning.
  std::vector<uint64_t> after;
  if (session.PeekUpcomingKeys(1, &after) == 1) {
    EXPECT_EQ(plan->list().keys()[plan->Permutation(
                  ProgressionOrder::kBiggestB)[session.StepsTaken()]],
              after[0]);
  }
}

/// TSan stress: two workers serving, two client threads submitting, one
/// writer ingesting and publishing epochs into the VersionedStore the
/// service reads, with on_publish wired to RefreshEpoch — the full serving
/// read-write surface under the race detector.
TEST(QueryServiceConcurrency, ServesUnderEpochChurn) {
  ServingFixture f;
  QueryService* service_ptr = nullptr;
  VersionedStoreOptions store_options;
  store_options.on_publish = [&service_ptr](uint64_t) {
    if (service_ptr != nullptr) service_ptr->RefreshEpoch();
  };
  auto versioned = std::make_shared<VersionedStore>(
      f.strategy.BuildStore(f.rel.FrequencyDistribution()), store_options);

  QueryServiceOptions options;
  options.default_quantum = 8;
  options.max_live_sessions = 8;
  QueryService service(versioned, f.shared_strategy, options);
  service_ptr = &service;
  service.Start(2);

  constexpr int kRequestsPerClient = 10;
  std::mutex mu;
  std::condition_variable cv;
  int completed = 0;
  int ok = 0;
  auto on_done = [&](QueryResponse r) {
    std::lock_guard<std::mutex> lock(mu);
    ++completed;
    if (r.status.ok()) ++ok;
    cv.notify_all();
  };

  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    Relation stream = MakeUniformRelation(f.schema, 200, 5);
    size_t i = 0;
    while (!stop_writer.load(std::memory_order_relaxed)) {
      versioned->Ingest(
          f.strategy.TransformUpdate(stream.tuples()[i % 200], 1.0).value());
      if (i % 4 == 3) versioned->Publish();
      ++i;
      std::this_thread::yield();
    }
  });

  int admitted = 0;
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        QueryRequest request(f.MakeBatch(static_cast<uint64_t>(c * 100 + i)));
        request.penalty = f.sse;
        while (!service.Submit(request, on_done).ok()) {
          std::this_thread::yield();  // shed under load: retry
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  admitted = 2 * kRequestsPerClient;

  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return completed == admitted; });
  }
  stop_writer.store(true);
  writer.join();
  service.Stop();

  EXPECT_EQ(ok, admitted) << "every admitted request completes cleanly";
  EXPECT_GE(service.generation(), 1u);
}

// ---------------------------------------------------------------------------
// Request-scoped tracing: the propagation goldens. With tracing on, every
// backend fetch span recorded while serving must carry the request
// attribution of some admitted request — across every store shape the
// serving stack composes (unsharded view, sharded scatter-gather whose
// sub-batches hop worker pools, a versioned plane's pinned snapshot, and a
// FileStore under cross-session sharing).

/// Serves three traced requests over `store` and asserts the golden:
/// responses carry minted ids + non-empty timelines, and every
/// store_fetch_batch span attributes to one of the admitted requests.
void ExpectFetchSpansAttributed(std::shared_ptr<const CoefficientStore> store,
                                const ServingFixture& f, const char* label) {
  SCOPED_TRACE(label);
  telemetry::MetricsRegistry::Enable();
  auto& registry = telemetry::MetricsRegistry::Default();
  registry.ResetValues();

  QueryServiceOptions options;
  options.default_quantum = 16;
  options.max_live_sessions = 8;
  QueryService service(store, f.shared_strategy, options);

  std::vector<QueryRequest> requests;
  for (uint64_t t = 0; t < 3; ++t) {
    QueryRequest request(f.MakeBatch(t));
    request.penalty = f.sse;
    requests.push_back(std::move(request));
  }
  std::vector<QueryResponse> responses = Serve(service, requests);

  std::unordered_set<uint64_t> request_ids;
  for (const QueryResponse& r : responses) {
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_NE(r.request_id, 0u);
    EXPECT_NE(r.trace_id, 0u);
    EXPECT_FALSE(r.timeline.empty());
    request_ids.insert(r.request_id);
  }
  EXPECT_EQ(request_ids.size(), requests.size()) << "ids must be distinct";

  size_t fetch_spans = 0;
  for (const telemetry::SpanEvent& span : registry.Spans()) {
    if (std::string_view(span.name) != "store_fetch_batch") continue;
    ++fetch_spans;
    EXPECT_TRUE(request_ids.count(span.request_id) > 0)
        << "backend fetch span not attributable to any admitted request "
           "(request_id="
        << span.request_id << ")";
    EXPECT_NE(span.trace_id, 0u);
  }
  EXPECT_GT(fetch_spans, 0u);
}

TEST(QueryServiceTracing, FetchSpansAttributedUnsharded) {
  ServingFixture f;
  ExpectFetchSpansAttributed(f.BuildView(), f, "unsharded hash view");
}

TEST(QueryServiceTracing, FetchSpansAttributedShardedS4) {
  ServingFixture f;
  auto source = f.BuildView();
  uint64_t max_key = 0;
  source->ForEachNonZero(
      [&](uint64_t key, double) { max_key = std::max(max_key, key); });
  const KeyRouter router = KeyRouter::Uniform(max_key + 1, 4);
  std::vector<std::unique_ptr<CoefficientStore>> shards;
  for (size_t s = 0; s < router.num_shards(); ++s) {
    shards.push_back(std::make_unique<HashStore>());
  }
  source->ForEachNonZero([&](uint64_t key, double value) {
    shards[router.ShardOf(key)]->Add(key, value);
  });
  auto sharded = std::make_shared<ShardedStore>(std::move(shards), router);
  ExpectFetchSpansAttributed(sharded, f, "sharded S=4 plane");

  // The scatter-gather legs crossed pool threads under the installed
  // context: shard sub-batch spans attribute too, with their shard ids.
  size_t subbatches = 0;
  for (const telemetry::SpanEvent& span :
       telemetry::MetricsRegistry::Default().Spans()) {
    if (std::string_view(span.name) != "shard_subbatch") continue;
    ++subbatches;
    EXPECT_NE(span.request_id, 0u);
    ASSERT_GE(span.num_attrs, 1u);
    EXPECT_EQ(std::string_view(span.attrs[0].key), "shard");
  }
  EXPECT_GT(subbatches, 0u);
}

TEST(QueryServiceTracing, FetchSpansAttributedVersioned) {
  ServingFixture f;
  auto versioned = std::make_shared<VersionedStore>(
      f.strategy.BuildStore(f.rel.FrequencyDistribution()));
  Relation stream = MakeUniformRelation(f.schema, 40, 91);
  for (const Tuple& t : stream.tuples()) {
    versioned->Ingest(f.strategy.TransformUpdate(t, 1.0).value());
  }
  ASSERT_EQ(versioned->Publish(), 1u);
  ExpectFetchSpansAttributed(versioned, f, "versioned plane at epoch 1");
}

TEST(QueryServiceTracing, FetchSpansAttributedFileStoreSharing) {
  ServingFixture f;
  auto view = f.BuildView();
  std::vector<double> values(16 * 16, 0.0);
  view->ForEachNonZero(
      [&](uint64_t key, double value) { values[key] = value; });
  const std::string path =
      ::testing::TempDir() + "/wavebatch_tracing_store.bin";
  auto file_store = FileStore::Create(path, values);
  ASSERT_TRUE(file_store.ok()) << file_store.status();
  ExpectFetchSpansAttributed(std::move(file_store).value(), f,
                             "file store under cross-session sharing");
}

TEST(QueryServiceTracing, ConvergenceTimelineIsMonotoneAndFinal) {
  ServingFixture f;
  telemetry::MetricsRegistry::Enable();
  telemetry::MetricsRegistry::Default().ResetValues();

  QueryServiceOptions options;
  options.default_quantum = 8;  // many quanta -> many timeline points
  QueryService service(f.BuildView(), f.shared_strategy, options);

  QueryRequest request(f.MakeBatch(2));
  request.penalty = f.sse;
  std::vector<QueryResponse> responses = Serve(service, {request});
  const QueryResponse& r = responses[0];
  ASSERT_TRUE(r.status.ok()) << r.status;
  ASSERT_GE(r.timeline.size(), 2u);

  for (size_t i = 1; i < r.timeline.size(); ++i) {
    EXPECT_GE(r.timeline[i].steps, r.timeline[i - 1].steps);
    EXPECT_GE(r.timeline[i].retrievals, r.timeline[i - 1].retrievals);
    EXPECT_GE(r.timeline[i].elapsed_us, r.timeline[i - 1].elapsed_us);
    // Importance-ordered progression: the Theorem-1 bound only tightens.
    EXPECT_LE(r.timeline[i].bound, r.timeline[i - 1].bound + 1e-9);
  }
  // The forced completion point is the answer actually returned.
  const telemetry::TimelinePoint& last = r.timeline.back();
  EXPECT_EQ(last.steps, r.steps_taken);
  EXPECT_EQ(last.retrievals, r.io.retrievals);
  EXPECT_DOUBLE_EQ(last.bound, r.worst_case_bound);

  // The completed request's record is retained for /tracez.
  std::vector<QueryService::TimelineRecord> recent =
      service.RecentTimelines();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].request_id, r.request_id);
  EXPECT_EQ(recent[0].trace_id, r.trace_id);
  EXPECT_TRUE(recent[0].ok);
  EXPECT_EQ(recent[0].points.size(), r.timeline.size());
}

TEST(QueryServiceTracing, DisabledTelemetryMintsNoIdsAndNoTimeline) {
  ServingFixture f;
  telemetry::MetricsRegistry::Disable();
  QueryServiceOptions options;
  options.default_quantum = 16;
  QueryService service(f.BuildView(), f.shared_strategy, options);

  QueryRequest request(f.MakeBatch(1));
  request.penalty = f.sse;
  std::vector<QueryResponse> responses = Serve(service, {request});
  telemetry::MetricsRegistry::Enable();

  ASSERT_TRUE(responses[0].status.ok()) << responses[0].status;
  EXPECT_EQ(responses[0].request_id, 0u);
  EXPECT_EQ(responses[0].trace_id, 0u);
  EXPECT_TRUE(responses[0].timeline.empty());
  EXPECT_TRUE(service.RecentTimelines().empty());
}

/// TSan stress: the epoch-churn serving test with tracing active — workers
/// installing trace contexts, sibling attribution markers, timeline
/// sampling, and /statusz-style introspection reads, all racing a writer
/// publishing epochs.
TEST(QueryServiceConcurrency, TracedServingUnderEpochChurn) {
  ServingFixture f;
  telemetry::MetricsRegistry::Enable();
  telemetry::MetricsRegistry::Default().ResetValues();

  QueryService* service_ptr = nullptr;
  VersionedStoreOptions store_options;
  store_options.on_publish = [&service_ptr](uint64_t) {
    if (service_ptr != nullptr) service_ptr->RefreshEpoch();
  };
  auto versioned = std::make_shared<VersionedStore>(
      f.strategy.BuildStore(f.rel.FrequencyDistribution()), store_options);

  QueryServiceOptions options;
  options.default_quantum = 8;
  options.max_live_sessions = 8;
  QueryService service(versioned, f.shared_strategy, options);
  service_ptr = &service;
  service.Start(2);

  constexpr int kRequests = 12;
  std::mutex mu;
  std::condition_variable cv;
  int completed = 0;
  int with_ids = 0;
  auto on_done = [&](QueryResponse r) {
    std::lock_guard<std::mutex> lock(mu);
    ++completed;
    if (r.status.ok() && r.request_id != 0 && !r.timeline.empty()) ++with_ids;
    cv.notify_all();
  };

  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    Relation stream = MakeUniformRelation(f.schema, 200, 5);
    size_t i = 0;
    while (!stop_writer.load(std::memory_order_relaxed)) {
      versioned->Ingest(
          f.strategy.TransformUpdate(stream.tuples()[i % 200], 1.0).value());
      if (i % 4 == 3) versioned->Publish();
      ++i;
      std::this_thread::yield();
    }
  });
  // Introspection under load: snapshot accessors race the serving threads.
  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_relaxed)) {
      (void)service.GroupStatuses();
      (void)service.RecentTimelines();
      (void)service.epoch();
      std::this_thread::yield();
    }
  });

  for (int i = 0; i < kRequests; ++i) {
    QueryRequest request(f.MakeBatch(static_cast<uint64_t>(i)));
    request.penalty = f.sse;
    while (!service.Submit(request, on_done).ok()) {
      std::this_thread::yield();
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return completed == kRequests; });
  }
  stop_writer.store(true);
  writer.join();
  stop_reader.store(true);
  reader.join();
  service.Stop();

  EXPECT_EQ(with_ids, kRequests)
      << "every traced request completes with ids and a timeline";
}

TEST(SharedFetchStoreTest, ChargesFullCostWhileHittingCache) {
  ServingFixture f;
  auto view = f.BuildView();
  auto cache = std::make_shared<SharedFetchCache>();
  SharedFetchStore shared(view, cache);

  std::vector<uint64_t> keys;
  view->ForEachNonZero([&](uint64_t key, double) {
    if (keys.size() < 32) keys.push_back(key);
  });
  ASSERT_FALSE(keys.empty());

  // Prefetch warms the cache without touching any session's accounting.
  ASSERT_TRUE(shared.Prefetch(keys).ok());
  EXPECT_EQ(cache->size(), keys.size());

  IoStats io;
  std::vector<double> out(keys.size());
  ASSERT_TRUE(shared.FetchBatch(keys, out, &io).ok());
  EXPECT_EQ(io.retrievals, keys.size())
      << "cache hits still cost one retrieval in the per-session model";
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(out[i], view->Peek(keys[i]));
  }
  EXPECT_EQ(cache->hits(), keys.size());

  // A second prefetch of the same keys is free (all warm).
  const uint64_t misses_before = cache->misses();
  ASSERT_TRUE(shared.Prefetch(keys).ok());
  EXPECT_EQ(cache->misses(), misses_before);
}

}  // namespace
}  // namespace wavebatch
