#ifndef WAVEBATCH_QUERY_RANGE_H_
#define WAVEBATCH_QUERY_RANGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cube/relation.h"
#include "cube/schema.h"
#include "util/status.h"

namespace wavebatch {

/// A closed integer interval [lo, hi] within one dimension.
struct Interval {
  uint32_t lo = 0;
  uint32_t hi = 0;

  uint64_t length() const { return static_cast<uint64_t>(hi) - lo + 1; }
  bool Contains(uint32_t x) const { return x >= lo && x <= hi; }
  friend bool operator==(const Interval& a, const Interval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// A hyper-rectangle R ⊂ Dom(F): one closed interval per schema dimension.
/// Ranges are always full-dimensional; a dimension left unrestricted simply
/// uses [0, size-1].
class Range {
 public:
  /// Validates intervals against `schema` (one per dimension, lo <= hi < size).
  static Result<Range> Create(const Schema& schema,
                              std::vector<Interval> intervals);

  /// The whole domain of `schema`.
  static Range All(const Schema& schema);

  size_t num_dims() const { return intervals_.size(); }
  const Interval& interval(size_t dim) const { return intervals_[dim]; }
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Number of cells in the hyper-rectangle.
  uint64_t Volume() const;

  bool Contains(const Tuple& t) const;

  /// Returns a copy with dimension `dim` restricted to [lo, hi] (checked
  /// against the current interval, not just the schema).
  Range Restrict(size_t dim, uint32_t lo, uint32_t hi) const;

  /// e.g. "[3,17]x[0,63]".
  std::string ToString() const;

  friend bool operator==(const Range& a, const Range& b) {
    return a.intervals_ == b.intervals_;
  }

 private:
  explicit Range(std::vector<Interval> intervals)
      : intervals_(std::move(intervals)) {}

  std::vector<Interval> intervals_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_QUERY_RANGE_H_
