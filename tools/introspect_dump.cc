// Introspection smoke driver: runs a small traced serving workload (the
// test fixture's 2x16 Haar cube, a handful of Count batches through
// QueryService) and then either
//
//   dump mode   ./introspect_dump --out_dir=DIR
//               writes metrics.prom, statusz.json, tracez.json, and
//               trace.json (Chrome trace) — the text fallback for
//               environments that cannot open a listener;
//
//   serve mode  ./introspect_dump --serve_s=N [--port=P]
//               starts the debug HTTP listener (port 0 = ephemeral; the
//               bound port prints as "listening on 127.0.0.1:<port>"),
//               serves /metrics, /statusz, /tracez for N seconds, exits 0.
//
// CI's introspection-smoke job uses serve mode to curl every endpoint and
// dump mode to exercise the fallback.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "penalty/sse.h"
#include "server/debug_http.h"
#include "server/introspection.h"
#include "server/query_service.h"
#include "strategy/wavelet_strategy.h"
#include "telemetry/export.h"
#include "util/random.h"

namespace wavebatch {
namespace {

using server::DebugHttpServer;
using server::QueryRequest;
using server::QueryResponse;
using server::QueryService;
using server::QueryServiceOptions;

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

QueryBatch MakeBatch(const Schema& schema, uint64_t template_id) {
  QueryBatch batch(schema);
  Rng rng(1000 + template_id);
  for (size_t i = 0; i < 6; ++i) {
    uint32_t lo0 = static_cast<uint32_t>(rng.UniformInt(16));
    uint32_t hi0 = lo0 + static_cast<uint32_t>(rng.UniformInt(16 - lo0));
    uint32_t lo1 = static_cast<uint32_t>(rng.UniformInt(16));
    uint32_t hi1 = lo1 + static_cast<uint32_t>(rng.UniformInt(16 - lo1));
    batch.Add(RangeSumQuery::Count(
        Range::Create(schema, {{lo0, hi0}, {lo1, hi1}}).value()));
  }
  return batch;
}

/// Pushes a traced workload through the service so every endpoint has real
/// content: 8 requests over 4 templates, drained synchronously.
void RunWorkload(QueryService& service, const Schema& schema) {
  auto sse = std::make_shared<SsePenalty>();
  std::vector<QueryResponse> responses(8);
  for (size_t i = 0; i < responses.size(); ++i) {
    QueryRequest request(MakeBatch(schema, i % 4));
    request.penalty = sse;
    request.quantum = 32;
    Status admitted = service.Submit(request, [&responses, i](QueryResponse r) {
      responses[i] = std::move(r);
    });
    if (!admitted.ok()) std::cerr << "submit: " << admitted << std::endl;
  }
  service.RunUntilIdle();
  size_t traced = 0;
  for (const QueryResponse& r : responses) {
    if (r.trace_id != 0 && !r.timeline.empty()) ++traced;
  }
  std::cout << "workload: " << responses.size() << " requests, " << traced
            << " traced with timelines" << std::endl;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  if (!out) {
    std::cerr << "failed to write " << path << std::endl;
    return false;
  }
  std::cout << "wrote " << path << " (" << content.size() << " bytes)"
            << std::endl;
  return true;
}

int Main(int argc, char** argv) {
  const std::string out_dir = FlagValue(argc, argv, "out_dir", "");
  const int serve_s = std::stoi(FlagValue(argc, argv, "serve_s", "0"));
  const int port = std::stoi(FlagValue(argc, argv, "port", "0"));
  if (out_dir.empty() && serve_s <= 0) {
    std::cerr << "usage: introspect_dump --out_dir=DIR | --serve_s=N "
                 "[--port=P]"
              << std::endl;
    return 2;
  }

  Schema schema = Schema::Uniform(2, 16);
  Relation rel = MakeUniformRelation(schema, 600, 11);
  WaveletStrategy builder(schema, WaveletKind::kHaar);
  std::shared_ptr<const CoefficientStore> store(
      builder.BuildStore(rel.FrequencyDistribution()));
  auto strategy =
      std::make_shared<WaveletStrategy>(schema, WaveletKind::kHaar);

  QueryServiceOptions options;
  options.default_quantum = 32;
  QueryService service(store, strategy, options);

  if (serve_s > 0) {
    DebugHttpServer http;
    server::RegisterIntrospection(&http, &service);
    Status started = http.Start(static_cast<uint16_t>(port));
    if (!started.ok()) {
      std::cerr << "listener: " << started << std::endl;
      return 1;
    }
    // The port line is the serve-mode contract: CI parses it to curl.
    std::cout << "listening on 127.0.0.1:" << http.port() << std::endl;
    RunWorkload(service, schema);
    std::this_thread::sleep_for(std::chrono::seconds(serve_s));
    http.Stop();
    return 0;
  }

  RunWorkload(service, schema);
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::cerr << "cannot create " << out_dir << ": " << ec.message()
              << std::endl;
    return 1;
  }
  bool ok = true;
  ok &= WriteFile(out_dir + "/metrics.prom", telemetry::ExportPrometheus());
  ok &= WriteFile(out_dir + "/statusz.json", server::StatuszJson(service));
  ok &= WriteFile(out_dir + "/tracez.json", server::TracezJson(&service));
  ok &= WriteFile(out_dir + "/trace.json", telemetry::ExportChromeTrace());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace wavebatch

int main(int argc, char** argv) { return wavebatch::Main(argc, argv); }
