
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cube/dense_cube.cc" "src/cube/CMakeFiles/wavebatch_cube.dir/dense_cube.cc.o" "gcc" "src/cube/CMakeFiles/wavebatch_cube.dir/dense_cube.cc.o.d"
  "/root/repo/src/cube/relation.cc" "src/cube/CMakeFiles/wavebatch_cube.dir/relation.cc.o" "gcc" "src/cube/CMakeFiles/wavebatch_cube.dir/relation.cc.o.d"
  "/root/repo/src/cube/schema.cc" "src/cube/CMakeFiles/wavebatch_cube.dir/schema.cc.o" "gcc" "src/cube/CMakeFiles/wavebatch_cube.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wavebatch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
