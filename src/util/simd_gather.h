#ifndef WAVEBATCH_UTIL_SIMD_GATHER_H_
#define WAVEBATCH_UTIL_SIMD_GATHER_H_

#include <cstddef>
#include <cstdint>

#include "util/cpu_features.h"

namespace wavebatch::simd {

/// Bounds-checked permuted gather: out[i] = values[keys[i]] for i in [0, n),
/// where every key must satisfy key < capacity. Returns true when all keys
/// were in range and `out` is fully written; returns false as soon as any
/// chunk contains an out-of-range key, in which case `out` is unspecified
/// and the caller re-runs its scalar loop to surface the exact first
/// offending key (error identity with the scalar path matters more than
/// speed on the failure path).
///
/// The gathered doubles are copied bit-for-bit — a hardware gather of lane
/// values is exactly the scalar loads in a different order — so the SIMD
/// gather is bit-identical to the scalar loop by construction.
///
/// Implemented in simd_gather_avx2.cc / simd_gather_avx512.cc; when the
/// toolchain cannot compile the intrinsics the TU provides a scalar
/// fallback with the same contract (it is then never selected by dispatch,
/// but linking stays uniform).
bool GatherDoublesAvx2(const double* values, uint64_t capacity,
                       const uint64_t* keys, size_t n, double* out);
bool GatherDoublesAvx512(const double* values, uint64_t capacity,
                         const uint64_t* keys, size_t n, double* out);

/// Dispatching wrapper. For KernelTier::kScalar it returns false without
/// touching `out` — callers keep their existing scalar loop as the one true
/// scalar implementation instead of duplicating it here.
inline bool GatherDoubles(KernelTier tier, const double* values,
                          uint64_t capacity, const uint64_t* keys, size_t n,
                          double* out) {
  switch (tier) {
    case KernelTier::kAvx512:
      return GatherDoublesAvx512(values, capacity, keys, n, out);
    case KernelTier::kAvx2:
      return GatherDoublesAvx2(values, capacity, keys, n, out);
    case KernelTier::kScalar:
      break;
  }
  return false;
}

}  // namespace wavebatch::simd

#endif  // WAVEBATCH_UTIL_SIMD_GATHER_H_
