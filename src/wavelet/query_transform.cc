#include "wavelet/query_transform.h"

#include <cmath>

#include "util/bits.h"
#include "util/check.h"
#include "wavelet/dwt1d.h"

namespace wavebatch {

std::vector<SparseEntry> SparseDwt1D(std::vector<double> dense,
                                     const WaveletFilter& filter) {
  WB_CHECK(IsPowerOfTwo(dense.size()));
  ForwardDwt1D(dense, filter);
  double max_abs = 0.0;
  for (double v : dense) max_abs = std::max(max_abs, std::abs(v));
  const double eps = max_abs * kQueryCoefficientRelEps;
  std::vector<SparseEntry> out;
  for (uint64_t i = 0; i < dense.size(); ++i) {
    if (std::abs(dense[i]) > eps) out.push_back({i, dense[i]});
  }
  return out;
}

std::vector<SparseEntry> SparseRangeMonomialDwt1D(
    uint64_t n, uint32_t lo, uint32_t hi, uint32_t degree,
    const WaveletFilter& filter) {
  WB_CHECK(IsPowerOfTwo(n));
  WB_CHECK_LE(lo, hi);
  WB_CHECK_LT(static_cast<uint64_t>(hi), n);
  std::vector<double> dense(n, 0.0);
  for (uint64_t x = lo; x <= hi; ++x) {
    dense[x] = degree == 0
                   ? 1.0
                   : std::pow(static_cast<double>(x),
                              static_cast<double>(degree));
  }
  return SparseDwt1D(std::move(dense), filter);
}

}  // namespace wavebatch
