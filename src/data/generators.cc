#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace wavebatch {

Schema TemperatureSchema(const TemperatureDatasetOptions& options) {
  Result<Schema> schema = Schema::Create({
      {"lat", options.lat_size},
      {"lon", options.lon_size},
      {"alt", options.alt_size},
      {"time", options.time_size},
      {"temp", options.temp_size},
  });
  WB_CHECK(schema.ok()) << schema.status();
  return std::move(schema).value();
}

namespace {

// Streams `options.num_records` synthetic observations into `sink(tuple)`.
template <typename Sink>
void SampleTemperatureRecords(const TemperatureDatasetOptions& options,
                              Sink&& sink) {
  Rng rng(options.seed);
  const double temp_max = options.temp_size - 1;
  // Fixed "station network" centers (fractions of the lat/lon domain),
  // roughly where land masses put real observation density.
  static constexpr double kCenters[][2] = {
      {0.30, 0.15}, {0.42, 0.55}, {0.65, 0.80}, {0.55, 0.30}, {0.25, 0.70}};
  static constexpr size_t kNumCenters = 5;
  Tuple t(5);
  for (uint64_t r = 0; r < options.num_records; ++r) {
    uint32_t lat, lon;
    if (rng.UniformDouble() < options.station_clustering) {
      const double* c = kCenters[rng.UniformInt(kNumCenters)];
      const double lat_raw =
          c[0] * options.lat_size + rng.Gaussian() * options.lat_size / 10.0;
      const double lon_raw =
          c[1] * options.lon_size + rng.Gaussian() * options.lon_size / 10.0;
      lat = static_cast<uint32_t>(std::clamp(
          lat_raw, 0.0, static_cast<double>(options.lat_size - 1)));
      lon = static_cast<uint32_t>(std::clamp(
          lon_raw, 0.0, static_cast<double>(options.lon_size - 1)));
    } else {
      lat = static_cast<uint32_t>(rng.UniformInt(options.lat_size));
      lon = static_cast<uint32_t>(rng.UniformInt(options.lon_size));
    }
    // Observations thin out with altitude (fewer sensors aloft).
    const uint32_t alt = static_cast<uint32_t>(
        std::min<double>(std::abs(rng.Gaussian()) * options.alt_size / 2.5,
                         options.alt_size - 1));
    const uint32_t time =
        static_cast<uint32_t>(rng.UniformInt(options.time_size));

    // Smooth mean-temperature field, in [0, 1] before scaling:
    // warm at the equator (middle latitude bin), cooling aloft, a seasonal-
    // diurnal cycle, and gentle longitudinal (continent/ocean) variation.
    const double lat_frac = static_cast<double>(lat) / (options.lat_size - 1);
    const double equator = std::sin(M_PI * lat_frac);  // 0..1
    const double lapse = static_cast<double>(alt) / options.alt_size;
    const double season =
        0.15 * std::sin(2.0 * M_PI * time / options.time_size);
    const double continent =
        0.10 * std::sin(4.0 * M_PI * lon / options.lon_size);
    // Keep the field well inside (0, 1): binned physical temperatures
    // (Kelvin-like) never reach the bottom of the scale, and a query's
    // relative error is only meaningful when cell sums stay bounded away
    // from zero (as in the paper's dataset).
    const double field =
        0.55 + 0.30 * equator - 0.25 * lapse + season + continent;
    double temp_bins = field * temp_max + rng.Gaussian() * options.noise_bins;
    temp_bins = std::clamp(temp_bins, 0.0, temp_max);
    const uint32_t temp = static_cast<uint32_t>(std::lround(temp_bins));

    t[0] = lat;
    t[1] = lon;
    t[2] = alt;
    t[3] = time;
    t[4] = temp;
    sink(t);
  }
}

}  // namespace

void StreamTemperatureRecords(
    const TemperatureDatasetOptions& options,
    const std::function<void(const Tuple&)>& sink) {
  SampleTemperatureRecords(options, sink);
}

Relation MakeTemperatureDataset(const TemperatureDatasetOptions& options) {
  Relation relation(TemperatureSchema(options));
  SampleTemperatureRecords(options,
                           [&relation](const Tuple& t) { relation.Add(t); });
  return relation;
}

DenseCube MakeTemperatureCube(const TemperatureDatasetOptions& options) {
  DenseCube cube(TemperatureSchema(options));
  const Schema& schema = cube.schema();
  SampleTemperatureRecords(
      options, [&](const Tuple& t) { cube[schema.Pack(t)] += 1.0; });
  return cube;
}

Relation MakeUniformRelation(const Schema& schema, uint64_t n,
                             uint64_t seed) {
  Relation relation(schema);
  Rng rng(seed);
  Tuple t(schema.num_dims());
  for (uint64_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < schema.num_dims(); ++i) {
      t[i] = static_cast<uint32_t>(rng.UniformInt(schema.dim(i).size));
    }
    relation.Add(t);
  }
  return relation;
}

Relation MakeZipfRelation(const Schema& schema, uint64_t n, double s,
                          uint64_t seed) {
  Relation relation(schema);
  Rng rng(seed);
  Tuple t(schema.num_dims());
  for (uint64_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < schema.num_dims(); ++i) {
      t[i] = static_cast<uint32_t>(rng.Zipf(schema.dim(i).size, s));
    }
    relation.Add(t);
  }
  return relation;
}

Relation MakeGaussianClustersRelation(const Schema& schema, uint64_t n,
                                      size_t clusters, double sigma_frac,
                                      uint64_t seed) {
  WB_CHECK_GT(clusters, 0u);
  Relation relation(schema);
  Rng rng(seed);
  // Cluster centers.
  std::vector<Tuple> centers(clusters, Tuple(schema.num_dims()));
  for (Tuple& c : centers) {
    for (size_t i = 0; i < schema.num_dims(); ++i) {
      c[i] = static_cast<uint32_t>(rng.UniformInt(schema.dim(i).size));
    }
  }
  Tuple t(schema.num_dims());
  for (uint64_t r = 0; r < n; ++r) {
    const Tuple& c = centers[rng.UniformInt(clusters)];
    for (size_t i = 0; i < schema.num_dims(); ++i) {
      const double size = schema.dim(i).size;
      double x = c[i] + rng.Gaussian() * sigma_frac * size;
      x = std::clamp(x, 0.0, size - 1);
      t[i] = static_cast<uint32_t>(std::lround(x));
    }
    relation.Add(t);
  }
  return relation;
}

}  // namespace wavebatch
