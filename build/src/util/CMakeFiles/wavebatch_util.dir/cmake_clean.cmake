file(REMOVE_RECURSE
  "CMakeFiles/wavebatch_util.dir/random.cc.o"
  "CMakeFiles/wavebatch_util.dir/random.cc.o.d"
  "CMakeFiles/wavebatch_util.dir/status.cc.o"
  "CMakeFiles/wavebatch_util.dir/status.cc.o.d"
  "CMakeFiles/wavebatch_util.dir/table.cc.o"
  "CMakeFiles/wavebatch_util.dir/table.cc.o.d"
  "libwavebatch_util.a"
  "libwavebatch_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavebatch_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
