file(REMOVE_RECURSE
  "libwavebatch_strategy.a"
)
