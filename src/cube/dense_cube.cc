#include "cube/dense_cube.h"

#include <cmath>

namespace wavebatch {

double DenseCube::Total() const {
  double acc = 0.0;
  for (double v : values_) acc += v;
  return acc;
}

double DenseCube::SumSquares() const {
  double acc = 0.0;
  for (double v : values_) acc += v * v;
  return acc;
}

double DenseCube::SumAbs() const {
  double acc = 0.0;
  for (double v : values_) acc += std::abs(v);
  return acc;
}

double DenseCube::Dot(const DenseCube& other) const {
  WB_CHECK(schema_ == other.schema_) << "schema mismatch in Dot";
  double acc = 0.0;
  for (uint64_t i = 0; i < values_.size(); ++i) {
    acc += values_[i] * other.values_[i];
  }
  return acc;
}

uint64_t DenseCube::CountNonZero(double eps) const {
  uint64_t n = 0;
  for (double v : values_) {
    if (std::abs(v) > eps) ++n;
  }
  return n;
}

}  // namespace wavebatch
