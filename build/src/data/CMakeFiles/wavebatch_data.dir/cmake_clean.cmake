file(REMOVE_RECURSE
  "CMakeFiles/wavebatch_data.dir/generators.cc.o"
  "CMakeFiles/wavebatch_data.dir/generators.cc.o.d"
  "CMakeFiles/wavebatch_data.dir/workloads.cc.o"
  "CMakeFiles/wavebatch_data.dir/workloads.cc.o.d"
  "libwavebatch_data.a"
  "libwavebatch_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavebatch_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
