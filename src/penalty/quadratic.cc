#include "penalty/quadratic.h"

#include <cmath>

#include "util/check.h"
#include "util/fingerprint.h"

namespace wavebatch {

Result<DenseQuadraticPenalty> DenseQuadraticPenalty::Create(
    size_t s, std::vector<double> matrix) {
  if (matrix.size() != s * s) {
    return Status::InvalidArgument("quadratic penalty matrix must be s x s");
  }
  // Symmetry.
  double max_abs = 0.0;
  for (double v : matrix) max_abs = std::max(max_abs, std::abs(v));
  const double tol = max_abs * 1e-9;
  for (size_t i = 0; i < s; ++i) {
    for (size_t j = i + 1; j < s; ++j) {
      if (std::abs(matrix[i * s + j] - matrix[j * s + i]) > tol) {
        return Status::InvalidArgument(
            "quadratic penalty matrix must be symmetric");
      }
    }
  }
  // Positive semi-definiteness via Cholesky with zero-pivot tolerance.
  std::vector<double> chol = matrix;
  const double pivot_tol = std::max(max_abs, 1.0) * 1e-9;
  for (size_t k = 0; k < s; ++k) {
    double pivot = chol[k * s + k];
    if (pivot < -pivot_tol) {
      return Status::InvalidArgument(
          "quadratic penalty matrix must be positive semi-definite");
    }
    if (pivot <= pivot_tol) {
      // Semi-definite direction: the whole row/column must vanish.
      for (size_t j = k + 1; j < s; ++j) {
        if (std::abs(chol[k * s + j]) > pivot_tol) {
          return Status::InvalidArgument(
              "quadratic penalty matrix must be positive semi-definite");
        }
      }
      continue;
    }
    const double root = std::sqrt(pivot);
    for (size_t j = k; j < s; ++j) chol[k * s + j] /= root;
    for (size_t i = k + 1; i < s; ++i) {
      const double f = chol[k * s + i];
      for (size_t j = i; j < s; ++j) {
        chol[i * s + j] -= f * chol[k * s + j];
      }
    }
  }
  return DenseQuadraticPenalty(s, std::move(matrix));
}

double DenseQuadraticPenalty::Apply(std::span<const double> e) const {
  WB_CHECK_EQ(e.size(), s_);
  double acc = 0.0;
  for (size_t i = 0; i < s_; ++i) {
    if (e[i] == 0.0) continue;
    double row = 0.0;
    const double* a = &matrix_[i * s_];
    for (size_t j = 0; j < s_; ++j) row += a[j] * e[j];
    acc += e[i] * row;
  }
  // Roundoff can drive a PSD form epsilon-negative; clamp.
  return acc < 0.0 ? 0.0 : acc;
}

std::string DenseQuadraticPenalty::Fingerprint() const {
  std::string fp;
  fingerprint::AppendString(fp, name());
  fingerprint::AppendU64(fp, s_);
  for (double v : matrix_) fingerprint::AppendF64(fp, v);
  return fp;
}

void CompositeQuadraticPenalty::AddTerm(double c,
                                        const PenaltyFunction* penalty) {
  WB_CHECK_GE(c, 0.0);
  WB_CHECK(penalty != nullptr);
  WB_CHECK(penalty->IsQuadratic())
      << "CompositeQuadraticPenalty terms must be quadratic";
  terms_.emplace_back(c, penalty);
}

double CompositeQuadraticPenalty::Apply(std::span<const double> e) const {
  double acc = 0.0;
  for (const auto& [c, p] : terms_) acc += c * p->Apply(e);
  return acc;
}

std::string CompositeQuadraticPenalty::Fingerprint() const {
  std::string fp;
  fingerprint::AppendString(fp, name());
  fingerprint::AppendU64(fp, terms_.size());
  for (const auto& [c, p] : terms_) {
    fingerprint::AppendF64(fp, c);
    // Length-prefixed recursion: component fingerprints can never bleed
    // into each other or into the next coefficient.
    fingerprint::AppendString(fp, p->Fingerprint());
  }
  return fp;
}

}  // namespace wavebatch
