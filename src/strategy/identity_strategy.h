#ifndef WAVEBATCH_STRATEGY_IDENTITY_STRATEGY_H_
#define WAVEBATCH_STRATEGY_IDENTITY_STRATEGY_H_

#include "strategy/linear_strategy.h"

namespace wavebatch {

/// The no-precomputation strategy: the view is Δ itself (T = identity) and
/// a query's transform-domain representation is the query vector q[x] =
/// p(x)·χ_R(x) restricted to its range — one retrieval per range cell.
/// O(1) updates, O(|R|) queries: the opposite end of the trade-off space
/// from full precomputation, included as the Section 1.2 baseline.
class IdentityStrategy : public LinearStrategy {
 public:
  explicit IdentityStrategy(Schema schema)
      : LinearStrategy(std::move(schema)) {}

  Result<SparseVec> TransformQuery(const RangeSumQuery& query) const override;
  std::unique_ptr<CoefficientStore> BuildStore(
      const DenseCube& delta) const override;
  /// One entry: the tuple's own cell.
  Result<SparseVec> TransformUpdate(const Tuple& tuple,
                                    double count) const override;
  std::string name() const override { return "identity"; }

 protected:
  std::unique_ptr<CoefficientStore> MakeEmptyStore() const override;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STRATEGY_IDENTITY_STRATEGY_H_
