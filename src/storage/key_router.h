#ifndef WAVEBATCH_STORAGE_KEY_ROUTER_H_
#define WAVEBATCH_STORAGE_KEY_ROUTER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace wavebatch {

/// Range partition of the 64-bit wavelet-key space across S shards.
///
/// Shard s owns the contiguous key interval [delims[s-1], delims[s])
/// (with delims[-1] = 0 and delims[S-1] = 2^64). Range partitioning — as
/// opposed to hashing — is deliberate: wavelet keys laid out in the
/// master-list order are fetched in sorted runs, so contiguous ownership
/// keeps each shard's sub-batch a sorted run too, which is exactly what
/// FileStore's coalescing and BlockStore's distinct-block batching want.
/// The same property makes hot-range promotion meaningful: a "range" of
/// keys is a unit both of routing and of tiering.
///
/// A router is immutable after construction and safe to share across any
/// number of threads.
class KeyRouter {
 public:
  /// Router with explicit ascending split points. `delims` holds S-1
  /// strictly increasing values; shard s owns keys in [delims[s-1],
  /// delims[s]). Empty delims means a single shard owning everything.
  explicit KeyRouter(std::vector<uint64_t> delims)
      : delims_(std::move(delims)) {
    for (size_t i = 1; i < delims_.size(); ++i) {
      WB_CHECK(delims_[i - 1] < delims_[i]);
    }
  }

  KeyRouter() = default;

  /// Even split of [0, key_space) into `num_shards` contiguous ranges.
  /// Keys >= key_space (legal: the router never bounds the key domain)
  /// route to the last shard.
  static KeyRouter Uniform(uint64_t key_space, size_t num_shards) {
    WB_CHECK(num_shards >= 1);
    std::vector<uint64_t> delims;
    delims.reserve(num_shards - 1);
    for (size_t s = 1; s < num_shards; ++s) {
      delims.push_back(key_space / num_shards * s);
    }
    return KeyRouter(std::move(delims));
  }

  size_t num_shards() const { return delims_.size() + 1; }

  /// Shard owning `key`: index of the first delimiter greater than key.
  uint32_t ShardOf(uint64_t key) const {
    return static_cast<uint32_t>(
        std::upper_bound(delims_.begin(), delims_.end(), key) -
        delims_.begin());
  }

  /// Inclusive lower bound of shard s's key range.
  uint64_t ShardBegin(uint32_t shard) const {
    return shard == 0 ? 0 : delims_[shard - 1];
  }

  const std::vector<uint64_t>& delims() const { return delims_; }

  friend bool operator==(const KeyRouter& a, const KeyRouter& b) {
    return a.delims_ == b.delims_;
  }

 private:
  std::vector<uint64_t> delims_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STORAGE_KEY_ROUTER_H_
