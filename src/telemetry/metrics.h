#ifndef WAVEBATCH_TELEMETRY_METRICS_H_
#define WAVEBATCH_TELEMETRY_METRICS_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace wavebatch::telemetry {

/// Label set attached to a metric: (name, value) pairs, canonicalized
/// (sorted by name) at registration so {a,b} and {b,a} are one time series.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace internal {
/// Process-wide recording switch. Relaxed: telemetry is advisory state, a
/// racing Disable() may lose a handful of events, never corrupt them.
inline std::atomic<bool> g_enabled{true};
}  // namespace internal

/// True when the process records telemetry. This is THE hot-path guard:
/// every instrumentation site checks it before touching a clock, a handle,
/// or the span buffer, so a disabled registry costs one relaxed load per
/// event. Defining WAVEBATCH_TELEMETRY_DISABLED turns it into a constant
/// false and lets the compiler delete the instrumentation outright.
inline bool Enabled() {
#ifdef WAVEBATCH_TELEMETRY_DISABLED
  return false;
#else
  return internal::g_enabled.load(std::memory_order_relaxed);
#endif
}

/// Monotone event count. One relaxed atomic add per event; reads are
/// relaxed too (export is a statistical snapshot, not a barrier).
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (Enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, remaining importance,
/// a live Theorem-1 bound). Set is a relaxed store; Add is a CAS loop
/// (std::atomic<double>::fetch_add is not guaranteed lock-free everywhere).
class Gauge {
 public:
  void Set(double v) {
    if (Enabled()) value_.store(v, std::memory_order_relaxed);
  }
  void Add(double delta) {
    if (!Enabled()) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-scale (power-of-two) histogram of non-negative integer samples —
/// built for latencies in nanoseconds, where interesting values span nine
/// orders of magnitude and fixed linear buckets are useless. Bucket i
/// counts samples v with 2^(i-1) < v <= 2^i (bucket 0: v <= 1); everything
/// above 2^42 (~73 min in ns) lands in the overflow (+Inf) bucket. One
/// bucket add + sum add + count add per observation, all relaxed.
class Histogram {
 public:
  /// Finite buckets 0..kFiniteBuckets-1 with upper bound 2^i, plus +Inf.
  static constexpr size_t kFiniteBuckets = 43;
  static constexpr size_t kNumBuckets = kFiniteBuckets + 1;

  static size_t BucketIndex(uint64_t v) {
    if (v <= 1) return 0;
    const size_t idx = static_cast<size_t>(std::bit_width(v - 1));
    return idx < kFiniteBuckets ? idx : kFiniteBuckets;
  }
  /// Inclusive upper bound of finite bucket i (2^i).
  static uint64_t BucketUpperBound(size_t i) { return uint64_t{1} << i; }

  void Observe(uint64_t v) {
    if (!Enabled()) return;
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void ResetForTest() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// Read-only copy of one metric, taken under the registry lock (values are
/// relaxed reads — concurrent writers may be mid-update, which is fine for
/// monitoring). The exporters consume these.
struct MetricSnapshot {
  MetricType type;
  std::string name;
  std::string help;
  Labels labels;
  uint64_t counter_value = 0;
  double gauge_value = 0.0;
  std::vector<uint64_t> hist_buckets;  // non-cumulative, kNumBuckets entries
  uint64_t hist_sum = 0;
  uint64_t hist_count = 0;
};

/// One structured span attribute: a static-storage key and a numeric value
/// (key counts, shard ids, epochs, bound values — everything the span sites
/// attach is a number, which keeps SpanEvent POD and the record path free
/// of allocation).
struct SpanAttr {
  const char* key;  // static-storage string supplied by the caller
  double value;
};

/// One completed evaluation span. Spans on the same thread nest by
/// containment of [ts_us, ts_us + dur_us); across threads, parent_span_id
/// carries the explicit link (captured at the ThreadPool hand-off), which
/// the Chrome exporter renders as flow arrows. trace_id/request_id are the
/// request attribution stamped from the thread's installed TraceContext
/// (0 = recorded outside any request).
struct SpanEvent {
  const char* name;  // static-storage string supplied by the caller
  uint32_t tid;      // small per-thread ordinal, stable for a thread's life
  double ts_us;      // microseconds since the process telemetry epoch
  double dur_us;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = root
  uint64_t trace_id = 0;
  uint64_t request_id = 0;
  static constexpr uint32_t kMaxAttrs = 4;
  SpanAttr attrs[kMaxAttrs] = {};
  uint32_t num_attrs = 0;
};

/// Process-wide metric and span store. Registration (GetCounter/GetGauge/
/// GetHistogram) is the cold path: a mutex-guarded map lookup returning a
/// stable handle pointer the caller keeps for the metric's lifetime. The
/// hot path is entirely on the handles (relaxed atomics) and the span
/// buffer (one short critical section per completed span).
///
/// Overhead contract (per event):
///   - registry disabled (`MetricsRegistry::Disable()`): one relaxed load;
///   - compiled out (WAVEBATCH_TELEMETRY_DISABLED): zero;
///   - counter/gauge enabled: one relaxed atomic add/store;
///   - histogram enabled: three relaxed adds;
///   - span enabled: two steady_clock reads + one mutex push (bounded
///     buffer; overflow increments dropped_spans() instead of growing).
class MetricsRegistry {
 public:
  /// The process registry. All library instrumentation records here.
  static MetricsRegistry& Default();

  /// Returns the counter registered under (name, labels), creating it on
  /// first use. The returned handle stays valid until Remove() is called
  /// for it (library-global metrics are never removed). Asks for the same
  /// name with a different type abort: a metric name has exactly one type.
  Counter* GetCounter(std::string name, Labels labels = {},
                      std::string help = "");
  Gauge* GetGauge(std::string name, Labels labels = {}, std::string help = "");
  Histogram* GetHistogram(std::string name, Labels labels = {},
                          std::string help = "");

  /// Unregisters one time series and frees its handle. Only the creator of
  /// a dynamic series (e.g. an EvalSession removing its own gauges in its
  /// destructor) may call this — other holders of the handle would dangle.
  void Remove(const std::string& name, const Labels& labels);

  /// Process-wide recording switch (see Enabled()). Disable() is the
  /// runtime null path: handles stay valid, events become no-ops.
  static void Disable() {
    internal::g_enabled.store(false, std::memory_order_relaxed);
  }
  static void Enable() {
    internal::g_enabled.store(true, std::memory_order_relaxed);
  }

  /// Zeroes every registered value and clears the span buffer without
  /// invalidating any handle. Test isolation only.
  void ResetValues();

  /// Records a completed span. `name` must have static storage duration
  /// (instrumentation sites pass string literals); the same goes for every
  /// attr key. A fresh span id is allocated and the span is parented under
  /// the thread's innermost live span (and stamped with the installed
  /// TraceContext's trace/request ids). Thread-safe; when the buffer is
  /// full the span is dropped and counted instead (accessor AND the
  /// wavebatch_telemetry_dropped_spans_total counter).
  void RecordSpan(const char* name, std::chrono::steady_clock::time_point begin,
                  std::chrono::steady_clock::time_point end,
                  std::initializer_list<SpanAttr> attrs = {});

  /// RecordSpan for callers that allocated their span id up front
  /// (ScopedSpan does, so nested spans can parent under it while it is
  /// still open). trace/request ids still come from the thread's installed
  /// context. Attrs beyond SpanEvent::kMaxAttrs are dropped silently.
  void RecordSpanWithIds(const char* name,
                         std::chrono::steady_clock::time_point begin,
                         std::chrono::steady_clock::time_point end,
                         uint64_t span_id, uint64_t parent_span_id,
                         const SpanAttr* attrs, uint32_t num_attrs);

  /// Snapshot of the span buffer (oldest first).
  std::vector<SpanEvent> Spans() const;
  uint64_t dropped_spans() const {
    return dropped_spans_.load(std::memory_order_relaxed);
  }
  /// Buffer capacity in spans (default 1<<18). Shrinking does not discard
  /// already-recorded spans.
  void SetSpanCapacity(size_t capacity);

  /// Stable-ordered copy of every registered metric (sorted by name, then
  /// labels — families come out contiguous, which the Prometheus exporter
  /// relies on).
  std::vector<MetricSnapshot> Snapshot() const;

  size_t NumMetrics() const;

 private:
  struct Metric;

  Metric* GetOrCreate(MetricType type, std::string name, Labels labels,
                      std::string help);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Metric>> metrics_;

  mutable std::mutex span_mu_;
  std::vector<SpanEvent> spans_;
  size_t span_capacity_ = size_t{1} << 18;
  std::atomic<uint64_t> dropped_spans_{0};
  /// Prometheus mirror of dropped_spans_, bound lazily on the first span
  /// (GetCounter takes mu_, which must never be acquired under span_mu_).
  std::atomic<Counter*> dropped_spans_counter_{nullptr};
};

}  // namespace wavebatch::telemetry

#endif  // WAVEBATCH_TELEMETRY_METRICS_H_
