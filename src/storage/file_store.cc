#include "storage/file_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <vector>

#include "util/check.h"

namespace wavebatch {

Result<std::unique_ptr<FileStore>> FileStore::Create(
    const std::string& path, const std::vector<double>& values) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create " + path + ": " +
                            std::strerror(errno));
  }
  const char* data = reinterpret_cast<const char*>(values.data());
  size_t remaining = values.size() * sizeof(double);
  size_t offset = 0;
  while (remaining > 0) {
    const ssize_t written = ::pwrite(fd, data + offset, remaining, offset);
    if (written <= 0) {
      ::close(fd);
      return Status::Internal("short write to " + path + ": " +
                              std::strerror(errno));
    }
    offset += static_cast<size_t>(written);
    remaining -= static_cast<size_t>(written);
  }
  return std::unique_ptr<FileStore>(
      new FileStore(path, fd, values.size()));
}

Result<std::unique_ptr<FileStore>> FileStore::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0 || size % static_cast<off_t>(sizeof(double)) != 0) {
    ::close(fd);
    return Status::InvalidArgument(path +
                                   " is not a multiple of sizeof(double)");
  }
  return std::unique_ptr<FileStore>(new FileStore(
      path, fd, static_cast<uint64_t>(size) / sizeof(double)));
}

FileStore::~FileStore() {
  if (fd_ >= 0) ::close(fd_);
}

double FileStore::Peek(uint64_t key) const {
  WB_CHECK_LT(key, capacity_) << "key outside file store capacity";
  double value = 0.0;
  const ssize_t got = ::pread(fd_, &value, sizeof(value),
                              static_cast<off_t>(key * sizeof(double)));
  WB_CHECK_EQ(got, static_cast<ssize_t>(sizeof(value)))
      << "short read from " << path_;
  return value;
}

void FileStore::Add(uint64_t key, double delta) {
  WB_CHECK_LT(key, capacity_) << "key outside file store capacity";
  const double value = Peek(key) + delta;
  const ssize_t put = ::pwrite(fd_, &value, sizeof(value),
                               static_cast<off_t>(key * sizeof(double)));
  WB_CHECK_EQ(put, static_cast<ssize_t>(sizeof(value)))
      << "short write to " << path_;
}

uint64_t FileStore::NumNonZero() const {
  uint64_t count = 0;
  ForEachNonZero([&count](uint64_t, double) { ++count; });
  return count;
}

double FileStore::SumAbs() const {
  double acc = 0.0;
  ForEachNonZero([&acc](uint64_t, double v) { acc += std::abs(v); });
  return acc;
}

void FileStore::ForEachNonZero(
    const std::function<void(uint64_t, double)>& fn) const {
  // Sequential buffered scan (not counted as random-access I/O).
  constexpr size_t kBatch = 4096;
  std::vector<double> buffer(kBatch);
  uint64_t key = 0;
  while (key < capacity_) {
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(kBatch, capacity_ - key));
    const ssize_t got =
        ::pread(fd_, buffer.data(), want * sizeof(double),
                static_cast<off_t>(key * sizeof(double)));
    WB_CHECK_EQ(got, static_cast<ssize_t>(want * sizeof(double)));
    for (size_t i = 0; i < want; ++i) {
      if (buffer[i] != 0.0) fn(key + i, buffer[i]);
    }
    key += want;
  }
}

}  // namespace wavebatch
