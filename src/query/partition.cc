#include "query/partition.h"

#include "util/check.h"

namespace wavebatch {

GridPartition::GridPartition(
    std::vector<std::vector<Interval>> dim_intervals, const Schema& schema) {
  cells_per_dim_.reserve(dim_intervals.size());
  size_t total = 1;
  for (const auto& ivs : dim_intervals) {
    WB_CHECK(!ivs.empty());
    cells_per_dim_.push_back(ivs.size());
    total *= ivs.size();
  }
  cells_.reserve(total);
  const size_t d = dim_intervals.size();
  std::vector<size_t> idx(d, 0);
  for (;;) {
    std::vector<Interval> cell(d);
    for (size_t i = 0; i < d; ++i) cell[i] = dim_intervals[i][idx[i]];
    Result<Range> r = Range::Create(schema, std::move(cell));
    WB_CHECK(r.ok()) << r.status();
    cells_.push_back(std::move(r).value());
    size_t dim = d;
    bool done = true;
    while (dim-- > 0) {
      if (++idx[dim] < dim_intervals[dim].size()) {
        done = false;
        break;
      }
      idx[dim] = 0;
    }
    if (done) break;
  }
}

size_t GridPartition::CellIndex(std::span<const size_t> grid_coords) const {
  WB_CHECK_EQ(grid_coords.size(), cells_per_dim_.size());
  size_t index = 0;
  for (size_t i = 0; i < grid_coords.size(); ++i) {
    WB_CHECK_LT(grid_coords[i], cells_per_dim_[i]);
    index = index * cells_per_dim_[i] + grid_coords[i];
  }
  return index;
}

std::vector<size_t> GridPartition::GridCoords(size_t index) const {
  WB_CHECK_LT(index, cells_.size());
  std::vector<size_t> coords(cells_per_dim_.size());
  for (size_t i = cells_per_dim_.size(); i-- > 0;) {
    coords[i] = index % cells_per_dim_[i];
    index /= cells_per_dim_[i];
  }
  return coords;
}

std::vector<std::pair<size_t, size_t>> GridPartition::AdjacentCellPairs()
    const {
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t c = 0; c < cells_.size(); ++c) {
    std::vector<size_t> coords = GridCoords(c);
    for (size_t dim = 0; dim < cells_per_dim_.size(); ++dim) {
      if (coords[dim] + 1 < cells_per_dim_[dim]) {
        std::vector<size_t> next = coords;
        ++next[dim];
        edges.emplace_back(c, CellIndex(next));
      }
    }
  }
  return edges;
}

namespace {

// Splits [lo, hi] into `parts` intervals at the given sorted interior cut
// offsets (each cut c means a boundary between lo+c-1 and lo+c).
std::vector<Interval> SplitAtCuts(uint32_t lo, uint32_t hi,
                                  const std::vector<uint64_t>& cuts) {
  std::vector<Interval> out;
  uint32_t start = lo;
  for (uint64_t c : cuts) {
    const uint32_t boundary = lo + static_cast<uint32_t>(c);
    out.push_back({start, boundary - 1});
    start = boundary;
  }
  out.push_back({start, hi});
  return out;
}

}  // namespace

GridPartition GridPartition::Random(const Schema& schema, const Range& box,
                                    std::span<const size_t> parts, Rng& rng,
                                    uint32_t min_width) {
  WB_CHECK_EQ(parts.size(), schema.num_dims());
  WB_CHECK_GE(min_width, 1u);
  std::vector<std::vector<Interval>> dim_intervals(schema.num_dims());
  for (size_t i = 0; i < schema.num_dims(); ++i) {
    const Interval& iv = box.interval(i);
    const uint64_t len = iv.length();
    const uint64_t k = parts[i];
    WB_CHECK_GE(k, 1u);
    WB_CHECK_LE(k * min_width, len)
        << "cannot split dimension " << schema.dim(i).name << " of length "
        << len << " into " << k << " parts of width >= " << min_width;
    // Stars-and-bars with a floor: distribute the slack len - k*min_width
    // over k cells via k-1 random cut offsets, then widen every cell by
    // min_width. With min_width == 1 this is exactly a uniform choice of
    // k-1 distinct interior boundaries.
    const uint64_t slack = len - k * min_width;
    std::vector<uint64_t> slack_cuts =
        rng.SampleWithoutReplacement(slack + k - 1, k - 1);
    std::vector<uint64_t> cuts(k - 1);
    for (size_t j = 0; j < cuts.size(); ++j) {
      // Subtracting the bar's own position converts the combination into a
      // non-decreasing slack allocation; adding back (j+1)*min_width gives
      // the real cut offset.
      cuts[j] = (slack_cuts[j] - j) + (j + 1) * static_cast<uint64_t>(
                                                   min_width);
    }
    dim_intervals[i] = SplitAtCuts(iv.lo, iv.hi, cuts);
  }
  return GridPartition(std::move(dim_intervals), schema);
}

GridPartition GridPartition::Uniform(const Schema& schema, const Range& box,
                                     std::span<const size_t> parts) {
  WB_CHECK_EQ(parts.size(), schema.num_dims());
  std::vector<std::vector<Interval>> dim_intervals(schema.num_dims());
  for (size_t i = 0; i < schema.num_dims(); ++i) {
    const Interval& iv = box.interval(i);
    const uint64_t len = iv.length();
    WB_CHECK_GE(parts[i], 1u);
    WB_CHECK_LE(parts[i], len);
    std::vector<uint64_t> cuts;
    for (size_t k = 1; k < parts[i]; ++k) {
      cuts.push_back(k * len / parts[i]);
    }
    dim_intervals[i] = SplitAtCuts(iv.lo, iv.hi, cuts);
  }
  return GridPartition(std::move(dim_intervals), schema);
}

}  // namespace wavebatch
