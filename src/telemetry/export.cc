#include "telemetry/export.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace wavebatch::telemetry {

namespace {

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string EscapeHelp(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Renders `{k="v",...}` (empty string for no labels); `extra` appends one
/// more pair (the histogram `le`).
std::string LabelString(const Labels& labels, const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += "\"";
  }
  out += "}";
  return out;
}

std::string FormatValue(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FormatValue(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

}  // namespace

std::string ExportPrometheus(const MetricsRegistry& registry) {
  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  std::string out;
  std::string current_family;
  for (const MetricSnapshot& m : snapshot) {
    if (m.name != current_family) {
      current_family = m.name;
      if (!m.help.empty()) {
        out += "# HELP " + m.name + " " + EscapeHelp(m.help) + "\n";
      }
      out += "# TYPE " + m.name + " " + TypeName(m.type) + "\n";
    }
    switch (m.type) {
      case MetricType::kCounter:
        out += m.name + LabelString(m.labels) + " " +
               FormatValue(m.counter_value) + "\n";
        break;
      case MetricType::kGauge:
        out += m.name + LabelString(m.labels) + " " +
               FormatValue(m.gauge_value) + "\n";
        break;
      case MetricType::kHistogram: {
        // Cumulative buckets up to the last populated finite bound;
        // trailing empty buckets add no information and the mandatory
        // le="+Inf" closes the series either way.
        size_t last = 0;
        for (size_t i = 0; i < Histogram::kFiniteBuckets; ++i) {
          if (m.hist_buckets[i] != 0) last = i;
        }
        uint64_t cumulative = 0;
        for (size_t i = 0; i <= last; ++i) {
          cumulative += m.hist_buckets[i];
          out += m.name + "_bucket" +
                 LabelString(m.labels, "le",
                             FormatValue(Histogram::BucketUpperBound(i))) +
                 " " + FormatValue(cumulative) + "\n";
        }
        out += m.name + "_bucket" + LabelString(m.labels, "le", "+Inf") + " " +
               FormatValue(m.hist_count) + "\n";
        out += m.name + "_sum" + LabelString(m.labels) + " " +
               FormatValue(m.hist_sum) + "\n";
        out += m.name + "_count" + LabelString(m.labels) + " " +
               FormatValue(m.hist_count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string ExportChromeTrace(const MetricsRegistry& registry) {
  const std::vector<SpanEvent> spans = registry.Spans();
  std::string out =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"wavebatch\"}}";
  // span_id -> buffer index, for resolving cross-thread parent links.
  std::unordered_map<uint64_t, size_t> by_id;
  by_id.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].span_id != 0) by_id.emplace(spans[i].span_id, i);
  }
  char buf[512];
  for (const SpanEvent& s : spans) {
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"name\":\"%s\",\"cat\":\"wavebatch\",\"ph\":\"X\","
                  "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,\"args\":{"
                  "\"span_id\":%" PRIu64 ",\"parent_span_id\":%" PRIu64
                  ",\"trace_id\":%" PRIu64 ",\"request_id\":%" PRIu64,
                  s.name, s.tid, s.ts_us, s.dur_us, s.span_id,
                  s.parent_span_id, s.trace_id, s.request_id);
    out += buf;
    for (uint32_t a = 0; a < s.num_attrs; ++a) {
      std::snprintf(buf, sizeof(buf), ",\"%s\":%.17g", s.attrs[a].key,
                    s.attrs[a].value);
      out += buf;
    }
    out += "}}";
  }
  // Flow events render each cross-thread parent link as an arrow from the
  // parent span's lane to the child's, connecting one request's work into a
  // single visible lane across workers. A pair shares one id (the child's
  // span id); "s" starts inside the parent slice, "f" binds to the start of
  // the child slice ("bp":"e" = bind to enclosing).
  for (const SpanEvent& s : spans) {
    if (s.parent_span_id == 0) continue;
    const auto it = by_id.find(s.parent_span_id);
    if (it == by_id.end()) continue;
    const SpanEvent& parent = spans[it->second];
    if (parent.tid == s.tid) continue;  // same-thread nesting needs no arrow
    // Clamp the arrow's start into the parent slice so viewers accept it
    // even when the child outlived a fire-and-forget submitter.
    const double ts_start =
        std::min(std::max(s.ts_us, parent.ts_us), parent.ts_us + parent.dur_us);
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"name\":\"handoff\",\"cat\":\"wavebatch\","
                  "\"ph\":\"s\",\"id\":%" PRIu64
                  ",\"pid\":1,\"tid\":%u,\"ts\":%.3f},\n"
                  "{\"name\":\"handoff\",\"cat\":\"wavebatch\",\"ph\":\"f\","
                  "\"bp\":\"e\",\"id\":%" PRIu64
                  ",\"pid\":1,\"tid\":%u,\"ts\":%.3f}",
                  s.span_id, parent.tid, ts_start, s.span_id, s.tid, s.ts_us);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Exposition-format validator.

namespace {

bool IsMetricNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsMetricNameChar(char c) {
  return IsMetricNameStart(c) || std::isdigit(static_cast<unsigned char>(c));
}
bool IsLabelNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsLabelNameChar(char c) {
  return IsLabelNameStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

bool ValidMetricName(std::string_view name) {
  if (name.empty() || !IsMetricNameStart(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!IsMetricNameChar(c)) return false;
  }
  return true;
}

bool ValidLabelName(std::string_view name) {
  if (name.empty() || !IsLabelNameStart(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!IsLabelNameChar(c)) return false;
  }
  return true;
}

bool ParseValue(std::string_view token, double* out) {
  if (token == "+Inf" || token == "Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "-Inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "NaN") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  char* end = nullptr;
  const std::string owned(token);
  *out = std::strtod(owned.c_str(), &end);
  return end == owned.c_str() + owned.size() && !owned.empty();
}

struct ParsedSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

/// Parses one sample line; returns false with `why` on malformed input.
bool ParseSample(const std::string& line, ParsedSample* sample,
                 std::string* why) {
  size_t i = 0;
  const size_t n = line.size();
  while (i < n && IsMetricNameChar(line[i])) ++i;
  sample->name = line.substr(0, i);
  if (!ValidMetricName(sample->name)) {
    *why = "invalid metric name";
    return false;
  }
  if (i < n && line[i] == '{') {
    ++i;
    while (i < n && line[i] != '}') {
      size_t name_start = i;
      while (i < n && IsLabelNameChar(line[i])) ++i;
      const std::string label = line.substr(name_start, i - name_start);
      if (!ValidLabelName(label)) {
        *why = "invalid label name";
        return false;
      }
      if (i >= n || line[i] != '=') {
        *why = "expected '=' after label name";
        return false;
      }
      ++i;
      if (i >= n || line[i] != '"') {
        *why = "label value must be quoted";
        return false;
      }
      ++i;
      std::string value;
      while (i < n && line[i] != '"') {
        if (line[i] == '\\') {
          ++i;
          if (i >= n || (line[i] != '\\' && line[i] != '"' && line[i] != 'n')) {
            *why = "bad escape in label value";
            return false;
          }
          value += line[i] == 'n' ? '\n' : line[i];
        } else {
          value += line[i];
        }
        ++i;
      }
      if (i >= n) {
        *why = "unterminated label value";
        return false;
      }
      ++i;  // closing quote
      if (!sample->labels.emplace(label, value).second) {
        *why = "duplicate label name";
        return false;
      }
      if (i < n && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < n && line[i] == '}') break;
      *why = "expected ',' or '}' after label";
      return false;
    }
    if (i >= n || line[i] != '}') {
      *why = "unterminated label set";
      return false;
    }
    ++i;
  }
  if (i >= n || (line[i] != ' ' && line[i] != '\t')) {
    *why = "expected whitespace before value";
    return false;
  }
  while (i < n && (line[i] == ' ' || line[i] == '\t')) ++i;
  size_t value_start = i;
  while (i < n && line[i] != ' ' && line[i] != '\t') ++i;
  if (!ParseValue(std::string_view(line).substr(value_start, i - value_start),
                  &sample->value)) {
    *why = "unparsable sample value";
    return false;
  }
  while (i < n && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i < n) {
    // Optional timestamp: a signed integer.
    size_t ts_start = i;
    if (line[i] == '-' || line[i] == '+') ++i;
    while (i < n && std::isdigit(static_cast<unsigned char>(line[i]))) ++i;
    if (i == ts_start || i != n) {
      *why = "trailing garbage after value";
      return false;
    }
  }
  return true;
}

std::string SerializeLabels(const std::map<std::string, std::string>& labels,
                            const std::string& skip = "") {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (k == skip) continue;
    out += k;
    out += '\x02';
    out += v;
    out += '\x03';
  }
  return out;
}

}  // namespace

bool ValidatePrometheus(const std::string& text, std::string* error) {
  auto fail = [error](size_t line_no, const std::string& why,
                      const std::string& line) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why + ": " + line;
    }
    return false;
  };

  std::map<std::string, std::string> family_type;  // name -> TYPE
  std::set<std::string> family_has_samples;
  std::set<std::string> family_has_help;
  std::set<std::string> seen_series;  // name + labelset, duplicates illegal
  // Histogram bookkeeping: family -> base labelset -> le -> bucket value,
  // plus which base labelsets saw _sum / _count (and the count value).
  struct HistogramSeries {
    std::map<double, double> buckets;  // le -> cumulative count
    bool has_sum = false;
    bool has_count = false;
    double count = 0.0;
  };
  std::map<std::string, std::map<std::string, HistogramSeries>> histograms;

  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }

    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name type" / free-form comment.
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const bool is_type = line[2] == 'T';
        const std::string rest = line.substr(7);
        const size_t space = rest.find(' ');
        const std::string name =
            space == std::string::npos ? rest : rest.substr(0, space);
        if (!ValidMetricName(name)) {
          return fail(line_no, "invalid metric name in comment", line);
        }
        if (family_has_samples.count(name) != 0) {
          return fail(line_no, "HELP/TYPE after samples of the family", line);
        }
        if (is_type) {
          if (space == std::string::npos) {
            return fail(line_no, "TYPE missing a type", line);
          }
          const std::string type = rest.substr(space + 1);
          if (type != "counter" && type != "gauge" && type != "histogram" &&
              type != "summary" && type != "untyped") {
            return fail(line_no, "unknown TYPE '" + type + "'", line);
          }
          if (!family_type.emplace(name, type).second) {
            return fail(line_no, "duplicate TYPE for family", line);
          }
        } else {
          if (!family_has_help.insert(name).second) {
            return fail(line_no, "duplicate HELP for family", line);
          }
        }
      }
      continue;
    }

    ParsedSample sample;
    std::string why;
    if (!ParseSample(line, &sample, &why)) return fail(line_no, why, line);
    if (!seen_series
             .insert(sample.name + '\x01' + SerializeLabels(sample.labels))
             .second) {
      return fail(line_no, "duplicate series (same name and labels)", line);
    }

    // Attribute the sample to its family: exact TYPE match first, then the
    // histogram expansion suffixes.
    std::string family = sample.name;
    std::string suffix;
    if (family_type.count(family) == 0) {
      for (const char* s : {"_bucket", "_sum", "_count"}) {
        const std::string_view sv(s);
        if (sample.name.size() > sv.size() &&
            sample.name.compare(sample.name.size() - sv.size(), sv.size(),
                                sv.data()) == 0) {
          const std::string base =
              sample.name.substr(0, sample.name.size() - sv.size());
          auto it = family_type.find(base);
          if (it != family_type.end() && it->second == "histogram") {
            family = base;
            suffix = sv;
            break;
          }
        }
      }
    }
    family_has_samples.insert(family);
    const std::string& type =
        family_type.count(family) != 0 ? family_type[family] : std::string();

    if (type == "counter") {
      if (std::isnan(sample.value) || sample.value < 0.0) {
        return fail(line_no, "counter sample must be finite and >= 0", line);
      }
    } else if (type == "histogram") {
      if (suffix.empty()) {
        return fail(line_no,
                    "histogram family sample must be _bucket/_sum/_count",
                    line);
      }
      HistogramSeries& series =
          histograms[family][SerializeLabels(sample.labels, "le")];
      if (suffix == "_bucket") {
        auto le_it = sample.labels.find("le");
        if (le_it == sample.labels.end()) {
          return fail(line_no, "_bucket sample missing le label", line);
        }
        double le = 0.0;
        if (!ParseValue(le_it->second, &le) || std::isnan(le)) {
          return fail(line_no, "unparsable le bound", line);
        }
        if (!series.buckets.emplace(le, sample.value).second) {
          return fail(line_no, "duplicate le bound", line);
        }
      } else if (suffix == "_sum") {
        series.has_sum = true;
      } else {
        series.has_count = true;
        series.count = sample.value;
      }
    }
  }

  // Histogram invariants per base labelset.
  for (const auto& [family, by_labels] : histograms) {
    for (const auto& [labels, series] : by_labels) {
      if (series.buckets.empty()) {
        if (error != nullptr) {
          *error = "histogram " + family + " has no _bucket samples";
        }
        return false;
      }
      const auto inf_it =
          series.buckets.find(std::numeric_limits<double>::infinity());
      if (inf_it == series.buckets.end()) {
        if (error != nullptr) {
          *error = "histogram " + family + " missing le=\"+Inf\" bucket";
        }
        return false;
      }
      double prev = -1.0;
      for (const auto& [le, cumulative] : series.buckets) {
        if (cumulative < prev) {
          if (error != nullptr) {
            *error = "histogram " + family +
                     " has non-monotone cumulative buckets";
          }
          return false;
        }
        prev = cumulative;
      }
      if (!series.has_sum || !series.has_count) {
        if (error != nullptr) {
          *error = "histogram " + family + " missing _sum or _count";
        }
        return false;
      }
      if (inf_it->second != series.count) {
        if (error != nullptr) {
          *error = "histogram " + family + " +Inf bucket != _count";
        }
        return false;
      }
    }
  }
  return true;
}

}  // namespace wavebatch::telemetry
