#ifndef WAVEBATCH_UTIL_STATUS_H_
#define WAVEBATCH_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "util/check.h"

namespace wavebatch {

/// Machine-readable category of a failure. Mirrors the usual database-system
/// status taxonomy (RocksDB / Arrow style): library code reports errors by
/// value instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  /// A transient failure (injected fault, flaky I/O): retrying the same
  /// operation may succeed.
  kUnavailable,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Value-semantic success/error indicator returned by all fallible library
/// operations. Cheap to copy in the (common) OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a free-form diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type `T` or a non-OK `Status` explaining its absence.
/// Accessing the value of an errored Result is a checked fatal error.
template <typename T>
class Result {
 public:
  /// Implicit-from-value: allows `return value;` from Result-returning code.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  /// Implicit-from-status: allows `return Status::...;`. `status` must not
  /// be OK (an OK Result must carry a value).
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    WB_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    WB_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    WB_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    WB_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

namespace internal_status {
inline const Status& GetStatus(const Status& s) { return s; }
template <typename T>
const Status& GetStatus(const Result<T>& r) {
  return r.status();
}
}  // namespace internal_status

}  // namespace wavebatch

/// Aborts with the status's diagnostic when `expr` (a Status or Result) is
/// not OK. For callers that treat a fallible operation as infallible —
/// tests, benches, and the legacy crash-on-error evaluators.
#define WB_CHECK_OK(expr)                                            \
  do {                                                               \
    auto&& wb_check_ok_value = (expr);                               \
    WB_CHECK(wb_check_ok_value.ok())                                 \
        << ::wavebatch::internal_status::GetStatus(wb_check_ok_value); \
  } while (0)

#endif  // WAVEBATCH_UTIL_STATUS_H_
