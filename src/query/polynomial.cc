#include "query/polynomial.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/check.h"

namespace wavebatch {

Polynomial::Polynomial(size_t num_dims, std::vector<Monomial> terms)
    : num_dims_(num_dims) {
  // Canonicalize: merge equal exponent vectors, drop zero coefficients,
  // order terms deterministically.
  std::map<std::vector<uint32_t>, double> merged;
  for (Monomial& m : terms) {
    WB_CHECK_EQ(m.exponents.size(), num_dims_)
        << "monomial exponent count must match schema dimensionality";
    merged[std::move(m.exponents)] += m.coeff;
  }
  for (auto& [exps, coeff] : merged) {
    if (coeff != 0.0) terms_.push_back({coeff, exps});
  }
}

Polynomial Polynomial::Constant(size_t num_dims, double c) {
  if (c == 0.0) return Polynomial(num_dims);
  return Polynomial(num_dims,
                    {{c, std::vector<uint32_t>(num_dims, 0)}});
}

Polynomial Polynomial::Attribute(size_t num_dims, size_t dim) {
  return AttributePower(num_dims, dim, 1);
}

Polynomial Polynomial::AttributePower(size_t num_dims, size_t dim,
                                      uint32_t power) {
  WB_CHECK_LT(dim, num_dims);
  std::vector<uint32_t> exps(num_dims, 0);
  exps[dim] = power;
  return Polynomial(num_dims, {{1.0, std::move(exps)}});
}

uint32_t Polynomial::DegreeIn(size_t dim) const {
  WB_CHECK_LT(dim, num_dims_);
  uint32_t deg = 0;
  for (const Monomial& m : terms_) deg = std::max(deg, m.exponents[dim]);
  return deg;
}

uint32_t Polynomial::MaxVarDegree() const {
  uint32_t deg = 0;
  for (size_t i = 0; i < num_dims_; ++i) deg = std::max(deg, DegreeIn(i));
  return deg;
}

double Polynomial::Evaluate(const Tuple& t) const {
  WB_CHECK_EQ(t.size(), num_dims_);
  double acc = 0.0;
  for (const Monomial& m : terms_) {
    double term = m.coeff;
    for (size_t i = 0; i < num_dims_; ++i) {
      for (uint32_t e = 0; e < m.exponents[i]; ++e) {
        term *= static_cast<double>(t[i]);
      }
    }
    acc += term;
  }
  return acc;
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  WB_CHECK_EQ(num_dims_, other.num_dims_);
  std::vector<Monomial> terms = terms_;
  terms.insert(terms.end(), other.terms_.begin(), other.terms_.end());
  return Polynomial(num_dims_, std::move(terms));
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  WB_CHECK_EQ(num_dims_, other.num_dims_);
  std::vector<Monomial> terms;
  terms.reserve(terms_.size() * other.terms_.size());
  for (const Monomial& a : terms_) {
    for (const Monomial& b : other.terms_) {
      Monomial prod;
      prod.coeff = a.coeff * b.coeff;
      prod.exponents.resize(num_dims_);
      for (size_t i = 0; i < num_dims_; ++i) {
        prod.exponents[i] = a.exponents[i] + b.exponents[i];
      }
      terms.push_back(std::move(prod));
    }
  }
  return Polynomial(num_dims_, std::move(terms));
}

Polynomial Polynomial::operator*(double c) const {
  std::vector<Monomial> terms = terms_;
  for (Monomial& m : terms) m.coeff *= c;
  return Polynomial(num_dims_, std::move(terms));
}

std::string Polynomial::ToString() const {
  if (terms_.empty()) return "0";
  std::string out;
  for (size_t t = 0; t < terms_.size(); ++t) {
    const Monomial& m = terms_[t];
    if (t) out += " + ";
    bool has_var = false;
    std::string vars;
    for (size_t i = 0; i < num_dims_; ++i) {
      if (m.exponents[i] == 0) continue;
      if (has_var) vars += "*";
      vars += "x" + std::to_string(i);
      if (m.exponents[i] > 1) vars += "^" + std::to_string(m.exponents[i]);
      has_var = true;
    }
    if (!has_var) {
      out += std::to_string(m.coeff);
    } else if (m.coeff == 1.0) {
      out += vars;
    } else {
      out += std::to_string(m.coeff) + "*" + vars;
    }
  }
  return out;
}

}  // namespace wavebatch
