// Telemetry quickstart: run a progressive evaluation with the metrics
// registry recording, then export the counters/histograms as Prometheus
// text and the evaluation spans as a Chrome trace.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/telemetry_quickstart
//   # metrics.prom   -> any Prometheus scraper / promtool check metrics
//   # trace.json     -> chrome://tracing "Load" or https://ui.perfetto.dev
//
// Recording is on by default; MetricsRegistry::Disable() is the runtime
// null path (every event collapses to one relaxed atomic load), and
// compiling with -DWAVEBATCH_TELEMETRY_DISABLED removes even that.

#include <cstdio>
#include <memory>
#include <string>

#include "data/generators.h"
#include "engine/eval_plan.h"
#include "engine/eval_session.h"
#include "engine/plan_cache.h"
#include "penalty/sse.h"
#include "strategy/wavelet_strategy.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"

using namespace wavebatch;

namespace {

bool WriteFile(const std::string& path, const std::string& text) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main() {
  // The same workload as examples/quickstart, evaluated through the
  // engine so every plane (plan cache, plan build, session steps, store
  // fetches) leaves its trace in the registry.
  Schema schema = Schema::Uniform(2, 64);
  Relation relation = MakeUniformRelation(schema, 10000, /*seed=*/1);
  WaveletStrategy strategy(schema, WaveletKind::kDb4);
  std::shared_ptr<const CoefficientStore> store =
      strategy.BuildStore(relation.FrequencyDistribution());

  QueryBatch batch(schema);
  Range all = Range::All(schema);
  batch.Add(RangeSumQuery::Count(all.Restrict(0, 0, 31), "count lower half"));
  batch.Add(RangeSumQuery::Count(all.Restrict(0, 32, 63), "count upper half"));
  batch.Add(RangeSumQuery::Sum(all.Restrict(1, 10, 53), 0, "sum of x0"));

  // Two GetOrBuild calls with the same batch: one plan_build span plus a
  // plan-cache miss, then a hit — visible below as
  // wavebatch_plan_cache_{hits,misses}_total.
  auto sse = std::make_shared<SsePenalty>();
  PlanCache cache(/*capacity=*/4);
  std::shared_ptr<const EvalPlan> plan =
      cache.GetOrBuild(batch, strategy, sse).value();
  (void)cache.GetOrBuild(batch, strategy, sse).value();

  // While a session is alive, its progress is live telemetry: per-session
  // gauges (steps taken, remaining importance, Theorem-1 worst-case bound,
  // skipped importance) labeled {session="N"}. They disappear when the
  // session is destroyed, so export while it is still in scope.
  EvalSession session(plan, store);
  session.StepBatch(64).value();
  (void)session.WorstCaseBound(store->SumAbs());

  std::string prom = telemetry::ExportPrometheus();
  std::string err;
  if (!telemetry::ValidatePrometheus(prom, &err)) {
    std::fprintf(stderr, "exposition failed validation: %s\n", err.c_str());
    return 1;
  }
  if (!WriteFile("metrics.prom", prom)) return 1;
  if (!WriteFile("trace.json", telemetry::ExportChromeTrace())) return 1;

  std::printf("%s", prom.c_str());
  std::printf(
      "\nwrote metrics.prom (%zu series) and trace.json "
      "(load in chrome://tracing or ui.perfetto.dev)\n",
      telemetry::MetricsRegistry::Default().NumMetrics());
  return 0;
}
