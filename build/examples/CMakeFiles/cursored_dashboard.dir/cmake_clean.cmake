file(REMOVE_RECURSE
  "CMakeFiles/cursored_dashboard.dir/cursored_dashboard.cpp.o"
  "CMakeFiles/cursored_dashboard.dir/cursored_dashboard.cpp.o.d"
  "cursored_dashboard"
  "cursored_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cursored_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
