#include "query/range.h"

#include "gtest/gtest.h"

namespace wavebatch {
namespace {

Schema TestSchema() { return Schema::Uniform(3, 8); }

TEST(RangeTest, CreateValid) {
  Result<Range> r = Range::Create(TestSchema(), {{0, 3}, {2, 2}, {1, 7}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_dims(), 3u);
  EXPECT_EQ(r->interval(1).lo, 2u);
  EXPECT_EQ(r->interval(1).hi, 2u);
}

TEST(RangeTest, RejectsWrongArity) {
  EXPECT_FALSE(Range::Create(TestSchema(), {{0, 3}}).ok());
}

TEST(RangeTest, RejectsInvertedInterval) {
  EXPECT_FALSE(Range::Create(TestSchema(), {{3, 0}, {0, 7}, {0, 7}}).ok());
}

TEST(RangeTest, RejectsOutOfDomain) {
  EXPECT_FALSE(Range::Create(TestSchema(), {{0, 8}, {0, 7}, {0, 7}}).ok());
}

TEST(RangeTest, AllCoversDomain) {
  Range r = Range::All(TestSchema());
  EXPECT_EQ(r.Volume(), 512u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r.interval(i).lo, 0u);
    EXPECT_EQ(r.interval(i).hi, 7u);
  }
}

TEST(RangeTest, Volume) {
  Result<Range> r = Range::Create(TestSchema(), {{0, 3}, {2, 2}, {1, 6}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Volume(), 4u * 1u * 6u);
}

TEST(RangeTest, Contains) {
  Result<Range> r = Range::Create(TestSchema(), {{0, 3}, {2, 2}, {1, 6}});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Contains({0, 2, 1}));
  EXPECT_TRUE(r->Contains({3, 2, 6}));
  EXPECT_FALSE(r->Contains({4, 2, 1}));
  EXPECT_FALSE(r->Contains({0, 1, 1}));
  EXPECT_FALSE(r->Contains({0, 2, 7}));
}

TEST(RangeTest, IntervalLength) {
  Interval iv{2, 5};
  EXPECT_EQ(iv.length(), 4u);
  EXPECT_TRUE(iv.Contains(2));
  EXPECT_TRUE(iv.Contains(5));
  EXPECT_FALSE(iv.Contains(6));
}

TEST(RangeTest, Restrict) {
  Range all = Range::All(TestSchema());
  Range narrowed = all.Restrict(1, 2, 4);
  EXPECT_EQ(narrowed.interval(1).lo, 2u);
  EXPECT_EQ(narrowed.interval(1).hi, 4u);
  EXPECT_EQ(narrowed.interval(0).hi, 7u);  // others untouched
  EXPECT_EQ(narrowed.Volume(), 8u * 3u * 8u);
}

TEST(RangeTest, Equality) {
  Range a = Range::All(TestSchema());
  Range b = Range::All(TestSchema());
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == a.Restrict(0, 0, 3));
}

TEST(RangeTest, ToString) {
  Result<Range> r = Range::Create(Schema::Uniform(2, 8), {{3, 7}, {0, 1}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "[3,7]x[0,1]");
}

}  // namespace
}  // namespace wavebatch
