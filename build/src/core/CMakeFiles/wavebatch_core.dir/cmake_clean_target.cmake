file(REMOVE_RECURSE
  "libwavebatch_core.a"
)
