file(REMOVE_RECURSE
  "CMakeFiles/range_sum_test.dir/range_sum_test.cc.o"
  "CMakeFiles/range_sum_test.dir/range_sum_test.cc.o.d"
  "range_sum_test"
  "range_sum_test.pdb"
  "range_sum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_sum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
