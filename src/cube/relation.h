#ifndef WAVEBATCH_CUBE_RELATION_H_
#define WAVEBATCH_CUBE_RELATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "cube/dense_cube.h"
#include "cube/schema.h"

namespace wavebatch {

/// A tuple is one coordinate per schema dimension. All attributes are
/// integer-coded; continuous source attributes are expected to be binned
/// into [0, size) before ingestion (the paper's data frequency distribution
/// model).
using Tuple = std::vector<uint32_t>;

/// An in-memory bag of tuples over a schema: the database instance D whose
/// frequency distribution Δ the storage strategies materialize. Duplicates
/// are allowed and counted (Δ[x] = multiplicity of x).
class Relation {
 public:
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  uint64_t num_tuples() const { return tuples_.size(); }
  const Tuple& tuple(uint64_t i) const { return tuples_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Appends a tuple; coordinates must lie in the schema's domain.
  void Add(Tuple t);

  /// Materializes the data frequency distribution Δ (tuple counts per cell).
  DenseCube FrequencyDistribution() const;

 private:
  Schema schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_CUBE_RELATION_H_
