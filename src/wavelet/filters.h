#ifndef WAVEBATCH_WAVELET_FILTERS_H_
#define WAVEBATCH_WAVELET_FILTERS_H_

#include <cstdint>
#include <span>
#include <string>

namespace wavebatch {

/// Supported orthonormal wavelet families. Naming follows the paper: the
/// number is the *filter length* L, so kDb4 is the Daubechies filter with 4
/// taps (2 vanishing moments). A filter of length L = 2δ+2 evaluates
/// polynomial range-sums of per-variable degree ≤ δ with the sparse-query
/// guarantees of Section 3.1 (Haar = kDb2 handles COUNT, kDb4 handles
/// degree-1 SUMs, etc.).
enum class WaveletKind : uint8_t {
  kHaar = 0,  // length 2, 1 vanishing moment
  kDb4,       // length 4, 2 vanishing moments
  kDb6,       // length 6, 3 vanishing moments
  kDb8,       // length 8, 4 vanishing moments
};

/// An orthonormal two-channel filter bank: lowpass h and the quadrature
/// mirror highpass g[n] = (-1)^n h[L-1-n].
class WaveletFilter {
 public:
  /// The filter bank for `kind`.
  static const WaveletFilter& Get(WaveletKind kind);

  /// The shortest filter whose vanishing moments annihilate per-variable
  /// degree-`degree` polynomials: length 2*degree + 2. Fails (checked) for
  /// degree > 3.
  static const WaveletFilter& ForDegree(uint32_t degree);

  WaveletKind kind() const { return kind_; }
  uint32_t length() const { return length_; }
  /// Number of vanishing moments of the highpass channel (= length/2).
  uint32_t vanishing_moments() const { return length_ / 2; }
  /// Highest polynomial degree whose range-sums this filter supports with
  /// the paper's sparsity bound: vanishing_moments() - 1.
  uint32_t max_degree() const { return vanishing_moments() - 1; }
  const char* name() const { return name_; }

  std::span<const double> lowpass() const { return {h_, length_}; }
  std::span<const double> highpass() const { return {g_, length_}; }

 private:
  WaveletFilter(WaveletKind kind, const char* name, uint32_t length,
                const double* h);

  WaveletKind kind_;
  const char* name_;
  uint32_t length_;
  const double* h_;
  double g_[8];
};

/// Parses "haar" / "db4" / "db6" / "db8" (case-insensitive); used by bench
/// harness flags.
bool ParseWaveletKind(const std::string& text, WaveletKind* out);

}  // namespace wavebatch

#endif  // WAVEBATCH_WAVELET_FILTERS_H_
