#ifndef WAVEBATCH_CORE_EXACT_H_
#define WAVEBATCH_CORE_EXACT_H_

#include <vector>

#include "core/master_list.h"
#include "storage/coefficient_store.h"

namespace wavebatch {

/// Results of an exact batch evaluation plus its I/O cost under the
/// paper's one-retrieval-per-coefficient model.
struct ExactBatchResult {
  std::vector<double> results;
  uint64_t retrievals = 0;
};

/// The naive baseline: evaluates every query independently with its own
/// coefficient list — the "s instances of the single-query technique"
/// straw-man of Section 2.2. A coefficient needed by k queries is fetched
/// k times.
ExactBatchResult EvaluateNaive(
    const std::vector<SparseVec>& query_coefficients,
    const CoefficientStore& store);

/// The I/O-shared exact algorithm (Batch-Biggest-B run to completion in
/// arbitrary order): iterates the master list, fetching each needed
/// coefficient exactly once and advancing every query that uses it.
/// Superseded by EvalSession{kKeyOrder}.RunToExact() in engine/; kept as
/// the golden reference implementation.
ExactBatchResult EvaluateShared(const MasterList& list,
                                const CoefficientStore& store);

}  // namespace wavebatch

#endif  // WAVEBATCH_CORE_EXACT_H_
