#include "wavelet/dwt1d.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

namespace wavebatch {
namespace {

std::vector<double> RandomVector(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Gaussian();
  return v;
}

class Dwt1DTest
    : public ::testing::TestWithParam<std::tuple<WaveletKind, size_t>> {
 protected:
  const WaveletFilter& filter() const {
    return WaveletFilter::Get(std::get<0>(GetParam()));
  }
  size_t n() const { return std::get<1>(GetParam()); }
};

TEST_P(Dwt1DTest, RoundTrip) {
  std::vector<double> v = RandomVector(n(), 101 + n());
  std::vector<double> w = v;
  ForwardDwt1D(w, filter());
  InverseDwt1D(w, filter());
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(w[i], v[i], 1e-10) << "index " << i;
  }
}

TEST_P(Dwt1DTest, PreservesInnerProducts) {
  // Orthonormality (Parseval): <a, b> == <â, b̂> — Equation (1)'s engine.
  std::vector<double> a = RandomVector(n(), 7);
  std::vector<double> b = RandomVector(n(), 8);
  double dot = 0.0;
  for (size_t i = 0; i < n(); ++i) dot += a[i] * b[i];
  std::vector<double> ah = a, bh = b;
  ForwardDwt1D(ah, filter());
  ForwardDwt1D(bh, filter());
  double dot_hat = 0.0;
  for (size_t i = 0; i < n(); ++i) dot_hat += ah[i] * bh[i];
  EXPECT_NEAR(dot, dot_hat, 1e-9 * std::abs(dot) + 1e-9);
}

TEST_P(Dwt1DTest, PreservesEnergy) {
  std::vector<double> v = RandomVector(n(), 55);
  double energy = 0.0;
  for (double x : v) energy += x * x;
  ForwardDwt1D(v, filter());
  double energy_hat = 0.0;
  for (double x : v) energy_hat += x * x;
  EXPECT_NEAR(energy, energy_hat, 1e-9 * energy);
}

TEST_P(Dwt1DTest, ConstantVectorHasSingleCoefficient) {
  // A constant is periodic-smooth: every detail vanishes and only the
  // coarsest scaling coefficient survives, with value c·sqrt(n).
  std::vector<double> v(n(), 3.0);
  ForwardDwt1D(v, filter());
  EXPECT_NEAR(v[0], 3.0 * std::sqrt(static_cast<double>(n())), 1e-9);
  for (size_t i = 1; i < n(); ++i) EXPECT_NEAR(v[i], 0.0, 1e-10);
}

TEST_P(Dwt1DTest, Linearity) {
  std::vector<double> a = RandomVector(n(), 1);
  std::vector<double> b = RandomVector(n(), 2);
  std::vector<double> combo(n());
  for (size_t i = 0; i < n(); ++i) combo[i] = 2.0 * a[i] - 3.0 * b[i];
  ForwardDwt1D(a, filter());
  ForwardDwt1D(b, filter());
  ForwardDwt1D(combo, filter());
  for (size_t i = 0; i < n(); ++i) {
    EXPECT_NEAR(combo[i], 2.0 * a[i] - 3.0 * b[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FiltersAndSizes, Dwt1DTest,
    ::testing::Combine(::testing::Values(WaveletKind::kHaar, WaveletKind::kDb4,
                                         WaveletKind::kDb6, WaveletKind::kDb8),
                       ::testing::Values<size_t>(2, 4, 8, 32, 128, 512)));

TEST(Dwt1DBasics, LengthOneIsNoOp) {
  std::vector<double> v = {42.0};
  ForwardDwt1D(v, WaveletFilter::Get(WaveletKind::kDb4));
  EXPECT_EQ(v[0], 42.0);
  InverseDwt1D(v, WaveletFilter::Get(WaveletKind::kDb4));
  EXPECT_EQ(v[0], 42.0);
}

TEST(Dwt1DBasics, HaarLengthTwoExplicit) {
  std::vector<double> v = {1.0, 3.0};
  ForwardDwt1D(v, WaveletFilter::Get(WaveletKind::kHaar));
  const double s = std::sqrt(0.5);
  EXPECT_NEAR(v[0], (1.0 + 3.0) * s, 1e-12);  // scaling
  EXPECT_NEAR(v[1], (1.0 - 3.0) * s, 1e-12);  // detail
}

TEST(Dwt1DBasics, HaarImpulseExplicit) {
  // e_0 of length 4 under Haar: coefficients 1/2, 1/2, 1/sqrt(2), 0.
  std::vector<double> v = {1.0, 0.0, 0.0, 0.0};
  ForwardDwt1D(v, WaveletFilter::Get(WaveletKind::kHaar));
  EXPECT_NEAR(v[0], 0.5, 1e-12);
  EXPECT_NEAR(v[1], 0.5, 1e-12);
  EXPECT_NEAR(v[2], std::sqrt(0.5), 1e-12);
  EXPECT_NEAR(v[3], 0.0, 1e-12);
}

TEST(WaveletIndexTest, DecodeEncodeRoundTrip) {
  for (uint64_t flat = 0; flat < 64; ++flat) {
    WaveletIndex1D idx = DecodeWaveletIndex(flat);
    EXPECT_EQ(EncodeWaveletIndex(idx), flat);
  }
}

TEST(WaveletIndexTest, Structure) {
  EXPECT_TRUE(DecodeWaveletIndex(0).is_scaling);
  WaveletIndex1D one = DecodeWaveletIndex(1);
  EXPECT_FALSE(one.is_scaling);
  EXPECT_EQ(one.depth, 0u);
  EXPECT_EQ(one.pos, 0u);
  WaveletIndex1D six = DecodeWaveletIndex(6);
  EXPECT_EQ(six.depth, 2u);
  EXPECT_EQ(six.pos, 2u);
}

}  // namespace
}  // namespace wavebatch
