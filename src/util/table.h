#ifndef WAVEBATCH_UTIL_TABLE_H_
#define WAVEBATCH_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace wavebatch {

/// Collects rows of string cells and renders them either as an aligned
/// ASCII table (for terminal output of the benchmark harnesses) or as CSV
/// (for plotting the figures the paper reports).
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; the cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Renders an aligned, boxed ASCII table.
  void Print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void PrintCsv(std::ostream& os) const;

  /// Writes CSV to `path`; returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with `digits` significant digits (benchmark reporting).
std::string FormatDouble(double v, int digits = 6);

}  // namespace wavebatch

#endif  // WAVEBATCH_UTIL_TABLE_H_
