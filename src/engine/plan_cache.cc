#include "engine/plan_cache.h"

#include <algorithm>
#include <utility>

#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/check.h"
#include "util/fingerprint.h"

namespace wavebatch {

namespace {

/// Cache traffic is aggregated across all PlanCache instances (there is
/// normally exactly one, PlanCache::Shared()); per-instance numbers stay
/// available via hits()/misses()/evictions().
struct PlanCacheMetrics {
  telemetry::Counter* hits;
  telemetry::Counter* misses;
  telemetry::Counter* evictions;
};

const PlanCacheMetrics& CacheMetrics() {
  static const PlanCacheMetrics metrics = [] {
    auto& registry = telemetry::MetricsRegistry::Default();
    PlanCacheMetrics m;
    m.hits = registry.GetCounter("wavebatch_plan_cache_hits_total", {},
                                 "PlanCache lookups served from the LRU.");
    m.misses = registry.GetCounter("wavebatch_plan_cache_misses_total", {},
                                   "PlanCache lookups that built a plan.");
    m.evictions =
        registry.GetCounter("wavebatch_plan_cache_evictions_total", {},
                            "Plans dropped off the LRU tail.");
    return m;
  }();
  return metrics;
}

}  // namespace

using fingerprint::AppendF64;
using fingerprint::AppendString;
using fingerprint::AppendU64;

std::string PlanCache::Fingerprint(const QueryBatch& batch,
                                   const LinearStrategy& strategy,
                                   const PenaltyFunction* penalty,
                                   uint64_t data_epoch) {
  std::string key;
  key += strategy.name();
  key += '\0';
  // Content, not address: a recycled allocation must not revive a stale
  // plan, and equal penalties should share one. Penalty-free plans get a
  // marker no Fingerprint() can produce (it always starts with a length-
  // prefixed type tag, so a lone zero-length field cannot collide).
  if (penalty == nullptr) {
    AppendU64(key, 0);
  } else {
    AppendString(key, penalty->Fingerprint());
  }
  const Schema& schema = batch.schema();
  AppendU64(key, schema.num_dims());
  for (const Dimension& d : schema.dims()) {
    key += d.name;
    key += '\0';
    AppendU64(key, d.size);
  }
  AppendU64(key, batch.size());
  for (const RangeSumQuery& q : batch.queries()) {
    for (const Interval& iv : q.range().intervals()) {
      AppendU64(key, (static_cast<uint64_t>(iv.lo) << 32) | iv.hi);
    }
    AppendU64(key, q.poly().terms().size());
    for (const Monomial& m : q.poly().terms()) {
      AppendF64(key, m.coeff);
      for (uint32_t e : m.exponents) AppendU64(key, e);
    }
  }
  AppendU64(key, data_epoch);
  return key;
}

PlanCache::PlanCache(size_t capacity) : capacity_(capacity) {
  WB_CHECK_GT(capacity_, 0u);
}

Result<std::shared_ptr<const EvalPlan>> PlanCache::GetOrBuild(
    const QueryBatch& batch, const LinearStrategy& strategy,
    std::shared_ptr<const PenaltyFunction> penalty, uint64_t data_epoch) {
  telemetry::ScopedSpan span("plan_cache_lookup");
  const std::string key =
      Fingerprint(batch, strategy, penalty.get(), data_epoch);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Watermark invalidation: the first lookup at a new epoch retires every
    // plan from older (nonzero) epochs — dead-epoch entries must not linger
    // until LRU pressure happens to reach them. Epoch-0 (static-store)
    // plans are not versioned and survive.
    if (data_epoch > epoch_watermark_) {
      epoch_watermark_ = data_epoch;
      DropStaleLocked(epoch_watermark_, /*drop_epoch_zero=*/false);
    }
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      CacheMetrics().hits->Add();
      return it->second->plan;
    }
    ++misses_;
    CacheMetrics().misses->Add();
  }
  // Build outside the lock: planning can be expensive and must not block
  // concurrent hits. Two threads missing the same key both build; the
  // second insert wins, which is harmless (plans are immutable and equal).
  Result<std::shared_ptr<const EvalPlan>> plan =
      EvalPlan::Build(batch, strategy, std::move(penalty));
  if (!plan.ok()) return plan.status();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      it->second->plan = plan.value();
    } else {
      lru_.push_front(Entry{key, plan.value(), data_epoch});
      by_key_[key] = lru_.begin();
      if (lru_.size() > capacity_) {
        by_key_.erase(lru_.back().key);
        lru_.pop_back();
        ++evictions_;
        CacheMetrics().evictions->Add();
      }
    }
  }
  return plan;
}

size_t PlanCache::DropStaleLocked(uint64_t min_epoch, bool drop_epoch_zero) {
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    const bool stale = it->data_epoch < min_epoch &&
                       (drop_epoch_zero || it->data_epoch != 0);
    if (stale) {
      by_key_.erase(it->key);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  evictions_ += dropped;
  if (dropped > 0) CacheMetrics().evictions->Add(dropped);
  return dropped;
}

size_t PlanCache::InvalidateStale(uint64_t min_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  return DropStaleLocked(min_epoch, /*drop_epoch_zero=*/true);
}

uint64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t PlanCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::vector<PlanCache::EntryInfo> PlanCache::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EntryInfo> out;
  out.reserve(lru_.size());
  for (const Entry& entry : lru_) {
    EntryInfo info;
    static const char* kHex = "0123456789abcdef";
    const size_t prefix = std::min<size_t>(8, entry.key.size());
    info.fingerprint_prefix.reserve(prefix * 2);
    for (size_t i = 0; i < prefix; ++i) {
      const unsigned char byte = static_cast<unsigned char>(entry.key[i]);
      info.fingerprint_prefix += kHex[byte >> 4];
      info.fingerprint_prefix += kHex[byte & 0xf];
    }
    info.data_epoch = entry.data_epoch;
    info.plan_entries = entry.plan->size();
    info.num_queries = entry.plan->num_queries();
    out.push_back(std::move(info));
  }
  return out;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  by_key_.clear();
  epoch_watermark_ = 0;
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

PlanCache& PlanCache::Shared() {
  static PlanCache* cache = new PlanCache(64);
  return *cache;
}

}  // namespace wavebatch
