// The vectorized execution tier's contract: every kernel tier (scalar,
// AVX2, AVX-512) produces BIT-IDENTICAL results — estimates, Theorem 1/2
// bound trackers, and retrieval counts — across all four progression
// orders, both fault policies, block granularity, and every store backend.
// SIMD here is a pure speed knob: the multiply is vectorized lane-wise
// (IEEE correctly-rounded, no FMA) and the per-query accumulation stays in
// the scalar program order, so there is nothing to "tolerance" away.
//
// Tiers the host can't run are skipped, not failed: the force-scalar CI
// shard exercises exactly the degenerate rows of this matrix.

#include <cmath>
#include <cstdint>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/generators.h"
#include "engine/eval_plan.h"
#include "engine/eval_session.h"
#include "gtest/gtest.h"
#include "penalty/sse.h"
#include "storage/dense_store.h"
#include "storage/fault_injection_store.h"
#include "storage/key_router.h"
#include "storage/memory_store.h"
#include "storage/sharded_store.h"
#include "storage/versioned_store.h"
#include "strategy/wavelet_strategy.h"
#include "util/cpu_features.h"
#include "util/random.h"

namespace wavebatch {
namespace {

struct Fixture {
  Schema schema = Schema::Uniform(2, 16);
  Relation rel;
  QueryBatch batch;
  std::shared_ptr<const MasterList> list;
  std::unique_ptr<CoefficientStore> store;
  std::shared_ptr<const SsePenalty> sse = std::make_shared<SsePenalty>();
  std::shared_ptr<const EvalPlan> plan;

  Fixture() : rel(MakeUniformRelation(schema, 500, 3)), batch(schema) {
    WaveletStrategy strategy(schema, WaveletKind::kHaar);
    Rng rng(9);
    for (int i = 0; i < 12; ++i) {
      uint32_t lo0 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi0 = lo0 + static_cast<uint32_t>(rng.UniformInt(16 - lo0));
      uint32_t lo1 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi1 = lo1 + static_cast<uint32_t>(rng.UniformInt(16 - lo1));
      batch.Add(RangeSumQuery::Count(
          Range::Create(schema, {{lo0, hi0}, {lo1, hi1}}).value()));
    }
    list = std::make_shared<const MasterList>(
        MasterList::Build(batch, strategy).value());
    store = strategy.BuildStore(rel.FrequencyDistribution());
    plan = EvalPlan::FromMasterList(list, sse);
  }

  uint64_t MaxKey() const {
    uint64_t max_key = 0;
    store->ForEachNonZero(
        [&](uint64_t key, double) { max_key = std::max(max_key, key); });
    return max_key;
  }
};

/// The plan's coefficient plane behind every backend shape whose read path
/// the tiered kernel can sit on top of: flat hash, dense array, a 4-way
/// sharded plane, and a versioned plane (sessions pin its snapshot).
struct TierBackends {
  std::vector<std::pair<std::string, std::unique_ptr<CoefficientStore>>>
      stores;

  explicit TierBackends(const CoefficientStore& source) {
    uint64_t max_key = 0;
    auto hash = std::make_unique<HashStore>();
    source.ForEachNonZero([&](uint64_t key, double value) {
      max_key = std::max(max_key, key);
      hash->Add(key, value);
    });
    std::vector<double> values(max_key + 1, 0.0);
    source.ForEachNonZero(
        [&](uint64_t key, double value) { values[key] = value; });

    KeyRouter router = KeyRouter::Uniform(max_key + 1, 4);
    std::vector<std::unique_ptr<CoefficientStore>> shard_backends;
    for (size_t s = 0; s < 4; ++s) {
      shard_backends.push_back(std::make_unique<HashStore>());
    }
    source.ForEachNonZero([&](uint64_t key, double value) {
      static_cast<HashStore*>(shard_backends[router.ShardOf(key)].get())
          ->Add(key, value);
    });

    auto versioned_base = std::make_unique<HashStore>();
    source.ForEachNonZero([&](uint64_t key, double value) {
      versioned_base->Add(key, value);
    });

    stores.emplace_back("hash", std::move(hash));
    stores.emplace_back("dense", std::make_unique<DenseStore>(values));
    stores.emplace_back("sharded", std::make_unique<ShardedStore>(
                                       std::move(shard_backends), router));
    stores.emplace_back(
        "versioned",
        std::make_unique<VersionedStore>(std::move(versioned_base)));
  }
};

/// Tiers worth comparing against scalar on this build+host. Empty on a
/// scalar-only host or under WAVEBATCH_FORCE_SCALAR — the tests then skip.
std::vector<KernelTier> UsableSimdTiers() {
  std::vector<KernelTier> tiers;
  if (KernelTierUsable(KernelTier::kAvx2)) tiers.push_back(KernelTier::kAvx2);
  if (KernelTierUsable(KernelTier::kAvx512)) {
    tiers.push_back(KernelTier::kAvx512);
  }
  return tiers;
}

/// Drives `simd` and `scalar` in lockstep through uneven batch sizes
/// (covering full vector widths and ragged tails) and asserts bitwise
/// equality of everything observable after every batch.
void RunLockstep(EvalSession& scalar, EvalSession& simd, double k,
                 size_t num_queries, const std::string& label) {
  const size_t batch_sizes[] = {1, 3, 7, 16, 64, 256};
  size_t bi = 0;
  while (!scalar.Done()) {
    const size_t n = batch_sizes[bi++ % std::size(batch_sizes)];
    Result<size_t> scalar_taken = scalar.StepBatch(n);
    Result<size_t> simd_taken = simd.StepBatch(n);
    ASSERT_EQ(scalar_taken.ok(), simd_taken.ok()) << label;
    if (!scalar_taken.ok()) {
      // kFail over a faulty store: both sessions must refuse identically
      // and stay resumable; the caller heals and loops again.
      ASSERT_EQ(scalar_taken.status().code(), simd_taken.status().code())
          << label;
      return;
    }
    ASSERT_EQ(scalar_taken.value(), simd_taken.value()) << label;
    ASSERT_EQ(scalar.StepsTaken(), simd.StepsTaken()) << label;
    for (size_t q = 0; q < num_queries; ++q) {
      // EXPECT_EQ on double is exact bit-level agreement for these values
      // (no NaNs in play): the tiers must not differ by even one ulp.
      ASSERT_EQ(scalar.Estimates()[q], simd.Estimates()[q])
          << label << " query " << q << " after " << scalar.StepsTaken()
          << " steps";
    }
    ASSERT_EQ(scalar.WorstCaseBound(k), simd.WorstCaseBound(k)) << label;
    ASSERT_EQ(scalar.SkippedImportance(), simd.SkippedImportance()) << label;
    ASSERT_EQ(scalar.io(), simd.io()) << label;
  }
  ASSERT_TRUE(simd.Done()) << label;
}

class TierOrderTest : public ::testing::TestWithParam<ProgressionOrder> {};

TEST_P(TierOrderTest, SimdTiersAreBitIdenticalOnEveryBackend) {
  const std::vector<KernelTier> tiers = UsableSimdTiers();
  if (tiers.empty()) GTEST_SKIP() << "no SIMD tier usable on this host";
  Fixture f;
  TierBackends backends(*f.store);
  for (auto& [name, store] : backends.stores) {
    const double k = store->SumAbs();
    for (KernelTier tier : tiers) {
      EvalSession::Options scalar_opts;
      scalar_opts.order = GetParam();
      scalar_opts.seed = 17;
      scalar_opts.kernel_tier = KernelTier::kScalar;
      EvalSession::Options simd_opts = scalar_opts;
      simd_opts.kernel_tier = tier;

      EvalSession scalar(f.plan, UnownedStore(*store), scalar_opts);
      EvalSession simd(f.plan, UnownedStore(*store), simd_opts);
      ASSERT_EQ(scalar.kernel_tier(), KernelTier::kScalar);
      ASSERT_EQ(simd.kernel_tier(), tier);
      RunLockstep(scalar, simd, k, f.batch.size(),
                  name + "/" + KernelTierName(tier));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrders, TierOrderTest,
                         ::testing::Values(ProgressionOrder::kBiggestB,
                                           ProgressionOrder::kRoundRobin,
                                           ProgressionOrder::kRandom,
                                           ProgressionOrder::kKeyOrder));

TEST(KernelTierTest, SkipPolicyDegradesIdenticallyAcrossTiers) {
  // kSkip consumes unavailable coefficients without data; the skip set is
  // key-addressed (FailKey), so both tiers must skip exactly the same
  // entries and land on identical estimates and skipped-importance mass.
  const std::vector<KernelTier> tiers = UsableSimdTiers();
  if (tiers.empty()) GTEST_SKIP() << "no SIMD tier usable on this host";
  Fixture f;
  for (KernelTier tier : tiers) {
    auto make_store = [&]() {
      auto inner = std::make_unique<HashStore>();
      f.store->ForEachNonZero(
          [&](uint64_t key, double value) { inner->Add(key, value); });
      auto faulty = std::make_unique<FaultInjectionStore>(std::move(inner));
      // Kill every 5th plan key — enough to fragment most batches.
      for (size_t i = 0; i < f.list->size(); i += 5) {
        faulty->FailKey(f.list->entry(i).key);
      }
      return faulty;
    };
    auto scalar_store = make_store();
    auto simd_store = make_store();
    const double k = f.store->SumAbs();

    EvalSession::Options scalar_opts;
    scalar_opts.fault_policy = FaultPolicy::kSkip;
    scalar_opts.kernel_tier = KernelTier::kScalar;
    EvalSession::Options simd_opts = scalar_opts;
    simd_opts.kernel_tier = tier;

    EvalSession scalar(f.plan, UnownedStore(*scalar_store), scalar_opts);
    EvalSession simd(f.plan, UnownedStore(*simd_store), simd_opts);
    RunLockstep(scalar, simd, k, f.batch.size(),
                std::string("skip/") + KernelTierName(tier));
    EXPECT_GT(simd.SkippedCoefficients(), 0u);
    EXPECT_EQ(simd.SkippedCoefficients(), scalar.SkippedCoefficients());
  }
}

TEST(KernelTierTest, FailPolicyRefusesIdenticallyThenResumes) {
  // kFail must leave both sessions untouched on the failing batch; after a
  // Heal() both resume and converge to bit-identical exact results.
  const std::vector<KernelTier> tiers = UsableSimdTiers();
  if (tiers.empty()) GTEST_SKIP() << "no SIMD tier usable on this host";
  Fixture f;
  for (KernelTier tier : tiers) {
    auto make_store = [&]() {
      auto inner = std::make_unique<HashStore>();
      f.store->ForEachNonZero(
          [&](uint64_t key, double value) { inner->Add(key, value); });
      auto faulty = std::make_unique<FaultInjectionStore>(std::move(inner));
      faulty->FailKey(f.list->entry(f.list->size() / 2).key);
      return faulty;
    };
    auto scalar_store = make_store();
    auto simd_store = make_store();
    const double k = f.store->SumAbs();

    EvalSession::Options scalar_opts;
    scalar_opts.kernel_tier = KernelTier::kScalar;
    EvalSession::Options simd_opts;
    simd_opts.kernel_tier = tier;

    EvalSession scalar(f.plan, UnownedStore(*scalar_store), scalar_opts);
    EvalSession simd(f.plan, UnownedStore(*simd_store), simd_opts);
    // First leg ends at the identical refusal (RunLockstep returns there).
    RunLockstep(scalar, simd, k, f.batch.size(),
                std::string("fail/") + KernelTierName(tier));
    ASSERT_FALSE(scalar.Done());
    ASSERT_EQ(scalar.StepsTaken(), simd.StepsTaken());

    scalar_store->Heal();
    simd_store->Heal();
    ASSERT_TRUE(scalar.RunToExact().ok());
    ASSERT_TRUE(simd.RunToExact().ok());
    for (size_t q = 0; q < f.batch.size(); ++q) {
      EXPECT_EQ(scalar.Estimates()[q], simd.Estimates()[q]) << "query " << q;
    }
    EXPECT_EQ(scalar.io(), simd.io());
  }
}

TEST(KernelTierTest, BlockGranularityIsBitIdentical) {
  const std::vector<KernelTier> tiers = UsableSimdTiers();
  if (tiers.empty()) GTEST_SKIP() << "no SIMD tier usable on this host";
  Fixture f;
  for (KernelTier tier : tiers) {
    EvalSession::Options scalar_opts;
    scalar_opts.block_of = [](uint64_t key) { return key / 8; };
    scalar_opts.kernel_tier = KernelTier::kScalar;
    EvalSession::Options simd_opts = scalar_opts;
    simd_opts.kernel_tier = tier;

    EvalSession scalar(f.plan, UnownedStore(*f.store), scalar_opts);
    EvalSession simd(f.plan, UnownedStore(*f.store), simd_opts);
    const double k = f.store->SumAbs();
    while (!scalar.Done()) {
      ASSERT_TRUE(scalar.StepBlock().ok());
      ASSERT_TRUE(simd.StepBlock().ok());
      ASSERT_EQ(scalar.StepsTaken(), simd.StepsTaken());
      for (size_t q = 0; q < f.batch.size(); ++q) {
        ASSERT_EQ(scalar.Estimates()[q], simd.Estimates()[q])
            << KernelTierName(tier) << " query " << q;
      }
      ASSERT_EQ(scalar.WorstCaseBound(k), simd.WorstCaseBound(k));
      ASSERT_EQ(scalar.io(), simd.io());
    }
    EXPECT_TRUE(simd.Done());
  }
}

TEST(KernelTierTest, ExplicitTierIsHonoredAndDefaultIsBest) {
  Fixture f;
  EvalSession::Options opts;
  opts.kernel_tier = KernelTier::kScalar;
  EvalSession forced(f.plan, UnownedStore(*f.store), opts);
  EXPECT_EQ(forced.kernel_tier(), KernelTier::kScalar);

  EvalSession defaulted(f.plan, UnownedStore(*f.store));
  EXPECT_EQ(defaulted.kernel_tier(), BestKernelTier());
}

// ---------------------------------------------------------------------------
// DenseStore's hardware-gather fetch path: same values as the scalar loop,
// and the exact historical error contract (OutOfRange at the FIRST
// offending index) even when the bad key sits mid-vector.

TEST(KernelTierTest, DenseGatherMatchesScalarFetchBatch) {
  std::vector<double> values(1024);
  Rng rng(41);
  for (double& v : values) v = rng.UniformDouble() * 2.0 - 1.0;
  DenseStore store(values);

  std::vector<uint64_t> keys;
  Rng key_rng(42);
  for (size_t i = 0; i < 501; ++i) {  // odd length: ragged SIMD tail
    keys.push_back(static_cast<uint64_t>(key_rng.UniformInt(1024)));
  }

  IoStats io;
  std::vector<double> scalar_out(keys.size());
  SetKernelTierOverride(KernelTier::kScalar);
  ASSERT_TRUE(store.FetchBatch(keys, scalar_out, &io).ok());

  for (KernelTier tier : UsableSimdTiers()) {
    SetKernelTierOverride(tier);
    std::vector<double> simd_out(keys.size());
    ASSERT_TRUE(store.FetchBatch(keys, simd_out, &io).ok());
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(simd_out[i], scalar_out[i])
          << KernelTierName(tier) << " index " << i;
    }
  }
  SetKernelTierOverride(std::nullopt);
}

TEST(KernelTierTest, DenseGatherReportsFirstOutOfRangeKey) {
  std::vector<double> values(64, 1.5);
  DenseStore store(values);
  // Two bad keys; the error must name the FIRST one on every tier.
  std::vector<uint64_t> keys = {3, 9, 27, 64, 5, 1 << 20, 2};

  std::vector<KernelTier> tiers = {KernelTier::kScalar};
  for (KernelTier t : UsableSimdTiers()) tiers.push_back(t);
  for (KernelTier tier : tiers) {
    SetKernelTierOverride(tier);
    IoStats io;
    std::vector<double> out(keys.size());
    Status status = store.FetchBatch(keys, out, &io);
    ASSERT_FALSE(status.ok()) << KernelTierName(tier);
    EXPECT_EQ(status.code(), StatusCode::kOutOfRange) << KernelTierName(tier);
    EXPECT_NE(status.message().find("key 64"), std::string::npos)
        << KernelTierName(tier) << ": " << status.message();
  }
  SetKernelTierOverride(std::nullopt);
}

TEST(KernelTierTest, TierNamesAndFeatureStringAreStable) {
  // bench_compare keys its refuse-to-gate policy off these strings; keep
  // them stable.
  EXPECT_STREQ(KernelTierName(KernelTier::kScalar), "scalar");
  EXPECT_STREQ(KernelTierName(KernelTier::kAvx2), "avx2");
  EXPECT_STREQ(KernelTierName(KernelTier::kAvx512), "avx512");
  EXPECT_FALSE(CpuFeatureString().empty());
}

}  // namespace
}  // namespace wavebatch
