#include <memory>

#include "gtest/gtest.h"
#include "storage/block_store.h"
#include "storage/coefficient_store.h"
#include "storage/dense_store.h"
#include "storage/memory_store.h"

namespace wavebatch {
namespace {

TEST(HashStoreTest, PeekAbsentIsZero) {
  HashStore store;
  EXPECT_EQ(store.Peek(42), 0.0);
  EXPECT_EQ(store.NumNonZero(), 0u);
}

TEST(HashStoreTest, AddAndPeek) {
  HashStore store;
  store.Add(1, 2.0);
  store.Add(1, 3.0);
  store.Add(2, -1.0);
  EXPECT_DOUBLE_EQ(store.Peek(1), 5.0);
  EXPECT_DOUBLE_EQ(store.Peek(2), -1.0);
  EXPECT_EQ(store.NumNonZero(), 2u);
}

TEST(HashStoreTest, AddToZeroErases) {
  HashStore store;
  store.Add(1, 2.0);
  store.Add(1, -2.0);
  EXPECT_EQ(store.NumNonZero(), 0u);
}

TEST(HashStoreTest, BulkLoadFromSparseVec) {
  SparseVec v = SparseVec::FromUnsorted({{1, 1.0}, {9, 2.0}});
  HashStore store(v);
  EXPECT_EQ(store.NumNonZero(), 2u);
  EXPECT_DOUBLE_EQ(store.Peek(9), 2.0);
}

TEST(HashStoreTest, FetchCountsRetrievals) {
  HashStore store;
  store.Add(1, 2.0);
  EXPECT_EQ(store.stats().retrievals, 0u);
  EXPECT_DOUBLE_EQ(store.Fetch(1), 2.0);
  EXPECT_DOUBLE_EQ(store.Fetch(5), 0.0);  // absent fetches still cost
  EXPECT_EQ(store.stats().retrievals, 2u);
  store.ResetStats();
  EXPECT_EQ(store.stats().retrievals, 0u);
}

TEST(HashStoreTest, PeekDoesNotCount) {
  HashStore store;
  store.Add(1, 2.0);
  store.Peek(1);
  EXPECT_EQ(store.stats().retrievals, 0u);
}

TEST(HashStoreTest, SumAbs) {
  HashStore store;
  store.Add(1, 3.0);
  store.Add(2, -4.0);
  EXPECT_DOUBLE_EQ(store.SumAbs(), 7.0);
}

TEST(DenseStoreTest, ZeroInitialized) {
  DenseStore store(16);
  EXPECT_EQ(store.capacity(), 16u);
  EXPECT_EQ(store.Peek(7), 0.0);
  EXPECT_EQ(store.NumNonZero(), 0u);
}

TEST(DenseStoreTest, AddPeekFetch) {
  DenseStore store(8);
  store.Add(3, 1.5);
  store.Add(3, 1.5);
  EXPECT_DOUBLE_EQ(store.Peek(3), 3.0);
  EXPECT_DOUBLE_EQ(store.Fetch(3), 3.0);
  EXPECT_EQ(store.stats().retrievals, 1u);
  EXPECT_EQ(store.NumNonZero(), 1u);
  EXPECT_DOUBLE_EQ(store.SumAbs(), 3.0);
}

TEST(DenseStoreTest, BulkLoadValues) {
  DenseStore store(std::vector<double>{0.0, 1.0, -2.0});
  EXPECT_EQ(store.capacity(), 3u);
  EXPECT_EQ(store.NumNonZero(), 2u);
  EXPECT_DOUBLE_EQ(store.SumAbs(), 3.0);
}

std::unique_ptr<CoefficientStore> MakeInner() {
  auto inner = std::make_unique<HashStore>();
  for (uint64_t k = 0; k < 64; ++k) inner->Add(k, static_cast<double>(k + 1));
  return inner;
}

TEST(BlockStoreTest, FirstTouchIsBlockRead) {
  BlockStore store(MakeInner(), /*block_size=*/8, /*cache_blocks=*/4);
  store.Fetch(0);
  EXPECT_EQ(store.stats().retrievals, 1u);
  EXPECT_EQ(store.stats().block_reads, 1u);
  EXPECT_EQ(store.stats().block_hits, 0u);
}

TEST(BlockStoreTest, SameBlockHits) {
  BlockStore store(MakeInner(), 8, 4);
  store.Fetch(0);
  store.Fetch(7);  // same block [0,8)
  store.Fetch(3);
  EXPECT_EQ(store.stats().block_reads, 1u);
  EXPECT_EQ(store.stats().block_hits, 2u);
}

TEST(BlockStoreTest, LruEviction) {
  BlockStore store(MakeInner(), 8, 2);
  store.Fetch(0);   // block 0 (miss)
  store.Fetch(8);   // block 1 (miss)
  store.Fetch(16);  // block 2 (miss, evicts block 0)
  store.Fetch(0);   // block 0 again (miss)
  EXPECT_EQ(store.stats().block_reads, 4u);
  EXPECT_EQ(store.stats().block_hits, 0u);
}

TEST(BlockStoreTest, LruTouchRefreshes) {
  BlockStore store(MakeInner(), 8, 2);
  store.Fetch(0);   // block 0 (miss)            cache: {0}
  store.Fetch(8);   // block 1 (miss)            cache: {1,0}
  store.Fetch(1);   // block 0 (hit, refreshed)  cache: {0,1}
  store.Fetch(16);  // block 2 (miss, evicts 1)  cache: {2,0}
  store.Fetch(2);   // block 0 (hit)
  EXPECT_EQ(store.stats().block_reads, 3u);
  EXPECT_EQ(store.stats().block_hits, 2u);
}

TEST(BlockStoreTest, UnbufferedEveryBlockAccessReads) {
  BlockStore store(MakeInner(), 8, 0);
  store.Fetch(0);
  store.Fetch(1);
  store.Fetch(2);
  EXPECT_EQ(store.stats().block_reads, 3u);
  EXPECT_EQ(store.stats().block_hits, 0u);
}

TEST(BlockStoreTest, DelegatesValuesAndUpdates) {
  BlockStore store(MakeInner(), 8, 2);
  EXPECT_DOUBLE_EQ(store.Peek(5), 6.0);
  EXPECT_DOUBLE_EQ(store.Fetch(5), 6.0);
  store.Add(5, 1.0);
  EXPECT_DOUBLE_EQ(store.Peek(5), 7.0);
  EXPECT_EQ(store.NumNonZero(), 64u);
  EXPECT_EQ(store.name(), "blocked(hash)");
}

}  // namespace
}  // namespace wavebatch
