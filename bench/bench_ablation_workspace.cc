// Ablation: workspace vs I/O (Section 2.2: "it is of practical interest
// to avoid simultaneous materialization of all of the query coefficients
// and reduce workspace requirements"). Sweeping the workspace budget of
// the grouped exact evaluator maps the full trade-off curve between the
// naive (one query at a time, minimal memory, maximal I/O) and the fully
// shared (whole batch in memory, minimal I/O) extremes.

#include "bench_common.h"
#include "engine/bounded.h"
#include "util/table.h"

namespace wavebatch::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              "bench_ablation_workspace: workspace/I/O trade-off\n" +
                  kCommonFlagsHelp);
  TemperatureDatasetOptions options = DataOptionsFromFlags(flags);
  // Moderate scale: the sweep re-runs the exact evaluation per budget.
  options.lat_size = static_cast<uint32_t>(flags.Int("lat", 64));
  options.lon_size = static_cast<uint32_t>(flags.Int("lon", 64));
  options.num_records = static_cast<uint64_t>(flags.Int("records", 4000000));
  const std::vector<size_t> parts = PartsFromFlags(flags);

  Stopwatch total;
  std::cout << "building experiment (domain "
            << TemperatureSchema(options).ToString() << ")..." << std::endl;
  Experiment exp(options, parts, 1234, WaveletKind::kDb4);
  const uint64_t naive = exp.list.TotalQueryCoefficients();
  const uint64_t shared = exp.list.size();

  Table table({"workspace budget", "groups", "retrievals", "vs shared",
               "peak workspace"});
  for (double frac :
       {0.0, 0.01, 0.03, 0.0625, 0.125, 0.25, 0.5, 1.0}) {
    const uint64_t budget = std::max<uint64_t>(
        1, static_cast<uint64_t>(frac * static_cast<double>(naive)));
    // Retrievals are counted per run by the session's own IoStats sink, so
    // back-to-back sweeps don't contaminate each other.
    BoundedRunResult res =
        RunWithBoundedWorkspace(exp.workload.batch, exp.strategy, *exp.store,
                                budget)
            .value();
    // Sanity: results must match the reference.
    double max_rel = 0.0;
    for (size_t i = 0; i < exp.exact.size(); ++i) {
      max_rel = std::max(max_rel,
                         std::abs(res.results[i] - exp.exact[i]) /
                             (1.0 + std::abs(exp.exact[i])));
    }
    if (max_rel > 1e-6) {
      std::cerr << "bounded-workspace result mismatch: " << max_rel
                << std::endl;
      return 1;
    }
    table.AddRow({std::to_string(budget), std::to_string(res.num_groups),
                  std::to_string(res.io.retrievals),
                  FormatDouble(static_cast<double>(res.io.retrievals) /
                                   static_cast<double>(shared),
                               4),
                  std::to_string(res.peak_workspace)});
  }

  std::cout << "\nExact evaluation under a workspace budget ("
            << exp.workload.batch.size() << " queries; naive = " << naive
            << " retrievals, fully shared = " << shared << "):\n";
  table.Print(std::cout);
  std::cout << "expected shape: a few percent of the naive workspace "
               "already recovers most of the I/O sharing.\n";
  std::cout << "elapsed: " << FormatDouble(total.ElapsedSeconds(), 3)
            << "s\n";

  const std::string csv = flags.Str("csv", "");
  if (!csv.empty() && !table.WriteCsv(csv)) return 1;
  if (!WriteMetricsOut(flags)) return 1;
  return 0;
}

}  // namespace
}  // namespace wavebatch::bench

int main(int argc, char** argv) { return wavebatch::bench::Main(argc, argv); }
