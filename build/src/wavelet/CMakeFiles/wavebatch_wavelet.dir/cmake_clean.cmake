file(REMOVE_RECURSE
  "CMakeFiles/wavebatch_wavelet.dir/dwt1d.cc.o"
  "CMakeFiles/wavebatch_wavelet.dir/dwt1d.cc.o.d"
  "CMakeFiles/wavebatch_wavelet.dir/dwt_nd.cc.o"
  "CMakeFiles/wavebatch_wavelet.dir/dwt_nd.cc.o.d"
  "CMakeFiles/wavebatch_wavelet.dir/filters.cc.o"
  "CMakeFiles/wavebatch_wavelet.dir/filters.cc.o.d"
  "CMakeFiles/wavebatch_wavelet.dir/impulse.cc.o"
  "CMakeFiles/wavebatch_wavelet.dir/impulse.cc.o.d"
  "CMakeFiles/wavebatch_wavelet.dir/lazy_query_transform.cc.o"
  "CMakeFiles/wavebatch_wavelet.dir/lazy_query_transform.cc.o.d"
  "CMakeFiles/wavebatch_wavelet.dir/query_transform.cc.o"
  "CMakeFiles/wavebatch_wavelet.dir/query_transform.cc.o.d"
  "CMakeFiles/wavebatch_wavelet.dir/sparse_vec.cc.o"
  "CMakeFiles/wavebatch_wavelet.dir/sparse_vec.cc.o.d"
  "libwavebatch_wavelet.a"
  "libwavebatch_wavelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavebatch_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
