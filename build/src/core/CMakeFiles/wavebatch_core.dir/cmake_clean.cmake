file(REMOVE_RECURSE
  "CMakeFiles/wavebatch_core.dir/block_progressive.cc.o"
  "CMakeFiles/wavebatch_core.dir/block_progressive.cc.o.d"
  "CMakeFiles/wavebatch_core.dir/bounded_workspace.cc.o"
  "CMakeFiles/wavebatch_core.dir/bounded_workspace.cc.o.d"
  "CMakeFiles/wavebatch_core.dir/exact.cc.o"
  "CMakeFiles/wavebatch_core.dir/exact.cc.o.d"
  "CMakeFiles/wavebatch_core.dir/master_list.cc.o"
  "CMakeFiles/wavebatch_core.dir/master_list.cc.o.d"
  "CMakeFiles/wavebatch_core.dir/progressive.cc.o"
  "CMakeFiles/wavebatch_core.dir/progressive.cc.o.d"
  "CMakeFiles/wavebatch_core.dir/trace.cc.o"
  "CMakeFiles/wavebatch_core.dir/trace.cc.o.d"
  "libwavebatch_core.a"
  "libwavebatch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavebatch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
