#include "core/master_list.h"

#include <algorithm>

#include "util/check.h"
#include "util/parallel_sort.h"
#include "util/thread_pool.h"

namespace wavebatch {

namespace {

/// Below this many merged coefficients the queue + wake overhead of the
/// shared pool exceeds the merge itself (bounded-workspace groups, unit
/// tests); the build then runs the identical code path serially.
constexpr size_t kMinParallelCoefficients = size_t{1} << 14;

/// Chunk size for the linear passes (projection, dedup/fold). Boundaries
/// depend only on the input size, never on thread count.
constexpr size_t kFoldGrain = size_t{1} << 14;

/// One merged (key, query, coefficient) row. The merge sorts rows by
/// (key, query); both components of that order are realized structurally —
/// keys by the merge comparator, query tie-break by merge stability over
/// per-query runs — so the result is unique and thread-count-independent.
struct UseRow {
  uint64_t key;
  uint32_t query;
  double value;
};

/// Runs fn over [0, n): chunked across `pool` when non-null, inline
/// otherwise. Either way every index is visited exactly once and each
/// output slot is written by exactly one chunk.
void ForRange(ThreadPool* pool, size_t n, size_t grain,
              const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (pool != nullptr) {
    pool->ParallelFor(n, grain, fn);
  } else {
    fn(0, n);
  }
}

}  // namespace

Result<MasterList> MasterList::Build(const QueryBatch& batch,
                                     const LinearStrategy& strategy,
                                     BuildParallelism parallelism) {
  // The per-query sparse transforms are independent and read-only on the
  // strategy, so they fan out across the shared pool; each slot is written
  // by exactly one chunk, keeping results identical to the serial loop.
  std::vector<Result<SparseVec>> transformed(batch.size(),
                                             Result<SparseVec>(SparseVec{}));
  ThreadPool* pool = parallelism == BuildParallelism::kParallel
                         ? &ThreadPool::Shared()
                         : nullptr;
  ForRange(pool, batch.size(), /*grain=*/8, [&](size_t begin, size_t end) {
    for (size_t qi = begin; qi < end; ++qi) {
      transformed[qi] = strategy.TransformQuery(batch.query(qi));
    }
  });
  std::vector<SparseVec> query_coefficients;
  query_coefficients.reserve(batch.size());
  for (Result<SparseVec>& r : transformed) {
    if (!r.ok()) return r.status();
    query_coefficients.push_back(std::move(r).value());
  }
  return FromQueryVectors(query_coefficients, parallelism);
}

MasterList MasterList::FromQueryVectors(
    const std::vector<SparseVec>& query_coefficients,
    BuildParallelism parallelism) {
  MasterList list;
  list.num_queries_ = query_coefficients.size();
  const size_t num_queries = query_coefficients.size();

  // Per-query runs laid out back to back: run q is already sorted by key
  // (SparseVec invariant), so the merge below never needs a full sort.
  std::vector<size_t> run_bounds(num_queries + 1, 0);
  for (size_t q = 0; q < num_queries; ++q) {
    run_bounds[q + 1] = run_bounds[q] + query_coefficients[q].size();
  }
  const size_t total = run_bounds[num_queries];
  list.total_coefficients_ = total;
  list.per_query_coefficients_.resize(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    list.per_query_coefficients_[q] = query_coefficients[q].size();
  }

  ThreadPool* pool = (parallelism == BuildParallelism::kParallel &&
                      total >= kMinParallelCoefficients)
                         ? &ThreadPool::Shared()
                         : nullptr;

  std::vector<UseRow> rows(total);
  ForRange(pool, num_queries, /*grain=*/4, [&](size_t begin, size_t end) {
    for (size_t q = begin; q < end; ++q) {
      const SparseVec& v = query_coefficients[q];
      UseRow* out = rows.data() + run_bounds[q];
      for (size_t j = 0; j < v.size(); ++j) {
        out[j] = {v[j].key, static_cast<uint32_t>(q), v[j].value};
      }
    }
  });

  // Stable pairwise merge of the per-query runs by key: equal keys keep
  // run (= query) order, so rows end up ascending by (key, query) — the
  // unique order a serial sort by that pair would produce.
  MergeSortedRuns(rows.begin(), run_bounds,
                  [](const UseRow& a, const UseRow& b) { return a.key < b.key; },
                  pool);

  // Dedup/fold into the CSR image. The uses arrays are the sorted rows
  // projected 1:1; entry boundaries are the rows where the key changes
  // ("heads"). Chunked: count heads per fixed chunk, exclusive-scan to get
  // each chunk's first entry index, then fill — every output slot has
  // exactly one writer.
  list.uses_query_.resize(total);
  list.uses_coeff_.resize(total);
  const size_t num_chunks = (total + kFoldGrain - 1) / kFoldGrain;
  std::vector<size_t> chunk_heads(num_chunks, 0);
  ForRange(pool, num_chunks, /*grain=*/1, [&](size_t begin, size_t end) {
    for (size_t c = begin; c < end; ++c) {
      const size_t lo = c * kFoldGrain;
      const size_t hi = std::min(total, lo + kFoldGrain);
      size_t heads = 0;
      for (size_t i = lo; i < hi; ++i) {
        list.uses_query_[i] = rows[i].query;
        list.uses_coeff_[i] = rows[i].value;
        if (i == 0 || rows[i].key != rows[i - 1].key) ++heads;
      }
      chunk_heads[c] = heads;
    }
  });
  size_t num_entries = 0;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t heads = chunk_heads[c];
    chunk_heads[c] = num_entries;  // becomes the chunk's first entry index
    num_entries += heads;
  }
  list.keys_.resize(num_entries);
  list.uses_offsets_.resize(num_entries + 1);
  ForRange(pool, num_chunks, /*grain=*/1, [&](size_t begin, size_t end) {
    for (size_t c = begin; c < end; ++c) {
      const size_t lo = c * kFoldGrain;
      const size_t hi = std::min(total, lo + kFoldGrain);
      size_t cursor = chunk_heads[c];
      for (size_t i = lo; i < hi; ++i) {
        if (i == 0 || rows[i].key != rows[i - 1].key) {
          list.keys_[cursor] = rows[i].key;
          list.uses_offsets_[cursor] = i;
          ++cursor;
        }
      }
    }
  });
  list.uses_offsets_[num_entries] = total;

  // Legacy pointer-based view, built from the CSR image. The per-entry
  // `uses` vectors are independent allocations, so they fill in parallel.
  list.entries_.resize(num_entries);
  ForRange(pool, num_entries, /*grain=*/512, [&](size_t begin, size_t end) {
    for (size_t e = begin; e < end; ++e) {
      MasterEntry& entry = list.entries_[e];
      entry.key = list.keys_[e];
      const size_t lo = list.uses_offsets_[e];
      const size_t hi = list.uses_offsets_[e + 1];
      entry.uses.reserve(hi - lo);
      for (size_t i = lo; i < hi; ++i) {
        entry.uses.emplace_back(list.uses_query_[i], list.uses_coeff_[i]);
      }
    }
  });
  return list;
}

size_t MasterList::MaxSharing() const {
  size_t m = 0;
  for (size_t e = 0; e + 1 < uses_offsets_.size(); ++e) {
    m = std::max<size_t>(m, uses_offsets_[e + 1] - uses_offsets_[e]);
  }
  return m;
}

}  // namespace wavebatch
