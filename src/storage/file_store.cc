#include "storage/file_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace wavebatch {

namespace {

/// Backoff retries after a real read error (EINTR and short reads are not
/// retries — they are normal pread behavior and cost nothing).
telemetry::Counter& ReadRetries() {
  static telemetry::Counter* counter =
      telemetry::MetricsRegistry::Default().GetCounter(
          "wavebatch_file_store_read_retries_total", {},
          "FileStore pread retries after a transient read error.");
  return *counter;
}

}  // namespace

Result<std::unique_ptr<FileStore>> FileStore::Create(
    const std::string& path, const std::vector<double>& values,
    FileStoreOptions options) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create " + path + ": " +
                            std::strerror(errno));
  }
  const char* data = reinterpret_cast<const char*>(values.data());
  size_t remaining = values.size() * sizeof(double);
  size_t offset = 0;
  while (remaining > 0) {
    const ssize_t written = ::pwrite(fd, data + offset, remaining, offset);
    if (written <= 0) {
      ::close(fd);
      return Status::Internal("short write to " + path + ": " +
                              std::strerror(errno));
    }
    offset += static_cast<size_t>(written);
    remaining -= static_cast<size_t>(written);
  }
  return std::unique_ptr<FileStore>(
      new FileStore(path, fd, values.size(), options));
}

Result<std::unique_ptr<FileStore>> FileStore::Open(const std::string& path,
                                                   FileStoreOptions options) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::NotFound("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0 || size % static_cast<off_t>(sizeof(double)) != 0) {
    ::close(fd);
    return Status::InvalidArgument(path +
                                   " is not a multiple of sizeof(double)");
  }
  return std::unique_ptr<FileStore>(new FileStore(
      path, fd, static_cast<uint64_t>(size) / sizeof(double), options));
}

FileStore::~FileStore() {
  if (fd_ >= 0) ::close(fd_);
}

double FileStore::Peek(uint64_t key) const {
  WB_CHECK_LT(key, capacity_) << "key outside file store capacity";
  double value = 0.0;
  WB_CHECK_OK(PreadFully(&value, sizeof(value), key * sizeof(double)));
  return value;
}

void FileStore::Add(uint64_t key, double delta) {
  WB_CHECK_LT(key, capacity_) << "key outside file store capacity";
  const double value = Peek(key) + delta;
  const ssize_t put = ::pwrite(fd_, &value, sizeof(value),
                               static_cast<off_t>(key * sizeof(double)));
  WB_CHECK_EQ(put, static_cast<ssize_t>(sizeof(value)))
      << "short write to " << path_;
}

void FileStore::SimulateSeek() const {
  if (options_.simulated_seek_latency.count() > 0) {
    std::this_thread::sleep_for(options_.simulated_seek_latency);
  }
}

Status FileStore::PreadFully(void* buf, size_t len, uint64_t offset) const {
  size_t filled = 0;
  int attempts = 0;
  while (filled < len) {
    const ssize_t got =
        ::pread(fd_, static_cast<char*>(buf) + filled, len - filled,
                static_cast<off_t>(offset + filled));
    if (got > 0) {
      // Short reads are normal (signals, page boundaries): keep reading
      // from where the kernel stopped. They do not consume an attempt.
      filled += static_cast<size_t>(got);
      attempts = 0;
      continue;
    }
    if (got == 0) {
      // pread at or past the end of the file. This is not a read error —
      // the file is shorter than the store's capacity claims (truncated
      // behind our back), and retrying would spin forever.
      return Status::Unavailable(
          "unexpected EOF in " + path_ + " at offset " +
          std::to_string(offset + filled) + " (wanted " +
          std::to_string(len - filled) + " more bytes; file truncated?)");
    }
    const int err = errno;
    if (err == EINTR) continue;  // interrupted before any bytes: free retry
    if (++attempts >= options_.max_read_attempts) {
      return Status::Unavailable("read error in " + path_ + " at offset " +
                                 std::to_string(offset + filled) + ": " +
                                 std::strerror(err) + " (after " +
                                 std::to_string(attempts) + " attempts)");
    }
    ReadRetries().Add();
    if (options_.retry_backoff.count() > 0) {
      std::this_thread::sleep_for(options_.retry_backoff * attempts);
    }
  }
  return Status::OK();
}

Result<double> FileStore::DoFetch(uint64_t key, IoStats*) const {
  if (key >= capacity_) {
    return Status::OutOfRange("key " + std::to_string(key) +
                              " outside file store capacity " +
                              std::to_string(capacity_));
  }
  SimulateSeek();
  double value = 0.0;
  Status status = PreadFully(&value, sizeof(value), key * sizeof(double));
  if (!status.ok()) return status;
  return value;
}

namespace {
/// Keys this close (in coefficients) are folded into one read: reading a
/// few wasted doubles is cheaper than another syscall + seek.
constexpr uint64_t kMaxCoalesceGap = 8;
/// Below this batch size the pool handoff costs more than it saves.
constexpr size_t kParallelFetchThreshold = 256;
}  // namespace

Status FileStore::ReadRun(const Run& run, std::span<const uint64_t> keys,
                          std::span<const size_t> order,
                          std::span<double> out) const {
  SimulateSeek();
  const size_t count = static_cast<size_t>(run.last_key - run.first_key + 1);
  std::vector<double> buffer(count);
  Status status = PreadFully(buffer.data(), count * sizeof(double),
                             run.first_key * sizeof(double));
  if (!status.ok()) return status;
  for (size_t t = run.targets_begin; t < run.targets_end; ++t) {
    const size_t i = order[t];
    out[i] = buffer[keys[i] - run.first_key];
  }
  return Status::OK();
}

Status FileStore::DoFetchBatch(std::span<const uint64_t> keys,
                               std::span<double> out, IoStats* io) const {
  if (keys.empty()) return Status::OK();
  if (keys.size() == 1) {
    Result<double> value = DoFetch(keys[0], io);
    if (!value.ok()) return value.status();
    out[0] = *value;
    return Status::OK();
  }
  // Key-sorted order turns scattered point reads into forward-moving,
  // mostly-contiguous reads that the page cache and readahead like.
  std::vector<size_t> order(keys.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&keys](size_t a, size_t b) {
    return keys[a] < keys[b];
  });
  if (keys[order.back()] >= capacity_) {
    return Status::OutOfRange("key " + std::to_string(keys[order.back()]) +
                              " outside file store capacity " +
                              std::to_string(capacity_));
  }

  std::vector<Run> runs;
  for (size_t t = 0; t < order.size(); ++t) {
    const uint64_t key = keys[order[t]];
    if (runs.empty() || key > runs.back().last_key + kMaxCoalesceGap) {
      runs.push_back({key, key, t, t + 1});
    } else {
      runs.back().last_key = std::max(runs.back().last_key, key);
      runs.back().targets_end = t + 1;
    }
  }

  if (keys.size() < kParallelFetchThreshold || runs.size() == 1) {
    for (const Run& run : runs) {
      Status status = ReadRun(run, keys, order, out);
      if (!status.ok()) return status;
    }
    return Status::OK();
  }
  // Parallel path: every run is attempted; the first failure (in run order)
  // wins so the reported Status is deterministic regardless of scheduling.
  std::mutex mu;
  size_t first_bad = runs.size();
  Status first_status = Status::OK();
  ThreadPool::Shared().ParallelFor(
      runs.size(), /*grain=*/std::max<size_t>(1, runs.size() / 64),
      [&](size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          Status status = ReadRun(runs[r], keys, order, out);
          if (!status.ok()) {
            std::lock_guard<std::mutex> lock(mu);
            if (r < first_bad) {
              first_bad = r;
              first_status = std::move(status);
            }
          }
        }
      });
  return first_status;
}

uint64_t FileStore::NumNonZero() const {
  uint64_t count = 0;
  ForEachNonZero([&count](uint64_t, double) { ++count; });
  return count;
}

double FileStore::SumAbs() const {
  double acc = 0.0;
  ForEachNonZero([&acc](uint64_t, double v) { acc += std::abs(v); });
  return acc;
}

void FileStore::ForEachNonZero(
    const std::function<void(uint64_t, double)>& fn) const {
  // Sequential buffered scan (not counted as random-access I/O). Uses the
  // same short-read-tolerant reader as the fetch path: a scan crossing a
  // signal delivery or a page-cache boundary must not demand the whole
  // chunk in one pread.
  constexpr size_t kBatch = 4096;
  std::vector<double> buffer(kBatch);
  uint64_t key = 0;
  while (key < capacity_) {
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(kBatch, capacity_ - key));
    WB_CHECK_OK(
        PreadFully(buffer.data(), want * sizeof(double), key * sizeof(double)));
    for (size_t i = 0; i < want; ++i) {
      if (buffer[i] != 0.0) fn(key + i, buffer[i]);
    }
    key += want;
  }
}

}  // namespace wavebatch
