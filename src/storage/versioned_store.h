#ifndef WAVEBATCH_STORAGE_VERSIONED_STORE_H_
#define WAVEBATCH_STORAGE_VERSIONED_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "storage/coefficient_store.h"
#include "storage/delta_store.h"
#include "util/epoch_ptr.h"
#include "util/thread_pool.h"
#include "wavelet/sparse_vec.h"

namespace wavebatch {

/// One published epoch of the versioned coefficient plane: an immutable
/// `base ⊕ overlay` view. Reads delegate to the base store (preserving its
/// batch strategy, router, and sub-model I/O counters) and then add the
/// overlay's consolidated per-key delta — one floating-point addition per
/// key that streaming ingestion has touched, zero work per untouched key.
/// With a null overlay every read path is pure delegation, so the static
/// (no-ingest) plane is byte-identical to reading the base directly.
///
/// A SnapshotStore never changes after construction: any number of
/// concurrent readers may fetch from it while the owning VersionedStore
/// ingests and merges. It is the object PinVersion() hands to sessions.
///
/// Decorated epoch views come from pinning *through* the decorator:
/// FaultInjectionStore/BlockStore forward PinVersion by re-wrapping the
/// pinned SnapshotStore, so sessions over a decorated versioned plane stay
/// both pinned and decorated. SnapshotStore itself inherits the base-class
/// PinVersion (null: a snapshot is its own snapshot).
class SnapshotStore : public CoefficientStore {
 public:
  /// `base` must be non-null; `overlay` may be null (pure delegation).
  SnapshotStore(uint64_t epoch, std::shared_ptr<const CoefficientStore> base,
                std::shared_ptr<const DeltaOverlay> overlay);

  double Peek(uint64_t key) const override;
  /// Snapshots are immutable; writing aborts. Write through the owning
  /// VersionedStore instead.
  void Add(uint64_t key, double delta) override;
  uint64_t NumNonZero() const override;
  double SumAbs() const override;
  void ForEachNonZero(
      const std::function<void(uint64_t, double)>& fn) const override;
  std::string name() const override { return name_; }
  /// The base store's router: valid because this snapshot keeps its exact
  /// base alive, so hints computed against it stay correct for the
  /// snapshot's lifetime even after the owning VersionedStore merges.
  const KeyRouter* router() const override { return base_->router(); }

  /// The overlay's per-key deltas are exact, so the base's decode error is
  /// the snapshot's decode error.
  double PeekErrorBound(uint64_t key) const override {
    return base_->PeekErrorBound(key);
  }
  bool Lossy() const override { return base_->Lossy(); }

  uint64_t epoch() const { return epoch_; }
  const CoefficientStore& base() const { return *base_; }
  /// Null when this epoch has no unmerged deltas.
  const DeltaOverlay* overlay() const { return overlay_.get(); }

 protected:
  Result<double> DoFetch(uint64_t key, IoStats* io) const override;
  Status DoFetchBatch(std::span<const uint64_t> keys, std::span<double> out,
                      IoStats* io) const override;
  Status DoFetchBatchRouted(std::span<const uint64_t> keys,
                            std::span<const uint32_t> shards,
                            std::span<double> out, IoStats* io) const override;

 private:
  const uint64_t epoch_;
  const std::shared_ptr<const CoefficientStore> base_;
  const std::shared_ptr<const DeltaOverlay> overlay_;
  const std::string name_;
};

struct VersionedStoreOptions {
  /// Folds a sealed overlay into a base store, producing the NEW base for
  /// subsequent epochs. Runs off the writer lock (possibly on a background
  /// thread); it must not mutate `base`, only read it. The default builds a
  /// HashStore: a copy of base with each overlay add folded in by one
  /// addition per key — the same single addition a snapshot read performs,
  /// so the merge is value-preserving bit for bit.
  ///
  /// Sharded planes supply their own merge_fn that rebuilds a ShardedStore
  /// around the same KeyRouter (see versioned_store_test).
  std::function<std::unique_ptr<CoefficientStore>(const CoefficientStore& base,
                                                  const DeltaOverlay& overlay)>
      merge_fn;

  /// Auto-publish a new epoch after this many ingests (Ingest/Add calls)
  /// since the last publish. 0 = publish only when asked. Auto-publishing
  /// bounds the staleness of PinVersion() without a maintenance thread.
  uint64_t publish_every = 0;

  /// Invoked with the new epoch number after every publish — explicit
  /// Publish(), auto-publish (publish_every), and the republish that
  /// completes a merge. Called OUTSIDE the writer lock (the epoch is
  /// already visible to readers), so the callback may call back into the
  /// store; it must be thread-safe, since background merges publish from
  /// pool threads, and must not block on Merge()/WaitForMerge() — a
  /// merge-completion callback fires before its merge is marked complete
  /// (so the store cannot be destroyed mid-callback) and would
  /// self-deadlock. Typical use: drop superseded plans
  /// (`PlanCache::InvalidateStale`) so dead-epoch entries don't linger
  /// until LRU eviction.
  std::function<void(uint64_t epoch)> on_publish;
};

/// The streaming coefficient plane: a read-optimized base store plus an
/// in-memory DeltaStore overlay absorbing tuple-insertion deltas
/// (LinearStrategy::TransformUpdate output), published to readers as
/// immutable epoch snapshots.
///
/// Concurrency contract — the one departure from the base class's
/// "load first, then share read-only" rule:
///   * Any number of reader threads may Fetch/FetchBatch (or pin a
///     snapshot via PinVersion() and read that) concurrently with one or
///     more writer threads calling Ingest/Add/Publish/Merge. Writers are
///     serialized on an internal mutex; readers are wait-free against
///     writers except for the one mutex-guarded pointer pin.
///   * Reads served by this store pin the current published snapshot per
///     call; a session that must see ONE epoch across many calls pins once
///     via PinVersion() (EvalSession does this at construction).
///
/// Epoch lifecycle: ingests accumulate invisibly in the active DeltaStore;
/// Publish() seals `merging ⊕ active` into a fresh SnapshotStore and swaps
/// it in (readers advance at the next pin); Merge() additionally folds the
/// sealed overlay into a NEW base store — built off-lock so readers are
/// never blocked — then swaps the base and republishes. Ingests landing
/// during a merge go to the active overlay and are carried into the
/// post-merge epoch.
///
/// Determinism: each published epoch is a pure function of the event log
/// (the sequence of ingests and publish/merge points). Replaying the same
/// log against a rebuilt plane reproduces every epoch bit for bit — the
/// golden tests rely on exactly this.
class VersionedStore : public CoefficientStore {
 public:
  explicit VersionedStore(std::unique_ptr<CoefficientStore> base,
                          VersionedStoreOptions options = {});
  /// Blocks until any in-flight background merge completes.
  ~VersionedStore() override;

  /// Absorbs one sparse coefficient delta (one tuple insertion as
  /// transformed by a LinearStrategy). Invisible to readers until the next
  /// Publish/Merge. Thread-safe against readers and other writers.
  void Ingest(const SparseVec& delta);

  /// Single-coefficient ingest (the CoefficientStore write seam).
  void Add(uint64_t key, double delta) override;

  /// Seals all unmerged deltas into a new published epoch and returns its
  /// number. Cheap: proportional to the number of distinct unmerged keys.
  uint64_t Publish();

  /// Synchronous merge: seals all unmerged deltas, folds them into a new
  /// base via options.merge_fn, swaps the base, and publishes the
  /// post-merge epoch. Returns the published epoch (the current epoch
  /// unchanged if there was nothing to merge). Readers are never blocked:
  /// the fold runs off the writer lock. Blocks if another merge is already
  /// in flight.
  uint64_t Merge();

  /// Starts Merge()'s fold on `pool` (ThreadPool::Shared() when null) and
  /// returns immediately. Returns false without scheduling anything if a
  /// merge is already in flight or there is nothing to merge. The sealed
  /// cut is taken synchronously, so every ingest before this call is in
  /// the merge and every ingest after it is not.
  bool StartBackgroundMerge(ThreadPool* pool = nullptr);

  /// Blocks until no merge is in flight.
  void WaitForMerge();

  /// The current published epoch's immutable snapshot.
  std::shared_ptr<const SnapshotStore> Snapshot() const {
    return snapshot_.Pin();
  }

  std::shared_ptr<const CoefficientStore> PinVersion() const override {
    return snapshot_.Pin();
  }

  /// Published epoch number (0 = the pristine base, before any publish).
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Distinct unmerged coefficient keys overlaying the base right now
  /// (active plus merging). Takes the writer lock; observability only.
  size_t delta_entries() const;

  /// Authoritative uncounted read: base plus ALL deltas, including
  /// unpublished ones. Takes the writer lock; meant for tests and
  /// maintenance, not hot paths.
  double Peek(uint64_t key) const override;

  /// Aggregates of the current PUBLISHED epoch (unpublished ingests are
  /// not visible here, matching what readers can observe).
  uint64_t NumNonZero() const override;
  double SumAbs() const override;
  void ForEachNonZero(
      const std::function<void(uint64_t, double)>& fn) const override;

  std::string name() const override { return name_; }
  /// Null on purpose: the base store (and with it any router) may be
  /// replaced by a merge, so hints computed against this store could not
  /// honor the router-stability promise. Pin a snapshot and use ITS router
  /// for stable hints.
  const KeyRouter* router() const override { return nullptr; }

  /// Forwarded to the current published snapshot — same view counted reads
  /// pin. Sessions that must see one epoch pin first and ask the snapshot.
  double PeekErrorBound(uint64_t key) const override {
    return snapshot_.Pin()->PeekErrorBound(key);
  }
  bool Lossy() const override { return snapshot_.Pin()->Lossy(); }

 protected:
  /// Counted reads pin the current published snapshot per call and
  /// delegate to it (uncounted inner read; this store's wrapper already
  /// charged the retrievals). Routed hints are NOT forwarded — router() is
  /// null, so hints cannot have been computed against this store; the
  /// inherited DoFetchBatchRouted discards them into DoFetchBatch.
  Result<double> DoFetch(uint64_t key, IoStats* io) const override;
  Status DoFetchBatch(std::span<const uint64_t> keys, std::span<double> out,
                      IoStats* io) const override;

 private:
  /// Seals merging ⊕ active, bumps the epoch, swaps in the new snapshot,
  /// and resets the auto-publish countdown. Caller holds write_mu_.
  uint64_t PublishLocked();
  /// The off-lock fold + locked swap/republish tail shared by Merge and
  /// StartBackgroundMerge.
  void FoldAndSwap(std::shared_ptr<const CoefficientStore> old_base,
                   std::shared_ptr<const DeltaOverlay> overlay);
  /// Returns the epoch it published, or 0 if the auto-publish threshold was
  /// not reached (PublishLocked never returns 0, so 0 is unambiguous).
  uint64_t MaybeAutoPublishLocked();
  /// Fires options_.on_publish for a nonzero epoch. Must be called with
  /// write_mu_ released — the callback may re-enter the store.
  void NotifyPublished(uint64_t epoch) const;

  static std::unique_ptr<CoefficientStore> HashMerge(
      const CoefficientStore& base, const DeltaOverlay& overlay);

  const VersionedStoreOptions options_;
  const std::string name_;

  /// Serializes writers (ingest/publish/merge bookkeeping) and guards
  /// base_, active_, merging_, merge_in_flight_, pending_since_publish_.
  mutable std::mutex write_mu_;
  std::condition_variable merge_cv_;
  std::shared_ptr<const CoefficientStore> base_;
  DeltaStore active_;
  /// Sealed overlay currently being folded into the base, or null. Still
  /// part of every published view until the merge swaps the base.
  std::shared_ptr<const DeltaOverlay> merging_;
  bool merge_in_flight_ = false;
  uint64_t pending_since_publish_ = 0;

  /// The published epoch snapshot readers pin. Swapped atomically by
  /// PublishLocked; never null.
  EpochPtr<SnapshotStore> snapshot_;
  std::atomic<uint64_t> epoch_{0};

  telemetry::Counter* ingests_metric_;
  telemetry::Counter* ingested_entries_metric_;
  telemetry::Counter* publishes_metric_;
  telemetry::Counter* merges_metric_;
  telemetry::Gauge* epoch_gauge_;
  telemetry::Gauge* delta_entries_gauge_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STORAGE_VERSIONED_STORE_H_
