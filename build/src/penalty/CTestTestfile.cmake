# CMake generated Testfile for 
# Source directory: /root/repo/src/penalty
# Build directory: /root/repo/build/src/penalty
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
