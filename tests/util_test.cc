#include <algorithm>
#include <atomic>
#include <future>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "telemetry/metrics.h"
#include "util/bits.h"
#include "util/parallel_sort.h"
#include "util/random.h"
#include "util/status.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace wavebatch {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kFailedPrecondition, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::NotFound("x");
  EXPECT_EQ(os.str(), "NotFound: x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(BitsTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(uint64_t{1} << 63));
  EXPECT_FALSE(IsPowerOfTwo((uint64_t{1} << 63) + 1));
}

TEST(BitsTest, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(1024), 10u);
  EXPECT_EQ(FloorLog2(1025), 10u);
}

TEST(BitsTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
}

TEST(BitsTest, EuclidMod) {
  EXPECT_EQ(EuclidMod(5, 4), 1);
  EXPECT_EQ(EuclidMod(-1, 4), 3);
  EXPECT_EQ(EuclidMod(-4, 4), 0);
  EXPECT_EQ(EuclidMod(-5, 4), 3);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 300; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ZipfSkewsTowardSmallRanks) {
  Rng rng(17);
  const int n = 5000;
  int rank0 = 0, rank_last = 0;
  for (int i = 0; i < n; ++i) {
    uint64_t v = rng.Zipf(16, 1.2);
    EXPECT_LT(v, 16u);
    if (v == 0) ++rank0;
    if (v == 15) ++rank_last;
  }
  EXPECT_GT(rank0, 10 * std::max(rank_last, 1));
}

TEST(RngTest, ZipfZeroExponentIsUniformish) {
  Rng rng(19);
  const int n = 8000;
  std::vector<int> counts(8, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.Zipf(8, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, n / 8, n / 16);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacement) {
  Rng rng(29);
  auto s = rng.SampleWithoutReplacement(100, 20);
  ASSERT_EQ(s.size(), 20u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  EXPECT_EQ(std::set<uint64_t>(s.begin(), s.end()).size(), 20u);
  for (uint64_t x : s) EXPECT_LT(x, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(31);
  auto s = rng.SampleWithoutReplacement(10, 10);
  ASSERT_EQ(s.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(TableTest, PrintAligned) {
  Table t({"a", "bbbb"});
  t.AddRow({"1", "2"});
  t.AddRow({"333", "4"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a   | bbbb |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4    |"), std::string::npos);
}

TEST(TableTest, CsvEscaping) {
  Table t({"x"});
  t.AddRow({"a,b"});
  t.AddRow({"q\"uote"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "x\n\"a,b\"\n\"q\"\"uote\"\n");
}

TEST(TableTest, RowCount) {
  Table t({"x", "y"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(FormatDoubleTest, SignificantDigits) {
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(0.125), "0.125");
  EXPECT_EQ(FormatDouble(1234567.0, 3), "1.23e+06");
}

TEST(ThreadPoolTest, SubmitRunsTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::promise<void> all_done;
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (counter.fetch_add(1) + 1 == kTasks) all_done.set_value();
    });
  }
  all_done.get_future().wait();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), /*grain=*/7, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 16, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSingleChunkRunsInline) {
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.ParallelFor(5, 16, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, ParallelForWorksWithSingleWorker) {
  ThreadPool pool(1);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(100, 3, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 100u * 99u / 2u);
}

TEST(ThreadPoolTest, ParallelForChunkBoundariesIndependentOfThreadCount) {
  // Determinism contract: chunking depends only on (n, grain).
  auto collect = [](ThreadPool& pool) {
    std::mutex mu;
    std::set<std::pair<size_t, size_t>> chunks;
    pool.ParallelFor(50, 8, [&](size_t begin, size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.insert({begin, end});
    });
    return chunks;
  };
  ThreadPool one(1), many(8);
  EXPECT_EQ(collect(one), collect(many));
}

TEST(ThreadPoolTest, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::Shared(), &ThreadPool::Shared());
  EXPECT_GE(ThreadPool::Shared().num_threads(), 1u);
}

TEST(ThreadPoolTest, ParallelForInlineBoundaryIsExactlyGrain) {
  // n <= grain runs inline on the caller; n == grain + 1 must not (it
  // splits into two chunks, and at least one may land on a worker). The
  // inline case is observable by thread identity.
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.ParallelFor(16, /*grain=*/16, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 16u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);

  std::mutex mu;
  std::set<std::pair<size_t, size_t>> chunks;
  pool.ParallelFor(17, /*grain=*/16, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.insert({begin, end});
  });
  const std::set<std::pair<size_t, size_t>> expected = {{0, 16}, {16, 17}};
  EXPECT_EQ(chunks, expected);
}

TEST(ThreadPoolTest, ThrowingTaskLeavesGaugesBalancedAndWorkerAlive) {
  // Regression: the queue-depth gauge pairs one increment per Submit with
  // one decrement per dequeue. A task that threw used to take the worker
  // down (uncaught exception on a thread), after which queued increments
  // were never drained — the gauge read phantom load forever, and server
  // backpressure keyed off it would shed traffic on an idle pool.
  auto& registry = telemetry::MetricsRegistry::Default();
  telemetry::Gauge* depth =
      registry.GetGauge("wavebatch_thread_pool_queue_depth", {});
  telemetry::Counter* exceptions =
      registry.GetCounter("wavebatch_thread_pool_task_exceptions_total", {});
  const double depth_before = depth->Value();
  const uint64_t exceptions_before = exceptions->Value();

  ThreadPool pool(1);
  std::promise<void> done;
  pool.Submit([] { throw std::runtime_error("injected task failure"); });
  pool.Submit([] { throw 42; });  // non-std exceptions must not slip through
  // The single worker can only reach this task by surviving both throws.
  pool.Submit([&] { done.set_value(); });
  done.get_future().wait();

  EXPECT_EQ(exceptions->Value(), exceptions_before + 2);
  EXPECT_DOUBLE_EQ(depth->Value(), depth_before);
}

TEST(ThreadPoolTest, ParallelForRethrowsChunkExceptionOnCaller) {
  // Every chunk must count as done even when fn throws — otherwise the
  // caller deadlocks waiting for the lost chunk — and the first exception
  // surfaces on the calling thread, never on a worker.
  ThreadPool pool(4);
  std::atomic<size_t> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(100, /*grain=*/10,
                       [&](size_t begin, size_t) {
                         ran.fetch_add(1);
                         if (begin == 30) throw std::runtime_error("chunk 30");
                       }),
      std::runtime_error);
  EXPECT_EQ(ran.load(), 10u);  // later chunks still ran

  // The pool stays fully usable afterwards.
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(100, 3, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 100u * 99u / 2u);
}

TEST(ThreadPoolTest, ParallelForDefaultGrainOverload) {
  // The two-argument overload chunks by kDefaultGrain: a range within the
  // default grain runs inline as one call; a larger one is split on
  // kDefaultGrain boundaries.
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  size_t calls = 0;
  pool.ParallelFor(ThreadPool::kDefaultGrain, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, ThreadPool::kDefaultGrain);
    ran_on = std::this_thread::get_id();
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(ran_on, caller);

  std::mutex mu;
  std::set<std::pair<size_t, size_t>> chunks;
  pool.ParallelFor(2 * ThreadPool::kDefaultGrain + 1,
                   [&](size_t begin, size_t end) {
                     std::lock_guard<std::mutex> lock(mu);
                     chunks.insert({begin, end});
                   });
  const std::set<std::pair<size_t, size_t>> expected = {
      {0, ThreadPool::kDefaultGrain},
      {ThreadPool::kDefaultGrain, 2 * ThreadPool::kDefaultGrain},
      {2 * ThreadPool::kDefaultGrain, 2 * ThreadPool::kDefaultGrain + 1}};
  EXPECT_EQ(chunks, expected);
}

TEST(ParallelSortTest, MatchesSerialSortExactly) {
  // The comparator is a strict total order (values are distinct), so the
  // parallel result must equal std::sort element for element — at sizes
  // straddling the grain so both the serial fallback and the chunked merge
  // path are exercised.
  ThreadPool pool(4);
  for (size_t n : {0ul, 1ul, 100ul, 1000ul, 5000ul}) {
    Rng rng(n + 1);
    std::vector<uint64_t> values(n);
    for (uint64_t& v : values) v = rng.Next();
    std::vector<uint64_t> expected = values;
    std::sort(expected.begin(), expected.end());
    std::vector<uint64_t> actual = values;
    ParallelSort(actual.begin(), actual.size(),
                 std::less<uint64_t>(), &pool, /*grain=*/256);
    EXPECT_EQ(actual, expected) << "n=" << n;
  }
}

TEST(ParallelSortTest, IdenticalWithAndWithoutPool) {
  Rng rng(77);
  std::vector<uint64_t> values(4096);
  for (uint64_t& v : values) v = rng.Next();
  std::vector<uint64_t> serial = values;
  ParallelSort(serial.begin(), serial.size(), std::less<uint64_t>(),
               /*pool=*/nullptr, /*grain=*/128);
  ThreadPool pool(3);
  std::vector<uint64_t> parallel = values;
  ParallelSort(parallel.begin(), parallel.size(), std::less<uint64_t>(),
               &pool, /*grain=*/128);
  EXPECT_EQ(serial, parallel);
}

TEST(MergeSortedRunsTest, StableAcrossRuns) {
  // Three pre-sorted runs with colliding keys; the comparator sees only
  // the key, so ties must keep run order — this is the property the
  // master-list merge uses to get the (key, query) order without ever
  // comparing queries.
  struct Row {
    uint64_t key;
    uint32_t run;
    bool operator==(const Row& o) const {
      return key == o.key && run == o.run;
    }
  };
  std::vector<Row> rows = {
      // run 0
      {1, 0}, {5, 0}, {9, 0},
      // run 1
      {1, 1}, {9, 1},
      // run 2
      {5, 2}, {9, 2},
  };
  const std::vector<size_t> bounds = {0, 3, 5, 7};
  ThreadPool pool(2);
  MergeSortedRuns(rows.begin(), bounds,
                  [](const Row& a, const Row& b) { return a.key < b.key; },
                  &pool);
  const std::vector<Row> expected = {
      {1, 0}, {1, 1}, {5, 0}, {5, 2}, {9, 0}, {9, 1}, {9, 2}};
  EXPECT_EQ(rows, expected);
}

TEST(MergeSortedRunsTest, HandlesOddRunCountsAndEmptyRuns) {
  Rng rng(5);
  // Seven runs (odd at multiple levels of the merge tree), some empty.
  std::vector<size_t> sizes = {13, 0, 7, 1, 0, 29, 4};
  std::vector<size_t> bounds = {0};
  std::vector<uint64_t> values;
  for (size_t s : sizes) {
    std::vector<uint64_t> run(s);
    for (uint64_t& v : run) v = rng.Next() % 50;
    std::sort(run.begin(), run.end());
    values.insert(values.end(), run.begin(), run.end());
    bounds.push_back(values.size());
  }
  std::vector<uint64_t> expected = values;
  std::sort(expected.begin(), expected.end());
  ThreadPool pool(3);
  MergeSortedRuns(values.begin(), bounds, std::less<uint64_t>(), &pool);
  EXPECT_EQ(values, expected);
}

}  // namespace
}  // namespace wavebatch
