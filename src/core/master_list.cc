#include "core/master_list.h"

#include <algorithm>

#include "util/check.h"
#include "util/thread_pool.h"

namespace wavebatch {

Result<MasterList> MasterList::Build(const QueryBatch& batch,
                                     const LinearStrategy& strategy) {
  // The per-query sparse transforms are independent and read-only on the
  // strategy, so they fan out across the shared pool; each slot is written
  // by exactly one chunk, keeping results identical to the serial loop.
  std::vector<Result<SparseVec>> transformed(batch.size(),
                                             Result<SparseVec>(SparseVec{}));
  ThreadPool::Shared().ParallelFor(
      batch.size(), /*grain=*/8, [&](size_t begin, size_t end) {
        for (size_t qi = begin; qi < end; ++qi) {
          transformed[qi] = strategy.TransformQuery(batch.query(qi));
        }
      });
  std::vector<SparseVec> query_coefficients;
  query_coefficients.reserve(batch.size());
  for (Result<SparseVec>& r : transformed) {
    if (!r.ok()) return r.status();
    query_coefficients.push_back(std::move(r).value());
  }
  return FromQueryVectors(query_coefficients);
}

MasterList MasterList::FromQueryVectors(
    const std::vector<SparseVec>& query_coefficients) {
  MasterList list;
  list.num_queries_ = query_coefficients.size();
  list.per_query_coefficients_.reserve(query_coefficients.size());

  // Flatten to (key, query, value) triples and sort by (key, query).
  struct Triple {
    uint64_t key;
    uint32_t query;
    double value;
  };
  std::vector<Triple> triples;
  uint64_t total = 0;
  for (uint32_t qi = 0; qi < query_coefficients.size(); ++qi) {
    const SparseVec& v = query_coefficients[qi];
    list.per_query_coefficients_.push_back(v.size());
    total += v.size();
  }
  triples.reserve(total);
  for (uint32_t qi = 0; qi < query_coefficients.size(); ++qi) {
    for (const SparseEntry& e : query_coefficients[qi]) {
      triples.push_back({e.key, qi, e.value});
    }
  }
  list.total_coefficients_ = total;
  std::sort(triples.begin(), triples.end(),
            [](const Triple& a, const Triple& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.query < b.query;
            });
  for (const Triple& t : triples) {
    if (list.entries_.empty() || list.entries_.back().key != t.key) {
      list.entries_.push_back({t.key, {}});
    }
    list.entries_.back().uses.emplace_back(t.query, t.value);
  }
  return list;
}

size_t MasterList::MaxSharing() const {
  size_t m = 0;
  for (const MasterEntry& e : entries_) m = std::max(m, e.uses.size());
  return m;
}

}  // namespace wavebatch
