# Empty compiler generated dependencies file for bench_ablation_orders.
# This may be replaced when dependencies are built.
