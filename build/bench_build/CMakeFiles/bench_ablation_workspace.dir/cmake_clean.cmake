file(REMOVE_RECURSE
  "../bench/bench_ablation_workspace"
  "../bench/bench_ablation_workspace.pdb"
  "CMakeFiles/bench_ablation_workspace.dir/bench_ablation_workspace.cc.o"
  "CMakeFiles/bench_ablation_workspace.dir/bench_ablation_workspace.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_workspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
