file(REMOVE_RECURSE
  "libwavebatch_data.a"
)
