#ifndef WAVEBATCH_STORAGE_FILE_STORE_H_
#define WAVEBATCH_STORAGE_FILE_STORE_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "storage/coefficient_store.h"
#include "util/status.h"

namespace wavebatch {

/// Knobs for the counted read path. Transient failures (EINTR, EAGAIN, and
/// flaky-media errno like EIO) are retried with linear backoff before the
/// fetch gives up and reports a Status; short reads are not failures at all
/// (the read simply continues where it stopped).
struct FileStoreOptions {
  /// Total attempts per positioned read before the error is reported.
  int max_read_attempts = 3;
  /// Sleep between attempts, multiplied by the attempt number.
  std::chrono::microseconds retry_backoff{100};
  /// Latency injected before every positioned read on the *counted* path
  /// (one per scalar fetch, one per coalesced run of a batch), modeling the
  /// seek/queue delay of the device behind this store. 0 (the default)
  /// injects nothing. The sharded bench uses this to model one independent
  /// device per shard: concurrent shards overlap their seeks, which is
  /// precisely the latency sharding buys on real hardware. Peek and the
  /// sequential scans stay latency-free (they are the uncounted paths).
  std::chrono::microseconds simulated_seek_latency{0};
};

/// A coefficient store backed by a binary file on disk — the paper's
/// "stored with reasonable random-access cost" made literal. The file is a
/// flat array of little-endian doubles indexed by key; Peek/Fetch issue a
/// positioned read (pread) per coefficient, Add a read-modify-write.
///
/// FetchBatch is where this backend earns its keep: keys are sorted, runs
/// of nearby keys are coalesced into single positioned reads, and large
/// batches spread their reads across the shared ThreadPool (pread is
/// thread-safe on one descriptor). Retrievals are still counted per
/// coefficient — coalescing changes syscalls, not the paper's cost model.
///
/// The counted path (Fetch/FetchBatch) is fault-tolerant: unexpected EOF,
/// exhausted retries, and out-of-capacity keys come back as a non-OK
/// Status. Peek remains the trusted uncounted path and aborts on
/// corruption.
///
/// This is the reference implementation for measuring real random-access
/// behavior; production deployments would add a buffer pool (compose with
/// BlockStore for the simulated version).
class FileStore : public CoefficientStore {
 public:
  /// Creates (truncates) `path` holding `values` and opens a store on it.
  static Result<std::unique_ptr<FileStore>> Create(
      const std::string& path, const std::vector<double>& values,
      FileStoreOptions options = FileStoreOptions());

  /// Opens an existing store file; capacity is derived from the file size
  /// (must be a multiple of sizeof(double)).
  static Result<std::unique_ptr<FileStore>> Open(
      const std::string& path, FileStoreOptions options = FileStoreOptions());

  ~FileStore() override;

  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  double Peek(uint64_t key) const override;
  void Add(uint64_t key, double delta) override;
  uint64_t NumNonZero() const override;
  double SumAbs() const override;
  void ForEachNonZero(
      const std::function<void(uint64_t, double)>& fn) const override;
  std::string name() const override { return "file"; }

  uint64_t capacity() const { return capacity_; }
  const std::string& path() const { return path_; }
  const FileStoreOptions& options() const { return options_; }

 protected:
  Result<double> DoFetch(uint64_t key, IoStats* io) const override;
  Status DoFetchBatch(std::span<const uint64_t> keys, std::span<double> out,
                      IoStats* io) const override;

 private:
  /// One coalesced read covering file keys [first_key, last_key]; `targets`
  /// lists (key, out index) pairs to scatter from the read buffer.
  struct Run {
    uint64_t first_key;
    uint64_t last_key;
    size_t targets_begin;  // range into the batch's key-sorted index order
    size_t targets_end;
  };

  /// Reads exactly `len` bytes at `offset`, looping on short reads and
  /// retrying transient errors per `options_`. Distinguishes unexpected
  /// EOF (pread returning 0) from read errors in the Status message.
  Status PreadFully(void* buf, size_t len, uint64_t offset) const;

  /// Sleeps options_.simulated_seek_latency (no-op at the 0 default).
  void SimulateSeek() const;

  /// Reads `run` with one coalesced positioned read and scatters into `out`
  /// via `order` (indices into keys/out, sorted by key).
  Status ReadRun(const Run& run, std::span<const uint64_t> keys,
                 std::span<const size_t> order, std::span<double> out) const;

  FileStore(std::string path, int fd, uint64_t capacity,
            FileStoreOptions options)
      : path_(std::move(path)),
        fd_(fd),
        capacity_(capacity),
        options_(options) {}

  std::string path_;
  int fd_;
  uint64_t capacity_;
  FileStoreOptions options_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STORAGE_FILE_STORE_H_
