#include "engine/eval_session.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>

#include "engine/kernel_tiers.h"
#include "storage/key_router.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/check.h"

namespace wavebatch {

std::shared_ptr<const CoefficientStore> UnownedStore(
    const CoefficientStore& store) {
  return std::shared_ptr<const CoefficientStore>(
      &store, [](const CoefficientStore*) {});
}

struct EvalSession::Telemetry {
  telemetry::Labels labels;
  telemetry::Gauge* steps_taken;
  telemetry::Gauge* remaining_importance;
  telemetry::Gauge* worst_case_bound;
  telemetry::Gauge* skipped_importance;

  explicit Telemetry(uint64_t session_id)
      : labels{{"session", std::to_string(session_id)}} {
    auto& registry = telemetry::MetricsRegistry::Default();
    steps_taken = registry.GetGauge(
        "wavebatch_session_steps_taken", labels,
        "Coefficients consumed by this session so far.");
    remaining_importance = registry.GetGauge(
        "wavebatch_session_remaining_importance", labels,
        "Importance mass of the not-yet-fetched tail (Theorem 2's sum).");
    worst_case_bound = registry.GetGauge(
        "wavebatch_session_worst_case_bound", labels,
        "Theorem 1 worst-case penalty bound at the last WorstCaseBound().");
    skipped_importance = registry.GetGauge(
        "wavebatch_session_skipped_importance", labels,
        "Importance mass consumed without data under FaultPolicy::kSkip.");
  }

  // The session is the sole creator of these series, so it may Remove()
  // them: a finished session leaves no stale gauges in the export.
  ~Telemetry() {
    auto& registry = telemetry::MetricsRegistry::Default();
    registry.Remove("wavebatch_session_steps_taken", labels);
    registry.Remove("wavebatch_session_remaining_importance", labels);
    registry.Remove("wavebatch_session_worst_case_bound", labels);
    registry.Remove("wavebatch_session_skipped_importance", labels);
  }
};

EvalSession::EvalSession(std::shared_ptr<const EvalPlan> plan,
                         std::shared_ptr<const CoefficientStore> store,
                         Options options)
    : plan_(std::move(plan)),
      store_(std::move(store)),
      options_(std::move(options)) {
  WB_CHECK(plan_ != nullptr);
  WB_CHECK(store_ != nullptr);
  // Epoch pinning: a store whose contents advance in epochs
  // (VersionedStore) hands back an immutable snapshot of the epoch current
  // *now*; every read this session ever issues — including retries and
  // resume-after-fault, which may happen long after — goes to that one
  // version, so interleaved ingests and merges can never tear a
  // progressive run. Stores that are their own snapshot return null and
  // are used directly.
  if (std::shared_ptr<const CoefficientStore> pinned = store_->PinVersion()) {
    store_ = std::move(pinned);
  }
  kernel_ = plan_->kernel();
  // Resolve the apply-kernel tier once: every batched apply this session
  // runs uses it (all tiers are bit-identical; see engine/kernel_tiers.h).
  if (options_.kernel_tier.has_value()) {
    tier_ = *options_.kernel_tier;
    WB_CHECK(KernelTierUsable(tier_))
        << "requested kernel tier " << KernelTierName(tier_)
        << " is not usable on this host/build";
  } else {
    tier_ = BestKernelTier();
  }
  // Lossy-store gate: checked on the PINNED store (the view this session
  // actually reads). Exact stores keep the zero-overhead path.
  lossy_ = store_->Lossy();
  if (plan_->HasImportance()) {
    inv_alpha_ = 1.0 / plan_->penalty()->HomogeneityDegree();
  }
  if (const KeyRouter* router = store_->router();
      router != nullptr && router->num_shards() > 1) {
    entry_shards_.resize(plan_->size());
    for (size_t i = 0; i < entry_shards_.size(); ++i) {
      entry_shards_[i] = router->ShardOf(kernel_.keys[i]);
    }
  }
  if (telemetry::Enabled()) {
    static std::atomic<uint64_t> next_session_id{1};
    telemetry_ = std::make_unique<Telemetry>(
        next_session_id.fetch_add(1, std::memory_order_relaxed));
  }
  estimates_.assign(plan_->num_queries(), 0.0);
  if (plan_->HasImportance()) {
    remaining_importance_ = plan_->total_importance();
  }

  if (options_.block_of) {
    // Group entries by block in first-appearance order; a block's
    // importance is the sum of its members' (additive in Theorem 2's
    // expected-penalty sum), accumulated in entry order.
    WB_CHECK(plan_->HasImportance())
        << "block granularity needs a penalty to rank blocks";
    const MasterList& list = plan_->list();
    std::unordered_map<uint64_t, size_t> block_index;
    for (size_t i = 0; i < list.size(); ++i) {
      const uint64_t block_id = options_.block_of(list.keys()[i]);
      auto [it, inserted] = block_index.try_emplace(block_id, blocks_.size());
      if (inserted) blocks_.push_back({block_id, 0.0, {}});
      Block& block = blocks_[it->second];
      block.importance += plan_->importance(i);
      block.entries.push_back(i);
    }
    // A max-heap of (importance, index) pops in descending pair order;
    // sorting the distinct pairs descending reproduces that sequence.
    block_order_.resize(blocks_.size());
    for (size_t b = 0; b < blocks_.size(); ++b) block_order_[b] = b;
    std::sort(block_order_.begin(), block_order_.end(),
              [this](size_t a, size_t b) {
                return std::make_pair(blocks_[a].importance, a) >
                       std::make_pair(blocks_[b].importance, b);
              });
    UpdateTelemetry();
    return;
  }

  if (options_.order == ProgressionOrder::kRandom) {
    owned_permutation_ = plan_->RandomPermutation(options_.seed);
    permutation_ = owned_permutation_;
  } else {
    permutation_ = plan_->Permutation(options_.order);
  }
  UpdateTelemetry();
}

EvalSession::~EvalSession() = default;
EvalSession::EvalSession(EvalSession&&) noexcept = default;
EvalSession& EvalSession::operator=(EvalSession&&) noexcept = default;

void EvalSession::UpdateTelemetry() {
  if (telemetry_ == nullptr || !telemetry::Enabled()) return;
  telemetry_->steps_taken->Set(static_cast<double>(steps_taken_));
  telemetry_->remaining_importance->Set(remaining_importance_);
  telemetry_->skipped_importance->Set(skipped_importance_);
}

bool EvalSession::Done() const {
  if (options_.block_of) return blocks_fetched_ == blocks_.size();
  return steps_taken_ == TotalSteps();
}

size_t EvalSession::PeekUpcomingKeys(size_t n, std::vector<uint64_t>* out) const {
  size_t appended = 0;
  if (options_.block_of) {
    for (uint64_t b = blocks_fetched_; b < blocks_.size() && appended < n;
         ++b) {
      for (size_t entry_idx : blocks_[block_order_[b]].entries) {
        out->push_back(kernel_.keys[entry_idx]);
        ++appended;
      }
    }
    return appended;
  }
  const size_t end = std::min(TotalSteps(), steps_taken_ + n);
  for (size_t i = steps_taken_; i < end; ++i) {
    out->push_back(kernel_.keys[permutation_[i]]);
    ++appended;
  }
  return appended;
}

void EvalSession::ApplyEntry(size_t entry_idx, double data) {
  kernel_.ApplyOne(entry_idx, data, estimates_.data());
}

void EvalSession::ConsumeImportance(size_t entry_idx) {
  kernel_.ConsumeImportance(entry_idx, &remaining_importance_);
}

void EvalSession::SkipEntry(size_t entry_idx) {
  ++skipped_coefficients_;
  if (plan_->HasImportance()) {
    // The skipped mass stays in remaining_importance_ (it is still an
    // unused coefficient for Theorem 2) and additionally accumulates here
    // so Theorem 1's bound can be widened by it.
    skipped_importance_ += plan_->importance(entry_idx);
  }
}

void EvalSession::AccumulateQuantError(const size_t* order, size_t n) {
  if (!lossy_ || !plan_->HasImportance()) return;
  // Each retrieved coefficient may be off by up to the store's per-key
  // decode bound ε_ξ; in the penalty's α-norm geometry that adds
  // ε_ξ · ι_p(ξ)^(1/α) to the error mass (see WorstCaseBound). Skipped
  // entries are excluded — their widening goes through skipped_importance_.
  for (size_t i = 0; i < n; ++i) {
    const size_t entry_idx = order[i];
    const double err = store_->PeekErrorBound(kernel_.keys[entry_idx]);
    if (err > 0.0) {
      quant_error_l1_ +=
          err * std::pow(plan_->importance(entry_idx), inv_alpha_);
    }
  }
}

Result<size_t> EvalSession::Step() {
  WB_CHECK(!options_.block_of) << "Step() on a block-granularity session";
  WB_CHECK(!Done()) << "Step() after completion";
  const size_t entry_idx = permutation_[steps_taken_];
  // Fetch BEFORE any bookkeeping: a failed fetch must leave the session
  // exactly as it was (resumable), so the cursor and trackers only move
  // once the data is in hand (or the fault is absorbed under kSkip).
  Result<double> data = store_->Fetch(kernel_.keys[entry_idx], &io_);
  if (!data.ok()) {
    if (options_.fault_policy == FaultPolicy::kFail) return data.status();
    ++steps_taken_;
    SkipEntry(entry_idx);
    UpdateTelemetry();
    return entry_idx;
  }
  ++steps_taken_;
  ConsumeImportance(entry_idx);
  ApplyEntry(entry_idx, *data);
  AccumulateQuantError(&entry_idx, 1);
  UpdateTelemetry();
  return entry_idx;
}

Status EvalSession::StepMany(size_t n) {
  for (size_t i = 0; i < n && !Done(); ++i) {
    Result<size_t> step = Step();
    if (!step.ok()) return step.status();
  }
  return Status::OK();
}

Status EvalSession::BatchFetch(const size_t* order, size_t n) {
  batch_keys_.resize(n);
  kernel_.GatherKeys(order, n, batch_keys_.data());
  batch_values_.resize(n);
  if (entry_shards_.empty()) {
    return store_->FetchBatch(batch_keys_, batch_values_, &io_);
  }
  batch_shards_.resize(n);
  kernel_.GatherShards(order, n, entry_shards_.data(), batch_shards_.data());
  return store_->FetchBatchRouted(batch_keys_, batch_shards_, batch_values_,
                                  &io_);
}

Result<size_t> EvalSession::StepBatch(size_t n) {
  WB_CHECK(!options_.block_of) << "StepBatch() on a block-granularity session";
  n = std::min<size_t>(n, TotalSteps() - StepsTaken());
  if (n == 0) return static_cast<size_t>(0);
  telemetry::ScopedSpan span("session_step");
  const size_t* order = permutation_.data() + steps_taken_;
  Status status = BatchFetch(order, n);
  if (!status.ok()) {
    if (options_.fault_policy == FaultPolicy::kFail) return status;
    // Degraded fallback: the all-or-nothing batch failed, so refetch key by
    // key and skip only the ones that are genuinely unavailable. Retrieval
    // accounting matches: the failed batch charged nothing, each scalar
    // success charges one.
    for (size_t i = 0; i < n; ++i) {
      const size_t entry_idx = order[i];
      Result<double> value = store_->Fetch(batch_keys_[i], &io_);
      ++steps_taken_;
      if (!value.ok()) {
        SkipEntry(entry_idx);
        continue;
      }
      ConsumeImportance(entry_idx);
      ApplyEntry(entry_idx, *value);
      AccumulateQuantError(&entry_idx, 1);
    }
    UpdateTelemetry();
    return n;
  }
  steps_taken_ += n;
  // Fused apply in consumption order: the identical floating-point
  // accumulation sequence a scalar Step() loop would produce, on whichever
  // execution tier the session resolved (bit-identical across tiers).
  ApplyOrderedSliceTiered(kernel_, tier_, order, n, batch_values_.data(),
                          estimates_.data(), &remaining_importance_);
  AccumulateQuantError(order, n);
  UpdateTelemetry();
  return n;
}

Status EvalSession::RunToExact() {
  if (options_.block_of) {
    while (!Done()) {
      Result<size_t> block = StepBlock();
      if (!block.ok()) return block.status();
    }
    return Status::OK();
  }
  while (!Done()) {
    Result<size_t> batch = StepBatch(options_.run_chunk);
    if (!batch.ok()) return batch.status();
  }
  return Status::OK();
}

Result<size_t> EvalSession::StepBlock() {
  WB_CHECK(options_.block_of) << "StepBlock() on a coefficient session";
  WB_CHECK(!Done()) << "StepBlock() after completion";
  telemetry::ScopedSpan span("session_step");
  const Block& block = blocks_[block_order_[blocks_fetched_]];
  const size_t count = block.entries.size();
  // One batched fetch per block — on a BlockStore backend this touches the
  // underlying block exactly once, matching the simulated cost model.
  Status status = BatchFetch(block.entries.data(), count);
  if (!status.ok()) {
    if (options_.fault_policy == FaultPolicy::kFail) return status;
    // Degraded fallback, per key (see StepBatch). The block is consumed
    // either way; only the unavailable members are skipped.
    ++blocks_fetched_;
    for (size_t i = 0; i < count; ++i) {
      const size_t entry_idx = block.entries[i];
      Result<double> value = store_->Fetch(batch_keys_[i], &io_);
      ++steps_taken_;
      if (!value.ok()) {
        SkipEntry(entry_idx);
        continue;
      }
      ++coefficients_fetched_;
      ConsumeImportance(entry_idx);
      ApplyEntry(entry_idx, *value);
      AccumulateQuantError(&entry_idx, 1);
    }
    UpdateTelemetry();
    return count;
  }
  ++blocks_fetched_;
  coefficients_fetched_ += count;
  steps_taken_ += count;
  ApplyOrderedSliceTiered(kernel_, tier_, block.entries.data(), count,
                          batch_values_.data(), estimates_.data(),
                          &remaining_importance_);
  AccumulateQuantError(block.entries.data(), count);
  UpdateTelemetry();
  return count;
}

Status EvalSession::StepToBlocks(uint64_t n) {
  while (!Done() && blocks_fetched_ < n) {
    Result<size_t> block = StepBlock();
    if (!block.ok()) return block.status();
  }
  return Status::OK();
}

double EvalSession::NextBlockImportance() const {
  if (Done()) return 0.0;
  return blocks_[block_order_[blocks_fetched_]].importance;
}

double EvalSession::NextImportance() const {
  if (Done()) return 0.0;
  if (options_.block_of) return NextBlockImportance();
  return plan_->importance(permutation_[steps_taken_]);
}

double EvalSession::WorstCaseBound(double k_sum_abs) const {
  WB_CHECK(plan_->HasImportance());
  // Degraded runs widen the bound by the skipped mass: a coefficient we
  // could not read is bounded by K in magnitude exactly like one we have
  // not read yet, but it never leaves the unknown set.
  const double alpha = plan_->penalty()->HomogeneityDegree();
  double bound =
      std::pow(k_sum_abs, alpha) * (NextImportance() + skipped_importance_);
  if (quant_error_l1_ > 0.0) {
    // Lossy reads: the already-applied coefficients carry decode error too.
    // Combine in the penalty's α-norm geometry — the 1/α-th roots of the
    // per-source worst cases add (triangle inequality), then raise back:
    //   bound = (tail^(1/α) + Σ ε_ξ·ι_p(ξ)^(1/α))^α.
    // For α = 1 this is exactly tail + Σ ε·ι. Guarded so exact stores
    // return the untouched legacy expression bit for bit.
    bound = std::pow(std::pow(bound, inv_alpha_) + quant_error_l1_, alpha);
  }
  if (telemetry_ != nullptr && telemetry::Enabled()) {
    telemetry_->worst_case_bound->Set(bound);
  }
  return bound;
}

double EvalSession::ExpectedPenalty(uint64_t domain_cells) const {
  WB_CHECK_GT(domain_cells, 0u);
  // remaining_importance_ is clamped at subtraction time; the max here is
  // belt and braces for older serialized sessions.
  const double remaining = std::max(remaining_importance_, 0.0);
  return remaining / static_cast<double>(domain_cells);
}

}  // namespace wavebatch
