#ifndef WAVEBATCH_STORAGE_FILE_STORE_H_
#define WAVEBATCH_STORAGE_FILE_STORE_H_

#include <memory>
#include <string>

#include "storage/coefficient_store.h"
#include "util/status.h"

namespace wavebatch {

/// A coefficient store backed by a binary file on disk — the paper's
/// "stored with reasonable random-access cost" made literal. The file is a
/// flat array of little-endian doubles indexed by key; Peek/Fetch issue a
/// positioned read (pread) per coefficient, Add a read-modify-write.
///
/// This is the reference implementation for measuring real random-access
/// behavior; production deployments would add a buffer pool (compose with
/// BlockStore for the simulated version).
class FileStore : public CoefficientStore {
 public:
  /// Creates (truncates) `path` holding `values` and opens a store on it.
  static Result<std::unique_ptr<FileStore>> Create(
      const std::string& path, const std::vector<double>& values);

  /// Opens an existing store file; capacity is derived from the file size
  /// (must be a multiple of sizeof(double)).
  static Result<std::unique_ptr<FileStore>> Open(const std::string& path);

  ~FileStore() override;

  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  double Peek(uint64_t key) const override;
  void Add(uint64_t key, double delta) override;
  uint64_t NumNonZero() const override;
  double SumAbs() const override;
  void ForEachNonZero(
      const std::function<void(uint64_t, double)>& fn) const override;
  std::string name() const override { return "file"; }

  uint64_t capacity() const { return capacity_; }
  const std::string& path() const { return path_; }

 private:
  FileStore(std::string path, int fd, uint64_t capacity)
      : path_(std::move(path)), fd_(fd), capacity_(capacity) {}

  std::string path_;
  int fd_;
  uint64_t capacity_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STORAGE_FILE_STORE_H_
