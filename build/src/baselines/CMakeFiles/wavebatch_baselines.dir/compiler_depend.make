# Empty compiler generated dependencies file for wavebatch_baselines.
# This may be replaced when dependencies are built.
