#ifndef WAVEBATCH_UTIL_PREFETCH_H_
#define WAVEBATCH_UTIL_PREFETCH_H_

/// Software-prefetch hint shared by the hot gather/apply loops. Feature-gated
/// rather than vendor-gated: a compiler that reports __has_builtin but lacks
/// __builtin_prefetch (or reports neither) gets a no-op, so the scalar tier
/// builds everywhere. Unlike the historical WAVEBATCH_PREFETCH (which was
/// #undef'd at the end of its header), WB_PREFETCH is a durable macro — the
/// per-ISA kernel translation units share it.
#if defined(__has_builtin)
#if __has_builtin(__builtin_prefetch)
#define WB_PREFETCH(addr) __builtin_prefetch(addr)
#endif
#elif defined(__GNUC__)
#define WB_PREFETCH(addr) __builtin_prefetch(addr)
#endif

#ifndef WB_PREFETCH
#define WB_PREFETCH(addr) ((void)0)
#endif

#endif  // WAVEBATCH_UTIL_PREFETCH_H_
