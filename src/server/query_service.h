#ifndef WAVEBATCH_SERVER_QUERY_SERVICE_H_
#define WAVEBATCH_SERVER_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/eval_session.h"
#include "engine/plan_cache.h"
#include "query/batch.h"
#include "server/shared_fetch.h"
#include "storage/coefficient_store.h"
#include "strategy/linear_strategy.h"
#include "telemetry/metrics.h"
#include "telemetry/timeline.h"
#include "telemetry/trace.h"
#include "util/status.h"

namespace wavebatch::server {

/// One client request: a query batch plus how much progress it needs and by
/// when. Every budget is optional — with none set the request runs to
/// exactness.
struct QueryRequest {
  explicit QueryRequest(QueryBatch batch_in) : batch(std::move(batch_in)) {}

  QueryBatch batch;
  /// Drives the progression order and the Theorem-1 bound. Null = exact
  /// only (key order, no early stop on target_bound).
  std::shared_ptr<const PenaltyFunction> penalty;
  FaultPolicy fault_policy = FaultPolicy::kFail;
  /// Complete early once WorstCaseBound() <= target_bound (requires a
  /// penalty). 0 = run to exact.
  double target_bound = 0.0;
  /// Complete (possibly approximate, with valid progressive bounds) within
  /// this much time of admission. Zero = no deadline.
  std::chrono::microseconds deadline{0};
  /// Coefficients per scheduling quantum; 0 = service default.
  size_t quantum = 0;
};

struct QueryResponse {
  Status status = Status::OK();
  /// Progressive estimates at completion (exact when `exact`).
  std::vector<double> estimates;
  /// Theorem-1 worst-case penalty bound at completion (0 without penalty).
  double worst_case_bound = 0.0;
  uint64_t steps_taken = 0;
  uint64_t total_steps = 0;
  uint64_t skipped_coefficients = 0;
  /// Per-session I/O accounting — identical to an isolated run of the same
  /// batch; cross-session sharing changes backend traffic, never this.
  IoStats io;
  bool exact = false;
  bool deadline_expired = false;
  /// Pin generation this request was served at (bumps on RefreshEpoch).
  uint64_t generation = 0;
  /// Admission-to-completion wall time.
  std::chrono::microseconds latency{0};
  /// Trace identity minted at Submit (0 when the request was never
  /// admitted). Every span the service recorded for this request carries
  /// these ids; /tracez groups by trace_id.
  uint64_t request_id = 0;
  uint64_t trace_id = 0;
  /// Bound-convergence timeline: one point per scheduler quantum (stride-
  /// decimated, see telemetry::ConvergenceTimeline) plus a final point at
  /// completion — the request's error-vs-I/O curve. Empty when telemetry
  /// was disabled throughout.
  std::vector<telemetry::TimelinePoint> timeline;
};

/// Invoked exactly once per admitted request, outside the service lock (it
/// may re-enter Submit). Requests shed at admission never get a callback —
/// Submit's Status is the only signal.
using ResponseCallback = std::function<void(QueryResponse)>;

struct QueryServiceOptions {
  /// Admission queue bound: Submit sheds (kUnavailable) beyond this depth.
  size_t max_queue_depth = 256;
  /// Concurrently live (admitted, stepping) sessions.
  size_t max_live_sessions = 32;
  /// Default per-quantum coefficient count for requests with quantum == 0.
  size_t default_quantum = 256;
  /// Shed admissions while the process-wide thread-pool queue gauge
  /// (wavebatch_thread_pool_queue_depth) exceeds this. 0 = disabled. This
  /// is the cross-subsystem backpressure signal: merges and parallel plan
  /// builds share those pools, and a serving layer must not pile new work
  /// onto a machine that is already behind.
  double pool_queue_shed_threshold = 0.0;
  /// Plan cache to use; null = a private cache of this capacity.
  std::shared_ptr<PlanCache> plan_cache;
  size_t plan_cache_capacity = 64;
  /// Per-request convergence-timeline ring capacity (points retained after
  /// stride decimation).
  size_t timeline_capacity = 256;
  /// Completed-request timelines retained for /tracez (FIFO, bounded).
  size_t recent_timelines = 64;
};

/// The serving front end: accepts query batches from many clients into an
/// admission queue, runs each as a progressive EvalSession, and merges the
/// per-step coefficient needs of concurrent sessions into cross-session
/// fetch batches (Observation 1 across batches, not just within one).
///
/// Grouping: live sessions are grouped by (schema fingerprint, strategy,
/// penalty fingerprint, pinned epoch generation); each group owns one
/// SharedFetchCache over one pinned snapshot, so a coefficient any group
/// member needs is fetched from the backend once per epoch. Before a
/// session's quantum runs, the scheduler unions the upcoming keys of every
/// live session in its group (EvalSession::PeekUpcomingKeys) into one
/// prefetch batch — the cross-session FetchBatch.
///
/// Scheduling is progress-aware: the runnable session with the least
/// deadline slack goes first; among equals, the one whose next quantum buys
/// the largest Theorem-1 bound reduction per retrieval (NextImportance).
/// Requests complete when exact, when their target bound is reached, or
/// when their deadline expires (returning the current progressive estimates
/// and bound — the paper's contract is that partial answers are usable).
///
/// Backpressure: Submit sheds when the admission queue is full or the
/// process thread-pool queue gauge crosses the configured threshold.
///
/// Execution: either call RunUntilIdle() on your own thread (deterministic;
/// tests and single-tenant tools), or Start()/Stop() worker threads.
/// Epochs: the service pins its store's current version at construction;
/// RefreshEpoch() re-pins — wire it to VersionedStoreOptions::on_publish so
/// new admissions serve fresh data while in-flight sessions finish on the
/// epoch they pinned.
class QueryService {
 public:
  QueryService(std::shared_ptr<const CoefficientStore> store,
               std::shared_ptr<const LinearStrategy> strategy,
               QueryServiceOptions options = {});
  /// Stops workers and fails every queued and in-flight request with
  /// kUnavailable (their callbacks run, with progress so far).
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admission: enqueues the request, or sheds it (kUnavailable, callback
  /// never invoked) under backpressure. `done` runs exactly once for every
  /// admitted request.
  Status Submit(QueryRequest request, ResponseCallback done);

  /// Drains the queue on the calling thread until no runnable work is left.
  /// Deterministic given a deterministic store; safe alongside workers
  /// (they just compete for quanta).
  void RunUntilIdle();

  /// Spawns `num_threads` worker threads (>= 1). No-op when running.
  void Start(size_t num_threads);
  /// Stops and joins workers. Queued/in-flight requests stay put and can be
  /// drained by RunUntilIdle() or a later Start().
  void Stop();

  /// Re-pins the store's current version; later admissions form new groups
  /// over the fresh snapshot. Wire to VersionedStoreOptions::on_publish.
  void RefreshEpoch();

  // Introspection (tests, ops).
  size_t queue_depth() const;
  size_t live_sessions() const;
  uint64_t generation() const;
  /// This instance's counts (the telemetry counters aggregate across all
  /// services in the process).
  uint64_t sheds() const;
  uint64_t completed() const;
  /// Cross-session ledger summed over live and retired groups: hits are
  /// backend fetches some other session already paid for.
  uint64_t shared_hits() const;
  uint64_t shared_misses() const;

  /// Pinned epoch of the current snapshot (SnapshotStore::epoch(); 0 when
  /// the store is not versioned).
  uint64_t epoch() const;
  const PlanCache& plan_cache() const { return *plan_cache_; }

  /// One live session group, for /statusz.
  struct GroupStatus {
    uint64_t generation = 0;
    uint64_t epoch = 0;
    size_t members = 0;
    size_t cache_entries = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    double k_sum_abs = 0.0;
  };
  std::vector<GroupStatus> GroupStatuses() const;

  /// A completed request's bound-convergence record, for /tracez.
  struct TimelineRecord {
    uint64_t request_id = 0;
    uint64_t trace_id = 0;
    uint64_t generation = 0;
    bool ok = false;
    bool exact = false;
    bool deadline_expired = false;
    std::vector<telemetry::TimelinePoint> points;
  };
  /// The most recent completed-request timelines (FIFO, bounded by
  /// QueryServiceOptions::recent_timelines), oldest first.
  std::vector<TimelineRecord> RecentTimelines() const;

 private:
  struct Group {
    std::string key;
    std::shared_ptr<SharedFetchStore> store;
    std::shared_ptr<SharedFetchCache> cache;
    /// Theorem 1's K = SumAbs of the pinned snapshot, computed once.
    double k_sum_abs = 0.0;
    size_t members = 0;
    uint64_t generation = 0;
    uint64_t epoch = 0;  // pinned SnapshotStore epoch, 0 if unversioned
  };

  struct Pending {
    QueryRequest request;
    ResponseCallback done;
    std::chrono::steady_clock::time_point admitted_at;
    telemetry::TraceContext trace;  // minted at Submit when telemetry is on
  };

  struct Active {
    Active(QueryRequest r, ResponseCallback d)
        : request(std::move(r)), done(std::move(d)) {}

    QueryRequest request;
    ResponseCallback done;
    std::chrono::steady_clock::time_point admitted_at;
    std::chrono::steady_clock::time_point deadline_at;  // max() = none
    std::unique_ptr<EvalSession> session;
    std::shared_ptr<Group> group;
    uint64_t generation = 0;
    size_t quantum = 0;
    bool busy = false;      // a worker owns this session's next quantum
    Status failure;         // sticky non-OK fetch status under kFail
    bool failed = false;
    telemetry::TraceContext trace;
    telemetry::ConvergenceTimeline timeline;
  };

  void WorkerLoop();
  /// Admits pending requests into live sessions while capacity allows.
  /// Must hold mu_. Completed-at-admission requests (empty plans, expired
  /// deadlines, failed plan builds) are finalized into *finished.
  void AdmitLocked(std::vector<std::function<void()>>* finished);
  /// Picks the runnable live session with (least deadline slack, highest
  /// marginal bound reduction). Null when none is runnable. Must hold mu_.
  Active* PickLocked(std::chrono::steady_clock::time_point now);
  /// Runs one quantum for `active` WITHOUT the lock: group prefetch of the
  /// unioned upcoming keys, then one StepBatch. When the request is traced,
  /// the whole quantum runs under its TraceContext (so backend fetch spans
  /// attribute to it), records a "request_quantum" span, marks which
  /// sibling requests the merged prefetch advanced, and samples the
  /// convergence timeline.
  void StepQuantum(Active& active, std::vector<uint64_t>* scratch,
                   std::vector<telemetry::TraceContext>* siblings);
  /// Union of upcoming keys across the group's live sessions. Must hold
  /// mu_ (reads sibling sessions' cursors; they are not busy). When
  /// telemetry is enabled, appends the TraceContext of every sibling that
  /// contributed keys to *siblings (merged-batch attribution).
  void GatherGroupKeysLocked(const Active& active, std::vector<uint64_t>* out,
                             std::vector<telemetry::TraceContext>* siblings);
  /// Appends one convergence-timeline point from the session's current
  /// progress. `force` bypasses stride decimation (completion point).
  void SampleTimeline(Active& active, bool force) const;
  /// True when the request is complete (exact, bound met, deadline, fault).
  bool IsFinishedLocked(const Active& active,
                        std::chrono::steady_clock::time_point now) const;
  /// Removes `active` from live_, builds its response, returns the callback
  /// invocation to run outside the lock. Must hold mu_.
  std::function<void()> FinalizeLocked(
      size_t live_index, Status status, bool deadline_expired,
      std::chrono::steady_clock::time_point now);
  std::shared_ptr<Group> GetGroupLocked(const QueryRequest& request);
  std::string GroupKeyLocked(const QueryRequest& request) const;
  void RepinLocked();

  const std::shared_ptr<const CoefficientStore> root_store_;
  const std::shared_ptr<const LinearStrategy> strategy_;
  const QueryServiceOptions options_;
  std::shared_ptr<PlanCache> plan_cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  std::vector<Pending> pending_;
  std::vector<std::unique_ptr<Active>> live_;
  std::unordered_map<std::string, std::shared_ptr<Group>> groups_;
  std::shared_ptr<const CoefficientStore> pinned_;  // current epoch snapshot
  uint64_t generation_ = 1;
  uint64_t pinned_epoch_ = 0;  // SnapshotStore::epoch() of pinned_, else 0
  std::deque<TimelineRecord> recent_timelines_;
  uint64_t retired_hits_ = 0;
  uint64_t retired_misses_ = 0;
  uint64_t local_sheds_ = 0;
  uint64_t local_completed_ = 0;

  telemetry::Gauge* queue_depth_gauge_;
  telemetry::Gauge* live_sessions_gauge_;
  telemetry::Counter* requests_;
  telemetry::Counter* sheds_;
  telemetry::Counter* completed_;
  telemetry::Counter* deadline_expired_;
  telemetry::Counter* failed_;
  telemetry::Histogram* latency_us_;
};

}  // namespace wavebatch::server

#endif  // WAVEBATCH_SERVER_QUERY_SERVICE_H_
