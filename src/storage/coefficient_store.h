#ifndef WAVEBATCH_STORAGE_COEFFICIENT_STORE_H_
#define WAVEBATCH_STORAGE_COEFFICIENT_STORE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "telemetry/metrics.h"
#include "util/check.h"
#include "util/status.h"

namespace wavebatch {

class KeyRouter;

/// I/O accounting for the paper's cost model: every coefficient retrieved
/// from secondary storage costs one unit (Section 1.3 assumes array- or
/// hash-based storage with constant-time access to single values and no
/// block-sharing effects; BlockStore adds the block-granularity model the
/// paper lists as future work).
///
/// Accounting is per *call site*, not per store: callers that care about
/// cost pass their own IoStats sink to Fetch/FetchBatch and the store adds
/// into it. This is what makes one read-only store shareable by many
/// concurrent sessions — each session carries its own counters, and the
/// paper's cost model is counted per session (the right unit for
/// multi-tenant accounting) instead of smeared across whoever happens to
/// share the view.
///
/// Writes to one IoStats are caller-synchronized: a sink is owned by one
/// session (one thread) at a time. Concurrent sessions each write their own
/// sink and aggregate afterwards with operator+= under the caller's
/// synchronization — IoStats itself takes no locks and uses no atomics.
struct IoStats {
  /// Number of coefficient retrievals (the paper's headline cost metric).
  uint64_t retrievals = 0;
  /// Number of simulated disk-block reads (BlockStore only).
  uint64_t block_reads = 0;
  /// Block-cache hits (BlockStore only).
  uint64_t block_hits = 0;
  /// Backend bytes transferred by the simulated block reads (BlockStore
  /// only; cache hits transfer nothing). A plain BlockStore charges the
  /// full-width page (block_size × sizeof(double)) per read; in
  /// compressed-page mode it charges the page's encoded size — the
  /// quantity the codec exists to shrink, gated by tools/bench_compare.
  uint64_t bytes_fetched = 0;

  void Reset() { *this = IoStats{}; }

  IoStats& operator+=(const IoStats& other) {
    retrievals += other.retrievals;
    block_reads += other.block_reads;
    block_hits += other.block_hits;
    bytes_fetched += other.bytes_fetched;
    return *this;
  }

  friend bool operator==(const IoStats& a, const IoStats& b) {
    return a.retrievals == b.retrievals && a.block_reads == b.block_reads &&
           a.block_hits == b.block_hits && a.bytes_fetched == b.bytes_fetched;
  }
};

/// Per-store-name telemetry handles for the counted fetch path, distinct
/// from IoStats: IoStats is the paper's per-session cost model, these are
/// process-wide operational metrics. Bound lazily on the first instrumented
/// fetch (the virtual name() is not callable from the base constructor) and
/// interned by store name in a process-wide table, so same-named stores
/// share one time series and the handles outlive every store instance.
struct StoreFetchMetrics {
  telemetry::Counter* keys_fetched;
  telemetry::Counter* bytes_fetched;
  telemetry::Counter* errors_unavailable;
  telemetry::Counter* errors_out_of_range;
  telemetry::Counter* errors_other;
  telemetry::Histogram* batch_latency_ns;

  void CountError(StatusCode code) const {
    if (code == StatusCode::kUnavailable) {
      errors_unavailable->Add();
    } else if (code == StatusCode::kOutOfRange) {
      errors_out_of_range->Add();
    } else {
      errors_other->Add();
    }
  }
};

/// The materialized view Δ̂ (or any other linear transform of Δ): a map from
/// 64-bit coefficient keys to values with constant-time access. Fetch() and
/// FetchBatch() are the *counted* accesses used by evaluators; Peek() is
/// free and used by tests, bounds computation, and internal plumbing.
///
/// The read path is const and safe for concurrent readers: any number of
/// threads may Fetch/FetchBatch/Peek one store at the same time (each with
/// its own IoStats sink). Writes (Add) are not synchronized with reads —
/// load or maintain the view first, then share it read-only.
///
/// Fetch/FetchBatch are non-virtual on purpose: they do the cost-model
/// accounting here, once, and delegate to the protected DoFetch/DoFetchBatch
/// hooks — so a backend override can never silently skip the retrieval
/// count. FetchBatch is the hot path: backends coalesce, group, or
/// parallelize the batch (FileStore sorts keys into contiguous reads;
/// BlockStore touches each distinct block once), but every backend returns
/// exactly the values a scalar Fetch loop would, and retrievals are counted
/// per coefficient either way — batching changes the speed, never the cost
/// model.
///
/// Fetches are fallible: a backend reports short reads, I/O errors, and
/// out-of-capacity keys as a non-OK Status instead of aborting the process
/// (the engine turns such faults into resumable or degraded sessions; see
/// EvalSession). A failed fetch charges nothing to `io` — the paper's cost
/// model counts coefficients *retrieved*, and a failed attempt retrieved
/// none. Peek stays infallible-by-contract: it is the uncounted trusted
/// path (tests, bounds plumbing) and still aborts on backend corruption.
class CoefficientStore {
 public:
  virtual ~CoefficientStore() = default;

  /// Uncounted read of the coefficient at `key` (0 if absent).
  virtual double Peek(uint64_t key) const = 0;

  /// Counted retrieval: one unit of I/O in the paper's cost model, added to
  /// `io` (pass nullptr to read without accounting — e.g. internal
  /// plumbing that the caller already charges elsewhere). On error nothing
  /// is charged and the Status explains the failure.
  /// Telemetry: the scalar path records counters only (keys/bytes fetched,
  /// errors by code) — never a clock read, so an instrumented per-key loop
  /// stays within the nanoseconds-per-step budget. Latency is measured on
  /// FetchBatch, where two clock reads amortize over the whole batch.
  Result<double> Fetch(uint64_t key, IoStats* io = nullptr) const {
    Result<double> value = DoFetch(key, io);
    if (value.ok()) {
      if (io != nullptr) ++io->retrievals;
      if (telemetry::Enabled()) {
        const StoreFetchMetrics& m = FetchTelemetry();
        m.keys_fetched->Add(1);
        m.bytes_fetched->Add(sizeof(double));
      }
    } else if (telemetry::Enabled()) {
      FetchTelemetry().CountError(value.status().code());
    }
    return value;
  }

  /// Counted vectorized retrieval: `out[i] = value at keys[i]` for every i,
  /// charging keys.size() retrievals to `io` (duplicates each count —
  /// identical accounting to a scalar Fetch loop). Requires
  /// keys.size() == out.size(). All-or-nothing: on a non-OK Status the
  /// contents of `out` are unspecified and nothing is charged to `io`.
  Status FetchBatch(std::span<const uint64_t> keys, std::span<double> out,
                    IoStats* io = nullptr) const {
    WB_CHECK_EQ(keys.size(), out.size());
    return CountedBatch(keys.size(), io, [&] {
      return DoFetchBatch(keys, out, io);
    });
  }

  /// FetchBatch with precomputed routing hints: shards[i] is the shard that
  /// owns keys[i] under this store's router(). Identical contract and
  /// accounting to FetchBatch — a store without a router (or one that does
  /// not override DoFetchBatchRouted) ignores the hints entirely, so
  /// calling this on any store is always correct, never required. The
  /// hints exist so the engine can compute routing once per plan instead of
  /// once per batch (the shard of a key never changes for a live router).
  Status FetchBatchRouted(std::span<const uint64_t> keys,
                          std::span<const uint32_t> shards,
                          std::span<double> out, IoStats* io = nullptr) const {
    WB_CHECK_EQ(keys.size(), out.size());
    WB_CHECK_EQ(keys.size(), shards.size());
    return CountedBatch(keys.size(), io, [&] {
      return DoFetchBatchRouted(keys, shards, out, io);
    });
  }

  /// Adds `delta` to the coefficient at `key` (the tuple-insertion path).
  /// Not synchronized with concurrent reads.
  virtual void Add(uint64_t key, double delta) = 0;

  /// Number of stored nonzero coefficients.
  virtual uint64_t NumNonZero() const = 0;

  /// Σ|v| over stored coefficients — Theorem 1's constant K when the store
  /// holds Δ̂.
  virtual double SumAbs() const = 0;

  /// Invokes `fn(key, value)` for every stored nonzero coefficient
  /// (uncounted; used by compaction, compression baselines, and tests).
  virtual void ForEachNonZero(
      const std::function<void(uint64_t, double)>& fn) const = 0;

  virtual std::string name() const = 0;

  /// The key-space partition this store serves, or nullptr for the common
  /// single-plane case. A non-null router is a promise: FetchBatchRouted
  /// hints computed with it stay valid for the store's lifetime (routing is
  /// immutable; only tier placement behind a shard may change). Decorators
  /// forward the inner store's router so hints survive wrapping.
  virtual const KeyRouter* router() const { return nullptr; }

  /// Upper bound on |Peek(key) - exact coefficient at key| — nonzero only
  /// for lossy read paths (a BlockStore in quantized compressed-page mode).
  /// The engine charges this per retrieved coefficient into the Theorem-1
  /// bound so progressive guarantees stay sound over quantized storage;
  /// bounded.cc turns it into per-query error bounds for exact runs.
  /// Uncounted, like Peek. Decorators forward to their inner store (a
  /// sharded plane routes to the owning shard). The default — every exact
  /// backend — is 0.
  virtual double PeekErrorBound(uint64_t key) const {
    (void)key;
    return 0.0;
  }

  /// True when PeekErrorBound can be nonzero anywhere on this read path —
  /// the cheap gate that lets sessions skip per-key error lookups entirely
  /// on exact stores. Decorators forward; the default is false.
  virtual bool Lossy() const { return false; }

  /// Epoch-snapshot seam: a store whose *published contents advance in
  /// epochs* (VersionedStore) returns an immutable snapshot of the current
  /// epoch — a reader that pins once and serves an entire multi-call
  /// operation (a progressive session) from the pinned store sees one
  /// consistent version no matter how many ingests or merges land
  /// meanwhile. The default (null) means "this store is its own snapshot":
  /// its contents are stable for the reader's lifetime, so callers use the
  /// store directly. Decorators MUST forward this hook by *re-wrapping*:
  /// pin the inner store and, when it returns a snapshot, wrap that
  /// snapshot in a new read-only decorator sharing the original's mutable
  /// state (fault schedule, buffer pool), so the decorator stays on the
  /// pinned read path. Returning the naked inner snapshot would silently
  /// drop the decorator; returning null over a versioned inner store would
  /// leave sessions un-pinned and exposed to epochs advancing
  /// mid-evaluation.
  virtual std::shared_ptr<const CoefficientStore> PinVersion() const {
    return nullptr;
  }

 protected:
  /// Backend hook for one counted retrieval. Retrieval accounting is done
  /// by the Fetch wrapper (on success only); backends with sub-coefficient
  /// cost models (BlockStore) add their own counters to `io` when it is
  /// non-null. Must be safe to call from multiple threads at once, and must
  /// report failures as a Status rather than aborting.
  virtual Result<double> DoFetch(uint64_t key, IoStats* io) const {
    (void)io;
    return Peek(key);
  }

  /// Backend hook for a counted batch. Accounting is done by the wrapper;
  /// must fill out[i] with the value at keys[i] — same values as a DoFetch
  /// loop — and must be safe to call from multiple threads at once. On the
  /// first failing key the hook returns its Status; `out` is then
  /// unspecified.
  virtual Status DoFetchBatch(std::span<const uint64_t> keys,
                              std::span<double> out, IoStats* io) const {
    for (size_t i = 0; i < keys.size(); ++i) {
      Result<double> value = DoFetch(keys[i], io);
      if (!value.ok()) return value.status();
      out[i] = value.value();
    }
    return Status::OK();
  }

  /// Backend hook for a routed batch. The default discards the hints and
  /// runs the plain batch hook — correct for every unsharded backend.
  /// ShardedStore overrides this to skip its per-key routing pass;
  /// decorators override it to forward the hints to their inner store.
  virtual Status DoFetchBatchRouted(std::span<const uint64_t> keys,
                                    std::span<const uint32_t> shards,
                                    std::span<double> out, IoStats* io) const {
    (void)shards;
    return DoFetchBatch(keys, out, io);
  }

  /// Delegation helpers for decorator backends (BlockStore,
  /// FaultInjectionStore): invoke another store's hooks directly — an
  /// *uncounted* read that still propagates errors and the inner backend's
  /// sub-model counters. Going through the public Fetch/FetchBatch instead
  /// would double-charge retrievals (the outer wrapper already counts).
  static Result<double> DelegateFetch(const CoefficientStore& inner,
                                      uint64_t key, IoStats* io) {
    return inner.DoFetch(key, io);
  }
  static Status DelegateFetchBatch(const CoefficientStore& inner,
                                   std::span<const uint64_t> keys,
                                   std::span<double> out, IoStats* io) {
    return inner.DoFetchBatch(keys, out, io);
  }
  static Status DelegateFetchBatchRouted(const CoefficientStore& inner,
                                         std::span<const uint64_t> keys,
                                         std::span<const uint32_t> shards,
                                         std::span<double> out, IoStats* io) {
    return inner.DoFetchBatchRouted(keys, shards, out, io);
  }

 private:
  /// Shared accounting/telemetry wrapper for both batch entry points:
  /// `hook` runs the backend, the wrapper charges `n` retrievals on
  /// success only and records batch latency + error counters exactly as
  /// the historical FetchBatch did.
  template <typename Hook>
  Status CountedBatch(size_t n, IoStats* io, Hook&& hook) const {
    if (!telemetry::Enabled()) {
      Status status = hook();
      if (status.ok() && io != nullptr) io->retrievals += n;
      return status;
    }
    const auto begin = std::chrono::steady_clock::now();
    Status status = hook();
    const auto end = std::chrono::steady_clock::now();
    const StoreFetchMetrics& m = FetchTelemetry();
    m.batch_latency_ns->Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
            .count()));
    // The span inherits the thread's installed TraceContext, so a fetch
    // issued while serving a request quantum is attributable to that
    // request without any plumbing through the store API.
    telemetry::MetricsRegistry::Default().RecordSpan(
        "store_fetch_batch", begin, end,
        {telemetry::SpanAttr{"keys", static_cast<double>(n)}});
    if (status.ok()) {
      if (io != nullptr) io->retrievals += n;
      m.keys_fetched->Add(n);
      m.bytes_fetched->Add(n * sizeof(double));
    } else {
      m.CountError(status.code());
    }
    return status;
  }

  /// Fast path for the wrapper instrumentation: one acquire load once the
  /// handles are bound. The slow path (first instrumented fetch on this
  /// instance) interns the handles by name().
  const StoreFetchMetrics& FetchTelemetry() const {
    const StoreFetchMetrics* m =
        fetch_telemetry_.load(std::memory_order_acquire);
    return m != nullptr ? *m : BindFetchTelemetry();
  }
  const StoreFetchMetrics& BindFetchTelemetry() const;

  mutable std::atomic<const StoreFetchMetrics*> fetch_telemetry_{nullptr};
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STORAGE_COEFFICIENT_STORE_H_
