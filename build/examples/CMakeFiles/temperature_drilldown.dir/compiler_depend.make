# Empty compiler generated dependencies file for temperature_drilldown.
# This may be replaced when dependencies are built.
