# Empty compiler generated dependencies file for dwt_nd_test.
# This may be replaced when dependencies are built.
