// Compressed coefficient pages: codec round-trips (lossless bits including
// exact zeros, signed zeros, and denormals; quantized values within the
// page's recorded error), BlockStore's compressed mode reproducing the
// plain blocked plane's values and block counters while charging fewer
// bytes, and — the part that keeps the whole feature honest — the engine's
// widened Theorem-1 bound enclosing the TRUE error of estimates computed
// from quantized coefficients at every progressive step.

#include "storage/compressed_block.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "data/generators.h"
#include "engine/bounded.h"
#include "engine/eval_plan.h"
#include "engine/eval_session.h"
#include "gtest/gtest.h"
#include "penalty/sse.h"
#include "storage/block_store.h"
#include "storage/memory_store.h"
#include "strategy/wavelet_strategy.h"
#include "util/random.h"

namespace wavebatch {
namespace {

// ---------------------------------------------------------------------------
// CompressedPage codec.

TEST(CompressedPageTest, LosslessRoundTripsExactBits) {
  // Raw-bits mode must reproduce every IEEE value exactly, including the
  // awkward ones: +0.0, -0.0, denormals, and extreme magnitudes.
  const std::vector<uint64_t> keys = {3, 4, 9, 100, 101, 4095};
  const std::vector<double> values = {
      0.0,
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      -2.2250738585072014e-308,  // smallest normal, negated
      1.7976931348623157e308,    // largest finite
      -123.456789};
  CompressedPage page =
      CompressedPage::Encode(keys, values, CompressedPageOptions{});
  EXPECT_EQ(page.entry_count(), keys.size());
  EXPECT_EQ(page.max_abs_error(), 0.0);
  EXPECT_FALSE(page.lossy());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(page.Contains(keys[i]));
    const double decoded = page.ValueOr(keys[i], 7.0);
    // Bit-level check: distinguishes -0.0 from +0.0.
    EXPECT_EQ(std::signbit(decoded), std::signbit(values[i])) << "entry " << i;
    EXPECT_EQ(decoded, values[i]) << "entry " << i;
  }

  std::vector<uint64_t> out_keys;
  std::vector<double> out_values;
  page.AppendEntries(&out_keys, &out_values);
  EXPECT_EQ(out_keys, keys);
  ASSERT_EQ(out_values.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(out_values[i], values[i]);
    EXPECT_EQ(std::signbit(out_values[i]), std::signbit(values[i]));
  }
}

TEST(CompressedPageTest, AbsentKeysDecodeToExactZero) {
  const std::vector<uint64_t> keys = {10, 20, 30};
  const std::vector<double> values = {1.0, 2.0, 3.0};
  CompressedPage page =
      CompressedPage::Encode(keys, values, CompressedPageOptions{});
  for (uint64_t key : {uint64_t{0}, uint64_t{11}, uint64_t{29},
                       uint64_t{31}, uint64_t{1} << 40}) {
    EXPECT_FALSE(page.Contains(key));
    EXPECT_EQ(page.ValueOr(key, 0.0), 0.0);
  }
}

TEST(CompressedPageTest, KeyStreamBeatsRawLayoutOnDenseBlocks) {
  // 64 contiguous keys: 6-bit deltas vs 8-byte raw keys. The page must be
  // well under the raw (key, value) layout even in lossless mode.
  std::vector<uint64_t> keys;
  std::vector<double> values;
  Rng rng(7);
  for (uint64_t k = 0; k < 64; ++k) {
    keys.push_back(1000 + k);
    values.push_back(rng.Gaussian());
  }
  CompressedPage page =
      CompressedPage::Encode(keys, values, CompressedPageOptions{});
  EXPECT_LT(page.size_bytes(), 16u * keys.size());
  EXPECT_FALSE(page.lossy());
}

TEST(CompressedPageTest, QuantizedErrorStaysWithinRecordedBound) {
  for (uint32_t bits : {4u, 8u, 16u}) {
    std::vector<uint64_t> keys;
    std::vector<double> values;
    Rng rng(100 + bits);
    for (uint64_t k = 0; k < 64; ++k) {
      keys.push_back(k * 3);  // gaps: exercise delta widths > 1
      values.push_back(rng.Gaussian() * 50.0);
    }
    CompressedPage page = CompressedPage::Encode(
        keys, values, CompressedPageOptions{.quantize = true,
                                            .quant_bits = bits});
    EXPECT_TRUE(page.lossy());
    EXPECT_GT(page.max_abs_error(), 0.0);
    double worst = 0.0;
    for (size_t i = 0; i < keys.size(); ++i) {
      const double err = std::abs(page.ValueOr(keys[i], 0.0) - values[i]);
      EXPECT_LE(err, page.max_abs_error())
          << bits << "-bit entry " << i;
      worst = std::max(worst, err);
    }
    // The recorded bound is measured, not estimated: it is attained.
    EXPECT_EQ(worst, page.max_abs_error());
    // More bits, tighter pages: 16-bit error ≈ range/2^16.
    if (bits == 16) {
      EXPECT_LT(page.max_abs_error(), 1.0);
    }
  }
}

TEST(CompressedPageTest, ConstantPageIsExactWithNoValueStream) {
  // All-equal values collapse to a 0-bit value stream and decode exactly,
  // even under quantization.
  const std::vector<uint64_t> keys = {1, 2, 3, 4};
  const std::vector<double> values(4, 42.25);
  CompressedPage page = CompressedPage::Encode(
      keys, values, CompressedPageOptions{.quantize = true, .quant_bits = 8});
  EXPECT_EQ(page.max_abs_error(), 0.0);
  EXPECT_FALSE(page.lossy());
  for (uint64_t key : keys) EXPECT_EQ(page.ValueOr(key, 0.0), 42.25);
  // Header + 4 packed 2-bit key offsets, no value words.
  EXPECT_LE(page.size_bytes(), 40u);
}

TEST(CompressedPageTest, QuantizedSixteenBitBeatsPlainBlockBytes) {
  // The acceptance geometry of the Zipf bench: a full 64-entry block costs
  // 512 B in the plain simulated-disk model; its 16-bit quantized page must
  // cost less than half that.
  std::vector<uint64_t> keys;
  std::vector<double> values;
  Rng rng(3);
  for (uint64_t k = 0; k < 64; ++k) {
    keys.push_back(k);
    values.push_back(rng.Gaussian());
  }
  CompressedPage page = CompressedPage::Encode(
      keys, values, CompressedPageOptions{.quantize = true, .quant_bits = 16});
  EXPECT_LE(page.size_bytes() * 2, 64u * sizeof(double));
}

// ---------------------------------------------------------------------------
// BlockStore compressed mode.

struct Plane {
  std::unique_ptr<HashStore> MakeInner() const {
    auto inner = std::make_unique<HashStore>();
    Rng rng(11);
    for (uint64_t key = 0; key < 4096; ++key) {
      if (rng.UniformDouble() < 0.25) inner->Add(key, rng.Gaussian() * 10.0);
    }
    return inner;
  }
};

TEST(CompressedBlockStoreTest, LosslessModeMatchesPlainModeExactly) {
  Plane plane;
  BlockStoreOptions plain_opts;
  plain_opts.block_size = 64;
  plain_opts.cache_blocks = 8;
  BlockStoreOptions comp_opts = plain_opts;
  comp_opts.compress_pages = true;
  BlockStore plain(plane.MakeInner(), plain_opts);
  BlockStore compressed(plane.MakeInner(), comp_opts);
  ASSERT_TRUE(compressed.compressed());
  EXPECT_FALSE(compressed.Lossy());
  EXPECT_EQ(compressed.max_quantization_error(), 0.0);

  // Scan surface forwards the exact inner: same K, same support.
  EXPECT_EQ(compressed.SumAbs(), plain.SumAbs());
  EXPECT_EQ(compressed.NumNonZero(), plain.NumNonZero());

  std::vector<uint64_t> keys;
  Rng rng(12);
  for (size_t i = 0; i < 300; ++i) {
    keys.push_back(static_cast<uint64_t>(rng.UniformInt(4096)));
  }
  IoStats plain_io, comp_io;
  std::vector<double> plain_out(keys.size()), comp_out(keys.size());
  ASSERT_TRUE(plain.FetchBatch(keys, plain_out, &plain_io).ok());
  ASSERT_TRUE(compressed.FetchBatch(keys, comp_out, &comp_io).ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(comp_out[i], plain_out[i]) << "key " << keys[i];
    EXPECT_EQ(compressed.Peek(keys[i]), plain.Peek(keys[i]));
    EXPECT_EQ(compressed.PeekErrorBound(keys[i]), 0.0);
  }
  // The block access pattern is identical — compression changes what a
  // block read costs, never whether one happens.
  EXPECT_EQ(comp_io.retrievals, plain_io.retrievals);
  EXPECT_EQ(comp_io.block_reads, plain_io.block_reads);
  EXPECT_EQ(comp_io.block_hits, plain_io.block_hits);
  // But each miss is cheaper: pages pack a ~25%-occupied block tighter
  // than the fixed 512-byte simulated read.
  EXPECT_GT(plain_io.bytes_fetched, 0u);
  EXPECT_LT(comp_io.bytes_fetched, plain_io.bytes_fetched);
}

TEST(CompressedBlockStoreTest, CompressedModeIsSealed) {
  Plane plane;
  BlockStoreOptions opts;
  opts.block_size = 64;
  opts.compress_pages = true;
  BlockStore store(plane.MakeInner(), opts);
  // Pages are built once at construction; there is no write path or
  // version chain to keep coherent.
  EXPECT_EQ(store.PinVersion(), nullptr);
  EXPECT_DEATH(store.Add(3, 1.0), "read-only");
}

TEST(CompressedBlockStoreTest, QuantizedModeReportsErrorBounds) {
  Plane plane;
  auto reference = plane.MakeInner();
  BlockStoreOptions opts;
  opts.block_size = 64;
  opts.compress_pages = true;
  opts.page.quantize = true;
  opts.page.quant_bits = 12;
  BlockStore store(plane.MakeInner(), opts);
  EXPECT_TRUE(store.Lossy());
  EXPECT_GT(store.max_quantization_error(), 0.0);

  IoStats io;
  for (uint64_t key = 0; key < 4096; ++key) {
    Result<double> got = store.Fetch(key, &io);
    ASSERT_TRUE(got.ok());
    const double exact = reference->Peek(key);
    const double bound = store.PeekErrorBound(key);
    EXPECT_LE(std::abs(got.value() - exact), bound) << "key " << key;
    if (exact == 0.0) {
      // Zeros are not stored, so they decode exactly and carry no error.
      EXPECT_EQ(got.value(), 0.0);
      EXPECT_EQ(bound, 0.0);
    }
    // Peek and Fetch agree on the decoded plane.
    EXPECT_EQ(store.Peek(key), got.value());
  }
  // K = Σ|Δ̂| is computed over the EXACT inner, not the decoded values —
  // the Theorem-1 widening accounts for decode error separately and must
  // not double-count it.
  EXPECT_EQ(store.SumAbs(), reference->SumAbs());
}

// ---------------------------------------------------------------------------
// Engine soundness over quantized pages.

struct EngineFixture {
  Schema schema = Schema::Uniform(2, 16);
  Relation rel;
  QueryBatch batch;
  std::shared_ptr<const MasterList> list;
  std::unique_ptr<CoefficientStore> exact_store;
  std::shared_ptr<const SsePenalty> sse = std::make_shared<SsePenalty>();
  std::shared_ptr<const EvalPlan> plan;

  EngineFixture() : rel(MakeUniformRelation(schema, 500, 3)), batch(schema) {
    WaveletStrategy strategy(schema, WaveletKind::kHaar);
    Rng rng(9);
    for (int i = 0; i < 12; ++i) {
      uint32_t lo0 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi0 = lo0 + static_cast<uint32_t>(rng.UniformInt(16 - lo0));
      uint32_t lo1 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi1 = lo1 + static_cast<uint32_t>(rng.UniformInt(16 - lo1));
      batch.Add(RangeSumQuery::Count(
          Range::Create(schema, {{lo0, hi0}, {lo1, hi1}}).value()));
    }
    list = std::make_shared<const MasterList>(
        MasterList::Build(batch, strategy).value());
    exact_store = strategy.BuildStore(rel.FrequencyDistribution());
    plan = EvalPlan::FromMasterList(list, sse);
  }

  std::unique_ptr<BlockStore> MakeQuantized(uint32_t quant_bits) const {
    auto inner = std::make_unique<HashStore>();
    exact_store->ForEachNonZero(
        [&](uint64_t key, double value) { inner->Add(key, value); });
    BlockStoreOptions opts;
    opts.block_size = 64;
    opts.compress_pages = true;
    opts.page.quantize = true;
    opts.page.quant_bits = quant_bits;
    return std::make_unique<BlockStore>(std::move(inner), opts);
  }
};

TEST(QuantizedBoundTest, WorstCaseBoundEnclosesTrueErrorAtEveryStep) {
  // The widened Theorem-1 bound must dominate the penalty of the CURRENT
  // quantized estimate against the TRUE exact answers, at every step of
  // the progression — coarse 8-bit pages make the quantization term do
  // real work here.
  EngineFixture f;
  // True answers: exact store, run to completion.
  EvalSession truth(f.plan, UnownedStore(*f.exact_store));
  ASSERT_TRUE(truth.RunToExact().ok());
  const std::vector<double> exact = truth.Estimates();

  for (uint32_t bits : {8u, 16u}) {
    auto store = f.MakeQuantized(bits);
    // K from the store the session reads — its SumAbs forwards the exact
    // inner, matching what a caller would compute.
    const double k = store->SumAbs();
    EvalSession session(f.plan, UnownedStore(*store));
    SsePenalty sse;
    size_t steps = 0;
    while (!session.Done()) {
      ASSERT_TRUE(session.StepBatch(7).ok());
      ++steps;
      std::vector<double> err(exact.size());
      for (size_t q = 0; q < exact.size(); ++q) {
        err[q] = session.Estimates()[q] - exact[q];
      }
      const double bound = session.WorstCaseBound(k);
      // Tiny slack for the strategy's rewrite thresholding (same allowance
      // the exact-store bound test uses) — NOT for quantization, which the
      // bound must cover in full.
      EXPECT_LE(sse.Apply(err), bound + 1e-5 * (1.0 + k * k))
          << bits << "-bit step " << steps;
    }
    // Done ≠ exact over a lossy store: the bound stays positive, priced by
    // the accumulated per-coefficient error mass.
    EXPECT_GT(session.QuantizationErrorMass(), 0.0);
    EXPECT_GT(session.WorstCaseBound(k), 0.0);
    std::vector<double> final_err(exact.size());
    for (size_t q = 0; q < exact.size(); ++q) {
      final_err[q] = session.Estimates()[q] - exact[q];
    }
    EXPECT_LE(sse.Apply(final_err),
              session.WorstCaseBound(k) + 1e-5 * (1.0 + k * k));
  }
}

TEST(QuantizedBoundTest, ExactStoresKeepLegacyBoundBitForBit) {
  // The widening is gated on accumulated error mass; exact stores must see
  // the identical legacy bound expression, not a rounded-trip rewrite.
  EngineFixture f;
  EvalSession session(f.plan, UnownedStore(*f.exact_store));
  const double k = f.exact_store->SumAbs();
  while (!session.Done()) {
    ASSERT_TRUE(session.StepBatch(5).ok());
    EXPECT_EQ(session.QuantizationErrorMass(), 0.0);
    const double alpha = f.sse->HomogeneityDegree();
    const double legacy =
        std::pow(k, alpha) *
        (session.NextImportance() + session.SkippedImportance());
    EXPECT_EQ(session.WorstCaseBound(k), legacy);
  }
}

TEST(QuantizedBoundTest, BoundedRunErrorBoundsEncloseTrueResults) {
  // engine/bounded.h's per-query enclosures: |reported − exact| ≤
  // error_bounds[q] over a quantized store; all zeros over an exact one.
  EngineFixture f;
  WaveletStrategy strategy(f.schema, WaveletKind::kHaar);

  Result<BoundedRunResult> exact_run = RunWithBoundedWorkspace(
      f.batch, strategy, *f.exact_store, /*max_workspace_coefficients=*/64);
  ASSERT_TRUE(exact_run.ok());
  for (double b : exact_run->error_bounds) EXPECT_EQ(b, 0.0);

  auto store = f.MakeQuantized(8);
  Result<BoundedRunResult> lossy_run = RunWithBoundedWorkspace(
      f.batch, strategy, *store, /*max_workspace_coefficients=*/64);
  ASSERT_TRUE(lossy_run.ok());
  ASSERT_EQ(lossy_run->error_bounds.size(), f.batch.size());
  bool any_positive = false;
  for (size_t q = 0; q < f.batch.size(); ++q) {
    EXPECT_LE(std::abs(lossy_run->results[q] - exact_run->results[q]),
              lossy_run->error_bounds[q] + 1e-12)
        << "query " << q;
    any_positive |= lossy_run->error_bounds[q] > 0.0;
  }
  EXPECT_TRUE(any_positive) << "8-bit pages should not be accidentally exact";
}

}  // namespace
}  // namespace wavebatch
