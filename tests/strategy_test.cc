#include <cmath>
#include <memory>
#include <vector>

#include "data/generators.h"
#include "gtest/gtest.h"
#include "strategy/identity_strategy.h"
#include "strategy/linear_strategy.h"
#include "strategy/prefix_sum_strategy.h"
#include "strategy/wavelet_strategy.h"
#include "util/random.h"

namespace wavebatch {
namespace {

// Evaluates a query through a strategy: ⟨q_T, T·Δ⟩ by direct lookup.
double Evaluate(const LinearStrategy& strategy, const CoefficientStore& store,
                const RangeSumQuery& query) {
  Result<SparseVec> q = strategy.TransformQuery(query);
  EXPECT_TRUE(q.ok()) << q.status();
  double acc = 0.0;
  for (const SparseEntry& e : *q) acc += e.value * store.Peek(e.key);
  return acc;
}

Range RandomRange(const Schema& schema, Rng& rng) {
  std::vector<Interval> ivs;
  for (size_t i = 0; i < schema.num_dims(); ++i) {
    const uint32_t n = schema.dim(i).size;
    const uint32_t lo = static_cast<uint32_t>(rng.UniformInt(n));
    const uint32_t hi = lo + static_cast<uint32_t>(rng.UniformInt(n - lo));
    ivs.push_back({lo, hi});
  }
  Result<Range> r = Range::Create(schema, ivs);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

class WaveletStrategyTest : public ::testing::TestWithParam<WaveletKind> {};

TEST_P(WaveletStrategyTest, CountQueriesExact) {
  Schema schema = Schema::Uniform(2, 16);
  Relation rel = MakeUniformRelation(schema, 300, 7);
  DenseCube delta = rel.FrequencyDistribution();
  WaveletStrategy strategy(schema, GetParam());
  auto store = strategy.BuildStore(delta);
  Rng rng(11);
  for (int t = 0; t < 25; ++t) {
    Range range = RandomRange(schema, rng);
    RangeSumQuery q = RangeSumQuery::Count(range);
    EXPECT_NEAR(Evaluate(strategy, *store, q), q.BruteForce(rel),
                1e-6 * (1.0 + std::abs(q.BruteForce(rel))));
  }
}

TEST_P(WaveletStrategyTest, SumQueriesExactWhenFilterSufficient) {
  if (WaveletFilter::Get(GetParam()).max_degree() < 1) return;
  Schema schema = Schema::Uniform(2, 16);
  Relation rel = MakeUniformRelation(schema, 300, 9);
  DenseCube delta = rel.FrequencyDistribution();
  WaveletStrategy strategy(schema, GetParam());
  auto store = strategy.BuildStore(delta);
  Rng rng(13);
  for (int t = 0; t < 25; ++t) {
    Range range = RandomRange(schema, rng);
    for (size_t dim = 0; dim < 2; ++dim) {
      RangeSumQuery q = RangeSumQuery::Sum(range, dim);
      const double expected = q.BruteForce(rel);
      EXPECT_NEAR(Evaluate(strategy, *store, q), expected,
                  1e-6 * (1.0 + std::abs(expected)));
    }
  }
}

TEST_P(WaveletStrategyTest, HaarStillExactForHigherDegree) {
  // With too few vanishing moments the rewrite is dense but still exact.
  Schema schema = Schema::Uniform(2, 8);
  Relation rel = MakeUniformRelation(schema, 100, 21);
  DenseCube delta = rel.FrequencyDistribution();
  WaveletStrategy strategy(schema, GetParam());
  auto store = strategy.BuildStore(delta);
  Range range = Range::All(schema).Restrict(0, 1, 6);
  RangeSumQuery q = RangeSumQuery::SumProduct(range, 0, 1);
  const double expected = q.BruteForce(rel);
  EXPECT_NEAR(Evaluate(strategy, *store, q), expected,
              1e-6 * (1.0 + std::abs(expected)));
}

TEST_P(WaveletStrategyTest, IncrementalInsertMatchesDenseBuild) {
  Schema schema = Schema::Uniform(3, 8);
  Relation rel = MakeUniformRelation(schema, 60, 33);
  WaveletStrategy strategy(schema, GetParam());
  auto dense_store = strategy.BuildStore(rel.FrequencyDistribution());
  auto streaming_store = strategy.BuildStoreFromRelation(rel);
  // Every coefficient with material magnitude agrees.
  for (uint64_t key = 0; key < schema.cell_count(); ++key) {
    EXPECT_NEAR(streaming_store->Peek(key), dense_store->Peek(key), 1e-8)
        << "key " << key;
  }
}

TEST_P(WaveletStrategyTest, InsertThenQueryReflectsUpdate) {
  Schema schema = Schema::Uniform(2, 16);
  WaveletStrategy strategy(schema, GetParam());
  Relation rel = MakeUniformRelation(schema, 100, 41);
  auto store = strategy.BuildStoreFromRelation(rel);
  Range range = Range::All(schema).Restrict(0, 2, 9).Restrict(1, 3, 12);
  RangeSumQuery count = RangeSumQuery::Count(range);
  const double before = Evaluate(strategy, *store, count);
  ASSERT_TRUE(strategy.InsertTuple(*store, {5, 5}, 1.0).ok());
  const double after = Evaluate(strategy, *store, count);
  EXPECT_NEAR(after, before + 1.0, 1e-6);
  // Deletion (negative count) restores.
  ASSERT_TRUE(strategy.InsertTuple(*store, {5, 5}, -1.0).ok());
  EXPECT_NEAR(Evaluate(strategy, *store, count), before, 1e-6);
}

TEST_P(WaveletStrategyTest, RejectsOutOfDomainTuple) {
  Schema schema = Schema::Uniform(2, 8);
  WaveletStrategy strategy(schema, GetParam());
  auto store = strategy.BuildStore(DenseCube(schema));
  EXPECT_FALSE(strategy.InsertTuple(*store, {8, 0}, 1.0).ok());
}

INSTANTIATE_TEST_SUITE_P(AllFilters, WaveletStrategyTest,
                         ::testing::Values(WaveletKind::kHaar,
                                           WaveletKind::kDb4,
                                           WaveletKind::kDb6,
                                           WaveletKind::kDb8));

TEST(WaveletStrategySparsity, QueryNnzWithinPaperBound) {
  // O((4δ+2)^d log^d N): check the explicit per-dimension product bound
  // Π_i (2·L·log2(N_i) + 2·L).
  Schema schema = Schema::Uniform(3, 32);
  WaveletStrategy strategy(schema, WaveletKind::kDb4);
  Rng rng(55);
  for (int t = 0; t < 10; ++t) {
    Range range = RandomRange(schema, rng);
    RangeSumQuery q = RangeSumQuery::Sum(range, 1);
    Result<SparseVec> coeffs = strategy.TransformQuery(q);
    ASSERT_TRUE(coeffs.ok());
    const double per_dim = 2.0 * 4 * 5 + 2.0 * 4;
    EXPECT_LE(coeffs->size(), per_dim * per_dim * per_dim);
  }
}

TEST(WaveletStrategySparsity, UpdateDeltaNnzWithinPaperBound) {
  // Section 5's update cost: one tuple insertion touches O((2δ+2)^d log^d N)
  // coefficients — per dimension, the impulse DWT has at most L = 2δ+2
  // nonzero taps per level plus the final average. Property-check the
  // explicit product bound Π_i (L·log2(N_i) + 1) over random tuples for
  // d ∈ {1, 2, 3}, Haar (L = 2) and Db4 (L = 4).
  for (const WaveletKind kind : {WaveletKind::kHaar, WaveletKind::kDb4}) {
    const double filter_len =
        static_cast<double>(WaveletFilter::Get(kind).length());
    for (const size_t d : {size_t{1}, size_t{2}, size_t{3}}) {
      const uint32_t n = d == 3 ? 16 : 64;
      Schema schema = Schema::Uniform(d, n);
      WaveletStrategy strategy(schema, kind);
      double bound = 1.0;
      for (size_t i = 0; i < d; ++i) {
        bound *= filter_len * std::log2(static_cast<double>(n)) + 1.0;
      }
      Rng rng(101 + static_cast<uint64_t>(d));
      for (int t = 0; t < 20; ++t) {
        Tuple tuple(d);
        for (size_t i = 0; i < d; ++i) {
          tuple[i] = static_cast<uint32_t>(rng.UniformInt(n));
        }
        Result<SparseVec> delta = strategy.TransformUpdate(tuple, 1.0);
        ASSERT_TRUE(delta.ok());
        EXPECT_LE(static_cast<double>(delta->size()), bound)
            << "d=" << d << " N=" << n << " filter length " << filter_len;
        EXPECT_GT(delta->size(), 0u);
      }
    }
  }
}

TEST(LinearStrategyUpdate, TransformUpdateComposesLikeInsertTuple) {
  // InsertTuple is definitionally "apply TransformUpdate to the store";
  // the delta route and the in-place route must agree bitwise, and a
  // zero-count identity update must be empty.
  Schema schema = Schema::Uniform(2, 16);
  WaveletStrategy strategy(schema, WaveletKind::kDb4);
  Relation rel = MakeUniformRelation(schema, 80, 23);
  auto direct = strategy.BuildStoreFromRelation(rel);
  auto via_delta = strategy.BuildStoreFromRelation(rel);
  const Tuple tuple{7, 11};
  ASSERT_TRUE(strategy.InsertTuple(*direct, tuple, 2.0).ok());
  Result<SparseVec> delta = strategy.TransformUpdate(tuple, 2.0);
  ASSERT_TRUE(delta.ok());
  for (const SparseEntry& e : *delta) via_delta->Add(e.key, e.value);
  for (uint64_t key = 0; key < schema.cell_count(); ++key) {
    EXPECT_EQ(direct->Peek(key), via_delta->Peek(key)) << "key " << key;
  }

  IdentityStrategy identity(schema);
  const Tuple cell{1, 2};
  EXPECT_EQ(identity.TransformUpdate(cell, 0.0).value().size(), 0u);
  Result<SparseVec> one = identity.TransformUpdate(cell, 3.0);
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->size(), 1u);
  EXPECT_EQ(one->entries()[0].key, schema.Pack(cell));
  EXPECT_EQ(one->entries()[0].value, 3.0);
  EXPECT_FALSE(identity.TransformUpdate({16, 0}, 1.0).ok());
}

TEST(PrefixSumStrategyTest, CountAndSumExact) {
  Schema schema = Schema::Uniform(3, 8);
  Relation rel = MakeUniformRelation(schema, 200, 17);
  DenseCube delta = rel.FrequencyDistribution();
  PrefixSumStrategy strategy(
      schema, {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}});
  auto store = strategy.BuildStore(delta);
  Rng rng(19);
  for (int t = 0; t < 25; ++t) {
    Range range = RandomRange(schema, rng);
    for (const RangeSumQuery& q :
         {RangeSumQuery::Count(range), RangeSumQuery::Sum(range, 0),
          RangeSumQuery::Sum(range, 2)}) {
      const double expected = q.BruteForce(rel);
      EXPECT_NEAR(Evaluate(strategy, *store, q), expected,
                  1e-6 * (1.0 + std::abs(expected)));
    }
  }
}

TEST(PrefixSumStrategyTest, AnswerQueryBatchesCornerLookups) {
  // AnswerQuery retrieves a query's ≤2^d prefix-sum corners with one
  // FetchBatch: exact answers at exactly TransformQuery-size retrievals.
  Schema schema = Schema::Uniform(3, 8);
  Relation rel = MakeUniformRelation(schema, 200, 17);
  PrefixSumStrategy strategy(schema, {{0, 0, 0}, {1, 0, 0}});
  auto store = strategy.BuildStore(rel.FrequencyDistribution());
  Rng rng(31);
  for (int t = 0; t < 20; ++t) {
    Range range = RandomRange(schema, rng);
    RangeSumQuery q = RangeSumQuery::Count(range);
    IoStats io;
    Result<double> answer = strategy.AnswerQuery(q, *store, &io);
    ASSERT_TRUE(answer.ok()) << answer.status();
    const double expected = q.BruteForce(rel);
    EXPECT_NEAR(*answer, expected, 1e-6 * (1.0 + std::abs(expected)));
    Result<SparseVec> coeffs = strategy.TransformQuery(q);
    ASSERT_TRUE(coeffs.ok());
    EXPECT_EQ(io.retrievals, coeffs->size());
    EXPECT_LE(io.retrievals, 8u);  // ≤ 2^d corners
  }
}

TEST(WaveletStrategyTest2, AnswerQueryMatchesEvaluate) {
  Schema schema = Schema::Uniform(2, 16);
  Relation rel = MakeUniformRelation(schema, 300, 7);
  WaveletStrategy strategy(schema, WaveletKind::kDb4);
  auto store = strategy.BuildStore(rel.FrequencyDistribution());
  Rng rng(43);
  for (int t = 0; t < 10; ++t) {
    Range range = RandomRange(schema, rng);
    RangeSumQuery q = RangeSumQuery::Count(range);
    Result<double> answer = strategy.AnswerQuery(q, *store);
    ASSERT_TRUE(answer.ok());
    EXPECT_NEAR(*answer, Evaluate(strategy, *store, q), 1e-9);
  }
}

TEST(PrefixSumStrategyTest, AnswerQueryPropagatesRewriteFailure) {
  Schema schema = Schema::Uniform(2, 8);
  PrefixSumStrategy strategy(schema, {{0, 0}});
  auto store = strategy.BuildStore(
      MakeUniformRelation(schema, 20, 3).FrequencyDistribution());
  Result<double> answer = strategy.AnswerQuery(
      RangeSumQuery::Sum(Range::All(schema), 0), *store);
  EXPECT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kNotFound);
}

TEST(PrefixSumStrategyTest, QueryCostAtMostTwoToTheD) {
  Schema schema = Schema::Uniform(4, 8);
  PrefixSumStrategy strategy(schema, {{0, 0, 0, 0}});
  Rng rng(23);
  for (int t = 0; t < 20; ++t) {
    Range range = RandomRange(schema, rng);
    Result<SparseVec> q =
        strategy.TransformQuery(RangeSumQuery::Count(range));
    ASSERT_TRUE(q.ok());
    EXPECT_LE(q->size(), 16u);
  }
}

TEST(PrefixSumStrategyTest, RejectsUnsupportedMonomial) {
  Schema schema = Schema::Uniform(2, 8);
  PrefixSumStrategy strategy(schema, {{0, 0}});
  Result<SparseVec> q = strategy.TransformQuery(
      RangeSumQuery::Sum(Range::All(schema), 0));
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST(PrefixSumStrategyTest, CollectMonomialsFromBatch) {
  Schema schema = Schema::Uniform(2, 8);
  QueryBatch batch(schema);
  batch.Add(RangeSumQuery::Count(Range::All(schema)));
  batch.Add(RangeSumQuery::Sum(Range::All(schema), 1));
  batch.Add(RangeSumQuery::Sum(Range::All(schema), 1));  // duplicate
  auto monomials = PrefixSumStrategy::CollectMonomials(batch);
  EXPECT_EQ(monomials.size(), 2u);
}

TEST(PrefixSumStrategyTest, IncrementalInsertMatchesRebuild) {
  Schema schema = Schema::Uniform(2, 8);
  Relation rel = MakeUniformRelation(schema, 40, 29);
  PrefixSumStrategy strategy(schema, {{0, 0}, {1, 0}});
  auto built = strategy.BuildStore(rel.FrequencyDistribution());
  auto streamed = strategy.BuildStoreFromRelation(rel);
  for (uint64_t key = 0; key < 2 * schema.cell_count(); ++key) {
    EXPECT_NEAR(streamed->Peek(key), built->Peek(key), 1e-9) << key;
  }
}

TEST(IdentityStrategyTest, ExactAndCostEqualsVolume) {
  Schema schema = Schema::Uniform(2, 16);
  Relation rel = MakeUniformRelation(schema, 150, 37);
  IdentityStrategy strategy(schema);
  auto store = strategy.BuildStore(rel.FrequencyDistribution());
  Rng rng(41);
  for (int t = 0; t < 20; ++t) {
    Range range = RandomRange(schema, rng);
    RangeSumQuery count = RangeSumQuery::Count(range);
    EXPECT_NEAR(Evaluate(strategy, *store, count), count.BruteForce(rel),
                1e-9);
    Result<SparseVec> q = strategy.TransformQuery(count);
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q->size(), range.Volume());
    RangeSumQuery sum = RangeSumQuery::Sum(range, 0);
    EXPECT_NEAR(Evaluate(strategy, *store, sum), sum.BruteForce(rel), 1e-9);
  }
}

TEST(IdentityStrategyTest, InsertIsSingleCell) {
  Schema schema = Schema::Uniform(2, 8);
  IdentityStrategy strategy(schema);
  auto store = strategy.BuildStore(DenseCube(schema));
  ASSERT_TRUE(strategy.InsertTuple(*store, {3, 4}, 2.0).ok());
  EXPECT_EQ(store->NumNonZero(), 1u);
  EXPECT_DOUBLE_EQ(store->Peek(schema.Pack(std::vector<uint32_t>{3, 4})),
                   2.0);
}

TEST(StrategyNamesTest, Names) {
  Schema schema = Schema::Uniform(1, 4);
  EXPECT_EQ(WaveletStrategy(schema, WaveletKind::kDb4).name(),
            "wavelet-db4");
  EXPECT_EQ(PrefixSumStrategy(schema, {{0}}).name(), "prefix-sum");
  EXPECT_EQ(IdentityStrategy(schema).name(), "identity");
}

}  // namespace
}  // namespace wavebatch
