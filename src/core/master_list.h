#ifndef WAVEBATCH_CORE_MASTER_LIST_H_
#define WAVEBATCH_CORE_MASTER_LIST_H_

#include <cstdint>
#include <vector>

#include "query/batch.h"
#include "strategy/linear_strategy.h"
#include "util/status.h"
#include "wavelet/sparse_vec.h"

namespace wavebatch {

/// One storage coefficient needed by the batch, together with every query
/// that uses it and that query's coefficient there — the unit of I/O
/// sharing (Section 2.2): fetching this key once advances every query in
/// `uses`.
struct MasterEntry {
  uint64_t key;
  /// (query index, q̂_i[key]) pairs, ascending by query index.
  std::vector<std::pair<uint32_t, double>> uses;
};

/// The merged master list of Batch-Biggest-B steps 2–3: per-query sparse
/// coefficient lists merged by key. Its size is the exact shared I/O cost
/// of the batch; the sum of per-query sizes is the naive (unshared) cost.
class MasterList {
 public:
  /// An empty master list (no queries, no entries); assign over it.
  MasterList() = default;

  /// Rewrites every query in `batch` under `strategy` and merges. Fails if
  /// any query cannot be rewritten (e.g. unsupported monomial).
  static Result<MasterList> Build(const QueryBatch& batch,
                                  const LinearStrategy& strategy);

  /// Merges pre-transformed per-query sparse vectors (index = query index).
  static MasterList FromQueryVectors(
      const std::vector<SparseVec>& query_coefficients);

  size_t num_queries() const { return num_queries_; }
  /// Distinct coefficients needed by the batch = exact shared I/O cost.
  size_t size() const { return entries_.size(); }
  const MasterEntry& entry(size_t i) const { return entries_[i]; }
  const std::vector<MasterEntry>& entries() const { return entries_; }

  /// Σ per-query nonzero counts = exact naive (per-query) I/O cost.
  uint64_t TotalQueryCoefficients() const { return total_coefficients_; }

  /// Largest number of queries sharing one coefficient.
  size_t MaxSharing() const;

  /// Per-query nonzero counts (the naive cost split by query).
  const std::vector<uint64_t>& PerQueryCoefficients() const {
    return per_query_coefficients_;
  }

 private:
  size_t num_queries_ = 0;
  uint64_t total_coefficients_ = 0;
  std::vector<uint64_t> per_query_coefficients_;
  std::vector<MasterEntry> entries_;  // ascending by key
};

}  // namespace wavebatch

#endif  // WAVEBATCH_CORE_MASTER_LIST_H_
