file(REMOVE_RECURSE
  "CMakeFiles/wavebatch_query.dir/batch.cc.o"
  "CMakeFiles/wavebatch_query.dir/batch.cc.o.d"
  "CMakeFiles/wavebatch_query.dir/derived.cc.o"
  "CMakeFiles/wavebatch_query.dir/derived.cc.o.d"
  "CMakeFiles/wavebatch_query.dir/partition.cc.o"
  "CMakeFiles/wavebatch_query.dir/partition.cc.o.d"
  "CMakeFiles/wavebatch_query.dir/polynomial.cc.o"
  "CMakeFiles/wavebatch_query.dir/polynomial.cc.o.d"
  "CMakeFiles/wavebatch_query.dir/range.cc.o"
  "CMakeFiles/wavebatch_query.dir/range.cc.o.d"
  "CMakeFiles/wavebatch_query.dir/range_sum.cc.o"
  "CMakeFiles/wavebatch_query.dir/range_sum.cc.o.d"
  "libwavebatch_query.a"
  "libwavebatch_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavebatch_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
