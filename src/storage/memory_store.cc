#include "storage/memory_store.h"

#include <cmath>

namespace wavebatch {

HashStore::HashStore(const SparseVec& coefficients) {
  map_.reserve(coefficients.size());
  for (const SparseEntry& e : coefficients) map_.emplace(e.key, e.value);
}

double HashStore::Peek(uint64_t key) const {
  auto it = map_.find(key);
  return it == map_.end() ? 0.0 : it->second;
}

void HashStore::Add(uint64_t key, double delta) {
  if (delta == 0.0) return;
  auto [it, inserted] = map_.try_emplace(key, delta);
  if (!inserted) {
    it->second += delta;
    if (it->second == 0.0) map_.erase(it);
  }
}

Status HashStore::DoFetchBatch(std::span<const uint64_t> keys,
                               std::span<double> out, IoStats*) const {
  for (size_t i = 0; i < keys.size(); ++i) {
    auto it = map_.find(keys[i]);
    out[i] = it == map_.end() ? 0.0 : it->second;
  }
  return Status::OK();
}

uint64_t HashStore::NumNonZero() const { return map_.size(); }

void HashStore::ForEachNonZero(
    const std::function<void(uint64_t, double)>& fn) const {
  for (const auto& [key, value] : map_) fn(key, value);
}

double HashStore::SumAbs() const {
  double acc = 0.0;
  for (const auto& [key, value] : map_) acc += std::abs(value);
  return acc;
}

}  // namespace wavebatch
