file(REMOVE_RECURSE
  "libwavebatch_penalty.a"
)
