#ifndef WAVEBATCH_PENALTY_QUADRATIC_H_
#define WAVEBATCH_PENALTY_QUADRATIC_H_

#include <vector>

#include "penalty/penalty.h"
#include "util/status.h"

namespace wavebatch {

/// A general quadratic structural error penalty p(e) = eᵀ·A·e for a
/// symmetric positive semi-definite matrix A (Definition 2's quadratic
/// case). Covers arbitrary cross-query error couplings — e.g. penalizing
/// the error of differences between specific result pairs.
class DenseQuadraticPenalty : public PenaltyFunction {
 public:
  /// `matrix` is s×s row-major. Fails unless symmetric (tolerance 1e-9
  /// relative) and PSD (checked by attempted Cholesky with small pivots
  /// allowed to be zero).
  static Result<DenseQuadraticPenalty> Create(size_t s,
                                              std::vector<double> matrix);

  double Apply(std::span<const double> e) const override;
  double HomogeneityDegree() const override { return 2.0; }
  bool IsQuadratic() const override { return true; }
  std::string name() const override { return "quadratic"; }
  std::string Fingerprint() const override;

  size_t size() const { return s_; }
  double coeff(size_t i, size_t j) const { return matrix_[i * s_ + j]; }

 private:
  DenseQuadraticPenalty(size_t s, std::vector<double> matrix)
      : s_(s), matrix_(std::move(matrix)) {}

  size_t s_;
  std::vector<double> matrix_;
};

/// A non-negative linear combination Σ c_k·p_k of quadratic penalties —
/// itself a quadratic penalty (the mixing flexibility Section 4 notes).
/// The component penalties must outlive this object.
class CompositeQuadraticPenalty : public PenaltyFunction {
 public:
  CompositeQuadraticPenalty() = default;

  /// Adds c * penalty; `c >= 0` and `penalty->IsQuadratic()` required.
  void AddTerm(double c, const PenaltyFunction* penalty);

  double Apply(std::span<const double> e) const override;
  double HomogeneityDegree() const override { return 2.0; }
  bool IsQuadratic() const override { return true; }
  std::string name() const override { return "composite"; }
  std::string Fingerprint() const override;

 private:
  std::vector<std::pair<double, const PenaltyFunction*>> terms_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_PENALTY_QUADRATIC_H_
