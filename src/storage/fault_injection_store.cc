#include "storage/fault_injection_store.h"

#include <string>
#include <thread>
#include <utility>

#include "util/check.h"

namespace wavebatch {

namespace {

telemetry::Counter* InjectedFaultsCounter(const std::string& store) {
  return telemetry::MetricsRegistry::Default().GetCounter(
      "wavebatch_injected_faults_total", {{"store", store}},
      "Faults fired by a FaultInjectionStore schedule.");
}

}  // namespace

FaultInjectionStore::FaultInjectionStore(
    std::unique_ptr<CoefficientStore> inner, FaultInjectionOptions options)
    : owned_(std::move(inner)),
      inner_(owned_.get()),
      mutable_inner_(owned_.get()),
      state_(std::make_shared<FaultState>()) {
  WB_CHECK(inner_ != nullptr);
  state_->options = options;
  injected_faults_metric_ = InjectedFaultsCounter(name());
}

FaultInjectionStore::FaultInjectionStore(CoefficientStore* inner,
                                         FaultInjectionOptions options)
    : inner_(inner),
      mutable_inner_(inner),
      state_(std::make_shared<FaultState>()) {
  WB_CHECK(inner_ != nullptr);
  state_->options = options;
  injected_faults_metric_ = InjectedFaultsCounter(name());
}

FaultInjectionStore::FaultInjectionStore(
    std::shared_ptr<const CoefficientStore> pinned,
    std::shared_ptr<FaultState> state)
    : pinned_inner_(std::move(pinned)),
      inner_(pinned_inner_.get()),
      state_(std::move(state)) {
  WB_CHECK(inner_ != nullptr);
  injected_faults_metric_ = InjectedFaultsCounter(name());
}

void FaultInjectionStore::Add(uint64_t key, double delta) {
  WB_CHECK(mutable_inner_ != nullptr)
      << "Add() on a pinned FaultInjectionStore view (epoch snapshots are "
         "read-only)";
  mutable_inner_->Add(key, delta);
}

std::shared_ptr<const CoefficientStore> FaultInjectionStore::PinVersion()
    const {
  std::shared_ptr<const CoefficientStore> pinned = inner_->PinVersion();
  if (pinned == nullptr) return nullptr;  // inner is its own snapshot
  // Private constructor: callers go through PinVersion(), so the shared
  // fault state always comes from an existing wrapper.
  return std::shared_ptr<const CoefficientStore>(
      new FaultInjectionStore(std::move(pinned), state_));
}

void FaultInjectionStore::FailKey(uint64_t key) {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->failed_keys.insert(key);
}

void FaultInjectionStore::Heal() {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->failed_keys.clear();
  state_->options.fail_every_n = 0;
  state_->options.fail_at_fetch = 0;
}

uint64_t FaultInjectionStore::fetch_count() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->fetch_count;
}

uint64_t FaultInjectionStore::injected_failures() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->injected_failures;
}

Status FaultInjectionStore::CheckOneLocked(uint64_t key) const {
  const uint64_t ordinal = ++state_->fetch_count;
  if (state_->failed_keys.count(key) != 0) {
    ++state_->injected_failures;
    injected_faults_metric_->Add();
    return Status::Unavailable("injected fault: key " + std::to_string(key) +
                               " is failed until Heal()");
  }
  if (state_->options.fail_at_fetch != 0 &&
      ordinal == state_->options.fail_at_fetch) {
    state_->options.fail_at_fetch = 0;  // one-shot: self-heals after firing
    ++state_->injected_failures;
    injected_faults_metric_->Add();
    return Status::Unavailable("injected fault: one-shot fault at fetch " +
                               std::to_string(ordinal));
  }
  if (state_->options.fail_every_n != 0 &&
      ordinal % state_->options.fail_every_n == 0) {
    ++state_->injected_failures;
    injected_faults_metric_->Add();
    return Status::Unavailable(
        "injected fault: fetch " + std::to_string(ordinal) + " (every " +
        std::to_string(state_->options.fail_every_n) + "th)");
  }
  return Status::OK();
}

void FaultInjectionStore::InjectLatency() const {
  std::chrono::microseconds latency{0};
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    latency = state_->options.latency;
  }
  if (latency.count() > 0) {
    std::this_thread::sleep_for(latency);
  }
}

Result<double> FaultInjectionStore::DoFetch(uint64_t key, IoStats* io) const {
  InjectLatency();
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    Status status = CheckOneLocked(key);
    if (!status.ok()) return status;
  }
  return DelegateFetch(*inner_, key, io);
}

Status FaultInjectionStore::DoFetchBatch(std::span<const uint64_t> keys,
                                         std::span<double> out,
                                         IoStats* io) const {
  InjectLatency();
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    for (uint64_t key : keys) {
      Status status = CheckOneLocked(key);
      if (!status.ok()) return status;
    }
  }
  return DelegateFetchBatch(*inner_, keys, out, io);
}

Status FaultInjectionStore::DoFetchBatchRouted(std::span<const uint64_t> keys,
                                               std::span<const uint32_t> shards,
                                               std::span<double> out,
                                               IoStats* io) const {
  InjectLatency();
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    for (uint64_t key : keys) {
      Status status = CheckOneLocked(key);
      if (!status.ok()) return status;
    }
  }
  return DelegateFetchBatchRouted(*inner_, keys, shards, out, io);
}

}  // namespace wavebatch
