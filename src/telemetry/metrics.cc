#include "telemetry/metrics.h"

#include <algorithm>

#include "telemetry/trace.h"
#include "util/check.h"

namespace wavebatch::telemetry {

namespace {

/// Telemetry epoch: steady-clock origin for span timestamps, fixed at the
/// first span-related call so all threads share one time base.
std::chrono::steady_clock::time_point Epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

uint32_t ThisThreadOrdinal() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

/// Canonical map key: name + sorted labels, joined with separators no
/// metric or label text contains by convention (control bytes).
std::string EncodeKey(const std::string& name, const Labels& labels) {
  std::string key = name;
  key += '\x01';
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x02';
    key += v;
    key += '\x03';
  }
  return key;
}

Labels Canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

struct MetricsRegistry::Metric {
  MetricType type;
  std::string name;
  std::string help;
  Labels labels;
  Counter counter;
  Gauge gauge;
  Histogram histogram;
};

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Metric* MetricsRegistry::GetOrCreate(MetricType type,
                                                      std::string name,
                                                      Labels labels,
                                                      std::string help) {
  WB_CHECK(!name.empty());
  labels = Canonical(std::move(labels));
  const std::string key = EncodeKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(key);
  if (it != metrics_.end()) {
    WB_CHECK(it->second->type == type)
        << "metric " << name << " re-registered with a different type";
    return it->second.get();
  }
  // One name = one type and one help text, across all label sets.
  for (const auto& [_, metric] : metrics_) {
    if (metric->name == name) {
      WB_CHECK(metric->type == type)
          << "metric " << name << " re-registered with a different type";
    }
  }
  auto metric = std::make_unique<Metric>();
  metric->type = type;
  metric->name = std::move(name);
  metric->help = std::move(help);
  metric->labels = std::move(labels);
  Metric* raw = metric.get();
  metrics_.emplace(key, std::move(metric));
  return raw;
}

Counter* MetricsRegistry::GetCounter(std::string name, Labels labels,
                                     std::string help) {
  return &GetOrCreate(MetricType::kCounter, std::move(name), std::move(labels),
                      std::move(help))
              ->counter;
}

Gauge* MetricsRegistry::GetGauge(std::string name, Labels labels,
                                 std::string help) {
  return &GetOrCreate(MetricType::kGauge, std::move(name), std::move(labels),
                      std::move(help))
              ->gauge;
}

Histogram* MetricsRegistry::GetHistogram(std::string name, Labels labels,
                                         std::string help) {
  return &GetOrCreate(MetricType::kHistogram, std::move(name),
                      std::move(labels), std::move(help))
              ->histogram;
}

void MetricsRegistry::Remove(const std::string& name, const Labels& labels) {
  const std::string key = EncodeKey(name, Canonical(labels));
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.erase(key);
}

void MetricsRegistry::ResetValues() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [_, metric] : metrics_) {
      metric->counter.ResetForTest();
      metric->gauge.ResetForTest();
      metric->histogram.ResetForTest();
    }
  }
  std::lock_guard<std::mutex> lock(span_mu_);
  spans_.clear();
  dropped_spans_.store(0, std::memory_order_relaxed);
}

void MetricsRegistry::RecordSpan(const char* name,
                                 std::chrono::steady_clock::time_point begin,
                                 std::chrono::steady_clock::time_point end,
                                 std::initializer_list<SpanAttr> attrs) {
  if (!Enabled()) return;
  RecordSpanWithIds(name, begin, end, NewSpanId(),
                    internal::t_trace.current_span_id, attrs.begin(),
                    static_cast<uint32_t>(attrs.size()));
}

void MetricsRegistry::RecordSpanWithIds(
    const char* name, std::chrono::steady_clock::time_point begin,
    std::chrono::steady_clock::time_point end, uint64_t span_id,
    uint64_t parent_span_id, const SpanAttr* attrs, uint32_t num_attrs) {
  if (!Enabled()) return;
  SpanEvent event;
  event.name = name;
  event.tid = ThisThreadOrdinal();
  event.ts_us = std::chrono::duration<double, std::micro>(begin - Epoch())
                    .count();
  event.dur_us = std::chrono::duration<double, std::micro>(end - begin)
                     .count();
  event.span_id = span_id;
  event.parent_span_id = parent_span_id;
  event.trace_id = internal::t_trace.trace_id;
  event.request_id = internal::t_trace.request_id;
  event.num_attrs = std::min(num_attrs, SpanEvent::kMaxAttrs);
  for (uint32_t i = 0; i < event.num_attrs; ++i) event.attrs[i] = attrs[i];
  // Bind the overflow counter BEFORE span_mu_: GetCounter takes mu_, and
  // the registry's lock order is mu_ -> span_mu_, never the reverse.
  Counter* dropped_counter =
      dropped_spans_counter_.load(std::memory_order_acquire);
  if (dropped_counter == nullptr) {
    dropped_counter = GetCounter(
        "wavebatch_telemetry_dropped_spans_total", {},
        "Spans dropped because the bounded span buffer was full.");
    dropped_spans_counter_.store(dropped_counter, std::memory_order_release);
  }
  std::lock_guard<std::mutex> lock(span_mu_);
  if (spans_.size() >= span_capacity_) {
    dropped_spans_.fetch_add(1, std::memory_order_relaxed);
    dropped_counter->Add();
    return;
  }
  // First push reserves a bounded chunk so the hot path never eats a large
  // realloc copy; later doubling is amortized and stops at capacity.
  if (spans_.capacity() == 0) {
    spans_.reserve(std::min<size_t>(span_capacity_, 8192));
  }
  spans_.push_back(event);
}

std::vector<SpanEvent> MetricsRegistry::Spans() const {
  std::lock_guard<std::mutex> lock(span_mu_);
  return spans_;
}

void MetricsRegistry::SetSpanCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(span_mu_);
  span_capacity_ = capacity;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(metrics_.size());
  // metrics_ is keyed by name + canonical labels, so iteration order is
  // already sorted by family.
  for (const auto& [_, metric] : metrics_) {
    MetricSnapshot snap;
    snap.type = metric->type;
    snap.name = metric->name;
    snap.help = metric->help;
    snap.labels = metric->labels;
    switch (metric->type) {
      case MetricType::kCounter:
        snap.counter_value = metric->counter.Value();
        break;
      case MetricType::kGauge:
        snap.gauge_value = metric->gauge.Value();
        break;
      case MetricType::kHistogram: {
        snap.hist_buckets.resize(Histogram::kNumBuckets);
        // Every Observe() lands in exactly one bucket, so the bucket sum
        // IS the count; deriving hist_count from the same bucket reads
        // keeps the snapshot internally consistent (le="+Inf" == _count,
        // cumulative buckets monotone) even while writers race — reading
        // the separate count_ cell could lag a bucket already observed.
        snap.hist_count = 0;
        for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
          snap.hist_buckets[i] = metric->histogram.BucketCount(i);
          snap.hist_count += snap.hist_buckets[i];
        }
        snap.hist_sum = metric->histogram.Sum();
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

size_t MetricsRegistry::NumMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

}  // namespace wavebatch::telemetry
