#ifndef WAVEBATCH_CORE_MASTER_LIST_H_
#define WAVEBATCH_CORE_MASTER_LIST_H_

#include <cstdint>
#include <vector>

#include "query/batch.h"
#include "strategy/linear_strategy.h"
#include "util/status.h"
#include "wavelet/sparse_vec.h"

namespace wavebatch {

/// Whether a plan-time build (master-list merge, importances, permutation
/// sorts) may fan out across util::ThreadPool::Shared(). Both settings
/// produce bit-identical artifacts — parallel construction uses fixed chunk
/// boundaries, stable merges, and total-order sorts, so the only difference
/// is wall-clock. kSerial exists for benchmarking the speedup
/// (BM_PlanBuild) and for callers that must not touch the shared pool.
enum class BuildParallelism {
  kSerial,
  kParallel,
};

/// One storage coefficient needed by the batch, together with every query
/// that uses it and that query's coefficient there — the unit of I/O
/// sharing (Section 2.2): fetching this key once advances every query in
/// `uses`.
struct MasterEntry {
  uint64_t key;
  /// (query index, q̂_i[key]) pairs, ascending by query index.
  std::vector<std::pair<uint32_t, double>> uses;
};

/// The merged master list of Batch-Biggest-B steps 2–3: per-query sparse
/// coefficient lists merged by key. Its size is the exact shared I/O cost
/// of the batch; the sum of per-query sizes is the naive (unshared) cost.
///
/// The list is held in two views over the same data:
///
///   * the **flat CSR image** — contiguous `keys()`, `uses_offsets()`
///     (size+1 prefix offsets), `uses_query()` and `uses_coeff()` arrays;
///     entry i's uses occupy [uses_offsets()[i], uses_offsets()[i+1]) of
///     the two `uses_*` arrays. This is the hot-path layout: the engine's
///     apply kernel walks it branch-free with no per-entry pointer chase
///     (see engine/apply_kernel.h).
///   * the **pointer-based `entries()` view** — one `MasterEntry` with its
///     own `uses` vector per coefficient. The legacy core/ evaluators (the
///     golden references) keep reading this view, so nothing built on it
///     changes behavior.
///
/// Both views are materialized by the same build and always agree.
class MasterList {
 public:
  /// An empty master list (no queries, no entries); assign over it.
  MasterList() = default;

  /// Rewrites every query in `batch` under `strategy` and merges. Fails if
  /// any query cannot be rewritten (e.g. unsupported monomial).
  static Result<MasterList> Build(
      const QueryBatch& batch, const LinearStrategy& strategy,
      BuildParallelism parallelism = BuildParallelism::kParallel);

  /// Merges pre-transformed per-query sparse vectors (index = query index).
  static MasterList FromQueryVectors(
      const std::vector<SparseVec>& query_coefficients,
      BuildParallelism parallelism = BuildParallelism::kParallel);

  size_t num_queries() const { return num_queries_; }
  /// Distinct coefficients needed by the batch = exact shared I/O cost.
  size_t size() const { return keys_.size(); }
  const MasterEntry& entry(size_t i) const { return entries_[i]; }
  const std::vector<MasterEntry>& entries() const { return entries_; }

  /// CSR image, ascending by key. keys()[i] is entry i's storage key; its
  /// uses are rows [uses_offsets()[i], uses_offsets()[i+1]) of
  /// uses_query()/uses_coeff(), ascending by query index.
  const std::vector<uint64_t>& keys() const { return keys_; }
  const std::vector<uint64_t>& uses_offsets() const { return uses_offsets_; }
  const std::vector<uint32_t>& uses_query() const { return uses_query_; }
  const std::vector<double>& uses_coeff() const { return uses_coeff_; }

  /// Σ per-query nonzero counts = exact naive (per-query) I/O cost.
  uint64_t TotalQueryCoefficients() const { return total_coefficients_; }

  /// Largest number of queries sharing one coefficient.
  size_t MaxSharing() const;

  /// Per-query nonzero counts (the naive cost split by query).
  const std::vector<uint64_t>& PerQueryCoefficients() const {
    return per_query_coefficients_;
  }

 private:
  size_t num_queries_ = 0;
  uint64_t total_coefficients_ = 0;
  std::vector<uint64_t> per_query_coefficients_;

  // CSR image (primary representation, ascending by key).
  std::vector<uint64_t> keys_;
  std::vector<uint64_t> uses_offsets_;  // size() + 1 when non-empty
  std::vector<uint32_t> uses_query_;
  std::vector<double> uses_coeff_;

  std::vector<MasterEntry> entries_;  // legacy golden view, same order
};

}  // namespace wavebatch

#endif  // WAVEBATCH_CORE_MASTER_LIST_H_
